module dlsearch

go 1.24
