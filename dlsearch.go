// Package dlsearch is a flexible and scalable digital library search
// engine: a from-scratch reproduction of "Flexible and Scalable
// Digital Library Search" (Windhouwer, Schmidt, van Zwol, Petkovic,
// Blok — CWI INS-R0111 / VLDB 2001).
//
// The system combines three levels:
//
//   - the conceptual level (Webspace Method): an object-oriented
//     webspace schema over which documents are materialized views,
//     enabling semantically rich conceptual search;
//   - the logical level (feature grammars): a description language
//     binding feature-extraction detectors into one grammar, with the
//     Feature Detector Engine (FDE) populating and the Feature
//     Detector Scheduler (FDS) incrementally maintaining the
//     multimedia meta-index;
//   - the physical level (Monet XML + IR): path-clustered binary
//     relations storing both conceptual data and meta-data, with
//     tf·idf full-text retrieval, idf-descending fragmentation and
//     shared-nothing distribution.
//
// The package re-exports the stable public surface; the examples/
// directory shows complete engines for the Australian Open running
// example and for the generic Internet configuration.
//
// Quick start:
//
//	eng, site, report, err := dlsearch.BuildAusOpen(1)
//	...
//	res, err := eng.Query(dlsearch.Figure13Query)
package dlsearch

import (
	"context"
	"io"
	"net/http"
	"time"

	"dlsearch/internal/cobra"
	"dlsearch/internal/core"
	"dlsearch/internal/crawler"
	"dlsearch/internal/detector"
	"dlsearch/internal/dist"
	"dlsearch/internal/fde"
	"dlsearch/internal/fds"
	"dlsearch/internal/fg"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
	"dlsearch/internal/query"
	"dlsearch/internal/server"
	"dlsearch/internal/site"
	"dlsearch/internal/video"
	"dlsearch/internal/webspace"
)

// Engine is a search-engine instance over one webspace schema and one
// feature grammar; it owns the physical store, the full-text indexes
// and the maintenance scheduler.
type Engine = core.Engine

// PopulateReport summarises a population run.
type PopulateReport = core.PopulateReport

// MaintenanceReport summarises a detector upgrade cycle.
type MaintenanceReport = core.MaintenanceReport

// InternetEngine is the unlimited-domain configuration of the paper:
// a generic feature grammar and a direct interface on the logical
// level.
type InternetEngine = core.InternetEngine

// Webspace (conceptual level) types.
type (
	// Schema is a webspace schema: classes, attributes, associations.
	Schema = webspace.Schema
	// Attribute is a typed class attribute.
	Attribute = webspace.Attribute
	// WebDocument is a materialized view over the schema.
	WebDocument = webspace.Document
	// WebObject is an instantiation of a schema class.
	WebObject = webspace.Object
)

// Feature grammar (logical level) types.
type (
	// Grammar is a parsed feature grammar G = (V, D, T, S, P).
	Grammar = fg.Grammar
	// Detector is a registered detector implementation.
	Detector = detector.Impl
	// DetectorRegistry maps detector symbols to implementations.
	DetectorRegistry = detector.Registry
	// DetectorVersion is the three-level (major/minor/revision) version.
	DetectorVersion = detector.Version
	// Token is a (symbol, value) token on the FDE's token stack.
	Token = detector.Token
	// TokenContext carries a detector invocation's resolved inputs.
	TokenContext = detector.Context
	// ParseTree is an FDE parse tree.
	ParseTree = fde.Tree
	// Scheduler is the Feature Detector Scheduler.
	Scheduler = fds.Scheduler
)

// Query types.
type (
	// QueryResult is a ranked result of an integrated query.
	QueryResult = query.Result
	// QueryRow is one result row with score and matched shots.
	QueryRow = query.Row
	// ShotEvent is a video shot with its recognised event state.
	ShotEvent = query.ShotEvent
)

// Physical level types, exposed for advanced use and benchmarks.
type (
	// XMLStore is the Monet-transform store.
	XMLStore = monetxml.Store
	// XMLNode is an in-memory XML node.
	XMLNode = monetxml.Node
	// FullTextIndex is the tf·idf index (T/D/DT/TF/IDF relations).
	FullTextIndex = ir.Index
	// EvalPlan is a fragment-budgeted, quality-bounded evaluation
	// strategy: how many leading idf-descending fragments each node
	// evaluates, and the quality floor that re-admits trailing ones.
	EvalPlan = ir.EvalPlan
	// QualityEstimate is the structured quality accounting a budgeted
	// evaluation reports (covered/total idf mass, fragments used).
	QualityEstimate = ir.QualityEstimate
	// Cluster is a shared-nothing cluster of IR nodes.
	Cluster = dist.Cluster
	// ClusterOptions configures partitioning, ranking and per-node
	// deadlines of a Cluster.
	ClusterOptions = dist.Options
)

// Networked serving types: the Node boundary, its local and HTTP
// implementations, and the serving layer's building blocks.
type (
	// ClusterNode is one member of a Cluster — in-process or remote.
	ClusterNode = dist.Node
	// LocalNode is the in-process Node over a FullTextIndex.
	LocalNode = dist.LocalNode
	// RemoteNode speaks the HTTP node protocol to a node server.
	RemoteNode = dist.RemoteNode
	// ClusterSearchResult is a distributed ranking with straggler info.
	ClusterSearchResult = dist.SearchResult
	// QueryCache is the query-side LRU over (query → term oids).
	QueryCache = core.QueryCache
	// NodeServerConfig tunes an HTTP node server.
	NodeServerConfig = server.NodeConfig
	// NodeServer serves one fragment over the node wire protocol and
	// owns its durability hooks (Snapshot, MarkRestored).
	NodeServer = server.NodeServer
	// Coordinator serves /search, /add, /stats and /healthz.
	Coordinator = server.Coordinator
	// CoordinatorConfig tunes a Coordinator.
	CoordinatorConfig = server.CoordinatorConfig
)

// Durability & replication types: snapshot state, replica routing
// health, per-partition batch outcomes and cluster availability
// telemetry.
type (
	// IndexState is the stable serialization form of a FullTextIndex —
	// what a snapshot persists and a restore rebuilds.
	IndexState = ir.IndexState
	// ReplicaHealth is one replica's routing state (consecutive
	// failures, last error).
	ReplicaHealth = dist.ReplicaHealth
	// ClusterTelemetry is a cluster's cumulative availability counters.
	ClusterTelemetry = dist.Telemetry
	// PartitionResult is one partition's commit outcome of a batch add.
	PartitionResult = dist.PartitionResult
	// AntiEntropyReport summarises one Cluster.CheckReplicas pass:
	// divergences detected by replica checksum comparison, stale
	// quarantines cleared, replicas resynced.
	AntiEntropyReport = dist.AntiEntropyReport
	// ReplicaCheck is one replica's outcome of an anti-entropy pass.
	ReplicaCheck = dist.ReplicaCheck
	// ClusterNodeLoad is one node's load probe: doc count, max oid,
	// snapshot age and the fragment's content checksum.
	ClusterNodeLoad = dist.NodeLoad
	// OpLog is a node's write-ahead op log: ingest is appended and
	// fsynced before it is applied, so acknowledged writes survive a
	// crash and boot recovery is snapshot + log replay.
	OpLog = persist.OpLog
	// LoggedOp is one logged ingest operation (index one document).
	LoggedOp = persist.Op
)

// ErrDeltaUnavailable reports that a node cannot serve the requested
// op-log suffix (no log, or the suffix was compacted away) — heal by
// full snapshot instead. ErrPosMismatch reports a delta that does not
// start exactly at the target replica's log position.
var (
	ErrDeltaUnavailable = dist.ErrDeltaUnavailable
	ErrPosMismatch      = dist.ErrPosMismatch
)

// OpenOpLog opens (or creates) the write-ahead op log in dir,
// truncating a torn tail left by a crash mid-append and failing
// closed on interior corruption. Wire it into a node with
// LocalNode.SetOpLog.
func OpenOpLog(dir string) (*OpLog, error) { return persist.OpenOpLog(dir) }

// ErrSnapshotCorrupt reports a snapshot that failed integrity
// verification (bad magic, truncation, checksum mismatch, or an
// inconsistent decoded state): loads fail closed, never yielding a
// partial index.
var ErrSnapshotCorrupt = persist.ErrCorrupt

// Substrate types used by the examples.
type (
	// AusOpenSite is the generated Australian Open website.
	AusOpenSite = site.Site
	// VideoLibrary stores raw video by URL.
	VideoLibrary = video.Library
	// Analyzer runs the COBRA video analysis.
	Analyzer = cobra.Analyzer
	// CrawlResult is the crawler's output.
	CrawlResult = crawler.Result
)

// Figure13Query is the paper's running-example query: "Show me video
// shots of left-handed female players, who have won the Australian
// Open in the past, and in which they approach the net."
const Figure13Query = core.Figure13Query

// TennisGrammar is the combined Figure 6+7 video feature grammar.
const TennisGrammar = fg.TennisGrammar

// InternetGrammar is the completed Figure 14 grammar.
const InternetGrammar = fg.InternetGrammar

// New creates an engine from a schema, a feature grammar and a
// detector registry (the modeling stage of the lifecycle).
func New(schema *Schema, grammar *Grammar, reg *DetectorRegistry) (*Engine, error) {
	return core.New(schema, grammar, reg)
}

// NewAusOpen assembles the complete running-example engine over a
// generated Australian Open website.
func NewAusOpen(s *AusOpenSite) (*Engine, error) { return core.NewAusOpen(s) }

// BuildAusOpen generates the website, crawls it and populates a fresh
// engine: the entire populate stage in one call.
func BuildAusOpen(seed int64) (*Engine, *AusOpenSite, *PopulateReport, error) {
	return core.BuildAusOpen(seed)
}

// GenerateSite generates the deterministic Australian Open website
// with its ground truth.
func GenerateSite(seed int64) *AusOpenSite { return site.Generate(seed) }

// NewCrawler returns a crawler that reengineers pages fetched by fetch
// into materialized views over the schema.
func NewCrawler(schema *Schema, fetch func(string) (string, error)) *crawler.Crawler {
	return crawler.New(schema, fetch)
}

// ParseGrammar parses and validates feature grammar source text.
func ParseGrammar(src string) (*Grammar, error) { return fg.Parse(src) }

// AusOpenSchema returns the Figure 3 webspace schema.
func AusOpenSchema() *Schema { return webspace.AusOpenSchema() }

// NewRegistry returns an empty detector registry.
func NewRegistry() *DetectorRegistry { return detector.NewRegistry() }

// NewInternetEngine builds the generic Internet configuration over a
// synthetic open web.
func NewInternetEngine(pages []*core.WebPage, images []*core.WebImage) (*InternetEngine, error) {
	return core.NewInternetEngine(pages, images)
}

// SyntheticWeb generates a small open web for the Internet example.
func SyntheticWeb(seed int64) ([]*core.WebPage, []*core.WebImage) {
	return core.SyntheticWeb(seed)
}

// NewCluster builds a shared-nothing cluster of k IR nodes with
// deterministic round-robin document partitioning.
func NewCluster(k int) *Cluster { return dist.NewCluster(k, nil) }

// NewClusterWith builds a shared-nothing cluster of k IR nodes with
// explicit partitioning / ranking options.
func NewClusterWith(k int, opts *ClusterOptions) *Cluster { return dist.NewCluster(k, opts) }

// NewClusterOf builds a cluster over caller-supplied nodes — local,
// remote, or a mix — with per-node timeouts and straggler handling.
func NewClusterOf(nodes []ClusterNode, opts *ClusterOptions) *Cluster {
	return dist.NewClusterOf(nodes, opts)
}

// NewReplicatedCluster builds a cluster that places each partition on
// r of the supplied nodes (consecutive groups): writes fan out to all
// replicas of a partition, reads fail over between them, and killing
// any single node leaves the merged ranking byte-identical to the
// exact single-index ranking.
func NewReplicatedCluster(nodes []ClusterNode, r int, opts *ClusterOptions) (*Cluster, error) {
	return dist.NewReplicatedCluster(nodes, r, opts)
}

// NewReplicatedClusterOf builds a cluster over caller-supplied replica
// groups: each inner slice is one partition's replicas.
func NewReplicatedClusterOf(groups [][]ClusterNode, opts *ClusterOptions) *Cluster {
	return dist.NewReplicatedClusterOf(groups, opts)
}

// SaveIndexSnapshot persists a full-text index to path in the
// versioned, checksummed binary snapshot format, atomically
// (write-to-temp, fsync, rename). The caller must not mutate the
// index concurrently.
func SaveIndexSnapshot(path string, ix *FullTextIndex) error {
	return persist.SaveIndex(path, ix)
}

// LoadIndexSnapshot rebuilds a full-text index from the snapshot at
// path. Corruption fails closed with ErrSnapshotCorrupt; a missing
// file reports fs.ErrNotExist.
func LoadIndexSnapshot(path string) (*FullTextIndex, error) {
	return persist.LoadIndex(path)
}

// NewLocalNode wraps a full-text index as an in-process cluster node.
func NewLocalNode(ix *FullTextIndex) *LocalNode { return dist.NewLocalNode(ix) }

// NewRemoteNode returns a cluster node speaking the HTTP node
// protocol at baseURL (nil client selects a pooled default).
func NewRemoteNode(baseURL string) *RemoteNode { return dist.NewRemoteNode(baseURL, nil) }

// NewQueryCache returns a query-side LRU term cache of the given
// capacity.
func NewQueryCache(capacity int) *QueryCache { return core.NewQueryCache(capacity) }

// NewNodeServer returns the HTTP handler serving ix as a remote
// cluster node (the dist.Node operations plus /healthz).
func NewNodeServer(ix *FullTextIndex, cfg *NodeServerConfig) http.Handler {
	return server.NewNodeHandler(ix, cfg)
}

// NewCoordinator builds the central serving site over named clusters;
// its Handler exposes /search, /add, /stats and /healthz.
func NewCoordinator(indexes map[string]*Cluster, cfg *CoordinatorConfig) *Coordinator {
	return server.NewCoordinator(indexes, cfg)
}

// ServeUntil serves h on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests.
func ServeUntil(ctx context.Context, addr string, h http.Handler) error {
	return server.Run(ctx, addr, h, 0)
}

// Observability: the dependency-free instruments of internal/obs.
// Wire a registry into the serving layer via NodeServerConfig.Metrics
// / CoordinatorConfig.Metrics (GET /metrics then serves Prometheus
// text) and a slow-query log via the configs' SlowQuery field; both
// are nil-safe — a nil registry compiles every instrument out of the
// hot path.
type (
	// MetricsRegistry collects counters, gauges and log-bucketed
	// histograms and renders them in Prometheus text form (Handler).
	MetricsRegistry = obs.Registry
	// Trace records per-stage spans of one request under one request
	// ID, propagated coordinator→node via the X-DL-Request header.
	Trace = obs.Trace
	// Logger is a leveled logger (debug/info/warn/error).
	Logger = obs.Logger
	// LogLevel is a Logger threshold; parse one with ParseLogLevel.
	LogLevel = obs.Level
	// SlowQueryLog emits one JSON SlowQueryRecord line for every query
	// slower than its threshold.
	SlowQueryLog = obs.SlowQueryLog
	// SlowQueryRecord is the slow-query log's line format, including
	// the full per-stage span breakdown.
	SlowQueryRecord = obs.SlowQueryRecord
)

// HeaderRequestID is the HTTP header carrying the request ID across
// process boundaries (coordinator → node, and echoed to clients).
const HeaderRequestID = obs.HeaderRequestID

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewLogger returns a leveled logger writing "prefix: level: message"
// lines at or above level to w.
func NewLogger(w io.Writer, prefix string, level LogLevel) *Logger {
	return obs.NewLogger(w, prefix, level)
}

// ParseLogLevel parses "debug", "info", "warn" or "error".
func ParseLogLevel(s string) (LogLevel, error) { return obs.ParseLevel(s) }

// NewSlowQueryLog returns a slow-query log writing to w; threshold <=
// 0 returns nil (disabled), which every recording method tolerates.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return obs.NewSlowQueryLog(w, threshold)
}
