// Package bat implements Monet-style Binary Association Tables (BATs):
// two-column relations of (head, tail) associations that form the
// physical storage primitive of the system, mirroring the Monet DBMS
// [BK95] the paper builds on.
//
// A BAT associates object identifiers (OIDs) in its head column with
// values of a single tail type. The paper's physical level stores the
// Monet transform of XML documents as one BAT per root-to-node path,
// and the IR relations (T, D, TF, IDF, ...) as further BATs. All
// higher levels of the system reduce their queries to scans,
// selections and joins over BATs.
package bat

import (
	"fmt"
	"sort"
	"sync"
)

// OID is a unique object identifier. OIDs are dense, monotonically
// increasing values handed out by a Sequence.
type OID uint64

// NilOID is the zero OID; it is never handed out by a Sequence and
// marks "no object".
const NilOID OID = 0

// Sequence hands out fresh OIDs. It is safe for concurrent use.
type Sequence struct {
	mu   sync.Mutex
	next OID
}

// NewSequence returns a Sequence whose first OID is 1.
func NewSequence() *Sequence { return &Sequence{next: 1} }

// Next returns a fresh, never-before-issued OID.
func (s *Sequence) Next() OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid := s.next
	s.next++
	return oid
}

// Peek reports the next OID that would be issued without issuing it.
func (s *Sequence) Peek() OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Advance moves the sequence forward so the next issued OID is at
// least next; a sequence already past that point is untouched. Snapshot
// restore uses it to re-seed a fresh sequence beyond every persisted
// oid, so post-restore allocations never collide with restored objects.
func (s *Sequence) Advance(next OID) {
	s.mu.Lock()
	if next > s.next {
		s.next = next
	}
	s.mu.Unlock()
}

// Kind enumerates the tail types a BAT can carry, corresponding to the
// association types of the paper: oid×oid (tree edges), oid×string
// (attribute values and character data), oid×int (rank / topology) and
// oid×float (numeric features extracted by detectors).
type Kind uint8

const (
	KindOID Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindOID:
		return "oid"
	case KindString:
		return "str"
	case KindInt:
		return "int"
	case KindFloat:
		return "flt"
	case KindBool:
		return "bit"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// BAT is a binary association table: a sequence of (head, tail)
// pairs. The head column always holds OIDs; the tail column holds
// values of a fixed Kind. Only one of the typed tail slices is in use,
// selected by the Kind.
//
// A BAT maintains optional hash indexes over head and tail which are
// built lazily on first point lookup and invalidated by appends.
type BAT struct {
	name string
	kind Kind

	head []OID

	tailOID   []OID
	tailStr   []string
	tailInt   []int64
	tailFloat []float64
	tailBool  []bool

	headIdx map[OID][]int
	strIdx  map[string][]int
	oidIdx  map[OID][]int
	intIdx  map[int64][]int
}

// New returns an empty BAT with the given name and tail kind.
func New(name string, kind Kind) *BAT {
	return &BAT{name: name, kind: kind}
}

// Name returns the relation name, e.g. "image/colors/histogram".
func (b *BAT) Name() string { return b.name }

// Kind returns the tail type of the BAT.
func (b *BAT) Kind() Kind { return b.kind }

// Len returns the number of associations stored.
func (b *BAT) Len() int { return len(b.head) }

// invalidate drops all lazily built indexes. Called on every mutation.
func (b *BAT) invalidate() {
	b.headIdx = nil
	b.strIdx = nil
	b.oidIdx = nil
	b.intIdx = nil
}

// AppendOID appends an oid×oid association. It panics if the BAT has a
// different tail kind, which indicates a programming error at a level
// that should have been caught by schema validation.
func (b *BAT) AppendOID(head, tail OID) {
	b.mustKind(KindOID)
	b.head = append(b.head, head)
	b.tailOID = append(b.tailOID, tail)
	b.invalidate()
}

// AppendString appends an oid×string association.
func (b *BAT) AppendString(head OID, tail string) {
	b.mustKind(KindString)
	b.head = append(b.head, head)
	b.tailStr = append(b.tailStr, tail)
	b.invalidate()
}

// AppendInt appends an oid×int association.
func (b *BAT) AppendInt(head OID, tail int64) {
	b.mustKind(KindInt)
	b.head = append(b.head, head)
	b.tailInt = append(b.tailInt, tail)
	b.invalidate()
}

// AppendFloat appends an oid×float association.
func (b *BAT) AppendFloat(head OID, tail float64) {
	b.mustKind(KindFloat)
	b.head = append(b.head, head)
	b.tailFloat = append(b.tailFloat, tail)
	b.invalidate()
}

// AppendBool appends an oid×bool association.
func (b *BAT) AppendBool(head OID, tail bool) {
	b.mustKind(KindBool)
	b.head = append(b.head, head)
	b.tailBool = append(b.tailBool, tail)
	b.invalidate()
}

func (b *BAT) mustKind(k Kind) {
	if b.kind != k {
		panic(fmt.Sprintf("bat: %s has kind %s, not %s", b.name, b.kind, k))
	}
}

// Head returns the head OID at position i.
func (b *BAT) Head(i int) OID { return b.head[i] }

// TailOID returns the tail at position i of an oid-kind BAT.
func (b *BAT) TailOID(i int) OID { b.mustKind(KindOID); return b.tailOID[i] }

// TailString returns the tail at position i of a string-kind BAT.
func (b *BAT) TailString(i int) string { b.mustKind(KindString); return b.tailStr[i] }

// TailInt returns the tail at position i of an int-kind BAT.
func (b *BAT) TailInt(i int) int64 { b.mustKind(KindInt); return b.tailInt[i] }

// TailFloat returns the tail at position i of a float-kind BAT.
func (b *BAT) TailFloat(i int) float64 { b.mustKind(KindFloat); return b.tailFloat[i] }

// TailBool returns the tail at position i of a bool-kind BAT.
func (b *BAT) TailBool(i int) bool { b.mustKind(KindBool); return b.tailBool[i] }

// buildHeadIdx builds the head hash index if absent.
func (b *BAT) buildHeadIdx() {
	if b.headIdx != nil {
		return
	}
	b.headIdx = make(map[OID][]int, len(b.head))
	for i, h := range b.head {
		b.headIdx[h] = append(b.headIdx[h], i)
	}
}

// FindHead returns the positions whose head equals oid, in insertion
// order.
func (b *BAT) FindHead(oid OID) []int {
	b.buildHeadIdx()
	return b.headIdx[oid]
}

// TailsOfHead returns all OID tails associated with head. Only valid
// for oid-kind BATs.
func (b *BAT) TailsOfHead(head OID) []OID {
	b.mustKind(KindOID)
	pos := b.FindHead(head)
	out := make([]OID, len(pos))
	for i, p := range pos {
		out[i] = b.tailOID[p]
	}
	return out
}

// StringOfHead returns the first string tail associated with head and
// whether one exists. Only valid for string-kind BATs.
func (b *BAT) StringOfHead(head OID) (string, bool) {
	b.mustKind(KindString)
	pos := b.FindHead(head)
	if len(pos) == 0 {
		return "", false
	}
	return b.tailStr[pos[0]], true
}

// IntOfHead returns the first int tail associated with head.
func (b *BAT) IntOfHead(head OID) (int64, bool) {
	b.mustKind(KindInt)
	pos := b.FindHead(head)
	if len(pos) == 0 {
		return 0, false
	}
	return b.tailInt[pos[0]], true
}

// FloatOfHead returns the first float tail associated with head.
func (b *BAT) FloatOfHead(head OID) (float64, bool) {
	b.mustKind(KindFloat)
	pos := b.FindHead(head)
	if len(pos) == 0 {
		return 0, false
	}
	return b.tailFloat[pos[0]], true
}

// BoolOfHead returns the first bool tail associated with head.
func (b *BAT) BoolOfHead(head OID) (bool, bool) {
	b.mustKind(KindBool)
	pos := b.FindHead(head)
	if len(pos) == 0 {
		return false, false
	}
	return b.tailBool[pos[0]], true
}

// SetFloatAt overwrites the float tail at position i in place. The
// head column is untouched, so lazily built head indexes stay valid —
// this is what lets derived relations like IDF be maintained
// incrementally instead of being rebuilt on every change.
func (b *BAT) SetFloatAt(i int, v float64) {
	b.mustKind(KindFloat)
	b.tailFloat[i] = v
}

// HeadsOfString returns all heads whose string tail equals v.
func (b *BAT) HeadsOfString(v string) []OID {
	b.mustKind(KindString)
	if b.strIdx == nil {
		b.strIdx = make(map[string][]int, len(b.tailStr))
		for i, s := range b.tailStr {
			b.strIdx[s] = append(b.strIdx[s], i)
		}
	}
	pos := b.strIdx[v]
	out := make([]OID, len(pos))
	for i, p := range pos {
		out[i] = b.head[p]
	}
	return out
}

// HeadsOfOID returns all heads whose oid tail equals v.
func (b *BAT) HeadsOfOID(v OID) []OID {
	b.mustKind(KindOID)
	if b.oidIdx == nil {
		b.oidIdx = make(map[OID][]int, len(b.tailOID))
		for i, t := range b.tailOID {
			b.oidIdx[t] = append(b.oidIdx[t], i)
		}
	}
	pos := b.oidIdx[v]
	out := make([]OID, len(pos))
	for i, p := range pos {
		out[i] = b.head[p]
	}
	return out
}

// HeadsOfInt returns all heads whose int tail equals v.
func (b *BAT) HeadsOfInt(v int64) []OID {
	b.mustKind(KindInt)
	if b.intIdx == nil {
		b.intIdx = make(map[int64][]int, len(b.tailInt))
		for i, t := range b.tailInt {
			b.intIdx[t] = append(b.intIdx[t], i)
		}
	}
	pos := b.intIdx[v]
	out := make([]OID, len(pos))
	for i, p := range pos {
		out[i] = b.head[p]
	}
	return out
}

// Heads returns a copy of the head column.
func (b *BAT) Heads() []OID {
	out := make([]OID, len(b.head))
	copy(out, b.head)
	return out
}

// Reverse returns a new BAT with head and tail swapped. Only defined
// for oid-kind BATs (the only ones where both columns are OIDs).
func (b *BAT) Reverse() *BAT {
	b.mustKind(KindOID)
	r := New(b.name+".reverse", KindOID)
	r.head = append(r.head, b.tailOID...)
	r.tailOID = append(r.tailOID, b.head...)
	return r
}

// SelectFloatRange returns the heads whose float tail t satisfies
// lo <= t <= hi.
func (b *BAT) SelectFloatRange(lo, hi float64) []OID {
	b.mustKind(KindFloat)
	var out []OID
	for i, t := range b.tailFloat {
		if t >= lo && t <= hi {
			out = append(out, b.head[i])
		}
	}
	return out
}

// SelectIntRange returns the heads whose int tail t satisfies
// lo <= t <= hi.
func (b *BAT) SelectIntRange(lo, hi int64) []OID {
	b.mustKind(KindInt)
	var out []OID
	for i, t := range b.tailInt {
		if t >= lo && t <= hi {
			out = append(out, b.head[i])
		}
	}
	return out
}

// SelectString returns the heads whose string tail satisfies pred.
func (b *BAT) SelectString(pred func(string) bool) []OID {
	b.mustKind(KindString)
	var out []OID
	for i, t := range b.tailStr {
		if pred(t) {
			out = append(out, b.head[i])
		}
	}
	return out
}

// SemijoinHeads returns the positions of associations whose head is in
// set, preserving order. This is the Monet semijoin used to restrict a
// relation to a candidate set (the paper's a-priori restriction hook).
func (b *BAT) SemijoinHeads(set map[OID]bool) []int {
	var out []int
	for i, h := range b.head {
		if set[h] {
			out = append(out, i)
		}
	}
	return out
}

// JoinOID joins b (oid-kind) with other on b.tail = other.head and
// returns (b.head, other tail position) pairs as parallel slices of
// positions into b and other. It implements the BAT join the physical
// algebra uses to walk parent/child path steps.
func (b *BAT) JoinOID(other *BAT) (left, right []int) {
	b.mustKind(KindOID)
	other.buildHeadIdx()
	for i, t := range b.tailOID {
		for _, j := range other.headIdx[t] {
			left = append(left, i)
			right = append(right, j)
		}
	}
	return left, right
}

// Delete removes all associations whose head equals oid and reports
// how many were removed. Used by incremental maintenance when the FDS
// invalidates parse-tree nodes.
func (b *BAT) Delete(head OID) int {
	n := 0
	w := 0
	for i := range b.head {
		if b.head[i] == head {
			n++
			continue
		}
		b.head[w] = b.head[i]
		switch b.kind {
		case KindOID:
			b.tailOID[w] = b.tailOID[i]
		case KindString:
			b.tailStr[w] = b.tailStr[i]
		case KindInt:
			b.tailInt[w] = b.tailInt[i]
		case KindFloat:
			b.tailFloat[w] = b.tailFloat[i]
		case KindBool:
			b.tailBool[w] = b.tailBool[i]
		}
		w++
	}
	b.truncate(w)
	if n > 0 {
		b.invalidate()
	}
	return n
}

// DeleteTailOID removes all associations whose OID tail equals oid and
// reports how many were removed. Since OIDs are unique per node, this
// removes the edge pointing at a node when a subtree is invalidated.
func (b *BAT) DeleteTailOID(tail OID) int {
	b.mustKind(KindOID)
	n := 0
	w := 0
	for i := range b.head {
		if b.tailOID[i] == tail {
			n++
			continue
		}
		b.head[w] = b.head[i]
		b.tailOID[w] = b.tailOID[i]
		w++
	}
	b.truncate(w)
	if n > 0 {
		b.invalidate()
	}
	return n
}

// DeleteHeads removes all associations whose head is in set and
// reports how many were removed.
func (b *BAT) DeleteHeads(set map[OID]bool) int {
	n := 0
	w := 0
	for i := range b.head {
		if set[b.head[i]] {
			n++
			continue
		}
		b.head[w] = b.head[i]
		switch b.kind {
		case KindOID:
			b.tailOID[w] = b.tailOID[i]
		case KindString:
			b.tailStr[w] = b.tailStr[i]
		case KindInt:
			b.tailInt[w] = b.tailInt[i]
		case KindFloat:
			b.tailFloat[w] = b.tailFloat[i]
		case KindBool:
			b.tailBool[w] = b.tailBool[i]
		}
		w++
	}
	b.truncate(w)
	if n > 0 {
		b.invalidate()
	}
	return n
}

func (b *BAT) truncate(w int) {
	b.head = b.head[:w]
	switch b.kind {
	case KindOID:
		b.tailOID = b.tailOID[:w]
	case KindString:
		b.tailStr = b.tailStr[:w]
	case KindInt:
		b.tailInt = b.tailInt[:w]
	case KindFloat:
		b.tailFloat = b.tailFloat[:w]
	case KindBool:
		b.tailBool = b.tailBool[:w]
	}
}

// SortByIntTail sorts the associations ascending by int tail,
// preserving a stable order among equal tails. Used to materialise
// rank order when reconstructing documents.
func (b *BAT) SortByIntTail() {
	b.mustKind(KindInt)
	idx := make([]int, len(b.head))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return b.tailInt[idx[i]] < b.tailInt[idx[j]] })
	nh := make([]OID, len(b.head))
	nt := make([]int64, len(b.tailInt))
	for i, p := range idx {
		nh[i] = b.head[p]
		nt[i] = b.tailInt[p]
	}
	b.head, b.tailInt = nh, nt
	b.invalidate()
}

// Store is a named collection of BATs: the database instance. Relation
// names are the paths of the Monet transform ("R(path)") plus the IR
// helper relations. A Store additionally owns the OID sequence so all
// relations draw from one OID space, as in Monet.
type Store struct {
	mu   sync.RWMutex
	bats map[string]*BAT
	seq  *Sequence
}

// NewStore returns an empty store with a fresh OID sequence.
func NewStore() *Store {
	return &Store{bats: make(map[string]*BAT), seq: NewSequence()}
}

// Seq returns the store's OID sequence.
func (s *Store) Seq() *Sequence { return s.seq }

// Get returns the BAT with the given name, or nil if absent.
func (s *Store) Get(name string) *BAT {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bats[name]
}

// GetOrCreate returns the BAT with the given name, creating it with
// the given kind if absent. It panics if the BAT exists with a
// different kind: the schema-tree machinery guarantees path→kind
// stability, so a mismatch is a bug.
func (s *Store) GetOrCreate(name string, kind Kind) *BAT {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.bats[name]; ok {
		if b.kind != kind {
			panic(fmt.Sprintf("bat: relation %s exists with kind %s, requested %s", name, b.kind, kind))
		}
		return b
	}
	b := New(name, kind)
	s.bats[name] = b
	return b
}

// Names returns all relation names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bats))
	for n := range s.bats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes the named relation.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bats, name)
}

// TotalAssociations returns the number of associations over all
// relations; a cheap size metric used by the experiments.
func (s *Store) TotalAssociations() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.bats {
		n += b.Len()
	}
	return n
}
