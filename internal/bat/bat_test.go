package bat

import (
	"testing"
	"testing/quick"
)

func TestSequenceMonotonic(t *testing.T) {
	s := NewSequence()
	prev := OID(0)
	for i := 0; i < 100; i++ {
		o := s.Next()
		if o <= prev {
			t.Fatalf("OID %d not greater than previous %d", o, prev)
		}
		prev = o
	}
}

func TestSequenceNeverNil(t *testing.T) {
	s := NewSequence()
	if o := s.Next(); o == NilOID {
		t.Fatal("sequence issued NilOID")
	}
}

func TestSequencePeek(t *testing.T) {
	s := NewSequence()
	p := s.Peek()
	if got := s.Next(); got != p {
		t.Fatalf("Peek=%d but Next=%d", p, got)
	}
	if s.Peek() == p {
		t.Fatal("Peek did not advance after Next")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindOID: "oid", KindString: "str", KindInt: "int",
		KindFloat: "flt", KindBool: "bit",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAppendAndLookupString(t *testing.T) {
	b := New("image[key]", KindString)
	b.AppendString(1, "18934")
	b.AppendString(2, "777")
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	v, ok := b.StringOfHead(1)
	if !ok || v != "18934" {
		t.Fatalf("StringOfHead(1) = %q,%v", v, ok)
	}
	if _, ok := b.StringOfHead(99); ok {
		t.Fatal("StringOfHead(99) should be absent")
	}
	heads := b.HeadsOfString("777")
	if len(heads) != 1 || heads[0] != 2 {
		t.Fatalf("HeadsOfString = %v", heads)
	}
}

func TestAppendKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	b := New("x", KindString)
	b.AppendInt(1, 5)
}

func TestOIDAssociations(t *testing.T) {
	b := New("image/colors", KindOID)
	b.AppendOID(1, 10)
	b.AppendOID(1, 11)
	b.AppendOID(2, 12)
	tails := b.TailsOfHead(1)
	if len(tails) != 2 || tails[0] != 10 || tails[1] != 11 {
		t.Fatalf("TailsOfHead(1) = %v", tails)
	}
	heads := b.HeadsOfOID(12)
	if len(heads) != 1 || heads[0] != 2 {
		t.Fatalf("HeadsOfOID(12) = %v", heads)
	}
}

func TestReverse(t *testing.T) {
	b := New("e", KindOID)
	b.AppendOID(1, 10)
	b.AppendOID(2, 20)
	r := b.Reverse()
	if r.Head(0) != 10 || r.TailOID(0) != 1 {
		t.Fatalf("reverse mismatch: %v -> %v", r.Head(0), r.TailOID(0))
	}
	// Reversing must not alias the original.
	r.AppendOID(99, 99)
	if b.Len() != 2 {
		t.Fatal("Reverse aliases original BAT")
	}
}

func TestIntAndFloatSelect(t *testing.T) {
	f := New("player/yPos", KindFloat)
	f.AppendFloat(1, 150.0)
	f.AppendFloat(2, 200.0)
	f.AppendFloat(3, 169.9)
	got := f.SelectFloatRange(0, 170.0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SelectFloatRange = %v", got)
	}

	i := New("frameNo", KindInt)
	i.AppendInt(1, 5)
	i.AppendInt(2, 50)
	gi := i.SelectIntRange(10, 100)
	if len(gi) != 1 || gi[0] != 2 {
		t.Fatalf("SelectIntRange = %v", gi)
	}
}

func TestSelectString(t *testing.T) {
	b := New("type", KindString)
	b.AppendString(1, "tennis")
	b.AppendString(2, "other")
	b.AppendString(3, "tennis")
	got := b.SelectString(func(s string) bool { return s == "tennis" })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SelectString = %v", got)
	}
}

func TestBoolTail(t *testing.T) {
	b := New("netplay", KindBool)
	b.AppendBool(7, true)
	v, ok := b.BoolOfHead(7)
	if !ok || !v {
		t.Fatalf("BoolOfHead = %v,%v", v, ok)
	}
}

func TestIntOfHeadAndFloatOfHead(t *testing.T) {
	i := New("n", KindInt)
	i.AppendInt(4, 42)
	if v, ok := i.IntOfHead(4); !ok || v != 42 {
		t.Fatalf("IntOfHead = %v,%v", v, ok)
	}
	if _, ok := i.IntOfHead(5); ok {
		t.Fatal("IntOfHead(5) should be absent")
	}
	f := New("f", KindFloat)
	f.AppendFloat(4, 1.5)
	if v, ok := f.FloatOfHead(4); !ok || v != 1.5 {
		t.Fatalf("FloatOfHead = %v,%v", v, ok)
	}
}

func TestJoinOID(t *testing.T) {
	// parent -> child ; child -> grandchild
	e1 := New("a/b", KindOID)
	e1.AppendOID(1, 10)
	e1.AppendOID(2, 20)
	e2 := New("a/b/c", KindOID)
	e2.AppendOID(10, 100)
	e2.AppendOID(10, 101)
	e2.AppendOID(30, 300)
	l, r := e1.JoinOID(e2)
	if len(l) != 2 {
		t.Fatalf("join size = %d, want 2", len(l))
	}
	for k := range l {
		if e1.TailOID(l[k]) != e2.Head(r[k]) {
			t.Fatalf("join pair %d not matching", k)
		}
	}
}

func TestDelete(t *testing.T) {
	b := New("x", KindString)
	b.AppendString(1, "a")
	b.AppendString(2, "b")
	b.AppendString(1, "c")
	if n := b.Delete(1); n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if b.Len() != 1 {
		t.Fatalf("Len after delete = %d", b.Len())
	}
	if v, _ := b.StringOfHead(2); v != "b" {
		t.Fatalf("surviving tuple corrupted: %q", v)
	}
	if n := b.Delete(99); n != 0 {
		t.Fatalf("Delete(99) removed %d, want 0", n)
	}
}

func TestDeleteHeads(t *testing.T) {
	b := New("x", KindInt)
	for i := OID(1); i <= 10; i++ {
		b.AppendInt(i, int64(i))
	}
	n := b.DeleteHeads(map[OID]bool{2: true, 4: true, 6: true})
	if n != 3 || b.Len() != 7 {
		t.Fatalf("DeleteHeads removed %d, len %d", n, b.Len())
	}
	if _, ok := b.IntOfHead(4); ok {
		t.Fatal("deleted head still present")
	}
}

func TestSemijoinHeads(t *testing.T) {
	b := New("x", KindString)
	b.AppendString(1, "a")
	b.AppendString(2, "b")
	b.AppendString(3, "c")
	pos := b.SemijoinHeads(map[OID]bool{1: true, 3: true})
	if len(pos) != 2 || pos[0] != 0 || pos[1] != 2 {
		t.Fatalf("SemijoinHeads = %v", pos)
	}
}

func TestSortByIntTail(t *testing.T) {
	b := New("rank", KindInt)
	b.AppendInt(3, 30)
	b.AppendInt(1, 10)
	b.AppendInt(2, 20)
	b.SortByIntTail()
	want := []OID{1, 2, 3}
	for i, w := range want {
		if b.Head(i) != w {
			t.Fatalf("pos %d head = %d, want %d", i, b.Head(i), w)
		}
	}
}

func TestStoreGetOrCreate(t *testing.T) {
	s := NewStore()
	b1 := s.GetOrCreate("r1", KindString)
	b2 := s.GetOrCreate("r1", KindString)
	if b1 != b2 {
		t.Fatal("GetOrCreate did not return same BAT")
	}
	if s.Get("nope") != nil {
		t.Fatal("Get of absent relation should be nil")
	}
}

func TestStoreKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	s := NewStore()
	s.GetOrCreate("r1", KindString)
	s.GetOrCreate("r1", KindInt)
}

func TestStoreNamesSortedAndDrop(t *testing.T) {
	s := NewStore()
	s.GetOrCreate("b", KindInt)
	s.GetOrCreate("a", KindInt)
	s.GetOrCreate("c", KindInt)
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("Names = %v", names)
	}
	s.Drop("b")
	if s.Get("b") != nil {
		t.Fatal("Drop failed")
	}
}

func TestStoreTotalAssociations(t *testing.T) {
	s := NewStore()
	a := s.GetOrCreate("a", KindInt)
	a.AppendInt(1, 1)
	a.AppendInt(2, 2)
	b := s.GetOrCreate("b", KindString)
	b.AppendString(3, "x")
	if got := s.TotalAssociations(); got != 3 {
		t.Fatalf("TotalAssociations = %d", got)
	}
}

// Property: for any set of (head, tail) pairs inserted, every inserted
// pair is found again through both directions of lookup.
func TestPropertyInsertLookupRoundTrip(t *testing.T) {
	f := func(pairs []struct {
		H uint16
		T uint16
	}) bool {
		b := New("p", KindOID)
		for _, p := range pairs {
			b.AppendOID(OID(p.H)+1, OID(p.T)+1)
		}
		for _, p := range pairs {
			found := false
			for _, tl := range b.TailsOfHead(OID(p.H) + 1) {
				if tl == OID(p.T)+1 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
			found = false
			for _, h := range b.HeadsOfOID(OID(p.T) + 1) {
				if h == OID(p.H)+1 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse(Reverse(b)) has identical contents to b.
func TestPropertyDoubleReverse(t *testing.T) {
	f := func(hs, ts []uint8) bool {
		n := len(hs)
		if len(ts) < n {
			n = len(ts)
		}
		b := New("p", KindOID)
		for i := 0; i < n; i++ {
			b.AppendOID(OID(hs[i]), OID(ts[i]))
		}
		rr := b.Reverse().Reverse()
		if rr.Len() != b.Len() {
			return false
		}
		for i := 0; i < b.Len(); i++ {
			if rr.Head(i) != b.Head(i) || rr.TailOID(i) != b.TailOID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Delete(h) leaves no association with head h and preserves
// all others in order.
func TestPropertyDeletePreservesOthers(t *testing.T) {
	f := func(hs []uint8, victim uint8) bool {
		b := New("p", KindInt)
		var kept []OID
		for i, h := range hs {
			b.AppendInt(OID(h), int64(i))
			if OID(h) != OID(victim) {
				kept = append(kept, OID(h))
			}
		}
		b.Delete(OID(victim))
		if b.Len() != len(kept) {
			return false
		}
		for i, h := range kept {
			if b.Head(i) != h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendString(b *testing.B) {
	bt := New("bench", KindString)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bt.AppendString(OID(i), "value")
	}
}

func BenchmarkFindHead(b *testing.B) {
	bt := New("bench", KindOID)
	for i := 0; i < 100000; i++ {
		bt.AppendOID(OID(i%1000), OID(i))
	}
	bt.FindHead(1) // build index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.FindHead(OID(i % 1000))
	}
}
