// Package query implements the paper's querying stage: a declarative
// query language over the webspace schema in which conceptual
// selections and joins, content-based IR ranking (contains) and
// feature-grammar event predicates (event) mix freely — the
// integration traditional search engines lack. Under the hood queries
// break down to structured searches over the path-named binary
// relations of the physical level.
package query

import (
	"sort"
	"strconv"
	"strings"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
)

// Database is the physical access layer the executor runs against:
// the Monet XML store holding both the conceptual documents and the
// multimedia meta-index, plus one full-text index per Hypertext
// attribute (keyed "Class.attr") whose document oids are the owning
// object element oids.
type Database struct {
	Store *monetxml.Store
	IR    map[string]*ir.Index

	// ResolveTerms, when set, resolves query text to term oids for an
	// index — the engine injects its query-side LRU cache here so hot
	// queries skip the tokenize/stop/stem pipeline. Nil falls back to
	// uncached resolution inside the index.
	ResolveTerms func(*ir.Index, string) []bat.OID

	objects *objectIndex
	events  map[string][]ShotEvent
}

// NewDatabase wraps a store and IR indexes.
func NewDatabase(store *monetxml.Store, irIdx map[string]*ir.Index) *Database {
	if irIdx == nil {
		irIdx = map[string]*ir.Index{}
	}
	return &Database{Store: store, IR: irIdx}
}

// InvalidateCaches drops derived access paths after new data arrives.
func (db *Database) InvalidateCaches() {
	db.objects = nil
	db.events = nil
}

// Warm builds the derived access paths eagerly. The paths are
// otherwise built lazily on first use, which is unsafe once a serving
// layer evaluates queries concurrently — call Warm under the writer's
// lock after ingest (and after InvalidateCaches) so concurrent readers
// only ever see fully built caches.
func (db *Database) Warm() {
	db.index()
	db.VideoEvents()
}

// Warmed reports whether the derived access paths are currently built:
// a reader holding only a shared lock may execute queries iff this is
// true, since nothing will trigger a lazy rebuild.
func (db *Database) Warmed() bool {
	return db.objects != nil && db.events != nil
}

// --- conceptual object access over the path relations ---

// objectIndex is a derived access path over the webspace relations:
// object oids by class, attribute values per object, association
// pairs. It is rebuilt lazily after population.
type objectIndex struct {
	byClass map[string][]bat.OID
	qidOf   map[bat.OID]string
	oidOf   map[string]bat.OID
	attrs   map[bat.OID]map[string]string
	// assoc name -> list of (fromQID, toQID)
	assocs map[string][][2]string
}

func (db *Database) index() *objectIndex {
	if db.objects != nil {
		return db.objects
	}
	ix := &objectIndex{
		byClass: map[string][]bat.OID{},
		qidOf:   map[bat.OID]string{},
		oidOf:   map[string]bat.OID{},
		attrs:   map[bat.OID]map[string]string{},
		assocs:  map[string][][2]string{},
	}
	db.objects = ix
	classRel := db.Store.Relation("webspace/object[class]")
	idRel := db.Store.Relation("webspace/object[id]")
	if classRel == nil || idRel == nil {
		return ix
	}
	for i := 0; i < classRel.Len(); i++ {
		oid := classRel.Head(i)
		class := classRel.TailString(i)
		id, _ := idRel.StringOfHead(oid)
		qid := class + ":" + id
		ix.byClass[class] = append(ix.byClass[class], oid)
		ix.qidOf[oid] = qid
		ix.oidOf[qid] = oid
		ix.attrs[oid] = map[string]string{}
	}
	// Attribute values: webspace/object/attr elements with [name] and
	// pcdata content.
	attrEdge := db.Store.Relation("webspace/object/attr")
	attrName := db.Store.Relation("webspace/object/attr[name]")
	if attrEdge != nil && attrName != nil {
		for i := 0; i < attrEdge.Len(); i++ {
			owner := attrEdge.Head(i)
			attrOID := attrEdge.TailOID(i)
			name, _ := attrName.StringOfHead(attrOID)
			if m, ok := ix.attrs[owner]; ok && name != "" {
				m[name] = db.Store.TextOf("webspace/object/attr", attrOID)
			}
		}
	}
	// Associations.
	an := db.Store.Relation("webspace/assoc[name]")
	af := db.Store.Relation("webspace/assoc[from]")
	at := db.Store.Relation("webspace/assoc[to]")
	if an != nil && af != nil && at != nil {
		for i := 0; i < an.Len(); i++ {
			oid := an.Head(i)
			name := an.TailString(i)
			from, _ := af.StringOfHead(oid)
			to, _ := at.StringOfHead(oid)
			ix.assocs[name] = append(ix.assocs[name], [2]string{from, to})
		}
	}
	return ix
}

// ObjectsOfClass returns the element oids of all objects of a class.
func (db *Database) ObjectsOfClass(class string) []bat.OID {
	return append([]bat.OID(nil), db.index().byClass[class]...)
}

// AttrOf returns an attribute value of an object.
func (db *Database) AttrOf(oid bat.OID, attr string) string {
	return db.index().attrs[oid][attr]
}

// QIDOf returns the qualified id of an object element.
func (db *Database) QIDOf(oid bat.OID) string { return db.index().qidOf[oid] }

// OIDOf returns the element oid of a qualified id.
func (db *Database) OIDOf(qid string) (bat.OID, bool) {
	oid, ok := db.index().oidOf[qid]
	return oid, ok
}

// AssocPairs returns the (from, to) qualified-id pairs of an
// association.
func (db *Database) AssocPairs(name string) [][2]string {
	return db.index().assocs[name]
}

// --- meta-index access (video events) ---

// ShotEvent is a shot of a video with its recognised event state.
// Tennis marks shots classified as court play; a tennis shot without a
// netplay event is a baseline rally in the COBRA event layer.
type ShotEvent struct {
	Begin, End int
	Tennis     bool
	Netplay    bool
}

// mmoPaths are the parse-tree paths of the tennis grammar's stored
// meta-data.
const (
	pathLocation = "MMO/location"
	pathShot     = "MMO/mm_type/video/segment/shot"
	pathBegin    = "MMO/mm_type/video/segment/shot/begin"
	pathEnd      = "MMO/mm_type/video/segment/shot/end"
	pathNetplay  = "MMO/mm_type/video/segment/shot/type/tennis/event/netplay"
)

// VideoEvents derives (and caches) the per-video shot/event table from
// the meta-index: location URL -> tennis shots with netplay state.
// Everything is resolved through the path-named relations the FDE
// parse trees were stored into.
func (db *Database) VideoEvents() map[string][]ShotEvent {
	if db.events != nil {
		return db.events
	}
	out := map[string][]ShotEvent{}
	db.events = out
	shotRel := db.Store.Relation(pathShot)
	if shotRel == nil {
		return out
	}
	// location per MMO root.
	locByRoot := map[bat.OID]string{}
	if locEdge := db.Store.Relation(pathLocation); locEdge != nil {
		for i := 0; i < locEdge.Len(); i++ {
			root := locEdge.Head(i)
			locByRoot[root] = db.Store.TextOf(pathLocation, locEdge.TailOID(i))
		}
	}
	for i := 0; i < shotRel.Len(); i++ {
		shotOID := shotRel.TailOID(i)
		// Owning MMO root: shot -> segment -> video -> mm_type -> MMO.
		path, oid := pathShot, shotOID
		for {
			ppath, poid, ok := db.Store.ParentOf(path, oid)
			if !ok {
				break
			}
			path, oid = ppath, poid
		}
		loc := locByRoot[oid]
		ev := ShotEvent{
			Begin: db.intBelow(pathBegin, shotOID),
			End:   db.intBelow(pathEnd, shotOID),
		}
		// netplay, if the shot was a tennis shot (a tennis shot always
		// carries a netplay event node, true or false).
		for _, npOID := range db.netplayOf(shotOID) {
			ev.Tennis = true
			if db.Store.TextOf(pathNetplay, npOID) == "true" {
				ev.Netplay = true
			}
		}
		out[loc] = append(out[loc], ev)
	}
	for loc := range out {
		sort.Slice(out[loc], func(i, j int) bool { return out[loc][i].Begin < out[loc][j].Begin })
	}
	return out
}

// intBelow reads the frameNo below a shot's begin/end element,
// preferring the typed relation over the character data.
func (db *Database) intBelow(path string, shot bat.OID) int {
	edge := db.Store.Relation(path)
	fEdge := db.Store.Relation(path + "/frameNo")
	if edge == nil || fEdge == nil {
		return 0
	}
	typed := db.Store.Relation(path + "/frameNo[*int]")
	for _, elem := range edge.TailsOfHead(shot) {
		for _, f := range fEdge.TailsOfHead(elem) {
			if typed != nil {
				if v, ok := typed.IntOfHead(f); ok {
					return int(v)
				}
			}
			if v := db.Store.TextOf(path+"/frameNo", f); v != "" {
				if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
					return n
				}
			}
		}
	}
	return 0
}

// netplayOf returns the netplay element oids below a shot, walking the
// edge relations shot → type → tennis → event → netplay.
func (db *Database) netplayOf(shot bat.OID) []bat.OID {
	var out []bat.OID
	typeEdge := db.Store.Relation(pathShot + "/type")
	tennisEdge := db.Store.Relation(pathShot + "/type/tennis")
	eventEdge := db.Store.Relation(pathShot + "/type/tennis/event")
	npEdge := db.Store.Relation(pathNetplay)
	if typeEdge == nil || tennisEdge == nil || eventEdge == nil || npEdge == nil {
		return out
	}
	for _, ty := range typeEdge.TailsOfHead(shot) {
		for _, tn := range tennisEdge.TailsOfHead(ty) {
			for _, ev := range eventEdge.TailsOfHead(tn) {
				out = append(out, npEdge.TailsOfHead(ev)...)
			}
		}
	}
	return out
}
