package query

import (
	"fmt"
	"sort"
	"strings"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Row is one result binding: the projected values, the accumulated IR
// score and, when an event predicate matched, the matching shots.
type Row struct {
	Values []string
	Score  float64
	Shots  []ShotEvent
}

// Result is a ranked query result.
type Result struct {
	Columns []string
	Rows    []Row
}

// ExecStats expose optimizer-relevant cost counters (experiment E17).
type ExecStats struct {
	ConceptualCandidates int // objects surviving conceptual selections
	IRDocsScored         int // documents the IR predicates scored
	EventChecks          int // meta-index lookups
	BindingsEnumerated   int // join bindings considered
}

// ContentRanker evaluates the content-based (contains) predicates of
// a query: the executor resolves every structural and conceptual
// predicate itself, and hands each IR ranking to the ranker. The
// default ranker scores the database's local per-attribute indexes;
// a serving layer may inject one that fans the ranking out over a
// distributed cluster instead — the conceptual engine then runs
// unchanged on top of remote content.
type ContentRanker interface {
	// Collection reports the document count behind the index key
	// ("Class.attr") and whether the key is served at all; the count
	// is the unrestricted ranking's n.
	Collection(key string) (int, bool)
	// Rank returns the RES set of one contains predicate: at most n
	// results over the key's collection, restricted to the candidate
	// set when non-nil (a nil map means unrestricted). The quality
	// estimate is the zero value for an exact evaluation and the
	// budgeted plan's accounting otherwise; the executor folds
	// non-zero estimates into its cumulative Quality.
	Rank(key, text string, n int, candidates map[bat.OID]bool) ([]ir.Result, ir.QualityEstimate, error)
}

// Executor evaluates queries against a Database. The default plan
// applies the paper's optimizer hooks: cheap conceptual selections
// restrict the candidate set a-priori before the IR ranking runs
// (DisableRestriction turns this off to quantify the benefit).
//
// Plan, when set, makes the executor evaluate unrestricted contains
// predicates under a fragment-budgeted ir.EvalPlan — the idf cut-off
// as a first-class execution strategy — accumulating the achieved
// quality in Quality. Predicates carrying an a-priori candidate
// restriction fall back to exact evaluation: the conceptual
// restriction is already the cheaper cut, and stacking a lossy one on
// top would make the quality accounting lie about it.
//
// Ranker, when set, replaces the database's local index scoring for
// contains predicates (see ContentRanker); nil selects the local
// ranker, byte-identical to the pre-interface executor.
type Executor struct {
	DB                 *Database
	DisableRestriction bool
	Plan               *ir.EvalPlan
	Ranker             ContentRanker
	Quality            ir.QualityEstimate
	Stats              ExecStats
}

// NewExecutor returns an executor over the database.
func NewExecutor(db *Database) *Executor { return &Executor{DB: db} }

// ranker resolves the effective content ranker. The local default is
// the executor itself under a named type, so selecting it allocates
// nothing (a pointer conversion, not a wrapper struct).
func (ex *Executor) ranker() ContentRanker {
	if ex.Ranker != nil {
		return ex.Ranker
	}
	return (*localRanker)(ex)
}

// localRanker is the default ContentRanker: it scores the database's
// own per-attribute indexes, going through the database's term
// resolver — the engine's query cache — when one is injected, and
// through the budgeted plan when one is picked and the predicate is
// unrestricted.
type localRanker Executor

// Collection implements ContentRanker.
func (r *localRanker) Collection(key string) (int, bool) {
	idx := r.DB.IR[key]
	if idx == nil {
		return 0, false
	}
	return idx.DocCount(), true
}

// Rank implements ContentRanker (nil candidates = unrestricted).
func (r *localRanker) Rank(key, text string, n int, candidates map[bat.OID]bool) ([]ir.Result, ir.QualityEstimate, error) {
	idx := r.DB.IR[key]
	if idx == nil {
		return nil, ir.QualityEstimate{}, fmt.Errorf("query: no full-text index for %s", key)
	}
	if r.Plan != nil && candidates == nil {
		plan := *r.Plan
		plan.N = n
		if r.DB.ResolveTerms != nil {
			idx.Freeze() // resolve against frozen state, like the exact path
			res, est := idx.TopNPlanTerms(r.DB.ResolveTerms(idx, text), plan)
			return res, est, nil
		}
		res, est := idx.TopNPlan(text, plan)
		return res, est, nil
	}
	if r.DB.ResolveTerms != nil {
		idx.Freeze()
		return idx.TopNTermsRestricted(r.DB.ResolveTerms(idx, text), n, candidates), ir.QualityEstimate{}, nil
	}
	return idx.TopNRestricted(text, n, candidates), ir.QualityEstimate{}, nil
}

// Run evaluates a parsed query.
func (ex *Executor) Run(q *Query) (*Result, error) {
	ex.Stats = ExecStats{}
	// 1. Candidate sets per variable: all objects of the bound class.
	cands := map[string][]bat.OID{}
	for _, b := range q.From {
		cands[b.Var] = ex.DB.ObjectsOfClass(b.Class)
	}
	scores := map[string]map[bat.OID]float64{}
	shots := map[string]map[bat.OID][]ShotEvent{}

	// 2. Conceptual selections first (a-priori restriction).
	for _, p := range q.Preds {
		ap, ok := p.(*AttrPred)
		if !ok {
			continue
		}
		var kept []bat.OID
		for _, oid := range cands[ap.Field.Var] {
			if cmpStrings(ex.DB.AttrOf(oid, ap.Field.Attr), ap.Op, ap.Value) {
				kept = append(kept, oid)
			}
		}
		cands[ap.Field.Var] = kept
	}
	for _, set := range cands {
		ex.Stats.ConceptualCandidates += len(set)
	}

	// 3. Content-based IR predicates, evaluated by the content ranker
	// (local indexes by default, a cluster fan-out when injected).
	ranker := ex.ranker()
	for _, p := range q.Preds {
		cp, ok := p.(*ContainsPred)
		if !ok {
			continue
		}
		b, _ := q.Binding(cp.Field.Var)
		key := b.Class + "." + cp.Field.Attr
		total, served := ranker.Collection(key)
		if !served {
			return nil, fmt.Errorf("query: no full-text index for %s.%s", b.Class, cp.Field.Attr)
		}
		var ranked []rankedDoc
		var est ir.QualityEstimate
		if ex.DisableRestriction {
			// Unoptimized: rank the whole collection, filter late.
			res, e, err := ranker.Rank(key, cp.Text, total, nil)
			if err != nil {
				return nil, err
			}
			est = e
			for _, r := range res {
				ranked = append(ranked, rankedDoc{r.Doc, r.Score})
			}
		} else {
			// Optimized: push the conceptual candidate set below the
			// ranking (the paper's a-priori restriction).
			set := make(map[bat.OID]bool, len(cands[cp.Field.Var]))
			for _, oid := range cands[cp.Field.Var] {
				set[oid] = true
			}
			res, e, err := ranker.Rank(key, cp.Text, len(set), set)
			if err != nil {
				return nil, err
			}
			est = e
			for _, r := range res {
				ranked = append(ranked, rankedDoc{r.Doc, r.Score})
			}
		}
		if est != (ir.QualityEstimate{}) {
			ex.Quality = ir.MergeQuality(ex.Quality, est)
		}
		ex.Stats.IRDocsScored += len(ranked)
		sc := scores[cp.Field.Var]
		if sc == nil {
			sc = map[bat.OID]float64{}
			scores[cp.Field.Var] = sc
		}
		inRank := map[bat.OID]bool{}
		for _, r := range ranked {
			inRank[r.doc] = true
			sc[r.doc] += r.score
		}
		var kept []bat.OID
		for _, oid := range cands[cp.Field.Var] {
			if inRank[oid] {
				kept = append(kept, oid)
			}
		}
		cands[cp.Field.Var] = kept
	}

	// 4. Event predicates against the multimedia meta-index.
	for _, p := range q.Preds {
		ep, ok := p.(*EventPred)
		if !ok {
			continue
		}
		var match func(ShotEvent) bool
		switch strings.ToLower(ep.Event) {
		case "netplay":
			match = func(s ShotEvent) bool { return s.Netplay }
		case "rally", "baseline_rally":
			match = func(s ShotEvent) bool { return s.Tennis && !s.Netplay }
		default:
			return nil, fmt.Errorf("query: unknown event %q", ep.Event)
		}
		events := ex.DB.VideoEvents()
		sh := shots[ep.Field.Var]
		if sh == nil {
			sh = map[bat.OID][]ShotEvent{}
			shots[ep.Field.Var] = sh
		}
		var kept []bat.OID
		for _, oid := range cands[ep.Field.Var] {
			ex.Stats.EventChecks++
			url := ex.DB.AttrOf(oid, ep.Field.Attr)
			var matched []ShotEvent
			for _, s := range events[url] {
				if match(s) {
					matched = append(matched, s)
				}
			}
			if len(matched) > 0 {
				kept = append(kept, oid)
				sh[oid] = matched
			}
		}
		cands[ep.Field.Var] = kept
	}

	// 5. Association joins + binding enumeration.
	assocIdx := map[string]map[string][]string{} // pred key -> from qid -> to qids
	var assocPreds []*AssocPred
	for _, p := range q.Preds {
		if apd, ok := p.(*AssocPred); ok {
			assocPreds = append(assocPreds, apd)
			m := map[string][]string{}
			for _, pair := range ex.DB.AssocPairs(apd.Name) {
				m[pair[0]] = append(m[pair[0]], pair[1])
			}
			assocIdx[assocKey(apd)] = m
		}
	}

	res := &Result{}
	for _, f := range q.Select {
		res.Columns = append(res.Columns, f.String())
	}
	binding := map[string]bat.OID{}
	var enumerate func(i int)
	enumerate = func(i int) {
		if i == len(q.From) {
			ex.Stats.BindingsEnumerated++
			row := Row{}
			for _, f := range q.Select {
				row.Values = append(row.Values, ex.DB.AttrOf(binding[f.Var], f.Attr))
			}
			for v, sc := range scores {
				row.Score += sc[binding[v]]
			}
			for v, sh := range shots {
				row.Shots = append(row.Shots, sh[binding[v]]...)
			}
			res.Rows = append(res.Rows, row)
			return
		}
		b := q.From[i]
		for _, oid := range cands[b.Var] {
			binding[b.Var] = oid
			if ex.assocsHold(assocPreds, assocIdx, q, binding, i) {
				enumerate(i + 1)
			}
		}
		delete(binding, b.Var)
	}
	enumerate(0)

	// 6. Rank by IR score (desc), then projected values for
	// determinism; apply LIMIT.
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if res.Rows[i].Score != res.Rows[j].Score {
			return res.Rows[i].Score > res.Rows[j].Score
		}
		return strings.Join(res.Rows[i].Values, "\x00") < strings.Join(res.Rows[j].Values, "\x00")
	})
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

type rankedDoc struct {
	doc   bat.OID
	score float64
}

func assocKey(a *AssocPred) string { return a.Name + "/" + a.FromVar + "/" + a.ToVar }

// assocsHold checks all association predicates whose variables are
// bound after binding variable i.
func (ex *Executor) assocsHold(preds []*AssocPred, idx map[string]map[string][]string, q *Query, binding map[string]bat.OID, i int) bool {
	bound := map[string]bool{}
	for j := 0; j <= i; j++ {
		bound[q.From[j].Var] = true
	}
	for _, p := range preds {
		if !bound[p.FromVar] || !bound[p.ToVar] {
			continue
		}
		fromQID := ex.DB.QIDOf(binding[p.FromVar])
		toQID := ex.DB.QIDOf(binding[p.ToVar])
		ok := false
		for _, to := range idx[assocKey(p)][fromQID] {
			if to == toQID {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// cmpStrings applies a comparison operator to attribute values
// (lexicographic; attribute values are stored as strings).
func cmpStrings(l, op, r string) bool {
	switch op {
	case "=":
		return l == r
	case "!=":
		return l != r
	case "<":
		return l < r
	case "<=":
		return l <= r
	case ">":
		return l > r
	case ">=":
		return l >= r
	}
	return false
}
