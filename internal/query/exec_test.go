package query

import (
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/webspace"
)

// fixtureDB hand-builds a tiny database: two players, one profile,
// one About link, a history IR index and one MMO meta-document with a
// netplay shot, exercising the whole physical access layer without
// the crawler/FDE machinery.
func fixtureDB(t *testing.T) *Database {
	t.Helper()
	store := monetxml.NewStore()

	doc := &webspace.Document{
		URL: "u1",
		Objects: []*webspace.Object{
			{Class: "Player", ID: "ann", Attrs: map[string]string{
				"name": "Ann", "gender": "female", "hand": "left", "history": "Winner of the title"}},
			{Class: "Player", ID: "bob", Attrs: map[string]string{
				"name": "Bob", "gender": "male", "hand": "right", "history": "Runner up"}},
			{Class: "Profile", ID: "ann", Attrs: map[string]string{
				"video": "http://v/ann.mpg"}},
		},
		Links: []webspace.Link{{Association: "About", From: "Profile:ann", To: "Player:ann"}},
	}
	if _, err := store.LoadNode(doc.URL, doc.XML()); err != nil {
		t.Fatal(err)
	}

	// Meta-index document for Ann's video: one tennis shot with
	// netplay=true, one "other" shot.
	mmo := monetxml.MustParseNode(`<MMO>
  <location>http://v/ann.mpg</location>
  <header><MIME_type><primary>video</primary><secondary>mpeg</secondary></MIME_type></header>
  <mm_type><video_type/><video><segment>
    <shot>
      <begin><frameNo>0</frameNo></begin>
      <end><frameNo>11</frameNo></end>
      <type>tennis<tennis>
        <frame><frameNo>0</frameNo><player><xPos>320.0</xPos><yPos>150.0</yPos><Area>21</Area><Ecc>0.5</Ecc><Orient>1.5</Orient></player></frame>
        <event><netplay>true</netplay></event>
      </tennis></type>
    </shot>
    <shot>
      <begin><frameNo>12</frameNo></begin>
      <end><frameNo>17</frameNo></end>
      <type>other</type>
    </shot>
  </segment></video></mm_type>
</MMO>`)
	if _, err := store.LoadNode("http://v/ann.mpg", mmo); err != nil {
		t.Fatal(err)
	}

	db := NewDatabase(store, nil)
	idx := ir.NewIndex()
	for _, o := range doc.Objects {
		if o.Class == "Player" {
			oid, ok := db.OIDOf(o.QualifiedID())
			if !ok {
				t.Fatalf("object %s not stored", o.QualifiedID())
			}
			idx.Add(oid, o.QualifiedID(), o.Attrs["history"])
		}
	}
	db.IR["Player.history"] = idx
	return db
}

func run(t *testing.T, db *Database, src string) *Result {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewExecutor(db).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecConceptualSelection(t *testing.T) {
	db := fixtureDB(t)
	res := run(t, db, "SELECT p.name FROM Player p WHERE p.gender = 'female'")
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Ann" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	res = run(t, db, "SELECT p.name FROM Player p WHERE p.gender != 'female'")
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Bob" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	res = run(t, db, "SELECT p.name FROM Player p")
	if len(res.Rows) != 2 {
		t.Fatalf("unfiltered rows = %d", len(res.Rows))
	}
}

func TestExecContains(t *testing.T) {
	db := fixtureDB(t)
	res := run(t, db, "SELECT p.name FROM Player p WHERE contains(p.history, 'winner')")
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Ann" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if res.Rows[0].Score <= 0 {
		t.Fatal("contains must attach a score")
	}
}

func TestExecContainsMissingIndex(t *testing.T) {
	db := fixtureDB(t)
	q, err := Parse("SELECT p.name FROM Player p WHERE contains(p.name, 'x')")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(db).Run(q); err == nil {
		t.Fatal("missing IR index should error")
	}
}

func TestExecEvent(t *testing.T) {
	db := fixtureDB(t)
	res := run(t, db, "SELECT v.video FROM Profile v WHERE event(v.video, 'netplay')")
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "http://v/ann.mpg" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	shots := res.Rows[0].Shots
	if len(shots) != 1 || shots[0].Begin != 0 || shots[0].End != 11 || !shots[0].Netplay {
		t.Fatalf("shots = %+v", shots)
	}
	// Unknown event errors.
	q, _ := Parse("SELECT v.video FROM Profile v WHERE event(v.video, 'moonwalk')")
	if _, err := NewExecutor(db).Run(q); err == nil {
		t.Fatal("unknown event should error")
	}
}

func TestExecRallyEvent(t *testing.T) {
	db := fixtureDB(t)
	// Ann's video has one netplay tennis shot and one non-tennis shot:
	// no baseline rally.
	res := run(t, db, "SELECT v.video FROM Profile v WHERE event(v.video, 'rally')")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecAssociationJoin(t *testing.T) {
	db := fixtureDB(t)
	res := run(t, db, "SELECT p.name, v.video FROM Player p, Profile v WHERE About(v, p)")
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Ann" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Unsatisfied join yields nothing.
	res = run(t, db, "SELECT p.name FROM Player p, Profile v WHERE About(v, p) AND p.name = 'Bob'")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestExecLimitAndOrdering(t *testing.T) {
	db := fixtureDB(t)
	res := run(t, db, "SELECT p.name FROM Player p LIMIT 1")
	if len(res.Rows) != 1 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
	// Without scores, ordering is deterministic by values.
	res = run(t, db, "SELECT p.name FROM Player p")
	if res.Rows[0].Values[0] != "Ann" || res.Rows[1].Values[0] != "Bob" {
		t.Fatalf("ordering = %+v", res.Rows)
	}
}

func TestExecStatsRestriction(t *testing.T) {
	db := fixtureDB(t)
	q, err := Parse("SELECT p.name FROM Player p WHERE p.gender = 'female' AND contains(p.history, 'winner')")
	if err != nil {
		t.Fatal(err)
	}
	opt := NewExecutor(db)
	if _, err := opt.Run(q); err != nil {
		t.Fatal(err)
	}
	naive := NewExecutor(db)
	naive.DisableRestriction = true
	if _, err := naive.Run(q); err != nil {
		t.Fatal(err)
	}
	// The restricted plan scores at most as many documents.
	if opt.Stats.IRDocsScored > naive.Stats.IRDocsScored {
		t.Fatalf("restriction increased IR work: %d vs %d", opt.Stats.IRDocsScored, naive.Stats.IRDocsScored)
	}
	if opt.Stats.ConceptualCandidates == 0 {
		t.Fatal("stats not recorded")
	}
}

func TestVideoEventsShape(t *testing.T) {
	db := fixtureDB(t)
	ev := db.VideoEvents()
	shots := ev["http://v/ann.mpg"]
	if len(shots) != 2 {
		t.Fatalf("shots = %+v", shots)
	}
	if !shots[0].Netplay || shots[1].Netplay {
		t.Fatalf("netplay flags = %+v", shots)
	}
	if shots[1].Begin != 12 || shots[1].End != 17 {
		t.Fatalf("second shot = %+v", shots[1])
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := fixtureDB(t)
	players := db.ObjectsOfClass("Player")
	if len(players) != 2 {
		t.Fatalf("players = %v", players)
	}
	if got := db.ObjectsOfClass("Nothing"); len(got) != 0 {
		t.Fatalf("phantom class: %v", got)
	}
	oid, ok := db.OIDOf("Player:ann")
	if !ok {
		t.Fatal("OIDOf failed")
	}
	if db.QIDOf(oid) != "Player:ann" {
		t.Fatal("QIDOf mismatch")
	}
	if db.AttrOf(oid, "hand") != "left" {
		t.Fatal("AttrOf mismatch")
	}
	if db.AttrOf(bat.OID(999999), "hand") != "" {
		t.Fatal("AttrOf of unknown oid should be empty")
	}
	pairs := db.AssocPairs("About")
	if len(pairs) != 1 || pairs[0][0] != "Profile:ann" {
		t.Fatalf("pairs = %v", pairs)
	}
	db.InvalidateCaches()
	if len(db.ObjectsOfClass("Player")) != 2 {
		t.Fatal("rebuild after invalidation failed")
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := NewDatabase(monetxml.NewStore(), nil)
	res := run(t, db, "SELECT p.name FROM Player p")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if ev := db.VideoEvents(); len(ev) != 0 {
		t.Fatalf("events = %v", ev)
	}
}

// TestExecutorBudgetedPlan: the executor evaluates unrestricted
// contains predicates under an ir.EvalPlan, accumulates the achieved
// quality, and a full-coverage plan returns exactly the exact answer.
func TestExecutorBudgetedPlan(t *testing.T) {
	db := fixtureDB(t)
	const src = "SELECT p.name FROM Player p WHERE contains(p.history, 'winner title')"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewExecutor(db)
	exact.DisableRestriction = true // unrestricted: the plan applies
	wantRes, err := exact.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	budgeted := NewExecutor(db)
	budgeted.DisableRestriction = true
	budgeted.Plan = &ir.EvalPlan{Frags: 2, Budget: 2}
	gotRes, err := budgeted.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Quality.Value() != 1.0 {
		t.Fatalf("full-coverage plan quality = %v", budgeted.Quality.Value())
	}
	if len(gotRes.Rows) != len(wantRes.Rows) {
		t.Fatalf("budgeted rows = %d, want %d", len(gotRes.Rows), len(wantRes.Rows))
	}
	for i := range wantRes.Rows {
		if gotRes.Rows[i].Score != wantRes.Rows[i].Score {
			t.Fatalf("row %d score %v, want %v", i, gotRes.Rows[i].Score, wantRes.Rows[i].Score)
		}
	}
	// Restricted predicates fall back to exact: the quality stays
	// trivially exact and results match the unplanned executor.
	restricted := NewExecutor(db)
	restricted.Plan = &ir.EvalPlan{Frags: 2, Budget: 1}
	if _, err := restricted.Run(q); err != nil {
		t.Fatal(err)
	}
	if restricted.Quality.TotalIDF != 0 {
		t.Fatalf("restricted predicates leaked into quality accounting: %+v", restricted.Quality)
	}
}
