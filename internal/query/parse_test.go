package query

import "testing"

func TestParseFigure13(t *testing.T) {
	q, err := Parse(`
SELECT p.name, v.video
FROM Player p, Profile v
WHERE p.gender = 'female'
  AND p.hand = 'left'
  AND contains(p.history, 'Winner')
  AND About(v, p)
  AND event(v.video, 'netplay')
LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].String() != "p.name" || q.Select[1].String() != "v.video" {
		t.Fatalf("select = %v", q.Select)
	}
	if len(q.From) != 2 || q.From[0].Class != "Player" || q.From[1].Var != "v" {
		t.Fatalf("from = %v", q.From)
	}
	if len(q.Preds) != 5 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if ap, ok := q.Preds[0].(*AttrPred); !ok || ap.Field.Attr != "gender" || ap.Op != "=" || ap.Value != "female" {
		t.Fatalf("pred 0 = %+v", q.Preds[0])
	}
	if cp, ok := q.Preds[2].(*ContainsPred); !ok || cp.Text != "Winner" {
		t.Fatalf("pred 2 = %+v", q.Preds[2])
	}
	if apd, ok := q.Preds[3].(*AssocPred); !ok || apd.Name != "About" || apd.FromVar != "v" || apd.ToVar != "p" {
		t.Fatalf("pred 3 = %+v", q.Preds[3])
	}
	if ep, ok := q.Preds[4].(*EventPred); !ok || ep.Event != "netplay" {
		t.Fatalf("pred 4 = %+v", q.Preds[4])
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select p.name from Player p where p.hand != 'left' limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 3 || len(q.Preds) != 1 {
		t.Fatalf("q = %+v", q)
	}
	if ap := q.Preds[0].(*AttrPred); ap.Op != "!=" {
		t.Fatalf("op = %q", ap.Op)
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		q, err := Parse("SELECT p.a FROM C p WHERE p.a " + op + " 'x'")
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if got := q.Preds[0].(*AttrPred).Op; got != op {
			t.Fatalf("op = %q, want %q", got, op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM Player p",
		"SELECT p.name",
		"SELECT p FROM Player p",
		"SELECT p.name FROM Player",
		"SELECT p.name FROM Player p WHERE",
		"SELECT p.name FROM Player p WHERE p.x",
		"SELECT p.name FROM Player p WHERE p.x = unquoted",
		"SELECT p.name FROM Player p WHERE contains(p.x 'y')",
		"SELECT p.name FROM Player p WHERE contains(p.x, 'y'",
		"SELECT p.name FROM Player p LIMIT 'x'",
		"SELECT p.name FROM Player p trailing",
		"SELECT p.name FROM Player p WHERE q.x = 'y'",           // unbound var
		"SELECT q.name FROM Player p",                           // unbound select
		"SELECT p.name FROM Player p, Article p",                // dup var
		"SELECT p.name FROM Player p WHERE About(p, q)",         // unbound assoc var
		"SELECT p.name FROM Player p WHERE p.x = 'unterminated", // bad string
		"SELECT p.name FROM Player p WHERE p.x @ 'y'",           // bad char
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad query: %s", src)
		}
	}
}

func TestQueryBindingLookup(t *testing.T) {
	q, err := Parse("SELECT p.name FROM Player p")
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := q.Binding("p"); !ok || b.Class != "Player" {
		t.Fatalf("binding = %+v, %v", b, ok)
	}
	if _, ok := q.Binding("zz"); ok {
		t.Fatal("phantom binding")
	}
}
