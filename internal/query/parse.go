package query

import (
	"fmt"
	"strconv"
	"strings"
)

// FieldRef is a variable.attribute reference.
type FieldRef struct {
	Var  string
	Attr string
}

func (f FieldRef) String() string { return f.Var + "." + f.Attr }

// Binding binds a query variable to a schema class.
type Binding struct {
	Class string
	Var   string
}

// Predicate is a WHERE conjunct.
type Predicate interface{ predNode() }

// AttrPred is a conceptual selection: var.attr op 'literal'.
type AttrPred struct {
	Field FieldRef
	Op    string // =, !=, <, <=, >, >=
	Value string
}

func (*AttrPred) predNode() {}

// ContainsPred is a content-based IR predicate over a Hypertext
// attribute: contains(var.attr, 'free text').
type ContainsPred struct {
	Field FieldRef
	Text  string
}

func (*ContainsPred) predNode() {}

// EventPred is a feature-grammar event predicate over a Video
// attribute: event(var.attr, 'netplay').
type EventPred struct {
	Field FieldRef
	Event string
}

func (*EventPred) predNode() {}

// AssocPred joins two variables through a schema association:
// About(v, p).
type AssocPred struct {
	Name    string
	FromVar string
	ToVar   string
}

func (*AssocPred) predNode() {}

// Query is a parsed query.
type Query struct {
	Select []FieldRef
	From   []Binding
	Preds  []Predicate
	Limit  int // 0 = unlimited
}

// Binding returns the binding of a variable.
func (q *Query) Binding(v string) (Binding, bool) {
	for _, b := range q.From {
		if b.Var == v {
			return b, true
		}
	}
	return Binding{}, false
}

// qtoken is a query-language token.
type qtoken struct {
	kind string // ident, string, punct, number, eof
	text string
}

func qlex(src string) ([]qtoken, error) {
	var toks []qtoken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '\'' {
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("query: unterminated string literal")
			}
			toks = append(toks, qtoken{kind: "string", text: sb.String()})
			i = j + 1
		case isQIdentStart(c):
			j := i
			for j < len(src) && isQIdentPart(src[j]) {
				j++
			}
			toks = append(toks, qtoken{kind: "ident", text: src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, qtoken{kind: "number", text: src[i:j]})
			i = j
		default:
			for _, op := range []string{"!=", "<=", ">=", "=", "<", ">", ",", ".", "(", ")"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, qtoken{kind: "punct", text: op})
					i += len(op)
					goto next
				}
			}
			return nil, fmt.Errorf("query: unexpected character %q", string(c))
		next:
		}
	}
	toks = append(toks, qtoken{kind: "eof"})
	return toks, nil
}

func isQIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isQIdentPart(c byte) bool { return isQIdentStart(c) || (c >= '0' && c <= '9') }

type qparser struct {
	toks []qtoken
	pos  int
}

func (p *qparser) cur() qtoken  { return p.toks[p.pos] }
func (p *qparser) next() qtoken { t := p.toks[p.pos]; p.pos++; return t }

func (p *qparser) keyword(kw string) bool {
	if p.cur().kind == "ident" && strings.EqualFold(p.cur().text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) punct(s string) bool {
	if p.cur().kind == "punct" && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) ident() (string, error) {
	if p.cur().kind != "ident" {
		return "", fmt.Errorf("query: expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *qparser) str() (string, error) {
	if p.cur().kind != "string" {
		return "", fmt.Errorf("query: expected string literal, found %q", p.cur().text)
	}
	return p.next().text, nil
}

// Parse parses a query:
//
//	SELECT var.attr {, var.attr}
//	FROM Class var {, Class var}
//	[WHERE pred {AND pred}]
//	[LIMIT n]
//
// where pred is one of
//
//	var.attr op 'literal'
//	contains(var.attr, 'text')
//	event(var.attr, 'name')
//	AssocName(fromVar, toVar)
func Parse(src string) (*Query, error) {
	toks, err := qlex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q := &Query{}
	if !p.keyword("select") {
		return nil, fmt.Errorf("query: expected SELECT")
	}
	for {
		f, err := p.fieldRef()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, f)
		if !p.punct(",") {
			break
		}
	}
	if !p.keyword("from") {
		return nil, fmt.Errorf("query: expected FROM")
	}
	for {
		class, err := p.ident()
		if err != nil {
			return nil, err
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, Binding{Class: class, Var: v})
		if !p.punct(",") {
			break
		}
	}
	if p.keyword("where") {
		for {
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.keyword("and") {
				break
			}
		}
	}
	if p.keyword("limit") {
		if p.cur().kind != "number" {
			return nil, fmt.Errorf("query: expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad LIMIT")
		}
		q.Limit = n
	}
	if p.cur().kind != "eof" {
		return nil, fmt.Errorf("query: trailing input at %q", p.cur().text)
	}
	return q, q.check()
}

func (p *qparser) fieldRef() (FieldRef, error) {
	v, err := p.ident()
	if err != nil {
		return FieldRef{}, err
	}
	if !p.punct(".") {
		return FieldRef{}, fmt.Errorf("query: expected '.' after %q", v)
	}
	a, err := p.ident()
	if err != nil {
		return FieldRef{}, err
	}
	return FieldRef{Var: v, Attr: a}, nil
}

func (p *qparser) predicate() (Predicate, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function-style: contains / event / association.
	if p.punct("(") {
		switch strings.ToLower(name) {
		case "contains", "event":
			f, err := p.fieldRef()
			if err != nil {
				return nil, err
			}
			if !p.punct(",") {
				return nil, fmt.Errorf("query: expected ',' in %s()", name)
			}
			text, err := p.str()
			if err != nil {
				return nil, err
			}
			if !p.punct(")") {
				return nil, fmt.Errorf("query: expected ')'")
			}
			if strings.EqualFold(name, "contains") {
				return &ContainsPred{Field: f, Text: text}, nil
			}
			return &EventPred{Field: f, Event: text}, nil
		default:
			from, err := p.ident()
			if err != nil {
				return nil, err
			}
			if !p.punct(",") {
				return nil, fmt.Errorf("query: expected ',' in association %s()", name)
			}
			to, err := p.ident()
			if err != nil {
				return nil, err
			}
			if !p.punct(")") {
				return nil, fmt.Errorf("query: expected ')'")
			}
			return &AssocPred{Name: name, FromVar: from, ToVar: to}, nil
		}
	}
	// Comparison: name must have been "var" of var.attr.
	if !p.punct(".") {
		return nil, fmt.Errorf("query: expected '.' or '(' after %q", name)
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	op := ""
	for _, o := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.punct(o) {
			op = o
			break
		}
	}
	if op == "" {
		return nil, fmt.Errorf("query: expected comparison operator after %s.%s", name, attr)
	}
	val, err := p.str()
	if err != nil {
		return nil, err
	}
	return &AttrPred{Field: FieldRef{Var: name, Attr: attr}, Op: op, Value: val}, nil
}

// check validates variable references.
func (q *Query) check() error {
	vars := map[string]bool{}
	for _, b := range q.From {
		if vars[b.Var] {
			return fmt.Errorf("query: duplicate variable %s", b.Var)
		}
		vars[b.Var] = true
	}
	need := func(v string) error {
		if !vars[v] {
			return fmt.Errorf("query: unbound variable %s", v)
		}
		return nil
	}
	for _, f := range q.Select {
		if err := need(f.Var); err != nil {
			return err
		}
	}
	for _, p := range q.Preds {
		switch t := p.(type) {
		case *AttrPred:
			if err := need(t.Field.Var); err != nil {
				return err
			}
		case *ContainsPred:
			if err := need(t.Field.Var); err != nil {
				return err
			}
		case *EventPred:
			if err := need(t.Field.Var); err != nil {
				return err
			}
		case *AssocPred:
			if err := need(t.FromVar); err != nil {
				return err
			}
			if err := need(t.ToVar); err != nil {
				return err
			}
		}
	}
	return nil
}
