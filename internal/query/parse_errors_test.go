package query

import "testing"

// TestParseErrorMessages pins the parser's diagnostics: every rejection
// path must name what was expected and what was found, so a malformed
// query over HTTP comes back with an actionable 400 body rather than a
// bare "parse error".
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "query: expected SELECT"},
		{"FROM Player p", "query: expected SELECT"},
		{"SELECT p.name", "query: expected FROM"},
		{"SELECT p FROM Player p", `query: expected '.' after "p"`},
		{"SELECT p.name FROM Player", `query: expected identifier, found ""`},
		{"SELECT p.name FROM Player p WHERE", `query: expected identifier, found ""`},
		{"SELECT p.name FROM Player p WHERE p.x",
			"query: expected comparison operator after p.x"},
		{"SELECT p.name FROM Player p WHERE p.x = unquoted",
			`query: expected string literal, found "unquoted"`},
		{"SELECT p.name FROM Player p WHERE p.x = 'unterminated",
			"query: unterminated string literal"},
		{"SELECT p.name FROM Player p WHERE p.x @ 'y'",
			`query: unexpected character "@"`},
		{"SELECT p.name FROM Player p WHERE contains(p.x 'y')",
			"query: expected ',' in contains()"},
		{"SELECT p.name FROM Player p WHERE contains(p.x, 'y'",
			"query: expected ')'"},
		{"SELECT p.name FROM Player p WHERE event(v.video 'netplay')",
			"query: expected ',' in event()"},
		{"SELECT p.name FROM Player p WHERE About(v p)",
			"query: expected ',' in association About()"},
		{"SELECT p.name FROM Player p WHERE About(v, p",
			"query: expected ')'"},
		{"SELECT p.name FROM Player p WHERE foo = 'y'",
			`query: expected '.' or '(' after "foo"`},
		{"SELECT p.name FROM Player p LIMIT 'x'",
			"query: expected number after LIMIT"},
		{"SELECT p.name FROM Player p LIMIT 99999999999999999999999999",
			"query: bad LIMIT"},
		{"SELECT p.name FROM Player p trailing",
			`query: trailing input at "trailing"`},
		{"SELECT p.name FROM Player p, Article p",
			"query: duplicate variable p"},
		{"SELECT q.name FROM Player p",
			"query: unbound variable q"},
		{"SELECT p.name FROM Player p WHERE q.x = 'y'",
			"query: unbound variable q"},
		{"SELECT p.name FROM Player p WHERE About(p, q)",
			"query: unbound variable q"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("accepted bad query: %s", tc.src)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Parse(%q):\n  got  %q\n  want %q", tc.src, err.Error(), tc.want)
		}
	}
}
