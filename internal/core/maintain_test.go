package core

import (
	"strconv"
	"testing"

	"dlsearch/internal/detector"
)

// TestUpgradeThroughEngine exercises the maintenance stage end to end:
// a tennis tracker upgrade (minor revision) with changed output must
// propagate through the FDS into the stored meta-index and flip the
// answer of the Figure 13 query — without re-running the segment
// detector.
func TestUpgradeThroughEngine(t *testing.T) {
	// Private engine: this test mutates.
	e, s, _, err := BuildAusOpen(1)
	if err != nil {
		t.Fatal(err)
	}
	before, err := e.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Rows) != len(s.Figure13Answer()) {
		t.Fatalf("precondition: rows = %d", len(before.Rows))
	}
	segBefore := e.Scheduler.Engine.Stats.DetectorCalls["segment"]

	// "Broken" tracker vNext: the player is never anywhere near the
	// net (all yPos far beyond the threshold).
	rep, err := e.Upgrade(&detector.Impl{
		Name:    "tennis",
		Version: detector.Version{Major: 1, Minor: 1},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			begin, _ := strconv.Atoi(ctx.Param(1))
			end, _ := strconv.Atoi(ctx.Param(2))
			var toks []detector.Token
			for f := begin; f <= end; f++ {
				toks = append(toks,
					detector.Token{Symbol: "frameNo", Value: strconv.Itoa(f)},
					detector.Token{Symbol: "xPos", Value: "320.0"},
					detector.Token{Symbol: "yPos", Value: "400.0"},
					detector.Token{Symbol: "Area", Value: "21"},
					detector.Token{Symbol: "Ecc", Value: "0.5"},
					detector.Token{Symbol: "Orient", Value: "1.5"},
				)
			}
			return toks, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Upgrade.Level != detector.ChangeMinor {
		t.Fatalf("level = %v", rep.Upgrade.Level)
	}
	if rep.Restored == 0 {
		t.Fatal("no meta-index documents rewritten")
	}
	// Incremental: segment must not have been re-run.
	if got := e.Scheduler.Engine.Stats.DetectorCalls["segment"] - segBefore; got != 0 {
		t.Fatalf("segment re-ran %d times", got)
	}
	after, err := e.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != 0 {
		t.Fatalf("after the broken tracker no netplay should remain, got %+v", after.Rows)
	}
}

// TestAPrioriRestriction is experiment E17: pushing the conceptual
// selections below the IR ranking shrinks the ranked candidate set.
func TestAPrioriRestriction(t *testing.T) {
	e, _, _ := build(t)
	q := `
SELECT p.name FROM Player p
WHERE p.gender = 'female' AND p.hand = 'left'
  AND contains(p.history, 'Winner')`
	optRes, optStats, err := e.QueryWithStats(q, false)
	if err != nil {
		t.Fatal(err)
	}
	naiveRes, naiveStats, err := e.QueryWithStats(q, true)
	if err != nil {
		t.Fatal(err)
	}
	// Same answers.
	if len(optRes.Rows) != len(naiveRes.Rows) {
		t.Fatalf("plans disagree: %d vs %d rows", len(optRes.Rows), len(naiveRes.Rows))
	}
	for i := range optRes.Rows {
		if optRes.Rows[i].Values[0] != naiveRes.Rows[i].Values[0] {
			t.Fatalf("row %d: %v vs %v", i, optRes.Rows[i].Values, naiveRes.Rows[i].Values)
		}
	}
	// Less IR work with the restriction: only the 4 left-handed female
	// players are scored instead of every champion document.
	if optStats.IRDocsScored >= naiveStats.IRDocsScored {
		t.Fatalf("restriction did not reduce IR work: %d vs %d",
			optStats.IRDocsScored, naiveStats.IRDocsScored)
	}
}

// TestCheckSourcesThroughEngine: a changed source video triggers a full
// re-parse of just that object's parse tree.
func TestCheckSourcesThroughEngine(t *testing.T) {
	e, s, _, err := BuildAusOpen(2)
	if err != nil {
		t.Fatal(err)
	}
	target := s.Players[0].VideoURL
	n := e.Scheduler.CheckSources(func(id string, _ []detector.Token) bool {
		return id == target
	})
	if n != 1 {
		t.Fatalf("scheduled %d", n)
	}
	run := e.Scheduler.Run()
	if run.FullReparses != 1 {
		t.Fatalf("full reparses = %d", run.FullReparses)
	}
}
