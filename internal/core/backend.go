package core

import (
	"fmt"

	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/webspace"
)

// EngineBackend serves one of an engine's per-attribute full-text
// indexes ("Class.attr") as a dist.SearchBackend, so a cluster
// partition can host the full conceptual engine: the node's cluster
// machinery (statistics aggregation, budgeted plans, replication,
// resync) runs against the engine-owned index, while conceptual
// queries over the same engine see every document the cluster ingests.
type EngineBackend struct {
	e   *Engine
	key string
	ix  *ir.Index
}

// NewEngineBackend exposes the engine's index for key ("Class.attr")
// as a search backend, creating the index if the engine does not have
// one yet (a cold partition that will be filled over the wire).
func NewEngineBackend(e *Engine, key string) *EngineBackend {
	ix := e.IR[key]
	if ix == nil {
		ix = ir.NewIndex()
		e.IR[key] = ix
	}
	return &EngineBackend{e: e, key: key, ix: ix}
}

// Kind implements dist.SearchBackend.
func (b *EngineBackend) Kind() string { return "engine" }

// ContentIndex implements dist.SearchBackend.
func (b *EngineBackend) ContentIndex() *ir.Index { return b.ix }

// ApplyDocs implements dist.SearchBackend: ingested content lands in
// the engine-owned index, exactly as Populate's Hypertext path does.
func (b *EngineBackend) ApplyDocs(docs []dist.Doc) {
	for _, d := range docs {
		b.ix.Add(d.OID, d.URL, d.Text)
	}
}

// SwapIndex implements dist.SearchBackend: a full-state resync
// re-homes the restored index under the engine, so later conceptual
// queries rank against the restored content. The engine's query cache
// is keyed by index pointer, so entries for the old index simply stop
// matching.
func (b *EngineBackend) SwapIndex(ix *ir.Index) {
	b.ix = ix
	b.e.IR[b.key] = ix
}

// AddDocument stores one conceptual webspace document incrementally —
// the streaming-ingest counterpart of Populate's bulk document loop.
// A re-posted URL replaces the previous version (delete + reload, like
// meta-index maintenance does). The caller decides when to Warm the
// database's derived access paths; this only invalidates them.
func (e *Engine) AddDocument(doc *webspace.Document) error {
	if err := doc.Validate(e.Schema); err != nil {
		return err
	}
	if old, ok := e.conceptDocs[doc.URL]; ok {
		if err := e.Store.DeleteDoc(old); err != nil {
			return fmt.Errorf("core: replace %s: %w", doc.URL, err)
		}
	}
	id, err := e.Store.LoadNode(doc.URL, doc.XML())
	if err != nil {
		return fmt.Errorf("core: store %s: %w", doc.URL, err)
	}
	e.conceptDocs[doc.URL] = id
	e.DB.InvalidateCaches()
	return nil
}
