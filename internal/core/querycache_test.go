package core

import (
	"fmt"
	"sync"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

func cacheIndex(t *testing.T, docs ...string) *ir.Index {
	t.Helper()
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	ix.Freeze()
	return ix
}

// TestQueryCacheHitMiss: the second resolution of the same query is a
// hit and returns the identical resolution.
func TestQueryCacheHitMiss(t *testing.T) {
	ix := cacheIndex(t, "melbourne champion trophy", "champion winner")
	qc := NewQueryCache(8)
	s1, o1 := qc.Resolve(ix, "the champion of melbourne")
	if hits, misses := qc.Counters(); hits != 0 || misses != 1 {
		t.Fatalf("counters after first resolve = %d/%d, want 0/1", hits, misses)
	}
	s2, o2 := qc.Resolve(ix, "the champion of melbourne")
	if hits, misses := qc.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("counters after second resolve = %d/%d, want 1/1", hits, misses)
	}
	if len(s1) != 2 || len(o1) != 2 {
		t.Fatalf("resolution = %v %v, want champion+melbourne", s1, o1)
	}
	for i := range s1 {
		if s1[i] != s2[i] || o1[i] != o2[i] {
			t.Fatalf("hit returned different resolution: %v/%v vs %v/%v", s1, o1, s2, o2)
		}
	}
	// The cached oids must match the index's own resolution.
	ws, wo := ix.ResolveQuery("the champion of melbourne")
	for i := range ws {
		if ws[i] != s1[i] || wo[i] != o1[i] {
			t.Fatalf("cached %v/%v, index resolves %v/%v", s1, o1, ws, wo)
		}
	}
}

// TestQueryCacheEpochInvalidation: a freeze that absorbed new postings
// bumps the epoch and invalidates prior resolutions — a term unknown
// when the entry was cached is picked up afterwards.
func TestQueryCacheEpochInvalidation(t *testing.T) {
	ix := cacheIndex(t, "melbourne champion")
	qc := NewQueryCache(8)
	_, oids := qc.Resolve(ix, "champion quetzalcoatl")
	if len(oids) != 1 {
		t.Fatalf("resolved %d terms, want 1", len(oids))
	}
	// The unknown term enters the vocabulary.
	ix.Add(bat.OID(9), "u", "quetzalcoatl rises")
	// Dirty index: the cache steps aside rather than serving staleness.
	_, oids = qc.Resolve(ix, "champion quetzalcoatl")
	if len(oids) != 2 {
		t.Fatalf("dirty-index resolve found %d terms, want 2", len(oids))
	}
	ix.Freeze()
	_, oids = qc.Resolve(ix, "champion quetzalcoatl")
	if len(oids) != 2 {
		t.Fatalf("post-freeze resolve found %d terms, want 2", len(oids))
	}
	// And the refreshed entry is served from cache now.
	hits0, _ := qc.Counters()
	qc.Resolve(ix, "champion quetzalcoatl")
	if hits, _ := qc.Counters(); hits != hits0+1 {
		t.Fatal("refreshed entry not cached")
	}
}

// TestQueryCacheLRUEviction: capacity bounds the cache; the least
// recently used entry is evicted first.
func TestQueryCacheLRUEviction(t *testing.T) {
	ix := cacheIndex(t, "melbourne champion trophy winner serve rally")
	qc := NewQueryCache(2)
	qc.Resolve(ix, "champion") // LRU after the next two
	qc.Resolve(ix, "trophy")
	qc.Resolve(ix, "champion") // touch: now "trophy" is LRU
	qc.Resolve(ix, "winner")   // evicts "trophy"
	if n := qc.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	h0, m0 := qc.Counters()
	qc.Resolve(ix, "champion")
	if h, _ := qc.Counters(); h != h0+1 {
		t.Fatal("champion should still be cached")
	}
	qc.Resolve(ix, "trophy")
	if _, m := qc.Counters(); m != m0+1 {
		t.Fatal("trophy should have been evicted")
	}
}

// TestQueryCacheConcurrent: concurrent resolutions over a frozen index
// are race-free and all return the same oids.
func TestQueryCacheConcurrent(t *testing.T) {
	ix := cacheIndex(t, "melbourne champion trophy", "champion winner serve")
	qc := NewQueryCache(16)
	_, want := qc.Resolve(ix, "champion serve")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, oids := qc.Resolve(ix, "champion serve")
				if len(oids) != len(want) {
					t.Errorf("resolved %v, want %v", oids, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEngineQueryUsesCache: the assembled engine's IR predicates
// resolve through the cache — repeating the Figure 13 query turns
// into cache hits with an unchanged answer.
func TestEngineQueryUsesCache(t *testing.T) {
	engine, _, _, err := BuildAusOpen(1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := engine.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	_, m0 := engine.Cache.Counters()
	if m0 == 0 {
		t.Fatal("query did not resolve through the cache")
	}
	second, err := engine.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := engine.Cache.Counters()
	if hits == 0 {
		t.Fatalf("repeat query produced no cache hits (misses %d)", misses)
	}
	if misses != m0 {
		t.Fatalf("repeat query missed again: %d -> %d", m0, misses)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached query changed the answer:\n%v\n%v", first, second)
	}
}

// TestRankingCacheReuse: the RES-set segment answers any n the cached
// ranking covers, misses on deeper asks, and keeps the deeper entry
// when a shallower one is stored.
func TestRankingCacheReuse(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "d1", "winner takes the trophy")
	ix.Add(2, "d2", "the winner and the loser")
	ix.Add(3, "d3", "weather in melbourne")
	ix.Freeze()
	global := ix.StatsLocal()
	qc := NewQueryCache(8)

	if _, ok := qc.Ranking(ix, "winner", 2, global); ok {
		t.Fatal("hit on empty cache")
	}
	res := ix.TopNWithStats("winner", 2, global)
	qc.StoreRanking(ix, "winner", 2, global, res)
	got, ok := qc.Ranking(ix, "winner", 2, global)
	if !ok || len(got) != len(res) {
		t.Fatalf("stored ranking not returned: %v %v", got, ok)
	}
	// Shallower n: served from the same entry, prefix-cut.
	if got, ok = qc.Ranking(ix, "winner", 1, global); !ok || len(got) != 1 || got[0] != res[0] {
		t.Fatalf("n=1 from cached n=2: %v %v", got, ok)
	}
	// Deeper n than cached (and the cached ranking was full): miss.
	if _, ok = qc.Ranking(ix, "winner", 5, global); ok {
		t.Fatal("deeper ask served from a possibly truncated ranking")
	}
	// A complete ranking (shorter than its n) answers ANY n.
	full := ix.TopNWithStats("winner", 50, global)
	qc.StoreRanking(ix, "winner", 50, global, full)
	if got, ok = qc.Ranking(ix, "winner", 1000, global); !ok || len(got) != len(full) {
		t.Fatalf("complete ranking should answer any n: %v %v", got, ok)
	}
	// Storing a shallower ranking must not clobber the deeper entry.
	qc.StoreRanking(ix, "winner", 1, global, full[:1])
	if got, ok = qc.Ranking(ix, "winner", 2, global); !ok || len(got) != 2 {
		t.Fatalf("deeper entry clobbered by shallower store: %v %v", got, ok)
	}
	if hits, misses := qc.RankCounters(); hits == 0 || misses == 0 {
		t.Fatalf("rank counters = %d/%d", hits, misses)
	}
}

// TestRankingCacheInvalidation: epoch moves and global-statistics
// fingerprints both invalidate cached RES sets.
func TestRankingCacheInvalidation(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "d1", "winner takes the trophy")
	ix.Freeze()
	global := ix.StatsLocal()
	qc := NewQueryCache(8)
	res := ix.TopNWithStats("winner", 5, global)
	qc.StoreRanking(ix, "winner", 5, global, res)
	if _, ok := qc.Ranking(ix, "winner", 5, global); !ok {
		t.Fatal("fresh entry missed")
	}
	// Another node's adds change the global statistics without
	// touching this index: the fingerprint must reject the entry.
	other := global
	other.TotalDF += 3
	if _, ok := qc.Ranking(ix, "winner", 5, other); ok {
		t.Fatal("fingerprint mismatch served")
	}
	// Dirty index: bypass.
	ix.Add(2, "d2", "another winner")
	if _, ok := qc.Ranking(ix, "winner", 5, global); ok {
		t.Fatal("dirty index served from RES cache")
	}
	// Epoch moved by the freeze: stale entry dropped.
	ix.Freeze()
	if _, ok := qc.Ranking(ix, "winner", 5, ix.StatsLocal()); ok {
		t.Fatal("stale epoch served")
	}
	if qc.RankLen() != 0 {
		t.Fatalf("stale entry retained: %d", qc.RankLen())
	}
}
