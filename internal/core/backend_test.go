package core

import (
	"context"
	"testing"

	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/site"
	"dlsearch/internal/webspace"
)

// TestEngineBackendClusterIngest: a partition hosting a full engine
// (EngineBackend) sees every document the cluster machinery ingests —
// content added through the dist node ranks in conceptual queries over
// the same engine, with oids lined up via the owner objects.
func TestEngineBackendClusterIngest(t *testing.T) {
	e, err := NewAusOpen(site.Generate(7))
	if err != nil {
		t.Fatal(err)
	}
	backend := NewEngineBackend(e, "Player.history")
	if backend.Kind() != "engine" {
		t.Fatalf("kind = %q", backend.Kind())
	}
	if e.IR["Player.history"] == nil || backend.ContentIndex() != e.IR["Player.history"] {
		t.Fatal("backend does not serve the engine-owned index")
	}
	node := dist.NewLocalNodeBackend(backend)

	// The conceptual object arrives first (streaming ingest posts the
	// webspace line before the owned content), then its hypertext body
	// goes through the cluster ingest path.
	doc := &webspace.Document{
		URL: "http://x/p1.html",
		Objects: []*webspace.Object{
			{Class: "Player", ID: "p1", Attrs: map[string]string{
				"name": "Ada", "gender": "female", "hand": "left"}},
		},
	}
	if err := e.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	oid, ok := e.DB.OIDOf("Player:p1")
	if !ok {
		t.Fatal("Player:p1 has no oid")
	}
	if err := node.Add(context.Background(), oid, doc.URL, "winner of the open"); err != nil {
		t.Fatal(err)
	}
	if got := e.IR["Player.history"].DocCount(); got != 1 {
		t.Fatalf("engine index has %d docs after cluster ingest, want 1", got)
	}
	res, err := e.Query("SELECT p.name FROM Player p WHERE contains(p.history, 'winner')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Ada" {
		t.Fatalf("conceptual query missed cluster-ingested content: %+v", res.Rows)
	}
}

// TestEngineBackendRestoreRehomesIndex: a full-state resync through the
// node swaps the served index AND re-homes it under the engine, so
// conceptual queries rank against the restored content.
func TestEngineBackendRestoreRehomesIndex(t *testing.T) {
	e, err := NewAusOpen(site.Generate(7))
	if err != nil {
		t.Fatal(err)
	}
	node := dist.NewLocalNodeBackend(NewEngineBackend(e, "Player.history"))
	doc := &webspace.Document{
		URL: "http://x/p1.html",
		Objects: []*webspace.Object{
			{Class: "Player", ID: "p1", Attrs: map[string]string{"name": "Ada"}},
		},
	}
	if err := e.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	oid, _ := e.DB.OIDOf("Player:p1")
	if err := node.Add(context.Background(), oid, doc.URL, "winner of the open"); err != nil {
		t.Fatal(err)
	}

	replacement := ir.NewIndex()
	replacement.Add(oid, doc.URL, "trophy ceremony")
	replacement.Freeze()
	if err := node.RestoreState(context.Background(), replacement.ExportState()); err != nil {
		t.Fatal(err)
	}
	if e.IR["Player.history"] != node.Index() {
		t.Fatal("restore did not re-home the index under the engine")
	}
	res, err := e.Query("SELECT p.name FROM Player p WHERE contains(p.history, 'trophy')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != "Ada" {
		t.Fatalf("restored content not ranked: %+v", res.Rows)
	}
	if res, err = e.Query("SELECT p.name FROM Player p WHERE contains(p.history, 'winner')"); err != nil {
		t.Fatal(err)
	} else if len(res.Rows) != 0 {
		t.Fatalf("pre-restore content still ranked: %+v", res.Rows)
	}
}
