package core

import (
	"strings"
	"testing"

	"dlsearch/internal/query"
	"dlsearch/internal/site"
)

// buildOnce caches the populated engine across tests in this package:
// population is deterministic, and the tests only read from it (tests
// that mutate build their own).
var (
	sharedEngine *Engine
	sharedSite   *site.Site
	sharedReport *PopulateReport
)

func build(t *testing.T) (*Engine, *site.Site, *PopulateReport) {
	t.Helper()
	if sharedEngine == nil {
		e, s, rep, err := BuildAusOpen(1)
		if err != nil {
			t.Fatal(err)
		}
		sharedEngine, sharedSite, sharedReport = e, s, rep
	}
	return sharedEngine, sharedSite, sharedReport
}

func TestPopulateReport(t *testing.T) {
	_, s, rep := build(t)
	wantDocs := 2*len(s.Players) + len(s.Articles)
	if rep.Documents != wantDocs {
		t.Fatalf("documents = %d, want %d", rep.Documents, wantDocs)
	}
	// All videos and images parsed as MMOs.
	if rep.MediaParsed != 2*len(s.Players) {
		t.Fatalf("media parsed = %d, want %d", rep.MediaParsed, 2*len(s.Players))
	}
	if rep.MediaFailed != 0 {
		t.Fatalf("media failed = %d", rep.MediaFailed)
	}
	// History per player + body per article indexed.
	if rep.TextsIndexed != len(s.Players)+len(s.Articles) {
		t.Fatalf("texts indexed = %d", rep.TextsIndexed)
	}
	if rep.Relations == 0 || rep.Associations == 0 {
		t.Fatal("physical level is empty")
	}
	// The tennis detector ran once per tennis shot of every video
	// (three per broadcast spec).
	if got := rep.DetectorCalls["tennis"]; got != 3*len(s.Players) {
		t.Fatalf("tennis calls = %d, want %d", got, 3*len(s.Players))
	}
}

// TestFigure13MixedQuery is experiment E06: the paper's running
// example query must return exactly the ground-truth players, ranked,
// with their netplay shots attached.
func TestFigure13MixedQuery(t *testing.T) {
	e, s, _ := build(t)
	res, err := e.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Figure13Answer() // [jana-vilagos monica-seles]
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(res.Rows), len(want), res.Rows)
	}
	gotNames := map[string]bool{}
	for _, r := range res.Rows {
		gotNames[r.Values[0]] = true
		if len(r.Shots) == 0 {
			t.Fatalf("row %v has no netplay shots", r.Values)
		}
		for _, sh := range r.Shots {
			if !sh.Netplay {
				t.Fatalf("row %v carries a non-netplay shot", r.Values)
			}
			if sh.End <= sh.Begin {
				t.Fatalf("degenerate shot %+v", sh)
			}
		}
		if r.Score <= 0 {
			t.Fatalf("row %v has no IR score", r.Values)
		}
		if !strings.HasSuffix(r.Values[1], ".mpg") {
			t.Fatalf("second column should be the video url: %v", r.Values)
		}
	}
	for _, slug := range want {
		name := s.PlayerBySlug(slug).Name
		if !gotNames[name] {
			t.Fatalf("expected %s in result, got %v", name, gotNames)
		}
	}
}

// TestFigure13Exclusions verifies each predicate excludes the right
// players: drop one conjunct and the corresponding near-miss appears.
func TestFigure13Exclusions(t *testing.T) {
	e, _, _ := build(t)
	// Without the netplay predicate, Petra Novotna (left, female,
	// champion, baseline player) joins the answer.
	noEvent := `
SELECT p.name, v.video FROM Player p, Profile v
WHERE p.gender = 'female' AND p.hand = 'left'
  AND contains(p.history, 'Winner') AND About(v, p)`
	res, err := e.Query(noEvent)
	if err != nil {
		t.Fatal(err)
	}
	if !hasValue(res, "Petra Novotna") {
		t.Fatalf("Novotna should appear without the event predicate: %+v", res.Rows)
	}
	// Without the gender predicate, Petr Korda (left, male, champion,
	// net rusher) appears.
	noGender := `
SELECT p.name, v.video FROM Player p, Profile v
WHERE p.hand = 'left'
  AND contains(p.history, 'Winner') AND About(v, p)
  AND event(v.video, 'netplay')`
	res, err = e.Query(noGender)
	if err != nil {
		t.Fatal(err)
	}
	if !hasValue(res, "Petr Korda") {
		t.Fatalf("Korda should appear without the gender predicate: %+v", res.Rows)
	}
	// Without contains(), Patty Schnyder (left, female, net rusher, no
	// title) appears.
	noIR := `
SELECT p.name, v.video FROM Player p, Profile v
WHERE p.gender = 'female' AND p.hand = 'left'
  AND About(v, p) AND event(v.video, 'netplay')`
	res, err = e.Query(noIR)
	if err != nil {
		t.Fatal(err)
	}
	if !hasValue(res, "Patty Schnyder") {
		t.Fatalf("Schnyder should appear without the IR predicate: %+v", res.Rows)
	}
}

func TestRallyEventQuery(t *testing.T) {
	e, s, _ := build(t)
	// Every generated match contains at least one baseline rally shot.
	res, err := e.Query("SELECT v.video FROM Profile v WHERE event(v.video, 'rally')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(s.Players) {
		t.Fatalf("rally rows = %d, want %d", len(res.Rows), len(s.Players))
	}
	for _, r := range res.Rows {
		for _, sh := range r.Shots {
			if sh.Netplay || !sh.Tennis {
				t.Fatalf("rally row carries wrong shot: %+v", sh)
			}
		}
	}
}

func hasValue(res *query.Result, v string) bool {
	for _, r := range res.Rows {
		for _, val := range r.Values {
			if val == v {
				return true
			}
		}
	}
	return false
}
