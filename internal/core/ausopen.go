package core

import (
	"dlsearch/internal/cobra"
	"dlsearch/internal/crawler"
	"dlsearch/internal/detector"
	"dlsearch/internal/fg"
	"dlsearch/internal/site"
	"dlsearch/internal/webspace"
)

// Figure13Query is the running example's mixed conceptual /
// content-based query: "Show me video shots of left-handed female
// players, who have won the Australian Open in the past, and in which
// they approach the net."
const Figure13Query = `
SELECT p.name, v.video
FROM Player p, Profile v
WHERE p.gender = 'female'
  AND p.hand = 'left'
  AND contains(p.history, 'Winner')
  AND About(v, p)
  AND event(v.video, 'netplay')
LIMIT 10`

// NewAusOpen builds the complete Australian Open search engine of the
// running example over a generated website: Figure 3 schema, Figure
// 6+7 grammar, COBRA analysis detectors bound to the site's footage.
func NewAusOpen(s *site.Site) (*Engine, error) {
	grammar, err := fg.Parse(fg.TennisGrammar)
	if err != nil {
		return nil, err
	}
	reg := detector.NewRegistry()
	analyzer := cobra.NewAnalyzer(s.Videos)
	reg.Register(&detector.Impl{
		Name:    "header",
		Version: detector.Version{Major: 1},
		Fn:      cobra.HeaderFunc(s.MIME),
	})
	// The external detectors go through the XML-RPC loopback, as the
	// grammar's xml-rpc:: prefix prescribes.
	srv := detector.NewXMLRPCServer()
	srv.Register("segment", analyzer.SegmentFunc())
	srv.Register("tennis", analyzer.TennisFunc())
	client := detector.NewLoopback(srv)
	reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Transport: client})
	reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Transport: client})

	return New(webspace.AusOpenSchema(), grammar, reg)
}

// BuildAusOpen generates the site, crawls it and populates a fresh
// engine: the full populate stage in one call. It returns the engine,
// the site (with its ground truth) and the population report.
func BuildAusOpen(seed int64) (*Engine, *site.Site, *PopulateReport, error) {
	s := site.Generate(seed)
	e, err := NewAusOpen(s)
	if err != nil {
		return nil, nil, nil, err
	}
	c := crawler.New(e.Schema, s.Fetch)
	res, err := c.Crawl(s.BaseURL + "/index.html")
	if err != nil {
		return nil, nil, nil, err
	}
	rep, err := e.Populate(res)
	if err != nil {
		return nil, nil, nil, err
	}
	return e, s, rep, nil
}
