package core

import (
	"fmt"
	"sort"

	"dlsearch/internal/cobra"
	"dlsearch/internal/detector"
	"dlsearch/internal/fde"
	"dlsearch/internal/fg"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/video"
)

// WebPage is one page of the synthetic open web used by the
// Internet-scale configuration (Figure 14): the generic grammar knows
// nothing about tennis, only about pages, keywords, links and embedded
// images.
type WebPage struct {
	URL      string
	Title    string
	Keywords []string
	Links    []string // outgoing anchors (other page URLs)
	Images   []string // embedded image URLs
}

// WebImage is an embedded image with its raster content; the portrait
// detector really analyses the pixels (skin ratio), it does not read
// ground truth.
type WebImage struct {
	URL      string
	Frame    *video.Frame
	Portrait bool // ground truth, for evaluation only
}

// InternetEngine is the paper's unlimited-domain configuration: no
// conceptual schema, a very generic feature grammar, and a direct
// interface on top of the logical level.
type InternetEngine struct {
	Grammar  *fg.Grammar
	Registry *detector.Registry
	Store    *monetxml.Store
	Engine   *fde.Engine
	Keywords *ir.Index // doc oid = stored page document id
	Cache    *QueryCache

	pages  map[string]*WebPage
	images map[string]*WebImage
	docs   map[string]monetxml.DocID
}

// NewInternetEngine builds the generic engine over a page/image set.
func NewInternetEngine(pages []*WebPage, images []*WebImage) (*InternetEngine, error) {
	g, err := fg.Parse(fg.InternetGrammar)
	if err != nil {
		return nil, err
	}
	e := &InternetEngine{
		Grammar:  g,
		Registry: detector.NewRegistry(),
		Store:    monetxml.NewStore(),
		Keywords: ir.NewIndex(),
		Cache:    NewQueryCache(DefaultQueryCacheSize),
		pages:    map[string]*WebPage{},
		images:   map[string]*WebImage{},
		docs:     map[string]monetxml.DocID{},
	}
	e.Store.SetTypeOracle(fde.TypeOracle(g))
	for _, p := range pages {
		e.pages[p.URL] = p
	}
	for _, im := range images {
		e.images[im.URL] = im
	}
	e.Registry.RegisterFunc("fetch", e.fetchDetector)
	e.Registry.RegisterFunc("portrait", e.portraitDetector)
	e.Engine = fde.New(g, e.Registry)
	return e, nil
}

// fetchDetector emits the page's title, keywords, anchors (with &html
// reference tokens for known pages) and embedded image locations.
func (e *InternetEngine) fetchDetector(ctx *detector.Context) ([]detector.Token, error) {
	p, ok := e.pages[ctx.Param(0)]
	if !ok {
		return nil, fmt.Errorf("core: no page at %s", ctx.Param(0))
	}
	var toks []detector.Token
	if p.Title != "" {
		toks = append(toks, detector.Token{Symbol: "title", Value: p.Title})
	}
	for _, k := range p.Keywords {
		toks = append(toks, detector.Token{Symbol: "word", Value: k})
	}
	for _, l := range p.Links {
		toks = append(toks, detector.Token{Symbol: "href", Value: l})
		if _, known := e.pages[l]; known {
			toks = append(toks, detector.Token{Symbol: "html", Value: l})
		}
	}
	for _, im := range p.Images {
		toks = append(toks, detector.Token{Symbol: "location", Value: im})
	}
	return toks, nil
}

// portraitDetector is the face/portrait classifier ([LH96]-style):
// it decides from the pixels whether the image is a portrait.
func (e *InternetEngine) portraitDetector(ctx *detector.Context) ([]detector.Token, error) {
	im, ok := e.images[ctx.Param(0)]
	if !ok {
		return nil, fmt.Errorf("core: no image at %s", ctx.Param(0))
	}
	isPortrait := cobra.SkinRatio(im.Frame) >= 0.2
	return []detector.Token{{Symbol: "portrait", Value: fmt.Sprint(isPortrait)}}, nil
}

// PopulateWeb runs the FDE over every page, stores the parse trees and
// indexes the keywords.
func (e *InternetEngine) PopulateWeb() error {
	urls := make([]string, 0, len(e.pages))
	for u := range e.pages {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		tree, err := e.Engine.Parse([]detector.Token{{Symbol: "location", Value: u}})
		if err != nil {
			return fmt.Errorf("core: index %s: %w", u, err)
		}
		id, err := e.Store.LoadNode(u, tree.XML())
		if err != nil {
			return err
		}
		e.docs[u] = id
		var text string
		p := e.pages[u]
		for _, k := range p.Keywords {
			text += k + " "
		}
		e.Keywords.Add(id, u, p.Title+" "+text)
	}
	// Bulk load done: freeze the index's derived access paths once so
	// queries start on sorted posting lists and fresh IDF rows.
	e.Keywords.Freeze()
	return nil
}

// PortraitHit is one answer of the portraits query.
type PortraitHit struct {
	Page  string
	Image string
	Score float64
}

// PortraitsOnPagesAbout answers the paper's Internet-scale example:
// "show me all portraits embedded in pages containing keywords
// semantically related to the word X". Related terms (sharing a stem,
// plus the supplied expansions) rank pages via the keyword index; the
// portraits on the ranked pages come from the stored meta-index.
func (e *InternetEngine) PortraitsOnPagesAbout(word string, related ...string) []PortraitHit {
	queryText := word
	for _, r := range related {
		queryText += " " + r
	}
	e.Keywords.Freeze()
	_, oids := e.Cache.Resolve(e.Keywords, queryText)
	ranked := e.Keywords.TopNTerms(oids, e.Keywords.DocCount())
	var hits []PortraitHit
	for _, r := range ranked {
		url, _ := e.Store.DocURL(r.Doc)
		for _, img := range e.portraitsOf(r.Doc) {
			hits = append(hits, PortraitHit{Page: url, Image: img, Score: r.Score})
		}
	}
	return hits
}

// portraitsOf reads the portrait-classified images of a stored page
// document from the path relations.
func (e *InternetEngine) portraitsOf(doc monetxml.DocID) []string {
	var out []string
	root, _, ok := e.Store.RootOf(doc)
	if !ok {
		return out
	}
	fetchEdge := e.Store.Relation("html/fetch")
	imgEdge := e.Store.Relation("html/fetch/image")
	locEdge := e.Store.Relation("html/fetch/image/location")
	npEdge := e.Store.Relation("html/fetch/image/portrait")
	if fetchEdge == nil || imgEdge == nil || locEdge == nil || npEdge == nil {
		return out
	}
	for _, fetch := range fetchEdge.TailsOfHead(root) {
		for _, img := range imgEdge.TailsOfHead(fetch) {
			isPortrait := false
			for _, p := range npEdge.TailsOfHead(img) {
				if e.Store.TextOf("html/fetch/image/portrait", p) == "true" {
					isPortrait = true
				}
			}
			if !isPortrait {
				continue
			}
			for _, l := range locEdge.TailsOfHead(img) {
				out = append(out, e.Store.TextOf("html/fetch/image/location", l))
			}
		}
	}
	return out
}

// LinkGraph returns the reference edges (&html) of the stored web:
// page URL -> referenced page URLs, demonstrating how the grammar's
// references turn the parse forest into the web's link graph.
func (e *InternetEngine) LinkGraph() map[string][]string {
	out := map[string][]string{}
	refRel := e.Store.Relation("html/fetch/anchor/html[ref]")
	if refRel == nil {
		return out
	}
	for i := 0; i < refRel.Len(); i++ {
		refOID := refRel.Head(i)
		target := refRel.TailString(i)
		// ref element -> ... -> html root -> owning document URL.
		doc, ok := e.Store.DocOf("html/fetch/anchor/html", refOID)
		if !ok {
			continue
		}
		if url, found := e.Store.DocURL(doc); found {
			out[url] = append(out[url], target)
		}
	}
	return out
}

// SyntheticWeb generates a small open web: pages about various topics
// with keyword sets, cross links and embedded images (portraits are
// close-up-like rasters, the rest court/other rasters).
func SyntheticWeb(seed int64) ([]*WebPage, []*WebImage) {
	topics := []struct {
		slug     string
		title    string
		keywords []string
		portrait bool
	}{
		{"champions", "Hall of Champions", []string{"champion", "tennis", "winner", "trophy"}, true},
		{"training", "Training ground", []string{"fitness", "drill", "practice"}, false},
		{"federer", "Profile of a champion", []string{"champion", "grand", "slam"}, true},
		{"weather", "Melbourne weather", []string{"rain", "forecast", "sun"}, false},
		{"gallery", "Photo gallery", []string{"photo", "portrait", "champion"}, true},
		{"tickets", "Ticket office", []string{"ticket", "price", "seat"}, false},
	}
	var pages []*WebPage
	var images []*WebImage
	base := "http://web.example"
	for i, tp := range topics {
		page := &WebPage{
			URL:      fmt.Sprintf("%s/%s.html", base, tp.slug),
			Title:    tp.title,
			Keywords: tp.keywords,
		}
		imgURL := fmt.Sprintf("%s/img/%s.jpg", base, tp.slug)
		page.Images = []string{imgURL}
		var frame *video.Frame
		if tp.portrait {
			v := video.Generate([]video.ShotSpec{{Kind: video.Closeup, Frames: 1}}, video.Options{Seed: seed + int64(i)})
			frame = v.Frames[0]
		} else {
			v := video.Generate([]video.ShotSpec{{Kind: video.Other, Frames: 1}}, video.Options{Seed: seed + int64(i)})
			frame = v.Frames[0]
		}
		images = append(images, &WebImage{URL: imgURL, Frame: frame, Portrait: tp.portrait})
		pages = append(pages, page)
	}
	// Cross links: each page links to the next (a ring) plus one
	// external URL.
	for i, p := range pages {
		p.Links = []string{pages[(i+1)%len(pages)].URL, "http://elsewhere.example/"}
	}
	return pages, images
}
