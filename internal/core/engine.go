// Package core assembles the three levels of the paper into the
// search-engine lifecycle: modeling (webspace schema + feature
// grammar), populating and maintaining (crawler → FDE → physical
// store, FDS for evolution) and querying (the integrated conceptual /
// content-based query engine).
package core

import (
	"fmt"

	"dlsearch/internal/crawler"
	"dlsearch/internal/detector"
	"dlsearch/internal/fde"
	"dlsearch/internal/fds"
	"dlsearch/internal/fg"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/query"
	"dlsearch/internal/webspace"
)

// Engine is a specialised digital library search engine instance.
type Engine struct {
	Schema   *webspace.Schema
	Grammar  *fg.Grammar
	Registry *detector.Registry

	Store     *monetxml.Store
	IR        map[string]*ir.Index
	Scheduler *fds.Scheduler
	DB        *query.Database

	// Cache is the query-side LRU over (query → term oids); the
	// executor's IR predicates resolve through it, and the serving
	// layer exposes its hit/miss counters.
	Cache *QueryCache

	conceptDocs map[string]monetxml.DocID // page url -> stored document
	mediaDocs   map[string]monetxml.DocID // media location -> stored parse tree
}

// New creates an engine for the given conceptual schema, feature
// grammar and detector registry (the modeling stage).
func New(schema *webspace.Schema, grammar *fg.Grammar, reg *detector.Registry) (*Engine, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		Schema:      schema,
		Grammar:     grammar,
		Registry:    reg,
		Store:       monetxml.NewStore(),
		IR:          map[string]*ir.Index{},
		Scheduler:   fds.New(grammar, reg),
		Cache:       NewQueryCache(DefaultQueryCacheSize),
		conceptDocs: map[string]monetxml.DocID{},
		mediaDocs:   map[string]monetxml.DocID{},
	}
	e.Store.SetTypeOracle(fde.TypeOracle(grammar))
	e.DB = query.NewDatabase(e.Store, e.IR)
	e.DB.ResolveTerms = e.Cache.ResolverFor()
	return e, nil
}

// PopulateReport summarises one population run.
type PopulateReport struct {
	Documents     int
	MediaParsed   int
	MediaFailed   int
	TextsIndexed  int
	Relations     int
	Associations  int
	DetectorCalls map[string]int
}

// Populate loads a crawl result: conceptual documents are stored as
// XML in the physical level, Hypertext attributes are indexed for
// full-text retrieval, and every other multimedia reference is run
// through the Feature Detector Engine, its parse tree stored in the
// meta-index and registered with the scheduler for maintenance.
func (e *Engine) Populate(res *crawler.Result) (*PopulateReport, error) {
	rep := &PopulateReport{}
	for _, doc := range res.Documents {
		if err := doc.Validate(e.Schema); err != nil {
			return rep, err
		}
		id, err := e.Store.LoadNode(doc.URL, doc.XML())
		if err != nil {
			return rep, fmt.Errorf("core: store %s: %w", doc.URL, err)
		}
		e.conceptDocs[doc.URL] = id
		rep.Documents++
	}
	e.DB.InvalidateCaches()

	for _, m := range res.Media {
		switch {
		case m.Type == webspace.Hypertext:
			oid, ok := e.DB.OIDOf(m.Owner)
			if !ok {
				return rep, fmt.Errorf("core: hypertext owner %s not stored", m.Owner)
			}
			key := m.Class + "." + m.Attr
			idx := e.IR[key]
			if idx == nil {
				idx = ir.NewIndex()
				e.IR[key] = idx
			}
			idx.Add(oid, m.Owner, m.Inline)
			rep.TextsIndexed++
		case m.URL != "":
			if err := e.analyzeMedia(m.URL); err != nil {
				// A media object the grammar rejects is recorded, not
				// fatal: the paper's index simply lacks meta-data for it.
				rep.MediaFailed++
				continue
			}
			rep.MediaParsed++
		}
	}
	e.DB.InvalidateCaches()
	// The bulk load is complete: freeze every full-text index so the
	// incremental IDF rows and posting-list sort order are in place
	// before the first query, and concurrent read-only queries never
	// mutate index state.
	for _, idx := range e.IR {
		idx.Freeze()
	}
	rep.Relations = len(e.Store.RelationNames())
	rep.Associations = e.Store.Bats.TotalAssociations()
	rep.DetectorCalls = e.Scheduler.Engine.Stats.DetectorCalls
	return rep, nil
}

// analyzeMedia runs the FDE over one multimedia object and stores the
// resulting parse tree in the meta-index.
func (e *Engine) analyzeMedia(location string) error {
	if _, done := e.mediaDocs[location]; done {
		return nil
	}
	initial := []detector.Token{{Symbol: "location", Value: location}}
	tree, err := e.Scheduler.Engine.Parse(initial)
	if err != nil {
		return err
	}
	e.Scheduler.AddTree(location, tree, initial)
	id, err := e.Store.LoadNode(location, tree.XML())
	if err != nil {
		return err
	}
	e.mediaDocs[location] = id
	return nil
}

// Query parses and evaluates an integrated query.
func (e *Engine) Query(src string) (*query.Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.NewExecutor(e.DB).Run(q)
}

// QueryWithStats additionally returns the executor cost counters.
func (e *Engine) QueryWithStats(src string, disableRestriction bool) (*query.Result, query.ExecStats, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, query.ExecStats{}, err
	}
	ex := query.NewExecutor(e.DB)
	ex.DisableRestriction = disableRestriction
	res, err := ex.Run(q)
	return res, ex.Stats, err
}

// QueryBudgeted evaluates an integrated query under a fragment-
// budgeted evaluation plan: unrestricted contains predicates touch
// only the plan's leading idf-descending fragments and the achieved
// quality estimate is returned alongside the result. Predicates under
// an a-priori conceptual restriction are evaluated exactly (the
// executor falls back), so the estimate only accounts for the
// predicates the budget actually cut.
func (e *Engine) QueryBudgeted(src string, plan ir.EvalPlan) (*query.Result, ir.QualityEstimate, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, ir.QualityEstimate{}, err
	}
	ex := query.NewExecutor(e.DB)
	ex.Plan = &plan
	res, err := ex.Run(q)
	return res, ex.Quality, err
}

// MaintenanceReport summarises a detector upgrade cycle.
type MaintenanceReport struct {
	Upgrade  fds.UpgradeReport
	Run      fds.RunReport
	Restored int // meta-index documents rewritten
}

// Upgrade installs a new detector implementation, lets the scheduler
// localise and revalidate the affected parse trees, and rewrites the
// touched meta-index documents in the physical store.
func (e *Engine) Upgrade(im *detector.Impl) (*MaintenanceReport, error) {
	rep := &MaintenanceReport{}
	rep.Upgrade = e.Scheduler.Upgrade(im)
	rep.Run = e.Scheduler.Run()
	for _, id := range rep.Run.Touched {
		if err := e.restoreMedia(id); err != nil {
			return rep, err
		}
		rep.Restored++
	}
	e.DB.InvalidateCaches()
	return rep, nil
}

// restoreMedia rewrites one maintained parse tree into the store.
func (e *Engine) restoreMedia(location string) error {
	tree := e.Scheduler.Tree(location)
	if tree == nil {
		return fmt.Errorf("core: no maintained tree for %s", location)
	}
	if old, ok := e.mediaDocs[location]; ok {
		if err := e.Store.DeleteDoc(old); err != nil {
			return err
		}
	}
	id, err := e.Store.LoadNode(location, tree.XML())
	if err != nil {
		return err
	}
	e.mediaDocs[location] = id
	return nil
}

// MediaLocations returns the locations of all analysed media in
// scheduler order.
func (e *Engine) MediaLocations() []string { return e.Scheduler.IDs() }
