package core

import (
	"sort"
	"testing"
)

func buildWeb(t *testing.T) *InternetEngine {
	t.Helper()
	pages, images := SyntheticWeb(5)
	e, err := NewInternetEngine(pages, images)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PopulateWeb(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFigure14InternetGrammar is experiment E07: the generic grammar
// indexes an open web and answers "show me all portraits embedded in
// pages containing keywords semantically related to the word
// 'champion'".
func TestFigure14InternetGrammar(t *testing.T) {
	e := buildWeb(t)
	hits := e.PortraitsOnPagesAbout("champion", "winner", "trophy")
	if len(hits) == 0 {
		t.Fatal("no portraits found")
	}
	// Ground truth: pages with 'champion'-related keywords AND a
	// portrait image: champions, federer, gallery.
	want := map[string]bool{
		"http://web.example/img/champions.jpg": true,
		"http://web.example/img/federer.jpg":   true,
		"http://web.example/img/gallery.jpg":   true,
	}
	got := map[string]bool{}
	for _, h := range hits {
		got[h.Image] = true
		if h.Score <= 0 {
			t.Fatalf("hit without score: %+v", h)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("hits = %v, want %v", got, want)
	}
	for img := range want {
		if !got[img] {
			t.Fatalf("missing portrait %s (got %v)", img, got)
		}
	}
}

func TestPortraitDetectorOnPixels(t *testing.T) {
	// The portrait classification must come from the pixels: ground
	// truth and classification agree on the synthetic images.
	pages, images := SyntheticWeb(11)
	e, err := NewInternetEngine(pages, images)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PopulateWeb(); err != nil {
		t.Fatal(err)
	}
	for _, im := range images {
		// Direct check through the stored meta-index.
		found := false
		for _, p := range pages {
			if len(p.Images) > 0 && p.Images[0] == im.URL {
				doc := e.docs[p.URL]
				for _, img := range e.portraitsOf(doc) {
					if img == im.URL {
						found = true
					}
				}
			}
		}
		if found != im.Portrait {
			t.Fatalf("image %s: classified %v, truth %v", im.URL, found, im.Portrait)
		}
	}
}

func TestLinkGraph(t *testing.T) {
	e := buildWeb(t)
	graph := e.LinkGraph()
	if len(graph) != len(e.pages) {
		t.Fatalf("graph covers %d pages, want %d", len(graph), len(e.pages))
	}
	// Each page references exactly its ring successor (the external
	// link is not a known page, so no &html reference).
	var urls []string
	for u := range e.pages {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for u, targets := range graph {
		if len(targets) != 1 {
			t.Fatalf("page %s has %d references", u, len(targets))
		}
		if _, known := e.pages[targets[0]]; !known {
			t.Fatalf("reference to unknown page %s", targets[0])
		}
	}
}

func TestInternetEngineErrors(t *testing.T) {
	pages := []*WebPage{{URL: "http://a", Images: []string{"http://missing.jpg"}}}
	e, err := NewInternetEngine(pages, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PopulateWeb(); err == nil {
		t.Fatal("missing image should fail population")
	}
}
