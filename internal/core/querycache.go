package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// QueryCache is a small LRU over query-term resolution: it maps
// (index, query string) to the tokenized/stemmed term oids (plus the
// stems themselves, which key global-statistics lookups in the
// distributed protocol), so a hot query skips the tokenizer and
// stemmer on every repetition — the ROADMAP's "query-side caching".
//
// Entries are validated against the index's freeze epoch: a Freeze
// that absorbed new postings bumps the epoch and every resolution
// captured before it is silently recomputed, because a previously
// unknown term may have entered the vocabulary. A dirty index (adds
// pending a freeze) bypasses the cache entirely rather than serving a
// potentially stale resolution.
//
// The cache is safe for concurrent use as long as the underlying
// indexes are frozen (Resolve only reads index state); hit/miss
// counters are exposed for the serving layer's /stats endpoint.
type QueryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheKey struct {
	ix    *ir.Index
	query string
}

type cacheEntry struct {
	key   cacheKey
	epoch uint64
	stems []string
	oids  []bat.OID
}

// DefaultQueryCacheSize is the capacity engines use when none is given.
const DefaultQueryCacheSize = 256

// NewQueryCache returns a cache holding up to capacity resolutions
// (capacity < 1 is clamped to 1).
func NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{cap: capacity, ll: list.New(), entries: map[cacheKey]*list.Element{}}
}

// Resolve returns the unique known query terms of ix as parallel
// stem/oid slices, from cache when the index's freeze epoch still
// matches. Callers must not mutate the returned slices.
func (qc *QueryCache) Resolve(ix *ir.Index, query string) (stems []string, oids []bat.OID) {
	if ix.Dirty() {
		// Derived state is pending: resolve directly and leave the
		// cache alone — the upcoming Freeze will bump the epoch anyway.
		qc.misses.Add(1)
		return ix.ResolveQuery(query)
	}
	key := cacheKey{ix: ix, query: query}
	epoch := ix.Epoch()
	qc.mu.Lock()
	if el, ok := qc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.epoch == epoch {
			qc.ll.MoveToFront(el)
			qc.mu.Unlock()
			qc.hits.Add(1)
			return ent.stems, ent.oids
		}
		// Stale epoch: drop and recompute below.
		qc.ll.Remove(el)
		delete(qc.entries, key)
	}
	qc.mu.Unlock()
	qc.misses.Add(1)
	stems, oids = ix.ResolveQuery(query)
	qc.mu.Lock()
	if _, ok := qc.entries[key]; !ok {
		qc.entries[key] = qc.ll.PushFront(&cacheEntry{key: key, epoch: epoch, stems: stems, oids: oids})
		for qc.ll.Len() > qc.cap {
			oldest := qc.ll.Back()
			qc.ll.Remove(oldest)
			delete(qc.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	qc.mu.Unlock()
	return stems, oids
}

// Counters returns the cumulative hit/miss counts.
func (qc *QueryCache) Counters() (hits, misses uint64) {
	return qc.hits.Load(), qc.misses.Load()
}

// Len returns the number of cached resolutions.
func (qc *QueryCache) Len() int {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.ll.Len()
}

// ResolverFor adapts the cache to the query executor's term-resolution
// hook (oids only; the executor scores against local statistics).
func (qc *QueryCache) ResolverFor() func(*ir.Index, string) []bat.OID {
	return func(ix *ir.Index, query string) []bat.OID {
		_, oids := qc.Resolve(ix, query)
		return oids
	}
}
