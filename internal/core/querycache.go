package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// QueryCache is a small LRU over query-term resolution: it maps
// (index, query string) to the tokenized/stemmed term oids (plus the
// stems themselves, which key global-statistics lookups in the
// distributed protocol), so a hot query skips the tokenizer and
// stemmer on every repetition — the ROADMAP's "query-side caching".
//
// A second, same-capacity LRU segment caches whole RES sets:
// (index, query) → ranking, with top-N-aware reuse — a cached top-50
// answers any n ≤ 50, and a cached ranking shorter than its n is the
// complete answer and serves every n. Ranking entries additionally
// remember the global-statistics fingerprint (TotalDF, Docs) they were
// scored with, because in a cluster another node's adds change the
// scores without touching this index's epoch.
//
// Entries are validated against the index's freeze epoch: a Freeze
// that absorbed new postings bumps the epoch and every resolution
// captured before it is silently recomputed, because a previously
// unknown term may have entered the vocabulary. A dirty index (adds
// pending a freeze) bypasses the cache entirely rather than serving a
// potentially stale resolution.
//
// The cache is safe for concurrent use as long as the underlying
// indexes are frozen (Resolve only reads index state); hit/miss
// counters are exposed for the serving layer's /stats endpoint.
type QueryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	rankLL      *list.List // RES-set segment, same discipline
	rankEntries map[cacheKey]*list.Element

	hits       atomic.Uint64
	misses     atomic.Uint64
	rankHits   atomic.Uint64
	rankMisses atomic.Uint64
}

type cacheKey struct {
	ix    *ir.Index
	query string
}

type cacheEntry struct {
	key   cacheKey
	epoch uint64
	stems []string
	oids  []bat.OID
}

// rankEntry is one cached RES set: the ranking computed for a top-n
// query at a given epoch under given global statistics.
type rankEntry struct {
	key     cacheKey
	epoch   uint64
	totalDF int // global-stats fingerprint the ranking was scored with
	docs    int
	n       int
	res     []ir.Result
}

// DefaultQueryCacheSize is the capacity engines use when none is given.
const DefaultQueryCacheSize = 256

// NewQueryCache returns a cache holding up to capacity resolutions
// (capacity < 1 is clamped to 1).
func NewQueryCache(capacity int) *QueryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryCache{
		cap:         capacity,
		ll:          list.New(),
		entries:     map[cacheKey]*list.Element{},
		rankLL:      list.New(),
		rankEntries: map[cacheKey]*list.Element{},
	}
}

// Resolve returns the unique known query terms of ix as parallel
// stem/oid slices, from cache when the index's freeze epoch still
// matches. Callers must not mutate the returned slices.
func (qc *QueryCache) Resolve(ix *ir.Index, query string) (stems []string, oids []bat.OID) {
	if ix.Dirty() {
		// Derived state is pending: resolve directly and leave the
		// cache alone — the upcoming Freeze will bump the epoch anyway.
		qc.misses.Add(1)
		return ix.ResolveQuery(query)
	}
	key := cacheKey{ix: ix, query: query}
	epoch := ix.Epoch()
	qc.mu.Lock()
	if el, ok := qc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.epoch == epoch {
			qc.ll.MoveToFront(el)
			qc.mu.Unlock()
			qc.hits.Add(1)
			return ent.stems, ent.oids
		}
		// Stale epoch: drop and recompute below.
		qc.ll.Remove(el)
		delete(qc.entries, key)
	}
	qc.mu.Unlock()
	qc.misses.Add(1)
	stems, oids = ix.ResolveQuery(query)
	qc.mu.Lock()
	if _, ok := qc.entries[key]; !ok {
		qc.entries[key] = qc.ll.PushFront(&cacheEntry{key: key, epoch: epoch, stems: stems, oids: oids})
		for qc.ll.Len() > qc.cap {
			oldest := qc.ll.Back()
			qc.ll.Remove(oldest)
			delete(qc.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	qc.mu.Unlock()
	return stems, oids
}

// Ranking returns a cached RES set for (ix, query) usable to answer a
// top-n query under the given global statistics: the entry must be
// epoch-fresh, fingerprint-matched, and either cached for at least n
// or complete (shorter than its own n — there were no more results).
// It implements dist.RankingCache. Callers must not mutate the
// returned slice.
func (qc *QueryCache) Ranking(ix *ir.Index, query string, n int, global ir.Stats) ([]ir.Result, bool) {
	if n <= 0 || ix.Dirty() {
		qc.rankMisses.Add(1)
		return nil, false
	}
	key := cacheKey{ix: ix, query: query}
	epoch := ix.Epoch()
	qc.mu.Lock()
	el, ok := qc.rankEntries[key]
	if !ok {
		qc.mu.Unlock()
		qc.rankMisses.Add(1)
		return nil, false
	}
	ent := el.Value.(*rankEntry)
	if ent.epoch != epoch || ent.totalDF != global.TotalDF || ent.docs != global.Docs {
		qc.rankLL.Remove(el)
		delete(qc.rankEntries, key)
		qc.mu.Unlock()
		qc.rankMisses.Add(1)
		return nil, false
	}
	complete := len(ent.res) < ent.n
	if n > ent.n && !complete {
		// The cached prefix may be missing ranks (ent.n, n] — a deeper
		// ranking was asked for than ever computed.
		qc.mu.Unlock()
		qc.rankMisses.Add(1)
		return nil, false
	}
	qc.rankLL.MoveToFront(el)
	res := ent.res
	qc.mu.Unlock()
	qc.rankHits.Add(1)
	if n < len(res) {
		res = res[:n]
	}
	return res, true
}

// StoreRanking caches a RES set computed for a top-n query. A deeper
// ranking replaces a shallower one for the same key; a shallower one
// is ignored while the deeper entry is still fresh. It implements
// dist.RankingCache.
func (qc *QueryCache) StoreRanking(ix *ir.Index, query string, n int, global ir.Stats, res []ir.Result) {
	if n <= 0 || ix.Dirty() {
		return
	}
	key := cacheKey{ix: ix, query: query}
	epoch := ix.Epoch()
	qc.mu.Lock()
	defer qc.mu.Unlock()
	if el, ok := qc.rankEntries[key]; ok {
		ent := el.Value.(*rankEntry)
		fresh := ent.epoch == epoch && ent.totalDF == global.TotalDF && ent.docs == global.Docs
		if fresh && (n <= ent.n || len(ent.res) < ent.n) {
			return // the cached entry already answers at least as much
		}
		qc.rankLL.Remove(el)
		delete(qc.rankEntries, key)
	}
	ent := &rankEntry{key: key, epoch: epoch, totalDF: global.TotalDF, docs: global.Docs, n: n, res: res}
	qc.rankEntries[key] = qc.rankLL.PushFront(ent)
	for qc.rankLL.Len() > qc.cap {
		oldest := qc.rankLL.Back()
		qc.rankLL.Remove(oldest)
		delete(qc.rankEntries, oldest.Value.(*rankEntry).key)
	}
}

// Counters returns the cumulative hit/miss counts.
func (qc *QueryCache) Counters() (hits, misses uint64) {
	return qc.hits.Load(), qc.misses.Load()
}

// RankCounters returns the cumulative RES-set cache hit/miss counts.
func (qc *QueryCache) RankCounters() (hits, misses uint64) {
	return qc.rankHits.Load(), qc.rankMisses.Load()
}

// RankLen returns the number of cached RES sets.
func (qc *QueryCache) RankLen() int {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.rankLL.Len()
}

// Len returns the number of cached resolutions.
func (qc *QueryCache) Len() int {
	qc.mu.Lock()
	defer qc.mu.Unlock()
	return qc.ll.Len()
}

// ResolverFor adapts the cache to the query executor's term-resolution
// hook (oids only; the executor scores against local statistics).
func (qc *QueryCache) ResolverFor() func(*ir.Index, string) []bat.OID {
	return func(ix *ir.Index, query string) []bat.OID {
		_, oids := qc.Resolve(ix, query)
		return oids
	}
}
