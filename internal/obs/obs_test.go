package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// bucketFor returns the index of the bucket v lands in, mirroring
// Observe's search, so tests can compute exact expected counts.
func bucketFor(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (≤1)=0.5,1  (≤2)=1.5,2  (≤4)=3,4  (+Inf)=100
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count=%d want 7", s.Count)
	}
	if math.Abs(s.Sum-112) > 1e-9 {
		t.Fatalf("sum=%g want 112", s.Sum)
	}
}

// Quantile estimates must land within the width of the bucket that
// holds the true quantile, on a known distribution.
func TestHistogramQuantileWithinBucketError(t *testing.T) {
	bounds := LatencyBounds()
	h := NewHistogram(bounds)
	rng := rand.New(rand.NewSource(42))
	n := 20000
	samples := make([]float64, n)
	for i := range samples {
		// log-uniform over ~[10µs, 1s] — spans many buckets
		v := math.Exp(rng.Float64()*math.Log(1e5)) * 1e-5
		samples[i] = v
		h.Observe(v)
	}
	snapSorted := append([]float64(nil), samples...)
	sortFloats(snapSorted)
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		est := s.Quantile(q)
		truth := snapSorted[int(q*float64(n))-1]
		bi := bucketFor(bounds, truth)
		lower := 0.0
		if bi > 0 {
			lower = bounds[bi-1]
		}
		upper := math.Inf(1)
		if bi < len(bounds) {
			upper = bounds[bi]
		}
		if est < lower || est > upper {
			t.Errorf("q=%g: estimate %g outside true bucket [%g,%g] (truth %g)", q, est, lower, upper, truth)
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// merge(snapshot A, snapshot B) must equal observing A∪B directly.
func TestHistogramMergeEquivalence(t *testing.T) {
	bounds := QualityBounds()
	a, b, both := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := rng.Float64()
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	direct := both.Snapshot()
	if merged.Count != direct.Count || math.Abs(merged.Sum-direct.Sum) > 1e-6 {
		t.Fatalf("merged count/sum %d/%g != direct %d/%g", merged.Count, merged.Sum, direct.Count, direct.Sum)
	}
	for i := range merged.Counts {
		if merged.Counts[i] != direct.Counts[i] {
			t.Fatalf("bucket %d: merged %d != direct %d", i, merged.Counts[i], direct.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if m, d := merged.Quantile(q), direct.Quantile(q); math.Abs(m-d) > 1e-9 {
			t.Fatalf("q=%g: merged %g != direct %g", q, m, d)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1.5)
	s := h.Snapshot()
	if got := s.Merge(HistSnapshot{}); got.Count != 1 {
		t.Fatalf("merge with empty changed count: %d", got.Count)
	}
	if got := (HistSnapshot{}).Merge(s); got.Count != 1 {
		t.Fatalf("empty.Merge(s) lost data: %d", got.Count)
	}
}

// Hammer one histogram from many goroutines; run with -race in CI.
// Total count and sum must be exact — no lost updates.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64() * 0.1)
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent reads must be safe
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count=%d want %d (lost updates)", s.Count, workers*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total=%d want %d", bucketTotal, workers*per)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var lg *Logger
	var sq *SlowQueryLog
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	tr.AddSpan("x", time.Now())
	lg.Infof("dropped")
	sq.Record(NewTrace(""), SlowQueryRecord{})
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 || tr.Spans() != nil {
		t.Fatal("nil instruments must observe nothing")
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("dl_search_requests_total", "Search requests.", Labels("index", "default")).Add(5)
	r.Counter("dl_search_requests_total", "Search requests.", Labels("index", "other")).Add(2)
	r.Gauge("dl_inflight_requests", "In-flight requests.", "").Set(3)
	h := r.Histogram("dl_search_latency_seconds", "Latency.", "", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE dl_search_requests_total counter",
		`dl_search_requests_total{index="default"} 5`,
		`dl_search_requests_total{index="other"} 2`,
		"# TYPE dl_inflight_requests gauge",
		"dl_inflight_requests 3",
		"# TYPE dl_search_latency_seconds histogram",
		`dl_search_latency_seconds_bucket{le="0.001"} 1`,
		`dl_search_latency_seconds_bucket{le="0.01"} 2`,
		`dl_search_latency_seconds_bucket{le="+Inf"} 3`,
		"dl_search_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("dl_search_requests_total", "", Labels("index", "default")).Value() != 5 {
		t.Fatal("re-registration did not return existing counter")
	}
}

func TestRegistryHistogramLabelsInBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dl_lat", "", Labels("index", "a"), []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `dl_lat_bucket{index="a",le="1"} 1`) {
		t.Fatalf("labelled bucket missing:\n%s", buf.String())
	}
}

func TestRuntimeGaugesAndHandler(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntimeGauges()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %s:\n%s", want, body)
		}
	}
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: status %d want 405", rec.Code)
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("")
	if len(tr.ID) != 16 {
		t.Fatalf("ID %q: want 16 hex chars", tr.ID)
	}
	start := time.Now()
	tr.AddSpan("plan", start)
	tr.AddSpan("merge", start)
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("spans=%d want 2", got)
	}
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil trace")
	}
	if tr2 := NewTrace("abc123"); tr2.ID != "abc123" {
		t.Fatalf("explicit ID not kept: %q", tr2.ID)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "dlserve", LevelInfo)
	lg.Debugf("hidden %d", 1)
	lg.Infof("shown %d", 2)
	lg.Warnf("warned")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked at info level: %s", out)
	}
	if !strings.Contains(out, "dlserve: info: shown 2") || !strings.Contains(out, "dlserve: warn: warned") {
		t.Fatalf("unexpected output: %s", out)
	}
	lg.SetLevel(LevelDebug)
	lg.Debugf("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel(debug) did not enable debug")
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Fatal("ParseLevel must reject bogus levels")
	}
	for s, want := range map[string]Level{"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError} {
		if got, err := ParseLevel(s); err != nil || got != want {
			t.Fatalf("ParseLevel(%q)=%v,%v want %v", s, got, err, want)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	sq := NewSlowQueryLog(&buf, time.Nanosecond)
	tr := NewTrace("req-1")
	tr.AddSpan("scoring", tr.Start)
	time.Sleep(time.Millisecond)
	sq.Record(tr, SlowQueryRecord{Role: "node", Index: "default", Query: "a b"})
	var rec SlowQueryRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON line: %v (%s)", err, buf.String())
	}
	if rec.RequestID != "req-1" || rec.Role != "node" || rec.TookUS <= 0 || len(rec.Spans) != 1 {
		t.Fatalf("bad record: %+v", rec)
	}
	// Fast queries stay silent.
	buf.Reset()
	sq2 := NewSlowQueryLog(&buf, time.Hour)
	sq2.Record(NewTrace(""), SlowQueryRecord{})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}
	// Disabled log is nil and safe.
	if NewSlowQueryLog(&buf, 0) != nil {
		t.Fatal("threshold 0 must disable the log")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile must be 0")
	}
	h := NewHistogram([]float64{1, 2})
	h.Observe(10) // only +Inf bucket
	if q := h.Snapshot().Quantile(0.5); q != 2 {
		t.Fatalf("+Inf-only quantile=%g want highest finite edge 2", q)
	}
}
