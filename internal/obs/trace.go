package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// HeaderRequestID is the HTTP header carrying a query's request ID
// from the coordinator to the nodes (and echoed back to the client),
// so node-side spans and slow-query log lines join the same trace.
const HeaderRequestID = "X-DL-Request"

// Span is one timed stage of a query: parse/plan, cache lookup,
// per-node RPC, node-side scoring, merge.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_us"` // offset from trace start
	Dur   time.Duration `json:"dur_us"`
}

// Trace is a lightweight per-query trace: a request ID plus per-stage
// spans. A nil *Trace is a valid no-op, so call sites instrument
// unconditionally and pay only a nil check when tracing is off.
// Span recording takes a mutex — traces live on the request path, not
// the per-document scoring path, so this is well off the hot loop.
type Trace struct {
	ID    string
	Start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace with the given request ID, generating a
// fresh ID when id is empty.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, Start: time.Now()}
}

// NewID returns a 16-hex-char random request ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back
		// to a time-derived ID rather than failing the query.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// AddSpan records a stage that began at start and ends now.
func (t *Trace) AddSpan(name string, start time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Start), Dur: time.Since(start)})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Elapsed reports time since the trace began.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.Start)
}

type traceKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext extracts the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
