package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistSnapshotQuantileEdgeCases(t *testing.T) {
	// Empty snapshot: every quantile is 0, never a panic or NaN.
	var empty HistSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, v)
		}
	}
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean() = %v, want 0", empty.Mean())
	}

	// Single observation: every quantile collapses onto its bucket, and
	// out-of-range q clamps instead of extrapolating.
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1, 7} {
		if v := s.Quantile(q); v <= 1 || v > 2 {
			t.Fatalf("single-observation Quantile(%v) = %v, want in (1, 2]", q, v)
		}
	}
	// q ≤ 0 clamps to rank 0, which may land on an empty leading
	// bucket's upper edge — defined, bounded, no panic.
	if v := s.Quantile(-0.5); v < 0 || v > 2 {
		t.Fatalf("single-observation Quantile(-0.5) = %v, want in [0, 2]", v)
	}

	// A single +Inf-bucket observation reports the highest finite edge —
	// the best defensible point estimate.
	h = NewHistogram([]float64{1, 2, 4})
	h.Observe(1000)
	if v := h.Snapshot().Quantile(0.5); v != 4 {
		t.Fatalf("+Inf-bucket Quantile = %v, want highest finite edge 4", v)
	}
}

func TestHistSnapshotMergeDisjointBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2}).Snapshot()
	b := NewHistogram([]float64{1, 2, 4}).Snapshot()
	// Both empty: merging is a no-op regardless of shape.
	if out := a.Merge(b); out.Count != 0 {
		t.Fatalf("empty disjoint merge = %+v", out)
	}
	// Merging into a zero-value snapshot adopts the other side whole.
	hb := NewHistogram([]float64{1, 2, 4})
	hb.Observe(3)
	if out := (HistSnapshot{}).Merge(hb.Snapshot()); out.Count != 1 || len(out.Bounds) != 3 {
		t.Fatalf("zero-value merge = %+v", out)
	}
	// Two populated snapshots with different bucket layouts cannot be
	// merged meaningfully: that is a programming error and must panic
	// loudly, not silently misalign buckets.
	ha := NewHistogram([]float64{1, 2})
	ha.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging populated snapshots with disjoint bounds did not panic")
		}
	}()
	ha.Snapshot().Merge(hb.Snapshot())
}

func TestHistogramConcurrentSnapshotMerge(t *testing.T) {
	// Race-test the observe/snapshot/merge triangle: writers observe
	// while readers snapshot and merge. Invariant: every snapshot is
	// internally consistent (Count == Σ Counts).
	h1 := NewHistogram(LatencyBounds())
	h2 := NewHistogram(LatencyBounds())
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				h1.Observe(float64(i%7) * 1e-3)
				h2.Observe(float64(i%13) * 1e-3)
			}
		}()
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := h1.Snapshot().Merge(h2.Snapshot())
			var sum uint64
			for _, c := range m.Counts {
				sum += c
			}
			if sum != m.Count {
				panic("merged snapshot count out of sync with buckets")
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	total := h1.Snapshot().Merge(h2.Snapshot())
	if total.Count != 16000 {
		t.Fatalf("merged count = %d, want 16000", total.Count)
	}
}

func TestDecayedHistBasics(t *testing.T) {
	// Empty and nil histograms answer zeros, never panic.
	var nilHist *DecayedHist
	nilHist.Observe(1)
	if nilHist.Quantile(0.5) != 0 || nilHist.Weight() != 0 || nilHist.Mean() != 0 {
		t.Fatal("nil DecayedHist is not a no-op")
	}
	h := NewDecayedHist([]float64{1, 2, 4}, 64)
	if h.Quantile(0.5) != 0 || h.Weight() != 0 {
		t.Fatal("empty DecayedHist reports evidence")
	}
	// Single observation: quantiles collapse onto its bucket.
	h.Observe(1.5)
	if v := h.Quantile(0.95); v <= 1 || v > 2 {
		t.Fatalf("single-observation quantile = %v, want in (1, 2]", v)
	}
	if w := h.Weight(); w != 1 {
		t.Fatalf("weight after one observation = %v, want 1", w)
	}
	if m := h.Mean(); m != 1.5 {
		t.Fatalf("mean = %v, want 1.5", m)
	}
	// +Inf bucket clamps to the highest finite edge.
	h = NewDecayedHist([]float64{1, 2, 4}, 64)
	h.Observe(99)
	if v := h.Quantile(0.5); v != 4 {
		t.Fatalf("+Inf-bucket quantile = %v, want 4", v)
	}
}

func TestDecayedHistHalfLife(t *testing.T) {
	// After exactly halfLife further observations, the first sample's
	// weight contribution must be one half.
	const halfLife = 32
	h := NewDecayedHist([]float64{1e9}, halfLife) // one catch-all bucket
	h.Observe(1)
	for i := 0; i < halfLife; i++ {
		h.Observe(1)
	}
	// weight = Σ alpha^i for i=0..halfLife; the oldest term is 0.5.
	alpha := math.Exp(math.Ln2 / -float64(halfLife))
	if w := math.Pow(alpha, halfLife); math.Abs(w-0.5) > 1e-12 {
		t.Fatalf("alpha^halfLife = %v, want 0.5", w)
	}
	want := 0.0
	for i := 0; i <= halfLife; i++ {
		want += math.Pow(alpha, float64(i))
	}
	if got := h.Weight(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("weight = %v, want %v", got, want)
	}
}

func TestDecayedHistAscendingBoundsEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewDecayedHist([]float64{1, 1}, 0)
}

func TestDecayedHistObserveAllocationFree(t *testing.T) {
	h := NewDecayedHist(LatencyBounds(), 0)
	if n := testing.AllocsPerRun(200, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", n)
	}
}

func TestDecayedHistConcurrent(t *testing.T) {
	h := NewDecayedHist(LatencyBounds(), 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
				_ = h.Quantile(0.95)
				_ = h.Weight()
			}
		}()
	}
	wg.Wait()
	if w := h.Weight(); w <= 0 {
		t.Fatalf("weight = %v after 4000 observations", w)
	}
}
