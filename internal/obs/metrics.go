// Package obs is the observability substrate for dlsearch: a
// dependency-free metrics core (counters, gauges, and mergeable
// histograms safe for the scoring hot path — no locks, no allocations
// per observation), a per-query trace with request-ID propagation,
// and a leveled logger. Serving layers register their instruments in
// a Registry, which renders them in the Prometheus text exposition
// format for GET /metrics.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter is a no-op so uninstrumented code
// paths pay only a predictable branch.
type Counter struct{ v atomic.Uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 instrument (last write wins).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free: one atomic add on the bucket, one
// CAS loop on the float sum. Bounds are upper bucket edges in
// ascending order; an implicit +Inf bucket catches the overflow. A
// nil *Histogram ignores observations, so hot paths can be
// instrumented unconditionally and pay nothing when observability is
// off.
type Histogram struct {
	bounds  []float64 // upper edges, ascending; counts has len(bounds)+1
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bucket edges. The slice is retained; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// LatencyBounds returns log-spaced duration edges (seconds) from 1µs
// to ~67s, doubling each bucket: fine resolution where queries live,
// bounded cardinality everywhere else.
func LatencyBounds() []float64 {
	bounds := make([]float64, 27)
	v := 1e-6
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// QualityBounds returns linear edges over [0,1] in steps of 0.05 for
// served QualityEstimate values.
func QualityBounds() []float64 {
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = 0.05 * float64(i+1)
	}
	return bounds
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; branch-free enough for
	// the hot path and allocation-free always.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Snapshot captures a point-in-time copy of the histogram. Buckets
// are read without a global lock, so under concurrent writers the
// snapshot is a consistent-enough view (each bucket is individually
// atomic); Count is recomputed from the buckets so quantiles always
// see an internally consistent total.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram's state; the zero
// value is an empty snapshot.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1, last is +Inf
	Count  uint64
	Sum    float64
}

// Merge folds other into s (bucket-wise add). Both snapshots must
// share bucket bounds; merging an empty snapshot is a no-op.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	if other.Count == 0 && other.Sum == 0 {
		return s
	}
	if s.Count == 0 && s.Sum == 0 && s.Bounds == nil {
		return other
	}
	if len(s.Bounds) != len(other.Bounds) {
		panic("obs: merging histogram snapshots with different bucket bounds")
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + other.Count,
		Sum:    s.Sum + other.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + other.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket containing the target rank — the
// standard Prometheus histogram_quantile estimate, so the error is
// bounded by the bucket width. Returns 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) >= rank {
			if i == len(s.Bounds) {
				// +Inf bucket: the best defensible point estimate is
				// the highest finite edge.
				if len(s.Bounds) == 0 {
					return 0
				}
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			if c == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-prev)/float64(c)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean reports the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// metric is one named instrument plus its exposition metadata.
type metric struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	labels string // rendered label set: `{index="default"}` or ""

	counter     *Counter
	counterFunc func() uint64
	gauge       *Gauge
	gaugeFunc   func() float64
	hist        *Histogram
}

// Registry names instruments and renders them as Prometheus text.
// Registration is idempotent per (name, labels) pair: asking twice
// returns the same instrument, so packages can register lazily
// without coordination. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	metrics    map[string]*metric // key: name + labels
	order      []string
	onScrape   []func()
	runtimeReg bool // RegisterRuntimeGauges already ran
}

// NewRegistry returns an empty registry (no runtime gauges; call
// RegisterRuntimeGauges for the Go runtime series).
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry used when a config leaves its
// Metrics field nil.
var Default = NewRegistry()

// Labels renders an ordered list of key, value pairs as a Prometheus
// label set. Values are escaped per the text format.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) lookup(name, labels, kind, help string) *metric {
	key := name + labels
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as %s, not %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the counter registered under name+labels, creating
// it on first use.
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, labels, "counter", help)
	if m.counter == nil && m.counterFunc == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (for pre-existing atomics like dist.Telemetry).
func (r *Registry) CounterFunc(name, help, labels string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, labels, "counter", help)
	m.counterFunc = fn
}

// Gauge returns the gauge registered under name+labels, creating it
// on first use.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, labels, "gauge", help)
	if m.gauge == nil && m.gaugeFunc == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge computed from fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, labels, "gauge", help)
	m.gaugeFunc = fn
}

// Histogram returns the histogram registered under name+labels,
// creating it with the given bounds on first use.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, labels, "histogram", help)
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// OnScrape registers a hook run at the start of every WritePrometheus
// call, before values are read — the place to refresh GaugeFunc
// sources that are expensive to compute per-gauge (one ReadMemStats
// feeding several gauges).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

// RegisterRuntimeGauges adds the standard Go runtime series
// (goroutines, heap bytes, GC pause total, GC cycles) fed by a single
// ReadMemStats per scrape. Idempotent: a registry shared by a node
// and a coordinator in one process registers the series once.
func (r *Registry) RegisterRuntimeGauges() {
	r.mu.Lock()
	if r.runtimeReg {
		r.mu.Unlock()
		return
	}
	r.runtimeReg = true
	r.mu.Unlock()
	var mu sync.Mutex
	var ms runtime.MemStats
	r.OnScrape(func() {
		mu.Lock()
		runtime.ReadMemStats(&ms)
		mu.Unlock()
	})
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f(&ms)
		}
	}
	r.GaugeFunc("go_goroutines", "Number of goroutines.", "",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", "",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.GaugeFunc("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.", "",
		read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "",
		read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.", "",
		read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format (version 0.0.4). Histograms emit
// cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()

	// Hooks run before the series list is snapshotted so that series a
	// hook registers lazily (e.g. per-fragment counters whose
	// cardinality is only known at scrape time) appear in the same
	// scrape that created them.
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	keys := append([]string{}, r.order...)
	byKey := make(map[string]*metric, len(r.metrics))
	for k, m := range r.metrics {
		byKey[k] = m
	}
	r.mu.Unlock()

	// Group series of the same family so # HELP/# TYPE headers are
	// emitted once, with families in first-registration order.
	seenFamily := make(map[string]bool)
	var families []string
	fam := make(map[string][]*metric)
	for _, k := range keys {
		m := byKey[k]
		if !seenFamily[m.name] {
			seenFamily[m.name] = true
			families = append(families, m.name)
		}
		fam[m.name] = append(fam[m.name], m)
	}

	for _, name := range families {
		series := fam[name]
		first := series[0]
		if first.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, first.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, first.kind)
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, m := range series {
			switch m.kind {
			case "counter":
				v := m.counter.Value()
				if m.counterFunc != nil {
					v = m.counterFunc()
				}
				fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, v)
			case "gauge":
				v := m.gauge.Value()
				if m.gaugeFunc != nil {
					v = m.gaugeFunc()
				}
				fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels, formatFloat(v))
			case "histogram":
				writeHistogram(w, m)
			}
		}
	}
}

func writeHistogram(w io.Writer, m *metric) {
	s := m.hist.Snapshot()
	inner := strings.TrimSuffix(strings.TrimPrefix(m.labels, "{"), "}")
	leLabel := func(le string) string {
		if inner == "" {
			return `{le="` + le + `"}`
		}
		return "{" + inner + `,le="` + le + `"}`
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, leLabel(formatFloat(b)), cum)
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, leLabel("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, cum)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WritePrometheus(w)
	})
}
