package obs

import (
	"math"
	"sync"
)

// DecayedHist is a bucketed histogram whose counts decay exponentially
// per observation: every Observe first multiplies all bucket counts by
// a constant alpha < 1, then adds the new sample with weight 1. The
// histogram therefore tracks the *recent* distribution — after
// halfLife further observations an old sample contributes half as much
// as a fresh one — which is what a control loop wants from a live
// system: the quality/latency curve follows the corpus and the load,
// instead of averaging over the process's whole lifetime.
//
// Unlike Histogram it is mutex-guarded rather than lock-free: it lives
// on per-request paths (one observation per budgeted evaluation), not
// the per-document scoring path, and decaying float counts atomically
// would need a CAS loop per bucket. Observe performs no allocations.
// A nil *DecayedHist is a valid no-op.
type DecayedHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []float64 // len(bounds)+1, last bucket is +Inf
	weight float64   // decayed total count
	sum    float64   // decayed sum of observed values
	alpha  float64   // per-observation decay factor in (0, 1)
}

// DefaultCurveHalfLife is the observation half-life the serving layer
// uses for its quality/latency curves: recent enough to track load
// shifts within a few hundred queries, long enough that one outlier
// cannot swing a quantile.
const DefaultCurveHalfLife = 256

// NewDecayedHist returns a decayed histogram over the given strictly
// ascending bucket bounds. halfLife is the number of observations
// after which a sample's weight has decayed to one half; values < 1
// select DefaultCurveHalfLife.
func NewDecayedHist(bounds []float64, halfLife int) *DecayedHist {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: decayed histogram bounds must be strictly ascending")
		}
	}
	if halfLife < 1 {
		halfLife = DefaultCurveHalfLife
	}
	return &DecayedHist{
		bounds: bounds,
		counts: make([]float64, len(bounds)+1),
		alpha:  math.Exp(math.Ln2 / -float64(halfLife)),
	}
}

// Observe decays the recorded distribution one step and records v with
// weight 1. Allocation-free.
func (h *DecayedHist) Observe(v float64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] *= h.alpha
	}
	h.counts[lo]++
	h.weight = h.weight*h.alpha + 1
	h.sum = h.sum*h.alpha + v
	h.mu.Unlock()
}

// Weight reports the decayed observation count: the effective number
// of recent samples backing the distribution (at most ~halfLife/ln 2).
// It is the curve's confidence signal — a bucket with weight below ~1
// has essentially no recent evidence.
func (h *DecayedHist) Weight() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.weight
}

// Mean reports the decayed average observed value (0 when empty).
func (h *DecayedHist) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.weight == 0 {
		return 0
	}
	return h.sum / h.weight
}

// Quantile estimates the q-quantile of the decayed distribution by
// linear interpolation inside the target bucket, exactly like
// HistSnapshot.Quantile (0 on an empty histogram, the highest finite
// edge for the +Inf bucket).
func (h *DecayedHist) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.weight <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * h.weight
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += c
		if cum >= rank {
			if i == len(h.bounds) {
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-prev)/c
		}
	}
	return h.bounds[len(h.bounds)-1]
}
