package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are
// dropped before formatting.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// Logger is a minimal leveled logger: one writer, a prefix, an
// atomically adjustable level. Background-loop noise (anti-entropy,
// backoff retries) logs at Debug so it is quiet by default and
// switchable on demand. A nil *Logger drops everything.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	level  atomic.Int32
}

// NewLogger returns a logger writing "prefix: level: message" lines
// at or above level. A nil w defaults to os.Stderr.
func NewLogger(w io.Writer, prefix string, level Level) *Logger {
	if w == nil {
		w = os.Stderr
	}
	l := &Logger{w: w, prefix: prefix}
	l.level.Store(int32(level))
	return l
}

// SetLevel adjusts the threshold at runtime.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether messages at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prefix != "" {
		fmt.Fprintf(l.w, "%s: %s: %s\n", l.prefix, level, msg)
	} else {
		fmt.Fprintf(l.w, "%s: %s\n", level, msg)
	}
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// SlowQueryRecord is one structured slow-query log line: the full
// span breakdown of a query that exceeded the -slow-query-ms
// threshold, tied to the coordinator's request ID so coordinator- and
// node-side lines for the same query can be joined.
type SlowQueryRecord struct {
	RequestID string     `json:"request_id"`
	Role      string     `json:"role"` // "coordinator" or "node"
	Index     string     `json:"index,omitempty"`
	Query     string     `json:"query,omitempty"`
	TookUS    int64      `json:"took_us"`
	Quality   float64    `json:"quality,omitempty"`
	Results   int        `json:"results,omitempty"`
	// SLO is the budget controller's decision for this query, when the
	// coordinator served it adaptively.
	SLO   *SLOJSON   `json:"slo,omitempty"`
	Spans []SpanJSON `json:"spans"`
}

// SLOJSON renders one budget-controller decision in the slow-query
// log: what budget was chosen, what the curve predicted, what the
// query actually cost, and how much pressure shedding was applied.
type SLOJSON struct {
	Budget      int     `json:"budget"`
	PredictedMS float64 `json:"predicted_ms"`
	AchievedMS  float64 `json:"achieved_ms"`
	Confidence  float64 `json:"confidence"`
	ShedLevel   int     `json:"shed_level,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
	FloorHit    bool    `json:"floor_hit,omitempty"`
}

// SpanJSON is a span rendered with microsecond offsets for the
// slow-query log.
type SpanJSON struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// SlowQueryLog emits one JSON line per slow query to a writer.
// Disabled when nil or when threshold <= 0.
type SlowQueryLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// NewSlowQueryLog returns a slow-query log writing JSON lines to w
// (nil defaults to os.Stderr) for queries slower than threshold; a
// zero or negative threshold disables logging.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	if threshold <= 0 {
		return nil
	}
	if w == nil {
		w = os.Stderr
	}
	return &SlowQueryLog{w: w, threshold: threshold}
}

// Threshold reports the configured slow-query cutoff (0 when nil).
func (s *SlowQueryLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Record emits the trace as one JSON line if its elapsed time crossed
// the threshold. rec's TookUS and Spans are filled from t.
func (s *SlowQueryLog) Record(t *Trace, rec SlowQueryRecord) {
	if s == nil || t == nil {
		return
	}
	took := t.Elapsed()
	if took < s.threshold {
		return
	}
	rec.RequestID = t.ID
	rec.TookUS = took.Microseconds()
	for _, sp := range t.Spans() {
		rec.Spans = append(rec.Spans, SpanJSON{
			Name:    sp.Name,
			StartUS: sp.Start.Microseconds(),
			DurUS:   sp.Dur.Microseconds(),
		})
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(append(line, '\n'))
}
