// The node wire protocol's binary codec: compact framed messages for
// the coordinator↔node hot path — top-N / search requests (query +
// plan + global statistics), RES-set responses, batch ingest and
// statistics — reusing the snapshot format's varint+delta machinery
// and its integrity discipline.
//
// Frame (all integers little-endian / unsigned varint):
//
//	magic    [6]byte  "DLWIRE"
//	version  byte     wire format version (currently 1)
//	kind     byte     message kind (WireKind)
//	length   uint32   payload length in bytes
//	checksum [32]byte SHA-256 of the payload
//	payload  [length]byte
//
// Payloads delta-encode oid runs (zigzag varint — RES sets are
// score-ordered, so gaps are signed) and ship scores as raw float64
// bits, so a decoded ranking is bit-identical to the encoded one —
// the same guarantee the JSON codec gets from Go's shortest
// round-trip float encoding. Global statistics are encoded with the
// vocabulary sorted, making the bytes deterministic for a given
// Stats value; WireStatsCache exploits that to decode a repeated
// statistics block exactly once.
//
// Decodes fail closed, exactly like snapshots: bad magic, an unknown
// version or kind, truncation anywhere, a flipped bit, trailing bytes
// — all yield ErrWireCorrupt (or an unsupported-version error) and
// never a partial message.
package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// WireVersion is the current wire format version.
const WireVersion = 1

// WireContentType is the media type a binary wire message travels
// under over HTTP; request codec negotiation happens on it via
// Content-Type / Accept.
const WireContentType = "application/x-dlsearch-wire"

// WireProtocol is the HTTP Upgrade token switching a connection to
// the persistent framed-message transport (one wire frame per RPC,
// no per-request HTTP overhead).
const WireProtocol = "dlwire"

// wireMagic identifies one framed wire message.
var wireMagic = [6]byte{'D', 'L', 'W', 'I', 'R', 'E'}

// WireHeaderLen is the fixed frame header size preceding the payload.
const WireHeaderLen = 6 + 1 + 1 + 4 + sha256.Size

// ErrWireCorrupt reports a wire message that fails integrity
// verification: bad magic, truncation, checksum mismatch, an unknown
// kind or an undecodable payload. Handlers map it to a 4xx — the
// message is never partially applied.
var ErrWireCorrupt = errors.New("persist: corrupt wire message")

// WireKind is the message kind carried in the frame header.
type WireKind byte

const (
	// WireInvalid is the zero kind; no valid frame carries it.
	WireInvalid WireKind = 0x00

	// WireTopNRequest asks for an exact top-N: query, n, statistics.
	WireTopNRequest WireKind = 0x01
	// WireSearchRequest asks for a planned search: query, plan,
	// statistics.
	WireSearchRequest WireKind = 0x02
	// WireAddBatchRequest ships one partition of a document batch.
	WireAddBatchRequest WireKind = 0x03
	// WireStatsRequest asks for the node's local statistics (empty
	// payload; the persistent-connection transport's GET).
	WireStatsRequest WireKind = 0x04

	// WireTopNResponse answers WireTopNRequest with a RES set.
	WireTopNResponse WireKind = 0x11
	// WireSearchResponse answers WireSearchRequest with a RES set and
	// the achieved quality estimate.
	WireSearchResponse WireKind = 0x12
	// WireStatsResponse answers WireStatsRequest with statistics.
	WireStatsResponse WireKind = 0x13
	// WireAck answers a request that returns no data (empty payload).
	WireAck WireKind = 0x14
	// WireError answers any request with a status code and message —
	// the persistent-connection transport's non-200.
	WireError WireKind = 0x1f
)

// maxWirePayload bounds one frame's payload; the u32 length field is
// authoritative, this is the sanity ceiling.
const maxWirePayload = math.MaxUint32

// WireBuffer accumulates exactly one framed wire message. Obtain one
// with GetWireBuffer, call one Encode method, read Bytes, and return
// it with PutWireBuffer — steady-state encoding then allocates only
// the sort scratch for statistics vocabularies.
type WireBuffer struct {
	buf  bytes.Buffer
	tmp  [binary.MaxVarintLen64]byte
	keys []string // sorted statistics vocabulary, reused
	err  error
}

var wireBufPool = sync.Pool{New: func() any { return new(WireBuffer) }}

// maxPooledWire caps the buffer capacity worth keeping in the pool; a
// one-off giant batch must not pin its footprint forever.
const maxPooledWire = 1 << 20

// GetWireBuffer returns an empty buffer from the shared pool.
func GetWireBuffer() *WireBuffer {
	b := wireBufPool.Get().(*WireBuffer)
	b.Reset()
	return b
}

// PutWireBuffer returns a buffer to the shared pool. The caller must
// not touch it (or slices from Bytes) afterwards.
func PutWireBuffer(b *WireBuffer) {
	if b != nil && b.buf.Cap() <= maxPooledWire {
		wireBufPool.Put(b)
	}
}

// Reset empties the buffer for reuse.
func (b *WireBuffer) Reset() {
	b.buf.Reset()
	b.err = nil
}

// Bytes returns the complete framed message. Valid until the next
// Reset/Encode; check Err before trusting it.
func (b *WireBuffer) Bytes() []byte { return b.buf.Bytes() }

// Len returns the framed message length in bytes.
func (b *WireBuffer) Len() int { return b.buf.Len() }

// Err reports an encoding failure (only an over-4GiB payload can
// cause one).
func (b *WireBuffer) Err() error { return b.err }

func (b *WireBuffer) begin(kind WireKind) {
	b.buf.Reset()
	b.err = nil
	var hdr [WireHeaderLen]byte
	copy(hdr[:6], wireMagic[:])
	hdr[6] = WireVersion
	hdr[7] = byte(kind)
	b.buf.Write(hdr[:])
}

func (b *WireBuffer) finish() {
	p := b.buf.Bytes()
	payload := p[WireHeaderLen:]
	if uint64(len(payload)) > maxWirePayload {
		b.err = fmt.Errorf("persist: wire payload %d bytes exceeds frame limit", len(payload))
		b.buf.Reset()
		return
	}
	binary.LittleEndian.PutUint32(p[8:12], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	copy(p[12:WireHeaderLen], sum[:])
}

func (b *WireBuffer) u(v uint64) {
	b.buf.Write(b.tmp[:binary.PutUvarint(b.tmp[:], v)])
}

// i writes a zigzag varint, so small negative values stay small.
func (b *WireBuffer) i(v int64) {
	b.u(uint64(v<<1) ^ uint64(v>>63))
}

func (b *WireBuffer) f64(v float64) {
	binary.LittleEndian.PutUint64(b.tmp[:8], math.Float64bits(v))
	b.buf.Write(b.tmp[:8])
}

func (b *WireBuffer) str(s string) {
	b.u(uint64(len(s)))
	b.buf.WriteString(s)
}

// stats encodes a statistics block with the vocabulary sorted: the
// bytes for a given Stats value are deterministic, which is what lets
// WireStatsCache key repeated blocks by digest. The block always sits
// last in its payload, so it needs no length prefix.
func (b *WireBuffer) stats(st ir.Stats) {
	b.i(int64(st.TotalDF))
	b.i(int64(st.Docs))
	b.u(uint64(len(st.DF)))
	keys := b.keys[:0]
	for t := range st.DF {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	b.keys = keys
	for _, t := range keys {
		b.str(t)
		b.i(int64(st.DF[t]))
	}
}

func (b *WireBuffer) results(rs []ir.Result) {
	b.u(uint64(len(rs)))
	prev := int64(0)
	for _, r := range rs {
		// RES sets are score-ordered, not oid-ordered: gaps are signed.
		b.i(int64(r.Doc) - prev)
		prev = int64(r.Doc)
		b.f64(r.Score)
	}
}

// EncodeTopNRequest frames an exact top-N request.
func (b *WireBuffer) EncodeTopNRequest(query string, n int, stats ir.Stats) {
	b.begin(WireTopNRequest)
	b.str(query)
	b.i(int64(n))
	b.stats(stats)
	b.finish()
}

// EncodeSearchRequest frames a planned search request.
func (b *WireBuffer) EncodeSearchRequest(query string, plan ir.EvalPlan, stats ir.Stats) {
	b.begin(WireSearchRequest)
	b.str(query)
	b.i(int64(plan.N))
	b.i(int64(plan.Frags))
	b.i(int64(plan.Budget))
	b.f64(plan.MinQuality)
	b.stats(stats)
	b.finish()
}

// EncodeTopNResponse frames a RES set.
func (b *WireBuffer) EncodeTopNResponse(rs []ir.Result) {
	b.begin(WireTopNResponse)
	b.results(rs)
	b.finish()
}

// EncodeSearchResponse frames a RES set plus the achieved quality.
func (b *WireBuffer) EncodeSearchResponse(rs []ir.Result, q ir.QualityEstimate) {
	b.begin(WireSearchResponse)
	b.f64(q.CoveredIDF)
	b.f64(q.TotalIDF)
	b.i(int64(q.FragsUsed))
	b.i(int64(q.FragsTotal))
	b.results(rs)
	b.finish()
}

// EncodeAddBatchRequest frames one partition of a document batch (the
// op-log record shape: oid, url, text).
func (b *WireBuffer) EncodeAddBatchRequest(ops []Op) {
	b.begin(WireAddBatchRequest)
	b.u(uint64(len(ops)))
	for i := range ops {
		b.u(uint64(ops[i].Doc))
		b.str(ops[i].URL)
		b.str(ops[i].Text)
	}
	b.finish()
}

// EncodeStatsRequest frames a statistics request (empty payload).
func (b *WireBuffer) EncodeStatsRequest() {
	b.begin(WireStatsRequest)
	b.finish()
}

// EncodeStatsResponse frames a statistics block.
func (b *WireBuffer) EncodeStatsResponse(st ir.Stats) {
	b.begin(WireStatsResponse)
	b.stats(st)
	b.finish()
}

// EncodeAck frames an empty success answer.
func (b *WireBuffer) EncodeAck() {
	b.begin(WireAck)
	b.finish()
}

// EncodeError frames an error answer: an HTTP-equivalent status code
// and a message.
func (b *WireBuffer) EncodeError(status int, msg string) {
	b.begin(WireError)
	b.u(uint64(status))
	b.str(msg)
	b.finish()
}

// WirePeekKind reports the kind of a framed message without verifying
// it — routing only; every Decode re-verifies the full frame.
func WirePeekKind(msg []byte) WireKind {
	if len(msg) < WireHeaderLen || !bytes.Equal(msg[:6], wireMagic[:]) {
		return WireInvalid
	}
	return WireKind(msg[7])
}

// DecodeWire verifies one framed message end to end — magic, version,
// exact length, checksum — and returns its kind and payload (aliasing
// msg). Any violation fails closed.
func DecodeWire(msg []byte) (WireKind, []byte, error) {
	if len(msg) < WireHeaderLen {
		return WireInvalid, nil, fmt.Errorf("%w: truncated header: %d bytes", ErrWireCorrupt, len(msg))
	}
	if !bytes.Equal(msg[:6], wireMagic[:]) {
		return WireInvalid, nil, fmt.Errorf("%w: bad magic", ErrWireCorrupt)
	}
	if v := msg[6]; v != WireVersion {
		return WireInvalid, nil, fmt.Errorf("persist: unsupported wire version %d (this build speaks %d)", v, WireVersion)
	}
	kind := WireKind(msg[7])
	plen := binary.LittleEndian.Uint32(msg[8:12])
	payload := msg[WireHeaderLen:]
	if uint64(len(payload)) != uint64(plen) {
		return WireInvalid, nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrWireCorrupt, len(payload), plen)
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], msg[12:WireHeaderLen]) {
		return WireInvalid, nil, fmt.Errorf("%w: checksum mismatch", ErrWireCorrupt)
	}
	return kind, payload, nil
}

// expectWire verifies msg and requires the given kind.
func expectWire(msg []byte, want WireKind) ([]byte, error) {
	kind, payload, err := DecodeWire(msg)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("%w: kind 0x%02x where 0x%02x expected", ErrWireCorrupt, byte(kind), byte(want))
	}
	return payload, nil
}

func (d *decoder) ivarint() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *decoder) wireResults() []ir.Result {
	rs := make([]ir.Result, d.count(9)) // ≥ 1 delta byte + 8 score bytes each
	prev := int64(0)
	for i := range rs {
		prev += d.ivarint()
		rs[i] = ir.Result{Doc: bat.OID(prev), Score: d.f64()}
	}
	return rs
}

func (d *decoder) wireStats() ir.Stats {
	st := ir.Stats{TotalDF: int(d.ivarint()), Docs: int(d.ivarint())}
	n := d.count(2) // ≥ length byte + df byte per term
	st.DF = make(map[string]int, n)
	for i := 0; i < n; i++ {
		t := d.str()
		st.DF[t] = int(d.ivarint())
	}
	return st
}

// finish closes a payload decode: the first sticky error or trailing
// bytes fail the whole message.
func (d *decoder) finishWire() error {
	if d.err != nil {
		return fmt.Errorf("%w: %v", ErrWireCorrupt, d.err)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrWireCorrupt, len(d.buf))
	}
	return nil
}

// WireStatsCache interns decoded global-statistics blocks. The
// coordinator ships identical statistics with every query between
// ingests and the encoding is deterministic, so the node decodes each
// distinct block once and serves the cached value by digest — the
// statistics map dominates request decode cost. Callers must treat
// returned Stats as read-only (scoring does). The zero value is ready.
type WireStatsCache struct {
	v atomic.Pointer[wireStatsEntry]
}

type wireStatsEntry struct {
	sum [sha256.Size]byte
	st  ir.Stats
}

// decodeStatsTail decodes the statistics block occupying the rest of
// d's payload, through cache when non-nil.
func (d *decoder) decodeStatsTail(cache *WireStatsCache) (ir.Stats, error) {
	if d.err != nil {
		return ir.Stats{}, d.err
	}
	block := d.buf
	if cache != nil {
		sum := sha256.Sum256(block)
		if e := cache.v.Load(); e != nil && e.sum == sum {
			d.buf = nil
			return e.st, nil
		}
		st := d.wireStats()
		if err := d.finishWire(); err != nil {
			return ir.Stats{}, err
		}
		cache.v.Store(&wireStatsEntry{sum: sum, st: st})
		return st, nil
	}
	st := d.wireStats()
	if err := d.finishWire(); err != nil {
		return ir.Stats{}, err
	}
	return st, nil
}

// DecodeTopNRequest decodes a WireTopNRequest frame. cache, when
// non-nil, interns the statistics block.
func DecodeTopNRequest(msg []byte, cache *WireStatsCache) (query string, n int, stats ir.Stats, err error) {
	payload, err := expectWire(msg, WireTopNRequest)
	if err != nil {
		return "", 0, ir.Stats{}, err
	}
	d := decoder{buf: payload}
	query = d.str()
	n = int(d.ivarint())
	stats, err = d.decodeStatsTail(cache)
	if err != nil {
		return "", 0, ir.Stats{}, err
	}
	return query, n, stats, nil
}

// DecodeSearchRequest decodes a WireSearchRequest frame.
func DecodeSearchRequest(msg []byte, cache *WireStatsCache) (query string, plan ir.EvalPlan, stats ir.Stats, err error) {
	payload, err := expectWire(msg, WireSearchRequest)
	if err != nil {
		return "", ir.EvalPlan{}, ir.Stats{}, err
	}
	d := decoder{buf: payload}
	query = d.str()
	plan = ir.EvalPlan{
		N:      int(d.ivarint()),
		Frags:  int(d.ivarint()),
		Budget: int(d.ivarint()),
	}
	plan.MinQuality = d.f64()
	stats, err = d.decodeStatsTail(cache)
	if err != nil {
		return "", ir.EvalPlan{}, ir.Stats{}, err
	}
	return query, plan, stats, nil
}

// DecodeTopNResponse decodes a WireTopNResponse frame.
func DecodeTopNResponse(msg []byte) ([]ir.Result, error) {
	payload, err := expectWire(msg, WireTopNResponse)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: payload}
	rs := d.wireResults()
	if err := d.finishWire(); err != nil {
		return nil, err
	}
	return rs, nil
}

// DecodeSearchResponse decodes a WireSearchResponse frame.
func DecodeSearchResponse(msg []byte) ([]ir.Result, ir.QualityEstimate, error) {
	payload, err := expectWire(msg, WireSearchResponse)
	if err != nil {
		return nil, ir.QualityEstimate{}, err
	}
	d := decoder{buf: payload}
	q := ir.QualityEstimate{
		CoveredIDF: d.f64(),
		TotalIDF:   d.f64(),
		FragsUsed:  int(d.ivarint()),
		FragsTotal: int(d.ivarint()),
	}
	rs := d.wireResults()
	if err := d.finishWire(); err != nil {
		return nil, ir.QualityEstimate{}, err
	}
	return rs, q, nil
}

// DecodeAddBatchRequest decodes a WireAddBatchRequest frame.
func DecodeAddBatchRequest(msg []byte) ([]Op, error) {
	payload, err := expectWire(msg, WireAddBatchRequest)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: payload}
	ops := make([]Op, d.count(3)) // ≥ oid byte + two length bytes each
	for i := range ops {
		ops[i] = Op{Doc: bat.OID(d.uvarint()), URL: d.str(), Text: d.str()}
	}
	if err := d.finishWire(); err != nil {
		return nil, err
	}
	return ops, nil
}

// DecodeStatsRequest verifies a WireStatsRequest frame (empty payload).
func DecodeStatsRequest(msg []byte) error {
	payload, err := expectWire(msg, WireStatsRequest)
	if err != nil {
		return err
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d payload bytes in a stats request", ErrWireCorrupt, len(payload))
	}
	return nil
}

// DecodeAck verifies a WireAck frame.
func DecodeAck(msg []byte) error {
	payload, err := expectWire(msg, WireAck)
	if err != nil {
		return err
	}
	if len(payload) != 0 {
		return fmt.Errorf("%w: %d payload bytes in an ack", ErrWireCorrupt, len(payload))
	}
	return nil
}

// DecodeStatsResponse decodes a WireStatsResponse frame.
func DecodeStatsResponse(msg []byte) (ir.Stats, error) {
	payload, err := expectWire(msg, WireStatsResponse)
	if err != nil {
		return ir.Stats{}, err
	}
	d := decoder{buf: payload}
	return d.decodeStatsTail(nil)
}

// DecodeErrorPayload decodes a WireError payload (the caller routed on
// the already-verified kind).
func DecodeErrorPayload(payload []byte) (status int, msg string, err error) {
	d := decoder{buf: payload}
	status = int(d.uvarint())
	msg = d.str()
	if e := d.finishWire(); e != nil {
		return 0, "", e
	}
	return status, msg, nil
}

// ReadWireFrame reads exactly one framed message from r — the
// persistent-connection transport's unit of exchange. The frame shape
// is validated (magic, version, payload length ≤ max) before the
// payload is read, so a corrupt length cannot become an allocation
// bomb; the checksum is verified by the subsequent Decode. scratch, if
// non-nil, is reused when large enough; the returned slice is the
// frame and doubles as next call's scratch. io.EOF surfaces unchanged
// when the stream ends cleanly between frames.
func ReadWireFrame(r io.Reader, max int, scratch []byte) ([]byte, error) {
	if cap(scratch) < WireHeaderLen {
		scratch = make([]byte, WireHeaderLen, WireHeaderLen+4096)
	}
	hdr := scratch[:WireHeaderLen]
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF between frames stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: truncated frame header: %v", ErrWireCorrupt, err)
	}
	if !bytes.Equal(hdr[:6], wireMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrWireCorrupt)
	}
	if v := hdr[6]; v != WireVersion {
		return nil, fmt.Errorf("persist: unsupported wire version %d (this build speaks %d)", v, WireVersion)
	}
	plen := binary.LittleEndian.Uint32(hdr[8:12])
	if max > 0 && uint64(plen) > uint64(max) {
		return nil, fmt.Errorf("%w: %d-byte payload exceeds the %d-byte frame cap", ErrWireCorrupt, plen, max)
	}
	total := WireHeaderLen + int(plen)
	frame := scratch
	if cap(frame) < total {
		frame = make([]byte, total)
		copy(frame, hdr)
	}
	frame = frame[:total]
	if _, err := io.ReadFull(r, frame[WireHeaderLen:]); err != nil {
		return nil, fmt.Errorf("%w: truncated frame payload: %v", ErrWireCorrupt, err)
	}
	return frame, nil
}
