package persist

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// wireTestStats is a small but non-trivial statistics block.
func wireTestStats() ir.Stats {
	return ir.Stats{
		DF:      map[string]int{"melbourne": 3, "champion": 17, "ace": 1},
		TotalDF: 21,
		Docs:    400,
	}
}

// wireTestResults is a RES set in score order with oids that are not
// monotone, exercising the signed-delta encoding.
func wireTestResults() []ir.Result {
	return []ir.Result{
		{Doc: 42, Score: 0.91},
		{Doc: 7, Score: 0.5},
		{Doc: 1000000, Score: 0.25},
		{Doc: 999999, Score: math.SmallestNonzeroFloat64},
		{Doc: 3, Score: 0},
	}
}

// wireMessages returns one encoded frame of every message kind,
// paired with a decoder that must fail closed on any mutation.
func wireMessages(t *testing.T) map[string]struct {
	msg    []byte
	decode func([]byte) error
} {
	t.Helper()
	enc := func(f func(b *WireBuffer)) []byte {
		b := GetWireBuffer()
		defer PutWireBuffer(b)
		f(b)
		if err := b.Err(); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return append([]byte(nil), b.Bytes()...)
	}
	stats, rs := wireTestStats(), wireTestResults()
	plan := ir.EvalPlan{N: 10, Frags: 8, Budget: 3, MinQuality: 0.75}
	q := ir.QualityEstimate{CoveredIDF: 1.5, TotalIDF: 2.5, FragsUsed: 3, FragsTotal: 8}
	ops := []Op{
		{Doc: 1, URL: "u1", Text: "melbourne champion"},
		{Doc: 2, Text: "ace"},
	}
	return map[string]struct {
		msg    []byte
		decode func([]byte) error
	}{
		"topn-request": {
			enc(func(b *WireBuffer) { b.EncodeTopNRequest("champion ace", 10, stats) }),
			func(m []byte) error { _, _, _, err := DecodeTopNRequest(m, nil); return err },
		},
		"search-request": {
			enc(func(b *WireBuffer) { b.EncodeSearchRequest("champion", plan, stats) }),
			func(m []byte) error { _, _, _, err := DecodeSearchRequest(m, nil); return err },
		},
		"topn-response": {
			enc(func(b *WireBuffer) { b.EncodeTopNResponse(rs) }),
			func(m []byte) error { _, err := DecodeTopNResponse(m); return err },
		},
		"search-response": {
			enc(func(b *WireBuffer) { b.EncodeSearchResponse(rs, q) }),
			func(m []byte) error { _, _, err := DecodeSearchResponse(m); return err },
		},
		"addbatch-request": {
			enc(func(b *WireBuffer) { b.EncodeAddBatchRequest(ops) }),
			func(m []byte) error { _, err := DecodeAddBatchRequest(m); return err },
		},
		"stats-request": {
			enc(func(b *WireBuffer) { b.EncodeStatsRequest() }),
			func(m []byte) error { return DecodeStatsRequest(m) },
		},
		"stats-response": {
			enc(func(b *WireBuffer) { b.EncodeStatsResponse(stats) }),
			func(m []byte) error { _, err := DecodeStatsResponse(m); return err },
		},
		"ack": {
			enc(func(b *WireBuffer) { b.EncodeAck() }),
			func(m []byte) error { return DecodeAck(m) },
		},
		"error": {
			enc(func(b *WireBuffer) { b.EncodeError(503, "at capacity") }),
			func(m []byte) error {
				kind, payload, err := DecodeWire(m)
				if err != nil {
					return err
				}
				if kind != WireError {
					return ErrWireCorrupt
				}
				_, _, err = DecodeErrorPayload(payload)
				return err
			},
		},
	}
}

// TestWireRoundTrip: every message kind decodes back to exactly what
// was encoded — oids, float-bit-exact scores, statistics, plans.
func TestWireRoundTrip(t *testing.T) {
	stats, rs := wireTestStats(), wireTestResults()

	b := GetWireBuffer()
	defer PutWireBuffer(b)

	b.EncodeTopNRequest("champion ace", 10, stats)
	query, n, st, err := DecodeTopNRequest(append([]byte(nil), b.Bytes()...), nil)
	if err != nil {
		t.Fatal(err)
	}
	if query != "champion ace" || n != 10 || !reflect.DeepEqual(st, stats) {
		t.Fatalf("topn request round trip: %q %d %+v", query, n, st)
	}

	plan := ir.EvalPlan{N: 10, Frags: 8, Budget: 3, MinQuality: 0.75}
	b.EncodeSearchRequest("champion", plan, stats)
	query, gotPlan, st, err := DecodeSearchRequest(append([]byte(nil), b.Bytes()...), nil)
	if err != nil {
		t.Fatal(err)
	}
	if query != "champion" || gotPlan != plan || !reflect.DeepEqual(st, stats) {
		t.Fatalf("search request round trip: %q %+v %+v", query, gotPlan, st)
	}

	b.EncodeTopNResponse(rs)
	got, err := DecodeTopNResponse(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("results round trip: %+v, want %+v", got, rs)
	}

	q := ir.QualityEstimate{CoveredIDF: 1.5, TotalIDF: 2.5, FragsUsed: 3, FragsTotal: 8}
	b.EncodeSearchResponse(rs, q)
	got, gotQ, err := DecodeSearchResponse(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) || gotQ != q {
		t.Fatalf("search response round trip: %+v %+v", got, gotQ)
	}

	ops := []Op{
		{Doc: 1, URL: "u1", Text: "melbourne champion"},
		{Doc: 2, Text: "ace"},
	}
	b.EncodeAddBatchRequest(ops)
	gotOps, err := DecodeAddBatchRequest(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOps) != len(ops) {
		t.Fatalf("%d ops, want %d", len(gotOps), len(ops))
	}
	for i := range ops {
		if gotOps[i].Doc != ops[i].Doc || gotOps[i].URL != ops[i].URL || gotOps[i].Text != ops[i].Text {
			t.Fatalf("op %d = %+v, want %+v", i, gotOps[i], ops[i])
		}
	}

	b.EncodeStatsResponse(stats)
	st, err = DecodeStatsResponse(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, stats) {
		t.Fatalf("stats round trip: %+v", st)
	}

	b.EncodeError(503, "at capacity")
	kind, payload, err := DecodeWire(b.Bytes())
	if err != nil || kind != WireError {
		t.Fatalf("error frame: kind %#x err %v", kind, err)
	}
	status, msg, err := DecodeErrorPayload(payload)
	if err != nil || status != 503 || msg != "at capacity" {
		t.Fatalf("error payload: %d %q %v", status, msg, err)
	}

	// Empty-payload kinds.
	b.EncodeAck()
	if err := DecodeAck(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	b.EncodeStatsRequest()
	if err := DecodeStatsRequest(b.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Zero-value edge cases.
	b.EncodeTopNResponse(nil)
	if got, err := DecodeTopNResponse(b.Bytes()); err != nil || len(got) != 0 {
		t.Fatalf("empty results: %v %v", got, err)
	}
	b.EncodeStatsResponse(ir.Stats{})
	if st, err := DecodeStatsResponse(b.Bytes()); err != nil || st.Docs != 0 || len(st.DF) != 0 {
		t.Fatalf("empty stats: %+v %v", st, err)
	}
}

// TestWireTruncationFailsClosed: a frame cut at ANY byte boundary is
// rejected — no prefix of a valid message is itself a valid message,
// and no decode ever panics or partially succeeds.
func TestWireTruncationFailsClosed(t *testing.T) {
	for name, m := range wireMessages(t) {
		for i := 0; i < len(m.msg); i++ {
			if err := m.decode(m.msg[:i]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded successfully", name, i, len(m.msg))
			}
		}
	}
}

// TestWireBitFlipsFailClosed: flipping any single bit anywhere in a
// frame — header or payload — is detected. The payload is covered by
// the checksum; the header fields are validated field by field.
func TestWireBitFlipsFailClosed(t *testing.T) {
	for name, m := range wireMessages(t) {
		corrupted := make([]byte, len(m.msg))
		for i := 0; i < len(m.msg); i++ {
			for bit := 0; bit < 8; bit++ {
				copy(corrupted, m.msg)
				corrupted[i] ^= 1 << bit
				if err := m.decode(corrupted); err == nil {
					t.Fatalf("%s with bit %d of byte %d flipped decoded successfully", name, bit, i)
				}
			}
		}
	}
}

// TestWireTrailingBytesFailClosed: bytes after the framed length are
// corruption, not padding.
func TestWireTrailingBytesFailClosed(t *testing.T) {
	for name, m := range wireMessages(t) {
		grown := append(append([]byte(nil), m.msg...), 0)
		if err := m.decode(grown); err == nil {
			t.Fatalf("%s with a trailing byte decoded successfully", name)
		}
	}
}

// TestWireVersionAndKind: future versions and unknown kinds are
// rejected up front; typed decoders reject the wrong kind even when
// the frame itself verifies.
func TestWireVersionAndKind(t *testing.T) {
	b := GetWireBuffer()
	defer PutWireBuffer(b)
	b.EncodeAck()
	msg := append([]byte(nil), b.Bytes()...)

	bad := append([]byte(nil), msg...)
	bad[6] = WireVersion + 1 // version byte follows the 6-byte magic
	if _, _, err := DecodeWire(bad); err == nil {
		t.Fatal("future version accepted")
	}

	// A verified Ack handed to every OTHER typed decoder must be
	// refused by kind, not misparsed.
	if err := DecodeStatsRequest(msg); err == nil {
		t.Fatal("ack accepted as stats request")
	}
	if _, err := DecodeTopNResponse(msg); err == nil {
		t.Fatal("ack accepted as topn response")
	}
	if _, _, _, err := DecodeTopNRequest(msg, nil); err == nil {
		t.Fatal("ack accepted as topn request")
	}
}

// TestWireStatsCacheInterns: two requests carrying byte-identical
// statistics blocks decode to the SAME map (interned by digest), and
// a changed block misses the cache and re-decodes.
func TestWireStatsCacheInterns(t *testing.T) {
	var cache WireStatsCache
	b := GetWireBuffer()
	defer PutWireBuffer(b)

	st := wireTestStats()
	b.EncodeTopNRequest("q", 5, st)
	msg := append([]byte(nil), b.Bytes()...)
	_, _, first, err := DecodeTopNRequest(msg, &cache)
	if err != nil {
		t.Fatal(err)
	}
	_, _, second, err := DecodeTopNRequest(msg, &cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("interned stats differ: %+v vs %+v", first, second)
	}
	if reflect.ValueOf(first.DF).Pointer() != reflect.ValueOf(second.DF).Pointer() {
		t.Fatal("identical stats blocks were not interned")
	}

	st.DF["newterm"] = 9
	st.TotalDF += 9
	b.EncodeTopNRequest("q", 5, st)
	_, _, third, err := DecodeTopNRequest(b.Bytes(), &cache)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(first.DF).Pointer() == reflect.ValueOf(third.DF).Pointer() {
		t.Fatal("changed stats block wrongly served from cache")
	}
	if third.DF["newterm"] != 9 {
		t.Fatalf("changed stats decoded wrong: %+v", third)
	}
}

// TestReadWireFrame: the streaming reader returns whole frames from a
// concatenated stream, reports a clean EOF between frames, and
// rejects truncated headers, foreign bytes and oversized lengths.
func TestReadWireFrame(t *testing.T) {
	b := GetWireBuffer()
	defer PutWireBuffer(b)
	var stream bytes.Buffer
	b.EncodeAck()
	ack := append([]byte(nil), b.Bytes()...)
	stream.Write(ack)
	b.EncodeError(400, "nope")
	errMsg := append([]byte(nil), b.Bytes()...)
	stream.Write(errMsg)

	var scratch []byte
	f1, err := ReadWireFrame(&stream, 1<<20, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, ack) {
		t.Fatal("first frame mismatch")
	}
	f2, err := ReadWireFrame(&stream, 1<<20, f1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f2, errMsg) {
		t.Fatal("second frame mismatch")
	}
	if _, err := ReadWireFrame(&stream, 1<<20, f2); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// A header cut mid-way is not a clean EOF.
	if _, err := ReadWireFrame(bytes.NewReader(ack[:10]), 1<<20, nil); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated header: %v", err)
	}
	// Garbage where the magic should be.
	if _, err := ReadWireFrame(bytes.NewReader([]byte("GET /node/wire HTTP/1.1\r\n\r\n padding padding padding")), 1<<20, nil); err == nil {
		t.Fatal("foreign bytes accepted as a frame")
	}
	// A declared payload above the cap is refused before any payload
	// read — the allocation-bomb guard.
	big := append([]byte(nil), ack...)
	big[8], big[9], big[10], big[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadWireFrame(bytes.NewReader(big), 1<<10, nil); err == nil {
		t.Fatal("oversized declared length accepted")
	}
}

// TestWireResultsDelta: oid runs that stress the signed delta paths —
// ascending, descending, huge jumps — survive bit-exact.
func TestWireResultsDelta(t *testing.T) {
	cases := [][]ir.Result{
		{{Doc: 1, Score: 1}, {Doc: 2, Score: 0.5}, {Doc: 3, Score: 0.25}},
		{{Doc: 3, Score: 1}, {Doc: 2, Score: 0.5}, {Doc: 1, Score: 0.25}},
		{{Doc: bat.OID(math.MaxUint32), Score: 1}, {Doc: 1, Score: 0.5}, {Doc: bat.OID(math.MaxUint32) - 1, Score: 0.1}},
	}
	b := GetWireBuffer()
	defer PutWireBuffer(b)
	for i, rs := range cases {
		b.EncodeTopNResponse(rs)
		got, err := DecodeTopNResponse(b.Bytes())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rs) {
			t.Fatalf("case %d: %+v, want %+v", i, got, rs)
		}
	}
}

// FuzzWireDecode: no input, however mangled, may panic or decode
// partially — every decoder either succeeds on a well-formed frame or
// returns an error.
func FuzzWireDecode(f *testing.F) {
	b := GetWireBuffer()
	b.EncodeTopNRequest("champion ace", 10, wireTestStats())
	f.Add(append([]byte(nil), b.Bytes()...))
	b.EncodeTopNResponse(wireTestResults())
	f.Add(append([]byte(nil), b.Bytes()...))
	b.EncodeAddBatchRequest([]Op{{Doc: 1, Text: "t"}})
	f.Add(append([]byte(nil), b.Bytes()...))
	b.EncodeAck()
	f.Add(append([]byte(nil), b.Bytes()...))
	PutWireBuffer(b)
	f.Add([]byte("DLWIRE"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var cache WireStatsCache
		DecodeWire(data)
		DecodeTopNRequest(data, &cache)
		DecodeSearchRequest(data, &cache)
		DecodeTopNResponse(data)
		DecodeSearchResponse(data)
		DecodeAddBatchRequest(data)
		DecodeStatsRequest(data)
		DecodeStatsResponse(data)
		DecodeAck(data)
		if kind, payload, err := DecodeWire(data); err == nil && kind == WireError {
			DecodeErrorPayload(payload)
		}
		ReadWireFrame(bytes.NewReader(data), 1<<16, nil)
	})
}
