package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"dlsearch/internal/ir"
)

// rewriteAsV1 converts a freshly saved v2 snapshot into a faithful v1
// file: the LogPos uvarint (the only v2 addition) is spliced out of
// the payload and the header re-stamped with version 1 and the new
// length/checksum.
func rewriteAsV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	const hdrLen = 8 + 4 + 8 + sha256.Size
	payload := append([]byte{}, v2[hdrLen:]...)
	off := 8 // Lambda (f64)
	for i := 0; i < 4; i++ { // Epoch, NextOID, MemBudget, FragK
		_, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			t.Fatal("bad varint while locating LogPos")
		}
		off += n
	}
	_, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		t.Fatal("bad LogPos varint")
	}
	payload = append(payload[:off], payload[off+n:]...)
	out := append([]byte{}, v2[:hdrLen]...)
	binary.LittleEndian.PutUint32(out[8:12], 1)
	binary.LittleEndian.PutUint64(out[12:20], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[20:hdrLen], sum[:])
	return append(out, payload...)
}

// TestLoadV1Snapshot: a node upgraded to the v2 (op-log) build must
// boot on its existing v1 snapshot — LogPos defaults to 0 ("no log
// prefix covered", so the whole log replays), never an "unsupported
// version" fatal that forces a manual -resync.
func TestLoadV1Snapshot(t *testing.T) {
	ix := snapCorpus(40, 11)
	st := ix.ExportState()
	st.LogPos = 777 // spliced out by the v1 rewrite; v1 readers must see 0
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(rewriteAsV1(t, buf.Bytes())))
	if err != nil {
		t.Fatalf("load v1 snapshot: %v", err)
	}
	if got.LogPos != 0 {
		t.Fatalf("v1 LogPos=%d, want 0", got.LogPos)
	}
	if len(got.Docs) != len(st.Docs) || len(got.Terms) != len(st.Terms) {
		t.Fatalf("v1 decode: %d docs / %d terms, want %d / %d",
			len(got.Docs), len(got.Terms), len(st.Docs), len(st.Terms))
	}
	// The full v1 boot path: the decoded state rebuilds a serving index.
	restored, err := ir.ImportState(got)
	if err != nil {
		t.Fatalf("import v1 state: %v", err)
	}
	if restored.DocCount() != ix.DocCount() {
		t.Fatalf("restored %d docs, want %d", restored.DocCount(), ix.DocCount())
	}
	// Unknown versions still fail closed in both directions.
	for _, v := range []uint32{0, Version + 1} {
		bad := append([]byte{}, buf.Bytes()...)
		binary.LittleEndian.PutUint32(bad[8:12], v)
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("version %d must fail closed", v)
		}
	}
}
