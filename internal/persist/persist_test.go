package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// snapCorpus builds the skewed-vocabulary index the ir tests use.
func snapCorpus(n int, seed int64) *ir.Index {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := rand.New(rand.NewSource(seed))
	ix := ir.NewIndex()
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for w := 0; w < 30; w++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(rare[rng.Intn(len(rare))])
			} else {
				sb.WriteString(common[rng.Intn(len(common))])
			}
			sb.WriteByte(' ')
		}
		ix.Add(bat.OID(i+1), fmt.Sprintf("d%d", i+1), sb.String())
	}
	return ix
}

func sameResults(t *testing.T, ctx string, got, want []ir.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestFileRoundTrip: SaveIndex → LoadIndex over a real file yields
// byte-identical rankings, exact and budgeted, with and without the
// posting-store memory budget.
func TestFileRoundTrip(t *testing.T) {
	for _, memBudget := range []int{0, 2048} {
		ix := snapCorpus(250, 41)
		ix.Fragmentize(4)
		if memBudget > 0 {
			ix.SetMemoryBudget(memBudget)
		}
		path := filepath.Join(t.TempDir(), SnapshotFile)
		if err := SaveIndex(path, ix); err != nil {
			t.Fatalf("mem=%d save: %v", memBudget, err)
		}
		got, err := LoadIndex(path)
		if err != nil {
			t.Fatalf("mem=%d load: %v", memBudget, err)
		}
		for _, q := range []string{"champion winner serve", "seles", "match court"} {
			sameResults(t, fmt.Sprintf("mem=%d exact %s", memBudget, q),
				got.TopN(q, 10), ix.TopN(q, 10))
			wantRes, wantEst := ix.TopNPlan(q, ir.EvalPlan{N: 10, Budget: 2})
			gotRes, gotEst := got.TopNPlan(q, ir.EvalPlan{N: 10, Budget: 2})
			sameResults(t, fmt.Sprintf("mem=%d budgeted %s", memBudget, q), gotRes, wantRes)
			if gotEst != wantEst {
				t.Fatalf("mem=%d %s: estimate %+v, want %+v", memBudget, q, gotEst, wantEst)
			}
		}
	}
}

// TestSaveFileAtomic: saving over an existing snapshot leaves no temp
// files behind and the target is replaced, never appended.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := SnapshotPath(dir)
	for i := 0; i < 3; i++ {
		ix := snapCorpus(50+i, int64(i))
		if err := SaveIndex(path, ix); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadIndex(path); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != SnapshotFile {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("data dir = %v, want exactly [%s]", names, SnapshotFile)
	}
}

// TestLoadMissingFile: a missing snapshot is fs.ErrNotExist (first
// boot), NOT corruption.
func TestLoadMissingFile(t *testing.T) {
	_, err := LoadFile(filepath.Join(t.TempDir(), SnapshotFile))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing file misreported as corruption")
	}
}

// TestCorruptionFailsClosed: every way a snapshot can rot — truncation
// at any point, a flipped bit anywhere, bad magic, an unknown version —
// fails the load with an error; no partial index ever comes back.
func TestCorruptionFailsClosed(t *testing.T) {
	ix := snapCorpus(80, 43)
	var buf bytes.Buffer
	if err := Save(&buf, ix.ExportState()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot failed to load: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 4, 19, 20, 51, len(good) / 2, len(good) - 1} {
			if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
				t.Fatalf("load of %d/%d bytes succeeded", cut, len(good))
			}
		}
	})
	t.Run("flipped bits", func(t *testing.T) {
		rng := rand.New(rand.NewSource(47))
		for i := 0; i < 50; i++ {
			bad := append([]byte(nil), good...)
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
			if st, err := Load(bytes.NewReader(bad)); err == nil {
				// A flip confined to the unread tail cannot happen: the
				// checksum covers the whole payload and the header is
				// fully validated, so success means a true collision.
				t.Fatalf("iteration %d: corrupted snapshot loaded: %+v", i, st != nil)
			}
		}
	})
	t.Run("checksum mismatch is ErrCorrupt", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0xff // payload byte: checksum must catch it
		_, err := Load(bytes.NewReader(bad))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 0xfe // version field
		_, err := Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatal("future-version snapshot loaded")
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatal("version mismatch misreported as corruption")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		// Extra bytes after the declared payload are ignored by Load
		// (framing is length-prefixed) — but a LENGTH that overclaims
		// fails the checksum. Verify the file-level behaviour: the
		// declared payload still loads.
		padded := append(append([]byte(nil), good...), 0xaa, 0xbb)
		if _, err := Load(bytes.NewReader(padded)); err != nil {
			t.Fatalf("length-prefixed load rejected trailing bytes: %v", err)
		}
	})
}

// TestLoadIndexCorruptState: a snapshot with a valid checksum but an
// inconsistent decoded state (import-level validation) also fails
// closed through LoadIndex.
func TestLoadIndexCorruptState(t *testing.T) {
	ix := snapCorpus(30, 5)
	st := ix.ExportState()
	st.Terms[0].Postings[0].Doc = 999999 // dangling doc reference
	path := filepath.Join(t.TempDir(), SnapshotFile)
	if err := SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
