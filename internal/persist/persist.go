// Package persist is the durability layer of the search engine: a
// versioned binary snapshot format for the full-text meta-index
// (ir.IndexState) so a node survives restarts without reindexing its
// fragment.
//
// Format (all integers little-endian / unsigned varint):
//
//	magic    [8]byte  "DLSNAP\x00\x01"
//	version  uint32   format version (currently 2; readers accept 1)
//	length   uint64   payload length in bytes
//	checksum [32]byte SHA-256 of the payload
//	payload  [length]byte
//
// The payload encodes the logical index state: documents, the
// vocabulary with delta+varint posting lists, the idf-descending
// fragment placement, the freeze epoch and the posting-store memory
// budget. Everything derived is rebuilt on load (ir.ImportState).
//
// Loads fail closed: a truncated file, a flipped bit, an unknown
// version or a payload that decodes to an inconsistent state all yield
// an error (ErrCorrupt for integrity violations) and never a partial
// index — a node must refuse to serve what it cannot prove intact.
//
// SaveFile writes atomically (temp file in the target directory,
// fsync, rename), so a crash mid-snapshot leaves the previous snapshot
// untouched rather than a torn file.
package persist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Version is the current snapshot format version. Version 2 added the
// op-log position (IndexState.LogPos) so a snapshot records exactly
// which log prefix it compacts.
const Version = 2

// magic identifies a dlsearch snapshot file. The trailing bytes leave
// room for a major-format bump that even pre-versioning readers reject.
var magic = [8]byte{'D', 'L', 'S', 'N', 'A', 'P', 0, 1}

// ErrCorrupt reports a snapshot that fails integrity verification:
// bad magic, truncation, checksum mismatch or an undecodable payload.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// SnapshotFile is the canonical snapshot name inside a node data dir.
const SnapshotFile = "index.snap"

// SnapshotPath returns the canonical snapshot path for a data dir.
func SnapshotPath(dataDir string) string {
	return filepath.Join(dataDir, SnapshotFile)
}

// Save writes the state as one snapshot to w.
func Save(w io.Writer, st *ir.IndexState) error {
	var payload bytes.Buffer
	enc := &encoder{w: bufio.NewWriter(&payload)}
	enc.state(st)
	if err := enc.flush(); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	var hdr [8 + 4 + 8 + sha256.Size]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(payload.Len()))
	copy(hdr[20:], sum[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("persist: write payload: %w", err)
	}
	return nil
}

// Load reads one snapshot from r, verifying the checksum before any
// decoding happens, and returns the decoded state.
func Load(r io.Reader) (*ir.IndexState, error) {
	var hdr [8 + 4 + 8 + sha256.Size]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(hdr[8:12])
	if v == 0 || v > Version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d (this build reads 1..%d)", v, Version)
	}
	plen := binary.LittleEndian.Uint64(hdr[12:20])
	// Read through a limit reader and compare lengths instead of
	// pre-allocating plen bytes: a corrupt length field must not turn
	// into an allocation bomb.
	payload, err := io.ReadAll(io.LimitReader(r, int64(plen)))
	if err != nil {
		return nil, fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrCorrupt, len(payload), plen)
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], hdr[20:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	dec := &decoder{buf: payload, ver: v}
	st := dec.state()
	if dec.err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, dec.err)
	}
	if len(dec.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(dec.buf))
	}
	return st, nil
}

// SaveFile writes the state to path atomically: the snapshot lands in
// a temp file in the same directory, is fsynced, and replaces path by
// rename, so readers (and crashes) only ever observe the previous
// complete snapshot or the new complete snapshot.
func SaveFile(path string, st *ir.IndexState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := Save(tmp, st); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("persist: sync: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: rename: %w", err)
	}
	// Durability of the rename itself: sync the directory, best-effort
	// (some filesystems reject directory fsync).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SizeOf returns the encoded size of a full snapshot of st in bytes —
// the transfer cost of a full-snapshot resync, which delta resyncs
// report their shipped bytes against.
func SizeOf(st *ir.IndexState) (int64, error) {
	var n countingWriter
	if err := Save(&n, st); err != nil {
		return 0, err
	}
	return int64(n), nil
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// LoadFile reads the snapshot at path. A missing file reports
// fs.ErrNotExist (first boot — distinguishable from corruption).
func LoadFile(path string) (*ir.IndexState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

// SaveIndex exports ix (freezing it) and writes the snapshot to path
// atomically. The caller must hold the index's write side.
func SaveIndex(path string, ix *ir.Index) error {
	return SaveFile(path, ix.ExportState())
}

// LoadIndex reads the snapshot at path and rebuilds the index.
func LoadIndex(path string) (*ir.Index, error) {
	st, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	ix, err := ir.ImportState(st)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ix, nil
}

// encoder serialises the payload. The first error sticks; every write
// after it is a no-op, so call sites stay linear.
type encoder struct {
	w   *bufio.Writer
	err error
	tmp [binary.MaxVarintLen64]byte
}

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(e.tmp[:binary.PutUvarint(e.tmp[:], v)])
}

func (e *encoder) f64(v float64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(v))
	_, e.err = e.w.Write(e.tmp[:8])
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

func (e *encoder) state(st *ir.IndexState) {
	e.f64(st.Lambda)
	e.uvarint(st.Epoch)
	e.uvarint(uint64(st.NextOID))
	mb := st.MemBudget
	if mb < 0 {
		mb = 0
	}
	e.uvarint(uint64(mb))
	e.uvarint(uint64(st.FragK))
	e.uvarint(st.LogPos)
	e.uvarint(uint64(len(st.Docs)))
	for _, d := range st.Docs {
		e.uvarint(uint64(d.OID))
		e.uvarint(uint64(d.Len))
		e.str(d.URL)
	}
	e.uvarint(uint64(len(st.Terms)))
	for _, t := range st.Terms {
		e.uvarint(uint64(t.OID))
		e.str(t.Stem)
		e.uvarint(uint64(len(t.Postings)))
		prev := uint64(0)
		for _, p := range t.Postings {
			// Postings are doc-ascending (the frozen access-path
			// order), so gaps delta-encode compactly, mirroring the
			// in-memory CompressedPostings layout.
			e.uvarint(uint64(p.Doc) - prev)
			prev = uint64(p.Doc)
			e.uvarint(uint64(p.TF))
		}
	}
	if st.HasFrags {
		e.uvarint(1)
		e.uvarint(uint64(len(st.Fragments)))
		for _, f := range st.Fragments {
			e.f64(f.MaxIDF)
			e.f64(f.MinIDF)
			e.uvarint(uint64(f.Tuples))
			e.uvarint(uint64(len(f.Terms)))
			for _, id := range f.Terms {
				e.uvarint(uint64(id))
			}
		}
	} else {
		e.uvarint(0)
	}
}

// decoder deserialises the payload, mirroring encoder. The checksum
// has already been verified, so decode errors indicate a format bug or
// a malicious payload, not bit rot — they still fail closed.
type decoder struct {
	buf []byte
	err error
	// ver is the snapshot format version being decoded (fields added
	// in later versions are absent below it). Zero means "current" —
	// non-snapshot users of the decoder (op-log payloads) never
	// versioned their framing.
	ver uint32
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = errors.New(msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("short varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("short float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.fail("short string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// count reads a collection length and sanity-bounds it against the
// remaining payload (at least min bytes per element must follow), so
// slice pre-allocation is always covered by real bytes.
func (d *decoder) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min > 0 && n > uint64(len(d.buf)/min) {
		d.fail("count exceeds payload")
		return 0
	}
	return int(n)
}

func (d *decoder) state() *ir.IndexState {
	st := &ir.IndexState{
		Lambda:    d.f64(),
		Epoch:     d.uvarint(),
		NextOID:   bat.OID(d.uvarint()),
		MemBudget: int(d.uvarint()),
		FragK:     int(d.uvarint()),
	}
	if d.ver != 1 {
		// Version 2 added the op-log position. A v1 snapshot predates
		// the op log entirely, so "position 0 = no log prefix covered"
		// is exactly its meaning — the next save writes version 2.
		st.LogPos = d.uvarint()
	}
	st.Docs = make([]ir.DocState, d.count(3))
	for i := range st.Docs {
		st.Docs[i] = ir.DocState{
			OID: bat.OID(d.uvarint()),
			Len: int32(d.uvarint()),
			URL: d.str(),
		}
	}
	st.Terms = make([]ir.TermState, d.count(4))
	for i := range st.Terms {
		t := ir.TermState{OID: bat.OID(d.uvarint()), Stem: d.str()}
		t.Postings = make([]ir.Posting, d.count(2))
		doc := uint64(0)
		for j := range t.Postings {
			doc += d.uvarint()
			t.Postings[j] = ir.Posting{Doc: bat.OID(doc), TF: int(d.uvarint())}
		}
		st.Terms[i] = t
	}
	if d.uvarint() == 1 {
		st.HasFrags = true
		st.Fragments = make([]ir.FragmentState, d.count(18))
		for i := range st.Fragments {
			f := ir.FragmentState{
				MaxIDF: d.f64(),
				MinIDF: d.f64(),
				Tuples: int(d.uvarint()),
			}
			f.Terms = make([]bat.OID, d.count(1))
			for j := range f.Terms {
				f.Terms[j] = bat.OID(d.uvarint())
			}
			st.Fragments[i] = f
		}
	}
	return st
}
