// The op log is the crash-safety half of the durability layer: an
// append-only file of checksummed ingest records that is written —
// and fsynced — BEFORE a document is applied to the in-memory index.
// Recovery on boot is the last snapshot plus a replay of the log
// suffix past the snapshot's recorded position; because ingest is
// idempotent per document oid at the node boundary, replaying an
// over-long suffix is safe by construction.
//
// The log is also the replication delta stream: a lagging replica
// resyncs by shipping only the records past its own position
// (Cluster.ResyncReplica), instead of the whole fragment.
//
// File format (all integers little-endian / unsigned varint):
//
//	magic    [8]byte  "DLOPLG\x00\x01"
//	version  uint32   format version (currently 1)
//	base     uint64   position of the file's first record
//	record*:
//	  length   uvarint  payload length in bytes
//	  checksum [32]byte SHA-256 of the payload
//	  payload  [length]byte  — one Op: doc uvarint, url str, text str
//
// A record's POSITION is base plus its index in the file: position p
// means "p operations precede this one in this node's history".
// Compaction (a snapshot at position p) rewrites the file atomically
// with base = p, dropping the records a snapshot now covers.
//
// Failure semantics mirror the snapshot format's, with one deliberate
// asymmetry: a record cut short by the end of the file — the torn
// tail a kill -9 mid-append leaves — is truncated away on open
// (fail-safe: the operation never acknowledged, so dropping it is
// correct), while a record whose bytes are all present but whose
// checksum disagrees is interior corruption and fails closed with
// ErrCorrupt, exactly like a corrupt snapshot. A length field that
// exceeds MaxOpBytes also fails closed: it cannot be a torn tail of a
// record this log could have written.
package persist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/obs"
)

// OpLogVersion is the current op-log format version.
const OpLogVersion = 1

// OpLogFile is the canonical op-log name inside a node data dir.
const OpLogFile = "ops.log"

// MaxOpBytes bounds one record's payload. A length above it cannot
// have been written by this code, so it is corruption, not a torn
// tail — failing closed beats silently truncating every record that
// happens to follow a flipped length bit.
const MaxOpBytes = 1 << 30

// oplogMagic identifies a dlsearch op-log file.
var oplogMagic = [8]byte{'D', 'L', 'O', 'P', 'L', 'G', 0, 1}

// ErrLogGap reports a read below the log's base position: the
// requested suffix was compacted away and only a full snapshot can
// cover it.
var ErrLogGap = errors.New("persist: position compacted out of the op log")

// OpLogPath returns the canonical op-log path for a data dir.
func OpLogPath(dir string) string { return filepath.Join(dir, OpLogFile) }

// Op is one logged ingest operation: index one document. Replay is
// idempotent per document oid (the node boundary treats oids as
// write-once), which is what makes over-replay after a crash or a
// duplicated delta safe.
type Op struct {
	Doc  bat.OID
	URL  string
	Text string
}

// OpLog is a crash-safe append-only operation log. All methods are
// safe for concurrent use; Append is atomic with respect to readers
// of the same OpLog (OpsSince never observes a half-written record).
type OpLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	base uint64 // position of the file's first record
	pos  uint64 // position after the last record (base + record count)
	size int64  // byte offset just past the last acknowledged record
	// truncated reports how many torn-tail bytes the last Open dropped.
	truncated int64
	// failed, once set, poisons the log: a failed append left bytes in
	// the file that could not be truncated away, so further appends
	// would land after garbage and turn it into interior corruption.
	failed error
	// appendH and fsyncH, when set, observe append (whole call) and
	// fsync durations in seconds. Observing is nil-safe, so the hot
	// path records unconditionally.
	appendH *obs.Histogram
	fsyncH  *obs.Histogram
}

// Instrument attaches duration histograms to the log: appendH observes
// every durable Append end to end, fsyncH just the fsync inside it.
// Attach at boot, before the log is shared; either may be nil.
func (l *OpLog) Instrument(appendH, fsyncH *obs.Histogram) {
	l.mu.Lock()
	l.appendH = appendH
	l.fsyncH = fsyncH
	l.mu.Unlock()
}

// OpenOpLog opens (or creates) the op log in dir, verifying every
// record: a torn tail is truncated away (the write never acknowledged)
// and the log opens at the last intact record, while interior
// corruption — a checksum mismatch on a fully present record, or an
// impossible length — fails closed with ErrCorrupt.
func OpenOpLog(dir string) (*OpLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: oplog dir: %w", err)
	}
	path := OpLogPath(dir)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open oplog: %w", err)
	}
	l := &OpLog{f: f, path: path}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover scans the freshly opened file, establishing base/pos and
// truncating a torn tail. The caller holds no lock yet (construction).
func (l *OpLog) recover() error {
	fi, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("persist: oplog stat: %w", err)
	}
	if fi.Size() == 0 {
		// Fresh log: write the header for base 0.
		return l.writeHeader(0)
	}
	r := bufio.NewReader(io.NewSectionReader(l.f, 0, fi.Size()))
	var hdr [8 + 4 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: oplog header truncated: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], oplogMagic[:]) {
		return fmt.Errorf("%w: bad oplog magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != OpLogVersion {
		return fmt.Errorf("persist: unsupported oplog version %d (this build reads %d)", v, OpLogVersion)
	}
	l.base = binary.LittleEndian.Uint64(hdr[12:20])
	l.pos = l.base
	good := int64(len(hdr)) // offset past the last intact record
	for {
		_, n, err := readRecord(r)
		if err == nil {
			good += n
			l.pos++
			continue
		}
		if errors.Is(err, io.EOF) && n == 0 {
			break // clean end of log
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn tail: the record ran out of file. The operation it
			// framed was never acknowledged — drop it.
			l.truncated = fi.Size() - good
			if err := l.f.Truncate(good); err != nil {
				return fmt.Errorf("persist: truncate torn oplog tail: %w", err)
			}
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("persist: sync truncated oplog: %w", err)
			}
			break
		}
		return err // interior corruption: fail closed
	}
	l.size = good
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("persist: oplog seek: %w", err)
	}
	return nil
}

// writeHeader initialises an empty log file at the given base.
func (l *OpLog) writeHeader(base uint64) error {
	var hdr [8 + 4 + 8]byte
	copy(hdr[:8], oplogMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], OpLogVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], base)
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: oplog truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: oplog seek: %w", err)
	}
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: oplog header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: oplog sync: %w", err)
	}
	l.base = base
	l.pos = base
	l.size = int64(len(hdr))
	return nil
}

// Base returns the position of the first record still in the log:
// deltas from positions below it were compacted into a snapshot.
func (l *OpLog) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Pos returns the position after the last appended record — the
// node's log position, recorded in snapshots and compared by the
// delta-resync path.
func (l *OpLog) Pos() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pos
}

// TruncatedBytes reports how many torn-tail bytes the open dropped
// (0 when the log was intact) — surfaced so boot logs can say a crash
// was recovered from rather than silently absorbing it.
func (l *OpLog) TruncatedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Path returns the log file's path.
func (l *OpLog) Path() string { return l.path }

// Append durably appends ops as one write followed by one fsync and
// advances the position by len(ops). It returns only after the
// records are on stable storage — the write-ahead contract: callers
// apply to the in-memory index strictly after Append returns nil. On
// error nothing is acknowledged, and any bytes the failed write left
// behind are truncated away immediately: the process keeps running, so
// leaving them for the next Open's torn-tail recovery would let the
// NEXT successful append land after the garbage and turn it into
// interior corruption. If that truncation itself fails the log is
// poisoned — every later Append refuses rather than gamble.
func (l *OpLog) Append(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for i := range ops {
		appendRecord(&buf, &ops[i])
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return fmt.Errorf("persist: oplog failed, refusing append: %w", l.failed)
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		l.rollback(err)
		return fmt.Errorf("persist: oplog append: %w", err)
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages: what is on disk past the last acknowledged record is
		// unknowable, so those bytes are unacknowledged garbage either
		// way — truncate them like a failed write.
		l.rollback(err)
		return fmt.Errorf("persist: oplog sync: %w", err)
	}
	l.fsyncH.ObserveSince(syncStart)
	l.pos += uint64(len(ops))
	l.size += int64(buf.Len())
	l.appendH.ObserveSince(start)
	return nil
}

// rollback restores the file to end exactly at the last acknowledged
// record after a failed append (caller holds l.mu). A rollback that
// cannot complete poisons the log instead of leaving interior garbage
// for future appends to bury.
func (l *OpLog) rollback(cause error) {
	if err := l.f.Truncate(l.size); err != nil {
		l.failed = fmt.Errorf("append failed (%v), truncate to last good offset %d also failed: %w", cause, l.size, err)
		return
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.failed = fmt.Errorf("append failed (%v), seek to last good offset %d also failed: %w", cause, l.size, err)
		return
	}
	// Best-effort: persist the truncation. If this sync fails the torn
	// bytes are gone from the file's logical size anyway, which is what
	// protects later appends.
	l.f.Sync()
}

// OpsSince returns every op from position from (inclusive) to the
// current position — the delta a replica at position from is missing.
// A from below the log's base reports ErrLogGap (the suffix was
// compacted away; only a full snapshot covers it); a from at or past
// the current position returns an empty delta.
func (l *OpLog) OpsSince(from uint64) ([]Op, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		return nil, fmt.Errorf("%w: want %d, log starts at %d", ErrLogGap, from, l.base)
	}
	if from >= l.pos {
		return nil, nil
	}
	fi, err := l.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: oplog stat: %w", err)
	}
	r := bufio.NewReader(io.NewSectionReader(l.f, 8+4+8, fi.Size()-(8+4+8)))
	skip := from - l.base
	out := make([]Op, 0, l.pos-from)
	for p := l.base; p < l.pos; p++ {
		op, _, err := readRecord(r)
		if err != nil {
			return nil, fmt.Errorf("persist: oplog read at position %d: %w", p, err)
		}
		if p-l.base < skip {
			continue
		}
		out = append(out, op)
	}
	return out, nil
}

// Replay streams every op from position from to fn in order, stopping
// at fn's first error. It is OpsSince without materialising the
// slice — boot-time recovery uses it to fold a large suffix into the
// index without holding two copies.
func (l *OpLog) Replay(from uint64, fn func(Op) error) error {
	ops, err := l.OpsSince(from)
	if err != nil {
		return err
	}
	for i := range ops {
		if err := fn(ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Compact drops every record below keepFrom — typically the position
// a just-written snapshot recorded, which now covers them. The log is
// rewritten atomically (temp file, fsync, rename), so a crash
// mid-compaction leaves the previous log intact. Records at or past
// keepFrom (appended after the snapshot's cut) are preserved,
// streamed to the replacement file one record at a time — compaction
// memory is one record, not the surviving suffix, so a node with a
// large post-snapshot backlog compacts without a proportional
// allocation spike. A keepFrom past the current position is clamped;
// one below base is a no-op (already compacted).
func (l *OpLog) Compact(keepFrom uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if keepFrom > l.pos {
		keepFrom = l.pos
	}
	if keepFrom <= l.base {
		return nil
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".oplog-*")
	if err != nil {
		return fmt.Errorf("persist: oplog compact: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	var hdr [8 + 4 + 8]byte
	copy(hdr[:8], oplogMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], OpLogVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], keepFrom)
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: oplog compact write: %w", err)
	}
	size := int64(len(hdr))
	if keepFrom < l.pos {
		fi, err := l.f.Stat()
		if err != nil {
			return fmt.Errorf("persist: oplog stat: %w", err)
		}
		r := bufio.NewReader(io.NewSectionReader(l.f, 8+4+8, fi.Size()-(8+4+8)))
		var rec bytes.Buffer
		for p := l.base; p < l.pos; p++ {
			op, _, err := readRecord(r)
			if err != nil {
				return fmt.Errorf("persist: oplog read at position %d: %w", p, err)
			}
			if p < keepFrom {
				continue // dropped: verified and discarded, never buffered
			}
			rec.Reset()
			appendRecord(&rec, &op)
			if _, err := w.Write(rec.Bytes()); err != nil {
				return fmt.Errorf("persist: oplog compact write: %w", err)
			}
			size += int64(rec.Len())
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("persist: oplog compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("persist: oplog compact sync: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: oplog compact close: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, l.path); err != nil {
		os.Remove(name)
		return fmt.Errorf("persist: oplog compact rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Swap the open handle to the new file.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("persist: oplog reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("persist: oplog seek: %w", err)
	}
	l.f.Close()
	l.f = f
	l.base = keepFrom
	l.size = size
	return nil
}

// Reset replaces the log with an empty one starting at base — the
// position of the full snapshot that just replaced this node's whole
// state (RestoreState): every logged record is subsumed by it.
func (l *OpLog) Reset(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeHeader(base)
}

// Close closes the log file. Appends after Close fail.
func (l *OpLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// appendRecord encodes one framed record into buf.
func appendRecord(buf *bytes.Buffer, op *Op) {
	var payload bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { payload.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	str := func(s string) { put(uint64(len(s))); payload.WriteString(s) }
	put(uint64(op.Doc))
	str(op.URL)
	str(op.Text)
	sum := sha256.Sum256(payload.Bytes())
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(payload.Len()))])
	buf.Write(sum[:])
	buf.Write(payload.Bytes())
}

// recordSize returns the framed size of one op — how many log bytes a
// delta of these ops ships.
func recordSize(op *Op) int64 {
	payload := binary.PutUvarint(make([]byte, binary.MaxVarintLen64), uint64(op.Doc)) +
		uvarintLen(uint64(len(op.URL))) + len(op.URL) +
		uvarintLen(uint64(len(op.Text))) + len(op.Text)
	return int64(uvarintLen(uint64(payload)) + sha256.Size + payload)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// OpsSize returns the framed size of a delta in bytes — the transfer
// cost a delta resync reports against a full snapshot's size.
func OpsSize(ops []Op) int64 {
	var n int64
	for i := range ops {
		n += recordSize(&ops[i])
	}
	return n
}

// readRecord decodes one framed record from r, returning the op and
// how many bytes the record occupied. io.EOF with n == 0 is a clean
// end; io.EOF / io.ErrUnexpectedEOF with n > 0 marks a torn record
// (callers decide whether to truncate); any other error wraps
// ErrCorrupt.
func readRecord(r *bufio.Reader) (Op, int64, error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Not a single byte of this record exists: clean end of log.
			return Op{}, 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// ReadUvarint reports io.ErrUnexpectedEOF once the file ends
			// after ≥1 byte of the varint — a write torn mid-length (any
			// payload ≥128 bytes has a multi-byte length varint). That is
			// a torn tail, not corruption: the record was never
			// acknowledged.
			return Op{}, 1, io.ErrUnexpectedEOF
		}
		return Op{}, 0, fmt.Errorf("%w: oplog record length: %v", ErrCorrupt, err)
	}
	if length > MaxOpBytes {
		return Op{}, 1, fmt.Errorf("%w: oplog record length %d exceeds limit", ErrCorrupt, length)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return Op{}, 1, fmt.Errorf("torn oplog checksum: %w", io.ErrUnexpectedEOF)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Op{}, 1, fmt.Errorf("torn oplog payload: %w", io.ErrUnexpectedEOF)
	}
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum[:]) {
		return Op{}, 1, fmt.Errorf("%w: oplog record checksum mismatch", ErrCorrupt)
	}
	op, err := decodeOpPayload(payload)
	if err != nil {
		return Op{}, 1, err
	}
	n := int64(uvarintLen(length)) + sha256.Size + int64(length)
	return op, n, nil
}

// decodeOpPayload decodes one op payload (checksum already verified).
func decodeOpPayload(payload []byte) (Op, error) {
	d := &decoder{buf: payload}
	op := Op{Doc: bat.OID(d.uvarint()), URL: d.str(), Text: d.str()}
	if d.err != nil {
		return Op{}, fmt.Errorf("%w: oplog op decode: %v", ErrCorrupt, d.err)
	}
	if len(d.buf) != 0 {
		return Op{}, fmt.Errorf("%w: oplog op: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return op, nil
}

// The delta wire format ships a log suffix between nodes
// (GET/POST /node/oplog): a header naming the starting position and
// record count, then the records in the log's own framing — the
// per-record checksums travel with the data, so a corrupted transfer
// fails closed on the receiving side.
//
//	magic    [8]byte  "DLOPLG\x00\x01"
//	version  uint32
//	from     uint64   position of the first shipped record
//	count    uint64   records that follow
//	record*  (log record framing)

// EncodeOps writes a delta stream to w.
func EncodeOps(w io.Writer, from uint64, ops []Op) error {
	var hdr [8 + 4 + 8 + 8]byte
	copy(hdr[:8], oplogMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], OpLogVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], from)
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(len(ops)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: delta header: %w", err)
	}
	var buf bytes.Buffer
	for i := range ops {
		buf.Reset()
		appendRecord(&buf, &ops[i])
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("persist: delta record: %w", err)
		}
	}
	return nil
}

// DecodeOps reads a delta stream from r, failing closed on any
// truncation or corruption — a delta is a transfer, not a local log,
// so a torn tail here means the transfer broke and nothing of it is
// trustworthy as "applied".
func DecodeOps(r io.Reader) (from uint64, ops []Op, err error) {
	br := bufio.NewReader(r)
	var hdr [8 + 4 + 8 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: delta header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], oplogMagic[:]) {
		return 0, nil, fmt.Errorf("%w: bad delta magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != OpLogVersion {
		return 0, nil, fmt.Errorf("persist: unsupported delta version %d (this build reads %d)", v, OpLogVersion)
	}
	from = binary.LittleEndian.Uint64(hdr[12:20])
	count := binary.LittleEndian.Uint64(hdr[20:28])
	if count > 1<<32 {
		return 0, nil, fmt.Errorf("%w: absurd delta record count %d", ErrCorrupt, count)
	}
	ops = make([]Op, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		op, _, err := readRecord(br)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: delta record %d: %v", ErrCorrupt, i, err)
		}
		ops = append(ops, op)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, nil, fmt.Errorf("%w: trailing bytes after delta", ErrCorrupt)
	}
	return from, ops, nil
}
