package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"dlsearch/internal/bat"
)

func logOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{
			Doc:  bat.OID(i + 1),
			URL:  fmt.Sprintf("d%d", i+1),
			Text: fmt.Sprintf("champion trophy melbourne doc %d", i+1),
		}
	}
	return ops
}

func sameOps(t *testing.T, ctx string, got, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ops, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: op %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestOpLogRoundTrip: append across two handles, read back every
// suffix; position and base survive reopen.
func TestOpLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ops := logOps(20)
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ops[:12]...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenOpLog(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	if l.Pos() != 12 || l.Base() != 0 {
		t.Fatalf("reopen: pos=%d base=%d, want 12/0", l.Pos(), l.Base())
	}
	if err := l.Append(ops[12:]...); err != nil {
		t.Fatal(err)
	}
	for _, from := range []uint64{0, 7, 19, 20} {
		got, err := l.OpsSince(from)
		if err != nil {
			t.Fatalf("OpsSince(%d): %v", from, err)
		}
		sameOps(t, fmt.Sprintf("OpsSince(%d)", from), got, ops[from:])
	}
	if _, err := l.OpsSince(21); err != nil {
		t.Fatalf("OpsSince past end: %v", err)
	}
	var replayed []Op
	if err := l.Replay(5, func(op Op) error {
		replayed = append(replayed, op)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sameOps(t, "Replay(5)", replayed, ops[5:])
}

// TestOpLogTornTailTruncated: a crash mid-append leaves a partial
// record at the tail. Reopen at EVERY possible truncation point must
// succeed, recover exactly the fully-written prefix, and stay
// appendable — a torn write was never acknowledged, so dropping it is
// the fail-safe direction.
func TestOpLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ops := logOps(6)
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ops...); err != nil {
		t.Fatal(err)
	}
	path := l.Path()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := int64(20) // magic + version + base
	// Record byte offsets: replaying prefix lengths tells us how many
	// whole records each truncation point preserves.
	var bounds []int64
	off := hdr
	for i := range ops {
		off += recordSize(&ops[i])
		bounds = append(bounds, off)
	}
	if bounds[len(bounds)-1] != int64(len(whole)) {
		t.Fatalf("size accounting: records end at %d, file is %d", bounds[len(bounds)-1], len(whole))
	}
	for cut := hdr + 1; cut < int64(len(whole)); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenOpLog(dir)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		if int(l.Pos()) != want {
			t.Fatalf("cut=%d: pos=%d, want %d whole records", cut, l.Pos(), want)
		}
		torn := cut - (hdr + OpsSize(ops[:want]))
		if l.TruncatedBytes() != torn {
			t.Fatalf("cut=%d: truncated %d bytes, want %d", cut, l.TruncatedBytes(), torn)
		}
		// The log must stay appendable after recovery.
		if err := l.Append(Op{Doc: 99, URL: "x", Text: "after crash"}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		got, err := l.OpsSince(0)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		sameOps(t, fmt.Sprintf("cut=%d", cut), got, append(append([]Op{}, ops[:want]...), Op{Doc: 99, URL: "x", Text: "after crash"}))
		l.Close()
	}
}

// TestOpLogTornLengthVarint: a payload of 128 bytes or more has a
// multi-byte length varint, and a kill -9 can tear the write INSIDE
// that varint (binary.ReadUvarint then reports io.ErrUnexpectedEOF,
// not io.EOF). Every cut point — including mid-varint — must recover
// as a truncated torn tail, never fail closed: the record was not
// acknowledged, and refusing to boot over it would be exactly the
// crash the log exists to survive.
func TestOpLogTornLengthVarint(t *testing.T) {
	dir := t.TempDir()
	big := Op{Doc: 1, URL: "big", Text: strings.Repeat("melbourne champion trophy ", 10)}
	if len(big.Text) < 128 {
		t.Fatalf("test payload must force a multi-byte length varint, got %d bytes", len(big.Text))
	}
	small := Op{Doc: 2, URL: "d2", Text: "tail"}
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(big, small); err != nil {
		t.Fatal(err)
	}
	path := l.Path()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := int64(20) // magic + version + base
	bounds := []int64{hdr + recordSize(&big), hdr + recordSize(&big) + recordSize(&small)}
	for cut := hdr; cut < int64(len(whole)); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenOpLog(dir)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		if int(l.Pos()) != want {
			t.Fatalf("cut=%d: pos=%d, want %d whole records", cut, l.Pos(), want)
		}
		if err := l.Append(Op{Doc: 9, URL: "x", Text: "post crash"}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
	}
}

// TestOpLogAppendRollback: a failed append (transient ENOSPC, say) may
// leave partial bytes in the file while the process keeps running. They
// must be truncated away immediately — otherwise the next successful
// append lands after them and the torn record becomes interior
// corruption that fails the next boot closed, taking acknowledged
// writes with it.
func TestOpLogAppendRollback(t *testing.T) {
	dir := t.TempDir()
	ops := logOps(4)
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ops[:2]...); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write Append's error path sees: partial garbage
	// reached the file, then the write errored before acknowledging.
	l.mu.Lock()
	if _, err := l.f.Write([]byte{0x85, 0xee, 0x07}); err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.rollback(errors.New("injected write failure"))
	l.mu.Unlock()
	// The log stays usable and the next append lands cleanly after the
	// last acknowledged record.
	if err := l.Append(ops[2:]...); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	got, err := l.OpsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	sameOps(t, "after rollback", got, ops)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The file on disk is fully intact: reopen finds every record and
	// nothing to truncate.
	l2, err := OpenOpLog(dir)
	if err != nil {
		t.Fatalf("reopen after rollback: %v", err)
	}
	defer l2.Close()
	if l2.Pos() != 4 || l2.TruncatedBytes() != 0 {
		t.Fatalf("reopen: pos=%d truncated=%d, want 4/0", l2.Pos(), l2.TruncatedBytes())
	}
}

// TestOpLogAppendPoisonedAfterFailedRollback: when the rollback itself
// fails, torn bytes may still sit in the file — further appends must
// refuse rather than bury them under acknowledged records.
func TestOpLogAppendPoisonedAfterFailedRollback(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(logOps(2)...); err != nil {
		t.Fatal(err)
	}
	// Closing the handle makes the write AND the rollback's truncate
	// fail, which must poison the log.
	l.f.Close()
	if err := l.Append(Op{Doc: 9, URL: "x", Text: "y"}); err == nil {
		t.Fatal("append on closed file: want error")
	}
	err = l.Append(Op{Doc: 10, URL: "x", Text: "y"})
	if err == nil || !strings.Contains(err.Error(), "refusing append") {
		t.Fatalf("append on poisoned log = %v, want refusal", err)
	}
}

// TestOpLogInteriorCorruptionFailsClosed: a bit flip in a fully
// present record is not a torn tail — it means acknowledged history
// is damaged, and the log must refuse to open rather than silently
// replay wrong state.
func TestOpLogInteriorCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(logOps(8)...); err != nil {
		t.Fatal(err)
	}
	path := l.Path()
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file (inside record data,
	// well before the tail).
	mid := len(whole) / 2
	corrupt := append([]byte{}, whole...)
	corrupt[mid] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOpLog(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with interior bit flip: %v, want ErrCorrupt", err)
	}
	// Bad magic fails closed too.
	corrupt = append([]byte{}, whole...)
	corrupt[0] = 'X'
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOpLog(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with bad magic: %v, want ErrCorrupt", err)
	}
}

// TestOpLogCompact: compaction drops the prefix, keeps the suffix,
// and survives reopen; reads below the new base report ErrLogGap so
// callers fall back to a full snapshot instead of assuming an empty
// delta.
func TestOpLogCompact(t *testing.T) {
	dir := t.TempDir()
	ops := logOps(30)
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(ops...); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(20); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 20 || l.Pos() != 30 {
		t.Fatalf("after compact: base=%d pos=%d, want 20/30", l.Base(), l.Pos())
	}
	if _, err := l.OpsSince(19); !errors.Is(err, ErrLogGap) {
		t.Fatalf("OpsSince below base: %v, want ErrLogGap", err)
	}
	got, err := l.OpsSince(20)
	if err != nil {
		t.Fatal(err)
	}
	sameOps(t, "post-compact suffix", got, ops[20:])
	// The log stays appendable and the compaction survives reopen.
	if err := l.Append(Op{Doc: 31, URL: "d31", Text: "late"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != 20 || l2.Pos() != 31 {
		t.Fatalf("reopen after compact: base=%d pos=%d, want 20/31", l2.Base(), l2.Pos())
	}
	// Compacting everything empties the log at the current position.
	if err := l2.Compact(31); err != nil {
		t.Fatal(err)
	}
	if got, err := l2.OpsSince(31); err != nil || len(got) != 0 {
		t.Fatalf("empty suffix: %v ops, err %v", got, err)
	}
	// Compact beyond pos clamps rather than inventing history.
	if err := l2.Compact(99); err != nil {
		t.Fatal(err)
	}
	if l2.Base() != 31 || l2.Pos() != 31 {
		t.Fatalf("over-compact: base=%d pos=%d, want 31/31", l2.Base(), l2.Pos())
	}
}

// TestOpLogReset: Reset discards all records and rebases — the
// snapshot-restore path where the pulled state subsumes the log.
func TestOpLogReset(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(logOps(5)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(42); err != nil {
		t.Fatal(err)
	}
	if l.Base() != 42 || l.Pos() != 42 {
		t.Fatalf("after reset: base=%d pos=%d, want 42/42", l.Base(), l.Pos())
	}
	if _, err := l.OpsSince(0); !errors.Is(err, ErrLogGap) {
		t.Fatalf("OpsSince(0) after reset: %v, want ErrLogGap", err)
	}
	if err := l.Append(Op{Doc: 43, URL: "d43", Text: "post reset"}); err != nil {
		t.Fatal(err)
	}
	if l.Pos() != 43 {
		t.Fatalf("pos after post-reset append: %d, want 43", l.Pos())
	}
}

// TestOpsWireRoundTrip: the /node/oplog delta framing round-trips and
// fails closed on every truncation — a cut transfer must never apply
// a partial delta.
func TestOpsWireRoundTrip(t *testing.T) {
	ops := logOps(9)
	var buf bytes.Buffer
	if err := EncodeOps(&buf, 17, ops); err != nil {
		t.Fatal(err)
	}
	from, got, err := DecodeOps(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if from != 17 {
		t.Fatalf("from=%d, want 17", from)
	}
	sameOps(t, "wire", got, ops)
	// Empty delta is legal (replica already caught up).
	var empty bytes.Buffer
	if err := EncodeOps(&empty, 5, nil); err != nil {
		t.Fatal(err)
	}
	if from, got, err := DecodeOps(bytes.NewReader(empty.Bytes())); err != nil || from != 5 || len(got) != 0 {
		t.Fatalf("empty delta: from=%d ops=%d err=%v", from, len(got), err)
	}
	// Any truncation fails closed.
	wire := buf.Bytes()
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := DecodeOps(bytes.NewReader(wire[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: %v, want ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage fails closed too.
	if _, _, err := DecodeOps(bytes.NewReader(append(append([]byte{}, wire...), 0xee))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
	// A flipped bit inside a record fails the checksum.
	flip := append([]byte{}, wire...)
	flip[len(flip)/2] ^= 0x01
	if _, _, err := DecodeOps(bytes.NewReader(flip)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v, want ErrCorrupt", err)
	}
}

// TestSnapshotCarriesLogPos: the v2 snapshot format persists the
// op-log position so boot knows where replay starts.
func TestSnapshotCarriesLogPos(t *testing.T) {
	ix := snapCorpus(50, 7)
	st := ix.ExportState()
	st.LogPos = 1234
	var buf bytes.Buffer
	if err := Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LogPos != 1234 {
		t.Fatalf("LogPos=%d, want 1234", got.LogPos)
	}
	if n, err := SizeOf(st); err != nil || n != int64(buf.Len()) {
		t.Fatalf("SizeOf=%d err=%v, want %d", n, err, buf.Len())
	}
}

// TestOpLogCompactLargeSuffix: compaction streams the kept records to
// the replacement file (memory stays one record deep, not the whole
// suffix) — this exercises that path at a size where buffering bugs
// and size-accounting drift would show: the compacted log must carry
// the exact suffix, keep appending at the right offsets, and reopen
// cleanly.
func TestOpLogCompactLargeSuffix(t *testing.T) {
	dir := t.TempDir()
	const total, keepFrom = 5000, 1500
	ops := make([]Op, total)
	filler := strings.Repeat("lorem ipsum fragment evaluation ", 8)
	for i := range ops {
		ops[i] = Op{Doc: bat.OID(i + 1), URL: fmt.Sprintf("u%d", i), Text: filler}
	}
	l, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(ops...); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(keepFrom); err != nil {
		t.Fatal(err)
	}
	got, err := l.OpsSince(keepFrom)
	if err != nil {
		t.Fatal(err)
	}
	sameOps(t, "large compacted suffix", got, ops[keepFrom:])
	// Appends continue against the streamed file's true size.
	if err := l.Append(Op{Doc: total + 1, URL: "late", Text: "late"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != keepFrom || l2.Pos() != total+1 {
		t.Fatalf("reopen: base=%d pos=%d, want %d/%d", l2.Base(), l2.Pos(), keepFrom, total+1)
	}
	got, err = l2.OpsSince(keepFrom)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total-keepFrom+1 || got[len(got)-1].Doc != total+1 {
		t.Fatalf("reopened suffix: %d ops, last doc %d", len(got), got[len(got)-1].Doc)
	}
}
