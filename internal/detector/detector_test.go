package detector

import (
	"errors"
	"strings"
	"testing"
)

func TestVersionCompare(t *testing.T) {
	base := Version{1, 2, 3}
	cases := []struct {
		next Version
		want ChangeLevel
	}{
		{Version{1, 2, 3}, ChangeNone},
		{Version{1, 2, 4}, ChangeRevision},
		{Version{1, 3, 0}, ChangeMinor},
		{Version{2, 0, 0}, ChangeMajor},
		{Version{0, 9, 9}, ChangeMajor},
	}
	for _, c := range cases {
		if got := Compare(base, c.next); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", base, c.next, got, c.want)
		}
	}
}

func TestVersionOrderingAndString(t *testing.T) {
	if !(Version{1, 0, 0}).Less(Version{1, 0, 1}) {
		t.Error("revision ordering broken")
	}
	if !(Version{1, 9, 9}).Less(Version{2, 0, 0}) {
		t.Error("major ordering broken")
	}
	if (Version{2, 0, 0}).Less(Version{1, 9, 9}) {
		t.Error("ordering not antisymmetric")
	}
	if got := (Version{1, 2, 3}).String(); got != "1.2.3" {
		t.Errorf("String = %q", got)
	}
	for lvl, want := range map[ChangeLevel]string{
		ChangeNone: "none", ChangeRevision: "revision",
		ChangeMinor: "minor", ChangeMajor: "major",
	} {
		if lvl.String() != want {
			t.Errorf("ChangeLevel(%d).String() = %q", lvl, lvl.String())
		}
	}
}

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("header", func(ctx *Context) ([]Token, error) {
		return []Token{{Symbol: "primary", Value: "video"}}, nil
	})
	im, ok := r.Lookup("header")
	if !ok {
		t.Fatal("header not found")
	}
	toks, err := im.Call(&Context{Params: []string{"http://x"}})
	if err != nil || len(toks) != 1 || toks[0].Symbol != "primary" {
		t.Fatalf("Call = %v, %v", toks, err)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("phantom detector")
	}
	if v := r.VersionOf("header"); v.Major != 1 {
		t.Fatalf("VersionOf = %v", v)
	}
	if v := r.VersionOf("nope"); v != (Version{}) {
		t.Fatalf("VersionOf(nope) = %v", v)
	}
}

func TestRegistryReplaceAndNames(t *testing.T) {
	r := NewRegistry()
	r.Register(&Impl{Name: "b", Version: Version{1, 0, 0}})
	r.Register(&Impl{Name: "a", Version: Version{1, 0, 0}})
	r.Register(&Impl{Name: "a", Version: Version{2, 0, 0}}) // upgrade
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if v := r.VersionOf("a"); v.Major != 2 {
		t.Fatalf("upgrade lost: %v", v)
	}
}

func TestImplWithoutFn(t *testing.T) {
	im := &Impl{Name: "x"}
	if _, err := im.Call(&Context{}); err == nil {
		t.Fatal("expected error for missing implementation")
	}
}

func TestContextParam(t *testing.T) {
	c := &Context{Params: []string{"a", "b"}}
	if c.Param(0) != "a" || c.Param(1) != "b" {
		t.Fatal("Param lookup broken")
	}
	if c.Param(2) != "" || c.Param(-1) != "" {
		t.Fatal("out-of-range Param should be empty")
	}
}

func TestXMLRPCRoundTrip(t *testing.T) {
	srv := NewXMLRPCServer()
	srv.Register("segment", func(ctx *Context) ([]Token, error) {
		if ctx.Param(0) != "http://video.mpg" {
			return nil, errors.New("wrong param")
		}
		return []Token{
			{Symbol: "frameNo", Value: "0"},
			{Symbol: "frameNo", Value: "99"},
			{Symbol: "", Value: "tennis"},
		}, nil
	})
	client := NewLoopback(srv)
	toks, err := client.Call("segment", &Context{Params: []string{"http://video.mpg"}, Paths: []string{"location"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Value != "0" || toks[2].Value != "tennis" {
		t.Fatalf("tokens = %v", toks)
	}
	// Literal tokens keep their empty symbol across the wire.
	if toks[2].Symbol != "" {
		t.Fatalf("literal token symbol = %q", toks[2].Symbol)
	}
}

func TestXMLRPCFaults(t *testing.T) {
	srv := NewXMLRPCServer()
	srv.Register("bad", func(ctx *Context) ([]Token, error) {
		return nil, errors.New("boom")
	})
	client := NewLoopback(srv)
	if _, err := client.Call("bad", &Context{}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("fault not propagated: %v", err)
	}
	if _, err := client.Call("missing", &Context{}); err == nil || !strings.Contains(err.Error(), "no such method") {
		t.Fatalf("missing method not reported: %v", err)
	}
}

func TestXMLRPCWireFailure(t *testing.T) {
	c := &XMLRPCClient{Wire: func([]byte) ([]byte, error) { return nil, errors.New("link down") }}
	if _, err := c.Call("x", &Context{}); err == nil {
		t.Fatal("wire failure not surfaced")
	}
	c2 := &XMLRPCClient{Wire: func([]byte) ([]byte, error) { return []byte("not xml"), nil }}
	if _, err := c2.Call("x", &Context{}); err == nil {
		t.Fatal("garbage response not surfaced")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := NewXMLRPCServer()
	if _, err := srv.Handle([]byte("<<<")); err == nil {
		t.Fatal("garbage request accepted")
	}
}

func TestImplViaTransport(t *testing.T) {
	srv := NewXMLRPCServer()
	srv.Register("tennis", func(ctx *Context) ([]Token, error) {
		return []Token{{Symbol: "xPos", Value: "12.5"}}, nil
	})
	im := &Impl{Name: "tennis", Transport: NewLoopback(srv), Version: Version{1, 0, 0}}
	toks, err := im.Call(&Context{})
	if err != nil || len(toks) != 1 || toks[0].Value != "12.5" {
		t.Fatalf("transport call = %v, %v", toks, err)
	}
}
