// Package detector provides the detector registry of the logical
// level: implementations of the blackbox detector symbols a feature
// grammar declares, their three-level versions (major/minor/revision,
// driving the Feature Detector Scheduler's invalidation decisions) and
// the connection protocols for external implementations (the paper's
// xml-rpc:: prefix; "code for the protocol instantiation is
// generated", here provided by a loopback wire that really marshals
// and unmarshals every call).
package detector

import (
	"fmt"
	"sort"
	"sync"
)

// Token is one (symbol, value) token a detector pushes onto the token
// stack of the Feature Detector Engine.
type Token struct {
	Symbol string
	Value  string
}

// Context carries a detector invocation's resolved inputs: the values
// of the parameter paths declared in the grammar, evaluated against
// the parse tree built so far.
type Context struct {
	// Params holds one resolved value per declared parameter path, in
	// declaration order.
	Params []string
	// Paths holds the parameter paths as written in the grammar.
	Paths []string
}

// Param returns the i-th resolved parameter value.
func (c *Context) Param(i int) string {
	if i < 0 || i >= len(c.Params) {
		return ""
	}
	return c.Params[i]
}

// Func is a blackbox detector implementation: it consumes the resolved
// inputs and produces output tokens for the parser to validate against
// the detector's output rules. Returning an error marks the detector
// (and its enclosing alternative) invalid.
type Func func(ctx *Context) ([]Token, error)

// Version is the three-level detector version of the paper: a
// revision bump never invalidates stored parse trees, a minor bump
// invalidates them but leaves the data usable (low-priority
// revalidation), a major bump makes stored data unusable
// (high-priority revalidation).
type Version struct {
	Major, Minor, Revision int
}

func (v Version) String() string {
	return fmt.Sprintf("%d.%d.%d", v.Major, v.Minor, v.Revision)
}

// Less orders versions lexicographically.
func (v Version) Less(o Version) bool {
	if v.Major != o.Major {
		return v.Major < o.Major
	}
	if v.Minor != o.Minor {
		return v.Minor < o.Minor
	}
	return v.Revision < o.Revision
}

// ChangeLevel classifies the impact of a version change.
type ChangeLevel int

// Change levels, ordered by severity.
const (
	ChangeNone ChangeLevel = iota
	ChangeRevision
	ChangeMinor
	ChangeMajor
)

func (c ChangeLevel) String() string {
	switch c {
	case ChangeNone:
		return "none"
	case ChangeRevision:
		return "revision"
	case ChangeMinor:
		return "minor"
	case ChangeMajor:
		return "major"
	default:
		return fmt.Sprintf("change(%d)", int(c))
	}
}

// Compare classifies the upgrade old -> new.
func Compare(old, new Version) ChangeLevel {
	switch {
	case new.Major != old.Major:
		return ChangeMajor
	case new.Minor != old.Minor:
		return ChangeMinor
	case new.Revision != old.Revision:
		return ChangeRevision
	default:
		return ChangeNone
	}
}

// Hooks are the special companion detectors of the paper: init runs
// before the first invocation in a parse and final when the parser
// finishes (e.g. setting up and tearing down the W3C WWW library);
// begin and end run around every occurrence of the symbol.
type Hooks struct {
	Init  func() error
	Final func() error
	Begin func() error
	End   func() error
}

// Impl is a registered detector implementation.
type Impl struct {
	Name      string
	Fn        Func
	Hooks     Hooks
	Version   Version
	Transport Transport // nil for linked-in implementations
}

// Call invokes the implementation, through its transport if external.
func (im *Impl) Call(ctx *Context) ([]Token, error) {
	if im.Transport != nil {
		return im.Transport.Call(im.Name, ctx)
	}
	if im.Fn == nil {
		return nil, fmt.Errorf("detector: %s has no implementation", im.Name)
	}
	return im.Fn(ctx)
}

// Registry maps detector names to implementations. It is safe for
// concurrent use; the FDS swaps implementations at runtime when
// algorithms evolve.
type Registry struct {
	mu    sync.RWMutex
	impls map[string]*Impl
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{impls: make(map[string]*Impl)} }

// Register installs (or replaces) an implementation.
func (r *Registry) Register(im *Impl) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.impls[im.Name] = im
}

// RegisterFunc installs a linked-in implementation with version 1.0.0.
func (r *Registry) RegisterFunc(name string, fn Func) {
	r.Register(&Impl{Name: name, Fn: fn, Version: Version{Major: 1}})
}

// Lookup returns the implementation for name.
func (r *Registry) Lookup(name string) (*Impl, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	im, ok := r.impls[name]
	return im, ok
}

// VersionOf returns the registered version of a detector, or the zero
// version if unregistered.
func (r *Registry) VersionOf(name string) Version {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if im, ok := r.impls[name]; ok {
		return im.Version
	}
	return Version{}
}

// Names returns the registered detector names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.impls))
	for n := range r.impls {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
