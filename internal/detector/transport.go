package detector

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"sync"
)

// Transport connects a detector symbol to an external implementation.
// The paper generates protocol stubs for XML-RPC, plain system calls
// and CORBA; here a transport genuinely marshals the call, crosses a
// wire boundary (in-memory, since the process boundary is simulated)
// and unmarshals the response, so the full encode/decode code path of
// an external detector is exercised.
type Transport interface {
	Call(name string, ctx *Context) ([]Token, error)
}

// xmlRequest is the wire format of a call (a compact XML-RPC analog).
type xmlRequest struct {
	XMLName xml.Name `xml:"methodCall"`
	Method  string   `xml:"methodName"`
	Params  []string `xml:"params>param"`
	Paths   []string `xml:"params>path"`
}

// xmlResponse is the wire format of a reply.
type xmlResponse struct {
	XMLName xml.Name   `xml:"methodResponse"`
	Fault   string     `xml:"fault,omitempty"`
	Tokens  []xmlToken `xml:"tokens>token"`
}

type xmlToken struct {
	Symbol string `xml:"symbol,attr"`
	Value  string `xml:",chardata"`
}

// XMLRPCServer hosts external detector implementations behind the
// wire format. In the paper this runs "on a different machine".
type XMLRPCServer struct {
	mu       sync.RWMutex
	handlers map[string]Func
}

// NewXMLRPCServer returns an empty server.
func NewXMLRPCServer() *XMLRPCServer {
	return &XMLRPCServer{handlers: make(map[string]Func)}
}

// Register installs a remote handler.
func (s *XMLRPCServer) Register(name string, fn Func) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[name] = fn
}

// Handle decodes one request document, dispatches it and encodes the
// response document.
func (s *XMLRPCServer) Handle(request []byte) ([]byte, error) {
	var req xmlRequest
	if err := xml.Unmarshal(request, &req); err != nil {
		return nil, fmt.Errorf("detector: bad request: %w", err)
	}
	s.mu.RLock()
	fn := s.handlers[req.Method]
	s.mu.RUnlock()
	var resp xmlResponse
	if fn == nil {
		resp.Fault = fmt.Sprintf("no such method %s", req.Method)
	} else {
		toks, err := fn(&Context{Params: req.Params, Paths: req.Paths})
		if err != nil {
			resp.Fault = err.Error()
		} else {
			for _, t := range toks {
				resp.Tokens = append(resp.Tokens, xmlToken{Symbol: t.Symbol, Value: t.Value})
			}
		}
	}
	var buf bytes.Buffer
	if err := xml.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, fmt.Errorf("detector: encode response: %w", err)
	}
	return buf.Bytes(), nil
}

// XMLRPCClient is the generated client stub: it owns the wire to one
// server. Wire is a function so tests can interpose failures.
type XMLRPCClient struct {
	Wire func(request []byte) ([]byte, error)
}

// NewLoopback returns a client whose wire delivers directly to the
// given server, simulating the remote process.
func NewLoopback(s *XMLRPCServer) *XMLRPCClient {
	return &XMLRPCClient{Wire: s.Handle}
}

// Call implements Transport by a marshal → wire → unmarshal round trip.
func (c *XMLRPCClient) Call(name string, ctx *Context) ([]Token, error) {
	var buf bytes.Buffer
	req := xmlRequest{Method: name, Params: ctx.Params, Paths: ctx.Paths}
	if err := xml.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("detector: encode request: %w", err)
	}
	raw, err := c.Wire(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("detector: wire: %w", err)
	}
	var resp xmlResponse
	if err := xml.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("detector: bad response: %w", err)
	}
	if resp.Fault != "" {
		return nil, fmt.Errorf("detector: remote fault: %s", resp.Fault)
	}
	out := make([]Token, 0, len(resp.Tokens))
	for _, t := range resp.Tokens {
		out = append(out, Token{Symbol: t.Symbol, Value: t.Value})
	}
	return out, nil
}
