package fg

// TennisGrammar is the video feature grammar of the running example,
// combining the fragments of Figure 6 (multimedia object typing) and
// Figure 7 (tennis segmentation, tracking and event recognition). The
// shot classification is completed with the close-up and audience
// categories of Figure 5, which the paper's fragment elides.
const TennisGrammar = `
%module tennisvideo;

%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO       : location header mm_type?;
header    : MIME_type;
MIME_type : primary secondary;
mm_type   : video_type video;

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location, begin.frameNo, end.frameNo);

%detector netplay some[tennis.frame](
    player.yPos <= 170.0
);

%atom flt xPos, yPos, Ecc, Orient;
%atom int frameNo, Area;
%atom bit netplay;

video   : segment;
segment : shot*;
shot    : begin end type;
begin   : frameNo;
end     : frameNo;
type    : "tennis" tennis;
type    : "closeup";
type    : "audience";
type    : "other";
tennis  : frame* event;
frame   : frameNo player;
player  : xPos yPos Area Ecc Orient;
event   : netplay;
`

// TennisGrammarWithStrokes extends TennisGrammar with the stochastic
// event-layer extension of the COBRA model [PJZ01]: an external stroke
// detector classifies each tennis shot's motion pattern with per-class
// HMMs and contributes a stroke label to the event layer. The paper
// presents exactly this kind of change as the grammar's evolution
// path: "this grammar is easily extensible".
const TennisGrammarWithStrokes = `
%module tennisvideo_strokes;

%start MMO(location);

%detector header(location);
%detector header.init();
%detector header.final();

%detector video_type primary == "video";

%atom url;

%atom url location;
%atom str primary;
%atom str secondary;

MMO       : location header mm_type?;
header    : MIME_type;
MIME_type : primary secondary;
mm_type   : video_type video;

%detector xml-rpc::segment(location);
%detector xml-rpc::tennis(location, begin.frameNo, end.frameNo);
%detector xml-rpc::stroke(location, begin.frameNo, end.frameNo);

%detector netplay some[tennis.frame](
    player.yPos <= 170.0
);

%atom flt xPos, yPos, Ecc, Orient;
%atom int frameNo, Area;
%atom bit netplay;
%atom str label;

video   : segment;
segment : shot*;
shot    : begin end type;
begin   : frameNo;
end     : frameNo;
type    : "tennis" tennis;
type    : "closeup";
type    : "audience";
type    : "other";
tennis  : frame* event;
frame   : frameNo player;
player  : xPos yPos Area Ecc Orient;
event   : netplay stroke?;
stroke  : label;
`

// InternetGrammar is a self-contained completion of the Internet
// feature grammar fragment of Figure 14: HTML pages with titles,
// keywords and anchors whose references (&html) turn the parse forest
// into the web's link graph, plus embedded images classified by a
// portrait (face detection) detector — enabling the paper's Internet
// scale query "all portraits embedded in pages containing keywords
// semantically related to 'champion'".
const InternetGrammar = `
%module internet;

%start html(location);

%detector fetch(location);
%detector portrait(image.location);

%atom url;

%atom url location, href;
%atom str title, word;
%atom bit portrait;

html    : location fetch;
fetch   : title? keyword* anchor* image*;
keyword : word;
anchor  : href (&html)?;
image   : location portrait;
`
