package fg

import (
	"fmt"
	"sort"
	"strings"
)

// DepGraph is the dependency graph the Feature Detector Scheduler
// derives from the grammar rules (Figure 8). Node types correspond to
// the symbol types (atom, variable, detector); there are three edge
// types:
//
//   - sibling dependencies between symbols that appear together in one
//     right-hand side (they influence each other's validity),
//   - rule dependencies from a rule's left-hand symbol to the last
//     obligatory symbol of each alternative,
//   - parameter dependencies from a detector to the symbols its input
//     paths (or whitebox predicate paths) reference.
type DepGraph struct {
	g *Grammar

	siblings   map[string]map[string]bool
	ruleDeps   map[string]map[string]bool // lhs -> last obligatory symbol(s)
	paramDeps  map[string]map[string]bool // detector -> referenced symbols
	produces   map[string]map[string]bool // lhs -> all RHS symbols
	producedBy map[string]map[string]bool // symbol -> lhs's mentioning it
}

// Dependencies derives the dependency graph from the grammar.
func (g *Grammar) Dependencies() *DepGraph {
	d := &DepGraph{
		g:          g,
		siblings:   map[string]map[string]bool{},
		ruleDeps:   map[string]map[string]bool{},
		paramDeps:  map[string]map[string]bool{},
		produces:   map[string]map[string]bool{},
		producedBy: map[string]map[string]bool{},
	}
	add := func(m map[string]map[string]bool, a, b string) {
		if m[a] == nil {
			m[a] = map[string]bool{}
		}
		m[a][b] = true
	}
	for _, r := range g.Rules {
		var syms []string
		walkElements(r.RHS, func(e Element) {
			if e.Kind == ElemSymbol || e.Kind == ElemRef {
				syms = append(syms, e.Name)
				add(d.produces, r.LHS, e.Name)
				add(d.producedBy, e.Name, r.LHS)
			}
		})
		// Sibling dependencies: all pairs within one alternative.
		for i := 0; i < len(syms); i++ {
			for j := i + 1; j < len(syms); j++ {
				if syms[i] == syms[j] {
					continue
				}
				add(d.siblings, syms[i], syms[j])
				add(d.siblings, syms[j], syms[i])
			}
		}
		if last, ok := lastObligatory(r.RHS); ok {
			add(d.ruleDeps, r.LHS, last)
		}
	}
	for _, det := range g.Detectors {
		var paths []Path
		paths = append(paths, det.Params...)
		if det.Pred != nil {
			paths = append(paths, ExprPaths(det.Pred)...)
		}
		for _, path := range paths {
			for _, comp := range path {
				if comp == det.Name {
					continue
				}
				add(d.paramDeps, det.Name, comp)
			}
		}
	}
	return d
}

// lastObligatory returns the last symbol with lower bound > 0 in a
// right-hand side, descending into groups.
func lastObligatory(els []Element) (string, bool) {
	for i := len(els) - 1; i >= 0; i-- {
		e := els[i]
		if e.Min == 0 {
			continue
		}
		switch e.Kind {
		case ElemSymbol, ElemRef:
			return e.Name, true
		case ElemGroup:
			if s, ok := lastObligatory(e.Children); ok {
				return s, true
			}
		}
	}
	return "", false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Siblings returns the sibling dependencies of a symbol.
func (d *DepGraph) Siblings(sym string) []string { return sortedKeys(d.siblings[sym]) }

// RuleDeps returns the symbols the given left-hand symbol depends on
// (the last obligatory symbol of each alternative).
func (d *DepGraph) RuleDeps(lhs string) []string { return sortedKeys(d.ruleDeps[lhs]) }

// ParamDeps returns the symbols a detector's inputs reference.
func (d *DepGraph) ParamDeps(det string) []string { return sortedKeys(d.paramDeps[det]) }

// Produces returns the symbols appearing in any right-hand side of lhs.
func (d *DepGraph) Produces(lhs string) []string { return sortedKeys(d.produces[lhs]) }

// Downward returns the closure of symbols reachable from sym by
// following rule (production) structure downward: all symbols that can
// occur in a partial parse tree rooted at sym. This is the set the FDS
// invalidates when the detector sym changes (paper's step 1: changing
// header involves header, MIME_type, primary and secondary).
func (d *DepGraph) Downward(sym string) []string {
	seen := map[string]bool{sym: true}
	stack := []string{sym}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range d.produces[s] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return sortedKeys(seen)
}

// UpwardStops walks rule and sibling dependencies upward from sym and
// returns the first detectors or the start symbol encountered (the
// paper's step 3: escalate an invalid subtree to the enclosing
// invalidation scope).
func (d *DepGraph) UpwardStops(sym string) []string {
	stops := map[string]bool{}
	seen := map[string]bool{sym: true}
	queue := []string{sym}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for parent := range d.producedBy[s] {
			if seen[parent] {
				continue
			}
			seen[parent] = true
			if d.g.IsDetector(parent) || parent == d.g.Start {
				stops[parent] = true
				continue
			}
			queue = append(queue, parent)
		}
	}
	if len(stops) == 0 && (d.g.IsDetector(sym) || sym == d.g.Start) {
		stops[sym] = true
	}
	return sortedKeys(stops)
}

// ParamDependents returns the detectors whose inputs reference sym;
// when sym's value changes these detectors must be revalidated (the
// paper's step 2: a changed primary MIME type invalidates video_type).
func (d *DepGraph) ParamDependents(sym string) []string {
	out := map[string]bool{}
	for det, deps := range d.paramDeps {
		if deps[sym] {
			out[det] = true
		}
	}
	return sortedKeys(out)
}

// DOT renders the dependency graph in Graphviz format: box nodes for
// detectors, ellipses for variables, plain text for atoms; solid edges
// for rule dependencies, dashed for siblings, dotted for parameters —
// a faithful rendering of Figure 8.
func (d *DepGraph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph dependencies {\n")
	for _, s := range d.g.Symbols() {
		shape := "ellipse"
		switch {
		case d.g.IsDetector(s):
			shape = "box"
		case d.g.IsAtom(s):
			shape = "plaintext"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s];\n", s, shape)
	}
	for _, a := range sortedKeys(mapKeysOf(d.ruleDeps)) {
		for _, b := range sortedKeys(d.ruleDeps[a]) {
			fmt.Fprintf(&sb, "  %q -> %q [style=solid,label=\"rule\"];\n", a, b)
		}
	}
	for _, a := range sortedKeys(mapKeysOf(d.siblings)) {
		for _, b := range sortedKeys(d.siblings[a]) {
			if a < b { // render each undirected sibling pair once
				fmt.Fprintf(&sb, "  %q -> %q [style=dashed,dir=none,label=\"sibling\"];\n", a, b)
			}
		}
	}
	for _, a := range sortedKeys(mapKeysOf(d.paramDeps)) {
		for _, b := range sortedKeys(d.paramDeps[a]) {
			fmt.Fprintf(&sb, "  %q -> %q [style=dotted,label=\"param\"];\n", a, b)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func mapKeysOf[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
