package fg

import (
	"strings"
	"testing"
)

// TestFigure6Grammar is experiment E02: the Figure 6 fragment (within
// the combined tennis grammar) must parse with exactly the declared
// structure.
func TestFigure6Grammar(t *testing.T) {
	g := MustParse(TennisGrammar)
	if g.Start != "MMO" {
		t.Fatalf("start = %q", g.Start)
	}
	if len(g.StartArgs) != 1 || g.StartArgs[0].String() != "location" {
		t.Fatalf("start args = %v", g.StartArgs)
	}
	h := g.Detectors["header"]
	if h == nil || h.Kind != Blackbox {
		t.Fatal("header must be a blackbox detector")
	}
	if !h.HasInit || !h.HasFinal || h.HasBegin || h.HasEnd {
		t.Fatalf("header specials wrong: %+v", h)
	}
	if len(h.Params) != 1 || h.Params[0].String() != "location" {
		t.Fatalf("header params = %v", h.Params)
	}
	vt := g.Detectors["video_type"]
	if vt == nil || vt.Kind != Whitebox {
		t.Fatal("video_type must be a whitebox detector")
	}
	cmp, ok := vt.Pred.(*Cmp)
	if !ok || cmp.Op != OpEq || cmp.Left.Path.String() != "primary" || cmp.Right.Str != "video" {
		t.Fatalf("video_type predicate = %v", vt.Pred)
	}
	if !g.ADTs["url"] {
		t.Fatal("ADT url not declared")
	}
	if a := g.Atoms["location"]; a == nil || a.Type != "url" {
		t.Fatalf("atom location = %+v", a)
	}
	// MMO rule: location header mm_type?
	mmo := g.Alternatives("MMO")
	if len(mmo) != 1 || len(mmo[0].RHS) != 3 {
		t.Fatalf("MMO alternatives = %v", mmo)
	}
	if mm := mmo[0].RHS[2]; mm.Name != "mm_type" || !mm.Optional() || mm.Max != 1 {
		t.Fatalf("mm_type element = %+v", mm)
	}
}

// TestFigure7Grammar covers the Figure 7 fragment: external detectors,
// literals, repetition and the quantified whitebox netplay detector.
func TestFigure7Grammar(t *testing.T) {
	g := MustParse(TennisGrammar)
	seg := g.Detectors["segment"]
	if seg == nil || seg.Protocol != "xml-rpc" || seg.Kind != Blackbox {
		t.Fatalf("segment = %+v", seg)
	}
	tn := g.Detectors["tennis"]
	if tn == nil || len(tn.Params) != 3 {
		t.Fatalf("tennis params = %v", tn.Params)
	}
	if tn.Params[1].String() != "begin.frameNo" || tn.Params[2].String() != "end.frameNo" {
		t.Fatalf("tennis params = %v", tn.Params)
	}
	np := g.Detectors["netplay"]
	if np == nil || np.Kind != Whitebox {
		t.Fatal("netplay must be whitebox")
	}
	q, ok := np.Pred.(*Quant)
	if !ok || q.Kind != QuantSome || q.Over.String() != "tennis.frame" {
		t.Fatalf("netplay predicate = %v", np.Pred)
	}
	body, ok := q.Body.(*Cmp)
	if !ok || body.Op != OpLe || body.Left.Path.String() != "player.yPos" || body.Right.Value() != 170.0 {
		t.Fatalf("netplay body = %v", q.Body)
	}
	// netplay is both a detector and a bit atom.
	if !g.IsAtom("netplay") || g.Atoms["netplay"].Type != "bit" {
		t.Fatal("netplay must be a bit atom")
	}
	// shot* repetition.
	segRules := g.Alternatives("segment")
	if len(segRules) != 1 || segRules[0].RHS[0].Min != 0 || segRules[0].RHS[0].Max != Unbounded {
		t.Fatalf("segment rule = %v", segRules)
	}
	// The four shot classification alternatives, the first guarded by a
	// literal.
	types := g.Alternatives("type")
	if len(types) != 4 {
		t.Fatalf("type alternatives = %d", len(types))
	}
	if types[0].RHS[0].Kind != ElemLiteral || types[0].RHS[0].Name != "tennis" {
		t.Fatalf("type first alternative = %v", types[0])
	}
	if g.IsVariable("type") != true {
		t.Fatal("type should be a variable")
	}
}

func TestInternetGrammarParses(t *testing.T) {
	g := MustParse(InternetGrammar)
	if g.Name != "internet" {
		t.Fatalf("module = %q", g.Name)
	}
	anchors := g.Alternatives("anchor")
	if len(anchors) != 1 {
		t.Fatalf("anchor rules = %v", anchors)
	}
	// anchor : href (&html)? — group with a reference inside.
	grp := anchors[0].RHS[1]
	if grp.Kind != ElemGroup || !grp.Optional() {
		t.Fatalf("anchor group = %+v", grp)
	}
	if grp.Children[0].Kind != ElemRef || grp.Children[0].Name != "html" {
		t.Fatalf("anchor ref = %+v", grp.Children[0])
	}
}

func TestAlternativesViaPipe(t *testing.T) {
	g := MustParse(`
%start s(x);
%atom str x, y;
s : x | y "lit";
`)
	alts := g.Alternatives("s")
	if len(alts) != 2 {
		t.Fatalf("alternatives = %d", len(alts))
	}
	if alts[1].RHS[1].Kind != ElemLiteral || alts[1].RHS[1].Name != "lit" {
		t.Fatalf("second alt = %v", alts[1])
	}
}

func TestElementStringForms(t *testing.T) {
	g := MustParse(`
%start s(a);
%atom str a, b;
s : a? b* (a b)+ "x" &s;
`)
	r := g.Alternatives("s")[0]
	wants := []string{"a?", "b*", "(a b)+", `"x"`, "&s"}
	for i, w := range wants {
		if got := r.RHS[i].String(); got != w {
			t.Errorf("element %d = %q, want %q", i, got, w)
		}
	}
	if got := r.String(); !strings.Contains(got, "s :") {
		t.Errorf("rule string = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing start":          `%atom str a; s : a;`,
		"undefined start":        `%start nope(a); %atom str a;`,
		"duplicate start":        `%start s(a); %start s(a); %atom str a; s : a;`,
		"unknown decl":           `%bogus x; %start s(a); %atom str a; s : a;`,
		"undefined symbol":       `%start s(a); %atom str a; s : a zzz;`,
		"bad atom type":          `%start s(a); %atom nosuchtype a; s : a;`,
		"atom as rule head":      `%start s(a); %atom str a; s : a; a : s;`,
		"special undeclared":     `%start s(a); %detector x.init(); %atom str a; s : a;`,
		"unknown special":        `%start s(a); %detector d(a); %detector d.weird(); %atom str a; s : a; d : a;`,
		"duplicate detector":     `%start s(a); %detector d(a); %detector d(a); %atom str a; s : d; d : a;`,
		"blackbox without rule":  `%start s(a); %detector d(a); %atom str a; s : a d;`,
		"unknown param symbol":   `%start s(a); %detector d(zzz); %atom str a; s : a d; d : a;`,
		"unterminated rule":      `%start s(a); %atom str a; s : a`,
		"unterminated string":    `%start s(a); %atom str a; s : "x;`,
		"bad start arg":          `%start s(zzz); %atom str a; s : a;`,
		"atom type conflict":     `%start s(a); %atom str a; %atom int a; s : a;`,
		"literal as expression":  `%start s(a); %detector w "lit"; %atom str a; s : a w;`,
		"unterminated block cmt": `/* hi %start s(a); %atom str a; s : a;`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestLexerIdentifiersWithHyphen(t *testing.T) {
	toks, err := lex("xml-rpc::segment")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "xml-rpc" || toks[1].text != "::" || toks[2].text != "segment" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexerComments(t *testing.T) {
	g, err := Parse(`
// line comment
# hash comment
/* block
   comment */
%start s(a);
%atom str a;
s : a; // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "s" {
		t.Fatal("comment handling broke parsing")
	}
}

func TestLexerBadChar(t *testing.T) {
	if _, err := lex("a @ b"); err == nil {
		t.Fatal("expected error for @")
	}
}

func TestWhiteboxExpressionForms(t *testing.T) {
	g := MustParse(`
%start s(a);
%atom flt a, b;
%atom bit w;
%detector w (a <= 3.5 && b > 1) || !(a == b) && all[s.a](a != 0) && one[s.b](b >= 2) && w;
s : a b w;
`)
	d := g.Detectors["w"]
	if d == nil || d.Kind != Whitebox {
		t.Fatal("w must be whitebox")
	}
	str := d.Pred.String()
	for _, frag := range []string{"<=", "&&", "||", "!", "all[s.a]", "one[s.b]", "=="} {
		if !strings.Contains(str, frag) {
			t.Errorf("expression %q lacks %q", str, frag)
		}
	}
	paths := ExprPaths(d.Pred)
	if len(paths) < 5 {
		t.Fatalf("ExprPaths = %v", paths)
	}
}

func TestSymbolsDeterministic(t *testing.T) {
	g := MustParse(TennisGrammar)
	a := g.Symbols()
	b := g.Symbols()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("Symbols() unstable: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Symbols() unstable at %d", i)
		}
	}
	if a[0] != "MMO" {
		t.Fatalf("start symbol should lead: %v", a[:3])
	}
}

func TestIsVariableClassification(t *testing.T) {
	g := MustParse(TennisGrammar)
	if !g.IsVariable("MIME_type") || !g.IsVariable("shot") {
		t.Fatal("variables misclassified")
	}
	if g.IsVariable("header") || g.IsVariable("location") {
		t.Fatal("detector/atom classified as variable")
	}
	if !g.IsDetector("netplay") || !g.IsAtom("netplay") {
		t.Fatal("netplay must be both detector and atom")
	}
}
