package fg

import (
	"reflect"
	"strings"
	"testing"
)

// TestFigure8DependencyGraph is experiment E04: the dependency graph
// derived from the Figure 6 fragment must contain exactly the edges
// the paper's Figure 8 shows.
func TestFigure8DependencyGraph(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()

	// Rule dependency: "MMO depends on the validity of header and not
	// on the validity of mm_type, as it is optional."
	if got := d.RuleDeps("MMO"); !reflect.DeepEqual(got, []string{"header"}) {
		t.Fatalf("RuleDeps(MMO) = %v, want [header]", got)
	}
	// header : MIME_type -> rule dep.
	if got := d.RuleDeps("header"); !reflect.DeepEqual(got, []string{"MIME_type"}) {
		t.Fatalf("RuleDeps(header) = %v", got)
	}
	// MIME_type : primary secondary -> last obligatory is secondary.
	if got := d.RuleDeps("MIME_type"); !reflect.DeepEqual(got, []string{"secondary"}) {
		t.Fatalf("RuleDeps(MIME_type) = %v", got)
	}

	// Sibling dependencies: header appears with location and mm_type.
	sib := d.Siblings("header")
	want := []string{"location", "mm_type"}
	if !reflect.DeepEqual(sib, want) {
		t.Fatalf("Siblings(header) = %v, want %v", sib, want)
	}
	// Symmetry.
	if got := d.Siblings("location"); !contains(got, "header") {
		t.Fatalf("Siblings(location) = %v, must contain header", got)
	}

	// Parameter dependencies: "the header detector needs the location
	// as input"; video_type's predicate reads primary.
	if got := d.ParamDeps("header"); !reflect.DeepEqual(got, []string{"location"}) {
		t.Fatalf("ParamDeps(header) = %v", got)
	}
	if got := d.ParamDeps("video_type"); !reflect.DeepEqual(got, []string{"primary"}) {
		t.Fatalf("ParamDeps(video_type) = %v", got)
	}
}

// TestFDSWalkthroughSets checks the symbol sets of the paper's
// header-upgrade walkthrough against the graph operations.
func TestFDSWalkthroughSets(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()

	// Step 1: invalidating header involves header, MIME_type, primary
	// and secondary — the downward closure.
	got := d.Downward("header")
	want := []string{"MIME_type", "header", "primary", "secondary"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Downward(header) = %v, want %v", got, want)
	}

	// Step 2: "If the primary MIME type has changed the video_type
	// detector will become invalid" — parameter dependents.
	if got := d.ParamDependents("primary"); !reflect.DeepEqual(got, []string{"video_type"}) {
		t.Fatalf("ParamDependents(primary) = %v", got)
	}

	// Step 3: escalating an invalid MIME_type subtree upward stops at
	// the header detector.
	if got := d.UpwardStops("MIME_type"); !reflect.DeepEqual(got, []string{"header"}) {
		t.Fatalf("UpwardStops(MIME_type) = %v", got)
	}
	// Escalating an invalid header reaches the start symbol MMO.
	if got := d.UpwardStops("header"); !reflect.DeepEqual(got, []string{"MMO"}) {
		t.Fatalf("UpwardStops(header) = %v", got)
	}
}

func TestDownwardOfTennisDetector(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()
	down := d.Downward("tennis")
	for _, must := range []string{"frame", "player", "xPos", "yPos", "event", "netplay"} {
		if !contains(down, must) {
			t.Errorf("Downward(tennis) lacks %s: %v", must, down)
		}
	}
	if contains(down, "segment") || contains(down, "MMO") {
		t.Errorf("Downward(tennis) leaked upward symbols: %v", down)
	}
}

func TestUpwardStopsAtDetectorNotBeyond(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()
	// player sits under frame under tennis (a detector): escalation
	// stops there, it must not climb to segment or MMO.
	got := d.UpwardStops("player")
	if !reflect.DeepEqual(got, []string{"tennis"}) {
		t.Fatalf("UpwardStops(player) = %v", got)
	}
	// netplay is below the netplay detector? No: netplay is produced by
	// event; event is produced by tennis.
	if got := d.UpwardStops("event"); !reflect.DeepEqual(got, []string{"tennis"}) {
		t.Fatalf("UpwardStops(event) = %v", got)
	}
}

func TestUpwardStopsOfStart(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()
	// The start symbol itself has no producers; it is its own stop.
	if got := d.UpwardStops("MMO"); !reflect.DeepEqual(got, []string{"MMO"}) {
		t.Fatalf("UpwardStops(MMO) = %v", got)
	}
}

func TestRuleDepsSkipLiterals(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()
	// type : "tennis" tennis — last obligatory symbol is the tennis
	// detector, the literal is not a symbol.
	if got := d.RuleDeps("type"); !reflect.DeepEqual(got, []string{"tennis"}) {
		t.Fatalf("RuleDeps(type) = %v", got)
	}
}

func TestRuleDepsGroups(t *testing.T) {
	g := MustParse(`
%start s(a);
%atom str a, b, c;
s : a (b c)+;
`)
	d := g.Dependencies()
	if got := d.RuleDeps("s"); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("RuleDeps(s) = %v, want last obligatory inside group", got)
	}
}

func TestRuleDepsAllOptional(t *testing.T) {
	g := MustParse(`
%start s(a);
%atom str a, b;
s : a? b*;
`)
	d := g.Dependencies()
	if got := d.RuleDeps("s"); len(got) != 0 {
		t.Fatalf("RuleDeps(s) = %v, want none (all optional)", got)
	}
}

func TestProducesAndDOT(t *testing.T) {
	g := MustParse(TennisGrammar)
	d := g.Dependencies()
	if got := d.Produces("MIME_type"); !reflect.DeepEqual(got, []string{"primary", "secondary"}) {
		t.Fatalf("Produces(MIME_type) = %v", got)
	}
	dot := d.DOT()
	for _, frag := range []string{
		"digraph dependencies",
		`"header" [shape=box]`,
		`"MIME_type" [shape=ellipse]`,
		`"location" [shape=plaintext]`,
		`"MMO" -> "header" [style=solid`,
		`"header" -> "location" [style=dotted`,
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output lacks %q", frag)
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
