package fg

import (
	"fmt"
	"strconv"
)

// Parse parses and validates feature grammar source text.
func Parse(src string) (*Grammar, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, g: &Grammar{
		ADTs:      map[string]bool{},
		Atoms:     map[string]*Atom{},
		Detectors: map[string]*Detector{},
		BySym:     map[string][]*Rule{},
		symbols:   map[string]bool{},
	}}
	for k := range builtinADTs {
		p.g.ADTs[k] = true
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.g.validate(); err != nil {
		return nil, err
	}
	return p.g, nil
}

// MustParse is Parse for grammar constants; it panics on error.
func MustParse(src string) *Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

type parser struct {
	toks []token
	pos  int
	g    *Grammar
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tIdent {
		return "", p.errf("expected identifier, found %s", p.cur())
	}
	return p.next().text, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("fg: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) parse() error {
	for p.cur().kind != tEOF {
		if p.accept("%") {
			if err := p.parseDecl(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseRule(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseDecl() error {
	kw, err := p.ident()
	if err != nil {
		return err
	}
	switch kw {
	case "start":
		return p.parseStart()
	case "module":
		name, err := p.ident()
		if err != nil {
			return err
		}
		p.g.Name = name
		return p.expect(";")
	case "atom":
		return p.parseAtom()
	case "detector":
		return p.parseDetector()
	default:
		return p.errf("unknown declaration %%%s", kw)
	}
}

func (p *parser) parseStart() error {
	if p.g.Start != "" {
		return p.errf("duplicate %%start declaration")
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	p.g.Start = name
	if err := p.expect("("); err != nil {
		return err
	}
	if !p.accept(")") {
		for {
			path, err := p.parsePath()
			if err != nil {
				return err
			}
			p.g.StartArgs = append(p.g.StartArgs, path)
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return err
			}
		}
	}
	return p.expect(";")
}

// parseAtom handles both ADT declarations (`%atom url;`) and atom
// declarations (`%atom flt xPos, yPos;`).
func (p *parser) parseAtom() error {
	line := p.cur().line
	first, err := p.ident()
	if err != nil {
		return err
	}
	if p.accept(";") {
		// New ADT declaration.
		p.g.ADTs[first] = true
		return nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return err
		}
		if prev, ok := p.g.Atoms[name]; ok && prev.Type != first {
			return p.errf("atom %s redeclared with type %s (was %s)", name, first, prev.Type)
		}
		p.g.Atoms[name] = &Atom{Name: name, Type: first, Line: line}
		if p.accept(";") {
			return nil
		}
		if err := p.expect(","); err != nil {
			return err
		}
	}
}

func (p *parser) parseDetector() error {
	line := p.cur().line
	first, err := p.ident()
	if err != nil {
		return err
	}
	protocol := ""
	name := first
	if p.accept("::") {
		protocol = first
		name, err = p.ident()
		if err != nil {
			return err
		}
	}
	// Special companion detector: name.init() etc.
	if p.accept(".") {
		special, err := p.ident()
		if err != nil {
			return err
		}
		d := p.g.Detectors[name]
		if d == nil {
			return p.errf("special detector %s.%s for undeclared detector %s", name, special, name)
		}
		switch special {
		case "init":
			d.HasInit = true
		case "final":
			d.HasFinal = true
		case "begin":
			d.HasBegin = true
		case "end":
			d.HasEnd = true
		default:
			return p.errf("unknown special detector %s.%s", name, special)
		}
		if err := p.expect("("); err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		return p.expect(";")
	}
	if _, dup := p.g.Detectors[name]; dup {
		return p.errf("detector %s declared twice", name)
	}
	d := &Detector{Name: name, Protocol: protocol, Line: line}
	// Blackbox parameter list or whitebox expression: try the parameter
	// list first and backtrack on failure.
	if p.cur().kind == tPunct && p.cur().text == "(" {
		save := p.pos
		params, ok := p.tryParamList()
		if ok {
			d.Kind = Blackbox
			d.Params = params
			p.g.Detectors[name] = d
			return nil
		}
		p.pos = save
	}
	expr, err := p.parseExpr()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	d.Kind = Whitebox
	d.Pred = expr
	p.g.Detectors[name] = d
	return nil
}

// tryParamList attempts to parse "(" path ("," path)* ")" ";" and
// reports success. On failure the caller backtracks and reparses as a
// whitebox expression.
func (p *parser) tryParamList() ([]Path, bool) {
	if !p.accept("(") {
		return nil, false
	}
	var params []Path
	if p.accept(")") {
		if p.accept(";") {
			return params, true
		}
		return nil, false
	}
	for {
		if p.cur().kind != tIdent {
			return nil, false
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, false
		}
		params = append(params, path)
		if p.accept(")") {
			if p.accept(";") {
				return params, true
			}
			return nil, false
		}
		if !p.accept(",") {
			return nil, false
		}
	}
}

func (p *parser) parsePath() (Path, error) {
	var path Path
	seg, err := p.ident()
	if err != nil {
		return nil, err
	}
	path = append(path, seg)
	for p.accept(".") {
		seg, err := p.ident()
		if err != nil {
			return nil, err
		}
		path = append(path, seg)
	}
	return path, nil
}

func (p *parser) parseRule() error {
	line := p.cur().line
	lhs, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	for {
		els, err := p.parseElements()
		if err != nil {
			return err
		}
		rule := &Rule{LHS: lhs, RHS: els, Line: line}
		p.g.Rules = append(p.g.Rules, rule)
		p.g.BySym[lhs] = append(p.g.BySym[lhs], rule)
		if p.accept(";") {
			return nil
		}
		if err := p.expect("|"); err != nil {
			return err
		}
	}
}

// parseElements parses a sequence of elements up to ';', '|' or ')'.
func (p *parser) parseElements() ([]Element, error) {
	var els []Element
	for {
		t := p.cur()
		if t.kind == tPunct && (t.text == ";" || t.text == "|" || t.text == ")") {
			return els, nil
		}
		if t.kind == tEOF {
			return nil, p.errf("unterminated rule")
		}
		el, err := p.parseElement()
		if err != nil {
			return nil, err
		}
		els = append(els, el)
	}
}

func (p *parser) parseElement() (Element, error) {
	var el Element
	t := p.cur()
	switch {
	case t.kind == tIdent:
		p.pos++
		el = Element{Kind: ElemSymbol, Name: t.text, Min: 1, Max: 1}
	case t.kind == tString:
		p.pos++
		el = Element{Kind: ElemLiteral, Name: t.text, Min: 1, Max: 1}
	case t.kind == tPunct && t.text == "&":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return el, err
		}
		el = Element{Kind: ElemRef, Name: name, Min: 1, Max: 1}
	case t.kind == tPunct && t.text == "(":
		p.pos++
		children, err := p.parseElements()
		if err != nil {
			return el, err
		}
		if err := p.expect(")"); err != nil {
			return el, err
		}
		el = Element{Kind: ElemGroup, Children: children, Min: 1, Max: 1}
	default:
		return el, p.errf("unexpected %s in rule body", t)
	}
	switch {
	case p.accept("?"):
		el.Min, el.Max = 0, 1
	case p.accept("*"):
		el.Min, el.Max = 0, Unbounded
	case p.accept("+"):
		el.Min, el.Max = 1, Unbounded
	}
	return el, nil
}

// --- Whitebox expression parsing ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("!") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	// Quantifier?
	if p.cur().kind == tIdent {
		switch QuantKind(p.cur().text) {
		case QuantSome, QuantAll, QuantOne:
			if p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "[" {
				return p.parseQuant()
			}
		}
	}
	if p.accept("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseQuant() (Expr, error) {
	kind := QuantKind(p.next().text)
	if err := p.expect("["); err != nil {
		return nil, err
	}
	over, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &Quant{Kind: kind, Over: over, Body: body}, nil
}

var cmpOps = []CmpOp{OpEq, OpNe, OpLe, OpGe, OpLt, OpGt}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	for _, op := range cmpOps {
		if p.accept(string(op)) {
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return &Cmp{Op: op, Left: left, Right: right}, nil
		}
	}
	if left.Path == nil {
		return nil, p.errf("literal %s is not a boolean expression", left)
	}
	return &PathTruth{Path: left.Path}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, p.errf("bad number %q", t.text)
		}
		return Operand{Num: v, IsNum: true}, nil
	case t.kind == tPunct && t.text == "-":
		return Operand{}, p.errf("unexpected '-'")
	case t.kind == tString:
		p.pos++
		return Operand{Str: t.text, IsStr: true}, nil
	case t.kind == tIdent:
		path, err := p.parsePath()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Path: path}, nil
	default:
		return Operand{}, p.errf("expected operand, found %s", t)
	}
}

// --- Static validation ---

func (g *Grammar) validate() error {
	if g.Start == "" {
		return fmt.Errorf("fg: missing %%start declaration")
	}
	// Collect defined names.
	defined := func(name string) bool {
		return g.IsAtom(name) || g.IsDetector(name) || len(g.BySym[name]) > 0
	}
	if !defined(g.Start) {
		return fmt.Errorf("fg: start symbol %s has no definition", g.Start)
	}
	// Atom types must exist.
	for _, a := range g.Atoms {
		if !g.ADTs[a.Type] {
			return fmt.Errorf("fg: line %d: atom %s has unknown ADT %s", a.Line, a.Name, a.Type)
		}
	}
	// LHS of a rule must not be an atom.
	for _, r := range g.Rules {
		if g.IsAtom(r.LHS) {
			return fmt.Errorf("fg: line %d: terminal %s cannot appear as rule head", r.Line, r.LHS)
		}
	}
	// All referenced symbols must be defined.
	for _, r := range g.Rules {
		var bad error
		walkElements(r.RHS, func(e Element) {
			if bad != nil {
				return
			}
			if (e.Kind == ElemSymbol || e.Kind == ElemRef) && !defined(e.Name) {
				bad = fmt.Errorf("fg: line %d: undefined symbol %s in rule for %s", r.Line, e.Name, r.LHS)
			}
		})
		if bad != nil {
			return bad
		}
	}
	// Blackbox detectors need output rules unless they are also atoms
	// (whitebox value detectors like netplay are atom-typed).
	for _, d := range g.Detectors {
		if d.Kind == Blackbox && len(g.BySym[d.Name]) == 0 && !g.IsAtom(d.Name) && d.Name != g.Start {
			return fmt.Errorf("fg: line %d: blackbox detector %s has no output rules", d.Line, d.Name)
		}
		heads := map[string]bool{}
		for _, prm := range d.Params {
			heads[prm.Head()] = true
		}
		if d.Pred != nil {
			for _, path := range ExprPaths(d.Pred) {
				heads[path.Head()] = true
			}
		}
		for h := range heads {
			if !defined(h) {
				return fmt.Errorf("fg: line %d: detector %s parameter references unknown symbol %s", d.Line, d.Name, h)
			}
		}
	}
	// Start args must reference defined symbols.
	for _, arg := range g.StartArgs {
		if !defined(arg.Head()) {
			return fmt.Errorf("fg: start argument %s is not a defined symbol", arg)
		}
	}
	return nil
}
