package fg

import (
	"fmt"
	"strings"
)

// Builtin ADTs of the feature grammar language; additional ADTs (the
// paper's `%atom url;`) are declared by the grammar itself.
var builtinADTs = map[string]bool{
	"str": true, "int": true, "flt": true, "bit": true,
}

// Unbounded marks an element with no upper repetition bound ('*', '+').
const Unbounded = -1

// ElementKind classifies the primaries of a regular right part.
type ElementKind int

const (
	// ElemSymbol is a plain symbol occurrence (variable, detector or atom).
	ElemSymbol ElementKind = iota
	// ElemLiteral is a quoted token literal; during parsing it both
	// matches a token value and directs alternative selection.
	ElemLiteral
	// ElemRef is a reference '&sym' that turns the tree into a graph
	// (Figure 14: the web's link structure).
	ElemRef
	// ElemGroup is a parenthesised group with its own repetition bounds.
	ElemGroup
)

// Element is one item of a production rule's right-hand side, with the
// repetition bounds of the regular right part extension [LaL77]:
// {1,1} plain, {0,1} '?', {0,∞} '*', {1,∞} '+'.
type Element struct {
	Kind     ElementKind
	Name     string // symbol name or literal text
	Children []Element
	Min      int
	Max      int // Unbounded for '*' and '+'
}

// Optional reports whether the element's lower bound is zero.
func (e Element) Optional() bool { return e.Min == 0 }

func (e Element) String() string {
	var s string
	switch e.Kind {
	case ElemSymbol:
		s = e.Name
	case ElemLiteral:
		s = fmt.Sprintf("%q", e.Name)
	case ElemRef:
		s = "&" + e.Name
	case ElemGroup:
		parts := make([]string, len(e.Children))
		for i, c := range e.Children {
			parts[i] = c.String()
		}
		s = "(" + strings.Join(parts, " ") + ")"
	}
	switch {
	case e.Min == 0 && e.Max == 1:
		s += "?"
	case e.Min == 0 && e.Max == Unbounded:
		s += "*"
	case e.Min == 1 && e.Max == Unbounded:
		s += "+"
	}
	return s
}

// Rule is one production alternative: LHS -> RHS.
type Rule struct {
	LHS  string
	RHS  []Element
	Line int
}

func (r *Rule) String() string {
	parts := make([]string, len(r.RHS))
	for i, e := range r.RHS {
		parts[i] = e.String()
	}
	return r.LHS + " : " + strings.Join(parts, " ") + " ;"
}

// Path is a dotted parse-tree path such as "begin.frameNo", used as
// detector parameter and inside whitebox expressions. Paths can only
// refer to preceding symbols, which gives the grammar its limited
// context sensitivity.
type Path []string

func (p Path) String() string { return strings.Join(p, ".") }

// Head returns the first path component.
func (p Path) Head() string { return p[0] }

// DetectorKind distinguishes the two detector flavours of the paper.
type DetectorKind int

const (
	// Blackbox detectors are implemented outside the grammar (in Go, or
	// behind a remote protocol); only input paths and output rules are
	// known.
	Blackbox DetectorKind = iota
	// Whitebox detectors are boolean predicates over the parse tree,
	// fully specified inside the grammar.
	Whitebox
)

// Detector is a declared detector symbol.
type Detector struct {
	Name     string
	Kind     DetectorKind
	Protocol string // "" for linked-in; "xml-rpc", "corba", "system" for external
	Params   []Path // blackbox input paths
	Pred     Expr   // whitebox predicate

	// Special companion detectors (paper: init/final handle library
	// setup, begin/end run per symbol occurrence).
	HasInit, HasFinal, HasBegin, HasEnd bool

	Line int
}

// Atom is a terminal symbol declaration with its ADT.
type Atom struct {
	Name string
	Type string // "str", "int", "flt", "bit", or a declared ADT such as "url"
	Line int
}

// Grammar is a parsed and validated feature grammar
// G = (V, D, T, S, P).
type Grammar struct {
	Name      string // from %module, if present
	Start     string
	StartArgs []Path // minimum token set needed to start parsing

	ADTs      map[string]bool
	Atoms     map[string]*Atom
	Detectors map[string]*Detector

	Rules   []*Rule
	BySym   map[string][]*Rule
	symbols map[string]bool // every name mentioned anywhere
}

// IsAtom reports whether name is a declared terminal.
func (g *Grammar) IsAtom(name string) bool { _, ok := g.Atoms[name]; return ok }

// IsDetector reports whether name is a declared detector.
func (g *Grammar) IsDetector(name string) bool { _, ok := g.Detectors[name]; return ok }

// IsVariable reports whether name is a non-detector symbol with rules.
func (g *Grammar) IsVariable(name string) bool {
	if g.IsDetector(name) || g.IsAtom(name) {
		return false
	}
	return len(g.BySym[name]) > 0
}

// Alternatives returns the production alternatives for a symbol.
func (g *Grammar) Alternatives(sym string) []*Rule { return g.BySym[sym] }

// Symbols returns all symbol names in deterministic order: start
// symbol first, then rule LHSs in declaration order, then remaining
// atoms/detectors in declaration order.
func (g *Grammar) Symbols() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	add(g.Start)
	for _, r := range g.Rules {
		add(r.LHS)
		walkElements(r.RHS, func(e Element) {
			if e.Kind == ElemSymbol || e.Kind == ElemRef {
				add(e.Name)
			}
		})
	}
	for _, a := range g.Atoms {
		add(a.Name)
	}
	for _, d := range g.Detectors {
		add(d.Name)
	}
	return out
}

// walkElements applies f to every element, recursing into groups.
func walkElements(els []Element, f func(Element)) {
	for _, e := range els {
		f(e)
		if e.Kind == ElemGroup {
			walkElements(e.Children, f)
		}
	}
}

// --- Whitebox expression AST ---

// Expr is a whitebox predicate expression.
type Expr interface {
	exprNode()
	String() string
}

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators of the expression language.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Operand is a comparison operand: a path, a number or a string.
type Operand struct {
	Path   Path // non-nil when the operand is a tree path
	Num    float64
	Str    string
	IsNum  bool
	IsStr  bool
	Negate bool // unary minus on a number
}

func (o Operand) String() string {
	switch {
	case o.IsNum:
		if o.Negate {
			return fmt.Sprintf("-%g", o.Num)
		}
		return fmt.Sprintf("%g", o.Num)
	case o.IsStr:
		return fmt.Sprintf("%q", o.Str)
	default:
		return o.Path.String()
	}
}

// Value returns the numeric value including sign.
func (o Operand) Value() float64 {
	if o.Negate {
		return -o.Num
	}
	return o.Num
}

// Cmp is a binary comparison.
type Cmp struct {
	Op          CmpOp
	Left, Right Operand
}

func (*Cmp) exprNode()        {}
func (c *Cmp) String() string { return c.Left.String() + " " + string(c.Op) + " " + c.Right.String() }

// PathTruth is a bare path used as a boolean (a bit atom).
type PathTruth struct{ Path Path }

func (*PathTruth) exprNode()        {}
func (p *PathTruth) String() string { return p.Path.String() }

// And is logical conjunction.
type And struct{ L, R Expr }

func (*And) exprNode()        {}
func (a *And) String() string { return "(" + a.L.String() + " && " + a.R.String() + ")" }

// Or is logical disjunction.
type Or struct{ L, R Expr }

func (*Or) exprNode()        {}
func (o *Or) String() string { return "(" + o.L.String() + " || " + o.R.String() + ")" }

// Not is logical negation.
type Not struct{ E Expr }

func (*Not) exprNode()        {}
func (n *Not) String() string { return "!" + n.E.String() }

// QuantKind enumerates the paper's quantifiers.
type QuantKind string

// Quantifiers supported by the language: some (∃), all (∀) and one
// (exactly one).
const (
	QuantSome QuantKind = "some"
	QuantAll  QuantKind = "all"
	QuantOne  QuantKind = "one"
)

// Quant is a quantified sub-expression over the nodes matching Over,
// e.g. some[tennis.frame](player.yPos <= 170.0).
type Quant struct {
	Kind QuantKind
	Over Path
	Body Expr
}

func (*Quant) exprNode() {}
func (q *Quant) String() string {
	return string(q.Kind) + "[" + q.Over.String() + "](" + q.Body.String() + ")"
}

// ExprPaths collects every path mentioned in an expression; the
// dependency graph derives parameter dependencies of whitebox
// detectors from these.
func ExprPaths(e Expr) []Path {
	var out []Path
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case *Cmp:
			if t.Left.Path != nil {
				out = append(out, t.Left.Path)
			}
			if t.Right.Path != nil {
				out = append(out, t.Right.Path)
			}
		case *PathTruth:
			out = append(out, t.Path)
		case *And:
			walk(t.L)
			walk(t.R)
		case *Or:
			walk(t.L)
			walk(t.R)
		case *Not:
			walk(t.E)
		case *Quant:
			out = append(out, t.Over)
			walk(t.Body)
		}
	}
	walk(e)
	return out
}
