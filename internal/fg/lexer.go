// Package fg implements the feature grammar language of the Acoi
// system [KNW98, WSK99, SWK99], the core of the paper's logical level.
// A feature grammar G = (V, D, T, S, P) is a context-free grammar
// extended with a set D of detector symbols bound to feature
// extraction algorithms. The package provides the language parser,
// static validation and the dependency graph (sibling, rule and
// parameter dependencies, Figure 8) the Feature Detector Scheduler
// reasons over.
package fg

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct
)

// token is one lexical token with its source line for diagnostics.
type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer tokenizes feature grammar source text.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex splits src into tokens. Identifiers may contain '-' when
// followed by a letter or digit (the protocol prefix "xml-rpc"), '_'
// anywhere, and the multi-character operators of the whitebox
// expression language are recognised greedily.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peek(1) == '/':
			l.skipLine()
		case c == '#':
			l.skipLine()
		case c == '/' && l.peek(1) == '*':
			if err := l.skipBlockComment(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() error {
	start := l.line
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
		}
		if l.src[l.pos] == '*' && l.peek(1) == '/' {
			l.pos += 2
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("fg: line %d: unterminated block comment", start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isIdentPart(c) {
			l.pos++
			continue
		}
		// Allow '-' inside identifiers when followed by an ident char
		// ("xml-rpc"), but not a trailing '-'.
		if c == '-' && l.pos+1 < len(l.src) && isIdentPart(l.src[l.pos+1]) {
			l.pos += 2
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tIdent, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tNumber, text: l.src[start:l.pos], line: l.line})
}

func (l *lexer) lexString() error {
	startLine := l.line
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.toks = append(l.toks, token{kind: tString, text: sb.String(), line: startLine})
			return nil
		case '\\':
			if l.pos+1 < len(l.src) {
				l.pos++
				sb.WriteByte(l.src[l.pos])
				l.pos++
				continue
			}
			return fmt.Errorf("fg: line %d: dangling escape", l.line)
		case '\n':
			return fmt.Errorf("fg: line %d: newline in string literal", startLine)
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("fg: line %d: unterminated string literal", startLine)
}

// twoCharPuncts are the multi-character operators, tried before
// single-character ones.
var twoCharPuncts = []string{"::", "==", "!=", "<=", ">=", "&&", "||"}

var singlePuncts = "%:;,()?*+&.<>![]|="

func (l *lexer) lexPunct() error {
	rest := l.src[l.pos:]
	for _, p := range twoCharPuncts {
		if strings.HasPrefix(rest, p) {
			l.toks = append(l.toks, token{kind: tPunct, text: p, line: l.line})
			l.pos += len(p)
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.IndexByte(singlePuncts, c) >= 0 {
		l.toks = append(l.toks, token{kind: tPunct, text: string(c), line: l.line})
		l.pos++
		return nil
	}
	return fmt.Errorf("fg: line %d: unexpected character %q", l.line, string(c))
}
