package monetxml

import (
	"strings"

	"dlsearch/internal/bat"
)

// EdgeStore is the generic edge-table baseline mapping the paper
// contrasts the Monet transform with: one global node table, one
// parent table and one attribute heap, independent of document
// structure. Path expressions must be evaluated by repeated
// child→parent joins with per-node tag checks instead of a single
// scan over a path-named relation. Experiment E09 benchmarks the two.
type EdgeStore struct {
	seq    *bat.Sequence
	tags   *bat.BAT // node oid × tag ("" for text nodes)
	parent *bat.BAT // child oid × parent oid
	rank   *bat.BAT // node oid × sibling rank
	text   *bat.BAT // text node oid × character data

	attrOwner *bat.BAT // attr oid × element oid
	attrName  *bat.BAT // attr oid × name
	attrValue *bat.BAT // attr oid × value

	roots []bat.OID
}

// NewEdgeStore returns an empty edge-table store.
func NewEdgeStore() *EdgeStore {
	return &EdgeStore{
		seq:       bat.NewSequence(),
		tags:      bat.New("tags", bat.KindString),
		parent:    bat.New("parent", bat.KindOID),
		rank:      bat.New("rank", bat.KindInt),
		text:      bat.New("text", bat.KindString),
		attrOwner: bat.New("attrOwner", bat.KindOID),
		attrName:  bat.New("attrName", bat.KindString),
		attrValue: bat.New("attrValue", bat.KindString),
	}
}

// LoadNode inserts a Node tree and returns the root oid.
func (e *EdgeStore) LoadNode(n *Node) bat.OID {
	root := e.insert(n, bat.NilOID, 0)
	e.roots = append(e.roots, root)
	return root
}

func (e *EdgeStore) insert(n *Node, parent bat.OID, rank int64) bat.OID {
	oid := e.seq.Next()
	if n.IsText() {
		e.tags.AppendString(oid, "")
		e.text.AppendString(oid, strings.TrimSpace(n.Text))
	} else {
		e.tags.AppendString(oid, n.Tag)
	}
	if parent != bat.NilOID {
		e.parent.AppendOID(oid, parent)
	}
	e.rank.AppendInt(oid, rank)
	for _, a := range n.Attrs {
		ao := e.seq.Next()
		e.attrOwner.AppendOID(ao, oid)
		e.attrName.AppendString(ao, a.Name)
		e.attrValue.AppendString(ao, a.Value)
	}
	r := int64(0)
	for _, c := range n.Children {
		if c.IsText() && strings.TrimSpace(c.Text) == "" {
			continue
		}
		e.insert(c, oid, r)
		r++
	}
	return oid
}

// NodesAt evaluates an absolute path expression "a/b/c" by selecting
// all nodes tagged with the final step and walking parent chains,
// checking each ancestor's tag — the join-heavy plan a generic mapping
// forces.
func (e *EdgeStore) NodesAt(expr string) []bat.OID {
	steps := strings.Split(strings.TrimPrefix(expr, "/"), "/")
	if len(steps) == 0 {
		return nil
	}
	last := steps[len(steps)-1]
	candidates := e.tags.HeadsOfString(last)
	var out []bat.OID
	for _, c := range candidates {
		if e.matchesPath(c, steps) {
			out = append(out, c)
		}
	}
	return out
}

func (e *EdgeStore) matchesPath(oid bat.OID, steps []string) bool {
	cur := oid
	for i := len(steps) - 1; i >= 0; i-- {
		tag, ok := e.tags.StringOfHead(cur)
		if !ok || (steps[i] != "*" && tag != steps[i]) {
			return false
		}
		parents := e.parent.TailsOfHead(cur)
		if i == 0 {
			return len(parents) == 0 // must be a root
		}
		if len(parents) == 0 {
			return false
		}
		cur = parents[0]
	}
	return true
}

// AttrOf returns the value of the named attribute of the given
// element; three scans/joins in the generic mapping versus one hash
// lookup in the Monet transform.
func (e *EdgeStore) AttrOf(oid bat.OID, name string) (string, bool) {
	for _, ao := range e.attrOwner.HeadsOfOID(oid) {
		if n, ok := e.attrName.StringOfHead(ao); ok && n == name {
			return e.attrValue.StringOfHead(ao)
		}
	}
	return "", false
}

// TextOf returns the concatenated character data directly below oid.
func (e *EdgeStore) TextOf(oid bat.OID) string {
	var sb strings.Builder
	for _, c := range e.parent.HeadsOfOID(oid) {
		if v, ok := e.text.StringOfHead(c); ok {
			sb.WriteString(v)
		}
	}
	return sb.String()
}

// Roots returns the root oids of all loaded documents.
func (e *EdgeStore) Roots() []bat.OID { return append([]bat.OID(nil), e.roots...) }

// NodeCount returns the number of nodes stored.
func (e *EdgeStore) NodeCount() int { return e.tags.Len() }
