package monetxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dlsearch/internal/bat"
)

// PCDataTag is the synthetic tag of character-data nodes: the paper
// models character data as a special attribute of cdata nodes.
const PCDataTag = "pcdata"

// Relation name suffixes. Genuine XML attribute names cannot contain
// '*', so the typed-value suffixes never collide with A relations.
const (
	rankSuffix  = "[rank]"
	cdataSuffix = "[cdata]"
	fltSuffix   = "[*flt]"
	intSuffix   = "[*int]"
	bitSuffix   = "[*bit]"
)

// Reserved relation names; '$' is invalid in XML names so they cannot
// collide with path-derived relation names.
const (
	relDocs = "$docs" // doc-oid × source url
	relRoot = "$root" // doc-oid × root-node-oid
	relSys  = "$sys"  // root-node-oid × root tag (paper: insert(sys, <o1, image>))
)

// DocID identifies a loaded document.
type DocID = bat.OID

// SchemaNode is a node of the schema tree (Figure 12): one node per
// distinct root-to-element path, holding the tag, the canonical path
// (also the name of its edge relation) and its children. The bulkloader
// navigates this tree instead of hashing complete paths.
type SchemaNode struct {
	Tag    string
	Path   string
	Parent *SchemaNode

	children   map[string]*SchemaNode
	childOrder []string
	attrs      map[string]bool
	attrOrder  []string
}

// Child returns the child schema node for tag, or nil.
func (sn *SchemaNode) Child(tag string) *SchemaNode {
	if sn.children == nil {
		return nil
	}
	return sn.children[tag]
}

// Children returns the child schema nodes in first-seen order.
func (sn *SchemaNode) Children() []*SchemaNode {
	out := make([]*SchemaNode, 0, len(sn.childOrder))
	for _, t := range sn.childOrder {
		out = append(out, sn.children[t])
	}
	return out
}

// AttrNames returns the attribute names seen at this path, in
// first-seen order.
func (sn *SchemaNode) AttrNames() []string { return append([]string(nil), sn.attrOrder...) }

// TypeOracle optionally assigns a typed ADT to the character data of
// elements at a given path. The feature-grammar level supplies one so
// that atoms declared `%atom flt yPos` are additionally stored in
// typed relations the query engine can range-scan.
type TypeOracle func(elemPath string) (bat.Kind, bool)

// BulkloadStats records the cost metrics of experiment E08.
type BulkloadStats struct {
	Documents     int // documents loaded
	Nodes         int // element + text nodes inserted
	Inserts       int // association insert operations executed
	MaxStackDepth int // maximum live stack frames: the O(height) bound
}

// Store is a Monet-transform database instance over a bat.Store.
type Store struct {
	Bats *bat.Store

	roots     map[string]*SchemaNode
	rootOrder []string
	oracle    TypeOracle
	stats     BulkloadStats
}

// NewStore returns an empty Monet XML store.
func NewStore() *Store {
	s := &Store{Bats: bat.NewStore(), roots: make(map[string]*SchemaNode)}
	s.Bats.GetOrCreate(relDocs, bat.KindString)
	s.Bats.GetOrCreate(relRoot, bat.KindOID)
	s.Bats.GetOrCreate(relSys, bat.KindString)
	return s
}

// SetTypeOracle installs the ADT oracle used for typed atom storage.
func (s *Store) SetTypeOracle(o TypeOracle) { s.oracle = o }

// Stats returns bulkload statistics accumulated so far.
func (s *Store) Stats() BulkloadStats { return s.stats }

// rootSchema returns (creating if needed) the schema node for a root tag.
func (s *Store) rootSchema(tag string) *SchemaNode {
	if sn, ok := s.roots[tag]; ok {
		return sn
	}
	sn := &SchemaNode{Tag: tag, Path: tag}
	s.roots[tag] = sn
	s.rootOrder = append(s.rootOrder, tag)
	return sn
}

// ensureChild returns (creating if needed) the child schema node; this
// is the "look at the sons of the current context" step of the paper's
// bulkload, replacing full-path hashing.
func (s *Store) ensureChild(sn *SchemaNode, tag string) *SchemaNode {
	if c := sn.Child(tag); c != nil {
		return c
	}
	c := &SchemaNode{Tag: tag, Path: sn.Path + "/" + tag, Parent: sn}
	if sn.children == nil {
		sn.children = make(map[string]*SchemaNode)
	}
	sn.children[tag] = c
	sn.childOrder = append(sn.childOrder, tag)
	return c
}

func (sn *SchemaNode) noteAttr(name string) {
	if sn.attrs == nil {
		sn.attrs = make(map[string]bool)
	}
	if !sn.attrs[name] {
		sn.attrs[name] = true
		sn.attrOrder = append(sn.attrOrder, name)
	}
}

// frame is a live bulkload stack frame.
type frame struct {
	sn       *SchemaNode
	oid      bat.OID
	nextRank int64
}

// Load bulkloads one XML document from r in a single SAX-style pass,
// keeping only O(height) state. It returns the new document's id.
func (s *Store) Load(url string, r io.Reader) (DocID, error) {
	dec := xml.NewDecoder(r)
	var (
		stack []frame
		doc   DocID
		done  bool
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("monetxml: load %s: %w", url, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if done {
				return 0, fmt.Errorf("monetxml: load %s: multiple roots", url)
			}
			var sn *SchemaNode
			var oid bat.OID
			if len(stack) == 0 {
				doc, sn, oid = s.beginDocument(url, t.Name.Local)
			} else {
				top := &stack[len(stack)-1]
				sn, oid = s.insertElement(top, t.Name.Local)
			}
			for _, a := range t.Attr {
				s.insertAttr(sn, oid, a.Name.Local, a.Value)
			}
			stack = append(stack, frame{sn: sn, oid: oid})
			if len(stack) > s.stats.MaxStackDepth {
				s.stats.MaxStackDepth = len(stack)
			}
		case xml.EndElement:
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				done = true
			}
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			s.insertText(&stack[len(stack)-1], text)
		}
	}
	if !done {
		return 0, fmt.Errorf("monetxml: load %s: no root element", url)
	}
	s.stats.Documents++
	return doc, nil
}

// LoadNode inserts an already materialised Node tree; the conceptual
// level and the FDE use this to pass their XML documents on to the
// physical level.
func (s *Store) LoadNode(url string, n *Node) (DocID, error) {
	if n == nil || n.IsText() {
		return 0, fmt.Errorf("monetxml: LoadNode: not an element")
	}
	doc, sn, oid := s.beginDocument(url, n.Tag)
	for _, a := range n.Attrs {
		s.insertAttr(sn, oid, a.Name, a.Value)
	}
	f := frame{sn: sn, oid: oid}
	if err := s.loadChildren(&f, n, 1); err != nil {
		return 0, err
	}
	s.stats.Documents++
	return doc, nil
}

func (s *Store) loadChildren(parent *frame, n *Node, depth int) error {
	if depth+1 > s.stats.MaxStackDepth {
		s.stats.MaxStackDepth = depth + 1
	}
	for _, c := range n.Children {
		if c.IsText() {
			if strings.TrimSpace(c.Text) == "" {
				continue
			}
			s.insertText(parent, strings.TrimSpace(c.Text))
			continue
		}
		sn, oid := s.insertElement(parent, c.Tag)
		for _, a := range c.Attrs {
			s.insertAttr(sn, oid, a.Name, a.Value)
		}
		f := frame{sn: sn, oid: oid}
		if err := s.loadChildren(&f, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// beginDocument registers a new document with a root element of the
// given tag and returns (doc, root schema node, root oid).
func (s *Store) beginDocument(url, tag string) (DocID, *SchemaNode, bat.OID) {
	doc := s.Bats.Seq().Next()
	oid := s.Bats.Seq().Next()
	sn := s.rootSchema(tag)
	s.Bats.Get(relDocs).AppendString(doc, url)
	s.Bats.Get(relRoot).AppendOID(doc, oid)
	s.Bats.Get(relSys).AppendString(oid, tag)
	// R(tag): All Documents -> root instance (Figure 12, R1).
	s.Bats.GetOrCreate(sn.Path, bat.KindOID).AppendOID(doc, oid)
	s.stats.Nodes++
	s.stats.Inserts += 4
	return doc, sn, oid
}

// insertElement appends a child element below the parent frame and
// returns its schema node and oid.
func (s *Store) insertElement(parent *frame, tag string) (*SchemaNode, bat.OID) {
	sn := s.ensureChild(parent.sn, tag)
	oid := s.Bats.Seq().Next()
	s.Bats.GetOrCreate(sn.Path, bat.KindOID).AppendOID(parent.oid, oid)
	s.Bats.GetOrCreate(sn.Path+rankSuffix, bat.KindInt).AppendInt(oid, parent.nextRank)
	parent.nextRank++
	s.stats.Nodes++
	s.stats.Inserts += 2
	return sn, oid
}

func (s *Store) insertAttr(sn *SchemaNode, oid bat.OID, name, value string) {
	sn.noteAttr(name)
	s.Bats.GetOrCreate(sn.Path+"["+name+"]", bat.KindString).AppendString(oid, value)
	s.stats.Inserts++
}

// insertText appends a pcdata node below the parent frame, storing its
// character data as the special cdata attribute. If the type oracle
// assigns an ADT to the parent element's path, a typed copy keyed by
// the parent element's oid is stored as well.
func (s *Store) insertText(parent *frame, text string) {
	sn := s.ensureChild(parent.sn, PCDataTag)
	oid := s.Bats.Seq().Next()
	s.Bats.GetOrCreate(sn.Path, bat.KindOID).AppendOID(parent.oid, oid)
	s.Bats.GetOrCreate(sn.Path+rankSuffix, bat.KindInt).AppendInt(oid, parent.nextRank)
	parent.nextRank++
	s.Bats.GetOrCreate(sn.Path+cdataSuffix, bat.KindString).AppendString(oid, text)
	s.stats.Nodes++
	s.stats.Inserts += 3
	if s.oracle == nil {
		return
	}
	kind, ok := s.oracle(parent.sn.Path)
	if !ok {
		return
	}
	switch kind {
	case bat.KindFloat:
		if v, err := strconv.ParseFloat(text, 64); err == nil {
			s.Bats.GetOrCreate(parent.sn.Path+fltSuffix, bat.KindFloat).AppendFloat(parent.oid, v)
			s.stats.Inserts++
		}
	case bat.KindInt:
		if v, err := strconv.ParseInt(text, 10, 64); err == nil {
			s.Bats.GetOrCreate(parent.sn.Path+intSuffix, bat.KindInt).AppendInt(parent.oid, v)
			s.stats.Inserts++
		}
	case bat.KindBool:
		if v, err := strconv.ParseBool(text); err == nil {
			s.Bats.GetOrCreate(parent.sn.Path+bitSuffix, bat.KindBool).AppendBool(parent.oid, v)
			s.stats.Inserts++
		}
	}
}

// Docs returns the ids of all loaded documents in load order.
func (s *Store) Docs() []DocID { return s.Bats.Get(relDocs).Heads() }

// DocURL returns the source URL of a document.
func (s *Store) DocURL(doc DocID) (string, bool) {
	return s.Bats.Get(relDocs).StringOfHead(doc)
}

// DocByURL returns the most recently loaded document with the given URL.
func (s *Store) DocByURL(url string) (DocID, bool) {
	heads := s.Bats.Get(relDocs).HeadsOfString(url)
	if len(heads) == 0 {
		return 0, false
	}
	return heads[len(heads)-1], true
}

// RootOf returns the root node oid and root tag of a document.
func (s *Store) RootOf(doc DocID) (bat.OID, string, bool) {
	oid, ok := rootOID(s, doc)
	if !ok {
		return 0, "", false
	}
	tag, _ := s.Bats.Get(relSys).StringOfHead(oid)
	return oid, tag, true
}

func rootOID(s *Store, doc DocID) (bat.OID, bool) {
	tails := s.Bats.Get(relRoot).TailsOfHead(doc)
	if len(tails) == 0 {
		return 0, false
	}
	return tails[0], true
}

// Relation returns the named relation (R(path)), or nil.
func (s *Store) Relation(name string) *bat.BAT { return s.Bats.Get(name) }

// SchemaRoots returns the root schema nodes in first-seen order.
func (s *Store) SchemaRoots() []*SchemaNode {
	out := make([]*SchemaNode, 0, len(s.rootOrder))
	for _, t := range s.rootOrder {
		out = append(out, s.roots[t])
	}
	return out
}

// SchemaNodeAt returns the schema node with the given canonical path,
// or nil. Paths are slash-separated tags, e.g. "image/colors".
func (s *Store) SchemaNodeAt(path string) *SchemaNode {
	parts := strings.Split(path, "/")
	sn := s.roots[parts[0]]
	for _, p := range parts[1:] {
		if sn == nil {
			return nil
		}
		sn = sn.Child(p)
	}
	return sn
}

// PathSummary returns the canonical paths of all schema nodes in
// depth-first, first-seen order. This is the paper's Path Summary,
// central to the query engine.
func (s *Store) PathSummary() []string {
	var out []string
	var walk func(*SchemaNode)
	walk = func(sn *SchemaNode) {
		out = append(out, sn.Path)
		for _, c := range sn.Children() {
			walk(c)
		}
	}
	for _, t := range s.rootOrder {
		walk(s.roots[t])
	}
	return out
}

// RelationNames returns the names of all materialised relations sorted
// lexicographically (R1..Rn of Figure 12, plus bookkeeping relations).
func (s *Store) RelationNames() []string {
	names := s.Bats.Names()
	sort.Strings(names)
	return names
}

// Reconstruct applies the inverse mapping Mt⁻¹ and returns a Node tree
// isomorphic to the originally loaded document.
func (s *Store) Reconstruct(doc DocID) (*Node, error) {
	oid, tag, ok := s.RootOf(doc)
	if !ok {
		return nil, fmt.Errorf("monetxml: unknown document %d", doc)
	}
	sn := s.roots[tag]
	if sn == nil {
		return nil, fmt.Errorf("monetxml: no schema for root %q", tag)
	}
	return s.reconstruct(sn, oid), nil
}

// ReconstructSubtree rebuilds the subtree rooted at the node with the
// given schema path and oid.
func (s *Store) ReconstructSubtree(path string, oid bat.OID) (*Node, error) {
	sn := s.SchemaNodeAt(path)
	if sn == nil {
		return nil, fmt.Errorf("monetxml: unknown path %q", path)
	}
	return s.reconstruct(sn, oid), nil
}

type rankedChild struct {
	sn   *SchemaNode
	oid  bat.OID
	rank int64
}

func (s *Store) reconstruct(sn *SchemaNode, oid bat.OID) *Node {
	if sn.Tag == PCDataTag {
		text, _ := s.Bats.Get(sn.Path + cdataSuffix).StringOfHead(oid)
		return TextNode(text)
	}
	n := &Node{Tag: sn.Tag}
	for _, name := range sn.attrOrder {
		rel := s.Bats.Get(sn.Path + "[" + name + "]")
		if rel == nil {
			continue
		}
		if v, ok := rel.StringOfHead(oid); ok {
			n.Attrs = append(n.Attrs, Attr{Name: name, Value: v})
		}
	}
	var kids []rankedChild
	for _, c := range sn.Children() {
		edge := s.Bats.Get(c.Path)
		if edge == nil {
			continue
		}
		rank := s.Bats.Get(c.Path + rankSuffix)
		for _, child := range edge.TailsOfHead(oid) {
			r := int64(0)
			if rank != nil {
				r, _ = rank.IntOfHead(child)
			}
			kids = append(kids, rankedChild{sn: c, oid: child, rank: r})
		}
	}
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].rank < kids[j].rank })
	for _, k := range kids {
		n.Children = append(n.Children, s.reconstruct(k.sn, k.oid))
	}
	return n
}

// DeleteSubtree removes the node with the given schema path and oid,
// its incoming edge and its whole subtree from all relations, and
// reports the number of nodes removed. The FDS uses this to invalidate
// partial parse trees before an incremental re-parse.
func (s *Store) DeleteSubtree(path string, oid bat.OID) int {
	sn := s.SchemaNodeAt(path)
	if sn == nil {
		return 0
	}
	// Remove the edge pointing at this node.
	if edge := s.Bats.Get(sn.Path); edge != nil {
		edge.DeleteTailOID(oid)
	}
	return s.deleteRec(sn, oid)
}

func (s *Store) deleteRec(sn *SchemaNode, oid bat.OID) int {
	n := 1
	for _, c := range sn.Children() {
		edge := s.Bats.Get(c.Path)
		if edge == nil {
			continue
		}
		for _, child := range edge.TailsOfHead(oid) {
			n += s.deleteRec(c, child)
		}
		edge.Delete(oid)
	}
	if rank := s.Bats.Get(sn.Path + rankSuffix); rank != nil {
		rank.Delete(oid)
	}
	for _, name := range sn.attrOrder {
		if rel := s.Bats.Get(sn.Path + "[" + name + "]"); rel != nil {
			rel.Delete(oid)
		}
	}
	for _, suffix := range []string{cdataSuffix, fltSuffix, intSuffix, bitSuffix} {
		if rel := s.Bats.Get(sn.Path + suffix); rel != nil {
			rel.Delete(oid)
		}
	}
	return n
}

// DeleteDoc removes a document and its whole tree.
func (s *Store) DeleteDoc(doc DocID) error {
	oid, tag, ok := s.RootOf(doc)
	if !ok {
		return fmt.Errorf("monetxml: unknown document %d", doc)
	}
	sn := s.roots[tag]
	if edge := s.Bats.Get(sn.Path); edge != nil {
		edge.Delete(doc)
	}
	s.deleteRec(sn, oid)
	s.Bats.Get(relDocs).Delete(doc)
	s.Bats.Get(relRoot).Delete(doc)
	s.Bats.Get(relSys).Delete(oid)
	return nil
}

// InsertSubtree inserts the Node tree n as a new child of the element
// identified by (parentPath, parent) with the given sibling rank, and
// returns the new subtree root's oid. The FDS uses this for
// incremental parse-tree updates; the rank slot of a replaced subtree
// can be reused so document order is preserved.
func (s *Store) InsertSubtree(parentPath string, parent bat.OID, rank int64, n *Node) (bat.OID, error) {
	psn := s.SchemaNodeAt(parentPath)
	if psn == nil {
		return 0, fmt.Errorf("monetxml: unknown parent path %q", parentPath)
	}
	if n.IsText() {
		sn := s.ensureChild(psn, PCDataTag)
		oid := s.Bats.Seq().Next()
		s.Bats.GetOrCreate(sn.Path, bat.KindOID).AppendOID(parent, oid)
		s.Bats.GetOrCreate(sn.Path+rankSuffix, bat.KindInt).AppendInt(oid, rank)
		s.Bats.GetOrCreate(sn.Path+cdataSuffix, bat.KindString).AppendString(oid, strings.TrimSpace(n.Text))
		s.stats.Nodes++
		return oid, nil
	}
	sn := s.ensureChild(psn, n.Tag)
	oid := s.Bats.Seq().Next()
	s.Bats.GetOrCreate(sn.Path, bat.KindOID).AppendOID(parent, oid)
	s.Bats.GetOrCreate(sn.Path+rankSuffix, bat.KindInt).AppendInt(oid, rank)
	for _, a := range n.Attrs {
		s.insertAttr(sn, oid, a.Name, a.Value)
	}
	s.stats.Nodes++
	f := frame{sn: sn, oid: oid}
	if err := s.loadChildren(&f, n, 1); err != nil {
		return 0, err
	}
	return oid, nil
}

// NextRank returns one more than the highest sibling rank currently
// below the given element, i.e. the rank a newly appended child should
// receive.
func (s *Store) NextRank(path string, oid bat.OID) int64 {
	sn := s.SchemaNodeAt(path)
	if sn == nil {
		return 0
	}
	max := int64(-1)
	for _, c := range sn.Children() {
		edge := s.Bats.Get(c.Path)
		if edge == nil {
			continue
		}
		rank := s.Bats.Get(c.Path + rankSuffix)
		if rank == nil {
			continue
		}
		for _, child := range edge.TailsOfHead(oid) {
			if r, ok := rank.IntOfHead(child); ok && r > max {
				max = r
			}
		}
	}
	return max + 1
}
