package monetxml

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestEdgeStoreBasics(t *testing.T) {
	e := NewEdgeStore()
	n := MustParseNode(`<a x="1"><b>hello</b><b>world</b><c><b>deep</b></c></a>`)
	root := e.LoadNode(n)
	if len(e.Roots()) != 1 || e.Roots()[0] != root {
		t.Fatalf("Roots = %v", e.Roots())
	}
	if v, ok := e.AttrOf(root, "x"); !ok || v != "1" {
		t.Fatalf("AttrOf = %q,%v", v, ok)
	}
	if _, ok := e.AttrOf(root, "nope"); ok {
		t.Fatal("absent attribute found")
	}

	bs := e.NodesAt("a/b")
	if len(bs) != 2 {
		t.Fatalf("a/b count = %d, want 2 (deep b must not match)", len(bs))
	}
	deep := e.NodesAt("a/c/b")
	if len(deep) != 1 {
		t.Fatalf("a/c/b count = %d", len(deep))
	}
	if got := e.TextOf(deep[0]); got != "deep" {
		t.Fatalf("TextOf = %q", got)
	}
	if got := e.NodesAt("z/b"); len(got) != 0 {
		t.Fatalf("z/b should be empty, got %v", got)
	}
}

// TestEdgeStoreAgreesWithMonet is the correctness half of experiment
// E09: both mappings must return the same answers; the benchmark half
// measures the cost difference.
func TestEdgeStoreAgreesWithMonet(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ms := NewStore()
	es := NewEdgeStore()
	for i := 0; i < 40; i++ {
		tree := randomTree(rng, 4)
		if _, err := ms.LoadNode(fmt.Sprintf("u%d", i), tree); err != nil {
			t.Fatal(err)
		}
		es.LoadNode(tree)
	}
	exprs := []string{"a/b", "a/b/c", "b/a", "c/d", "a/a/a", "d/c/b/a"}
	for _, expr := range exprs {
		mres, err := ms.NodesAt(expr)
		if err != nil {
			t.Fatal(err)
		}
		eres := es.NodesAt(expr)
		if len(mres) != len(eres) {
			t.Fatalf("expr %q: monet=%d edge=%d", expr, len(mres), len(eres))
		}
	}
}

func TestEdgeStoreNodeCount(t *testing.T) {
	e := NewEdgeStore()
	e.LoadNode(MustParseNode(`<a><b>x</b></a>`))
	// a, b, text = 3
	if got := e.NodeCount(); got != 3 {
		t.Fatalf("NodeCount = %d", got)
	}
}
