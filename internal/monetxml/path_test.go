package monetxml

import (
	"strings"
	"testing"
)

func loadCorpus(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	docs := []string{
		`<article id="1"><title>Final</title><body>Seles wins the final</body></article>`,
		`<article id="2"><title>Semi</title><body>Hingis in the semi</body></article>`,
		`<profile name="Seles"><history>Winner 1996</history><stats><aces>10</aces></stats></profile>`,
	}
	for _, d := range docs {
		if _, err := s.Load("u", strings.NewReader(d)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestParsePath(t *testing.T) {
	pe, err := ParsePath("a/b/c")
	if err != nil || pe.Descendant || pe.Attr != "" || len(pe.Steps) != 3 {
		t.Fatalf("ParsePath(a/b/c) = %+v, %v", pe, err)
	}
	pe, err = ParsePath("//c[k]")
	if err != nil || !pe.Descendant || pe.Attr != "k" || len(pe.Steps) != 1 {
		t.Fatalf("ParsePath(//c[k]) = %+v, %v", pe, err)
	}
	pe, err = ParsePath("/a/b")
	if err != nil || pe.Descendant || len(pe.Steps) != 2 {
		t.Fatalf("ParsePath(/a/b) = %+v, %v", pe, err)
	}
	for _, bad := range []string{"", "a//b", "a[", "[x]"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) should fail", bad)
		}
	}
}

func TestNodesAtAbsolute(t *testing.T) {
	s := loadCorpus(t)
	oids, err := s.NodesAt("article/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(oids) != 2 {
		t.Fatalf("article/title count = %d", len(oids))
	}
	// Attribute expression must be rejected by NodesAt.
	if _, err := s.NodesAt("article[id]"); err == nil {
		t.Fatal("NodesAt with attr selector should fail")
	}
}

func TestNodesAtWildcardAndDescendant(t *testing.T) {
	s := loadCorpus(t)
	all, err := s.NodesAt("article/*")
	if err != nil {
		t.Fatal(err)
	}
	// title, body per article = 4 elements (pcdata children are not elements
	// but they are schema children; the wildcard matches them too).
	if len(all) < 4 {
		t.Fatalf("article/* count = %d", len(all))
	}
	aces, err := s.NodesAt("//aces")
	if err != nil {
		t.Fatal(err)
	}
	if len(aces) != 1 {
		t.Fatalf("//aces count = %d", len(aces))
	}
}

func TestValuesAt(t *testing.T) {
	s := loadCorpus(t)
	vals, err := s.ValuesAt("article/body")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "Seles wins the final" {
		t.Fatalf("ValuesAt = %v", vals)
	}
	ids, err := s.ValuesAt("article[id]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "1" || ids[1] != "2" {
		t.Fatalf("attr values = %v", ids)
	}
}

func TestAttrsAt(t *testing.T) {
	s := loadCorpus(t)
	pairs, err := s.AttrsAt("profile[name]")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Value != "Seles" {
		t.Fatalf("AttrsAt = %v", pairs)
	}
	if _, err := s.AttrsAt("profile"); err == nil {
		t.Fatal("AttrsAt without selector should fail")
	}
}

func TestTextOf(t *testing.T) {
	s := loadCorpus(t)
	hs, _ := s.NodesAt("profile/history")
	if len(hs) != 1 {
		t.Fatalf("history nodes = %v", hs)
	}
	if got := s.TextOf("profile/history", hs[0]); got != "Winner 1996" {
		t.Fatalf("TextOf = %q", got)
	}
	if got := s.TextOf("no/path", 1); got != "" {
		t.Fatalf("TextOf unknown path = %q", got)
	}
}

func TestParentOfAndDocOf(t *testing.T) {
	s := loadCorpus(t)
	aces, _ := s.NodesAt("profile/stats/aces")
	ppath, poid, ok := s.ParentOf("profile/stats/aces", aces[0])
	if !ok || ppath != "profile/stats" {
		t.Fatalf("ParentOf = %q,%v,%v", ppath, poid, ok)
	}
	doc, ok := s.DocOf("profile/stats/aces", aces[0])
	if !ok {
		t.Fatal("DocOf failed")
	}
	rec, err := s.Reconstruct(doc)
	if err != nil || rec.Tag != "profile" {
		t.Fatalf("DocOf resolved wrong doc: %v %v", rec, err)
	}
	// Root has no parent.
	roots, _ := s.NodesAt("profile")
	if _, _, ok := s.ParentOf("profile", roots[0]); ok {
		t.Fatal("root should have no parent")
	}
}

func TestMatchPathsMultipleRoots(t *testing.T) {
	s := loadCorpus(t)
	pe, _ := ParsePath("//pcdata")
	matches := s.MatchPaths(pe)
	if len(matches) < 4 {
		t.Fatalf("//pcdata matched %d schema nodes", len(matches))
	}
	for _, m := range matches {
		if m.Tag != PCDataTag {
			t.Fatalf("matched non-pcdata node %q", m.Path)
		}
	}
}
