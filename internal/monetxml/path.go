package monetxml

import (
	"fmt"
	"strings"

	"dlsearch/internal/bat"
)

// PathExpr is a parsed path expression over the path summary:
//
//	expr   := ["//"] step { "/" step } [ "[" attr "]" ]
//	step   := tag | "*"
//
// A leading "//" matches any schema path whose trailing steps equal
// the given steps (descendant-anywhere); otherwise steps are matched
// from a document root. "*" matches any tag at its position. A final
// "[attr]" selects the attribute relation of the matched path.
type PathExpr struct {
	Steps      []string
	Descendant bool
	Attr       string
}

// ParsePath parses a path expression.
func ParsePath(expr string) (PathExpr, error) {
	var pe PathExpr
	rest := expr
	if strings.HasPrefix(rest, "//") {
		pe.Descendant = true
		rest = rest[2:]
	} else {
		rest = strings.TrimPrefix(rest, "/")
	}
	if i := strings.IndexByte(rest, '['); i >= 0 {
		if !strings.HasSuffix(rest, "]") {
			return pe, fmt.Errorf("monetxml: malformed attribute selector in %q", expr)
		}
		pe.Attr = rest[i+1 : len(rest)-1]
		rest = rest[:i]
	}
	if rest == "" {
		return pe, fmt.Errorf("monetxml: empty path %q", expr)
	}
	pe.Steps = strings.Split(rest, "/")
	for _, s := range pe.Steps {
		if s == "" {
			return pe, fmt.Errorf("monetxml: empty step in %q", expr)
		}
	}
	return pe, nil
}

// stepsMatch reports whether the path's step sequence matches the
// expression steps (with "*" wildcards).
func stepsMatch(pathSteps, exprSteps []string) bool {
	if len(pathSteps) != len(exprSteps) {
		return false
	}
	for i := range exprSteps {
		if exprSteps[i] != "*" && exprSteps[i] != pathSteps[i] {
			return false
		}
	}
	return true
}

// MatchPaths returns the schema nodes whose canonical path matches the
// expression, in path-summary order. Because the path summary is tiny
// compared to the data, this resolution step is what makes arbitrary
// path expressions cheap: each match is then a single relation scan.
func (s *Store) MatchPaths(pe PathExpr) []*SchemaNode {
	var out []*SchemaNode
	var walk func(*SchemaNode, []string)
	walk = func(sn *SchemaNode, prefix []string) {
		steps := append(prefix, sn.Tag)
		if pe.Descendant {
			if len(steps) >= len(pe.Steps) && stepsMatch(steps[len(steps)-len(pe.Steps):], pe.Steps) {
				out = append(out, sn)
			}
		} else if stepsMatch(steps, pe.Steps) {
			out = append(out, sn)
		}
		for _, c := range sn.Children() {
			walk(c, steps)
		}
	}
	for _, r := range s.SchemaRoots() {
		walk(r, nil)
	}
	return out
}

// NodesAt evaluates a path expression and returns the oids of all
// matching element nodes. For a non-attribute expression each matched
// schema node costs exactly one scan of its edge relation — the
// semantic-clustering payoff of the Monet transform.
func (s *Store) NodesAt(expr string) ([]bat.OID, error) {
	pe, err := ParsePath(expr)
	if err != nil {
		return nil, err
	}
	if pe.Attr != "" {
		return nil, fmt.Errorf("monetxml: NodesAt on attribute expression %q", expr)
	}
	var out []bat.OID
	for _, sn := range s.MatchPaths(pe) {
		rel := s.Bats.Get(sn.Path)
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			out = append(out, rel.TailOID(i))
		}
	}
	return out, nil
}

// ValuesAt evaluates a path expression and returns the character data
// directly below each matching element, in storage order.
func (s *Store) ValuesAt(expr string) ([]string, error) {
	pe, err := ParsePath(expr)
	if err != nil {
		return nil, err
	}
	if pe.Attr != "" {
		pairs, err := s.AttrsAt(expr)
		if err != nil {
			return nil, err
		}
		out := make([]string, len(pairs))
		for i, p := range pairs {
			out[i] = p.Value
		}
		return out, nil
	}
	var out []string
	for _, sn := range s.MatchPaths(pe) {
		pc := sn.Child(PCDataTag)
		if pc == nil {
			continue
		}
		rel := s.Bats.Get(pc.Path + cdataSuffix)
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			out = append(out, rel.TailString(i))
		}
	}
	return out, nil
}

// AttrPair is an (element oid, attribute value) result of AttrsAt.
type AttrPair struct {
	OID   bat.OID
	Value string
}

// AttrsAt evaluates a path expression ending in an attribute selector
// and returns (oid, value) pairs.
func (s *Store) AttrsAt(expr string) ([]AttrPair, error) {
	pe, err := ParsePath(expr)
	if err != nil {
		return nil, err
	}
	if pe.Attr == "" {
		return nil, fmt.Errorf("monetxml: AttrsAt needs an attribute selector in %q", expr)
	}
	var out []AttrPair
	for _, sn := range s.MatchPaths(pe) {
		rel := s.Bats.Get(sn.Path + "[" + pe.Attr + "]")
		if rel == nil {
			continue
		}
		for i := 0; i < rel.Len(); i++ {
			out = append(out, AttrPair{OID: rel.Head(i), Value: rel.TailString(i)})
		}
	}
	return out, nil
}

// TextOf returns the character data directly below the element with
// the given schema path and oid.
func (s *Store) TextOf(path string, oid bat.OID) string {
	sn := s.SchemaNodeAt(path)
	if sn == nil {
		return ""
	}
	pc := sn.Child(PCDataTag)
	if pc == nil {
		return ""
	}
	edge := s.Bats.Get(pc.Path)
	val := s.Bats.Get(pc.Path + cdataSuffix)
	if edge == nil || val == nil {
		return ""
	}
	var sb strings.Builder
	for _, t := range edge.TailsOfHead(oid) {
		if v, ok := val.StringOfHead(t); ok {
			sb.WriteString(v)
		}
	}
	return sb.String()
}

// ParentOf returns the parent oid of the node at (path, oid) together
// with the parent's schema path; ok is false at a root.
func (s *Store) ParentOf(path string, oid bat.OID) (string, bat.OID, bool) {
	sn := s.SchemaNodeAt(path)
	if sn == nil || sn.Parent == nil {
		return "", 0, false
	}
	edge := s.Bats.Get(sn.Path)
	if edge == nil {
		return "", 0, false
	}
	heads := edge.HeadsOfOID(oid)
	if len(heads) == 0 {
		return "", 0, false
	}
	return sn.Parent.Path, heads[0], true
}

// DocOf walks from a node at (path, oid) up to its document root and
// returns the owning document id.
func (s *Store) DocOf(path string, oid bat.OID) (DocID, bool) {
	for {
		ppath, poid, ok := s.ParentOf(path, oid)
		if !ok {
			break
		}
		path, oid = ppath, poid
	}
	// oid is now a root node; the root edge relation maps doc -> root.
	sn := s.SchemaNodeAt(path)
	if sn == nil || sn.Parent != nil {
		return 0, false
	}
	rel := s.Bats.Get(sn.Path)
	if rel == nil {
		return 0, false
	}
	docs := rel.HeadsOfOID(oid)
	if len(docs) == 0 {
		return 0, false
	}
	return docs[0], true
}
