// Package monetxml implements the paper's physical level: the Monet
// transform, a DTD-less, document-dependent mapping of XML documents
// onto binary association tables named by root-to-node paths.
//
// The mapping follows Definition 1 of the paper: a document
// d = (V, E, r, labelE, labelA, rank) becomes Mt(d) = (r, E, A, T)
// where
//
//   - E stores parent-child edges in relations R(path(parent)/tag),
//   - A stores attribute values in relations R(path(node)[attr]),
//   - T stores sibling order in relations R(path(node)[rank]).
//
// Character data is modelled as a special attribute of pcdata nodes,
// exactly as in the paper. Encoding the full path into the relation
// name yields the semantic clustering that distinguishes this mapping
// from generic edge tables (see the EdgeStore baseline in this
// package) and makes the ubiquitous XML path expressions single-scan
// operations.
package monetxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is an ordered XML attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is an in-memory XML syntax-tree node, used by tests, by the
// authoring path of the conceptual level and by document
// reconstruction. An element node has a non-empty Tag; a text node has
// an empty Tag and its character data in Text.
type Node struct {
	Tag      string
	Attrs    []Attr
	Children []*Node
	Text     string
}

// IsText reports whether n is a character-data node.
func (n *Node) IsText() bool { return n.Tag == "" }

// Elem constructs an element node with the given children.
func Elem(tag string, children ...*Node) *Node {
	return &Node{Tag: tag, Children: children}
}

// TextNode constructs a character-data node.
func TextNode(s string) *Node { return &Node{Text: s} }

// WithAttr returns n after appending an attribute; it enables fluent
// construction in tests and generators.
func (n *Node) WithAttr(name, value string) *Node {
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return n
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first element child with the given tag, or nil.
func (n *Node) Child(tag string) *Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// ChildrenByTag returns all element children with the given tag.
func (n *Node) ChildrenByTag(tag string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Tag == tag {
			out = append(out, c)
		}
	}
	return out
}

// InnerText returns the concatenated character data directly below n.
func (n *Node) InnerText() string {
	var sb strings.Builder
	for _, c := range n.Children {
		if c.IsText() {
			sb.WriteString(c.Text)
		}
	}
	return sb.String()
}

// DeepText returns all character data in the subtree, concatenated in
// document order. Used by the IR indexer to flatten Hypertext values.
func (n *Node) DeepText() string {
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsText() {
			sb.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

// CountNodes returns the number of nodes (elements and text nodes) in
// the subtree rooted at n, including n.
func (n *Node) CountNodes() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.CountNodes()
	}
	return c
}

// Height returns the height of the subtree (a single node has height 1).
func (n *Node) Height() int {
	h := 0
	for _, ch := range n.Children {
		if ch.IsText() {
			continue
		}
		if hh := ch.Height(); hh > h {
			h = hh
		}
	}
	return h + 1
}

// Equal reports whether two trees are isomorphic: same tags, same
// attributes in order, same children in order, same (whitespace
// trimmed) character data. This is the isomorphism of Definition 1's
// inverse-mapping guarantee.
func (n *Node) Equal(m *Node) bool {
	if n.IsText() != m.IsText() {
		return false
	}
	if n.IsText() {
		return strings.TrimSpace(n.Text) == strings.TrimSpace(m.Text)
	}
	if n.Tag != m.Tag || len(n.Attrs) != len(m.Attrs) {
		return false
	}
	// XML attribute order is insignificant; compare as sorted sets.
	na := append([]Attr(nil), n.Attrs...)
	ma := append([]Attr(nil), m.Attrs...)
	sort.Slice(na, func(i, j int) bool { return na[i].Name < na[j].Name })
	sort.Slice(ma, func(i, j int) bool { return ma[i].Name < ma[j].Name })
	for i := range na {
		if na[i] != ma[i] {
			return false
		}
	}
	nc := n.meaningfulChildren()
	mc := m.meaningfulChildren()
	if len(nc) != len(mc) {
		return false
	}
	for i := range nc {
		if !nc[i].Equal(mc[i]) {
			return false
		}
	}
	return true
}

// meaningfulChildren drops whitespace-only text nodes, which the
// bulkloader also ignores.
func (n *Node) meaningfulChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsText() && strings.TrimSpace(c.Text) == "" {
			continue
		}
		out = append(out, c)
	}
	return out
}

// String renders the subtree as XML without a declaration header.
func (n *Node) String() string {
	var sb strings.Builder
	n.write(&sb)
	return sb.String()
}

func (n *Node) write(sb *strings.Builder) {
	if n.IsText() {
		xml.EscapeText(sb, []byte(n.Text)) //nolint:errcheck // strings.Builder never fails
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Tag)
	for _, a := range n.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteString(`="`)
		xml.EscapeText(sb, []byte(a.Value)) //nolint:errcheck
		sb.WriteString(`"`)
	}
	if len(n.Children) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range n.Children {
		c.write(sb)
	}
	sb.WriteString("</")
	sb.WriteString(n.Tag)
	sb.WriteByte('>')
}

// ParseNode parses an XML document into a Node tree (DOM-style; the
// full tree is materialised). The streaming bulkloader does not use
// this; it exists for tests, authoring and the DOM baseline of
// experiment E08.
func ParseNode(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("monetxml: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Tag: t.Name.Local}
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("monetxml: multiple roots")
				}
				root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("monetxml: unbalanced end tag %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			p := stack[len(stack)-1]
			p.Children = append(p.Children, TextNode(strings.TrimSpace(s)))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("monetxml: empty document")
	}
	return root, nil
}

// MustParseNode is ParseNode for tests and constants; it panics on error.
func MustParseNode(s string) *Node {
	n, err := ParseNode(strings.NewReader(s))
	if err != nil {
		panic(err)
	}
	return n
}

// SortedAttrNames returns the attribute names of n in sorted order;
// used for deterministic schema-tree reporting.
func (n *Node) SortedAttrNames() []string {
	names := make([]string, len(n.Attrs))
	for i, a := range n.Attrs {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
