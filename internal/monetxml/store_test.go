package monetxml

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dlsearch/internal/bat"
)

// figure9 is the example document of Figure 9 of the paper.
const figure9 = `<image key="18934" source="http://ausopen.org/seles.jpg">
  <date> 999010530 </date>
  <colors>
    <histogram> 0.399 0.277 0.344 </histogram>
    <saturation> 0.390 </saturation>
    <version> 0.8 </version>
  </colors>
</image>`

// TestFigure9to12MonetTransform reproduces experiment E05: loading the
// Figure 9 document must materialise exactly the relations R1..R12 of
// the schema tree in Figure 12 (modulo bookkeeping relations), and the
// inverse mapping must reproduce an isomorphic document.
func TestFigure9to12MonetTransform(t *testing.T) {
	s := NewStore()
	doc, err := s.Load("http://ausopen.org/seles.jpg.meta", strings.NewReader(figure9))
	if err != nil {
		t.Fatal(err)
	}

	// The paths of Figure 12's schema tree.
	wantPaths := []string{
		"image",
		"image/date",
		"image/date/pcdata",
		"image/colors",
		"image/colors/histogram",
		"image/colors/histogram/pcdata",
		"image/colors/saturation",
		"image/colors/saturation/pcdata",
		"image/colors/version",
		"image/colors/version/pcdata",
	}
	got := s.PathSummary()
	if len(got) != len(wantPaths) {
		t.Fatalf("path summary = %v, want %v", got, wantPaths)
	}
	for i := range wantPaths {
		if got[i] != wantPaths[i] {
			t.Fatalf("path %d = %q, want %q", i, got[i], wantPaths[i])
		}
	}

	// R2/R3: attribute relations.
	key := s.Relation("image[key]")
	if key == nil || key.Len() != 1 || key.TailString(0) != "18934" {
		t.Fatalf("R(image[key]) wrong: %v", key)
	}
	src := s.Relation("image[source]")
	if src == nil || src.Len() != 1 {
		t.Fatal("R(image[source]) missing")
	}

	// R1: All Documents -> image instance.
	r1 := s.Relation("image")
	if r1 == nil || r1.Len() != 1 || r1.Head(0) != doc {
		t.Fatalf("R(image) should map the document to its root")
	}

	// Character data of histogram via the cdata attribute relation.
	vals, err := s.ValuesAt("image/colors/histogram")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "0.399 0.277 0.344" {
		t.Fatalf("histogram cdata = %v", vals)
	}

	// Inverse mapping: isomorphic reconstruction (Definition 1).
	orig := MustParseNode(figure9)
	rec, err := s.Reconstruct(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(rec) {
		t.Fatalf("reconstruction not isomorphic:\norig: %s\nrec:  %s", orig, rec)
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	s := NewStore()
	if _, err := s.Load("u", strings.NewReader("")); err == nil {
		t.Fatal("empty document should fail")
	}
	if _, err := s.Load("u", strings.NewReader("<a></a><b></b>")); err == nil {
		t.Fatal("multiple roots should fail")
	}
	if _, err := s.Load("u", strings.NewReader("just text")); err == nil {
		t.Fatal("no root element should fail")
	}
}

func TestDocBookkeeping(t *testing.T) {
	s := NewStore()
	d1, err := s.Load("url1", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Load("url2", strings.NewReader("<a><b/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	docs := s.Docs()
	if len(docs) != 2 || docs[0] != d1 || docs[1] != d2 {
		t.Fatalf("Docs = %v", docs)
	}
	if u, ok := s.DocURL(d2); !ok || u != "url2" {
		t.Fatalf("DocURL = %q,%v", u, ok)
	}
	if got, ok := s.DocByURL("url1"); !ok || got != d1 {
		t.Fatalf("DocByURL = %v,%v", got, ok)
	}
	if _, ok := s.DocByURL("nope"); ok {
		t.Fatal("DocByURL of unknown url should fail")
	}
	if _, tag, ok := s.RootOf(d1); !ok || tag != "a" {
		t.Fatalf("RootOf = %q,%v", tag, ok)
	}
}

func TestLoadNodeEquivalentToLoad(t *testing.T) {
	src := `<profile name="Seles"><history>Winner <b>1996</b></history><video src="v.mpg"/></profile>`
	s1 := NewStore()
	d1, err := s1.Load("u", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	d2, err := s2.LoadNode("u", MustParseNode(src))
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s1.Reconstruct(d1)
	r2, _ := s2.Reconstruct(d2)
	if !r1.Equal(r2) {
		t.Fatalf("Load and LoadNode disagree:\n%s\n%s", r1, r2)
	}
}

// TestBulkloadMemoryHeight is experiment E08's invariant: the
// streaming bulkload keeps at most O(document height) live frames, in
// contrast to the DOM baseline which materialises every node.
func TestBulkloadMemoryHeight(t *testing.T) {
	var sb strings.Builder
	depth := 12
	width := 30
	sb.WriteString("<root>")
	for i := 0; i < width; i++ {
		for d := 0; d < depth; d++ {
			fmt.Fprintf(&sb, "<n%d>", d)
		}
		sb.WriteString("leaf")
		for d := depth - 1; d >= 0; d-- {
			fmt.Fprintf(&sb, "</n%d>", d)
		}
	}
	sb.WriteString("</root>")

	s := NewStore()
	if _, err := s.Load("u", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	wantDepth := depth + 1 // root + chain
	if st.MaxStackDepth != wantDepth {
		t.Fatalf("MaxStackDepth = %d, want %d (O(height), not O(nodes))", st.MaxStackDepth, wantDepth)
	}
	if st.Nodes < width*depth {
		t.Fatalf("Nodes = %d, expected at least %d", st.Nodes, width*depth)
	}
	if st.MaxStackDepth >= st.Nodes {
		t.Fatal("stack depth should be far below total node count")
	}
}

func TestTypeOracleTypedRelations(t *testing.T) {
	s := NewStore()
	s.SetTypeOracle(func(path string) (bat.Kind, bool) {
		switch path {
		case "player/yPos":
			return bat.KindFloat, true
		case "player/frameNo":
			return bat.KindInt, true
		case "player/netplay":
			return bat.KindBool, true
		}
		return 0, false
	})
	src := `<player><yPos>169.5</yPos><frameNo>42</frameNo><netplay>true</netplay><name>Seles</name></player>`
	if _, err := s.Load("u", strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	f := s.Relation("player/yPos[*flt]")
	if f == nil || f.Len() != 1 || f.TailFloat(0) != 169.5 {
		t.Fatalf("typed float relation wrong: %v", f)
	}
	i := s.Relation("player/frameNo[*int]")
	if i == nil || i.Len() != 1 || i.TailInt(0) != 42 {
		t.Fatalf("typed int relation wrong: %v", i)
	}
	b := s.Relation("player/netplay[*bit]")
	if b == nil || b.Len() != 1 || !b.TailBool(0) {
		t.Fatalf("typed bool relation wrong: %v", b)
	}
	if s.Relation("player/name[*flt]") != nil {
		t.Fatal("untyped path must not get a typed relation")
	}
}

func TestTypeOracleUnparsableText(t *testing.T) {
	s := NewStore()
	s.SetTypeOracle(func(path string) (bat.Kind, bool) { return bat.KindFloat, true })
	if _, err := s.Load("u", strings.NewReader(`<a>not-a-number</a>`)); err != nil {
		t.Fatal(err)
	}
	if rel := s.Relation("a[*flt]"); rel != nil && rel.Len() != 0 {
		t.Fatal("unparsable text must not produce a typed value")
	}
}

func TestDeleteSubtree(t *testing.T) {
	s := NewStore()
	doc, err := s.Load("u", strings.NewReader(
		`<mmo><header><primary>video</primary></header><video><shot>1</shot><shot>2</shot></video></mmo>`))
	if err != nil {
		t.Fatal(err)
	}
	headers, err := s.NodesAt("mmo/header")
	if err != nil || len(headers) != 1 {
		t.Fatalf("headers = %v, %v", headers, err)
	}
	removed := s.DeleteSubtree("mmo/header", headers[0])
	if removed != 3 { // header, primary, pcdata
		t.Fatalf("removed %d nodes, want 3", removed)
	}
	rec, err := s.Reconstruct(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseNode(`<mmo><video><shot>1</shot><shot>2</shot></video></mmo>`)
	if !rec.Equal(want) {
		t.Fatalf("after delete:\n%s\nwant\n%s", rec, want)
	}
	if s.DeleteSubtree("no/such/path", 1) != 0 {
		t.Fatal("deleting unknown path should remove nothing")
	}
}

func TestInsertSubtreePreservesOrder(t *testing.T) {
	s := NewStore()
	doc, err := s.Load("u", strings.NewReader(`<mmo><location>http://x</location></mmo>`))
	if err != nil {
		t.Fatal(err)
	}
	root, _, _ := s.RootOf(doc)
	rank := s.NextRank("mmo", root)
	if rank != 1 {
		t.Fatalf("NextRank = %d, want 1", rank)
	}
	header := MustParseNode(`<header><primary>video</primary><secondary>mpeg</secondary></header>`)
	if _, err := s.InsertSubtree("mmo", root, rank, header); err != nil {
		t.Fatal(err)
	}
	rec, _ := s.Reconstruct(doc)
	want := MustParseNode(`<mmo><location>http://x</location><header><primary>video</primary><secondary>mpeg</secondary></header></mmo>`)
	if !rec.Equal(want) {
		t.Fatalf("after insert:\n%s\nwant\n%s", rec, want)
	}
}

func TestInsertThenDeleteIsIdentity(t *testing.T) {
	s := NewStore()
	doc, _ := s.Load("u", strings.NewReader(`<a><b>x</b></a>`))
	before, _ := s.Reconstruct(doc)
	root, _, _ := s.RootOf(doc)
	oid, err := s.InsertSubtree("a", root, s.NextRank("a", root), MustParseNode(`<c q="1"><d>y</d></c>`))
	if err != nil {
		t.Fatal(err)
	}
	s.DeleteSubtree("a/c", oid)
	after, _ := s.Reconstruct(doc)
	if !before.Equal(after) {
		t.Fatalf("insert+delete changed document:\n%s\nvs\n%s", before, after)
	}
}

func TestDeleteDoc(t *testing.T) {
	s := NewStore()
	d1, _ := s.Load("u1", strings.NewReader(`<a><b>1</b></a>`))
	d2, _ := s.Load("u2", strings.NewReader(`<a><b>2</b></a>`))
	if err := s.DeleteDoc(d1); err != nil {
		t.Fatal(err)
	}
	if len(s.Docs()) != 1 {
		t.Fatalf("Docs after delete = %v", s.Docs())
	}
	rec, err := s.Reconstruct(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Equal(MustParseNode(`<a><b>2</b></a>`)) {
		t.Fatalf("surviving doc corrupted: %s", rec)
	}
	if err := s.DeleteDoc(d1); err == nil {
		t.Fatal("double delete should error")
	}
	vals, _ := s.ValuesAt("a/b")
	if len(vals) != 1 || vals[0] != "2" {
		t.Fatalf("relation contents after delete = %v", vals)
	}
}

// randomTree builds a deterministic random tree for property testing.
func randomTree(rng *rand.Rand, depth int) *Node {
	tags := []string{"a", "b", "c", "d"}
	n := Elem(tags[rng.Intn(len(tags))])
	if rng.Intn(2) == 0 {
		n.WithAttr("k", fmt.Sprintf("v%d", rng.Intn(10)))
	}
	kids := rng.Intn(4)
	for i := 0; i < kids; i++ {
		if depth <= 1 || rng.Intn(3) == 0 {
			n.Children = append(n.Children, TextNode(fmt.Sprintf("t%d", rng.Intn(100))))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1))
		}
	}
	return n
}

// Property: Reconstruct(Load(d)) is isomorphic to d for arbitrary
// trees — the paper's Mt⁻¹(Mt(d)) ≅ d guarantee.
func TestPropertyReconstructIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		tree := randomTree(rng, 4)
		s := NewStore()
		doc, err := s.LoadNode("u", tree)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Reconstruct(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(rec) {
			t.Fatalf("iteration %d: not isomorphic:\norig: %s\nrec:  %s", i, tree, rec)
		}
	}
}

// Property: loading many documents into one store keeps each
// reconstructible independently.
func TestPropertyMultiDocIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStore()
	var docs []DocID
	var trees []*Node
	for i := 0; i < 50; i++ {
		tree := randomTree(rng, 3)
		d, err := s.LoadNode(fmt.Sprintf("u%d", i), tree)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
		trees = append(trees, tree)
	}
	for i, d := range docs {
		rec, err := s.Reconstruct(d)
		if err != nil {
			t.Fatal(err)
		}
		if !trees[i].Equal(rec) {
			t.Fatalf("doc %d corrupted by co-loaded documents", i)
		}
	}
}

func TestReconstructErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Reconstruct(999); err == nil {
		t.Fatal("unknown doc should error")
	}
	if _, err := s.ReconstructSubtree("nope", 1); err == nil {
		t.Fatal("unknown path should error")
	}
}

func TestReconstructSubtree(t *testing.T) {
	s := NewStore()
	_, err := s.Load("u", strings.NewReader(`<a><b i="1"><c>deep</c></b></a>`))
	if err != nil {
		t.Fatal(err)
	}
	bs, _ := s.NodesAt("a/b")
	sub, err := s.ReconstructSubtree("a/b", bs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Equal(MustParseNode(`<b i="1"><c>deep</c></b>`)) {
		t.Fatalf("subtree = %s", sub)
	}
}
