package monetxml

import (
	"strings"
	"testing"
)

func TestParseNodeBasics(t *testing.T) {
	n := MustParseNode(`<a x="1"><b>hi</b><c/></a>`)
	if n.Tag != "a" {
		t.Fatalf("root tag %q", n.Tag)
	}
	if v, ok := n.Attr("x"); !ok || v != "1" {
		t.Fatalf("attr x = %q,%v", v, ok)
	}
	b := n.Child("b")
	if b == nil || b.InnerText() != "hi" {
		t.Fatalf("child b: %v", b)
	}
	if n.Child("c") == nil {
		t.Fatal("child c missing")
	}
	if n.Child("zzz") != nil {
		t.Fatal("nonexistent child found")
	}
}

func TestParseNodeErrors(t *testing.T) {
	if _, err := ParseNode(strings.NewReader("")); err == nil {
		t.Fatal("empty doc should error")
	}
	if _, err := ParseNode(strings.NewReader("<a></a><b></b>")); err == nil {
		t.Fatal("multiple roots should error")
	}
	if _, err := ParseNode(strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("unbalanced tags should error")
	}
}

func TestNodeStringRoundTrip(t *testing.T) {
	src := `<image key="18934"><date>999010530</date><colors><histogram>0.399 0.277 0.344</histogram></colors></image>`
	n := MustParseNode(src)
	again := MustParseNode(n.String())
	if !n.Equal(again) {
		t.Fatalf("round trip not isomorphic:\n%s\nvs\n%s", n, again)
	}
}

func TestNodeStringEscaping(t *testing.T) {
	n := Elem("a", TextNode(`x < y & "z"`)).WithAttr("q", `a<b`)
	again := MustParseNode(n.String())
	if !n.Equal(again) {
		t.Fatalf("escaped round trip failed: %s vs %s", n, again)
	}
}

func TestEqualAttrOrderInsensitive(t *testing.T) {
	a := Elem("a").WithAttr("x", "1").WithAttr("y", "2")
	b := Elem("a").WithAttr("y", "2").WithAttr("x", "1")
	if !a.Equal(b) {
		t.Fatal("attribute order should not matter")
	}
	c := Elem("a").WithAttr("x", "other")
	if a.Equal(c) {
		t.Fatal("different attrs should not be equal")
	}
}

func TestEqualDistinguishesStructure(t *testing.T) {
	a := Elem("a", Elem("b"), Elem("c"))
	b := Elem("a", Elem("c"), Elem("b"))
	if a.Equal(b) {
		t.Fatal("element order must matter")
	}
	if a.Equal(Elem("a", Elem("b"))) {
		t.Fatal("child count must matter")
	}
	if Elem("a").Equal(TextNode("a")) {
		t.Fatal("element vs text must differ")
	}
}

func TestEqualIgnoresWhitespaceText(t *testing.T) {
	a := Elem("a", TextNode("  "), Elem("b"))
	b := Elem("a", Elem("b"))
	if !a.Equal(b) {
		t.Fatal("whitespace-only text nodes should be ignored")
	}
}

func TestDeepTextAndInnerText(t *testing.T) {
	n := MustParseNode(`<p>one<b>two</b>three</p>`)
	if got := n.DeepText(); got != "onetwothree" {
		t.Fatalf("DeepText = %q", got)
	}
	if got := n.InnerText(); got != "onethree" {
		t.Fatalf("InnerText = %q", got)
	}
}

func TestCountNodesAndHeight(t *testing.T) {
	n := MustParseNode(`<a><b><c>x</c></b><d/></a>`)
	// a, b, c, text(x), d = 5 nodes
	if got := n.CountNodes(); got != 5 {
		t.Fatalf("CountNodes = %d", got)
	}
	if got := n.Height(); got != 3 {
		t.Fatalf("Height = %d", got)
	}
}

func TestChildrenByTag(t *testing.T) {
	n := MustParseNode(`<a><s>1</s><t/><s>2</s></a>`)
	ss := n.ChildrenByTag("s")
	if len(ss) != 2 || ss[0].InnerText() != "1" || ss[1].InnerText() != "2" {
		t.Fatalf("ChildrenByTag = %v", ss)
	}
}

func TestSortedAttrNames(t *testing.T) {
	n := Elem("a").WithAttr("z", "1").WithAttr("a", "2")
	got := n.SortedAttrNames()
	if len(got) != 2 || got[0] != "a" || got[1] != "z" {
		t.Fatalf("SortedAttrNames = %v", got)
	}
}
