package slo

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises the budget controller.
type Config struct {
	// Target is the latency SLO: the controller picks the largest
	// budget whose predicted p95 fits it. Per-request overrides
	// replace it per decision.
	Target time.Duration
	// MaxBudget is the fragment budget of a full-quality evaluation
	// (the cluster's fragmentation granularity).
	MaxBudget int
	// MinQuality is the hard quality floor in (0, 1]: the controller
	// never chooses a budget whose observed quality falls below it,
	// and only past this floor may admission reject. 0 disables the
	// floor (the controller degrades all the way to budget 1, and
	// never rejects).
	MinQuality float64
	// RejectOccupancy is the admission-pressure level (occupancy =
	// (in-flight + waiting) / limit) past which a floor-clamped
	// decision turns into a rejection: quality can no longer absorb
	// the overload, so queries must. < 1 selects DefaultRejectOccupancy.
	RejectOccupancy float64
	// MinWeight is the decayed observation count a curve point needs
	// before the controller trusts it; thinner points fall back to
	// linear extrapolation from the nearest trusted budget. < 1
	// selects DefaultMinWeight.
	MinWeight float64
	// HalfLife is the curve's observation half-life (see
	// obs.NewDecayedHist); < 1 selects obs.DefaultCurveHalfLife.
	HalfLife int
	// ProbeEvery re-probes stale curve points: every ProbeEvery-th
	// unshedded, target-limited decision explores one budget above the
	// controller's choice, so a budget remembered as "too slow" keeps
	// collecting fresh cost samples and can be re-learned after load
	// drops — without probing, a budget the curve rejects is never
	// evaluated again and its decayed observations never refresh.
	// 0 selects DefaultProbeEvery; < 0 disables probing.
	ProbeEvery int
}

// DefaultRejectOccupancy: with a full semaphore and twice the limit
// again waiting, quality shedding has been given ~3x the capacity's
// worth of slack — past that, a floor-clamped query is rejected.
const DefaultRejectOccupancy = 3.0

// DefaultMinWeight is the evidence threshold for trusting a curve
// point outright.
const DefaultMinWeight = 4.0

// MaxShedLevel caps admission-pressure budget halving: past 5 levels
// the budget is 1/32 of base, i.e. already 1 for any realistic
// fragmentation.
const MaxShedLevel = 5

// DefaultProbeEvery: one decision in 32 explores one budget above the
// controller's choice — frequent enough to re-learn a recovered budget
// within a curve half-life, rare enough that the p95 impact of the
// slower probes stays in the noise.
const DefaultProbeEvery = 32

// Decision is one controller verdict, recorded in the query trace and
// the slow-query log.
type Decision struct {
	// Budget is the fragment budget to evaluate with.
	Budget int
	// Predicted is the p95 latency the curve predicts for that budget
	// (0 when the curve has no evidence — the optimistic default).
	Predicted time.Duration
	// PredictedQuality is the quality the curve predicts (1 when
	// unknown: unobserved budgets are assumed full-quality, and the
	// plan's MinQuality floor makes nodes extend if that's wrong).
	PredictedQuality float64
	// Confidence in [0, 1]: how much decayed evidence backs the
	// prediction (0 = none, extrapolated predictions are halved).
	Confidence float64
	// ShedLevel is the admission-pressure degradation applied: the
	// base budget was halved this many times.
	ShedLevel int
	// Degraded reports whether the chosen budget is below full
	// quality (MaxBudget).
	Degraded bool
	// FloorHit reports whether the quality floor clamped the budget
	// upward — the controller wanted to degrade further and could not.
	FloorHit bool
	// Reject reports whether the query should be refused (503):
	// quality is already at the floor and occupancy is past the
	// rejection threshold.
	Reject bool
	// Probe reports that this decision deliberately explored one
	// budget above the target-fitting choice to refresh the curve's
	// evidence there (Config.ProbeEvery).
	Probe bool
}

// Controller picks per-query fragment budgets from learned
// quality/latency curves. One controller serves all indexes of a
// coordinator; per-index state (curve + decision counters) is created
// on first use. Decide and ObserveAchieved are allocation-free.
type Controller struct {
	cfg Config

	mu sync.RWMutex
	ix map[string]*indexState
}

type indexState struct {
	curve *Curve

	decisions atomic.Uint64
	degraded  atomic.Uint64
	overrides atomic.Uint64
	floorHits atomic.Uint64
	rejected  atomic.Uint64
	probes    atomic.Uint64
	probeTick atomic.Uint64
	shedLevel atomic.Int64
}

// New returns a controller over the given config, normalising unset
// knobs to their defaults.
func New(cfg Config) *Controller {
	if cfg.MaxBudget < 1 {
		cfg.MaxBudget = 1
	}
	if cfg.RejectOccupancy < 1 {
		cfg.RejectOccupancy = DefaultRejectOccupancy
	}
	if cfg.MinWeight < 1 {
		cfg.MinWeight = DefaultMinWeight
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = DefaultProbeEvery
	}
	return &Controller{cfg: cfg, ix: make(map[string]*indexState)}
}

// Target returns the configured latency SLO.
func (c *Controller) Target() time.Duration { return c.cfg.Target }

// MinQuality returns the configured quality floor.
func (c *Controller) MinQuality() float64 { return c.cfg.MinQuality }

// MaxBudget returns the full-quality fragment budget.
func (c *Controller) MaxBudget() int { return c.cfg.MaxBudget }

func (c *Controller) state(index string) *indexState {
	c.mu.RLock()
	st := c.ix[index]
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st = c.ix[index]; st == nil {
		st = &indexState{curve: NewCurve(c.cfg.MaxBudget, c.cfg.HalfLife)}
		c.ix[index] = st
	}
	return st
}

// Curve returns the index's quality/latency curve, creating it on
// first use. The serving layer installs it as the cost sink of the
// index's nodes (dist.CostCurve).
func (c *Controller) Curve(index string) *Curve { return c.state(index).curve }

// predict returns the p95 latency the curve supports at the budget,
// with a confidence in [0, 1]. Budgets without enough decayed
// evidence extrapolate linearly from the nearest trusted budget
// (latency of the cut-off scales with admitted postings, which scale
// roughly linearly with leading fragments of balanced tuple counts)
// at half confidence; with no trusted point at all it returns (0, 0):
// unknown, treated optimistically.
func (c *Controller) predict(st *indexState, budget int) (time.Duration, float64) {
	lat, w := st.curve.Latency(budget, 0.95)
	if w >= c.cfg.MinWeight {
		return time.Duration(lat * float64(time.Second)), w / (w + c.cfg.MinWeight)
	}
	// Nearest trusted budget, preferring the closer and then the lower
	// (interpolating down is safer than up: extrapolated latency for a
	// smaller budget overestimates, which degrades early — the safe
	// direction under an SLO).
	best, bestLat, bestW := 0, 0.0, 0.0
	for b := 1; b <= st.curve.MaxBudget(); b++ {
		l, bw := st.curve.Latency(b, 0.95)
		if bw < c.cfg.MinWeight {
			continue
		}
		if best == 0 || abs(b-budget) < abs(best-budget) {
			best, bestLat, bestW = b, l, bw
		}
	}
	if best == 0 {
		return 0, 0
	}
	scaled := bestLat * float64(budget) / float64(best)
	return time.Duration(scaled * float64(time.Second)), bestW / (bestW + c.cfg.MinWeight) / 2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// floorBudget returns the smallest budget whose observed quality
// meets the floor (budgets with no evidence are optimistically assumed
// to meet it — the evaluation-side MinQuality extension enforces the
// floor regardless of what the controller predicts).
func (c *Controller) floorBudget(st *indexState) int {
	if c.cfg.MinQuality <= 0 {
		return 1
	}
	for b := 1; b <= st.curve.MaxBudget(); b++ {
		q, w := st.curve.Quality(b)
		if w < c.cfg.MinWeight || q >= c.cfg.MinQuality {
			return b
		}
	}
	return st.curve.MaxBudget()
}

// Decide picks the fragment budget for one query against the index:
// the largest budget whose predicted p95 fits the target, halved once
// per unit of admission-pressure occupancy past 1.0, clamped upward
// to the quality floor — and rejected only when the floor leaves no
// quality left to shed and occupancy is past the rejection threshold.
// target <= 0 means "no latency bound" (only pressure shedding
// applies). occupancy is (in-flight + waiting) / concurrency-limit.
// Allocation-free.
func (c *Controller) Decide(index string, target time.Duration, occupancy float64) Decision {
	st := c.state(index)
	maxB := c.cfg.MaxBudget

	// Base budget: largest that fits the target. Unknown predictions
	// are optimistic (an empty curve serves full quality and learns).
	base := maxB
	var pred time.Duration
	var conf float64
	if target > 0 {
		base = 1
		for b := maxB; b >= 1; b-- {
			p, cf := c.predict(st, b)
			if p <= target || b == 1 {
				base, pred, conf = b, p, cf
				break
			}
		}
	}

	// Admission pressure: halve the budget once per unit of occupancy
	// past saturation. Shedding quality, not queries.
	shed := 0
	if occupancy >= 1 {
		shed = int(occupancy)
		if shed > MaxShedLevel {
			shed = MaxShedLevel
		}
	}
	budget := base >> shed
	if budget < 1 {
		budget = 1
	}

	// Quality floor: never choose a budget the curve says is below the
	// floor; 503 only when the floor leaves nothing to shed.
	floorHit := false
	if fb := c.floorBudget(st); budget < fb {
		budget, floorHit = fb, true
	}
	reject := floorHit && c.cfg.MinQuality > 0 && occupancy >= c.cfg.RejectOccupancy

	// Stale-point re-probing: the target loop only ever evaluates
	// budgets the curve predicts to fit, so a budget once learned as
	// "too slow" would keep its decaying evidence forever. Every
	// ProbeEvery-th unshedded, target-limited decision explores one
	// budget above the choice — its cost sample refreshes the curve,
	// and if load has dropped the larger budget wins the target loop
	// again. Probing never overrides shedding or a rejection.
	probe := false
	if c.cfg.ProbeEvery > 0 && target > 0 && shed == 0 && !reject && budget < maxB {
		if st.probeTick.Add(1)%uint64(c.cfg.ProbeEvery) == 0 {
			budget++
			probe = true
			st.probes.Add(1)
		}
	}

	if budget != base || pred == 0 {
		pred, conf = c.predict(st, budget)
	}
	pq, pw := st.curve.Quality(budget)
	if pw < c.cfg.MinWeight {
		pq = 1 // unobserved: assume full quality, the plan floor corrects
	}

	st.decisions.Add(1)
	degraded := budget < maxB
	if degraded {
		st.degraded.Add(1)
	}
	if floorHit {
		st.floorHits.Add(1)
	}
	if reject {
		st.rejected.Add(1)
	}
	st.shedLevel.Store(int64(shed))

	return Decision{
		Budget:           budget,
		Predicted:        pred,
		PredictedQuality: pq,
		Confidence:       conf,
		ShedLevel:        shed,
		Degraded:         degraded,
		FloorHit:         floorHit,
		Reject:           reject,
		Probe:            probe,
	}
}

// RecordOverride counts a per-request slo_ms override against the
// index.
func (c *Controller) RecordOverride(index string) { c.state(index).overrides.Add(1) }

// Counters is a snapshot of one index's decision counters.
type Counters struct {
	Decisions uint64
	Degraded  uint64
	Overrides uint64
	FloorHits uint64
	Rejected  uint64
	Probes    uint64
	ShedLevel int
}

// Counters returns the index's decision counters (zero value for an
// index never decided on). Allocation-free: safe for /metrics
// CounterFunc closures.
func (c *Controller) Counters(index string) Counters {
	c.mu.RLock()
	st := c.ix[index]
	c.mu.RUnlock()
	if st == nil {
		return Counters{}
	}
	return Counters{
		Decisions: st.decisions.Load(),
		Degraded:  st.degraded.Load(),
		Overrides: st.overrides.Load(),
		FloorHits: st.floorHits.Load(),
		Rejected:  st.rejected.Load(),
		Probes:    st.probes.Load(),
		ShedLevel: int(st.shedLevel.Load()),
	}
}

// IndexStats is the `slo` block /stats reports per index.
type IndexStats struct {
	TargetMs   float64 `json:"target_ms"`
	MinQuality float64 `json:"min_quality,omitempty"`
	MaxBudget  int     `json:"max_budget"`
	ShedLevel  int     `json:"shed_level"`
	Decisions  uint64  `json:"decisions"`
	Degraded   uint64  `json:"degraded"`
	Overrides  uint64  `json:"overrides"`
	FloorHits  uint64  `json:"floor_hits"`
	Rejected   uint64  `json:"rejected"`
	Probes     uint64  `json:"probes"`
	Curve      []Point `json:"curve,omitempty"`
}

// Stats returns the index's full /stats snapshot: counters plus the
// observed quality/latency curve.
func (c *Controller) Stats(index string) IndexStats {
	ct := c.Counters(index)
	s := IndexStats{
		TargetMs:   float64(c.cfg.Target) / float64(time.Millisecond),
		MinQuality: c.cfg.MinQuality,
		MaxBudget:  c.cfg.MaxBudget,
		ShedLevel:  ct.ShedLevel,
		Decisions:  ct.Decisions,
		Degraded:   ct.Degraded,
		Overrides:  ct.Overrides,
		FloorHits:  ct.FloorHits,
		Rejected:   ct.Rejected,
		Probes:     ct.Probes,
	}
	c.mu.RLock()
	st := c.ix[index]
	c.mu.RUnlock()
	if st != nil {
		s.Curve = st.curve.Snapshot()
	}
	return s
}
