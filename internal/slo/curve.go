// Package slo turns the paper's quality/cost dial into a closed
// control loop: a per-index quality/latency curve learned from live
// cost samples (budget → observed latency quantiles + achieved
// quality, exponentially decayed so the curve tracks the corpus and
// the load), and a budget controller that picks each query's fragment
// budget to meet a target latency SLO, degrading quality — never
// availability — under pressure.
package slo

import (
	"math"
	"sync"

	"dlsearch/internal/obs"
)

// Curve is the learned cost model of one index: for every fragment
// budget b in 1..MaxBudget, a decayed latency distribution and a
// decayed mean of the achieved quality. It is fed by the serving
// layer's cost observations (LocalNode's ir hook, RemoteNode's RPC
// timing) and read by the Controller; both paths are allocation-free.
type Curve struct {
	points []*point // index b-1
}

type point struct {
	lat *obs.DecayedHist // seconds

	mu      sync.Mutex
	qsum    float64 // decayed quality sum
	qweight float64
	qalpha  float64
}

// NewCurve returns an empty curve over budgets 1..maxBudget with the
// given observation half-life (< 1 selects obs.DefaultCurveHalfLife).
func NewCurve(maxBudget, halfLife int) *Curve {
	if maxBudget < 1 {
		maxBudget = 1
	}
	if halfLife < 1 {
		halfLife = obs.DefaultCurveHalfLife
	}
	alpha := math.Exp(math.Ln2 / -float64(halfLife))
	c := &Curve{points: make([]*point, maxBudget)}
	for i := range c.points {
		c.points[i] = &point{
			lat:    obs.NewDecayedHist(curveLatencyBounds(), halfLife),
			qalpha: alpha,
		}
	}
	return c
}

// curveLatencyBounds returns log-spaced bucket edges, three per
// octave, 100µs to ~105s. The controller compares bucketed p95
// estimates against the SLO, so the curve needs finer resolution than
// the metrics histograms' doubling buckets: at three buckets per
// octave the estimate stays within ~26% of the true latency.
func curveLatencyBounds() []float64 {
	bounds := make([]float64, 61)
	v, r := 1e-4, math.Pow(2, 1.0/3)
	for i := range bounds {
		bounds[i] = v
		v *= r
	}
	return bounds
}

// MaxBudget returns the largest budget the curve models.
func (c *Curve) MaxBudget() int { return len(c.points) }

// ObserveCost records one budgeted evaluation: it took seconds and
// achieved quality at the given fragment budget. Budgets outside
// 1..MaxBudget clamp to the nearest modelled point (re-fragmentation
// races are tolerated, not fatal). Allocation-free; safe for
// concurrent use. Satisfies dist.CostCurve.
func (c *Curve) ObserveCost(budget int, seconds, quality float64) {
	if c == nil || len(c.points) == 0 {
		return
	}
	if budget < 1 {
		budget = 1
	}
	if budget > len(c.points) {
		budget = len(c.points)
	}
	p := c.points[budget-1]
	p.lat.Observe(seconds)
	p.mu.Lock()
	p.qsum = p.qsum*p.qalpha + quality
	p.qweight = p.qweight*p.qalpha + 1
	p.mu.Unlock()
}

// Latency reports the decayed q-quantile of the observed latency at
// the budget, plus the decayed observation weight backing it (0 weight
// = no recent evidence; the quantile is then meaningless).
func (c *Curve) Latency(budget int, q float64) (seconds, weight float64) {
	if c == nil || budget < 1 || budget > len(c.points) {
		return 0, 0
	}
	p := c.points[budget-1]
	return p.lat.Quantile(q), p.lat.Weight()
}

// Quality reports the decayed mean achieved quality at the budget and
// the weight backing it.
func (c *Curve) Quality(budget int) (quality, weight float64) {
	if c == nil || budget < 1 || budget > len(c.points) {
		return 0, 0
	}
	p := c.points[budget-1]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.qweight == 0 {
		return 0, 0
	}
	return p.qsum / p.qweight, p.qweight
}

// Point is one budget's snapshot of the curve, as reported in /stats.
type Point struct {
	Budget  int     `json:"budget"`
	Weight  float64 `json:"weight"`  // decayed observation count
	P50Ms   float64 `json:"p50_ms"`  // decayed median latency
	P95Ms   float64 `json:"p95_ms"`  // decayed tail latency
	Quality float64 `json:"quality"` // decayed mean achieved quality
}

// Snapshot returns the observed points of the curve (budgets with no
// recent evidence are omitted) in ascending budget order.
func (c *Curve) Snapshot() []Point {
	if c == nil {
		return nil
	}
	out := make([]Point, 0, len(c.points))
	for i, p := range c.points {
		w := p.lat.Weight()
		if w < 1e-9 {
			continue
		}
		q, _ := c.Quality(i + 1)
		out = append(out, Point{
			Budget:  i + 1,
			Weight:  w,
			P50Ms:   p.lat.Quantile(0.50) * 1e3,
			P95Ms:   p.lat.Quantile(0.95) * 1e3,
			Quality: q,
		})
	}
	return out
}
