package slo

import (
	"sync"
	"testing"
	"time"
)

// seed pushes n identical (budget, seconds, quality) samples into the
// curve — enough to clear the controller's evidence threshold.
func seed(c *Curve, n, budget int, seconds, quality float64) {
	for i := 0; i < n; i++ {
		c.ObserveCost(budget, seconds, quality)
	}
}

func TestCurveLearnsLatencyAndQuality(t *testing.T) {
	c := NewCurve(8, 64)
	seed(c, 50, 2, 0.004, 0.6)
	lat, w := c.Latency(2, 0.95)
	if w < DefaultMinWeight {
		t.Fatalf("weight %v below evidence threshold after 50 samples", w)
	}
	// 4ms lands in a log bucket; the quantile must be in its ballpark.
	if lat < 0.002 || lat > 0.010 {
		t.Fatalf("p95 = %vs, want ~0.004s", lat)
	}
	q, qw := c.Quality(2)
	if qw < DefaultMinWeight || q < 0.59 || q > 0.61 {
		t.Fatalf("quality = %v (weight %v), want ~0.6", q, qw)
	}
	// Unobserved budgets report no evidence.
	if _, w := c.Latency(7, 0.95); w != 0 {
		t.Fatalf("unobserved budget reports weight %v", w)
	}
}

func TestCurveDecayTracksShift(t *testing.T) {
	c := NewCurve(4, 32) // short half-life: old evidence fades fast
	seed(c, 200, 1, 0.002, 0.5)
	// The corpus grew: the same budget now costs 10x. After a few
	// half-lives of fresh samples the curve must have moved.
	seed(c, 200, 1, 0.020, 0.5)
	lat, _ := c.Latency(1, 0.50)
	if lat < 0.010 {
		t.Fatalf("median still %vs after the shift, decay not tracking", lat)
	}
}

func TestCurveClampAndNil(t *testing.T) {
	c := NewCurve(4, 0)
	c.ObserveCost(0, 0.001, 1)  // below range: clamps to 1
	c.ObserveCost(99, 0.001, 1) // above range: clamps to 4
	if _, w := c.Latency(1, 0.5); w == 0 {
		t.Fatal("clamped-low observation lost")
	}
	if _, w := c.Latency(4, 0.5); w == 0 {
		t.Fatal("clamped-high observation lost")
	}
	var nilCurve *Curve
	nilCurve.ObserveCost(1, 1, 1) // must not panic
	if pts := nilCurve.Snapshot(); pts != nil {
		t.Fatalf("nil curve snapshot = %v", pts)
	}
}

func TestCurveSnapshotOmitsUnobserved(t *testing.T) {
	c := NewCurve(8, 0)
	seed(c, 10, 3, 0.005, 0.7)
	pts := c.Snapshot()
	if len(pts) != 1 || pts[0].Budget != 3 {
		t.Fatalf("snapshot = %+v, want exactly budget 3", pts)
	}
	if pts[0].P95Ms <= 0 || pts[0].Quality < 0.69 || pts[0].Quality > 0.71 {
		t.Fatalf("snapshot point = %+v", pts[0])
	}
}

// TestControllerConvergence is the in-process convergence proof: with
// a synthetic cost model latency(b) = b x 5ms, the controller's chosen
// budget must settle on the largest budget fitting the SLO, and must
// re-converge when the cost model shifts under it.
func TestControllerConvergence(t *testing.T) {
	ctl := New(Config{Target: 12 * time.Millisecond, MaxBudget: 8, HalfLife: 32})
	curve := ctl.Curve("ix")
	// Closed loop: every decision is executed against the synthetic
	// cost model and its sample fed back, exactly like live serving.
	cost := func(b int) float64 { return float64(b) * 0.005 }
	var last Decision
	for i := 0; i < 300; i++ {
		last = ctl.Decide("ix", ctl.Target(), 0)
		curve.ObserveCost(last.Budget, cost(last.Budget), float64(last.Budget)/8)
	}
	if last.Budget != 2 {
		t.Fatalf("budget converged to %d under a 12ms SLO with 5ms/fragment, want 2", last.Budget)
	}
	if last.Predicted <= 0 || last.Confidence <= 0 {
		t.Fatalf("converged decision carries no prediction: %+v", last)
	}
	// The corpus doubles: each fragment now costs 10ms. The decayed
	// curve must pull the budget down to 1 without operator action.
	cost = func(b int) float64 { return float64(b) * 0.010 }
	for i := 0; i < 300; i++ {
		last = ctl.Decide("ix", ctl.Target(), 0)
		curve.ObserveCost(last.Budget, cost(last.Budget), float64(last.Budget)/8)
	}
	if last.Budget != 1 {
		t.Fatalf("budget re-converged to %d after the cost shift, want 1", last.Budget)
	}
	// A generous per-request override climbs back up: predictions for
	// larger budgets extrapolate from the observed point.
	d := ctl.Decide("ix", 100*time.Millisecond, 0)
	if d.Budget <= 1 {
		t.Fatalf("override to 100ms still decides budget %d", d.Budget)
	}
}

func TestControllerEmptyCurveServesFullQuality(t *testing.T) {
	ctl := New(Config{Target: time.Millisecond, MaxBudget: 8})
	d := ctl.Decide("ix", ctl.Target(), 0)
	if d.Budget != 8 || d.Degraded || d.Reject {
		t.Fatalf("empty-curve decision = %+v, want optimistic full budget", d)
	}
	if d.Confidence != 0 {
		t.Fatalf("empty-curve confidence = %v, want 0", d.Confidence)
	}
	if d.PredictedQuality != 1 {
		t.Fatalf("empty-curve predicted quality = %v, want 1", d.PredictedQuality)
	}
}

func TestControllerPressureShedsQuality(t *testing.T) {
	ctl := New(Config{Target: time.Second, MaxBudget: 8})
	curve := ctl.Curve("ix")
	for b := 1; b <= 8; b++ {
		seed(curve, 20, b, float64(b)*0.001, float64(b)/8)
	}
	cases := []struct {
		occupancy float64
		budget    int
	}{
		{0, 8}, {0.5, 8}, {1.0, 4}, {2.0, 2}, {3.0, 1}, {4.5, 1}, {50, 1},
	}
	for _, tc := range cases {
		d := ctl.Decide("ix", ctl.Target(), tc.occupancy)
		if d.Budget != tc.budget {
			t.Fatalf("occupancy %v: budget %d, want %d", tc.occupancy, d.Budget, tc.budget)
		}
		if d.Reject {
			t.Fatalf("occupancy %v: rejected with no quality floor configured", tc.occupancy)
		}
		if (d.ShedLevel > 0) != (tc.occupancy >= 1) {
			t.Fatalf("occupancy %v: shed level %d", tc.occupancy, d.ShedLevel)
		}
	}
	if c := ctl.Counters("ix"); c.Degraded == 0 || c.Decisions != uint64(len(cases)) {
		t.Fatalf("counters = %+v", c)
	}
}

func TestControllerQualityFloorAndReject(t *testing.T) {
	ctl := New(Config{Target: time.Second, MaxBudget: 8, MinQuality: 0.45})
	curve := ctl.Curve("ix")
	for b := 1; b <= 8; b++ {
		seed(curve, 20, b, float64(b)*0.001, float64(b)/8)
	}
	// Quality b/8 crosses 0.45 at b=4: pressure may shed to 4, never
	// below, and only a floor-clamped decision under extreme occupancy
	// rejects.
	d := ctl.Decide("ix", ctl.Target(), 2.0) // wants 8>>2 = 2, floor says 4
	if d.Budget != 4 || !d.FloorHit || d.Reject {
		t.Fatalf("floored decision = %+v, want budget 4, floor hit, no reject", d)
	}
	d = ctl.Decide("ix", ctl.Target(), DefaultRejectOccupancy+0.5)
	if !d.Reject {
		t.Fatalf("decision past reject occupancy = %+v, want reject", d)
	}
	if c := ctl.Counters("ix"); c.FloorHits != 2 || c.Rejected != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// Below saturation the floor never rejects.
	if d := ctl.Decide("ix", ctl.Target(), 0.2); d.Reject {
		t.Fatalf("unsaturated decision rejected: %+v", d)
	}
}

func TestControllerStatsAndOverrides(t *testing.T) {
	ctl := New(Config{Target: 20 * time.Millisecond, MaxBudget: 4, MinQuality: 0.5})
	seed(ctl.Curve("ix"), 10, 2, 0.003, 0.8)
	ctl.Decide("ix", ctl.Target(), 0)
	ctl.RecordOverride("ix")
	st := ctl.Stats("ix")
	if st.TargetMs != 20 || st.MaxBudget != 4 || st.MinQuality != 0.5 {
		t.Fatalf("stats config block = %+v", st)
	}
	if st.Decisions != 1 || st.Overrides != 1 {
		t.Fatalf("stats counters = %+v", st)
	}
	if len(st.Curve) != 1 || st.Curve[0].Budget != 2 {
		t.Fatalf("stats curve = %+v", st.Curve)
	}
	if s := ctl.Stats("never-seen"); s.Decisions != 0 || s.Curve != nil {
		t.Fatalf("unknown index stats = %+v", s)
	}
}

// TestDecideAllocationFree proves the controller's hot path (one
// decision + one cost observation per query) allocates nothing.
func TestDecideAllocationFree(t *testing.T) {
	ctl := New(Config{Target: 10 * time.Millisecond, MaxBudget: 8, MinQuality: 0.3})
	curve := ctl.Curve("ix")
	for b := 1; b <= 8; b++ {
		seed(curve, 20, b, float64(b)*0.002, float64(b)/8)
	}
	if n := testing.AllocsPerRun(200, func() {
		d := ctl.Decide("ix", ctl.Target(), 1.5)
		curve.ObserveCost(d.Budget, 0.004, 0.5)
	}); n != 0 {
		t.Fatalf("Decide+ObserveCost allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = ctl.Counters("ix")
	}); n != 0 {
		t.Fatalf("Counters allocates %v per run, want 0", n)
	}
}

// TestControllerConcurrent exercises the decide/observe/stats paths
// under the race detector.
func TestControllerConcurrent(t *testing.T) {
	ctl := New(Config{Target: 5 * time.Millisecond, MaxBudget: 8, MinQuality: 0.25})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			curve := ctl.Curve("ix")
			for i := 0; i < 500; i++ {
				d := ctl.Decide("ix", ctl.Target(), float64(i%3))
				curve.ObserveCost(d.Budget, float64(d.Budget)*0.001, float64(d.Budget)/8)
				if i%50 == 0 {
					_ = ctl.Stats("ix")
					_ = ctl.Counters("ix")
				}
			}
		}(g)
	}
	wg.Wait()
	if c := ctl.Counters("ix"); c.Decisions != 2000 {
		t.Fatalf("decisions = %d, want 2000", c.Decisions)
	}
}

func TestControllerProbeRelearnsAfterLoadDrop(t *testing.T) {
	ctl := New(Config{Target: 12 * time.Millisecond, MaxBudget: 8, HalfLife: 32})
	curve := ctl.Curve("ix")
	// Overload: 10ms per fragment. The controller converges to budget 1
	// and every larger budget is remembered as "too slow".
	cost := func(b int) float64 { return float64(b) * 0.010 }
	var d Decision
	for i := 0; i < 200; i++ {
		d = ctl.Decide("ix", ctl.Target(), 0)
		curve.ObserveCost(d.Budget, cost(d.Budget), float64(d.Budget)/8)
	}
	if d.Budget != 1 {
		t.Fatalf("overloaded budget = %d, want 1", d.Budget)
	}
	// Load drops to 1ms per fragment. Without probing the target loop
	// would never evaluate a larger budget again, so its curve point
	// could never refresh; the periodic probes feed fresh samples one
	// budget above the choice and the controller climbs back.
	cost = func(b int) float64 { return float64(b) * 0.001 }
	sawProbe := false
	for i := 0; i < 4000; i++ {
		d = ctl.Decide("ix", ctl.Target(), 0)
		if d.Probe {
			sawProbe = true
		}
		curve.ObserveCost(d.Budget, cost(d.Budget), float64(d.Budget)/8)
	}
	if !sawProbe {
		t.Fatal("no probe decision among 4000 target-limited decisions")
	}
	if d.Budget <= 1 {
		t.Fatalf("budget still %d after load dropped — stale points never re-learned", d.Budget)
	}
	if c := ctl.Counters("ix"); c.Probes == 0 {
		t.Fatalf("probe counter = %+v, want Probes > 0", c)
	}
	if s := ctl.Stats("ix"); s.Probes == 0 {
		t.Fatalf("stats probes = %d, want > 0", s.Probes)
	}
}

func TestControllerProbeDisabled(t *testing.T) {
	ctl := New(Config{Target: 12 * time.Millisecond, MaxBudget: 8, HalfLife: 32, ProbeEvery: -1})
	curve := ctl.Curve("ix")
	cost := func(b int) float64 { return float64(b) * 0.010 }
	for i := 0; i < 200; i++ {
		d := ctl.Decide("ix", ctl.Target(), 0)
		curve.ObserveCost(d.Budget, cost(d.Budget), float64(d.Budget)/8)
	}
	cost = func(b int) float64 { return float64(b) * 0.001 }
	for i := 0; i < 4000; i++ {
		d := ctl.Decide("ix", ctl.Target(), 0)
		if d.Probe {
			t.Fatal("probe decision with ProbeEvery < 0")
		}
		curve.ObserveCost(d.Budget, cost(d.Budget), float64(d.Budget)/8)
	}
	if c := ctl.Counters("ix"); c.Probes != 0 {
		t.Fatalf("probe counter = %d with probing disabled", c.Probes)
	}
}
