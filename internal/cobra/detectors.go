package cobra

import (
	"fmt"
	"strconv"
	"sync"

	"dlsearch/internal/detector"
	"dlsearch/internal/video"
)

// Analyzer binds the video analysis to a video library and exposes the
// segment and tennis detectors of the feature grammar (Figure 7) as
// callable implementations. Segmentation results are cached per
// location so the tennis detector (called once per court shot) does
// not re-segment the video.
type Analyzer struct {
	Lib *video.Library
	Seg *Segmenter

	mu    sync.Mutex
	cache map[string]Analysis
}

// NewAnalyzer returns an analyzer over the library with default
// thresholds.
func NewAnalyzer(lib *video.Library) *Analyzer {
	return &Analyzer{Lib: lib, Seg: NewSegmenter(), cache: make(map[string]Analysis)}
}

// analysis returns the (cached) segmentation of the video at location.
func (a *Analyzer) analysis(location string) (Analysis, *video.Video, error) {
	v, err := a.Lib.Get(location)
	if err != nil {
		return Analysis{}, nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if an, ok := a.cache[location]; ok {
		return an, v, nil
	}
	an := a.Seg.Segment(v)
	a.cache[location] = an
	return an, v, nil
}

// Invalidate drops the cached analysis for a location (used when the
// segment detector is upgraded).
func (a *Analyzer) Invalidate(location string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.cache, location)
}

// SegmentFunc is the implementation of the grammar's segment detector:
// input the video location, output per shot the begin and end frame
// numbers and the classification literal.
func (a *Analyzer) SegmentFunc() detector.Func {
	return func(ctx *detector.Context) ([]detector.Token, error) {
		an, _, err := a.analysis(ctx.Param(0))
		if err != nil {
			return nil, err
		}
		var toks []detector.Token
		for _, s := range an.Shots {
			toks = append(toks,
				detector.Token{Symbol: "frameNo", Value: strconv.Itoa(s.Begin)},
				detector.Token{Symbol: "frameNo", Value: strconv.Itoa(s.End)},
				detector.Token{Value: s.Kind.String()},
			)
		}
		return toks, nil
	}
}

// TennisFunc is the implementation of the grammar's tennis detector:
// input the location and the shot's begin/end frame numbers, output
// per frame the frame number and the player's shape features.
func (a *Analyzer) TennisFunc() detector.Func {
	return func(ctx *detector.Context) ([]detector.Token, error) {
		location := ctx.Param(0)
		begin, err := strconv.Atoi(ctx.Param(1))
		if err != nil {
			return nil, fmt.Errorf("cobra: bad begin frame %q", ctx.Param(1))
		}
		end, err := strconv.Atoi(ctx.Param(2))
		if err != nil {
			return nil, fmt.Errorf("cobra: bad end frame %q", ctx.Param(2))
		}
		an, v, err := a.analysis(location)
		if err != nil {
			return nil, err
		}
		tracker := NewTracker()
		track := tracker.Track(v, begin, end, an.CourtColor())
		var toks []detector.Token
		for _, ff := range track {
			toks = append(toks,
				detector.Token{Symbol: "frameNo", Value: strconv.Itoa(ff.FrameNo)},
				detector.Token{Symbol: "xPos", Value: strconv.FormatFloat(ff.X, 'f', 1, 64)},
				detector.Token{Symbol: "yPos", Value: strconv.FormatFloat(ff.Y, 'f', 1, 64)},
				detector.Token{Symbol: "Area", Value: strconv.Itoa(ff.Area)},
				detector.Token{Symbol: "Ecc", Value: strconv.FormatFloat(ff.Eccentricity, 'f', 3, 64)},
				detector.Token{Symbol: "Orient", Value: strconv.FormatFloat(ff.Orientation, 'f', 3, 64)},
			)
		}
		return toks, nil
	}
}

// StrokeFunc is the implementation of the stroke detector of the
// extended grammar (TennisGrammarWithStrokes): it tracks the player
// through the shot, quantizes the motion into observation symbols and
// classifies the stroke with the trained per-class HMMs.
func (a *Analyzer) StrokeFunc(rec *StrokeRecognizer) detector.Func {
	return func(ctx *detector.Context) ([]detector.Token, error) {
		location := ctx.Param(0)
		begin, err := strconv.Atoi(ctx.Param(1))
		if err != nil {
			return nil, fmt.Errorf("cobra: bad begin frame %q", ctx.Param(1))
		}
		end, err := strconv.Atoi(ctx.Param(2))
		if err != nil {
			return nil, fmt.Errorf("cobra: bad end frame %q", ctx.Param(2))
		}
		an, v, err := a.analysis(location)
		if err != nil {
			return nil, err
		}
		track := NewTracker().Track(v, begin, end, an.CourtColor())
		obs := QuantizeMotion(track)
		if len(obs) == 0 {
			return []detector.Token{{Symbol: "label", Value: "unknown"}}, nil
		}
		class, _, err := rec.Classify(obs)
		if err != nil {
			return nil, err
		}
		return []detector.Token{{Symbol: "label", Value: class}}, nil
	}
}

// HeaderFunc is the implementation of the header detector of Figure 6:
// it resolves a location to its primary and secondary MIME type. The
// fetcher interface stands in for the paper's W3C WWW library.
func HeaderFunc(mime func(location string) (primary, secondary string, err error)) detector.Func {
	return func(ctx *detector.Context) ([]detector.Token, error) {
		p, s, err := mime(ctx.Param(0))
		if err != nil {
			return nil, err
		}
		return []detector.Token{
			{Symbol: "primary", Value: p},
			{Symbol: "secondary", Value: s},
		}, nil
	}
}
