package cobra

import (
	"math"
	"math/rand"
	"testing"
)

func TestHMMRowsNormalised(t *testing.T) {
	h := NewHMM(4, 6, 1)
	check := func(row []float64) {
		s := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row sums to %v", s)
		}
	}
	check(h.Pi)
	for i := 0; i < h.N; i++ {
		check(h.A[i])
		check(h.B[i])
	}
}

func TestViterbiDeterministicChain(t *testing.T) {
	// Two states; state 0 always emits 0, state 1 always emits 1;
	// transitions deterministic 0->1->1.
	h := &HMM{
		N: 2, M: 2,
		Pi: []float64{1, 0},
		A:  [][]float64{{0, 1}, {0, 1}},
		B:  [][]float64{{1, 0}, {0, 1}},
	}
	path, ll, err := h.Viterbi([]int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 0 || path[1] != 1 || path[2] != 1 {
		t.Fatalf("path = %v", path)
	}
	if ll == math.Inf(-1) {
		t.Fatal("valid sequence has -inf likelihood")
	}
	// Impossible sequence.
	_, ll2, err := h.Viterbi([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ll2 != math.Inf(-1) {
		t.Fatalf("impossible sequence ll = %v", ll2)
	}
}

func TestLogLikelihoodMatchesDirectComputation(t *testing.T) {
	h := &HMM{
		N: 1, M: 2,
		Pi: []float64{1},
		A:  [][]float64{{1}},
		B:  [][]float64{{0.25, 0.75}},
	}
	// P(0,1,1) = 0.25 * 0.75 * 0.75
	ll, err := h.LogLikelihood([]int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.25 * 0.75 * 0.75)
	if math.Abs(ll-want) > 1e-9 {
		t.Fatalf("ll = %v, want %v", ll, want)
	}
}

func TestHMMErrors(t *testing.T) {
	h := NewHMM(2, 3, 1)
	if _, err := h.LogLikelihood(nil); err == nil {
		t.Fatal("empty sequence should error")
	}
	if _, err := h.LogLikelihood([]int{5}); err == nil {
		t.Fatal("out-of-range symbol should error")
	}
	if _, _, err := h.Viterbi([]int{-1}); err == nil {
		t.Fatal("negative symbol should error")
	}
	if err := h.BaumWelch([][]int{{0}, {}}, 1); err == nil {
		t.Fatal("empty training sequence should error")
	}
	if err := h.BaumWelch([][]int{{9}}, 1); err == nil {
		t.Fatal("bad training symbol should error")
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := strokeTruth("forehand")
	var seqs [][]int
	for i := 0; i < 30; i++ {
		seqs = append(seqs, truth.Sample(12, rng))
	}
	h := NewHMM(3, 8, 9)
	before := totalLL(t, h, seqs)
	if err := h.BaumWelch(seqs, 10); err != nil {
		t.Fatal(err)
	}
	after := totalLL(t, h, seqs)
	if after <= before {
		t.Fatalf("training did not improve likelihood: %v -> %v", before, after)
	}
}

func totalLL(t *testing.T, h *HMM, seqs [][]int) float64 {
	t.Helper()
	s := 0.0
	for _, q := range seqs {
		ll, err := h.LogLikelihood(q)
		if err != nil {
			t.Fatal(err)
		}
		s += ll
	}
	return s
}

// TestHMMStrokeRecognition is experiment E15: per-class HMMs trained
// with Baum-Welch must recognise held-out stroke sequences.
func TestHMMStrokeRecognition(t *testing.T) {
	train := StrokeDataset(25, 14, 100)
	rec, err := TrainStrokes(train, 3, 8, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Classes(); len(got) != len(StrokeClasses) {
		t.Fatalf("classes = %v", got)
	}
	test := StrokeDataset(15, 14, 200) // fresh seed: held-out data
	correct, total := 0, 0
	for class, seqs := range test {
		for _, q := range seqs {
			got, ll, err := rec.Classify(q)
			if err != nil {
				t.Fatal(err)
			}
			if ll == math.Inf(-1) {
				t.Fatal("classification with -inf likelihood")
			}
			if got == class {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("stroke recognition accuracy %.2f < 0.85 (%d/%d)", acc, correct, total)
	}
	t.Logf("stroke recognition accuracy: %.2f (%d/%d)", acc, correct, total)
}

func TestSmoothRemovesZeroEmissions(t *testing.T) {
	h := &HMM{
		N: 2, M: 3,
		Pi: []float64{1, 0},
		A:  [][]float64{{1, 0}, {0, 1}},
		B:  [][]float64{{1, 0, 0}, {0, 1, 0}},
	}
	// Symbol 2 is impossible before smoothing.
	if ll, err := h.LogLikelihood([]int{2}); err != nil || !math.IsInf(ll, -1) && ll > -600 {
		t.Fatalf("precondition: ll = %v, %v", ll, err)
	}
	h.Smooth(1e-6)
	ll, err := h.LogLikelihood([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ll, -1) || math.IsNaN(ll) {
		t.Fatalf("smoothed model still assigns ll = %v", ll)
	}
	// Rows remain normalised.
	for i := 0; i < h.N; i++ {
		s := 0.0
		for _, v := range h.B[i] {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v after smoothing", i, s)
		}
	}
}

func TestClassifyWithoutModels(t *testing.T) {
	r := &StrokeRecognizer{models: map[string]*HMM{}}
	if _, _, err := r.Classify([]int{0}); err == nil {
		t.Fatal("classification without models should error")
	}
}

func TestSampleRespectsModel(t *testing.T) {
	// A model that can only emit symbol 2.
	h := &HMM{N: 1, M: 3, Pi: []float64{1}, A: [][]float64{{1}}, B: [][]float64{{0, 0, 1}}}
	rng := rand.New(rand.NewSource(8))
	for _, s := range h.Sample(50, rng) {
		if s != 2 {
			t.Fatalf("sampled impossible symbol %d", s)
		}
	}
}

func BenchmarkHMMViterbi(b *testing.B) {
	truth := strokeTruth("serve")
	rng := rand.New(rand.NewSource(1))
	obs := truth.Sample(50, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := truth.Viterbi(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaumWelchIteration(b *testing.B) {
	train := StrokeDataset(10, 12, 5)
	var seqs [][]int
	for _, s := range train {
		seqs = append(seqs, s...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHMM(3, 8, int64(i))
		if err := h.BaumWelch(seqs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
