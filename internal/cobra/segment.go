// Package cobra implements the COntent-Based RetrievAl (COBRA) video
// data model [PJ00] and the tennis video analysis of the paper: shot
// segmentation by colour-histogram differences, self-calibrating court
// detection via dominant colours, shot classification into the four
// categories of Figure 5 (tennis / close-up / audience / other), player
// segmentation and tracking with shape features, rule-based event
// recognition and HMM-based stroke recognition [PJZ01].
//
// The model distinguishes four layers: raw data, features, objects and
// events; this package takes raw frames (package video) to features
// (histograms, moments), objects (the tracked player) and events
// (netplay, strokes).
package cobra

import (
	"math"

	"dlsearch/internal/video"
)

// HistBins is the size of the quantized RGB colour histogram (4 levels
// per channel).
const HistBins = 64

// Histogram is a normalised 64-bin colour histogram: the feature-layer
// representation of a frame.
type Histogram [HistBins]float64

// bin quantizes a pixel to its histogram bin.
func bin(c video.RGB) int {
	return int(c.R>>6)<<4 | int(c.G>>6)<<2 | int(c.B>>6)
}

// FrameHistogram computes the normalised colour histogram of a frame.
func FrameHistogram(f *video.Frame) Histogram {
	var h Histogram
	for _, p := range f.Pix {
		h[bin(p)]++
	}
	n := float64(len(f.Pix))
	for i := range h {
		h[i] /= n
	}
	return h
}

// Diff is the L1 distance between two histograms, in [0, 2]; shot
// boundaries appear as spikes of this difference between neighbouring
// frames.
func (h Histogram) Diff(o Histogram) float64 {
	d := 0.0
	for i := range h {
		d += math.Abs(h[i] - o[i])
	}
	return d
}

// Entropy returns the Shannon entropy of the histogram in bits; the
// paper uses entropy characteristics for shot classification.
func (h Histogram) Entropy() float64 {
	e := 0.0
	for _, p := range h {
		if p > 0 {
			e -= p * math.Log2(p)
		}
	}
	return e
}

// Dominant returns the dominant bin and its fraction.
func (h Histogram) Dominant() (int, float64) {
	best, frac := 0, 0.0
	for i, p := range h {
		if p > frac {
			best, frac = i, p
		}
	}
	return best, frac
}

// isSkin is the skin-colour rule used for close-up detection.
func isSkin(c video.RGB) bool {
	return c.R > 180 && c.G > 120 && c.G < 210 && c.B > 60 && c.B < 160 && c.R > c.G && c.G > c.B
}

// SkinRatio returns the fraction of skin-coloured pixels.
func SkinRatio(f *video.Frame) float64 {
	n := 0
	for _, p := range f.Pix {
		if isSkin(p) {
			n++
		}
	}
	return float64(n) / float64(len(f.Pix))
}

// IntensityStats returns the mean and variance of pixel intensity,
// additional classification features mentioned in the paper.
func IntensityStats(f *video.Frame) (mean, variance float64) {
	for _, p := range f.Pix {
		mean += float64(int(p.R)+int(p.G)+int(p.B)) / 3
	}
	mean /= float64(len(f.Pix))
	for _, p := range f.Pix {
		d := float64(int(p.R)+int(p.G)+int(p.B))/3 - mean
		variance += d * d
	}
	variance /= float64(len(f.Pix))
	return mean, variance
}

// Shot is a detected shot with its classification features.
type Shot struct {
	Begin, End   int // frame numbers, inclusive
	Kind         video.ShotKind
	DominantBin  int
	DominantFrac float64
	Skin         float64
	Entropy      float64
	Mean, Var    float64
}

// Segmenter holds the (court-independent) thresholds of the
// segmentation and classification algorithm.
type Segmenter struct {
	// BoundaryThreshold on the histogram L1 difference between
	// neighbouring frames.
	BoundaryThreshold float64
	// SkinThreshold on the skin-pixel fraction for close-ups.
	SkinThreshold float64
	// EntropyThreshold above which a non-court shot is audience.
	EntropyThreshold float64
	// CourtFracThreshold on the dominant-colour fraction for court
	// shots.
	CourtFracThreshold float64
}

// NewSegmenter returns a segmenter with the calibrated defaults.
func NewSegmenter() *Segmenter {
	return &Segmenter{
		BoundaryThreshold:  0.8,
		SkinThreshold:      0.20,
		EntropyThreshold:   5.0,
		CourtFracThreshold: 0.35,
	}
}

// Analysis is the result of segmenting one video.
type Analysis struct {
	Shots    []Shot
	CourtBin int // histogram bin of the detected court colour
	// courtRGB is the estimated mean colour of court pixels ("estimated
	// statistics of the tennis field color" in the paper's tracking
	// step); more precise than the bin centre.
	courtRGB    video.RGB
	hasCourtRGB bool
}

// Segment detects shot boundaries, derives per-shot features,
// self-calibrates the court colour (the dominant colour occurring most
// frequently across shots — this is what makes the algorithm work for
// any court class without parameter changes) and classifies every shot.
func (s *Segmenter) Segment(v *video.Video) Analysis {
	var a Analysis
	if len(v.Frames) == 0 {
		return a
	}
	// 1. Shot boundaries from histogram differences.
	hists := make([]Histogram, len(v.Frames))
	for i, f := range v.Frames {
		hists[i] = FrameHistogram(f)
	}
	var bounds []int // first frame of each shot
	bounds = append(bounds, 0)
	for i := 1; i < len(hists); i++ {
		if hists[i-1].Diff(hists[i]) > s.BoundaryThreshold {
			bounds = append(bounds, i)
		}
	}
	// 2. Per-shot features.
	for bi, begin := range bounds {
		end := len(v.Frames) - 1
		if bi+1 < len(bounds) {
			end = bounds[bi+1] - 1
		}
		shot := Shot{Begin: begin, End: end}
		var acc Histogram
		var skin float64
		n := 0
		for f := begin; f <= end; f++ {
			for b := range acc {
				acc[b] += hists[f][b]
			}
			skin += SkinRatio(v.Frames[f])
			n++
		}
		for b := range acc {
			acc[b] /= float64(n)
		}
		shot.Skin = skin / float64(n)
		shot.DominantBin, shot.DominantFrac = acc.Dominant()
		shot.Entropy = acc.Entropy()
		shot.Mean, shot.Var = IntensityStats(v.Frames[begin])
		a.Shots = append(a.Shots, shot)
	}
	// 3. Court colour: the most frequent dominant bin among shots that
	// are plausibly court shots (strong dominant colour, not a face).
	votes := map[int]int{}
	for _, shot := range a.Shots {
		if shot.DominantFrac >= s.CourtFracThreshold && shot.Skin < s.SkinThreshold {
			votes[shot.DominantBin]++
		}
	}
	best, bestVotes := -1, 0
	for b, n := range votes {
		if n > bestVotes || (n == bestVotes && b < best) {
			best, bestVotes = b, n
		}
	}
	a.CourtBin = best
	// Estimate the court colour statistics: the mean RGB of all pixels
	// falling into the court bin.
	if best >= 0 {
		var sr, sg, sb, n float64
		for _, f := range v.Frames {
			for _, p := range f.Pix {
				if bin(p) == best {
					sr += float64(p.R)
					sg += float64(p.G)
					sb += float64(p.B)
					n++
				}
			}
		}
		if n > 0 {
			a.courtRGB = video.RGB{R: uint8(sr / n), G: uint8(sg / n), B: uint8(sb / n)}
			a.hasCourtRGB = true
		}
	}
	// 4. Classification (Figure 5).
	for i := range a.Shots {
		a.Shots[i].Kind = s.classify(a.Shots[i], a.CourtBin)
	}
	return a
}

// classify assigns one of the four categories.
func (s *Segmenter) classify(shot Shot, courtBin int) video.ShotKind {
	switch {
	case shot.Skin >= s.SkinThreshold:
		return video.Closeup
	case courtBin >= 0 && shot.DominantBin == courtBin && shot.DominantFrac >= s.CourtFracThreshold:
		return video.Tennis
	case shot.Entropy >= s.EntropyThreshold:
		return video.Audience
	default:
		return video.Other
	}
}

// CourtColor returns the estimated court colour: the mean of the
// pixels in the detected court bin, falling back to the bin centre.
func (a Analysis) CourtColor() video.RGB {
	if a.hasCourtRGB {
		return a.courtRGB
	}
	if a.CourtBin < 0 {
		return video.RGB{}
	}
	r := uint8((a.CourtBin>>4)&3)<<6 + 32
	g := uint8((a.CourtBin>>2)&3)<<6 + 32
	b := uint8(a.CourtBin&3)<<6 + 32
	return video.RGB{R: r, G: g, B: b}
}
