package cobra

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"dlsearch/internal/detector"
	"dlsearch/internal/fde"
	"dlsearch/internal/fg"
	"dlsearch/internal/video"
)

func analyzerFixture(t *testing.T) (*Analyzer, string, *video.Video) {
	t.Helper()
	lib := video.NewLibrary()
	specs := []video.ShotSpec{
		{Kind: video.Tennis, Frames: 12, Court: video.HardBlue, Netplay: true},
		{Kind: video.Closeup, Frames: 6},
		{Kind: video.Tennis, Frames: 12, Court: video.HardBlue, Netplay: false},
		{Kind: video.Other, Frames: 6},
	}
	v := video.Generate(specs, video.Options{Seed: 77})
	url := "http://ausopen.org/video/final.mpg"
	lib.Put(url, v)
	return NewAnalyzer(lib), url, v
}

func TestSegmentFuncTokens(t *testing.T) {
	a, url, v := analyzerFixture(t)
	toks, err := a.SegmentFunc()(&detector.Context{Params: []string{url}})
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3*len(v.Truth) {
		t.Fatalf("tokens = %d, want %d", len(toks), 3*len(v.Truth))
	}
	// First shot: begin, end, "tennis".
	if toks[0].Symbol != "frameNo" || toks[0].Value != "0" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[2].Symbol != "" || toks[2].Value != "tennis" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	// Missing video errors.
	if _, err := a.SegmentFunc()(&detector.Context{Params: []string{"http://nope"}}); err == nil {
		t.Fatal("missing video should error")
	}
}

func TestTennisFuncTokens(t *testing.T) {
	a, url, _ := analyzerFixture(t)
	toks, err := a.TennisFunc()(&detector.Context{Params: []string{url, "0", "11"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 12*6 {
		t.Fatalf("tokens = %d, want %d", len(toks), 12*6)
	}
	// Netplay shot: some yPos must be at or below the net threshold.
	sawNet := false
	for i := 0; i < len(toks); i += 6 {
		if toks[i+2].Symbol != "yPos" {
			t.Fatalf("token layout wrong at %d: %+v", i, toks[i+2])
		}
		y, err := strconv.ParseFloat(toks[i+2].Value, 64)
		if err != nil {
			t.Fatal(err)
		}
		if y <= video.NetRowFullRes {
			sawNet = true
		}
	}
	if !sawNet {
		t.Fatal("netplay shot produced no near-net positions")
	}
	// Bad parameters.
	if _, err := a.TennisFunc()(&detector.Context{Params: []string{url, "x", "11"}}); err == nil {
		t.Fatal("bad begin should error")
	}
	if _, err := a.TennisFunc()(&detector.Context{Params: []string{url, "0", "y"}}); err == nil {
		t.Fatal("bad end should error")
	}
}

func TestAnalyzerCaching(t *testing.T) {
	a, url, _ := analyzerFixture(t)
	if _, _, err := a.analysis(url); err != nil {
		t.Fatal(err)
	}
	an1, _, _ := a.analysis(url)
	an2, _, _ := a.analysis(url)
	if &an1 == &an2 {
		t.Skip("values are copies; identity check not meaningful")
	}
	if len(a.cache) != 1 {
		t.Fatalf("cache size = %d", len(a.cache))
	}
	a.Invalidate(url)
	if len(a.cache) != 0 {
		t.Fatal("Invalidate did not clear the cache")
	}
}

func TestHeaderFunc(t *testing.T) {
	fn := HeaderFunc(func(loc string) (string, string, error) {
		if strings.HasSuffix(loc, ".mpg") {
			return "video", "mpeg", nil
		}
		return "", "", fmt.Errorf("unknown")
	})
	toks, err := fn(&detector.Context{Params: []string{"a.mpg"}})
	if err != nil || len(toks) != 2 || toks[0].Value != "video" {
		t.Fatalf("toks = %v, %v", toks, err)
	}
	if _, err := fn(&detector.Context{Params: []string{"a.xyz"}}); err == nil {
		t.Fatal("unknown MIME should error")
	}
}

// TestEndToEndGrammarOverRealAnalysis runs the full Figure 6+7 grammar
// with the real COBRA detectors over a generated broadcast: the
// complete logical-level pipeline of the paper on this substrate.
func TestEndToEndGrammarOverRealAnalysis(t *testing.T) {
	a, url, v := analyzerFixture(t)
	g := fg.MustParse(fg.TennisGrammar)
	reg := detector.NewRegistry()
	reg.Register(&detector.Impl{Name: "header", Version: detector.Version{Major: 1},
		Fn: HeaderFunc(func(loc string) (string, string, error) { return "video", "mpeg", nil })})
	reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Fn: a.SegmentFunc()})
	reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Fn: a.TennisFunc()})

	e := fde.New(g, reg)
	tree, err := e.Parse([]detector.Token{{Symbol: "location", Value: url}})
	if err != nil {
		t.Fatalf("end-to-end parse failed: %v", err)
	}
	shots := tree.NodesBySymbol("shot")
	if len(shots) != len(v.Truth) {
		t.Fatalf("shots = %d, want %d", len(shots), len(v.Truth))
	}
	nps := tree.NodesBySymbol("netplay")
	if len(nps) != 2 {
		t.Fatalf("netplay nodes = %d, want 2 (two tennis shots)", len(nps))
	}
	if nps[0].Value != "true" {
		t.Fatalf("shot 1 netplay = %q, want true", nps[0].Value)
	}
	if nps[1].Value != "false" {
		t.Fatalf("shot 3 netplay = %q, want false", nps[1].Value)
	}
}

// TestStrokeExtendedGrammar exercises the grammar-evolution path: the
// extended grammar with the HMM stroke detector parses the same video
// and labels every tennis shot with a stroke class.
func TestStrokeExtendedGrammar(t *testing.T) {
	a, url, v := analyzerFixture(t)
	g := fg.MustParse(fg.TennisGrammarWithStrokes)
	rec, err := TrainStrokes(StrokeDataset(15, 12, 1), 3, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := detector.NewRegistry()
	reg.Register(&detector.Impl{Name: "header", Version: detector.Version{Major: 1},
		Fn: HeaderFunc(func(loc string) (string, string, error) { return "video", "mpeg", nil })})
	reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Fn: a.SegmentFunc()})
	reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Fn: a.TennisFunc()})
	reg.Register(&detector.Impl{Name: "stroke", Version: detector.Version{Major: 1}, Fn: a.StrokeFunc(rec)})

	e := fde.New(g, reg)
	tree, err := e.Parse([]detector.Token{{Symbol: "location", Value: url}})
	if err != nil {
		t.Fatalf("extended parse failed: %v", err)
	}
	labels := tree.NodesBySymbol("label")
	tennisShots := 0
	for _, truth := range v.Truth {
		if truth.Kind == video.Tennis {
			tennisShots++
		}
	}
	if len(labels) != tennisShots {
		t.Fatalf("labels = %d, want one per tennis shot (%d)", len(labels), tennisShots)
	}
	valid := map[string]bool{"unknown": true}
	for _, c := range StrokeClasses {
		valid[c] = true
	}
	for _, l := range labels {
		if !valid[l.Value] {
			t.Fatalf("invalid stroke label %q", l.Value)
		}
	}
	// The base grammar still works unchanged side by side.
	base := fde.New(fg.MustParse(fg.TennisGrammar), reg)
	if _, err := base.Parse([]detector.Token{{Symbol: "location", Value: url}}); err != nil {
		t.Fatalf("base grammar broken by extension: %v", err)
	}
}

func BenchmarkSegmentDetector(b *testing.B) {
	lib := video.NewLibrary()
	specs := video.RandomBroadcast(3, 20, video.HardBlue)
	v := video.Generate(specs, video.Options{Seed: 3})
	lib.Put("u", v)
	seg := NewSegmenter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Segment(v)
	}
}

func BenchmarkTracker(b *testing.B) {
	v := video.Generate([]video.ShotSpec{
		{Kind: video.Tennis, Frames: 30, Court: video.HardBlue, Netplay: true},
	}, video.Options{Seed: 5})
	a := NewSegmenter().Segment(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTracker()
		tr.Track(v, 0, len(v.Frames)-1, a.CourtColor())
	}
}
