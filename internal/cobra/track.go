package cobra

import (
	"math"

	"dlsearch/internal/video"
)

// FrameFeatures are the object-layer shape features the tennis
// detector extracts per frame: the player's position plus the standard
// shape features of the paper (mass centre, area, bounding box,
// orientation, eccentricity). Coordinates are reported in the
// full-resolution system (raster × video.CoordScale) so the grammar's
// netplay threshold of 170.0 applies unchanged.
type FrameFeatures struct {
	FrameNo int

	X, Y         float64 // mass centre
	Area         int
	MinX, MinY   int // bounding box (full-res)
	MaxX, MaxY   int
	Orientation  float64
	Eccentricity float64
}

// Tracker performs player segmentation and tracking within court
// shots: an initial quadratic (full-frame) segmentation of the first
// image, then prediction of the player position and a windowed search
// in the neighbourhood for subsequent frames [PJZ01].
type Tracker struct {
	// ColorTolerance is the squared RGB distance within which a pixel
	// counts as court or line (i.e. background).
	ColorTolerance float64
	// SearchRadius is the half-size of the prediction window.
	SearchRadius int
	// MinBlobArea below which a detection is considered lost and a full
	// rescan is performed.
	MinBlobArea int

	// FullScans counts initial/recovery quadratic segmentations;
	// WindowScans counts predicted-window searches. Their ratio shows
	// the tracking optimisation at work.
	FullScans, WindowScans int
}

// NewTracker returns a tracker with calibrated defaults.
func NewTracker() *Tracker {
	return &Tracker{ColorTolerance: 900, SearchRadius: 8, MinBlobArea: 4}
}

func colorDist2(a, b video.RGB) float64 {
	dr := float64(int(a.R) - int(b.R))
	dg := float64(int(a.G) - int(b.G))
	db := float64(int(a.B) - int(b.B))
	return dr*dr + dg*dg + db*db
}

// isBackground classifies court surface, court lines and the crowd
// band as background using the estimated court colour statistics.
func (t *Tracker) isBackground(f *video.Frame, x, y int, court video.RGB) bool {
	if y < f.H/8 { // crowd band above the court
		return true
	}
	p := f.At(x, y)
	if colorDist2(p, court) <= t.ColorTolerance {
		return true
	}
	return colorDist2(p, video.LineWhite) <= t.ColorTolerance
}

// blob is a connected component of foreground pixels.
type blob struct {
	pixels [][2]int
}

// segmentWindow finds the largest foreground blob within the given
// window (pixel coordinates, clamped to the frame).
func (t *Tracker) segmentWindow(f *video.Frame, court video.RGB, x0, y0, x1, y1 int) blob {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	visited := make(map[int]bool)
	var best blob
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			idx := y*f.W + x
			if visited[idx] || t.isBackground(f, x, y, court) {
				continue
			}
			// BFS flood fill within the window.
			var b blob
			queue := [][2]int{{x, y}}
			visited[idx] = true
			for len(queue) > 0 {
				px := queue[0]
				queue = queue[1:]
				b.pixels = append(b.pixels, px)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := px[0]+d[0], px[1]+d[1]
					if nx < x0 || nx >= x1 || ny < y0 || ny >= y1 {
						continue
					}
					nidx := ny*f.W + nx
					if visited[nidx] || t.isBackground(f, nx, ny, court) {
						continue
					}
					visited[nidx] = true
					queue = append(queue, [2]int{nx, ny})
				}
			}
			if len(b.pixels) > len(best.pixels) {
				best = b
			}
		}
	}
	return best
}

// features derives the shape features from a blob.
func features(b blob, frameNo int) FrameFeatures {
	ff := FrameFeatures{FrameNo: frameNo}
	if len(b.pixels) == 0 {
		return ff
	}
	var sx, sy float64
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := -1, -1
	for _, p := range b.pixels {
		sx += float64(p[0])
		sy += float64(p[1])
		if p[0] < minX {
			minX = p[0]
		}
		if p[0] > maxX {
			maxX = p[0]
		}
		if p[1] < minY {
			minY = p[1]
		}
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	n := float64(len(b.pixels))
	cx, cy := sx/n, sy/n
	// Central second moments.
	var mu20, mu02, mu11 float64
	for _, p := range b.pixels {
		dx, dy := float64(p[0])-cx, float64(p[1])-cy
		mu20 += dx * dx
		mu02 += dy * dy
		mu11 += dx * dy
	}
	mu20 /= n
	mu02 /= n
	mu11 /= n
	ff.Area = len(b.pixels)
	ff.X = cx * video.CoordScale
	ff.Y = cy * video.CoordScale
	ff.MinX = int(float64(minX) * video.CoordScale)
	ff.MinY = int(float64(minY) * video.CoordScale)
	ff.MaxX = int(float64(maxX) * video.CoordScale)
	ff.MaxY = int(float64(maxY) * video.CoordScale)
	ff.Orientation = 0.5 * math.Atan2(2*mu11, mu20-mu02)
	den := (mu20 + mu02) * (mu20 + mu02)
	if den > 0 {
		ff.Eccentricity = ((mu20-mu02)*(mu20-mu02) + 4*mu11*mu11) / den
	}
	return ff
}

// Track segments and tracks the player through the frames
// [begin, end] of a video: full quadratic segmentation of the first
// frame, then windowed search around the predicted position, with a
// full rescan whenever the player is lost.
func (t *Tracker) Track(v *video.Video, begin, end int, court video.RGB) []FrameFeatures {
	var out []FrameFeatures
	if begin < 0 || end >= len(v.Frames) || begin > end {
		return out
	}
	var prev, vel [2]float64
	havePrev := false
	for fn := begin; fn <= end; fn++ {
		f := v.Frames[fn]
		var b blob
		if havePrev {
			// Predict and search the neighbourhood.
			px := int(prev[0]+vel[0]) / int(video.CoordScale)
			py := int(prev[1]+vel[1]) / int(video.CoordScale)
			t.WindowScans++
			b = t.segmentWindow(f, court, px-t.SearchRadius, py-t.SearchRadius, px+t.SearchRadius+1, py+t.SearchRadius+1)
		}
		if len(b.pixels) < t.MinBlobArea {
			// Initial or recovery segmentation: the whole frame.
			t.FullScans++
			b = t.segmentWindow(f, court, 0, 0, f.W, f.H)
		}
		ff := features(b, fn)
		if havePrev {
			vel = [2]float64{ff.X - prev[0], ff.Y - prev[1]}
		}
		prev = [2]float64{ff.X, ff.Y}
		havePrev = true
		out = append(out, ff)
	}
	return out
}

// Event is an event-layer entity: a recognised high-level concept over
// a span of frames.
type Event struct {
	Name       string
	Begin, End int
}

// DetectNetplay applies the event-grammar rule of the paper: the
// player approaches the net if in some frame the y position is at or
// above (i.e. numerically below) the net threshold.
func DetectNetplay(track []FrameFeatures) bool {
	for _, ff := range track {
		if ff.Area > 0 && ff.Y <= video.NetRowFullRes {
			return true
		}
	}
	return false
}

// Events derives the event layer for a tracked shot: netplay and
// baseline rallies.
func Events(track []FrameFeatures, begin, end int) []Event {
	var out []Event
	if DetectNetplay(track) {
		out = append(out, Event{Name: "netplay", Begin: begin, End: end})
	} else if len(track) > 0 {
		out = append(out, Event{Name: "baseline_rally", Begin: begin, End: end})
	}
	return out
}
