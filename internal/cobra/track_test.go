package cobra

import (
	"math"
	"testing"

	"dlsearch/internal/video"
)

func trackShot(t *testing.T, netplay bool, court video.CourtKind, seed int64) ([]FrameFeatures, *video.Video, *Tracker) {
	t.Helper()
	v := video.Generate([]video.ShotSpec{
		{Kind: video.Tennis, Frames: 14, Court: court, Netplay: netplay},
	}, video.Options{Seed: seed})
	a := NewSegmenter().Segment(v)
	if len(a.Shots) != 1 || a.Shots[0].Kind != video.Tennis {
		t.Fatalf("segmentation precondition failed: %+v", a.Shots)
	}
	tr := NewTracker()
	track := tr.Track(v, 0, len(v.Frames)-1, a.CourtColor())
	return track, v, tr
}

func TestTrackFollowsPlayer(t *testing.T) {
	track, v, _ := trackShot(t, false, video.HardBlue, 17)
	if len(track) != len(v.Frames) {
		t.Fatalf("track frames = %d", len(track))
	}
	for i, ff := range track {
		truth := v.Truth[0].Track[i]
		if ff.Area < 10 || ff.Area > 40 {
			t.Fatalf("frame %d: area = %d, expected a ~21px blob", i, ff.Area)
		}
		dx := ff.X/video.CoordScale - float64(truth.X)
		dy := ff.Y/video.CoordScale - float64(truth.Y)
		if math.Abs(dx) > 3 || math.Abs(dy) > 3 {
			t.Fatalf("frame %d: tracked (%.1f,%.1f), truth (%d,%d)",
				i, ff.X/video.CoordScale, ff.Y/video.CoordScale, truth.X, truth.Y)
		}
	}
}

func TestTrackerUsesWindowedSearch(t *testing.T) {
	_, _, tr := trackShot(t, false, video.GrassGreen, 23)
	if tr.FullScans < 1 {
		t.Fatal("initial segmentation must be a full scan")
	}
	if tr.WindowScans == 0 {
		t.Fatal("subsequent frames must use the prediction window")
	}
	if tr.FullScans > tr.WindowScans {
		t.Fatalf("tracking degenerated to full scans: %d full vs %d window", tr.FullScans, tr.WindowScans)
	}
}

func TestNetplayDetection(t *testing.T) {
	nettrack, _, _ := trackShot(t, true, video.ClayRed, 31)
	if !DetectNetplay(nettrack) {
		t.Fatal("net approach not detected")
	}
	base, _, _ := trackShot(t, false, video.ClayRed, 31)
	if DetectNetplay(base) {
		t.Fatal("baseline rally misdetected as netplay")
	}
}

func TestEventsLayer(t *testing.T) {
	nettrack, _, _ := trackShot(t, true, video.HardBlue, 41)
	evs := Events(nettrack, 0, 13)
	if len(evs) != 1 || evs[0].Name != "netplay" {
		t.Fatalf("events = %v", evs)
	}
	base, _, _ := trackShot(t, false, video.HardBlue, 41)
	evs = Events(base, 0, 13)
	if len(evs) != 1 || evs[0].Name != "baseline_rally" {
		t.Fatalf("events = %v", evs)
	}
	if got := Events(nil, 0, 0); len(got) != 0 {
		t.Fatalf("empty track events = %v", got)
	}
}

func TestShapeFeatures(t *testing.T) {
	track, _, _ := trackShot(t, false, video.HardBlue, 53)
	ff := track[0]
	// The player blob is 3 wide × 7 tall: elongated vertically.
	if ff.MaxY-ff.MinY <= ff.MaxX-ff.MinX {
		t.Fatalf("bounding box not vertical: x %d..%d, y %d..%d", ff.MinX, ff.MaxX, ff.MinY, ff.MaxY)
	}
	if ff.Eccentricity < 0.3 {
		t.Fatalf("eccentricity = %v, expected an elongated blob", ff.Eccentricity)
	}
	// Orientation of a vertical blob: |θ| near π/2.
	if math.Abs(math.Abs(ff.Orientation)-math.Pi/2) > 0.3 {
		t.Fatalf("orientation = %v, expected ±π/2", ff.Orientation)
	}
	// Mass centre inside the bounding box.
	if ff.X < float64(ff.MinX) || ff.X > float64(ff.MaxX) || ff.Y < float64(ff.MinY) || ff.Y > float64(ff.MaxY) {
		t.Fatal("mass centre outside bounding box")
	}
}

func TestTrackInvalidRange(t *testing.T) {
	v := video.Generate([]video.ShotSpec{{Kind: video.Tennis, Frames: 5, Court: video.HardBlue}}, video.Options{Seed: 1})
	tr := NewTracker()
	if got := tr.Track(v, 3, 2, video.HardBlue.Color()); len(got) != 0 {
		t.Fatalf("inverted range returned %d frames", len(got))
	}
	if got := tr.Track(v, 0, 99, video.HardBlue.Color()); len(got) != 0 {
		t.Fatalf("out-of-range returned %d frames", len(got))
	}
}

func TestQuantizeMotion(t *testing.T) {
	track := []FrameFeatures{
		{X: 0, Y: 100},
		{X: 50, Y: 100}, // moving right: angle 0 -> sector 4
		{X: 50, Y: 50},  // moving up (dy<0): angle -π/2 -> sector 2
	}
	syms := QuantizeMotion(track)
	if len(syms) != 2 {
		t.Fatalf("symbols = %v", syms)
	}
	if syms[0] != 4 || syms[1] != 2 {
		t.Fatalf("symbols = %v, want [4 2]", syms)
	}
	for _, s := range syms {
		if s < 0 || s > 7 {
			t.Fatalf("symbol %d out of range", s)
		}
	}
	if got := QuantizeMotion(nil); len(got) != 0 {
		t.Fatal("empty track should yield no symbols")
	}
}
