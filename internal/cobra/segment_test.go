package cobra

import (
	"testing"

	"dlsearch/internal/video"
)

// classify a standard broadcast and match detected shots against the
// generator's ground truth by frame overlap.
func runBroadcast(t *testing.T, seed int64, shots int, court video.CourtKind) (*video.Video, Analysis) {
	t.Helper()
	specs := video.RandomBroadcast(seed, shots, court)
	v := video.Generate(specs, video.Options{Seed: seed})
	return v, NewSegmenter().Segment(v)
}

// TestShotBoundariesExact: on the synthetic broadcast every cut is a
// histogram spike, so boundaries must be recovered exactly.
func TestShotBoundariesExact(t *testing.T) {
	v, a := runBroadcast(t, 21, 20, video.HardBlue)
	if len(a.Shots) != len(v.Truth) {
		t.Fatalf("detected %d shots, truth has %d", len(a.Shots), len(v.Truth))
	}
	for i, s := range a.Shots {
		if s.Begin != v.Truth[i].Begin || s.End != v.Truth[i].End {
			t.Fatalf("shot %d = [%d,%d], truth [%d,%d]", i, s.Begin, s.End, v.Truth[i].Begin, v.Truth[i].End)
		}
	}
}

// TestShotClassificationAccuracy is experiment E14 (Figure 5): the
// four-way classification must be essentially perfect on the clean
// synthetic broadcast for every court class — the paper's point is
// that the algorithm needs no per-court retuning.
func TestShotClassificationAccuracy(t *testing.T) {
	for _, court := range []video.CourtKind{video.HardBlue, video.GrassGreen, video.ClayRed} {
		v, a := runBroadcast(t, 99, 30, court)
		if len(a.Shots) != len(v.Truth) {
			t.Fatalf("court %v: boundary mismatch", court)
		}
		correct := 0
		for i, s := range a.Shots {
			if s.Kind == v.Truth[i].Kind {
				correct++
			} else {
				t.Logf("court %v shot %d: got %v, want %v (skin=%.2f frac=%.2f entropy=%.2f)",
					court, i, s.Kind, v.Truth[i].Kind, s.Skin, s.DominantFrac, s.Entropy)
			}
		}
		acc := float64(correct) / float64(len(a.Shots))
		if acc < 0.95 {
			t.Fatalf("court %v: classification accuracy %.2f < 0.95", court, acc)
		}
	}
}

func TestCourtColorSelfCalibration(t *testing.T) {
	for _, court := range []video.CourtKind{video.HardBlue, video.GrassGreen, video.ClayRed} {
		_, a := runBroadcast(t, 5, 20, court)
		want := bin(court.Color())
		if a.CourtBin != want {
			t.Fatalf("court %v: detected bin %d, want %d", court, a.CourtBin, want)
		}
		cc := a.CourtColor()
		if colorDist2(cc, court.Color()) > 3*64*64 {
			t.Fatalf("court colour %v too far from truth %v", cc, court.Color())
		}
	}
}

func TestSegmentEmptyVideo(t *testing.T) {
	a := NewSegmenter().Segment(&video.Video{})
	if len(a.Shots) != 0 {
		t.Fatal("empty video should yield no shots")
	}
}

func TestHistogramProperties(t *testing.T) {
	f := video.NewFrame(8, 8)
	f.Fill(video.RGB{R: 200, G: 100, B: 50})
	h := FrameHistogram(f)
	sum := 0.0
	for _, p := range h {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("histogram not normalised: %v", sum)
	}
	dom, frac := h.Dominant()
	if frac != 1.0 || dom != bin(video.RGB{R: 200, G: 100, B: 50}) {
		t.Fatalf("dominant = %d (%.2f)", dom, frac)
	}
	if e := h.Entropy(); e != 0 {
		t.Fatalf("uniform frame entropy = %v, want 0", e)
	}
	if d := h.Diff(h); d != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

func TestHistogramDiffDisjoint(t *testing.T) {
	f1 := video.NewFrame(4, 4)
	f1.Fill(video.RGB{})
	f2 := video.NewFrame(4, 4)
	f2.Fill(video.RGB{R: 255, G: 255, B: 255})
	if d := FrameHistogram(f1).Diff(FrameHistogram(f2)); d != 2.0 {
		t.Fatalf("disjoint diff = %v, want 2", d)
	}
}

func TestSkinRatio(t *testing.T) {
	f := video.NewFrame(10, 10)
	f.Fill(video.SkinTone)
	if r := SkinRatio(f); r != 1.0 {
		t.Fatalf("all-skin ratio = %v", r)
	}
	f.Fill(video.HardBlue.Color())
	if r := SkinRatio(f); r != 0.0 {
		t.Fatalf("court skin ratio = %v", r)
	}
}

func TestIntensityStats(t *testing.T) {
	f := video.NewFrame(4, 4)
	f.Fill(video.RGB{R: 90, G: 90, B: 90})
	mean, variance := IntensityStats(f)
	if mean != 90 || variance != 0 {
		t.Fatalf("stats = %v, %v", mean, variance)
	}
}
