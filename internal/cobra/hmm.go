package cobra

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// HMM is a discrete hidden Markov model, the stochastic event-layer
// extension of the COBRA model used for stroke recognition in tennis
// videos [PJZ01]: N hidden states (phases of a stroke), M observation
// symbols (quantized motion features).
type HMM struct {
	N, M int
	Pi   []float64   // initial state distribution
	A    [][]float64 // state transitions
	B    [][]float64 // emissions
}

// NewHMM returns a randomly initialised model (rows normalised), the
// usual starting point for Baum-Welch training.
func NewHMM(n, m int, seed int64) *HMM {
	rng := rand.New(rand.NewSource(seed))
	h := &HMM{N: n, M: m, Pi: make([]float64, n)}
	h.A = make([][]float64, n)
	h.B = make([][]float64, n)
	for i := 0; i < n; i++ {
		h.A[i] = randRow(rng, n)
		h.B[i] = randRow(rng, m)
		h.Pi[i] = 1 / float64(n)
	}
	return h
}

func randRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	sum := 0.0
	for i := range row {
		row[i] = 0.5 + rng.Float64()
		sum += row[i]
	}
	for i := range row {
		row[i] /= sum
	}
	return row
}

// validateObs rejects out-of-range observation symbols.
func (h *HMM) validateObs(obs []int) error {
	for _, o := range obs {
		if o < 0 || o >= h.M {
			return fmt.Errorf("cobra: observation symbol %d outside [0,%d)", o, h.M)
		}
	}
	return nil
}

// forward runs the scaled forward algorithm and returns the scaling
// factors; the log-likelihood is -Σ log(scale).
func (h *HMM) forward(obs []int) (alpha [][]float64, scales []float64) {
	T := len(obs)
	alpha = make([][]float64, T)
	scales = make([]float64, T)
	alpha[0] = make([]float64, h.N)
	c := 0.0
	for i := 0; i < h.N; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
		c += alpha[0][i]
	}
	if c == 0 {
		c = math.SmallestNonzeroFloat64
	}
	scales[0] = 1 / c
	for i := range alpha[0] {
		alpha[0][i] *= scales[0]
	}
	for t := 1; t < T; t++ {
		alpha[t] = make([]float64, h.N)
		c = 0.0
		for j := 0; j < h.N; j++ {
			s := 0.0
			for i := 0; i < h.N; i++ {
				s += alpha[t-1][i] * h.A[i][j]
			}
			alpha[t][j] = s * h.B[j][obs[t]]
			c += alpha[t][j]
		}
		if c == 0 {
			c = math.SmallestNonzeroFloat64
		}
		scales[t] = 1 / c
		for j := range alpha[t] {
			alpha[t][j] *= scales[t]
		}
	}
	return alpha, scales
}

// LogLikelihood returns log P(obs | model).
func (h *HMM) LogLikelihood(obs []int) (float64, error) {
	if len(obs) == 0 {
		return math.Inf(-1), fmt.Errorf("cobra: empty observation sequence")
	}
	if err := h.validateObs(obs); err != nil {
		return math.Inf(-1), err
	}
	_, scales := h.forward(obs)
	ll := 0.0
	for _, c := range scales {
		ll -= math.Log(c)
	}
	return ll, nil
}

// Viterbi returns the most likely hidden state sequence and its log
// probability.
func (h *HMM) Viterbi(obs []int) ([]int, float64, error) {
	if len(obs) == 0 {
		return nil, math.Inf(-1), fmt.Errorf("cobra: empty observation sequence")
	}
	if err := h.validateObs(obs); err != nil {
		return nil, math.Inf(-1), err
	}
	T := len(obs)
	logA := logMatrix(h.A)
	logB := logMatrix(h.B)
	delta := make([][]float64, T)
	psi := make([][]int, T)
	delta[0] = make([]float64, h.N)
	psi[0] = make([]int, h.N)
	for i := 0; i < h.N; i++ {
		delta[0][i] = safeLog(h.Pi[i]) + logB[i][obs[0]]
	}
	for t := 1; t < T; t++ {
		delta[t] = make([]float64, h.N)
		psi[t] = make([]int, h.N)
		for j := 0; j < h.N; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < h.N; i++ {
				v := delta[t-1][i] + logA[i][j]
				if v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + logB[j][obs[t]]
			psi[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for i := 0; i < h.N; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	path := make([]int, T)
	path[T-1] = arg
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, best, nil
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}

func logMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = make([]float64, len(row))
		for j, v := range row {
			out[i][j] = safeLog(v)
		}
	}
	return out
}

// BaumWelch trains the model on multiple observation sequences for the
// given number of iterations (expectation-maximisation with scaling).
func (h *HMM) BaumWelch(seqs [][]int, iters int) error {
	for _, s := range seqs {
		if len(s) == 0 {
			return fmt.Errorf("cobra: empty training sequence")
		}
		if err := h.validateObs(s); err != nil {
			return err
		}
	}
	const eps = 1e-10
	for iter := 0; iter < iters; iter++ {
		piAcc := make([]float64, h.N)
		aNum := zeros(h.N, h.N)
		aDen := make([]float64, h.N)
		bNum := zeros(h.N, h.M)
		bDen := make([]float64, h.N)
		for _, obs := range seqs {
			T := len(obs)
			alpha, scales := h.forward(obs)
			beta := h.backward(obs, scales)
			// gamma[t][i] ∝ alpha[t][i] * beta[t][i]
			for t := 0; t < T; t++ {
				norm := 0.0
				for i := 0; i < h.N; i++ {
					norm += alpha[t][i] * beta[t][i]
				}
				if norm == 0 {
					norm = eps
				}
				for i := 0; i < h.N; i++ {
					g := alpha[t][i] * beta[t][i] / norm
					if t == 0 {
						piAcc[i] += g
					}
					bNum[i][obs[t]] += g
					bDen[i] += g
					if t < T-1 {
						aDen[i] += g
					}
				}
			}
			// xi[t][i][j]
			for t := 0; t < T-1; t++ {
				norm := 0.0
				for i := 0; i < h.N; i++ {
					for j := 0; j < h.N; j++ {
						norm += alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
					}
				}
				if norm == 0 {
					norm = eps
				}
				for i := 0; i < h.N; i++ {
					for j := 0; j < h.N; j++ {
						aNum[i][j] += alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j] / norm
					}
				}
			}
		}
		// Re-estimate.
		nSeq := float64(len(seqs))
		for i := 0; i < h.N; i++ {
			h.Pi[i] = piAcc[i] / nSeq
			for j := 0; j < h.N; j++ {
				if aDen[i] > eps {
					h.A[i][j] = aNum[i][j] / aDen[i]
				}
			}
			for k := 0; k < h.M; k++ {
				if bDen[i] > eps {
					h.B[i][k] = bNum[i][k] / bDen[i]
				}
			}
			normalize(h.A[i])
			normalize(h.B[i])
		}
		normalize(h.Pi)
	}
	return nil
}

func (h *HMM) backward(obs []int, scales []float64) [][]float64 {
	T := len(obs)
	beta := make([][]float64, T)
	beta[T-1] = make([]float64, h.N)
	for i := range beta[T-1] {
		beta[T-1][i] = scales[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		beta[t] = make([]float64, h.N)
		for i := 0; i < h.N; i++ {
			s := 0.0
			for j := 0; j < h.N; j++ {
				s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s * scales[t]
		}
	}
	return beta
}

func zeros(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

func normalize(row []float64) {
	s := 0.0
	for _, v := range row {
		s += v
	}
	if s <= 0 {
		for i := range row {
			row[i] = 1 / float64(len(row))
		}
		return
	}
	for i := range row {
		row[i] /= s
	}
}

// Smooth floors every emission and transition probability at eps and
// renormalises: Baum-Welch drives probabilities of symbols absent from
// the training data to zero, which would assign -∞ log-likelihood to
// any test sequence containing them. Smoothing keeps all models
// comparable on arbitrary observation sequences.
func (h *HMM) Smooth(eps float64) {
	floor := func(row []float64) {
		for i := range row {
			if row[i] < eps {
				row[i] = eps
			}
		}
		normalize(row)
	}
	floor(h.Pi)
	for i := 0; i < h.N; i++ {
		floor(h.A[i])
		floor(h.B[i])
	}
}

// Sample draws an observation sequence of the given length from the
// model; the stroke substrate uses this to synthesise labelled
// training and test data (the paper trains on hand-labelled footage we
// do not have).
func (h *HMM) Sample(length int, rng *rand.Rand) []int {
	obs := make([]int, length)
	state := draw(h.Pi, rng)
	for t := 0; t < length; t++ {
		obs[t] = draw(h.B[state], rng)
		state = draw(h.A[state], rng)
	}
	return obs
}

func draw(dist []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(dist) - 1
}

// StrokeRecognizer holds one trained HMM per stroke class and
// classifies sequences by maximum likelihood.
type StrokeRecognizer struct {
	models map[string]*HMM
}

// TrainStrokes trains one HMM per class on the labelled sequences.
func TrainStrokes(data map[string][][]int, states, symbols, iters int, seed int64) (*StrokeRecognizer, error) {
	r := &StrokeRecognizer{models: make(map[string]*HMM, len(data))}
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		m := NewHMM(states, symbols, seed+int64(i))
		if err := m.BaumWelch(data[name], iters); err != nil {
			return nil, fmt.Errorf("cobra: training %s: %w", name, err)
		}
		m.Smooth(1e-6)
		r.models[name] = m
	}
	return r, nil
}

// Classes returns the trained class names in sorted order.
func (r *StrokeRecognizer) Classes() []string {
	out := make([]string, 0, len(r.models))
	for n := range r.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Classify returns the most likely stroke class and its log-likelihood.
func (r *StrokeRecognizer) Classify(obs []int) (string, float64, error) {
	best, bestLL := "", math.Inf(-1)
	for _, name := range r.Classes() {
		ll, err := r.models[name].LogLikelihood(obs)
		if err != nil {
			return "", 0, err
		}
		if ll > bestLL {
			best, bestLL = name, ll
		}
	}
	if best == "" {
		return "", 0, fmt.Errorf("cobra: no trained stroke models")
	}
	return best, bestLL, nil
}

// StrokeClasses are the stroke types recognised, as in [PJZ01].
var StrokeClasses = []string{"backhand", "forehand", "serve", "smash"}

// strokeTruth returns the generating ("true") model for a stroke
// class: distinct phase structures over 8 motion symbols.
func strokeTruth(class string) *HMM {
	mk := func(pi []float64, a, b [][]float64) *HMM {
		return &HMM{N: len(pi), M: len(b[0]), Pi: pi, A: a, B: b}
	}
	switch class {
	case "forehand":
		return mk(
			[]float64{0.9, 0.1, 0},
			[][]float64{{0.6, 0.4, 0}, {0, 0.6, 0.4}, {0.1, 0, 0.9}},
			[][]float64{
				{0.7, 0.2, 0.05, 0.05, 0, 0, 0, 0},
				{0.05, 0.7, 0.2, 0.05, 0, 0, 0, 0},
				{0, 0.1, 0.7, 0.2, 0, 0, 0, 0},
			})
	case "backhand":
		return mk(
			[]float64{0.9, 0.1, 0},
			[][]float64{{0.6, 0.4, 0}, {0, 0.6, 0.4}, {0.1, 0, 0.9}},
			[][]float64{
				{0, 0, 0, 0, 0.7, 0.2, 0.05, 0.05},
				{0, 0, 0, 0, 0.05, 0.7, 0.2, 0.05},
				{0, 0, 0, 0, 0, 0.1, 0.7, 0.2},
			})
	case "serve":
		return mk(
			[]float64{1, 0, 0},
			[][]float64{{0.5, 0.5, 0}, {0, 0.5, 0.5}, {0, 0, 1}},
			[][]float64{
				{0.1, 0, 0, 0.8, 0.1, 0, 0, 0},
				{0, 0.1, 0, 0.1, 0.8, 0, 0, 0},
				{0.8, 0, 0, 0.1, 0.1, 0, 0, 0},
			})
	default: // smash
		return mk(
			[]float64{1, 0, 0},
			[][]float64{{0.4, 0.6, 0}, {0, 0.4, 0.6}, {0, 0, 1}},
			[][]float64{
				{0, 0, 0.8, 0, 0, 0.1, 0.1, 0},
				{0, 0, 0.1, 0, 0, 0.8, 0.1, 0},
				{0.1, 0, 0.1, 0, 0, 0, 0.8, 0},
			})
	}
}

// StrokeDataset synthesises labelled observation sequences per stroke
// class by sampling each class's true model.
func StrokeDataset(perClass, length int, seed int64) map[string][][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string][][]int, len(StrokeClasses))
	for _, class := range StrokeClasses {
		truth := strokeTruth(class)
		for i := 0; i < perClass; i++ {
			out[class] = append(out[class], truth.Sample(length, rng))
		}
	}
	return out
}

// QuantizeMotion converts a tracked shot into observation symbols: the
// motion direction between consecutive frames quantized into 8
// sectors. This is the feature→symbol mapping the recognizer would use
// over real tracks.
func QuantizeMotion(track []FrameFeatures) []int {
	var out []int
	for i := 1; i < len(track); i++ {
		dx := track[i].X - track[i-1].X
		dy := track[i].Y - track[i-1].Y
		angle := math.Atan2(dy, dx) // [-π, π]
		sector := int((angle + math.Pi) / (2 * math.Pi / 8))
		if sector > 7 {
			sector = 7
		}
		out = append(out, sector)
	}
	return out
}
