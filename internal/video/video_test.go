package video

import (
	"testing"
)

func TestGenerateBasicStructure(t *testing.T) {
	specs := []ShotSpec{
		{Kind: Tennis, Frames: 10, Court: HardBlue, Netplay: true},
		{Kind: Closeup, Frames: 5},
		{Kind: Audience, Frames: 5},
		{Kind: Other, Frames: 5},
	}
	v := Generate(specs, Options{Seed: 1})
	if len(v.Frames) != 25 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	if len(v.Truth) != 4 {
		t.Fatalf("truth = %d", len(v.Truth))
	}
	if v.Truth[0].Begin != 0 || v.Truth[0].End != 9 {
		t.Fatalf("shot 0 = [%d,%d]", v.Truth[0].Begin, v.Truth[0].End)
	}
	if v.Truth[1].Begin != 10 || v.Truth[3].End != 24 {
		t.Fatal("frame ranges not contiguous")
	}
	if len(v.Truth[0].Track) != 10 {
		t.Fatalf("track length = %d", len(v.Truth[0].Track))
	}
	if v.Truth[1].Track != nil {
		t.Fatal("closeup should have no track")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	specs := RandomBroadcast(7, 10, GrassGreen)
	a := Generate(specs, Options{Seed: 42})
	b := Generate(specs, Options{Seed: 42})
	if len(a.Frames) != len(b.Frames) {
		t.Fatal("lengths differ")
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatalf("frame %d pixel %d differs", i, j)
			}
		}
	}
}

func TestNetplayTrajectoryReachesNet(t *testing.T) {
	v := Generate([]ShotSpec{{Kind: Tennis, Frames: 12, Court: ClayRed, Netplay: true}}, Options{Seed: 3})
	track := v.Truth[0].Track
	last := track[len(track)-1]
	if float64(last.Y)*CoordScale > NetRowFullRes {
		t.Fatalf("netplay track ends at y=%d (%.0f full-res), above the net threshold %v",
			last.Y, float64(last.Y)*CoordScale, NetRowFullRes)
	}
	first := track[0]
	if first.Y <= last.Y {
		t.Fatal("approach should move toward the net (decreasing y)")
	}
}

func TestBaselineStaysBack(t *testing.T) {
	v := Generate([]ShotSpec{{Kind: Tennis, Frames: 12, Court: HardBlue, Netplay: false}}, Options{Seed: 3})
	for _, p := range v.Truth[0].Track {
		if float64(p.Y)*CoordScale <= NetRowFullRes {
			t.Fatalf("baseline rally reached the net at y=%d", p.Y)
		}
	}
}

func TestCourtKinds(t *testing.T) {
	seen := map[RGB]bool{}
	for _, c := range []CourtKind{HardBlue, GrassGreen, ClayRed} {
		col := c.Color()
		if seen[col] {
			t.Fatalf("duplicate court colour %v", col)
		}
		seen[col] = true
	}
}

func TestShotKindString(t *testing.T) {
	want := map[ShotKind]string{Tennis: "tennis", Closeup: "closeup", Audience: "audience", Other: "other"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
}

func TestRandomBroadcastNoAdjacentSameKind(t *testing.T) {
	specs := RandomBroadcast(11, 50, HardBlue)
	if len(specs) != 50 {
		t.Fatalf("specs = %d", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Kind == specs[i-1].Kind {
			t.Fatalf("adjacent shots %d,%d share kind %v", i-1, i, specs[i].Kind)
		}
	}
}

func TestDefaultFrames(t *testing.T) {
	v := Generate([]ShotSpec{{Kind: Other}}, Options{Seed: 1})
	if len(v.Frames) == 0 {
		t.Fatal("zero-frame spec should default to a positive length")
	}
}

func TestLibrary(t *testing.T) {
	lib := NewLibrary()
	v := Generate([]ShotSpec{{Kind: Other, Frames: 2}}, Options{Seed: 1})
	lib.Put("http://v/a.mpg", v)
	got, err := lib.Get("http://v/a.mpg")
	if err != nil || got != v {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := lib.Get("http://v/missing.mpg"); err == nil {
		t.Fatal("missing video should error")
	}
	if lib.Len() != 1 {
		t.Fatalf("Len = %d", lib.Len())
	}
}

func TestFrameAccessors(t *testing.T) {
	f := NewFrame(4, 3)
	f.Fill(RGB{R: 9})
	if f.At(3, 2).R != 9 {
		t.Fatal("Fill/At broken")
	}
	f.Set(1, 1, RGB{G: 5})
	if f.At(1, 1).G != 5 {
		t.Fatal("Set broken")
	}
}
