// Package video is the raw-video substrate of the reproduction. The
// paper analyses real Australian Open footage, which is not available;
// this package synthesises broadcasts that exhibit exactly the signals
// the paper's detectors consume — court-coloured playing shots with a
// moving player blob, skin-dominated close-ups, high-entropy audience
// shots, abrupt colour changes at shot boundaries — together with
// ground truth, so the COBRA analysis pipeline (package cobra) runs
// end-to-end and its accuracy is measurable (experiment E14).
package video

import (
	"fmt"
	"math/rand"
)

// RGB is a 24-bit pixel.
type RGB struct{ R, G, B uint8 }

// Frame is a small raster frame.
type Frame struct {
	W, H int
	Pix  []RGB
}

// NewFrame allocates a W×H frame.
func NewFrame(w, h int) *Frame { return &Frame{W: w, H: h, Pix: make([]RGB, w*h)} }

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) RGB { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, c RGB) { f.Pix[y*f.W+x] = c }

// Fill paints the whole frame.
func (f *Frame) Fill(c RGB) {
	for i := range f.Pix {
		f.Pix[i] = c
	}
}

// ShotKind is the ground-truth class of a shot, matching the four
// categories of the paper's Figure 5.
type ShotKind int

// Shot classes.
const (
	Tennis ShotKind = iota
	Closeup
	Audience
	Other
)

func (k ShotKind) String() string {
	switch k {
	case Tennis:
		return "tennis"
	case Closeup:
		return "closeup"
	case Audience:
		return "audience"
	default:
		return "other"
	}
}

// CourtKind selects the court surface colour; the paper stresses the
// segmentation works "with different classes of tennis courts without
// changing any parameters".
type CourtKind int

// Court surfaces of the tennis tour.
const (
	HardBlue CourtKind = iota
	GrassGreen
	ClayRed
)

// Color returns the surface colour of the court.
func (c CourtKind) Color() RGB {
	switch c {
	case GrassGreen:
		return RGB{R: 60, G: 140, B: 60}
	case ClayRed:
		return RGB{R: 190, G: 100, B: 50}
	default:
		return RGB{R: 40, G: 90, B: 170}
	}
}

// Reference colours of the synthetic world.
var (
	LineWhite = RGB{R: 240, G: 240, B: 240}
	SkinTone  = RGB{R: 224, G: 172, B: 105}
	ShirtRed  = RGB{R: 200, G: 40, B: 40}
	StudioTan = RGB{R: 120, G: 110, B: 100}
)

// Pos is a player position in frame coordinates.
type Pos struct{ X, Y int }

// ShotSpec describes one shot to generate.
type ShotSpec struct {
	Kind   ShotKind
	Frames int
	Court  CourtKind
	// Netplay makes the player approach the net during the shot
	// (tennis shots only).
	Netplay bool
}

// ShotTruth is the generator's ground truth for one emitted shot.
type ShotTruth struct {
	Begin, End int // frame numbers, inclusive
	Kind       ShotKind
	Court      CourtKind
	Netplay    bool
	Track      []Pos // player positions per frame (tennis shots)
}

// Video is a generated broadcast: the frames plus ground truth.
type Video struct {
	W, H   int
	Frames []*Frame
	Truth  []ShotTruth
}

// NetRowFullRes is the y threshold (in the full-resolution coordinate
// system the tennis detector reports, 10× the raster rows) below which
// the player counts as "at the net" — aligned with the grammar's
// netplay predicate yPos <= 170.0.
const NetRowFullRes = 170.0

// CoordScale converts raster rows to the full-resolution coordinates
// the paper's feature values use.
const CoordScale = 10.0

// Options configure generation.
type Options struct {
	Seed int64
	W, H int
}

func (o Options) withDefaults() Options {
	if o.W == 0 {
		o.W = 64
	}
	if o.H == 0 {
		o.H = 48
	}
	return o
}

// Generate renders a broadcast from shot specifications.
func Generate(specs []ShotSpec, opt Options) *Video {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	v := &Video{W: opt.W, H: opt.H}
	frameNo := 0
	for _, spec := range specs {
		if spec.Frames <= 0 {
			spec.Frames = 12
		}
		truth := ShotTruth{Begin: frameNo, Kind: spec.Kind, Court: spec.Court, Netplay: spec.Netplay}
		switch spec.Kind {
		case Tennis:
			truth.Track = renderTennis(v, spec, rng)
		case Closeup:
			renderCloseup(v, spec, rng)
		case Audience:
			renderAudience(v, spec, rng)
		default:
			renderOther(v, spec, rng)
		}
		frameNo += spec.Frames
		truth.End = frameNo - 1
		v.Truth = append(v.Truth, truth)
	}
	return v
}

// noise perturbs a colour slightly so consecutive frames of one shot
// differ a little (sensor noise) while shot boundaries differ a lot.
func noise(rng *rand.Rand, c RGB, amp int) RGB {
	j := func(v uint8) uint8 {
		d := rng.Intn(2*amp+1) - amp
		n := int(v) + d
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		return uint8(n)
	}
	return RGB{R: j(c.R), G: j(c.G), B: j(c.B)}
}

// renderTennis paints court shots: a crowd band on top, the court
// surface with white lines, and the player blob following a baseline
// rally or a net approach.
func renderTennis(v *Video, spec ShotSpec, rng *rand.Rand) []Pos {
	court := spec.Court.Color()
	opt := v
	crowdRows := opt.H / 8
	baseY := opt.H * 3 / 4
	netY := int(NetRowFullRes/CoordScale) - 2 // comfortably past the threshold
	// The crowd is static within a shot (spectators do not teleport);
	// only small per-frame noise is added, so histogram differences stay
	// small within the shot and spike at its boundaries.
	crowdBase := make([]RGB, crowdRows*opt.W)
	for i := range crowdBase {
		crowdBase[i] = crowdColor(rng)
	}
	var track []Pos
	for i := 0; i < spec.Frames; i++ {
		f := NewFrame(opt.W, opt.H)
		for y := 0; y < opt.H; y++ {
			for x := 0; x < opt.W; x++ {
				switch {
				case y < crowdRows:
					f.Set(x, y, noise(rng, crowdBase[y*opt.W+x], 4))
				case y == opt.H/2 || x == opt.W/8 || x == opt.W*7/8:
					f.Set(x, y, noise(rng, LineWhite, 6))
				default:
					f.Set(x, y, noise(rng, court, 8))
				}
			}
		}
		// Player trajectory.
		var px, py int
		if spec.Netplay {
			// Approach: from the baseline to the net across the shot.
			progress := float64(i) / float64(max(spec.Frames-1, 1))
			py = baseY - int(progress*float64(baseY-netY))
		} else {
			// Baseline rally: oscillate near the baseline.
			py = baseY + rng.Intn(5) - 2
		}
		px = opt.W/2 + int(12*oscillate(i, spec.Frames)) + rng.Intn(3) - 1
		drawPlayer(f, px, py, rng)
		track = append(track, Pos{X: px, Y: py})
		v.Frames = append(v.Frames, f)
	}
	return track
}

// oscillate returns a side-to-side factor in [-1, 1].
func oscillate(i, n int) float64 {
	period := 8
	phase := i % period
	if phase < period/2 {
		return -1 + 4*float64(phase)/float64(period)
	}
	return 3 - 4*float64(phase)/float64(period)
}

// drawPlayer paints the player's blob: skin head plus shirt body.
func drawPlayer(f *Frame, cx, cy int, rng *rand.Rand) {
	for dy := -3; dy <= 3; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= f.W || y < 0 || y >= f.H {
				continue
			}
			if dy <= -2 {
				f.Set(x, y, noise(rng, SkinTone, 5))
			} else {
				f.Set(x, y, noise(rng, ShirtRed, 5))
			}
		}
	}
}

// renderCloseup paints a face-dominated frame: a large skin region on
// a studio background.
func renderCloseup(v *Video, spec ShotSpec, rng *rand.Rand) {
	for i := 0; i < spec.Frames; i++ {
		f := NewFrame(v.W, v.H)
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				f.Set(x, y, noise(rng, StudioTan, 10))
			}
		}
		// Face ellipse covering a large fraction of the frame.
		cx, cy := v.W/2+rng.Intn(3)-1, v.H/2+rng.Intn(3)-1
		rx, ry := v.W/3, v.H*2/5
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				dx := float64(x-cx) / float64(rx)
				dy := float64(y-cy) / float64(ry)
				if dx*dx+dy*dy <= 1 {
					f.Set(x, y, noise(rng, SkinTone, 8))
				}
			}
		}
		v.Frames = append(v.Frames, f)
	}
}

// renderAudience paints a high-entropy crowd: every pixel a random
// crowd colour.
func renderAudience(v *Video, spec ShotSpec, rng *rand.Rand) {
	// One static crowd layout per shot with small per-frame noise.
	base := make([]RGB, v.W*v.H)
	for i := range base {
		base[i] = crowdColor(rng)
	}
	for i := 0; i < spec.Frames; i++ {
		f := NewFrame(v.W, v.H)
		for j := range base {
			f.Pix[j] = noise(rng, base[j], 4)
		}
		v.Frames = append(v.Frames, f)
	}
}

// renderOther paints low-entropy studio content (e.g. a commercial
// card): a smooth two-tone gradient, no court colour, no skin mass.
func renderOther(v *Video, spec ShotSpec, rng *rand.Rand) {
	base := RGB{R: 30, G: 30, B: uint8(80 + rng.Intn(60))}
	for i := 0; i < spec.Frames; i++ {
		f := NewFrame(v.W, v.H)
		for y := 0; y < v.H; y++ {
			shade := uint8(y * 2)
			for x := 0; x < v.W; x++ {
				f.Set(x, y, noise(rng, RGB{R: base.R + shade/2, G: base.G + shade/2, B: base.B}, 3))
			}
		}
		v.Frames = append(v.Frames, f)
	}
}

// crowdColor draws from a varied palette so audience regions have high
// colour entropy.
func crowdColor(rng *rand.Rand) RGB {
	return RGB{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256))}
}

// RandomBroadcast produces a plausible shot sequence for a match on
// the given court: rallies, net approaches, close-ups, audience pans
// and commercial breaks.
func RandomBroadcast(seed int64, shots int, court CourtKind) []ShotSpec {
	rng := rand.New(rand.NewSource(seed))
	var specs []ShotSpec
	prev := ShotKind(-1)
	for i := 0; i < shots; i++ {
		var spec ShotSpec
		for {
			r := rng.Intn(10)
			switch {
			case r < 5:
				spec = ShotSpec{Kind: Tennis, Frames: 10 + rng.Intn(10), Court: court, Netplay: rng.Intn(3) == 0}
			case r < 7:
				spec = ShotSpec{Kind: Closeup, Frames: 6 + rng.Intn(6)}
			case r < 9:
				spec = ShotSpec{Kind: Audience, Frames: 5 + rng.Intn(5)}
			default:
				spec = ShotSpec{Kind: Other, Frames: 5 + rng.Intn(5)}
			}
			// A broadcast cut implies visibly different content; two
			// adjacent shots of the same kind would be invisible to any
			// histogram-based boundary detector (and to a human).
			if spec.Kind != prev {
				break
			}
		}
		prev = spec.Kind
		specs = append(specs, spec)
	}
	return specs
}

// Library is the video store the detectors fetch raw footage from,
// standing in for the HTTP retrieval of the paper's W3C library.
type Library struct {
	videos map[string]*Video
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{videos: make(map[string]*Video)} }

// Put registers a video under its URL.
func (l *Library) Put(url string, v *Video) { l.videos[url] = v }

// Get fetches a video by URL.
func (l *Library) Get(url string) (*Video, error) {
	v, ok := l.videos[url]
	if !ok {
		return nil, fmt.Errorf("video: no video at %s", url)
	}
	return v, nil
}

// URLs returns the number of registered videos.
func (l *Library) Len() int { return len(l.videos) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
