// Package crawler implements the conceptual indexing stage: a crawler
// retrieves the source documents from a webspace and the web object
// retriever reconstructs the web-objects and the relations among them
// against the webspace schema. For an existing website this is the
// paper's reengineering process — the semantic concepts were flattened
// into presentation-oriented HTML and are extracted back out (the
// paper drives this with a special-purpose feature grammar; here it is
// a domain-specific extractor with the same contract). Multimedia
// references are collected for the logical level.
package crawler

import (
	"fmt"
	"sort"
	"strings"

	"dlsearch/internal/monetxml"
	"dlsearch/internal/webspace"
)

// MediaRef is one multimedia attribute instance found during the
// crawl: the hook where the conceptual level hands data to the logical
// level. Hypertext carries its text inline; other media carry their
// location.
type MediaRef struct {
	Owner  string // qualified object id, e.g. "Player:monica-seles"
	Class  string
	Attr   string
	Type   webspace.AttrType
	URL    string // location for Video/Image/Audio
	Inline string // text for Hypertext
}

// Result of a crawl.
type Result struct {
	Documents []*webspace.Document
	Media     []MediaRef
	Pages     int
}

// Crawler walks a webspace and reengineers its pages.
type Crawler struct {
	Schema *webspace.Schema
	Fetch  func(url string) (string, error)
}

// New returns a crawler over the given fetch function.
func New(schema *webspace.Schema, fetch func(string) (string, error)) *Crawler {
	return &Crawler{Schema: schema, Fetch: fetch}
}

// Crawl walks the webspace from the seed URL, reengineers every page
// into a materialized view over the schema and collects multimedia
// references. Documents are validated against the schema before they
// are returned.
func (c *Crawler) Crawl(seed string) (*Result, error) {
	res := &Result{}
	visited := map[string]bool{}
	queue := []string{seed}
	for len(queue) > 0 {
		url := queue[0]
		queue = queue[1:]
		if visited[url] {
			continue
		}
		visited[url] = true
		page, err := c.Fetch(url)
		if err != nil {
			return nil, fmt.Errorf("crawler: fetch %s: %w", url, err)
		}
		root, err := monetxml.ParseNode(strings.NewReader(page))
		if err != nil {
			return nil, fmt.Errorf("crawler: parse %s: %w", url, err)
		}
		res.Pages++
		doc, media, links := c.reengineer(url, root)
		if doc != nil {
			if err := doc.Validate(c.Schema); err != nil {
				return nil, err
			}
			res.Documents = append(res.Documents, doc)
			res.Media = append(res.Media, media...)
		}
		// Follow in-site links breadth-first.
		sort.Strings(links)
		for _, l := range links {
			if !visited[l] {
				queue = append(queue, l)
			}
		}
	}
	return res, nil
}

// reengineer dispatches on the page kind, recognisable from its URL.
func (c *Crawler) reengineer(url string, root *monetxml.Node) (*webspace.Document, []MediaRef, []string) {
	links := hrefs(root)
	switch {
	case strings.Contains(url, "/players/"):
		doc, media := c.playerPage(url, root)
		return doc, media, links
	case strings.Contains(url, "/profile/"):
		doc, media := c.profilePage(url, root)
		return doc, media, links
	case strings.Contains(url, "/articles/"):
		doc, media := c.articlePage(url, root)
		return doc, media, links
	default:
		return nil, nil, links // index and other pages only contribute links
	}
}

// slugOf derives the object id from a page URL.
func slugOf(url string) string {
	base := url[strings.LastIndexByte(url, '/')+1:]
	return strings.TrimSuffix(base, ".html")
}

// playerPage extracts the Player object: the definition list restores
// the scalar concepts, the history div the Hypertext attribute, the
// img the portrait.
func (c *Crawler) playerPage(url string, root *monetxml.Node) (*webspace.Document, []MediaRef) {
	slug := slugOf(url)
	o := &webspace.Object{Class: "Player", ID: slug, Attrs: map[string]string{}}
	for key, val := range defList(root) {
		switch key {
		case "Name":
			o.Attrs["name"] = val
		case "Gender":
			o.Attrs["gender"] = val
		case "Country":
			o.Attrs["country"] = val
		case "Plays":
			o.Attrs["hand"] = val
		}
	}
	var media []MediaRef
	if div := byTagClass(root, "div", "history"); div != nil {
		text := div.DeepText()
		o.Attrs["history"] = text
		media = append(media, MediaRef{
			Owner: o.QualifiedID(), Class: "Player", Attr: "history",
			Type: webspace.Hypertext, Inline: text,
		})
	}
	if img := byTag(root, "img"); img != nil {
		if src, ok := img.Attr("src"); ok {
			o.Attrs["picture"] = src
			media = append(media, MediaRef{
				Owner: o.QualifiedID(), Class: "Player", Attr: "picture",
				Type: webspace.Image, URL: src,
			})
		}
	}
	return &webspace.Document{URL: url, Objects: []*webspace.Object{o}}, media
}

// profilePage extracts the Profile object and its About association to
// the player.
func (c *Crawler) profilePage(url string, root *monetxml.Node) (*webspace.Document, []MediaRef) {
	slug := slugOf(url)
	o := &webspace.Object{Class: "Profile", ID: slug, Attrs: map[string]string{}}
	var media []MediaRef
	if a := byTagClass(root, "a", "document"); a != nil {
		if href, ok := a.Attr("href"); ok {
			o.Attrs["document"] = href
		}
	}
	if v := byTag(root, "video"); v != nil {
		if src, ok := v.Attr("src"); ok {
			o.Attrs["video"] = src
			media = append(media, MediaRef{
				Owner: o.QualifiedID(), Class: "Profile", Attr: "video",
				Type: webspace.Video, URL: src,
			})
		}
	}
	doc := &webspace.Document{URL: url, Objects: []*webspace.Object{o}}
	doc.Links = append(doc.Links, webspace.Link{
		Association: "About", From: o.QualifiedID(), To: "Player:" + slug,
	})
	return doc, media
}

// articlePage extracts the Article object and Is_covered_in links.
func (c *Crawler) articlePage(url string, root *monetxml.Node) (*webspace.Document, []MediaRef) {
	id := "articles-" + slugOf(url)
	o := &webspace.Object{Class: "Article", ID: id, Attrs: map[string]string{}}
	if h1 := byTag(root, "h1"); h1 != nil {
		o.Attrs["title"] = h1.DeepText()
	}
	var media []MediaRef
	if div := byTagClass(root, "div", "body"); div != nil {
		text := div.DeepText()
		o.Attrs["body"] = text
		media = append(media, MediaRef{
			Owner: o.QualifiedID(), Class: "Article", Attr: "body",
			Type: webspace.Hypertext, Inline: text,
		})
	}
	doc := &webspace.Document{URL: url, Objects: []*webspace.Object{o}}
	for _, a := range byTagClassAll(root, "a", "covers") {
		if href, ok := a.Attr("href"); ok {
			doc.Links = append(doc.Links, webspace.Link{
				Association: "Is_covered_in",
				From:        "Player:" + slugOf(href),
				To:          o.QualifiedID(),
			})
		}
	}
	return doc, media
}

// --- tiny HTML helpers over the parsed node tree ---

func walkNodes(n *monetxml.Node, f func(*monetxml.Node) bool) bool {
	if f(n) {
		return true
	}
	for _, c := range n.Children {
		if walkNodes(c, f) {
			return true
		}
	}
	return false
}

func byTag(root *monetxml.Node, tag string) *monetxml.Node {
	var out *monetxml.Node
	walkNodes(root, func(n *monetxml.Node) bool {
		if n.Tag == tag {
			out = n
			return true
		}
		return false
	})
	return out
}

func byTagClass(root *monetxml.Node, tag, class string) *monetxml.Node {
	var out *monetxml.Node
	walkNodes(root, func(n *monetxml.Node) bool {
		if n.Tag == tag {
			if c, ok := n.Attr("class"); ok && c == class {
				out = n
				return true
			}
		}
		return false
	})
	return out
}

func byTagClassAll(root *monetxml.Node, tag, class string) []*monetxml.Node {
	var out []*monetxml.Node
	walkNodes(root, func(n *monetxml.Node) bool {
		if n.Tag == tag {
			if c, ok := n.Attr("class"); ok && c == class {
				out = append(out, n)
			}
		}
		return false
	})
	return out
}

// defList extracts dt/dd pairs from the first definition list.
func defList(root *monetxml.Node) map[string]string {
	out := map[string]string{}
	dl := byTag(root, "dl")
	if dl == nil {
		return out
	}
	var key string
	for _, c := range dl.Children {
		switch c.Tag {
		case "dt":
			key = c.DeepText()
		case "dd":
			if key != "" {
				out[key] = c.DeepText()
				key = ""
			}
		}
	}
	return out
}

// hrefs collects all link targets on a page.
func hrefs(root *monetxml.Node) []string {
	var out []string
	walkNodes(root, func(n *monetxml.Node) bool {
		if n.Tag == "a" {
			if href, ok := n.Attr("href"); ok {
				out = append(out, href)
			}
		}
		return false
	})
	return out
}
