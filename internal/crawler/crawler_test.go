package crawler

import (
	"testing"

	"dlsearch/internal/site"
	"dlsearch/internal/webspace"
)

func crawlSite(t *testing.T) (*site.Site, *Result) {
	t.Helper()
	ws := site.Generate(1)
	c := New(webspace.AusOpenSchema(), ws.Fetch)
	res, err := c.Crawl(ws.BaseURL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	return ws, res
}

// TestCrawlReconstructsConcepts is the heart of experiment E01: the
// semantics hidden in presentation-oriented HTML (Figure 1) are
// recovered as web-objects over the Figure 3 schema.
func TestCrawlReconstructsConcepts(t *testing.T) {
	ws, res := crawlSite(t)
	// One document per player bio, player profile and article.
	wantDocs := 2*len(ws.Players) + len(ws.Articles)
	if len(res.Documents) != wantDocs {
		t.Fatalf("documents = %d, want %d", len(res.Documents), wantDocs)
	}
	// Every page (incl. index) visited once.
	if res.Pages != wantDocs+1 {
		t.Fatalf("pages = %d", res.Pages)
	}
	// Find Seles' player object and check the recovered concepts.
	var seles *webspace.Object
	for _, d := range res.Documents {
		if o := d.Object("Player:monica-seles"); o != nil {
			seles = o
		}
	}
	if seles == nil {
		t.Fatal("Player:monica-seles not reconstructed")
	}
	truth := ws.PlayerBySlug("monica-seles")
	if seles.Attr("name") != truth.Name ||
		seles.Attr("gender") != truth.Gender ||
		seles.Attr("country") != truth.Country ||
		seles.Attr("hand") != truth.Hand {
		t.Fatalf("reconstructed attrs = %v", seles.Attrs)
	}
	if seles.Attr("history") != truth.History {
		t.Fatalf("history = %q", seles.Attr("history"))
	}
	if seles.Attr("picture") != truth.PictureURL {
		t.Fatalf("picture = %q", seles.Attr("picture"))
	}
}

func TestCrawlAssociations(t *testing.T) {
	ws, res := crawlSite(t)
	var about, covered int
	for _, d := range res.Documents {
		for _, l := range d.Links {
			switch l.Association {
			case "About":
				about++
			case "Is_covered_in":
				covered++
			}
		}
	}
	if about != len(ws.Players) {
		t.Fatalf("About links = %d, want %d", about, len(ws.Players))
	}
	if covered == 0 {
		t.Fatal("no Is_covered_in links")
	}
}

func TestCrawlMediaRefs(t *testing.T) {
	ws, res := crawlSite(t)
	byType := map[webspace.AttrType]int{}
	for _, m := range res.Media {
		byType[m.Type]++
		switch m.Type {
		case webspace.Hypertext:
			if m.Inline == "" {
				t.Fatalf("hypertext ref without inline text: %+v", m)
			}
		default:
			if m.URL == "" {
				t.Fatalf("media ref without URL: %+v", m)
			}
		}
	}
	if byType[webspace.Video] != len(ws.Players) {
		t.Fatalf("video refs = %d", byType[webspace.Video])
	}
	if byType[webspace.Image] != len(ws.Players) {
		t.Fatalf("image refs = %d", byType[webspace.Image])
	}
	// history per player + body per article
	if byType[webspace.Hypertext] != len(ws.Players)+len(ws.Articles) {
		t.Fatalf("hypertext refs = %d", byType[webspace.Hypertext])
	}
}

func TestCrawlErrors(t *testing.T) {
	schema := webspace.AusOpenSchema()
	c := New(schema, func(url string) (string, error) {
		return "", errTest
	})
	if _, err := c.Crawl("http://x"); err == nil {
		t.Fatal("fetch failure not propagated")
	}
	c2 := New(schema, func(url string) (string, error) {
		return "<broken", nil
	})
	if _, err := c2.Crawl("http://x"); err == nil {
		t.Fatal("parse failure not propagated")
	}
}

var errTest = errFake{}

type errFake struct{}

func (errFake) Error() string { return "fake" }
