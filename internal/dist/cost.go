package dist

import (
	"time"

	"dlsearch/internal/ir"
)

// CostCurve is the sink a serving layer attaches to a node to learn
// the quality/latency curve of budgeted evaluation: one call per
// budgeted search with the effective fragment budget (after any
// quality-floor extension), the observed wall time, and the achieved
// quality. slo.Curve implements it; implementations must be cheap,
// allocation-free, and safe for concurrent use.
type CostCurve interface {
	ObserveCost(budget int, seconds, quality float64)
}

// SetCostCurve attaches a cost sink to the node: every budgeted
// evaluation reports its (budget, latency, quality) sample through
// the index's ir cost hook. Set before the node starts serving; nil
// detaches. The hook survives RestoreState (it is re-installed on the
// replacement index).
func (n *LocalNode) SetCostCurve(c CostCurve) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cost = c
	n.installCostObserver()
}

// installCostObserver (re)wires the ir cost hook onto the node's
// current index; the caller holds the write lock. The adapter closure
// allocates once here, never on the query path.
func (n *LocalNode) installCostObserver() {
	if n.cost == nil {
		n.ix.SetCostObserver(nil)
		return
	}
	c := n.cost
	n.ix.SetCostObserver(func(s ir.PlanCostSample) {
		c.ObserveCost(s.Budget, s.Seconds, s.Quality)
	})
}

// SetCostCurve attaches a cost sink to every node of the cluster —
// local nodes report through the ir cost hook, remote nodes through
// RPC round-trip timing. Nodes of other types are skipped. Call before
// the cluster starts serving; nil detaches.
func (c *Cluster) SetCostCurve(curve CostCurve) {
	for _, group := range c.groups {
		for _, n := range group {
			switch node := n.(type) {
			case *LocalNode:
				node.SetCostCurve(curve)
			case *RemoteNode:
				node.SetCostCurve(curve)
			}
		}
	}
}

// SetCostCurve attaches a cost sink to the remote node: every
// budgeted SearchPlan RPC reports (effective budget, round-trip wall
// time, achieved quality). The round trip includes the wire, which is
// exactly what a coordinator's SLO is accountable for. Set before
// serving; nil detaches.
func (rn *RemoteNode) SetCostCurve(c CostCurve) { rn.cost = c }

// observeCost reports one budgeted remote evaluation to the attached
// sink, if any.
func (rn *RemoteNode) observeCost(start time.Time, est ir.QualityEstimate) {
	if rn.cost == nil {
		return
	}
	rn.cost.ObserveCost(est.FragsUsed, time.Since(start).Seconds(), est.Value())
}
