package dist_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/server"
)

// remoteCorpus mirrors the dist test corpus (duplicated here: this is
// an external test package, required to close the dist ← server ←
// dist import cycle through test code).
func remoteCorpus(n int, seed int64) []string {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 30; w++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(rare[rng.Intn(len(rare))])
			} else {
				sb.WriteString(common[rng.Intn(len(common))])
			}
			sb.WriteByte(' ')
		}
		docs[i] = sb.String()
	}
	return docs
}

// startRemoteCluster spins up k httptest node servers and returns a
// cluster of RemoteNodes over them.
func startRemoteCluster(t testing.TB, k int, withCache bool, opts *dist.Options) *dist.Cluster {
	t.Helper()
	nodes := make([]dist.Node, k)
	for i := 0; i < k; i++ {
		cfg := &server.NodeConfig{}
		if withCache {
			cfg.Cache = core.NewQueryCache(64)
		}
		srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), cfg))
		t.Cleanup(srv.Close)
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	return dist.NewClusterOf(nodes, opts)
}

// TestRemoteClusterEqualsSingle is the acceptance guarantee of the
// networked subsystem: a cluster of HTTP-backed remote nodes returns
// a ranking byte-identical — documents AND scores, which round-trip
// JSON exactly — to a single in-process index over the whole
// collection, for k ∈ {1, 2, 4, 8}, with and without the node-side
// query cache.
func TestRemoteClusterEqualsSingle(t *testing.T) {
	docs := remoteCorpus(400, 7)
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
	}
	queries := []string{
		"champion winner serve",
		"seles",
		"melbourne trophy volley match",
		"quetzalcoatl", // unknown term
	}
	for _, withCache := range []bool{false, true} {
		for _, k := range []int{1, 2, 4, 8} {
			c := startRemoteCluster(t, k, withCache, nil)
			for i, d := range docs {
				if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
					t.Fatalf("k=%d add: %v", k, err)
				}
			}
			for _, q := range queries {
				for _, n := range []int{1, 10, 50} {
					want := single.TopN(q, n)
					sr, err := c.Search(context.Background(), q, n)
					if err != nil {
						t.Fatalf("k=%d q=%q: %v", k, q, err)
					}
					if !sr.Complete() {
						t.Fatalf("k=%d q=%q: dropped %v", k, q, sr.Dropped)
					}
					ctx := fmt.Sprintf("cache=%v k=%d q=%q n=%d", withCache, k, q, n)
					if len(sr.Results) != len(want) {
						t.Fatalf("%s: %d results, want %d", ctx, len(sr.Results), len(want))
					}
					for i := range want {
						if sr.Results[i].Doc != want[i].Doc || sr.Results[i].Score != want[i].Score {
							t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, sr.Results[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestRemoteMixedWithLocal: a cluster mixing in-process and remote
// nodes behaves exactly like an all-local one.
func TestRemoteMixedWithLocal(t *testing.T) {
	docs := remoteCorpus(200, 3)
	srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
	t.Cleanup(srv.Close)
	mixed := dist.NewClusterOf([]dist.Node{
		dist.NewLocalNode(ir.NewIndex()),
		dist.NewRemoteNode(srv.URL, srv.Client()),
	}, nil)
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
		if err := mixed.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatal(err)
		}
	}
	want := single.TopN("champion winner serve", 10)
	sr, err := mixed.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(sr.Results), len(want))
	}
	for i := range want {
		if sr.Results[i] != want[i] {
			t.Fatalf("rank %d = %+v, want %+v", i, sr.Results[i], want[i])
		}
	}
	if loads := mixed.NodeLoads(); loads[0]+loads[1] != len(docs) {
		t.Fatalf("loads = %v, want sum %d", loads, len(docs))
	}
}

// TestRemoteNodeDown: a cold cluster (no stats ever aggregated)
// pointed at a dead server fails the search outright; a warm cluster
// degrades instead — it falls back to the last aggregated statistics,
// drops the dead node and still answers.
func TestRemoteNodeDown(t *testing.T) {
	srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
	dead := dist.NewRemoteNode(srv.URL, srv.Client())
	srv.Close()
	cold := dist.NewClusterOf([]dist.Node{dist.NewLocalNode(ir.NewIndex()), dead}, nil)
	if _, err := cold.Search(context.Background(), "champion", 5); err == nil {
		t.Fatal("cold Search over a dead node's unaggregated stats succeeded")
	}

	srv2 := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
	dying := dist.NewRemoteNode(srv2.URL, srv2.Client())
	local := ir.NewIndex()
	warm := dist.NewClusterOf([]dist.Node{dist.NewLocalNode(local), dying}, nil)
	for i, d := range remoteCorpus(40, 21) {
		if err := warm.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatal(err)
		}
	}
	if sr, err := warm.Search(context.Background(), "champion", 5); err != nil || !sr.Complete() {
		t.Fatalf("healthy warm search: %v / %+v", err, sr)
	}
	srv2.Close()
	warm.InvalidateStats() // as if documents kept arriving
	sr, err := warm.Search(context.Background(), "champion", 5)
	if err != nil {
		t.Fatalf("warm cluster with dead node failed outright: %v", err)
	}
	if !sr.StaleStats {
		t.Fatal("StaleStats not reported after failed re-aggregation")
	}
	if len(sr.Dropped) != 1 || sr.Dropped[0] != 1 {
		t.Fatalf("dropped = %v, want [1]", sr.Dropped)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results from the surviving node")
	}
}
