package dist_test

import (
	"context"
	"fmt"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
)

// loadCluster adds the corpus to a cluster, failing the test on error.
func loadCluster(t testing.TB, c *dist.Cluster, docs []string) {
	t.Helper()
	for i, d := range docs {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemotePlanFullBudgetExact is the acceptance guarantee of the
// fragment-aware distribution: with a budget covering all fragments, a
// cluster of HTTP-backed nodes returns a ranking byte-identical —
// documents AND scores — to the exact single-index ranking, and
// reports exact quality.
func TestRemotePlanFullBudgetExact(t *testing.T) {
	docs := remoteCorpus(400, 7)
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
	}
	queries := []string{"champion winner serve", "seles", "melbourne trophy volley match"}
	for _, withCache := range []bool{false, true} {
		for _, k := range []int{1, 2, 4} {
			c := startRemoteCluster(t, k, withCache, nil)
			loadCluster(t, c, docs)
			for _, q := range queries {
				want := single.TopN(q, 10)
				sr, err := c.SearchPlan(context.Background(), q, ir.EvalPlan{N: 10, Frags: 4, Budget: 4})
				if err != nil {
					t.Fatalf("cache=%v k=%d q=%q: %v", withCache, k, q, err)
				}
				if !sr.Complete() {
					t.Fatalf("cache=%v k=%d q=%q: dropped %v", withCache, k, q, sr.Dropped)
				}
				if v := sr.Quality.Value(); v != 1.0 {
					t.Fatalf("cache=%v k=%d q=%q: full-budget quality %v", withCache, k, q, v)
				}
				ctx := fmt.Sprintf("cache=%v k=%d q=%q", withCache, k, q)
				if len(sr.Results) != len(want) {
					t.Fatalf("%s: %d results, want %d", ctx, len(sr.Results), len(want))
				}
				for i := range want {
					if sr.Results[i].Doc != want[i].Doc || sr.Results[i].Score != want[i].Score {
						t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, sr.Results[i], want[i])
					}
				}
			}
		}
	}
}

// TestRemotePlanReducedBudget: a reduced budget over HTTP nodes
// returns a degraded-but-flagged ranking — the quality estimate drops
// below 1 and reports how many fragments were evaluated.
func TestRemotePlanReducedBudget(t *testing.T) {
	docs := remoteCorpus(400, 7)
	c := startRemoteCluster(t, 3, false, nil)
	loadCluster(t, c, docs)
	// Rare ("seles") plus very common ("match ball") terms: the
	// trailing fragments hold the common ones, so a budget of 1 must
	// cut coverage.
	sr, err := c.SearchPlan(context.Background(), "seles match ball", ir.EvalPlan{N: 10, Frags: 8, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Complete() {
		t.Fatalf("dropped %v", sr.Dropped)
	}
	if v := sr.Quality.Value(); v >= 1.0 || v <= 0 {
		t.Fatalf("reduced-budget quality = %v, want in (0, 1)", v)
	}
	if sr.Quality.FragsUsed >= sr.Quality.FragsTotal {
		t.Fatalf("fragment accounting = %+v, want a real cut", sr.Quality)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results from the budgeted prefix")
	}
	// The rare term's contribution must survive the cut: doc scores
	// reflect "seles", so every returned doc actually contains it.
	exact := ir.NewIndex()
	for i, d := range docs {
		exact.Add(bat.OID(i+1), "u", d)
	}
	selesDocs := map[bat.OID]bool{}
	for _, r := range exact.TopN("seles", len(docs)) {
		selesDocs[r.Doc] = true
	}
	for _, r := range sr.Results {
		if !selesDocs[r.Doc] {
			t.Fatalf("budgeted result %v does not contain the surviving rare term", r.Doc)
		}
	}
}

// TestPlanQualityMonotone is the fragment quality accounting property:
// the reported estimate is monotone in the fragment budget and equals
// 1.0 at full budget — on a cluster of LocalNodes and on a remote
// cluster, which must also agree with each other.
func TestPlanQualityMonotone(t *testing.T) {
	docs := remoteCorpus(300, 19)
	const frags = 6
	queries := []string{"seles match", "champion winner serve ball", "melbourne", "court game set trophy"}
	local := dist.NewCluster(3, nil)
	remote := startRemoteCluster(t, 3, false, nil)
	loadCluster(t, local, docs)
	loadCluster(t, remote, docs)
	for _, q := range queries {
		prevLocal, prevRemote := 0.0, 0.0
		for b := 1; b <= frags; b++ {
			plan := ir.EvalPlan{N: 10, Frags: frags, Budget: b}
			lsr, err := local.SearchPlan(context.Background(), q, plan)
			if err != nil {
				t.Fatal(err)
			}
			rsr, err := remote.SearchPlan(context.Background(), q, plan)
			if err != nil {
				t.Fatal(err)
			}
			lv, rv := lsr.Quality.Value(), rsr.Quality.Value()
			if lv < prevLocal-1e-12 || rv < prevRemote-1e-12 {
				t.Fatalf("q=%q b=%d: quality not monotone: local %v after %v, remote %v after %v",
					q, b, lv, prevLocal, rv, prevRemote)
			}
			if lsr.Quality != rsr.Quality {
				t.Fatalf("q=%q b=%d: local estimate %+v != remote %+v", q, b, lsr.Quality, rsr.Quality)
			}
			prevLocal, prevRemote = lv, rv
		}
		if prevLocal != 1.0 || prevRemote != 1.0 {
			t.Fatalf("q=%q: full-budget quality local %v remote %v, want 1.0", q, prevLocal, prevRemote)
		}
	}
}

// TestClusterAddBatch: a batch add lands the same documents on the
// same nodes as per-document adds — node loads and rankings agree —
// over local nodes, remote nodes (one round-trip per partition) and
// nodes without the BatchAdder capability.
func TestClusterAddBatch(t *testing.T) {
	texts := remoteCorpus(120, 23)
	docs := make([]dist.Doc, len(texts))
	for i, text := range texts {
		docs[i] = dist.Doc{OID: bat.OID(i + 1), URL: "u", Text: text}
	}
	control := dist.NewCluster(3, nil)
	for _, d := range docs {
		control.Add(d.OID, d.URL, d.Text)
	}
	want := control.TopN("champion winner serve", 10)

	batchedLocal := dist.NewCluster(3, nil)
	if err := batchedLocal.AddBatchContext(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	batchedRemote := startRemoteCluster(t, 3, false, nil)
	if err := batchedRemote.AddBatchContext(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]*dist.Cluster{"local": batchedLocal, "remote": batchedRemote} {
		if got := c.NodeLoads(); fmt.Sprint(got) != fmt.Sprint(control.NodeLoads()) {
			t.Fatalf("%s: loads %v, want %v", name, got, control.NodeLoads())
		}
		sr, err := c.Search(context.Background(), "champion winner serve", 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Results) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(sr.Results), len(want))
		}
		for i := range want {
			if sr.Results[i] != want[i] {
				t.Fatalf("%s: rank %d = %+v, want %+v", name, i, sr.Results[i], want[i])
			}
		}
	}
	if err := dist.NewCluster(2, nil).AddBatchContext(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestLocalNodeRankingCache: the RES-set cache answers repeated exact
// queries identically (including shallower n against a cached deeper
// ranking) and invalidates when the index or the global statistics
// move.
func TestLocalNodeRankingCache(t *testing.T) {
	docs := remoteCorpus(150, 31)
	qc := core.NewQueryCache(32)
	ln := dist.NewLocalNode(ir.NewIndex())
	ln.SetResolver(qc.Resolve)
	ln.SetRankingCache(qc)
	plain := dist.NewLocalNode(ir.NewIndex())
	cached := dist.NewClusterOf([]dist.Node{ln}, nil)
	control := dist.NewClusterOf([]dist.Node{plain}, nil)
	for i, d := range docs {
		cached.Add(bat.OID(i+1), "u", d)
		control.Add(bat.OID(i+1), "u", d)
	}
	const q = "champion winner serve"
	want50 := control.TopN(q, 50)
	if got := cached.TopN(q, 50); fmt.Sprint(got) != fmt.Sprint(want50) {
		t.Fatalf("first query: %v, want %v", got, want50)
	}
	hits0, _ := qc.RankCounters()
	// A shallower n is answered from the cached top-50.
	want10 := control.TopN(q, 10)
	if got := cached.TopN(q, 10); fmt.Sprint(got) != fmt.Sprint(want10) {
		t.Fatalf("cached n=10: %v, want %v", got, want10)
	}
	if hits1, _ := qc.RankCounters(); hits1 <= hits0 {
		t.Fatal("shallower query did not hit the RES cache")
	}
	// New documents invalidate: the ranking reflects them.
	cached.Add(bat.OID(len(docs)+1), "u", "champion champion champion")
	control.Add(bat.OID(len(docs)+1), "u", "champion champion champion")
	wantAfter := control.TopN(q, 10)
	if got := cached.TopN(q, 10); fmt.Sprint(got) != fmt.Sprint(wantAfter) {
		t.Fatalf("post-add: %v, want %v", got, wantAfter)
	}
}
