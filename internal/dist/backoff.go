package dist

import (
	"context"
	"math/rand"
	"time"
)

// Retry pacing for the self-healing paths. Resync and anti-entropy
// RPCs retry transient failures with exponential backoff and full
// jitter — a replica group recovering from a network blip must not
// hammer the surviving member in lockstep — and the anti-entropy
// sweep interval itself is jittered so coordinators started together
// don't probe (and hold ingest locks) in phase forever.

// backoffDelay returns the sleep before retry attempt (0-based):
// base·2^attempt capped at max, then scaled by a uniform factor in
// [0.5, 1.5) so concurrent retriers decorrelate.
func backoffDelay(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// jitterInterval spreads a periodic interval over [0.5·d, 1.5·d).
func jitterInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// sleepCtx sleeps for d or until ctx cancels, reporting ctx's error
// when it cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffSleep sleeps one jittered backoff step, recording the sleep
// in the cluster's metrics and debug log. It reports ctx's error when
// cancelled first.
func (c *Cluster) backoffSleep(ctx context.Context, attempt int, base, max time.Duration) error {
	d := backoffDelay(attempt, base, max)
	if c.met != nil {
		c.met.BackoffSeconds.Observe(d.Seconds())
	}
	c.log.Debugf("backoff: sleeping %v before retry %d", d.Round(time.Millisecond), attempt+1)
	return sleepCtx(ctx, d)
}

// withRetry runs fn up to attempts times, backing off with jitter
// between failures (retries and backoff sleeps feed the cluster's
// metrics). It returns nil on the first success, ctx's error if
// cancelled mid-backoff, and the last failure otherwise. fn must be
// safe to repeat — the self-healing paths only retry reads (exports,
// load probes) and idempotent installs.
func (c *Cluster) withRetry(ctx context.Context, attempts int, base time.Duration, fn func() error) error {
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 && c.met != nil {
			c.met.Retries.Inc()
		}
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if a < attempts-1 {
			c.log.Debugf("retry %d/%d after: %v", a+1, attempts-1, err)
			if serr := c.backoffSleep(ctx, a, base, 5*time.Second); serr != nil {
				return err
			}
		}
	}
	return err
}
