package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// blockingNode wraps an inner node but never answers queries until its
// context is cancelled — a deterministic straggler: it ALWAYS misses
// any deadline, so which node gets dropped never depends on timing.
type blockingNode struct {
	inner Node
}

func (n *blockingNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	return n.inner.Add(ctx, doc, url, text)
}

func (n *blockingNode) Stats(ctx context.Context) (ir.Stats, error) { return n.inner.Stats(ctx) }

func (n *blockingNode) TopNWithStats(ctx context.Context, query string, topn int, global ir.Stats) ([]ir.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (n *blockingNode) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	<-ctx.Done()
	return nil, ir.QualityEstimate{}, ctx.Err()
}

func (n *blockingNode) Load(ctx context.Context) (NodeLoad, error) { return n.inner.Load(ctx) }

// failingNode errors immediately on queries.
type failingNode struct {
	inner Node
}

var errNodeDown = errors.New("node down")

func (n *failingNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	return n.inner.Add(ctx, doc, url, text)
}

func (n *failingNode) Stats(ctx context.Context) (ir.Stats, error) { return n.inner.Stats(ctx) }

func (n *failingNode) TopNWithStats(context.Context, string, int, ir.Stats) ([]ir.Result, error) {
	return nil, errNodeDown
}

func (n *failingNode) SearchPlan(context.Context, string, ir.EvalPlan, ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	return nil, ir.QualityEstimate{}, errNodeDown
}

func (n *failingNode) Load(ctx context.Context) (NodeLoad, error) { return n.inner.Load(ctx) }

// buildMixedCluster returns a 4-node cluster whose node `special`
// (index 2) is wrapped by wrap, plus a plain all-local control cluster
// over the same documents and partitioning.
func buildMixedCluster(t *testing.T, wrap func(Node) Node, opts *Options) (c, control *Cluster) {
	t.Helper()
	const k, special = 4, 2
	docs := corpus(200, 5)
	mixed := make([]Node, k)
	plain := make([]Node, k)
	for i := 0; i < k; i++ {
		mixed[i] = NewLocalNode(ir.NewIndex())
		plain[i] = NewLocalNode(ir.NewIndex())
	}
	mixed[special] = wrap(mixed[special])
	c = NewClusterOf(mixed, opts)
	control = NewClusterOf(plain, opts2noTimeout(opts))
	for i, d := range docs {
		c.Add(bat.OID(i+1), "u", d)
		control.Add(bat.OID(i+1), "u", d)
	}
	return c, control
}

func opts2noTimeout(opts *Options) *Options {
	if opts == nil {
		return nil
	}
	o := *opts
	o.NodeTimeout = 0
	return &o
}

// TestStragglerDropped: with a per-node timeout, a node that cannot
// answer is dropped, the query still completes within the deadline,
// and the merged ranking deterministically equals the merge over the
// responsive nodes.
func TestStragglerDropped(t *testing.T) {
	const timeout = 100 * time.Millisecond
	c, control := buildMixedCluster(t, func(n Node) Node { return &blockingNode{inner: n} },
		&Options{NodeTimeout: timeout})

	// The expected partial ranking: the control cluster with node 2's
	// RES set removed. Compute it by querying the control's nodes
	// directly and merging all but index 2.
	global := control.GlobalStats()
	var partial [][]ir.Result
	for i := 0; i < control.Size(); i++ {
		if i == 2 {
			continue
		}
		res, err := control.NodeAt(i).TopNWithStats(context.Background(), "champion winner serve", 10, global)
		if err != nil {
			t.Fatal(err)
		}
		partial = append(partial, res)
	}
	want := ir.Merge(10, partial...)

	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		sr, err := c.Search(context.Background(), "champion winner serve", 10)
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 10*timeout {
			t.Fatalf("query took %v, deadline is %v", elapsed, timeout)
		}
		if len(sr.Dropped) != 1 || sr.Dropped[0] != 2 {
			t.Fatalf("dropped = %v, want [2]", sr.Dropped)
		}
		if sr.Complete() {
			t.Fatal("Complete() = true with a dropped node")
		}
		if !errors.Is(sr.Errs[2], context.DeadlineExceeded) {
			t.Fatalf("drop reason = %v, want deadline exceeded", sr.Errs[2])
		}
		sameRanking(t, "partial merge", sr.Results, want)
	}
}

// TestOverallDeadline: an expired caller context drops every node that
// has not answered, rather than hanging.
func TestOverallDeadline(t *testing.T) {
	c, _ := buildMixedCluster(t, func(n Node) Node { return &blockingNode{inner: n} }, nil)
	c.GlobalStats() // warm stats so only the query phase races the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	sr, err := c.Search(ctx, "champion", 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range sr.Dropped {
		if i == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped = %v, want node 2 included", sr.Dropped)
	}
}

// TestFailedNodeDropped: a node erroring outright is reported like a
// straggler and the merge proceeds without it.
func TestFailedNodeDropped(t *testing.T) {
	c, _ := buildMixedCluster(t, func(n Node) Node { return &failingNode{inner: n} }, nil)
	sr, err := c.Search(context.Background(), "champion winner", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Dropped) != 1 || sr.Dropped[0] != 2 {
		t.Fatalf("dropped = %v, want [2]", sr.Dropped)
	}
	if !errors.Is(sr.Errs[2], errNodeDown) {
		t.Fatalf("drop reason = %v, want %v", sr.Errs[2], errNodeDown)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results from responsive nodes")
	}
}

// TestNoTimeoutComplete: without deadlines nothing is ever dropped and
// Search equals TopN equals the single-index ranking.
func TestNoTimeoutComplete(t *testing.T) {
	docs := corpus(150, 13)
	single := ir.NewIndex()
	c := NewCluster(4, nil)
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
		c.Add(bat.OID(i+1), "u", d)
	}
	sr, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Complete() || len(sr.Dropped) != 0 {
		t.Fatalf("dropped = %v on a healthy cluster", sr.Dropped)
	}
	sameRanking(t, "search vs single", sr.Results, single.TopN("champion winner serve", 10))
}

// TestLocalNodeResolver: a LocalNode with the cached resolver injected
// returns exactly the uncached ranking.
func TestLocalNodeResolver(t *testing.T) {
	docs := corpus(150, 17)
	var resolved atomic.Int64
	resolver := func(ix *ir.Index, q string) ([]string, []bat.OID) {
		resolved.Add(1)
		return ix.ResolveQuery(q)
	}
	plain := make([]Node, 2)
	cached := make([]Node, 2)
	for i := range plain {
		plain[i] = NewLocalNode(ir.NewIndex())
		ln := NewLocalNode(ir.NewIndex())
		ln.SetResolver(resolver)
		cached[i] = ln
	}
	cp := NewClusterOf(plain, nil)
	cc := NewClusterOf(cached, nil)
	for i, d := range docs {
		cp.Add(bat.OID(i+1), "u", d)
		cc.Add(bat.OID(i+1), "u", d)
	}
	want := cp.TopN("melbourne trophy volley", 10)
	sameRanking(t, "resolver path", cc.TopN("melbourne trophy volley", 10), want)
	if resolved.Load() == 0 {
		t.Fatal("resolver never invoked")
	}
}
