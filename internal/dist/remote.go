package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
)

// The node wire protocol: four JSON endpoints mirroring the Node
// interface, served by internal/server.NewNodeHandler and spoken by
// RemoteNode. Scores travel as JSON float64 numbers, which Go encodes
// in shortest round-trip form — a remote ranking is byte-identical to
// the local one.
const (
	PathNodeAdd      = "/node/add"
	PathNodeAddBatch = "/node/add/batch"
	PathNodeStats    = "/node/stats"
	PathNodeTopN     = "/node/topn"
	PathNodeSearch   = "/node/search"
	PathNodeLoad     = "/node/load"
	PathNodeSnapshot = "/node/snapshot"
	PathNodeRestore  = "/node/restore"
	PathNodeOpLog    = "/node/oplog"
	PathHealthz      = "/healthz"
)

// AddRequest is the body of POST /node/add, and one element of a
// batch add.
type AddRequest struct {
	Doc  uint64 `json:"doc"`
	URL  string `json:"url"`
	Text string `json:"text"`
}

// AddBatchRequest is the body of POST /node/add/batch: one partition's
// documents in a single round-trip.
type AddBatchRequest struct {
	Docs []AddRequest `json:"docs"`
}

// StatsJSON is the wire form of ir.Stats (GET /node/stats, and the
// global statistics shipped with every top-N request).
type StatsJSON struct {
	DF      map[string]int `json:"df"`
	TotalDF int            `json:"total_df"`
	Docs    int            `json:"docs"`
}

// StatsToJSON converts collection statistics to their wire form.
func StatsToJSON(st ir.Stats) StatsJSON {
	return StatsJSON{DF: st.DF, TotalDF: st.TotalDF, Docs: st.Docs}
}

// StatsFromJSON converts wire statistics back.
func StatsFromJSON(w StatsJSON) ir.Stats {
	df := w.DF
	if df == nil {
		df = map[string]int{}
	}
	return ir.Stats{DF: df, TotalDF: w.TotalDF, Docs: w.Docs}
}

// TopNRequest is the body of POST /node/topn.
type TopNRequest struct {
	Query string    `json:"query"`
	N     int       `json:"n"`
	Stats StatsJSON `json:"stats"`
}

// ResultJSON is one ranked result on the wire.
type ResultJSON struct {
	Doc   uint64  `json:"doc"`
	Score float64 `json:"score"`
}

// TopNResponse is the body answering POST /node/topn.
type TopNResponse struct {
	Results []ResultJSON `json:"results"`
}

// PlanJSON is the wire form of ir.EvalPlan: the evaluation strategy a
// coordinator ships so every node budgets its own idf-descending
// fragments identically.
type PlanJSON struct {
	N          int     `json:"n"`
	Frags      int     `json:"frags,omitempty"`
	Budget     int     `json:"budget,omitempty"`
	MinQuality float64 `json:"min_quality,omitempty"`
}

// PlanToJSON converts an evaluation plan to its wire form.
func PlanToJSON(p ir.EvalPlan) PlanJSON {
	return PlanJSON{N: p.N, Frags: p.Frags, Budget: p.Budget, MinQuality: p.MinQuality}
}

// PlanFromJSON converts a wire plan back.
func PlanFromJSON(w PlanJSON) ir.EvalPlan {
	return ir.EvalPlan{N: w.N, Frags: w.Frags, Budget: w.Budget, MinQuality: w.MinQuality}
}

// QualityJSON is the wire form of ir.QualityEstimate, plus the scalar
// value so curl users need no arithmetic.
type QualityJSON struct {
	Value      float64 `json:"value"`
	CoveredIDF float64 `json:"covered_idf"`
	TotalIDF   float64 `json:"total_idf"`
	FragsUsed  int     `json:"frags_used"`
	FragsTotal int     `json:"frags_total"`
}

// QualityToJSON converts a quality estimate to its wire form.
func QualityToJSON(q ir.QualityEstimate) QualityJSON {
	return QualityJSON{
		Value:      q.Value(),
		CoveredIDF: q.CoveredIDF,
		TotalIDF:   q.TotalIDF,
		FragsUsed:  q.FragsUsed,
		FragsTotal: q.FragsTotal,
	}
}

// QualityFromJSON converts a wire quality estimate back.
func QualityFromJSON(w QualityJSON) ir.QualityEstimate {
	return ir.QualityEstimate{
		CoveredIDF: w.CoveredIDF,
		TotalIDF:   w.TotalIDF,
		FragsUsed:  w.FragsUsed,
		FragsTotal: w.FragsTotal,
	}
}

// SearchPlanRequest is the body of POST /node/search: the query, the
// plan and the global statistics it is to be scored with.
type SearchPlanRequest struct {
	Query string    `json:"query"`
	Plan  PlanJSON  `json:"plan"`
	Stats StatsJSON `json:"stats"`
}

// SearchPlanResponse answers POST /node/search with the RES set and
// the quality the node achieved over its own fragments.
type SearchPlanResponse struct {
	Results []ResultJSON `json:"results"`
	Quality QualityJSON  `json:"quality"`
}

// ResultsToJSON converts a ranking to its wire form.
func ResultsToJSON(rs []ir.Result) []ResultJSON {
	out := make([]ResultJSON, len(rs))
	for i, r := range rs {
		out[i] = ResultJSON{Doc: uint64(r.Doc), Score: r.Score}
	}
	return out
}

// ResultsFromJSON converts a wire ranking back.
func ResultsFromJSON(ws []ResultJSON) []ir.Result {
	out := make([]ir.Result, len(ws))
	for i, w := range ws {
		out[i] = ir.Result{Doc: bat.OID(w.Doc), Score: w.Score}
	}
	return out
}

// LoadResponse is the body answering GET /node/load. SnapshotUnix is
// when the node last persisted a snapshot (unix seconds, 0 = never);
// Checksum is the fragment's content checksum, the anti-entropy
// comparison key.
type LoadResponse struct {
	Docs         int    `json:"docs"`
	MaxDoc       uint64 `json:"max_doc"`
	SnapshotUnix int64  `json:"snapshot_unix,omitempty"`
	Checksum     string `json:"checksum,omitempty"`
	LogPos       uint64 `json:"log_pos,omitempty"`
}

// SnapshotResponse answers POST /node/snapshot: where the snapshot
// landed and what it covers. Checksum is the content checksum of the
// persisted state — the value a replica restored from this snapshot
// will report in /node/load.
type SnapshotResponse struct {
	Path     string `json:"path"`
	Bytes    int64  `json:"bytes"`
	Docs     int    `json:"docs"`
	Terms    int    `json:"terms"`
	TookMS   int64  `json:"took_ms"`
	Unix     int64  `json:"unix"`
	Checksum string `json:"checksum,omitempty"`
}

// RestoreResponse answers POST /node/restore: what the node now
// serves. SnapshotUnix is set when the node also persisted the
// restored state to its data dir (so a crash right after a resync
// cannot resurrect the pre-resync fragment); SnapshotError reports a
// failed post-restore persist — the restore itself succeeded in
// memory, but the durability promise did not hold and a crash would
// resurrect the pre-resync snapshot.
type RestoreResponse struct {
	Docs          int    `json:"docs"`
	Terms         int    `json:"terms"`
	Checksum      string `json:"checksum,omitempty"`
	SnapshotUnix  int64  `json:"snapshot_unix,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
}

// RemoteNode implements Node over the HTTP/JSON node protocol, so a
// Cluster can address an index living in another process or on
// another machine exactly like an in-process one. All calls honour
// the caller's context: a deadline set by the cluster's straggler
// machinery cancels the in-flight request.
type RemoteNode struct {
	base   string
	client *http.Client

	// met, when set, records this node's client-side RPC telemetry.
	met *RemoteMetrics
}

// RemoteMetrics is client-side RPC instrumentation for one or more
// RemoteNodes (they may share one set — the histograms are mergeable
// and the counters atomic). All fields optional.
type RemoteMetrics struct {
	// Latency observes every JSON round-trip (failures included), in
	// seconds. Whole-fragment transfers are not observed here — their
	// durations scale with the fragment, not the RPC path.
	Latency *obs.Histogram
	// BytesOut counts JSON request-body bytes sent.
	BytesOut *obs.Counter
	// BytesIn counts response-body bytes received.
	BytesIn *obs.Counter
}

// SetMetrics attaches client-side RPC instrumentation; nil detaches.
func (rn *RemoteNode) SetMetrics(m *RemoteMetrics) { rn.met = m }

// countingReader counts bytes as they are read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// defaultClient is shared by RemoteNodes built without an explicit
// client; connection pooling across nodes of the same host is what a
// coordinator wants by default.
var defaultClient = &http.Client{Timeout: 30 * time.Second}

// defaultTransferClient serves the state-transfer calls
// (SnapshotState/RestoreState) for nodes built on defaultClient: no
// overall timeout, because a fragment transfer's duration scales with
// the fragment and must be bounded by the caller's ctx, not by the
// per-operation budget sized for one JSON round-trip. It shares
// defaultClient's (default) transport pool.
var defaultTransferClient = &http.Client{}

// transferClient picks the client for whole-fragment transfers: a
// caller-supplied client is honoured as-is; the shared default is
// swapped for its timeout-free sibling.
func (rn *RemoteNode) transferClient() *http.Client {
	if rn.client == defaultClient {
		return defaultTransferClient
	}
	return rn.client
}

// NewRemoteNode returns a node speaking the HTTP protocol at baseURL
// (e.g. "http://host:8081"). A nil client selects a shared pooled
// default; pass a custom client to control transport details.
func NewRemoteNode(baseURL string, client *http.Client) *RemoteNode {
	if client == nil {
		client = defaultClient
	}
	return &RemoteNode{base: strings.TrimRight(baseURL, "/"), client: client}
}

// BaseURL returns the node's base URL.
func (rn *RemoteNode) BaseURL() string { return rn.base }

// do runs one round-trip: POST body as JSON if in is non-nil, GET
// otherwise; decode the 200 response into out if out is non-nil. The
// round-trip (body decode included, failures included) feeds the
// attached RPC latency histogram, and a trace riding the context gets
// an "rpc:<path>" span plus the request-ID header the node echoes
// into its own telemetry.
func (rn *RemoteNode) do(ctx context.Context, path string, in, out any) error {
	if rn.met == nil && obs.FromContext(ctx) == nil {
		return rn.roundTrip(ctx, path, in, out)
	}
	start := time.Now()
	err := rn.roundTrip(ctx, path, in, out)
	if rn.met != nil {
		rn.met.Latency.ObserveSince(start)
	}
	obs.FromContext(ctx).AddSpan("rpc:"+path, start)
	return err
}

func (rn *RemoteNode) roundTrip(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	method := http.MethodGet
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("dist: encode %s: %w", path, err)
		}
		if rn.met != nil {
			rn.met.BytesOut.Add(uint64(len(buf)))
		}
		body = bytes.NewReader(buf)
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, rn.base+path, body)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tr := obs.FromContext(ctx); tr != nil && tr.ID != "" {
		req.Header.Set(obs.HeaderRequestID, tr.ID)
	}
	resp, err := rn.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	defer resp.Body.Close()
	var rbody io.Reader = resp.Body
	if rn.met != nil {
		cr := &countingReader{r: resp.Body}
		defer func() { rn.met.BytesIn.Add(uint64(cr.n)) }()
		rbody = cr
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(rbody, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, path, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	if out == nil {
		io.Copy(io.Discard, rbody)
		return nil
	}
	if err := json.NewDecoder(rbody).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s%s: %w", rn.base, path, err)
	}
	return nil
}

// Add implements Node.
func (rn *RemoteNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	return rn.do(ctx, PathNodeAdd, &AddRequest{Doc: uint64(doc), URL: url, Text: text}, nil)
}

// AddBatch implements BatchAdder: the node's partition of a batch in
// one round-trip.
func (rn *RemoteNode) AddBatch(ctx context.Context, docs []Doc) error {
	req := &AddBatchRequest{Docs: make([]AddRequest, len(docs))}
	for i, d := range docs {
		req.Docs[i] = AddRequest{Doc: uint64(d.OID), URL: d.URL, Text: d.Text}
	}
	return rn.do(ctx, PathNodeAddBatch, req, nil)
}

// Stats implements Node.
func (rn *RemoteNode) Stats(ctx context.Context) (ir.Stats, error) {
	var w StatsJSON
	if err := rn.do(ctx, PathNodeStats, nil, &w); err != nil {
		return ir.Stats{}, err
	}
	return StatsFromJSON(w), nil
}

// TopNWithStats implements Node.
func (rn *RemoteNode) TopNWithStats(ctx context.Context, query string, n int, global ir.Stats) ([]ir.Result, error) {
	var resp TopNResponse
	req := &TopNRequest{Query: query, N: n, Stats: StatsToJSON(global)}
	if err := rn.do(ctx, PathNodeTopN, req, &resp); err != nil {
		return nil, err
	}
	return ResultsFromJSON(resp.Results), nil
}

// SearchPlan implements Node. An exact plan takes the /node/topn
// round-trip (identical to TopNWithStats, RES-cacheable server-side);
// a budgeted plan ships the plan itself over /node/search so the
// cut-off executes below the remote node's RES set.
func (rn *RemoteNode) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if plan.Exact() {
		res, err := rn.TopNWithStats(ctx, query, plan.N, global)
		return res, ir.QualityEstimate{}, err
	}
	var resp SearchPlanResponse
	req := &SearchPlanRequest{Query: query, Plan: PlanToJSON(plan), Stats: StatsToJSON(global)}
	if err := rn.do(ctx, PathNodeSearch, req, &resp); err != nil {
		return nil, ir.QualityEstimate{}, err
	}
	return ResultsFromJSON(resp.Results), QualityFromJSON(resp.Quality), nil
}

// Load implements Node.
func (rn *RemoteNode) Load(ctx context.Context) (NodeLoad, error) {
	return rn.load(ctx, PathNodeLoad)
}

// LoadChecksum implements ChecksumLoader: GET /node/load?fresh=1 makes
// the node compute a fresh content digest before answering.
func (rn *RemoteNode) LoadChecksum(ctx context.Context) (NodeLoad, error) {
	return rn.load(ctx, PathNodeLoad+"?fresh=1")
}

func (rn *RemoteNode) load(ctx context.Context, path string) (NodeLoad, error) {
	var resp LoadResponse
	if err := rn.do(ctx, path, nil, &resp); err != nil {
		return NodeLoad{}, err
	}
	return NodeLoad{
		Docs:         resp.Docs,
		MaxDoc:       bat.OID(resp.MaxDoc),
		SnapshotUnix: resp.SnapshotUnix,
		Checksum:     resp.Checksum,
		LogPos:       resp.LogPos,
	}, nil
}

// Snapshot asks the remote node to persist a snapshot of its fragment
// to its data dir now (POST /node/snapshot). Nodes running without a
// data dir answer an error status, which comes back as an error here.
func (rn *RemoteNode) Snapshot(ctx context.Context) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := rn.do(ctx, PathNodeSnapshot, struct{}{}, &resp)
	return resp, err
}

// IdempotentIngest marks the node protocol's per-oid de-duplication:
// the node server wraps a LocalNode, so /node/add and /node/add/batch
// retries are no-ops for already-applied documents.
func (rn *RemoteNode) IdempotentIngest() {}

// SnapshotState implements StateSource: GET /node/snapshot streams the
// node's live fragment state in the internal/persist binary format —
// no data dir needed on the serving side; the persist checksum fails
// a truncated or corrupted transfer closed.
func (rn *RemoteNode) SnapshotState(ctx context.Context) (*ir.IndexState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rn.base+PathNodeSnapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: request %s: %w", PathNodeSnapshot, err)
	}
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeSnapshot, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeSnapshot, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	st, err := persist.Load(bufio.NewReader(resp.Body))
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeSnapshot, err)
	}
	return st, nil
}

// RestoreState implements StateSink: the state ships to
// POST /node/restore in the persist binary format and the remote node
// installs it under its write lock. A restore that succeeded in memory
// but failed to persist durably (SnapshotError in the response) is
// reported as an error: the caller must not record a durable resync
// that a crash would undo — the replica serves the restored state
// either way, and the next anti-entropy pass re-admits it by checksum
// match once it really is healthy.
func (rn *RemoteNode) RestoreState(ctx context.Context, st *ir.IndexState) error {
	var buf bytes.Buffer
	if err := persist.Save(&buf, st); err != nil {
		return fmt.Errorf("dist: encode %s: %w", PathNodeRestore, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rn.base+PathNodeRestore, &buf)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", PathNodeRestore, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeRestore, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeRestore, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	var rr RestoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return fmt.Errorf("dist: decode %s%s: %w", rn.base, PathNodeRestore, err)
	}
	if rr.SnapshotError != "" {
		return fmt.Errorf("dist: node %s%s: restored in memory but not persisted: %s",
			rn.base, PathNodeRestore, rr.SnapshotError)
	}
	return nil
}

// OpsSince implements DeltaSource: GET /node/oplog?from=P streams the
// node's log suffix in the persist delta wire format (per-record
// checksums travel with the data, so a corrupted transfer fails
// closed here). A 416 answer means the node compacted that suffix
// away (or keeps no log) — mapped to ErrDeltaUnavailable so the
// caller falls back to a full snapshot.
func (rn *RemoteNode) OpsSince(ctx context.Context, from uint64) ([]persist.Op, error) {
	url := fmt.Sprintf("%s%s?from=%d", rn.base, PathNodeOpLog, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: request %s: %w", PathNodeOpLog, err)
	}
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestedRangeNotSatisfiable {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%w: node %s", ErrDeltaUnavailable, rn.base)
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeOpLog, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	got, ops, err := persist.DecodeOps(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	if got != from {
		return nil, fmt.Errorf("dist: node %s%s: asked for position %d, got %d", rn.base, PathNodeOpLog, from, got)
	}
	return ops, nil
}

// ApplyOps implements DeltaSink: the suffix ships to
// POST /node/oplog in the persist delta wire format and the remote
// node appends-and-applies it at exactly position from. A 409 answer
// is the position-mismatch rejection — the histories cannot be
// aligned by this delta and the caller falls back to a full snapshot.
func (rn *RemoteNode) ApplyOps(ctx context.Context, from uint64, ops []persist.Op) error {
	var buf bytes.Buffer
	if err := persist.EncodeOps(&buf, from, ops); err != nil {
		return fmt.Errorf("dist: encode %s: %w", PathNodeOpLog, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rn.base+PathNodeOpLog, &buf)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", PathNodeOpLog, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%w: node %s: %s", ErrPosMismatch, rn.base, strings.TrimSpace(string(snippet)))
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeOpLog, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Healthy reports whether the remote node answers its health probe.
func (rn *RemoteNode) Healthy(ctx context.Context) bool {
	return rn.do(ctx, PathHealthz, nil, nil) == nil
}
