package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
)

// The node wire protocol: four JSON endpoints mirroring the Node
// interface, served by internal/server.NewNodeHandler and spoken by
// RemoteNode. Scores travel as JSON float64 numbers, which Go encodes
// in shortest round-trip form — a remote ranking is byte-identical to
// the local one.
const (
	PathNodeAdd      = "/node/add"
	PathNodeAddBatch = "/node/add/batch"
	PathNodeStats    = "/node/stats"
	PathNodeTopN     = "/node/topn"
	PathNodeSearch   = "/node/search"
	PathNodeLoad     = "/node/load"
	PathNodeSnapshot = "/node/snapshot"
	PathNodeRestore  = "/node/restore"
	PathNodeOpLog    = "/node/oplog"
	PathNodeWire     = "/node/wire"
	PathHealthz      = "/healthz"
)

// Codec selects how a RemoteNode speaks to its node on the query hot
// path (/node/topn, /node/search, /node/stats, /node/add/batch).
type Codec int

const (
	// CodecBinary (the default) negotiates compact framed binary
	// bodies over HTTP (Content-Type/Accept) and falls back to JSON
	// against a peer that does not speak them — permanently per peer,
	// so a mixed deployment costs one failed probe per node, not per
	// request. Every RPC is still an ordinary HTTP request, so node
	// liveness, timeouts and load balancers behave exactly as with
	// JSON.
	CodecBinary Codec = iota
	// CodecJSON forces the HTTP/JSON protocol: the debugging and
	// third-party-node mode.
	CodecJSON
	// CodecWire adds the persistent-connection transport on top of
	// CodecBinary: an upgraded long-lived conn per node, one frame
	// out and one back per RPC, no per-query HTTP machinery. Falls
	// back to CodecBinary behaviour (and from there to JSON) against
	// peers that refuse the upgrade. Opt-in because a pooled upgraded
	// conn bypasses the HTTP client's lifecycle: a node is presumed
	// dead only when its conns break, which is right for real
	// processes but not for in-process test servers.
	CodecWire
)

// AddRequest is the body of POST /node/add, and one element of a
// batch add.
type AddRequest struct {
	Doc  uint64 `json:"doc"`
	URL  string `json:"url"`
	Text string `json:"text"`
}

// AddBatchRequest is the body of POST /node/add/batch: one partition's
// documents in a single round-trip.
type AddBatchRequest struct {
	Docs []AddRequest `json:"docs"`
}

// StatsJSON is the wire form of ir.Stats (GET /node/stats, and the
// global statistics shipped with every top-N request).
type StatsJSON struct {
	DF      map[string]int `json:"df"`
	TotalDF int            `json:"total_df"`
	Docs    int            `json:"docs"`
}

// StatsToJSON converts collection statistics to their wire form.
func StatsToJSON(st ir.Stats) StatsJSON {
	return StatsJSON{DF: st.DF, TotalDF: st.TotalDF, Docs: st.Docs}
}

// StatsFromJSON converts wire statistics back.
func StatsFromJSON(w StatsJSON) ir.Stats {
	df := w.DF
	if df == nil {
		df = map[string]int{}
	}
	return ir.Stats{DF: df, TotalDF: w.TotalDF, Docs: w.Docs}
}

// TopNRequest is the body of POST /node/topn.
type TopNRequest struct {
	Query string    `json:"query"`
	N     int       `json:"n"`
	Stats StatsJSON `json:"stats"`
}

// ResultJSON is one ranked result on the wire.
type ResultJSON struct {
	Doc   uint64  `json:"doc"`
	Score float64 `json:"score"`
}

// TopNResponse is the body answering POST /node/topn.
type TopNResponse struct {
	Results []ResultJSON `json:"results"`
}

// PlanJSON is the wire form of ir.EvalPlan: the evaluation strategy a
// coordinator ships so every node budgets its own idf-descending
// fragments identically.
type PlanJSON struct {
	N          int     `json:"n"`
	Frags      int     `json:"frags,omitempty"`
	Budget     int     `json:"budget,omitempty"`
	MinQuality float64 `json:"min_quality,omitempty"`
}

// PlanToJSON converts an evaluation plan to its wire form.
func PlanToJSON(p ir.EvalPlan) PlanJSON {
	return PlanJSON{N: p.N, Frags: p.Frags, Budget: p.Budget, MinQuality: p.MinQuality}
}

// PlanFromJSON converts a wire plan back.
func PlanFromJSON(w PlanJSON) ir.EvalPlan {
	return ir.EvalPlan{N: w.N, Frags: w.Frags, Budget: w.Budget, MinQuality: w.MinQuality}
}

// QualityJSON is the wire form of ir.QualityEstimate, plus the scalar
// value so curl users need no arithmetic.
type QualityJSON struct {
	Value      float64 `json:"value"`
	CoveredIDF float64 `json:"covered_idf"`
	TotalIDF   float64 `json:"total_idf"`
	FragsUsed  int     `json:"frags_used"`
	FragsTotal int     `json:"frags_total"`
}

// QualityToJSON converts a quality estimate to its wire form.
func QualityToJSON(q ir.QualityEstimate) QualityJSON {
	return QualityJSON{
		Value:      q.Value(),
		CoveredIDF: q.CoveredIDF,
		TotalIDF:   q.TotalIDF,
		FragsUsed:  q.FragsUsed,
		FragsTotal: q.FragsTotal,
	}
}

// QualityFromJSON converts a wire quality estimate back.
func QualityFromJSON(w QualityJSON) ir.QualityEstimate {
	return ir.QualityEstimate{
		CoveredIDF: w.CoveredIDF,
		TotalIDF:   w.TotalIDF,
		FragsUsed:  w.FragsUsed,
		FragsTotal: w.FragsTotal,
	}
}

// SearchPlanRequest is the body of POST /node/search: the query, the
// plan and the global statistics it is to be scored with.
type SearchPlanRequest struct {
	Query string    `json:"query"`
	Plan  PlanJSON  `json:"plan"`
	Stats StatsJSON `json:"stats"`
}

// SearchPlanResponse answers POST /node/search with the RES set and
// the quality the node achieved over its own fragments.
type SearchPlanResponse struct {
	Results []ResultJSON `json:"results"`
	Quality QualityJSON  `json:"quality"`
}

// ResultsToJSON converts a ranking to its wire form.
func ResultsToJSON(rs []ir.Result) []ResultJSON {
	out := make([]ResultJSON, len(rs))
	for i, r := range rs {
		out[i] = ResultJSON{Doc: uint64(r.Doc), Score: r.Score}
	}
	return out
}

// ResultsFromJSON converts a wire ranking back.
func ResultsFromJSON(ws []ResultJSON) []ir.Result {
	out := make([]ir.Result, len(ws))
	for i, w := range ws {
		out[i] = ir.Result{Doc: bat.OID(w.Doc), Score: w.Score}
	}
	return out
}

// LoadResponse is the body answering GET /node/load. SnapshotUnix is
// when the node last persisted a snapshot (unix seconds, 0 = never);
// Checksum is the fragment's content checksum, the anti-entropy
// comparison key.
type LoadResponse struct {
	Docs         int    `json:"docs"`
	MaxDoc       uint64 `json:"max_doc"`
	SnapshotUnix int64  `json:"snapshot_unix,omitempty"`
	Checksum     string `json:"checksum,omitempty"`
	LogPos       uint64 `json:"log_pos,omitempty"`
}

// SnapshotResponse answers POST /node/snapshot: where the snapshot
// landed and what it covers. Checksum is the content checksum of the
// persisted state — the value a replica restored from this snapshot
// will report in /node/load.
type SnapshotResponse struct {
	Path     string `json:"path"`
	Bytes    int64  `json:"bytes"`
	Docs     int    `json:"docs"`
	Terms    int    `json:"terms"`
	TookMS   int64  `json:"took_ms"`
	Unix     int64  `json:"unix"`
	Checksum string `json:"checksum,omitempty"`
}

// RestoreResponse answers POST /node/restore: what the node now
// serves. SnapshotUnix is set when the node also persisted the
// restored state to its data dir (so a crash right after a resync
// cannot resurrect the pre-resync fragment); SnapshotError reports a
// failed post-restore persist — the restore itself succeeded in
// memory, but the durability promise did not hold and a crash would
// resurrect the pre-resync snapshot.
type RestoreResponse struct {
	Docs          int    `json:"docs"`
	Terms         int    `json:"terms"`
	Checksum      string `json:"checksum,omitempty"`
	SnapshotUnix  int64  `json:"snapshot_unix,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
}

// RemoteNode implements Node over the HTTP/JSON node protocol, so a
// Cluster can address an index living in another process or on
// another machine exactly like an in-process one. All calls honour
// the caller's context: a deadline set by the cluster's straggler
// machinery cancels the in-flight request.
type RemoteNode struct {
	base   string
	client *http.Client

	// met, when set, records this node's client-side RPC telemetry.
	met *RemoteMetrics

	// codec is the configured preference; jsonOnly sticks once the
	// peer proves it does not accept binary bodies (415, or a JSON
	// parse error against the binary payload from an older node).
	codec    Codec
	jsonOnly atomic.Bool

	// pool holds this node's persistent upgraded connections; nil
	// unless CodecWire is selected and the base URL is upgradable
	// (plain http with a host).
	pool *wirePool

	// urls caches the parsed hot-path URLs so the binary round-trip
	// builds requests without re-parsing; nil when base does not parse.
	urls map[string]*url.URL

	// bytesOut/bytesIn count request/response body and frame bytes
	// over every codec — the per-replica numbers /stats surfaces.
	bytesOut, bytesIn atomic.Uint64

	// cost, when set, receives budgeted SearchPlan cost samples
	// (effective budget, round-trip seconds, achieved quality).
	cost CostCurve
}

// RemoteMetrics is client-side RPC instrumentation for one or more
// RemoteNodes (they may share one set — the histograms are mergeable
// and the counters atomic). All fields optional.
type RemoteMetrics struct {
	// Latency observes every JSON round-trip (failures included), in
	// seconds. Whole-fragment transfers are not observed here — their
	// durations scale with the fragment, not the RPC path.
	Latency *obs.Histogram
	// BytesOut counts JSON request-body bytes sent.
	BytesOut *obs.Counter
	// BytesIn counts response-body bytes received.
	BytesIn *obs.Counter
}

// SetMetrics attaches client-side RPC instrumentation; nil detaches.
func (rn *RemoteNode) SetMetrics(m *RemoteMetrics) { rn.met = m }

// countingReader counts bytes as they are read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// defaultTransport is tuned for a coordinator fanning every query out
// to the same small node set: generous idle-connection limits keep one
// warm connection per in-flight request per node (net/http's default
// of 2 idle conns per host redials constantly under fan-out
// concurrency), and keep-alives hold them open between queries.
var defaultTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 128,
	IdleConnTimeout:     90 * time.Second,
}

// defaultClient is shared by RemoteNodes built without an explicit
// client; connection pooling across nodes of the same host is what a
// coordinator wants by default.
var defaultClient = &http.Client{Timeout: 30 * time.Second, Transport: defaultTransport}

// defaultTransferClient serves the state-transfer calls
// (SnapshotState/RestoreState) for nodes built on defaultClient: no
// overall timeout, because a fragment transfer's duration scales with
// the fragment and must be bounded by the caller's ctx, not by the
// per-operation budget sized for one JSON round-trip. It shares
// defaultClient's transport pool.
var defaultTransferClient = &http.Client{Transport: defaultTransport}

// transferClient picks the client for whole-fragment transfers: a
// caller-supplied client is honoured as-is; the shared default is
// swapped for its timeout-free sibling.
func (rn *RemoteNode) transferClient() *http.Client {
	if rn.client == defaultClient {
		return defaultTransferClient
	}
	return rn.client
}

// NewRemoteNode returns a node speaking the node protocol at baseURL
// (e.g. "http://host:8081"). A nil client selects a shared pooled
// default; pass a custom client to control transport details. The hot
// path defaults to the binary codec with negotiation (SetCodec forces
// JSON); every other endpoint speaks HTTP/JSON or the persist binary
// transfer formats as before.
func NewRemoteNode(baseURL string, client *http.Client) *RemoteNode {
	if client == nil {
		client = defaultClient
	}
	rn := &RemoteNode{base: strings.TrimRight(baseURL, "/"), client: client}
	if u, err := url.Parse(rn.base); err == nil && u.Host != "" {
		rn.urls = make(map[string]*url.URL, 4)
		for _, p := range []string{PathNodeTopN, PathNodeSearch, PathNodeAddBatch, PathNodeStats} {
			pu := *u
			pu.Path = p
			rn.urls[p] = &pu
		}
	}
	return rn
}

// SetCodec selects the hot-path codec. CodecWire opens the
// persistent-connection transport; CodecJSON disables every binary
// layer (the debugging mode, and the mode for third-party nodes that
// log unknown content types noisily). Call before the node serves
// traffic — the setting is not synchronised with in-flight RPCs.
func (rn *RemoteNode) SetCodec(c Codec) {
	rn.codec = c
	if c == CodecWire && rn.pool == nil {
		rn.pool = newWirePool(rn.base)
	}
	if c != CodecWire && rn.pool != nil {
		rn.pool.closeIdle()
		rn.pool = nil
	}
}

// WireInfo reports the codec this node is effectively spoken with —
// "wire" (persistent-connection transport open), "binary" (HTTP
// binary bodies), "json" (configured), or "json-fallback" (peer
// refused binary) — and the cumulative body and frame bytes exchanged
// with it over every codec.
func (rn *RemoteNode) WireInfo() (codec string, bytesIn, bytesOut uint64) {
	switch {
	case rn.codec == CodecJSON:
		codec = "json"
	case rn.jsonOnly.Load():
		codec = "json-fallback"
	case rn.pool != nil && !rn.pool.isUnsupported():
		codec = "wire"
	default:
		codec = "binary"
	}
	return codec, rn.bytesIn.Load(), rn.bytesOut.Load()
}

// timeout is the per-RPC budget for the persistent-connection
// transport when the caller's context carries no deadline.
func (rn *RemoteNode) timeout() time.Duration {
	if rn.client.Timeout > 0 {
		return rn.client.Timeout
	}
	return 30 * time.Second
}

// BaseURL returns the node's base URL.
func (rn *RemoteNode) BaseURL() string { return rn.base }

// wireHeader is the shared hot-path request header: never mutated, so
// concurrent requests can carry the same map and the per-call header
// allocation disappears. Requests that add headers (a trace ID) clone
// a fresh map instead.
var wireHeader = http.Header{
	"Content-Type": {persist.WireContentType},
	"Accept":       {persist.WireContentType + ", application/json"},
}

// useBinary reports whether the binary codec should be attempted.
func (rn *RemoteNode) useBinary() bool {
	return rn.codec != CodecJSON && !rn.jsonOnly.Load() && rn.urls != nil
}

// doBinary runs one hot-path RPC over the best available binary
// layer: the persistent-connection transport when the peer speaks it
// (and no trace needs HTTP headers), else binary bodies over HTTP.
// handle receives the verified response frame. errWireUnsupported
// means the peer speaks neither binary layer — the caller retries the
// RPC in JSON and rn remembers via jsonOnly.
func (rn *RemoteNode) doBinary(ctx context.Context, path string, req *persist.WireBuffer, handle func(frame []byte) error) error {
	if rn.met == nil && obs.FromContext(ctx) == nil {
		return rn.binaryRoundTrip(ctx, path, req, handle)
	}
	start := time.Now()
	err := rn.binaryRoundTrip(ctx, path, req, handle)
	if rn.met != nil {
		rn.met.Latency.ObserveSince(start)
	}
	obs.FromContext(ctx).AddSpan("rpc:"+path, start)
	return err
}

func (rn *RemoteNode) binaryRoundTrip(ctx context.Context, path string, req *persist.WireBuffer, handle func(frame []byte) error) error {
	if rn.pool != nil && obs.FromContext(ctx) == nil {
		err := rn.connRPC(ctx, path, req, handle)
		if !errors.Is(err, errWireUnsupported) {
			return err
		}
		// The peer refused the upgrade; try binary bodies over HTTP.
	}
	return rn.httpBinary(ctx, path, req, handle)
}

// httpBinary POSTs one framed binary request over HTTP and decodes
// the framed response. A 415, a "malformed JSON" rejection (an older
// node parsing the binary body as JSON) or a JSON 200 mark the peer
// jsonOnly and report errWireUnsupported so the caller re-sends in
// JSON.
func (rn *RemoteNode) httpBinary(ctx context.Context, path string, wb *persist.WireBuffer, handle func(frame []byte) error) error {
	if err := wb.Err(); err != nil {
		return fmt.Errorf("dist: encode %s: %w", path, err)
	}
	body := wb.Bytes()
	hreq := &http.Request{
		Method:        http.MethodPost,
		URL:           rn.urls[path],
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        wireHeader,
		Body:          io.NopCloser(bytes.NewReader(body)),
		GetBody:       func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil },
		ContentLength: int64(len(body)),
		Host:          rn.urls[path].Host,
	}
	if tr := obs.FromContext(ctx); tr != nil && tr.ID != "" {
		h := make(http.Header, 3)
		h["Content-Type"] = wireHeader["Content-Type"]
		h["Accept"] = wireHeader["Accept"]
		h.Set(obs.HeaderRequestID, tr.ID)
		hreq.Header = h
	}
	hreq = hreq.WithContext(ctx)
	resp, err := rn.client.Do(hreq)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	defer resp.Body.Close()
	rn.bytesOut.Add(uint64(len(body)))
	if rn.met != nil {
		rn.met.BytesOut.Add(uint64(len(body)))
	}
	buf := respBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		respBufPool.Put(buf)
	}()
	buf.Reset()
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, maxWireResponse)); err != nil {
		return fmt.Errorf("dist: node %s%s: read response: %w", rn.base, path, err)
	}
	rn.bytesIn.Add(uint64(buf.Len()))
	if rn.met != nil {
		rn.met.BytesIn.Add(uint64(buf.Len()))
	}
	if resp.StatusCode == http.StatusUnsupportedMediaType {
		rn.jsonOnly.Store(true)
		return fmt.Errorf("%w (node %s answered 415)", errWireUnsupported, rn.base)
	}
	if resp.StatusCode != http.StatusOK {
		snippet := buf.Bytes()
		if len(snippet) > 256 {
			snippet = snippet[:256]
		}
		if resp.StatusCode == http.StatusBadRequest && bytes.Contains(snippet, []byte("malformed JSON")) {
			// An older node tried to parse the binary body as JSON.
			rn.jsonOnly.Store(true)
			return fmt.Errorf("%w (node %s rejected the binary body as JSON)", errWireUnsupported, rn.base)
		}
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, path, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, persist.WireContentType) {
		// A 200 that ignored our Accept: the peer does not speak binary.
		rn.jsonOnly.Store(true)
		return fmt.Errorf("%w (node %s answered %q to a binary request)", errWireUnsupported, rn.base, ct)
	}
	if err := handle(buf.Bytes()); err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	return nil
}

// respBufPool pools HTTP binary response bodies.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// do runs one round-trip: POST body as JSON if in is non-nil, GET
// otherwise; decode the 200 response into out if out is non-nil. The
// round-trip (body decode included, failures included) feeds the
// attached RPC latency histogram, and a trace riding the context gets
// an "rpc:<path>" span plus the request-ID header the node echoes
// into its own telemetry.
func (rn *RemoteNode) do(ctx context.Context, path string, in, out any) error {
	if rn.met == nil && obs.FromContext(ctx) == nil {
		return rn.roundTrip(ctx, path, in, out)
	}
	start := time.Now()
	err := rn.roundTrip(ctx, path, in, out)
	if rn.met != nil {
		rn.met.Latency.ObserveSince(start)
	}
	obs.FromContext(ctx).AddSpan("rpc:"+path, start)
	return err
}

func (rn *RemoteNode) roundTrip(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	method := http.MethodGet
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("dist: encode %s: %w", path, err)
		}
		rn.bytesOut.Add(uint64(len(buf)))
		if rn.met != nil {
			rn.met.BytesOut.Add(uint64(len(buf)))
		}
		body = bytes.NewReader(buf)
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, rn.base+path, body)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tr := obs.FromContext(ctx); tr != nil && tr.ID != "" {
		req.Header.Set(obs.HeaderRequestID, tr.ID)
	}
	resp, err := rn.client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	defer func() {
		rn.bytesIn.Add(uint64(cr.n))
		if rn.met != nil {
			rn.met.BytesIn.Add(uint64(cr.n))
		}
	}()
	var rbody io.Reader = cr
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(rbody, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, path, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	if out == nil {
		io.Copy(io.Discard, rbody)
		return nil
	}
	if err := json.NewDecoder(rbody).Decode(out); err != nil {
		return fmt.Errorf("dist: decode %s%s: %w", rn.base, path, err)
	}
	return nil
}

// Add implements Node.
func (rn *RemoteNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	return rn.do(ctx, PathNodeAdd, &AddRequest{Doc: uint64(doc), URL: url, Text: text}, nil)
}

// AddBatch implements BatchAdder: the node's partition of a batch in
// one round-trip.
func (rn *RemoteNode) AddBatch(ctx context.Context, docs []Doc) error {
	if rn.useBinary() {
		wb := persist.GetWireBuffer()
		ops := make([]persist.Op, len(docs))
		for i, d := range docs {
			ops[i] = persist.Op{Doc: d.OID, URL: d.URL, Text: d.Text}
		}
		wb.EncodeAddBatchRequest(ops)
		err := rn.doBinary(ctx, PathNodeAddBatch, wb, persist.DecodeAck)
		persist.PutWireBuffer(wb)
		if !errors.Is(err, errWireUnsupported) {
			return err
		}
	}
	req := &AddBatchRequest{Docs: make([]AddRequest, len(docs))}
	for i, d := range docs {
		req.Docs[i] = AddRequest{Doc: uint64(d.OID), URL: d.URL, Text: d.Text}
	}
	return rn.do(ctx, PathNodeAddBatch, req, nil)
}

// Stats implements Node.
func (rn *RemoteNode) Stats(ctx context.Context) (ir.Stats, error) {
	if rn.useBinary() && rn.pool != nil && obs.FromContext(ctx) == nil {
		// Over the persistent-connection transport stats are one frame
		// each way; over HTTP they stay a JSON GET (the endpoint is off
		// the per-query hot path — the coordinator caches global stats).
		wb := persist.GetWireBuffer()
		wb.EncodeStatsRequest()
		var out ir.Stats
		err := rn.connRPC(ctx, PathNodeStats, wb, func(frame []byte) error {
			st, err := persist.DecodeStatsResponse(frame)
			out = st
			return err
		})
		persist.PutWireBuffer(wb)
		if !errors.Is(err, errWireUnsupported) {
			return out, err
		}
	}
	var w StatsJSON
	if err := rn.do(ctx, PathNodeStats, nil, &w); err != nil {
		return ir.Stats{}, err
	}
	return StatsFromJSON(w), nil
}

// TopNWithStats implements Node.
func (rn *RemoteNode) TopNWithStats(ctx context.Context, query string, n int, global ir.Stats) ([]ir.Result, error) {
	if rn.useBinary() {
		wb := persist.GetWireBuffer()
		wb.EncodeTopNRequest(query, n, global)
		var out []ir.Result
		err := rn.doBinary(ctx, PathNodeTopN, wb, func(frame []byte) error {
			rs, err := persist.DecodeTopNResponse(frame)
			out = rs
			return err
		})
		persist.PutWireBuffer(wb)
		if !errors.Is(err, errWireUnsupported) {
			return out, err
		}
	}
	var resp TopNResponse
	req := &TopNRequest{Query: query, N: n, Stats: StatsToJSON(global)}
	if err := rn.do(ctx, PathNodeTopN, req, &resp); err != nil {
		return nil, err
	}
	return ResultsFromJSON(resp.Results), nil
}

// SearchPlan implements Node. An exact plan takes the /node/topn
// round-trip (identical to TopNWithStats, RES-cacheable server-side);
// a budgeted plan ships the plan itself over /node/search so the
// cut-off executes below the remote node's RES set.
func (rn *RemoteNode) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if plan.Exact() {
		res, err := rn.TopNWithStats(ctx, query, plan.N, global)
		return res, ir.QualityEstimate{}, err
	}
	if rn.cost == nil {
		return rn.searchPlanBudgeted(ctx, query, plan, global)
	}
	start := time.Now()
	res, est, err := rn.searchPlanBudgeted(ctx, query, plan, global)
	if err == nil {
		rn.observeCost(start, est)
	}
	return res, est, err
}

// searchPlanBudgeted is SearchPlan's budgeted RPC without the
// cost-curve wrapper.
func (rn *RemoteNode) searchPlanBudgeted(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if rn.useBinary() {
		wb := persist.GetWireBuffer()
		wb.EncodeSearchRequest(query, plan, global)
		var out []ir.Result
		var outQ ir.QualityEstimate
		err := rn.doBinary(ctx, PathNodeSearch, wb, func(frame []byte) error {
			rs, q, err := persist.DecodeSearchResponse(frame)
			out, outQ = rs, q
			return err
		})
		persist.PutWireBuffer(wb)
		if !errors.Is(err, errWireUnsupported) {
			return out, outQ, err
		}
	}
	var resp SearchPlanResponse
	req := &SearchPlanRequest{Query: query, Plan: PlanToJSON(plan), Stats: StatsToJSON(global)}
	if err := rn.do(ctx, PathNodeSearch, req, &resp); err != nil {
		return nil, ir.QualityEstimate{}, err
	}
	return ResultsFromJSON(resp.Results), QualityFromJSON(resp.Quality), nil
}

// Load implements Node.
func (rn *RemoteNode) Load(ctx context.Context) (NodeLoad, error) {
	return rn.load(ctx, PathNodeLoad)
}

// LoadChecksum implements ChecksumLoader: GET /node/load?fresh=1 makes
// the node compute a fresh content digest before answering.
func (rn *RemoteNode) LoadChecksum(ctx context.Context) (NodeLoad, error) {
	return rn.load(ctx, PathNodeLoad+"?fresh=1")
}

func (rn *RemoteNode) load(ctx context.Context, path string) (NodeLoad, error) {
	var resp LoadResponse
	if err := rn.do(ctx, path, nil, &resp); err != nil {
		return NodeLoad{}, err
	}
	return NodeLoad{
		Docs:         resp.Docs,
		MaxDoc:       bat.OID(resp.MaxDoc),
		SnapshotUnix: resp.SnapshotUnix,
		Checksum:     resp.Checksum,
		LogPos:       resp.LogPos,
	}, nil
}

// Snapshot asks the remote node to persist a snapshot of its fragment
// to its data dir now (POST /node/snapshot). Nodes running without a
// data dir answer an error status, which comes back as an error here.
func (rn *RemoteNode) Snapshot(ctx context.Context) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := rn.do(ctx, PathNodeSnapshot, struct{}{}, &resp)
	return resp, err
}

// IdempotentIngest marks the node protocol's per-oid de-duplication:
// the node server wraps a LocalNode, so /node/add and /node/add/batch
// retries are no-ops for already-applied documents.
func (rn *RemoteNode) IdempotentIngest() {}

// SnapshotState implements StateSource: GET /node/snapshot streams the
// node's live fragment state in the internal/persist binary format —
// no data dir needed on the serving side; the persist checksum fails
// a truncated or corrupted transfer closed.
func (rn *RemoteNode) SnapshotState(ctx context.Context) (*ir.IndexState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rn.base+PathNodeSnapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: request %s: %w", PathNodeSnapshot, err)
	}
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeSnapshot, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeSnapshot, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	st, err := persist.Load(bufio.NewReader(resp.Body))
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeSnapshot, err)
	}
	return st, nil
}

// RestoreState implements StateSink: the state ships to
// POST /node/restore in the persist binary format and the remote node
// installs it under its write lock. A restore that succeeded in memory
// but failed to persist durably (SnapshotError in the response) is
// reported as an error: the caller must not record a durable resync
// that a crash would undo — the replica serves the restored state
// either way, and the next anti-entropy pass re-admits it by checksum
// match once it really is healthy.
func (rn *RemoteNode) RestoreState(ctx context.Context, st *ir.IndexState) error {
	var buf bytes.Buffer
	if err := persist.Save(&buf, st); err != nil {
		return fmt.Errorf("dist: encode %s: %w", PathNodeRestore, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rn.base+PathNodeRestore, &buf)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", PathNodeRestore, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeRestore, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeRestore, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	var rr RestoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return fmt.Errorf("dist: decode %s%s: %w", rn.base, PathNodeRestore, err)
	}
	if rr.SnapshotError != "" {
		return fmt.Errorf("dist: node %s%s: restored in memory but not persisted: %s",
			rn.base, PathNodeRestore, rr.SnapshotError)
	}
	return nil
}

// OpsSince implements DeltaSource: GET /node/oplog?from=P streams the
// node's log suffix in the persist delta wire format (per-record
// checksums travel with the data, so a corrupted transfer fails
// closed here). A 416 answer means the node compacted that suffix
// away (or keeps no log) — mapped to ErrDeltaUnavailable so the
// caller falls back to a full snapshot.
func (rn *RemoteNode) OpsSince(ctx context.Context, from uint64) ([]persist.Op, error) {
	url := fmt.Sprintf("%s%s?from=%d", rn.base, PathNodeOpLog, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("dist: request %s: %w", PathNodeOpLog, err)
	}
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestedRangeNotSatisfiable {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%w: node %s", ErrDeltaUnavailable, rn.base)
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeOpLog, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	got, ops, err := persist.DecodeOps(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	if got != from {
		return nil, fmt.Errorf("dist: node %s%s: asked for position %d, got %d", rn.base, PathNodeOpLog, from, got)
	}
	return ops, nil
}

// ApplyOps implements DeltaSink: the suffix ships to
// POST /node/oplog in the persist delta wire format and the remote
// node appends-and-applies it at exactly position from. A 409 answer
// is the position-mismatch rejection — the histories cannot be
// aligned by this delta and the caller falls back to a full snapshot.
func (rn *RemoteNode) ApplyOps(ctx context.Context, from uint64, ops []persist.Op) error {
	var buf bytes.Buffer
	if err := persist.EncodeOps(&buf, from, ops); err != nil {
		return fmt.Errorf("dist: encode %s: %w", PathNodeOpLog, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rn.base+PathNodeOpLog, &buf)
	if err != nil {
		return fmt.Errorf("dist: request %s: %w", PathNodeOpLog, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rn.transferClient().Do(req)
	if err != nil {
		return fmt.Errorf("dist: node %s%s: %w", rn.base, PathNodeOpLog, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%w: node %s: %s", ErrPosMismatch, rn.base, strings.TrimSpace(string(snippet)))
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("dist: node %s%s: status %d: %s",
			rn.base, PathNodeOpLog, resp.StatusCode, strings.TrimSpace(string(snippet)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Healthy reports whether the remote node answers its health probe.
func (rn *RemoteNode) Healthy(ctx context.Context) bool {
	return rn.do(ctx, PathHealthz, nil, nil) == nil
}
