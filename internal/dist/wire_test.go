package dist_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/server"
)

// startCodecCluster spins up k node servers and a cluster of
// RemoteNodes speaking the given codec to them.
func startCodecCluster(t testing.TB, k int, codec dist.Codec, jsonOnlyNodes bool) *dist.Cluster {
	t.Helper()
	nodes := make([]dist.Node, k)
	for i := 0; i < k; i++ {
		cfg := &server.NodeConfig{JSONOnly: jsonOnlyNodes}
		srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), cfg))
		t.Cleanup(srv.Close)
		rn := dist.NewRemoteNode(srv.URL, srv.Client())
		rn.SetCodec(codec)
		nodes[i] = rn
	}
	return dist.NewClusterOf(nodes, nil)
}

// TestCodecsByteIdentical is the cross-codec property: for k ∈
// {1, 2, 4, 8}, the JSON protocol, binary HTTP bodies and the
// persistent-connection transport return byte-identical rankings —
// documents AND float-bit-exact scores — and identical quality, both
// on the exact path and under a budgeted plan.
func TestCodecsByteIdentical(t *testing.T) {
	docs := remoteCorpus(300, 11)
	queries := []string{
		"champion winner serve",
		"seles",
		"melbourne trophy volley match",
		"quetzalcoatl", // unknown term
	}
	codecs := []struct {
		name  string
		codec dist.Codec
	}{
		{"json", dist.CodecJSON},
		{"binary", dist.CodecBinary},
		{"wire", dist.CodecWire},
	}
	for _, k := range []int{1, 2, 4, 8} {
		clusters := make([]*dist.Cluster, len(codecs))
		for ci, c := range codecs {
			clusters[ci] = startCodecCluster(t, k, c.codec, false)
			for i, d := range docs {
				if err := clusters[ci].AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
					t.Fatalf("codec=%s k=%d add: %v", c.name, k, err)
				}
			}
		}
		for _, q := range queries {
			for _, n := range []int{1, 2, 4, 8} {
				base, err := clusters[0].Search(context.Background(), q, n)
				if err != nil {
					t.Fatalf("k=%d q=%q json search: %v", k, q, err)
				}
				basePlan, err := clusters[0].SearchPlan(context.Background(), q, ir.EvalPlan{N: n, Budget: 1})
				if err != nil {
					t.Fatalf("k=%d q=%q json planned search: %v", k, q, err)
				}
				for ci := 1; ci < len(codecs); ci++ {
					ctxs := fmt.Sprintf("codec=%s k=%d q=%q n=%d", codecs[ci].name, k, q, n)
					sr, err := clusters[ci].Search(context.Background(), q, n)
					if err != nil {
						t.Fatalf("%s: %v", ctxs, err)
					}
					if !sr.Complete() {
						t.Fatalf("%s: dropped %v", ctxs, sr.Dropped)
					}
					if len(sr.Results) != len(base.Results) {
						t.Fatalf("%s: %d results, want %d", ctxs, len(sr.Results), len(base.Results))
					}
					for i := range base.Results {
						if sr.Results[i] != base.Results[i] {
							t.Fatalf("%s: rank %d = %+v, want %+v", ctxs, i, sr.Results[i], base.Results[i])
						}
					}
					pr, err := clusters[ci].SearchPlan(context.Background(), q, ir.EvalPlan{N: n, Budget: 1})
					if err != nil {
						t.Fatalf("%s planned: %v", ctxs, err)
					}
					if len(pr.Results) != len(basePlan.Results) {
						t.Fatalf("%s planned: %d results, want %d", ctxs, len(pr.Results), len(basePlan.Results))
					}
					for i := range basePlan.Results {
						if pr.Results[i] != basePlan.Results[i] {
							t.Fatalf("%s planned: rank %d = %+v, want %+v", ctxs, i, pr.Results[i], basePlan.Results[i])
						}
					}
					if pr.Quality != basePlan.Quality {
						t.Fatalf("%s planned: quality %v, want %v", ctxs, pr.Quality, basePlan.Quality)
					}
				}
			}
		}
	}
}

// TestWireFallsBackToJSONOnlyNode: a CodecWire client against a node
// started -wire=json negotiates all the way down — the upgrade is
// refused, binary bodies answer 415 — and every RPC still succeeds
// over JSON, permanently remembered per peer.
func TestWireFallsBackToJSONOnlyNode(t *testing.T) {
	c := startCodecCluster(t, 2, dist.CodecWire, true)
	docs := remoteCorpus(60, 5)
	for i, d := range docs {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	sr, err := c.Search(context.Background(), "champion serve", 5)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !sr.Complete() || len(sr.Results) == 0 {
		t.Fatalf("degraded search over JSON-only nodes: %+v", sr)
	}
}

// TestWireConnTransport exercises the persistent-connection hot path
// directly: WireInfo reports the upgraded transport, traffic is
// counted, and the node server's graceful shutdown reaps the
// hijacked connections (which left the http.Server's own accounting).
func TestWireConnTransport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.NewNodeHandler(ir.NewIndex(), nil)}
	done := make(chan struct{})
	go func() { srv.Serve(ln); close(done) }()

	rn := dist.NewRemoteNode("http://"+ln.Addr().String(), &http.Client{Timeout: 5 * time.Second})
	rn.SetCodec(dist.CodecWire)
	ctx := context.Background()
	if err := rn.Add(ctx, 1, "u", "melbourne champion ace"); err != nil {
		t.Fatalf("add: %v", err)
	}
	stats, err := rn.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	rs, err := rn.TopNWithStats(ctx, "champion", 5, stats)
	if err != nil {
		t.Fatalf("topn: %v", err)
	}
	if len(rs) != 1 || rs[0].Doc != 1 {
		t.Fatalf("topn over wire conn: %+v", rs)
	}
	codec, in, out := rn.WireInfo()
	if codec != "wire" {
		t.Fatalf("codec = %q, want wire", codec)
	}
	if in == 0 || out == 0 {
		t.Fatalf("wire traffic not counted: in=%d out=%d", in, out)
	}

	// Graceful shutdown must close the upgraded conns, not leave their
	// serve loops running: afterwards the same RemoteNode cannot reach
	// the node at all (redial refused), like any dead peer.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-done
	if _, err := rn.TopNWithStats(ctx, "champion", 5, stats); err == nil {
		t.Fatal("RPC succeeded against a shut-down node")
	}
}

// TestWireConnSaturationSheds: framed RPCs draw from the same
// in-flight budget as HTTP requests — a saturated node answers a
// framed 503 rather than queueing unboundedly, and the client
// surfaces it as an error.
func TestWireConnSaturationSheds(t *testing.T) {
	// MaxConcurrent 1 and a burst of 16 concurrent framed RPCs: the
	// slot serialises them, and any RPC arriving while the slot is
	// held is answered with a framed 503 that surfaces as a clean
	// client-side error — never a deadlock, never a torn stream.
	ix := ir.NewIndex()
	ix.Add(1, "u", "champion")
	srv := httptest.NewServer(server.NewNodeHandler(ix, &server.NodeConfig{MaxConcurrent: 1}))
	t.Cleanup(srv.Close)

	rn := dist.NewRemoteNode(srv.URL, srv.Client())
	rn.SetCodec(dist.CodecWire)
	stats, err := rn.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := rn.TopNWithStats(context.Background(), "champion", 3, stats)
			errs <- err
		}()
	}
	var ok, shed int
	for i := 0; i < 16; i++ {
		if err := <-errs; err == nil {
			ok++
		} else {
			shed++
		}
	}
	if ok == 0 {
		t.Fatal("every concurrent wire RPC failed")
	}
	t.Logf("16 concurrent RPCs over MaxConcurrent=1: %d served, %d shed", ok, shed)
}
