package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
)

// Anti-entropy is the self-healing half of replication: PR 4's replica
// groups quarantine a replica the moment it fails a committed write,
// but a replica can also diverge silently — a process restarted with
// an empty or stale data dir, a corrupted restore, an operator mistake
// — and the write path never notices. The anti-entropy pass compares
// content checksums (ir.Index.Checksum, carried in NodeLoad) WITHIN
// each replica group, so divergence is detected before a diverged
// replica ever serves a ranking, not only after a failed write; with
// repair enabled the pass also resyncs the divergent replica from the
// healthiest group member's snapshot, clears its quarantine and
// returns it to routing — zero operator action.

// ReplicaCheck is one replica's outcome of an anti-entropy pass.
type ReplicaCheck struct {
	Partition int
	Replica   int
	// Load is the replica's probe result (checksum, doc count); only
	// meaningful when Err is nil.
	Load NodeLoad
	// Err is the probe or repair failure, if any.
	Err error
	// Diverged is the replica's quarantine state AFTER the pass.
	Diverged bool
	// Cleared is set when a stale quarantine lifted because the
	// replica's checksum matches its group again (an operator restored
	// it, or an idempotent retry re-fed the missed documents).
	Cleared bool
	// Resynced is set when this pass healed the replica from a group
	// member's snapshot.
	Resynced bool
}

// AntiEntropyReport summarises one CheckReplicas pass.
type AntiEntropyReport struct {
	// Replicas holds every replica's outcome in (partition, replica)
	// order.
	Replicas []ReplicaCheck
	// Detected counts divergences newly found by this pass (replicas
	// already quarantined by a failed write are not re-counted).
	Detected int
	// Cleared counts stale quarantines lifted by checksum match.
	Cleared int
	// Resynced counts replicas healed by this pass.
	Resynced int
}

// CheckReplicas runs one anti-entropy pass: within every replica
// group, each replica's content checksum is compared against the
// group's reference replica — the reachable, non-quarantined member
// holding the most documents (ties to the preferred routing order). A
// replica whose checksum disagrees, whether it lags documents or holds
// different ones, is marked diverged and — with repair set — resynced
// from the reference on the spot. A quarantined replica whose checksum
// matches the reference again has its quarantine cleared. Groups whose
// every usable member is unreachable are skipped: with no reference
// there is no truth to compare against.
//
// The pass holds each group's ingest write lock while it probes and
// repairs that group, so checksums are compared against a consistent
// cut (no write half-applied across the group) and a repair can never
// lose a concurrent write. Writes to a group therefore stall for the
// duration of its probe (cheap: checksums are cached per freeze epoch)
// plus any resync it needs; other groups are unaffected. Single-node
// groups have nothing to compare and are reported as-is.
func (c *Cluster) CheckReplicas(ctx context.Context, repair bool) *AntiEntropyReport {
	start := time.Now()
	report := &AntiEntropyReport{}
	for g := range c.groups {
		c.checkGroup(ctx, g, repair, report)
	}
	if c.met != nil {
		c.met.AntiEntropyDur.ObserveSince(start)
	}
	c.log.Debugf("anti-entropy pass: %d replicas checked, %d diverged, %d cleared, %d resynced in %v",
		len(report.Replicas), report.Detected, report.Cleared, report.Resynced,
		time.Since(start).Round(time.Millisecond))
	return report
}

// checkGroup runs the anti-entropy pass over one replica group.
func (c *Cluster) checkGroup(ctx context.Context, g int, repair bool, report *AntiEntropyReport) {
	c.ingest[g].Lock()
	defer c.ingest[g].Unlock()
	reps := c.groups[g]
	checks := make([]ReplicaCheck, len(reps))
	var wg sync.WaitGroup
	for r, node := range reps {
		checks[r] = ReplicaCheck{Partition: g, Replica: r}
		wg.Add(1)
		go func(r int, node Node) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			// Force a fresh digest where the node supports it; a plain
			// Load may legitimately report no checksum (stale cache),
			// which would read as "cannot compare" below.
			if cl, ok := node.(ChecksumLoader); ok {
				checks[r].Load, checks[r].Err = cl.LoadChecksum(nctx)
				return
			}
			checks[r].Load, checks[r].Err = node.Load(nctx)
		}(r, node)
	}
	wg.Wait()
	// Reference: reachable, non-quarantined, checksum-reporting, most
	// documents; ties break to the lowest replica index (the preferred
	// routing order). A quarantined replica can never define the
	// group's truth, and neither can a node that reports no checksum (a
	// third-party Node outside the self-healing protocol) — electing
	// one as reference would silently disable detection for the group.
	//
	// Tripwire against automated data loss: every document the cluster
	// routed to this partition satisfies partition(doc) == g, so a
	// non-empty replica whose highest oid maps elsewhere is holding a
	// FOREIGN fragment (wrong -resync peer, copied data dir). "Most
	// documents wins" must never elect it — repair would erase the
	// partition's committed documents from the correct replicas and
	// report the cluster healed. Such a replica stays comparable (it
	// will mismatch and be resynced from a correct member), it just
	// cannot define the truth.
	ref := -1
	for r := range reps {
		chk := &checks[r]
		if chk.Err != nil || chk.Load.Checksum == "" || c.isDiverged(g, r) {
			continue
		}
		if chk.Load.Docs > 0 && c.partition(chk.Load.MaxDoc, len(c.groups)) != g {
			continue
		}
		if ref == -1 || chk.Load.Docs > checks[ref].Load.Docs {
			ref = r
		}
	}
	// Second tripwire: the elected reference must hold at least as many
	// documents as every other reachable replica whose fragment
	// plausibly belongs to this partition — quarantined ones included.
	// Otherwise a wiped-but-never-faulted replica (empty, not diverged)
	// would be elected over a quarantined replica still holding all
	// committed documents, and repair would erase the partition's only
	// full copy. When the fullest plausible copy is not electable the
	// group has no establishable truth: hands off, report only, leave
	// it to the operator (a foreign fragment's inflated doc count does
	// not veto — it is provably not this partition's data).
	if ref != -1 {
		for r := range reps {
			chk := &checks[r]
			if r == ref || chk.Err != nil {
				continue
			}
			if chk.Load.Docs > 0 && c.partition(chk.Load.MaxDoc, len(c.groups)) != g {
				continue
			}
			if chk.Load.Docs > checks[ref].Load.Docs {
				ref = -1
				break
			}
		}
	}
	for r := range reps {
		chk := &checks[r]
		// Checksum-less replicas cannot be compared — skip them rather
		// than "matching" two empty strings.
		if chk.Err == nil && ref != -1 && r != ref && chk.Load.Checksum != "" {
			match := chk.Load.Checksum == checks[ref].Load.Checksum
			switch {
			case match && c.isDiverged(g, r):
				c.clearDiverged(g, r)
				chk.Cleared = true
				report.Cleared++
			case !match && !c.isDiverged(g, r):
				c.markDiverged(g, r)
				c.divergeCount.Add(1)
				report.Detected++
				c.log.Warnf("anti-entropy: partition %d replica %d diverged (checksum %s, reference replica %d has %s)",
					g, r, chk.Load.Checksum, ref, checks[ref].Load.Checksum)
			}
			if !match && repair {
				if err := c.resyncLocked(ctx, g, r, ref); err != nil {
					chk.Err = err
				} else {
					chk.Resynced = true
					report.Resynced++
				}
			}
		}
		chk.Diverged = c.isDiverged(g, r)
		report.Replicas = append(report.Replicas, *chk)
	}
}

// ResyncReplica heals replica r of partition g from the healthiest
// other member of its group: the source's complete fragment state is
// exported as one consistent cut and installed on the target under its
// write lock, the target's freeze epoch advancing past its pre-restore
// epoch so no cache serves pre-restore rankings. On success the
// replica's quarantine lifts and it rejoins routing as an equal —
// searches served by it are byte-identical to the source's.
//
// The resync holds the group's ingest write lock for its whole
// export→import window, so adds racing the resync are never lost: they
// either committed on every replica before the export, or they apply
// on top of the restored state afterwards. Per-node timeouts are
// deliberately NOT applied to the transfer (a fragment ships in one
// call whose size has nothing to do with one operation's budget) —
// bound it through ctx.
func (c *Cluster) ResyncReplica(ctx context.Context, g, r int) error {
	if g < 0 || g >= len(c.groups) || r < 0 || r >= len(c.groups[g]) {
		return fmt.Errorf("dist: no replica %d/%d", g, r)
	}
	c.ingest[g].Lock()
	defer c.ingest[g].Unlock()
	// Candidate sources in routing-preference order (non-diverged,
	// least-failing first); the target itself cannot be its own source.
	order := c.replicaOrder(g)
	if order == nil {
		return errors.New("dist: single-replica partition has no resync source")
	}
	var errs []error
	for _, src := range order {
		if src == r || c.isDiverged(g, src) {
			continue
		}
		if len(errs) > 0 {
			// A source just failed: back off (exponentially, jittered)
			// before hitting the next candidate, so a group recovering
			// from a shared fault isn't stormed by its own healing.
			if c.backoffSleep(ctx, len(errs)-1, resyncRetryBase, 2*time.Second) != nil {
				break
			}
		}
		if err := c.resyncLocked(ctx, g, r, src); err != nil {
			errs = append(errs, err)
			continue
		}
		return nil
	}
	if errs == nil {
		return fmt.Errorf("dist: partition %d has no healthy resync source for replica %d", g, r)
	}
	return errors.Join(errs...)
}

// resyncRetryBase paces retries and source-candidate fallbacks on the
// self-healing paths (exponential with jitter, see backoffDelay).
const resyncRetryBase = 100 * time.Millisecond

// resyncRetries bounds how many times a transiently failing resync
// RPC is attempted before the error propagates.
const resyncRetries = 3

// resyncLocked moves src's state onto replica r of group g. The caller
// holds the group's ingest write lock.
//
// The cheap path ships an op-log delta: when both ends speak the
// delta protocol and the source's log still covers the target's
// position, only the missing log suffix travels — cost proportional
// to the LAG, not the fragment. Positions alone cannot prove the two
// histories share a prefix (a replica may hold the right COUNT of the
// wrong documents), so the delta is an optimization verified by
// content checksum: after the apply, source and target must report
// identical fresh checksums, and any mismatch falls back to the full
// snapshot below. The full path is the unconditional truth-mover —
// and it too verifies before readmitting: the target's fresh checksum
// must equal the shipped state's, or the replica STAYS quarantined
// (checksum-verified rejoin) rather than serving wrong rankings.
func (c *Cluster) resyncLocked(ctx context.Context, g, r, src int) error {
	start := time.Now()
	err := c.doResyncLocked(ctx, g, r, src)
	if c.met != nil {
		c.met.ResyncDur.ObserveSince(start)
	}
	if err != nil {
		c.log.Warnf("resync %d/%d from replica %d failed after %v: %v",
			g, r, src, time.Since(start).Round(time.Millisecond), err)
	} else {
		c.log.Infof("resync %d/%d from replica %d completed in %v",
			g, r, src, time.Since(start).Round(time.Millisecond))
	}
	return err
}

func (c *Cluster) doResyncLocked(ctx context.Context, g, r, src int) error {
	source, ok := c.groups[g][src].(StateSource)
	if !ok {
		return fmt.Errorf("dist: partition %d replica %d cannot export state", g, src)
	}
	sink, ok := c.groups[g][r].(StateSink)
	if !ok {
		return fmt.Errorf("dist: partition %d replica %d cannot import state", g, r)
	}
	if c.tryDeltaResync(ctx, g, r, src) {
		return nil
	}
	var st *ir.IndexState
	if err := c.withRetry(ctx, resyncRetries, resyncRetryBase, func() error {
		var err error
		st, err = source.SnapshotState(ctx)
		return err
	}); err != nil {
		return fmt.Errorf("dist: resync %d/%d: export from replica %d: %w", g, r, src, err)
	}
	if err := c.withRetry(ctx, resyncRetries, resyncRetryBase, func() error {
		return sink.RestoreState(ctx, st)
	}); err != nil {
		return fmt.Errorf("dist: resync %d/%d: import: %w", g, r, err)
	}
	// Checksum-verified rejoin: before the replica re-enters routing,
	// its content must provably equal what was shipped. A target that
	// cannot report a fresh checksum (a third-party Node) keeps the
	// pre-verification contract — RestoreState succeeded, readmit.
	if tcl, ok := c.groups[g][r].(ChecksumLoader); ok {
		want := st.Checksum()
		var got NodeLoad
		verr := c.withRetry(ctx, resyncRetries, resyncRetryBase, func() error {
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			var err error
			got, err = tcl.LoadChecksum(nctx)
			return err
		})
		if verr != nil || got.Checksum != want {
			c.markDiverged(g, r)
			if verr != nil {
				return fmt.Errorf("dist: resync %d/%d: post-restore checksum probe: %w", g, r, verr)
			}
			return fmt.Errorf("dist: resync %d/%d: post-restore checksum %s does not match shipped state %s — replica stays quarantined", g, r, got.Checksum, want)
		}
	}
	// Count the full resync (and its shipped bytes) only now that it is
	// verified: a rejoin that failed verification leaves the replica
	// quarantined and must not be reported as a completed heal —
	// otherwise ResyncsFull+ResyncsDelta could exceed Resyncs.
	if bytes, err := persist.SizeOf(st); err == nil {
		c.resyncBytes.Add(uint64(bytes))
	}
	c.resyncFullCount.Add(1)
	c.finishResync(g, r)
	return nil
}

// tryDeltaResync attempts the log-suffix path of resyncLocked and
// reports whether it fully healed (applied AND checksum-verified)
// replica r from src. Every failure — missing capability, compacted
// log, position mismatch, transfer error, checksum disagreement —
// returns false and the caller falls back to the full snapshot; the
// fallback overwrites whatever a partial delta left behind.
func (c *Cluster) tryDeltaResync(ctx context.Context, g, r, src int) bool {
	ds, ok := c.groups[g][src].(DeltaSource)
	if !ok {
		return false
	}
	sink, ok := c.groups[g][r].(DeltaSink)
	if !ok {
		return false
	}
	scl, sok := c.groups[g][src].(ChecksumLoader)
	tcl, tok := c.groups[g][r].(ChecksumLoader)
	if !sok || !tok {
		// Without fresh checksums on both ends the delta cannot be
		// verified, and an unverified delta is a silent-wrong-ranking
		// machine. Full snapshot only.
		return false
	}
	nctx, cancel := c.nodeCtx(ctx)
	target, err := c.groups[g][r].Load(nctx)
	cancel()
	if err != nil {
		return false
	}
	ops, err := ds.OpsSince(ctx, target.LogPos)
	if err != nil {
		return false
	}
	if err := sink.ApplyOps(ctx, target.LogPos, ops); err != nil {
		return false
	}
	// Verify: the whole point of the delta gamble. Fresh digests from
	// both ends; the group ingest lock (held by our caller) guarantees
	// nothing is being written between the two probes.
	var srcLoad, tgtLoad NodeLoad
	nctx, cancel = c.nodeCtx(ctx)
	srcLoad, err = scl.LoadChecksum(nctx)
	cancel()
	if err != nil || srcLoad.Checksum == "" {
		return false
	}
	nctx, cancel = c.nodeCtx(ctx)
	tgtLoad, err = tcl.LoadChecksum(nctx)
	cancel()
	if err != nil || tgtLoad.Checksum != srcLoad.Checksum {
		return false
	}
	c.resyncBytes.Add(uint64(persist.OpsSize(ops)))
	c.resyncDeltaCount.Add(1)
	c.finishResync(g, r)
	return true
}

// finishResync records a verified resync: quarantine lifts, counters
// bump, statistics re-aggregate.
func (c *Cluster) finishResync(g, r int) {
	c.markResynced(g, r)
	c.resyncCount.Add(1)
	// The replica's content changed behind the aggregated statistics:
	// logically it now equals the group (same stats), but a resync that
	// repaired real divergence may shift global df/Σdf — re-aggregate.
	c.InvalidateStats()
}

// RunAntiEntropy runs CheckReplicas with repair on every interval
// until ctx cancels — the background self-healing loop a coordinator
// starts once at boot. Failures are absorbed: an unreachable replica
// is simply checked again next interval. Each pass is bounded to the
// interval itself: probes and resync transfers hold per-group ingest
// locks, and a peer that black-holes mid-transfer must abort the pass
// (releasing the lock, unblocking writes) rather than wedge the loop
// and the partition forever. A resync of a fragment too large to ship
// within one interval simply needs a larger interval.
//
// Each sleep is jittered over [0.5·interval, 1.5·interval): multiple
// coordinators (or many groups behind one) started together must not
// probe — and stall ingest — in lockstep forever.
func (c *Cluster) RunAntiEntropy(ctx context.Context, interval time.Duration) {
	t := time.NewTimer(jitterInterval(interval))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tctx, cancel := context.WithTimeout(ctx, interval)
			c.CheckReplicas(tctx, true)
			cancel()
			t.Reset(jitterInterval(interval))
		}
	}
}
