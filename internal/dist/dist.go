// Package dist implements the paper's shared-nothing distribution of
// the full-text meta-index (Section "Scalability", experiment E11):
// the document collection is fragmented per document over k
// autonomous partitions, each holding the complete T/D/DT/TF/IDF
// relations for its document subset.
//
// The protocol mirrors the paper's central-DBMS architecture:
//
//  1. The central site aggregates the per-partition term statistics
//     (df, Σdf, |D|) into global statistics and ships them with the
//     query, so every node scores its local documents exactly as one
//     global index would (ir.Stats / ir.TopNWithStats).
//  2. Every partition evaluates the top-N query over its local
//     fragment only — no inter-node communication — and returns a
//     small RES(doc-oid, score) set of at most N rows.
//  3. The central site merges the RES sets with ir.Merge into the
//     master ranking. Because the global top-N is a subset of the
//     union of the local top-Ns and all scores are computed from the
//     same global statistics, the merged ranking is identical to the
//     ranking of a single index over the whole collection.
//
// Partitions are addressed through the Node interface, so a fragment
// may live in-process (LocalNode) or behind an HTTP boundary
// (RemoteNode) without the central site noticing. Per-node deadlines
// and straggler handling (Search) keep one slow or dead node from
// stalling the whole query: the merge proceeds over the responsive
// partitions and the dropped ones are reported.
//
// Replication is the availability axis on top: a Cluster built by
// NewReplicatedCluster places every partition on R nodes — a replica
// group. Writes fan out to all replicas of the document's partition so
// the group's members stay identical copies; reads route each
// partition to one healthy replica and fail over to the next on error
// or missed deadline, so killing any single node leaves the merged
// ranking byte-identical to the exact single-index ranking. Only when
// a whole group is unreachable does a search degrade along PR 2's
// paths (dropped fragment, stale statistics). Per-replica health —
// consecutive failures, last error — steers routing and is exported
// for the serving layer's /stats.
//
// SearchPlan combines the paper's two scaling axes: the query ships
// with an ir.EvalPlan, each shared-nothing partition fragments its own
// document subset on descending idf and evaluates only the budgeted
// prefix (the a-priori cut-off of [BHC+01], pushed below the per-node
// RES sets), and the merge additionally folds the partitions' quality
// estimates into a cluster-wide ir.QualityEstimate.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
)

// Options configures a Cluster. The zero value (or a nil *Options)
// selects deterministic round-robin partitioning on the document oid,
// the default ranking parameter and no per-node deadline.
type Options struct {
	// Partition maps a document oid to a partition in [0, k). It must
	// be deterministic: the same oid must always land on the same
	// partition. Nil selects round-robin on the oid, which yields
	// balanced loads for the dense oid sequences the engine hands out.
	Partition func(doc bat.OID, k int) int

	// Lambda overrides the smoothing parameter of the retrieval model
	// on every node built by NewCluster; 0 keeps ir.DefaultLambda.
	// Nodes supplied to NewClusterOf configure their own indexes.
	Lambda float64

	// NodeTimeout bounds every per-node call (stats, top-N, load,
	// add). A node that does not answer within the deadline is treated
	// as a straggler: reads fail over to the partition's next replica,
	// and only a partition with no responsive replica left is dropped
	// from the merge. 0 means no per-node deadline.
	NodeTimeout time.Duration

	// Logger, when set, gives the cluster's background machinery
	// (anti-entropy passes, resyncs, retry backoff) a voice: routine
	// activity at Debug, divergence and healing at Warn/Info. Nil is
	// silent.
	Logger *obs.Logger

	// Metrics, when set, opts the cluster into duration/counter
	// instrumentation (see ClusterMetrics). Nil — the default, and
	// what every benchmark uses — records nothing and costs nothing on
	// the hot path beyond a nil check.
	Metrics *ClusterMetrics
}

// ClusterMetrics are the cluster's opt-in instruments. Every field is
// optional (a nil histogram or counter ignores observations), so a
// caller wires only what it exposes.
type ClusterMetrics struct {
	// RPCLatency observes the duration of every routed per-node call
	// (reads via groupCall, writes via fanToGroup), in seconds —
	// failures included, since a timeout's cost is exactly what an
	// operator hunting stragglers needs to see.
	RPCLatency *obs.Histogram
	// AntiEntropyDur observes the duration of each anti-entropy pass
	// (CheckReplicas), in seconds.
	AntiEntropyDur *obs.Histogram
	// ResyncDur observes the duration of each attempted replica resync
	// (delta or full, success or failure), in seconds.
	ResyncDur *obs.Histogram
	// Retries counts retry attempts on the self-healing paths (every
	// re-invocation after a failure).
	Retries *obs.Counter
	// BackoffSeconds observes each backoff sleep on the self-healing
	// paths, in seconds — cumulative time spent waiting out failures.
	BackoffSeconds *obs.Histogram
}

// roundRobin is the default partitioning: dense oids spread evenly.
func roundRobin(doc bat.OID, k int) int {
	if doc == bat.NilOID {
		return 0
	}
	return int((uint64(doc) - 1) % uint64(k))
}

// replicaStatus is one replica's routing state, guarded by the owning
// groupHealth's mutex. Fails counts CONSECUTIVE failures: any success
// resets it, so a recovered replica immediately regains routing
// preference. diverged is stickier: it marks a replica that failed a
// write its group committed — its copy is missing documents, and a
// later successful call must NOT re-admit it as an equal, because it
// would serve rankings silently missing committed documents. A
// diverged replica routes last (better a stale ranking than a dropped
// partition), searches it serves are flagged, and the mark outlives
// reconnects: it clears only when the replica provably matches its
// group again — after a resync (ResyncReplica), or when an
// anti-entropy pass observes its content checksum equal to the group's
// (an operator restored it, or an idempotent retry re-fed it the
// missed documents).
type replicaStatus struct {
	fails      uint64
	lastErr    string
	lastOK     time.Time
	lastFail   time.Time
	diverged   bool
	lastResync time.Time // when the replica last healed from a group member

	// rpcCalls / rpcTotal accumulate the latency of every routed call
	// to this replica (success or failure), feeding the per-replica
	// RPC latency the serving layer's /stats reports.
	rpcCalls uint64
	rpcTotal time.Duration
}

// groupHealth tracks the routing state of one replica group.
type groupHealth struct {
	mu   sync.Mutex
	reps []replicaStatus
}

// ReplicaHealth is the exported snapshot of one replica's routing
// state, reported by Cluster.ReplicaHealth and the coordinator /stats.
type ReplicaHealth struct {
	// Fails is the consecutive-failure count; 0 means reachable.
	Fails uint64
	// LastErr is the most recent failure ("" when none since the last
	// success).
	LastErr string
	// LastOKUnix / LastFailUnix are the unix seconds of the most
	// recent success / failure (0 = never).
	LastOKUnix   int64
	LastFailUnix int64
	// Diverged marks a replica that failed a write its group
	// committed, or whose content checksum disagreed with its group's
	// during an anti-entropy pass: its copy differs from the committed
	// state and needs resync (ResyncReplica, or an anti-entropy pass
	// with repair enabled) before it can serve as an equal again.
	Diverged bool
	// LastResyncUnix is when the replica last healed from a group
	// member (unix seconds, 0 = never).
	LastResyncUnix int64
	// RPCCalls / RPCTotalUS are the replica's cumulative routed-call
	// count and latency (microseconds), failures included — the
	// per-replica RPC latency surfaced in /stats.
	RPCCalls   uint64
	RPCTotalUS int64
}

// Healthy reports whether the replica's last call succeeded AND its
// copy is not known to be missing committed writes.
func (h ReplicaHealth) Healthy() bool { return h.Fails == 0 && !h.Diverged }

// Cluster is a shared-nothing cluster of replica groups with a central
// merge site; the common unreplicated cluster is the R=1 special case
// (every group one node). All methods are safe for concurrent use when
// every node is (LocalNode and RemoteNode both synchronize their
// index); a query racing an Add may score against statistics from just
// before or just after the new document, but never against torn state.
type Cluster struct {
	groups    [][]Node
	health    []*groupHealth
	partition func(bat.OID, int) int
	timeout   time.Duration
	log       *obs.Logger     // nil is silent
	met       *ClusterMetrics // nil records nothing

	// ingest is the per-group write/resync arbiter: writes (fanToGroup)
	// hold the read side for the duration of the fan-out, a resync holds
	// the write side across its export→import window. This is what makes
	// resync safe under concurrent ingest: no write can land on the
	// source after the export but on the target before the import (it
	// would be erased by the import and silently lost) — a racing write
	// either completes on every replica before the resync starts, or
	// applies on top of the restored state after it finishes.
	ingest []*sync.RWMutex

	mu         sync.Mutex // guards the stats fields below
	stats      ir.Stats
	fresh      bool      // stats reflect all Adds routed through this cluster
	have       bool      // stats were successfully aggregated at least once
	gen        uint64    // bumped by every invalidation; guards refresh races
	retryAfter time.Time // failed-aggregation backoff deadline

	searchCount   atomic.Uint64 // searches served
	failoverCount atomic.Uint64 // replica failovers across all searches
	droppedCount  atomic.Uint64 // partitions dropped from merges
	resyncCount   atomic.Uint64 // successful replica resyncs
	divergeCount  atomic.Uint64 // divergences detected by anti-entropy

	resyncDeltaCount atomic.Uint64 // resyncs healed by op-log delta
	resyncFullCount  atomic.Uint64 // resyncs that shipped a full snapshot
	resyncBytes      atomic.Uint64 // bytes shipped by resyncs (delta or full)
}

// NewCluster builds a cluster of k in-process single-replica
// partitions (k < 1 is clamped to 1).
func NewCluster(k int, opts *Options) *Cluster {
	if k < 1 {
		k = 1
	}
	nodes := make([]Node, k)
	for i := range nodes {
		ix := ir.NewIndex()
		if opts != nil && opts.Lambda != 0 {
			ix.SetLambda(opts.Lambda)
		}
		nodes[i] = NewLocalNode(ix)
	}
	return NewClusterOf(nodes, opts)
}

// NewClusterOf builds an unreplicated cluster over caller-supplied
// nodes — local, remote, or a mix: every node is its own partition.
// It panics on an empty slice (a deferred divide-by-zero at the first
// Add would be far harder to diagnose).
func NewClusterOf(nodes []Node, opts *Options) *Cluster {
	groups := make([][]Node, len(nodes))
	for i, n := range nodes {
		groups[i] = []Node{n}
	}
	return NewReplicatedClusterOf(groups, opts)
}

// NewReplicaGroups slices nodes into partitions of r replicas each:
// group i holds nodes[i*r : (i+1)*r]. The node count must be a
// multiple of r — a short trailing group would silently have less
// fault tolerance than the rest of the cluster.
func NewReplicaGroups(nodes []Node, r int) ([][]Node, error) {
	if r < 1 {
		r = 1
	}
	if len(nodes) == 0 || len(nodes)%r != 0 {
		return nil, fmt.Errorf("dist: %d nodes do not divide into replica groups of %d", len(nodes), r)
	}
	groups := make([][]Node, len(nodes)/r)
	for i := range groups {
		groups[i] = nodes[i*r : (i+1)*r]
	}
	return groups, nil
}

// NewReplicatedCluster builds a cluster that places each partition on
// r nodes (see NewReplicaGroups for the placement).
func NewReplicatedCluster(nodes []Node, r int, opts *Options) (*Cluster, error) {
	groups, err := NewReplicaGroups(nodes, r)
	if err != nil {
		return nil, err
	}
	return NewReplicatedClusterOf(groups, opts), nil
}

// NewReplicatedClusterOf builds a cluster over caller-supplied replica
// groups: each inner slice is one partition's replicas (all holding,
// or about to hold, identical copies of that partition). Groups may
// differ in size. It panics on an empty cluster or an empty group.
func NewReplicatedClusterOf(groups [][]Node, opts *Options) *Cluster {
	if len(groups) == 0 {
		panic("dist: cluster requires at least one replica group")
	}
	c := &Cluster{groups: groups, partition: roundRobin}
	c.health = make([]*groupHealth, len(groups))
	c.ingest = make([]*sync.RWMutex, len(groups))
	for g, reps := range groups {
		if len(reps) == 0 {
			panic("dist: replica group must hold at least one node")
		}
		c.health[g] = &groupHealth{reps: make([]replicaStatus, len(reps))}
		c.ingest[g] = &sync.RWMutex{}
	}
	if opts != nil {
		if opts.Partition != nil {
			c.partition = opts.Partition
		}
		c.timeout = opts.NodeTimeout
		c.log = opts.Logger
		c.met = opts.Metrics
	}
	return c
}

// SetLogger attaches (or replaces) the cluster's background-loop
// logger after construction. Call before background loops start.
func (c *Cluster) SetLogger(l *obs.Logger) { c.log = l }

// SetMetrics opts the cluster into instrumentation after
// construction. Call before the cluster starts serving.
func (c *Cluster) SetMetrics(m *ClusterMetrics) { c.met = m }

// rpcObserve folds one routed call's latency into the cluster-wide
// RPC histogram.
func (c *Cluster) rpcObserve(d time.Duration) {
	if c.met != nil {
		c.met.RPCLatency.Observe(d.Seconds())
	}
}

// Size returns the number of partitions (replica groups).
func (c *Cluster) Size() int { return len(c.groups) }

// Replicas returns the replica count of partition g.
func (c *Cluster) Replicas(g int) int { return len(c.groups[g]) }

// NodeAt returns partition i's primary (first) replica, for inspection
// by experiments.
func (c *Cluster) NodeAt(i int) Node { return c.groups[i][0] }

// ReplicaAt returns replica r of partition g.
func (c *Cluster) ReplicaAt(g, r int) Node { return c.groups[g][r] }

// LocalIndex returns the underlying index of partition i's primary
// replica if it is an in-process node, nil otherwise.
func (c *Cluster) LocalIndex(i int) *ir.Index {
	if ln, ok := c.groups[i][0].(*LocalNode); ok {
		return ln.Index()
	}
	return nil
}

// ReplicaHealth returns a snapshot of every replica's routing state,
// indexed [partition][replica].
func (c *Cluster) ReplicaHealth() [][]ReplicaHealth {
	out := make([][]ReplicaHealth, len(c.groups))
	for g, gh := range c.health {
		gh.mu.Lock()
		out[g] = make([]ReplicaHealth, len(gh.reps))
		for r, st := range gh.reps {
			h := ReplicaHealth{
				Fails: st.fails, LastErr: st.lastErr, Diverged: st.diverged,
				RPCCalls: st.rpcCalls, RPCTotalUS: st.rpcTotal.Microseconds(),
			}
			if !st.lastOK.IsZero() {
				h.LastOKUnix = st.lastOK.Unix()
			}
			if !st.lastFail.IsZero() {
				h.LastFailUnix = st.lastFail.Unix()
			}
			if !st.lastResync.IsZero() {
				h.LastResyncUnix = st.lastResync.Unix()
			}
			out[g][r] = h
		}
		gh.mu.Unlock()
	}
	return out
}

// Telemetry is the cluster's cumulative availability accounting.
type Telemetry struct {
	Searches uint64 // searches served (SearchPlan calls that fanned out)
	// Failovers counts replica failovers across EVERY read path —
	// searches, statistics aggregation and load probes alike — so with
	// a dead primary it can legitimately exceed Searches.
	Failovers uint64
	Dropped   uint64 // partitions dropped from merged rankings
	// Resyncs counts replicas healed from a group member's snapshot;
	// DivergenceDetected counts divergences anti-entropy found BEFORE
	// they served (write-failure quarantines are not counted here —
	// they are detected at the write, not by checksum comparison).
	Resyncs            uint64
	DivergenceDetected uint64
	// ResyncsDelta / ResyncsFull split Resyncs by transfer strategy:
	// a delta resync shipped only the op-log suffix the replica was
	// missing, a full resync shipped the whole fragment snapshot.
	// ResyncBytes totals the bytes shipped either way — with a mostly
	// delta-healing cluster it stays far below fragments × snapshot
	// size, which is the whole point of the op log.
	ResyncsDelta uint64
	ResyncsFull  uint64
	ResyncBytes  uint64
}

// Telemetry returns the cumulative counters.
func (c *Cluster) Telemetry() Telemetry {
	return Telemetry{
		Searches:           c.searchCount.Load(),
		Failovers:          c.failoverCount.Load(),
		Dropped:            c.droppedCount.Load(),
		Resyncs:            c.resyncCount.Load(),
		DivergenceDetected: c.divergeCount.Load(),
		ResyncsDelta:       c.resyncDeltaCount.Load(),
		ResyncsFull:        c.resyncFullCount.Load(),
		ResyncBytes:        c.resyncBytes.Load(),
	}
}

// record folds one call outcome — and its latency — into a replica's
// routing state.
func (c *Cluster) record(g, r int, err error, d time.Duration) {
	gh := c.health[g]
	gh.mu.Lock()
	st := &gh.reps[r]
	st.rpcCalls++
	st.rpcTotal += d
	if err == nil {
		st.fails = 0
		st.lastErr = ""
		st.lastOK = time.Now()
	} else {
		st.fails++
		st.lastErr = err.Error()
		st.lastFail = time.Now()
	}
	gh.mu.Unlock()
	c.rpcObserve(d)
}

// markDiverged flags a replica whose copy is known to be missing
// committed writes.
func (c *Cluster) markDiverged(g, r int) {
	gh := c.health[g]
	gh.mu.Lock()
	gh.reps[r].diverged = true
	gh.mu.Unlock()
}

// isDiverged reports whether a replica carries the divergence mark.
func (c *Cluster) isDiverged(g, r int) bool {
	gh := c.health[g]
	gh.mu.Lock()
	defer gh.mu.Unlock()
	return gh.reps[r].diverged
}

// clearDiverged removes a replica's divergence mark — called only when
// the replica's content checksum provably matches its group again.
func (c *Cluster) clearDiverged(g, r int) {
	gh := c.health[g]
	gh.mu.Lock()
	gh.reps[r].diverged = false
	gh.mu.Unlock()
}

// markResynced records a completed resync: the replica holds a fresh
// copy of the group state, so the quarantine lifts, its failure streak
// resets (it just answered a restore) and the resync age starts.
func (c *Cluster) markResynced(g, r int) {
	gh := c.health[g]
	gh.mu.Lock()
	st := &gh.reps[r]
	st.diverged = false
	st.fails = 0
	st.lastErr = ""
	st.lastResync = time.Now()
	gh.mu.Unlock()
}

// replicaOrder returns the routing order for a group's replicas:
// non-diverged, least-failing replicas first, ties broken by index so
// the primary is preferred when all are healthy; diverged replicas
// come last regardless of reachability — a reconnecting replica that
// missed writes must not serve as an equal just because it answers.
// Single-replica groups short-circuit without allocating.
func (c *Cluster) replicaOrder(g int) []int {
	reps := c.groups[g]
	if len(reps) == 1 {
		return nil
	}
	gh := c.health[g]
	gh.mu.Lock()
	fails := make([]uint64, len(reps))
	diverged := make([]bool, len(reps))
	for r := range reps {
		fails[r] = gh.reps[r].fails
		diverged[r] = gh.reps[r].diverged
	}
	gh.mu.Unlock()
	order := make([]int, len(reps))
	for r := range order {
		order[r] = r
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if diverged[a] != diverged[b] {
			return !diverged[a]
		}
		return fails[a] < fails[b]
	})
	return order
}

// groupCall routes one read through partition g with failover: the
// replicas are tried in health-preference order, each under its own
// per-node deadline, until one answers. It returns the answer, how
// many failovers (failed attempts before the outcome) happened,
// whether the replica that answered is marked diverged (its copy may
// miss committed writes — callers surface this instead of claiming a
// complete answer), and the last error when every replica failed. A
// caller-cancelled context stops the failover loop — the caller's
// deadline must not be spent walking dead replicas — and is not held
// against the replica.
func groupCall[T any](c *Cluster, ctx context.Context, g, scale int, call func(context.Context, Node) (T, error)) (T, int, bool, error) {
	var zero T
	order := c.replicaOrder(g)
	n := len(c.groups[g])
	var lastErr error
	tried := 0
	for i := 0; i < n; i++ {
		r := i
		if order != nil {
			r = order[i]
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		nctx, cancel := c.nodeCtxN(ctx, scale)
		start := time.Now()
		v, err := call(nctx, c.groups[g][r])
		took := time.Since(start)
		cancel()
		tried++
		if err == nil {
			c.record(g, r, nil, took)
			return v, tried - 1, c.isDiverged(g, r), nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's own deadline expired mid-call: the failure
			// says nothing about this replica.
			break
		}
		c.record(g, r, err, took)
	}
	failovers := tried - 1
	if failovers < 0 {
		failovers = 0
	}
	return zero, failovers, false, lastErr
}

// fanToGroup routes one write to ALL replicas of partition g in
// parallel — replicas must stay identical copies — and reports how
// many committed plus the joined per-replica errors. A partial commit
// (0 < committed < replicas) means the failing replicas are now STALE:
// they miss documents the group's survivors hold, and must be restored
// from a snapshot (or re-fed the documents) before they can serve
// again. The serving layer surfaces this through per-replica health.
func (c *Cluster) fanToGroup(ctx context.Context, g, scale int, call func(context.Context, Node) error) (int, error) {
	// Shared side of the write/resync arbiter: writes proceed
	// concurrently with each other, but never overlap a resync of this
	// group (which would lose them on the resynced replica).
	c.ingest[g].RLock()
	defer c.ingest[g].RUnlock()
	reps := c.groups[g]
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for r, node := range reps {
		wg.Add(1)
		go func(r int, node Node) {
			defer wg.Done()
			nctx, cancel := c.nodeCtxN(ctx, scale)
			defer cancel()
			start := time.Now()
			err := call(nctx, node)
			if err == nil || ctx.Err() == nil {
				// A failure caused by the caller's own cancellation
				// says nothing about the replica — don't record it.
				c.record(g, r, err, time.Since(start))
			}
			if err != nil {
				errs[r] = fmt.Errorf("partition %d replica %d: %w", g, r, err)
			}
		}(r, node)
	}
	wg.Wait()
	committed := 0
	for _, err := range errs {
		if err == nil {
			committed++
		}
	}
	if committed > 0 {
		// The group committed the write; a replica that failed it is
		// now missing documents its partners hold — quarantine it in
		// routing until it is restored, or reads served by it would
		// silently miss committed documents.
		for r, err := range errs {
			if err != nil {
				c.markDiverged(g, r)
			}
		}
	}
	return committed, errors.Join(errs...)
}

// partialApplyError wraps a per-document add failure that happened
// AFTER earlier documents of the same group batch were applied: the
// replica holds an unknown prefix, so "no replica acknowledged" must
// not be read as retry-safe.
type partialApplyError struct {
	applied, total int
	err            error
}

func (e *partialApplyError) Error() string {
	return fmt.Sprintf("applied %d of %d documents before failing: %v", e.applied, e.total, e.err)
}

func (e *partialApplyError) Unwrap() error { return e.err }

// InvalidateStats forces the next query to re-aggregate global
// statistics. Use it when documents were added to a node outside this
// cluster (e.g. directly against a remote node's server).
func (c *Cluster) InvalidateStats() {
	c.mu.Lock()
	c.fresh = false
	c.gen++
	c.mu.Unlock()
}

// nodeCtx derives the per-node deadline context.
func (c *Cluster) nodeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return c.nodeCtxN(ctx, 1)
}

// nodeCtxN derives a per-node deadline scaled by the amount of work
// shipped in the call: NodeTimeout is sized for one operation, so a
// batch of n documents gets n times the budget (the caller's own ctx
// still bounds everything).
func (c *Cluster) nodeCtxN(ctx context.Context, n int) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		if n < 1 {
			n = 1
		}
		return context.WithTimeout(ctx, time.Duration(n)*c.timeout)
	}
	return context.WithCancel(ctx)
}

// AddContext routes one document to every replica of its partition by
// the deterministic per-document partitioning. Stats are invalidated
// after the add lands (not before): a concurrent query that
// re-aggregated while the add was in flight must not leave stale
// statistics marked fresh.
func (c *Cluster) AddContext(ctx context.Context, doc bat.OID, url, text string) error {
	defer c.InvalidateStats()
	g := c.partition(doc, len(c.groups))
	_, err := c.fanToGroup(ctx, g, 1, func(nctx context.Context, n Node) error {
		return n.Add(nctx, doc, url, text)
	})
	return err
}

// Add is AddContext with a background context, for in-process clusters
// whose nodes cannot fail.
func (c *Cluster) Add(doc bat.OID, url, text string) {
	_ = c.AddContext(context.Background(), doc, url, text)
}

// PartitionResult is one partition's outcome of a batch add: which of
// the batch's documents were routed to it, how many replicas
// ACKNOWLEDGED committing them, and the joined error when any replica
// failed.
//
// Retry semantics: the cluster's own nodes (LocalNode, RemoteNode)
// de-duplicate ingest per document oid (IdempotentIngest), which
// collapses the old at-least-once ambiguity: re-posting a partition's
// documents with the same oids is ALWAYS safe against them — a replica
// that timed out AFTER applying the batch skips it on the retry
// instead of double-folding term frequencies, and a replica that
// missed the batch applies it, converging the group. So a partition
// with Committed == 0 is retry-safe, and retrying a DEGRADED partition
// (0 < Committed < Replicas) heals the lagging replicas rather than
// corrupting the committed ones. Only third-party nodes without the
// IdempotentIngest marker keep the conservative contract: a partial
// per-document application there is flagged Ambiguous (a blind retry
// would double-fold the applied prefix), and their timeouts remain
// needs-verification.
type PartitionResult struct {
	Partition int
	Docs      []bat.OID // the batch's documents routed here, request order
	Replicas  int       // replica count of the partition
	Committed int       // replicas that acknowledged the whole group batch
	Err       error     // nil when every replica acknowledged
	// Ambiguous is set when a replica demonstrably applied SOME of the
	// partition's documents before failing (the per-document fallback
	// loop progressed past its first document): even with Committed 0
	// a retry would double-fold the applied prefix.
	Ambiguous bool
}

// Failed reports whether no replica acknowledged the commit and no
// ambiguous partial application was observed — the retry-safe case
// (with idempotent nodes that is every Committed == 0 outcome; see the
// type comment for the third-party-node caveat).
func (p *PartitionResult) Failed() bool {
	return p.Committed == 0 && p.Err != nil && !p.Ambiguous
}

// AddBatchResults routes a batch of documents to their partitions with
// one round-trip per touched replica: documents are grouped by the
// deterministic partitioning, and each group ships to every replica
// through the node's BatchAdder capability (one request) or, for nodes
// without it, a per-document Add loop. Groups load in parallel and
// every group settles before the call returns, so a partial failure
// never leaves goroutines writing behind the caller's back.
//
// The per-partition outcomes come back in ascending partition order so
// a client can retry exactly the failed partitions (see
// PartitionResult for the commit/degraded/failed trichotomy).
func (c *Cluster) AddBatchResults(ctx context.Context, docs []Doc) []PartitionResult {
	if len(docs) == 0 {
		return nil
	}
	defer c.InvalidateStats()
	grouped := make(map[int][]Doc)
	for _, d := range docs {
		g := c.partition(d.OID, len(c.groups))
		grouped[g] = append(grouped[g], d)
	}
	parts := make([]int, 0, len(grouped))
	for g := range grouped {
		parts = append(parts, g)
	}
	sort.Ints(parts)
	results := make([]PartitionResult, len(parts))
	var wg sync.WaitGroup
	for i, g := range parts {
		part := grouped[g]
		oids := make([]bat.OID, len(part))
		for j, d := range part {
			oids[j] = d.OID
		}
		results[i] = PartitionResult{Partition: g, Docs: oids, Replicas: len(c.groups[g])}
		wg.Add(1)
		go func(i, g int, part []Doc) {
			defer wg.Done()
			committed, err := c.fanToGroup(ctx, g, len(part), func(nctx context.Context, n Node) error {
				if ba, ok := n.(BatchAdder); ok {
					return ba.AddBatch(nctx, part)
				}
				_, idempotent := n.(IdempotentIngest)
				for j, d := range part {
					if err := n.Add(nctx, d.OID, d.URL, d.Text); err != nil {
						if j > 0 && !idempotent {
							// Only a node WITHOUT per-oid de-duplication
							// turns a partial prefix into ambiguity — an
							// idempotent node replays the whole partition
							// safely, the applied prefix skipping itself.
							return &partialApplyError{applied: j, total: len(part), err: err}
						}
						return err
					}
				}
				return nil
			})
			results[i].Committed = committed
			results[i].Err = err
			var pa *partialApplyError
			if errors.As(err, &pa) {
				results[i].Ambiguous = true
			}
		}(i, g, part)
	}
	wg.Wait()
	return results
}

// AddBatchContext is AddBatchResults reduced to one error: nil when
// every partition fully committed, the joined partition errors
// otherwise. Callers that need per-partition retry information use
// AddBatchResults.
func (c *Cluster) AddBatchContext(ctx context.Context, docs []Doc) error {
	results := c.AddBatchResults(ctx, docs)
	errs := make([]error, 0, len(results))
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, results[i].Err)
		}
	}
	return errors.Join(errs...)
}

// DocCount returns the number of documents over all partitions (0
// counted for unreachable partitions; replicas count once).
func (c *Cluster) DocCount() int {
	infos, _ := c.NodeInfoContext(context.Background())
	n := 0
	for _, l := range infos {
		n += l.Docs
	}
	return n
}

// NodeInfoContext returns every partition's load — read from its first
// healthy replica, failing over like any read — gathered in parallel;
// an unreachable partition reports a zero load and the first error is
// returned alongside the loads.
func (c *Cluster) NodeInfoContext(ctx context.Context) ([]NodeLoad, error) {
	infos := make([]NodeLoad, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for g := range c.groups {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var fo int
			infos[g], fo, _, errs[g] = groupCall(c, ctx, g, 1, func(nctx context.Context, n Node) (NodeLoad, error) {
				return n.Load(nctx)
			})
			if fo > 0 {
				c.failoverCount.Add(uint64(fo))
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return infos, err
		}
	}
	return infos, nil
}

// ReplicaInfo is one replica's load and routing state, as gathered by
// ReplicaInfoContext for the serving layer's /stats.
type ReplicaInfo struct {
	Load   NodeLoad
	Err    error // load probe failure (replica unreachable)
	Health ReplicaHealth
}

// ReplicaInfoContext probes EVERY replica of every partition in
// parallel — no failover, this is the observability path where an
// unreachable replica is exactly the finding — and pairs each load
// with the replica's routing state.
func (c *Cluster) ReplicaInfoContext(ctx context.Context) [][]ReplicaInfo {
	health := c.ReplicaHealth()
	out := make([][]ReplicaInfo, len(c.groups))
	var wg sync.WaitGroup
	for g, reps := range c.groups {
		out[g] = make([]ReplicaInfo, len(reps))
		for r, node := range reps {
			out[g][r].Health = health[g][r]
			wg.Add(1)
			go func(g, r int, node Node) {
				defer wg.Done()
				nctx, cancel := c.nodeCtx(ctx)
				defer cancel()
				out[g][r].Load, out[g][r].Err = node.Load(nctx)
			}(g, r, node)
		}
	}
	wg.Wait()
	return out
}

// NodeLoadsContext returns the number of documents on each partition.
func (c *Cluster) NodeLoadsContext(ctx context.Context) ([]int, error) {
	infos, err := c.NodeInfoContext(ctx)
	loads := make([]int, len(infos))
	for i, l := range infos {
		loads[i] = l.Docs
	}
	return loads, err
}

// NodeLoads returns the number of documents on each partition; with
// the default partitioning the loads differ by at most one.
func (c *Cluster) NodeLoads() []int {
	loads, _ := c.NodeLoadsContext(context.Background())
	return loads
}

// MaxDocContext returns the highest document oid over all partitions,
// so an oid allocator can continue after the documents already indexed.
func (c *Cluster) MaxDocContext(ctx context.Context) (bat.OID, error) {
	infos, err := c.NodeInfoContext(ctx)
	if err != nil {
		return bat.NilOID, err
	}
	max := bat.NilOID
	for _, l := range infos {
		if l.MaxDoc > max {
			max = l.MaxDoc
		}
	}
	return max, nil
}

// errStatsBackoff reports a refresh suppressed by the failure backoff.
var errStatsBackoff = errors.New("dist: stats aggregation backing off after node failure")

// statsBackoff returns how long failed aggregations are suppressed:
// the per-node timeout when one is configured, else one second.
func (c *Cluster) statsBackoff() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return time.Second
}

// GlobalStatsContext returns the aggregated collection statistics the
// central site ships with every query, refreshing them (and freezing
// every node's access paths) if documents arrived through this
// cluster since the last query. Each partition's statistics come from
// its first responsive replica — replicas hold identical copies, so
// any one of them speaks for the group, and a dead node only fails the
// aggregation when its whole group is down. Aggregation fails if any
// partition is unreachable: scoring with partial global statistics
// would silently change the ranking. A failed refresh is not retried
// for a backoff window (the per-node timeout), so searches fall back
// to stale statistics quickly instead of each paying the dead
// partition's timeout.
//
// The network fan-out runs outside the cluster lock: concurrent
// refreshes may race each other (they produce the same answer), but
// queries never queue behind a slow node's round-trip. A refresh that
// overlapped an Add stores its result as the latest aggregation
// without marking it fresh, so the next query re-aggregates.
func (c *Cluster) GlobalStatsContext(ctx context.Context) (ir.Stats, error) {
	c.mu.Lock()
	if c.fresh {
		st := c.stats
		c.mu.Unlock()
		return st, nil
	}
	if time.Now().Before(c.retryAfter) {
		c.mu.Unlock()
		return ir.Stats{}, errStatsBackoff
	}
	gen := c.gen
	c.mu.Unlock()

	locals := make([]ir.Stats, len(c.groups))
	errs := make([]error, len(c.groups))
	var wg sync.WaitGroup
	for g := range c.groups {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var fo int
			locals[g], fo, _, errs[g] = groupCall(c, ctx, g, 1, func(nctx context.Context, n Node) (ir.Stats, error) {
				return n.Stats(nctx)
			})
			if fo > 0 {
				// Aggregation re-routed around a dead replica: count it —
				// telemetry reflects every failover, wherever it happens.
				c.failoverCount.Add(uint64(fo))
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Arm the backoff only for genuine node failures — one
			// caller cancelling its own context must not degrade
			// every other client's searches for the backoff window.
			if ctx.Err() == nil {
				c.mu.Lock()
				c.retryAfter = time.Now().Add(c.statsBackoff())
				c.mu.Unlock()
			}
			return ir.Stats{}, err
		}
	}
	merged := ir.MergeStats(locals...)
	c.mu.Lock()
	c.stats = merged
	c.have = true
	c.retryAfter = time.Time{}
	if c.gen == gen {
		c.fresh = true
	}
	c.mu.Unlock()
	return merged, nil
}

// lastStats returns the most recently aggregated statistics, possibly
// stale, and whether any exist.
func (c *Cluster) lastStats() (ir.Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.have
}

// GlobalStats is GlobalStatsContext with a background context, for
// in-process clusters whose nodes cannot fail.
func (c *Cluster) GlobalStats() ir.Stats {
	stats, _ := c.GlobalStatsContext(context.Background())
	return stats
}

// SearchResult is the outcome of a distributed query: the merged
// ranking over the responsive partitions, plus which partitions (if
// any) were dropped and why, and which needed replica failover.
// Complete reports whether every partition contributed with fresh
// statistics — when true the ranking is exactly the single-index
// ranking, failovers included (a failover re-routes to an identical
// replica; it never degrades the ranking).
type SearchResult struct {
	Results []ir.Result
	// Quality is the cluster-wide quality estimate of a budgeted
	// search: the responsive partitions' per-fragment idf-mass
	// accounting merged by MergeQuality. Exact searches report the
	// trivially exact estimate (Value() == 1).
	Quality ir.QualityEstimate
	Dropped []int         // indices of dropped partitions, ascending
	Errs    map[int]error // reason per dropped partition
	// Failovers maps partition index → replica failovers this search
	// needed there (absent partitions needed none). A populated map
	// with an empty Dropped is the replication subsystem working as
	// designed: a node died and the ranking did not degrade.
	Failovers map[int]int
	// Diverged lists partitions whose RES set came from a replica
	// marked diverged (it previously failed a write its group
	// committed): the ranking may be missing committed documents.
	// Serving it beats dropping the partition, but it must not pass as
	// complete.
	Diverged []int
	// StaleStats is set when re-aggregating global statistics failed
	// (a whole replica group was unreachable) and the query was scored
	// with the last successful aggregation instead — degraded but
	// available.
	StaleStats bool
}

// Complete reports whether every partition answered in time with fresh
// global statistics from a replica holding the full committed state.
func (r *SearchResult) Complete() bool {
	return len(r.Dropped) == 0 && len(r.Diverged) == 0 && !r.StaleStats
}

// FailoverTotal sums the replica failovers across partitions.
func (r *SearchResult) FailoverTotal() int {
	n := 0
	for _, f := range r.Failovers {
		n += f
	}
	return n
}

// Search evaluates the query on every partition in parallel — one
// worker per replica group, shared-nothing — and fans the per-node RES
// sets in through the central ir.Merge. Within a group the worker
// routes to the healthiest replica and fails over on error or missed
// deadline; a partition whose every replica fails is dropped, the
// merge proceeds over the responsive partitions and the dropped
// indices are reported in the result, deterministically ordered. With
// no drops the merged ranking is identical to the TopN of a single
// index holding the whole collection — even when individual replicas
// died, as long as each partition kept one responsive replica.
//
// If global statistics cannot be re-aggregated because a whole group
// is unreachable, the query falls back to the last successful
// aggregation (StaleStats is set) so a dead partition degrades the
// ranking instead of turning every search into an outage; only a
// cluster that never aggregated stats at all fails outright.
func (c *Cluster) Search(ctx context.Context, query string, n int) (*SearchResult, error) {
	return c.SearchPlan(ctx, query, ir.EvalPlan{N: n})
}

// SearchPlan is Search under an evaluation plan: the plan ships with
// the query to every partition, each partition fragments its own
// document subset on descending idf and evaluates only the budgeted
// prefix, and the coordinator merges the RES sets plus a cluster-wide
// quality estimate. The a-priori cut-off thus executes *below* the
// per-node RES sets — each partition skips its own trailing fragments
// — rather than centrally after full evaluation. An exact plan (zero
// Budget) is exactly Search: the merged ranking is identical to a
// single index over the whole collection.
func (c *Cluster) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan) (*SearchResult, error) {
	sr := &SearchResult{}
	if plan.N <= 0 {
		return sr, nil // degenerate: empty ranking, no fan-out
	}
	// Stage spans join the caller's trace when one rides in ctx (the
	// coordinator's /search path); a nil trace records nothing.
	tr := obs.FromContext(ctx)
	statsStart := time.Now()
	global, err := c.GlobalStatsContext(ctx)
	tr.AddSpan("stats", statsStart)
	if err != nil {
		stale, ok := c.lastStats()
		if !ok {
			return nil, err
		}
		global, sr.StaleStats = stale, true
	}
	c.searchCount.Add(1)
	fanStart := time.Now()
	type planRes struct {
		res []ir.Result
		est ir.QualityEstimate
	}
	type groupRes struct {
		g        int
		r        planRes
		fo       int
		diverged bool
		err      error
	}
	ch := make(chan groupRes, len(c.groups))
	for g := range c.groups {
		go func(g int) {
			r, fo, diverged, err := groupCall(c, ctx, g, 1, func(nctx context.Context, n Node) (planRes, error) {
				res, est, err := n.SearchPlan(nctx, query, plan, global)
				return planRes{res, est}, err
			})
			ch <- groupRes{g, r, fo, diverged, err}
		}(g)
	}
	rankings := make([][]ir.Result, len(c.groups))
	// Estimates are kept in partition order: merging sums
	// floating-point masses, and summation in nondeterministic arrival
	// order would make the reported cluster quality differ between
	// identical queries in the last bit. A failed partition's zero
	// estimate is a no-op in the merge.
	ests := make([]ir.QualityEstimate, len(c.groups))
	answered := make([]bool, len(c.groups))
	pending := len(c.groups)
collect:
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			answered[r.g] = true
			if r.fo > 0 {
				if sr.Failovers == nil {
					sr.Failovers = map[int]int{}
				}
				sr.Failovers[r.g] = r.fo
				c.failoverCount.Add(uint64(r.fo))
			}
			if r.err != nil {
				sr.fail(r.g, r.err)
			} else {
				rankings[r.g] = r.r.res
				ests[r.g] = r.r.est
				if r.diverged {
					sr.Diverged = append(sr.Diverged, r.g)
				}
			}
		case <-ctx.Done():
			// Overall deadline: whatever has not answered yet is a
			// straggler. The workers still drain into the buffered
			// channel and exit; their late results are discarded.
			for g, ok := range answered {
				if !ok {
					sr.fail(g, ctx.Err())
				}
			}
			break collect
		}
	}
	sort.Ints(sr.Dropped)
	sort.Ints(sr.Diverged)
	c.droppedCount.Add(uint64(len(sr.Dropped)))
	tr.AddSpan("fanout", fanStart)
	mergeStart := time.Now()
	sr.Results = ir.Merge(plan.N, rankings...)
	sr.Quality = ir.MergeQuality(ests...)
	tr.AddSpan("merge", mergeStart)
	return sr, nil
}

func (r *SearchResult) fail(i int, err error) {
	r.Dropped = append(r.Dropped, i)
	if r.Errs == nil {
		r.Errs = map[int]error{}
	}
	r.Errs[i] = err
}

// TopN is the convenience form of Search for in-process clusters
// without a NodeTimeout: background context, every partition awaited,
// and the merged ranking identical to a single index over the whole
// collection. With remote nodes or a NodeTimeout configured it may
// silently return a partial ranking (dropped fragments) or nil (stats
// aggregation failed on a cold cluster) — serving layers must call
// Search, which reports both.
func (c *Cluster) TopN(query string, n int) []ir.Result {
	sr, err := c.Search(context.Background(), query, n)
	if err != nil {
		return nil
	}
	return sr.Results
}

// TopNSequential is the single-worker baseline: the same plan, the
// same per-node RES sets and the same merged ranking, but the
// partitions are visited one after another. E11 measures parallel
// against this. Like TopN it is meant for in-process clusters; failing
// partitions are silently skipped.
func (c *Cluster) TopNSequential(query string, n int) []ir.Result {
	ctx := context.Background()
	global, err := c.GlobalStatsContext(ctx)
	if err != nil {
		return nil
	}
	rankings := make([][]ir.Result, len(c.groups))
	for g := range c.groups {
		res, _, _, err := groupCall(c, ctx, g, 1, func(nctx context.Context, n_ Node) ([]ir.Result, error) {
			return n_.TopNWithStats(nctx, query, n, global)
		})
		if err == nil {
			rankings[g] = res
		}
	}
	return ir.Merge(n, rankings...)
}
