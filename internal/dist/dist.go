// Package dist implements the paper's shared-nothing distribution of
// the full-text meta-index (Section "Scalability", experiment E11):
// the document collection is fragmented per document over k
// autonomous nodes, each holding the complete T/D/DT/TF/IDF relations
// for its document subset.
//
// The protocol mirrors the paper's central-DBMS architecture:
//
//  1. The central site aggregates the per-node term statistics
//     (df, Σdf, |D|) into global statistics and ships them with the
//     query, so every node scores its local documents exactly as one
//     global index would (ir.Stats / ir.TopNWithStats).
//  2. Every node evaluates the top-N query over its local fragment
//     only — no inter-node communication — and returns a small
//     RES(doc-oid, score) set of at most N rows.
//  3. The central site merges the RES sets with ir.Merge into the
//     master ranking. Because the global top-N is a subset of the
//     union of the local top-Ns and all scores are computed from the
//     same global statistics, the merged ranking is identical to the
//     ranking of a single index over the whole collection.
//
// Nodes are addressed through the Node interface, so a fragment may
// live in-process (LocalNode) or behind an HTTP boundary (RemoteNode)
// without the central site noticing. Per-node deadlines and straggler
// handling (Search) keep one slow or dead node from stalling the
// whole query: the merge proceeds over the responsive nodes and the
// dropped ones are reported.
//
// SearchPlan combines the paper's two scaling axes: the query ships
// with an ir.EvalPlan, each shared-nothing node fragments its own
// partition on descending idf and evaluates only the budgeted prefix
// (the a-priori cut-off of [BHC+01], pushed below the per-node RES
// sets), and the merge additionally folds the nodes' quality
// estimates into a cluster-wide ir.QualityEstimate.
package dist

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Options configures a Cluster. The zero value (or a nil *Options)
// selects deterministic round-robin partitioning on the document oid,
// the default ranking parameter and no per-node deadline.
type Options struct {
	// Partition maps a document oid to a node in [0, k). It must be
	// deterministic: the same oid must always land on the same node.
	// Nil selects round-robin on the oid, which yields balanced node
	// loads for the dense oid sequences the engine hands out.
	Partition func(doc bat.OID, k int) int

	// Lambda overrides the smoothing parameter of the retrieval model
	// on every node built by NewCluster; 0 keeps ir.DefaultLambda.
	// Nodes supplied to NewClusterOf configure their own indexes.
	Lambda float64

	// NodeTimeout bounds every per-node call (stats, top-N, load,
	// add). A node that does not answer within the deadline is treated
	// as a straggler: Search merges the responsive nodes' results and
	// reports the dropped node. 0 means no per-node deadline.
	NodeTimeout time.Duration
}

// roundRobin is the default partitioning: dense oids spread evenly.
func roundRobin(doc bat.OID, k int) int {
	if doc == bat.NilOID {
		return 0
	}
	return int((uint64(doc) - 1) % uint64(k))
}

// Cluster is a shared-nothing cluster of Nodes with a central merge
// site. All methods are safe for concurrent use when every node is
// (LocalNode and RemoteNode both synchronize their index); a query
// racing an Add may score against statistics from just before or just
// after the new document, but never against torn state.
type Cluster struct {
	nodes     []Node
	partition func(bat.OID, int) int
	timeout   time.Duration

	mu         sync.Mutex // guards the stats fields below
	stats      ir.Stats
	fresh      bool      // stats reflect all Adds routed through this cluster
	have       bool      // stats were successfully aggregated at least once
	gen        uint64    // bumped by every invalidation; guards refresh races
	retryAfter time.Time // failed-aggregation backoff deadline
}

// NewCluster builds a cluster of k in-process nodes (k < 1 is clamped
// to 1).
func NewCluster(k int, opts *Options) *Cluster {
	if k < 1 {
		k = 1
	}
	nodes := make([]Node, k)
	for i := range nodes {
		ix := ir.NewIndex()
		if opts != nil && opts.Lambda != 0 {
			ix.SetLambda(opts.Lambda)
		}
		nodes[i] = NewLocalNode(ix)
	}
	return NewClusterOf(nodes, opts)
}

// NewClusterOf builds a cluster over caller-supplied nodes — local,
// remote, or a mix. It panics on an empty slice (a deferred
// divide-by-zero at the first Add would be far harder to diagnose).
func NewClusterOf(nodes []Node, opts *Options) *Cluster {
	if len(nodes) == 0 {
		panic("dist: NewClusterOf requires at least one node")
	}
	c := &Cluster{nodes: nodes, partition: roundRobin}
	if opts != nil {
		if opts.Partition != nil {
			c.partition = opts.Partition
		}
		c.timeout = opts.NodeTimeout
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// NodeAt returns node i, for inspection by experiments.
func (c *Cluster) NodeAt(i int) Node { return c.nodes[i] }

// LocalIndex returns the underlying index of node i if it is an
// in-process node, nil otherwise.
func (c *Cluster) LocalIndex(i int) *ir.Index {
	if ln, ok := c.nodes[i].(*LocalNode); ok {
		return ln.Index()
	}
	return nil
}

// InvalidateStats forces the next query to re-aggregate global
// statistics. Use it when documents were added to a node outside this
// cluster (e.g. directly against a remote node's server).
func (c *Cluster) InvalidateStats() {
	c.mu.Lock()
	c.fresh = false
	c.gen++
	c.mu.Unlock()
}

// nodeCtx derives the per-node deadline context.
func (c *Cluster) nodeCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return c.nodeCtxN(ctx, 1)
}

// nodeCtxN derives a per-node deadline scaled by the amount of work
// shipped in the call: NodeTimeout is sized for one operation, so a
// batch of n documents gets n times the budget (the caller's own ctx
// still bounds everything).
func (c *Cluster) nodeCtxN(ctx context.Context, n int) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		if n < 1 {
			n = 1
		}
		return context.WithTimeout(ctx, time.Duration(n)*c.timeout)
	}
	return context.WithCancel(ctx)
}

// AddContext routes one document to its node by the deterministic
// per-document partitioning. Stats are invalidated after the add
// lands (not before): a concurrent query that re-aggregated while the
// add was in flight must not leave stale statistics marked fresh.
func (c *Cluster) AddContext(ctx context.Context, doc bat.OID, url, text string) error {
	defer c.InvalidateStats()
	nctx, cancel := c.nodeCtx(ctx)
	defer cancel()
	return c.nodes[c.partition(doc, len(c.nodes))].Add(nctx, doc, url, text)
}

// Add is AddContext with a background context, for in-process clusters
// whose nodes cannot fail.
func (c *Cluster) Add(doc bat.OID, url, text string) {
	_ = c.AddContext(context.Background(), doc, url, text)
}

// AddBatchContext routes a batch of documents to their nodes with one
// round-trip per touched partition: documents are grouped by the
// deterministic partitioning, and each group ships through the node's
// BatchAdder capability (one request) or, for nodes without it, a
// per-document Add loop. Groups load in parallel; the joined errors
// are returned after every group settled, so a partial failure never
// leaves goroutines writing behind the caller's back.
//
// Partition groups commit independently: on error, the documents of
// the groups that succeeded ARE indexed. Retrying the whole batch
// would fold their term frequencies in twice — retry only the failed
// partitions' documents (the error names the failing nodes), or use
// fresh oids. Per-document outcome reporting is a ROADMAP follow-up.
func (c *Cluster) AddBatchContext(ctx context.Context, docs []Doc) error {
	if len(docs) == 0 {
		return nil
	}
	defer c.InvalidateStats()
	groups := make(map[int][]Doc)
	for _, d := range docs {
		i := c.partition(d.OID, len(c.nodes))
		groups[i] = append(groups[i], d)
	}
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, part := range groups {
		wg.Add(1)
		go func(i int, part []Doc) {
			defer wg.Done()
			nctx, cancel := c.nodeCtxN(ctx, len(part))
			defer cancel()
			if ba, ok := c.nodes[i].(BatchAdder); ok {
				errs[i] = ba.AddBatch(nctx, part)
				return
			}
			for _, d := range part {
				if err := c.nodes[i].Add(nctx, d.OID, d.URL, d.Text); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, part)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// DocCount returns the number of documents over all nodes (0 counted
// for unreachable nodes).
func (c *Cluster) DocCount() int {
	infos, _ := c.NodeInfoContext(context.Background())
	n := 0
	for _, l := range infos {
		n += l.Docs
	}
	return n
}

// NodeInfoContext returns every node's load, gathered in parallel; an
// unreachable node reports a zero load and the first error is
// returned alongside the loads.
func (c *Cluster) NodeInfoContext(ctx context.Context) ([]NodeLoad, error) {
	infos := make([]NodeLoad, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node Node) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			infos[i], errs[i] = node.Load(nctx)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return infos, err
		}
	}
	return infos, nil
}

// NodeLoadsContext returns the number of documents on each node.
func (c *Cluster) NodeLoadsContext(ctx context.Context) ([]int, error) {
	infos, err := c.NodeInfoContext(ctx)
	loads := make([]int, len(infos))
	for i, l := range infos {
		loads[i] = l.Docs
	}
	return loads, err
}

// NodeLoads returns the number of documents on each node; with the
// default partitioning the loads differ by at most one.
func (c *Cluster) NodeLoads() []int {
	loads, _ := c.NodeLoadsContext(context.Background())
	return loads
}

// MaxDocContext returns the highest document oid over all nodes, so
// an oid allocator can continue after the documents already indexed.
func (c *Cluster) MaxDocContext(ctx context.Context) (bat.OID, error) {
	infos, err := c.NodeInfoContext(ctx)
	if err != nil {
		return bat.NilOID, err
	}
	max := bat.NilOID
	for _, l := range infos {
		if l.MaxDoc > max {
			max = l.MaxDoc
		}
	}
	return max, nil
}

// errStatsBackoff reports a refresh suppressed by the failure backoff.
var errStatsBackoff = errors.New("dist: stats aggregation backing off after node failure")

// statsBackoff returns how long failed aggregations are suppressed:
// the per-node timeout when one is configured, else one second.
func (c *Cluster) statsBackoff() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return time.Second
}

// GlobalStatsContext returns the aggregated collection statistics the
// central site ships with every query, refreshing them (and freezing
// every node's access paths) if documents arrived through this
// cluster since the last query. Aggregation fails if any node is
// unreachable: scoring with partial global statistics would silently
// change the ranking. A failed refresh is not retried for a backoff
// window (the per-node timeout), so searches fall back to stale
// statistics quickly instead of each paying the dead node's timeout.
//
// The network fan-out runs outside the cluster lock: concurrent
// refreshes may race each other (they produce the same answer), but
// queries never queue behind a slow node's round-trip. A refresh that
// overlapped an Add stores its result as the latest aggregation
// without marking it fresh, so the next query re-aggregates.
func (c *Cluster) GlobalStatsContext(ctx context.Context) (ir.Stats, error) {
	c.mu.Lock()
	if c.fresh {
		st := c.stats
		c.mu.Unlock()
		return st, nil
	}
	if time.Now().Before(c.retryAfter) {
		c.mu.Unlock()
		return ir.Stats{}, errStatsBackoff
	}
	gen := c.gen
	c.mu.Unlock()

	locals := make([]ir.Stats, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node Node) {
			defer wg.Done()
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			locals[i], errs[i] = node.Stats(nctx)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Arm the backoff only for genuine node failures — one
			// caller cancelling its own context must not degrade
			// every other client's searches for the backoff window.
			if ctx.Err() == nil {
				c.mu.Lock()
				c.retryAfter = time.Now().Add(c.statsBackoff())
				c.mu.Unlock()
			}
			return ir.Stats{}, err
		}
	}
	merged := ir.MergeStats(locals...)
	c.mu.Lock()
	c.stats = merged
	c.have = true
	c.retryAfter = time.Time{}
	if c.gen == gen {
		c.fresh = true
	}
	c.mu.Unlock()
	return merged, nil
}

// lastStats returns the most recently aggregated statistics, possibly
// stale, and whether any exist.
func (c *Cluster) lastStats() (ir.Stats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.have
}

// GlobalStats is GlobalStatsContext with a background context, for
// in-process clusters whose nodes cannot fail.
func (c *Cluster) GlobalStats() ir.Stats {
	stats, _ := c.GlobalStatsContext(context.Background())
	return stats
}

// SearchResult is the outcome of a distributed query: the merged
// ranking over the responsive nodes, plus which nodes (if any) were
// dropped and why. Complete reports whether every node contributed
// with fresh statistics — when true the ranking is exactly the
// single-index ranking.
type SearchResult struct {
	Results []ir.Result
	// Quality is the cluster-wide quality estimate of a budgeted
	// search: the responsive nodes' per-fragment idf-mass accounting
	// merged by MergeQuality. Exact searches report the trivially
	// exact estimate (Value() == 1).
	Quality ir.QualityEstimate
	Dropped []int         // indices of dropped nodes, ascending
	Errs    map[int]error // reason per dropped node
	// StaleStats is set when re-aggregating global statistics failed
	// (a node was unreachable) and the query was scored with the last
	// successful aggregation instead — degraded but available.
	StaleStats bool
}

// Complete reports whether every node answered in time with fresh
// global statistics.
func (r *SearchResult) Complete() bool { return len(r.Dropped) == 0 && !r.StaleStats }

// Search evaluates the query on every node in parallel — one worker
// per node, shared-nothing — and fans the per-node RES sets in through
// the central ir.Merge. Nodes that fail or miss their deadline (the
// per-node NodeTimeout and/or the deadline of ctx) are dropped: the
// merge proceeds over the responsive nodes and the dropped indices
// are reported in the result, deterministically ordered. With no
// drops the merged ranking is identical to the TopN of a single index
// holding the whole collection.
//
// If global statistics cannot be re-aggregated because a node is
// unreachable, the query falls back to the last successful
// aggregation (StaleStats is set) so one dead node degrades the
// ranking instead of turning every search into an outage; only a
// cluster that never aggregated stats at all fails outright.
func (c *Cluster) Search(ctx context.Context, query string, n int) (*SearchResult, error) {
	return c.SearchPlan(ctx, query, ir.EvalPlan{N: n})
}

// SearchPlan is Search under an evaluation plan: the plan ships with
// the query to every node, each node fragments its own partition on
// descending idf and evaluates only the budgeted prefix, and the
// coordinator merges the RES sets plus a cluster-wide quality
// estimate. The a-priori cut-off thus executes *below* the per-node
// RES sets — each node skips its own trailing fragments — rather than
// centrally after full evaluation. An exact plan (zero Budget) is
// exactly Search: the merged ranking is identical to a single index
// over the whole collection.
func (c *Cluster) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan) (*SearchResult, error) {
	sr := &SearchResult{}
	if plan.N <= 0 {
		return sr, nil // degenerate: empty ranking, no fan-out
	}
	global, err := c.GlobalStatsContext(ctx)
	if err != nil {
		stale, ok := c.lastStats()
		if !ok {
			return nil, err
		}
		global, sr.StaleStats = stale, true
	}
	type nodeRes struct {
		i   int
		res []ir.Result
		est ir.QualityEstimate
		err error
	}
	ch := make(chan nodeRes, len(c.nodes))
	for i, node := range c.nodes {
		go func(i int, node Node) {
			nctx, cancel := c.nodeCtx(ctx)
			defer cancel()
			res, est, err := node.SearchPlan(nctx, query, plan, global)
			ch <- nodeRes{i, res, est, err}
		}(i, node)
	}
	rankings := make([][]ir.Result, len(c.nodes))
	// Estimates are kept in node order: merging sums floating-point
	// masses, and summation in nondeterministic arrival order would
	// make the reported cluster quality differ between identical
	// queries in the last bit. A failed node's zero estimate is a
	// no-op in the merge.
	ests := make([]ir.QualityEstimate, len(c.nodes))
	answered := make([]bool, len(c.nodes))
	pending := len(c.nodes)
collect:
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			answered[r.i] = true
			if r.err != nil {
				sr.fail(r.i, r.err)
			} else {
				rankings[r.i] = r.res
				ests[r.i] = r.est
			}
		case <-ctx.Done():
			// Overall deadline: whatever has not answered yet is a
			// straggler. The workers still drain into the buffered
			// channel and exit; their late results are discarded.
			for i, ok := range answered {
				if !ok {
					sr.fail(i, ctx.Err())
				}
			}
			break collect
		}
	}
	sort.Ints(sr.Dropped)
	sr.Results = ir.Merge(plan.N, rankings...)
	sr.Quality = ir.MergeQuality(ests...)
	return sr, nil
}

func (r *SearchResult) fail(i int, err error) {
	r.Dropped = append(r.Dropped, i)
	if r.Errs == nil {
		r.Errs = map[int]error{}
	}
	r.Errs[i] = err
}

// TopN is the convenience form of Search for in-process clusters
// without a NodeTimeout: background context, every node awaited, and
// the merged ranking identical to a single index over the whole
// collection. With remote nodes or a NodeTimeout configured it may
// silently return a partial ranking (dropped fragments) or nil (stats
// aggregation failed on a cold cluster) — serving layers must call
// Search, which reports both.
func (c *Cluster) TopN(query string, n int) []ir.Result {
	sr, err := c.Search(context.Background(), query, n)
	if err != nil {
		return nil
	}
	return sr.Results
}

// TopNSequential is the single-worker baseline: the same plan, the
// same per-node RES sets and the same merged ranking, but the nodes
// are visited one after another. E11 measures parallel against this.
// Like TopN it is meant for in-process clusters; failing nodes are
// silently skipped.
func (c *Cluster) TopNSequential(query string, n int) []ir.Result {
	ctx := context.Background()
	global, err := c.GlobalStatsContext(ctx)
	if err != nil {
		return nil
	}
	rankings := make([][]ir.Result, len(c.nodes))
	for i, node := range c.nodes {
		if res, err := node.TopNWithStats(ctx, query, n, global); err == nil {
			rankings[i] = res
		}
	}
	return ir.Merge(n, rankings...)
}
