// Package dist implements the paper's shared-nothing distribution of
// the full-text meta-index (Section "Scalability", experiment E11):
// the document collection is fragmented per document over k
// autonomous ir.Index nodes, each holding the complete T/D/DT/TF/IDF
// relations for its document subset.
//
// The protocol mirrors the paper's central-DBMS architecture:
//
//  1. The central site aggregates the per-node term statistics
//     (df, Σdf, |D|) into global statistics and ships them with the
//     query, so every node scores its local documents exactly as one
//     global index would (ir.Stats / ir.TopNWithStats).
//  2. Every node evaluates the top-N query over its local fragment
//     only — no inter-node communication — and returns a small
//     RES(doc-oid, score) set of at most N rows.
//  3. The central site merges the RES sets with ir.Merge into the
//     master ranking. Because the global top-N is a subset of the
//     union of the local top-Ns and all scores are computed from the
//     same global statistics, the merged ranking is identical to the
//     ranking of a single index over the whole collection.
//
// This makes the distribution transparent to the ranking and lets
// throughput scale with the number of nodes ("(almost) perfect
// shared-nothing parallelism").
package dist

import (
	"sync"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Options configures a Cluster. The zero value (or a nil *Options)
// selects deterministic round-robin partitioning on the document oid
// and the default ranking parameter.
type Options struct {
	// Partition maps a document oid to a node in [0, k). It must be
	// deterministic: the same oid must always land on the same node.
	// Nil selects round-robin on the oid, which yields balanced node
	// loads for the dense oid sequences the engine hands out.
	Partition func(doc bat.OID, k int) int

	// Lambda overrides the smoothing parameter of the retrieval model
	// on every node; 0 keeps ir.DefaultLambda.
	Lambda float64
}

// roundRobin is the default partitioning: dense oids spread evenly.
func roundRobin(doc bat.OID, k int) int {
	if doc == bat.NilOID {
		return 0
	}
	return int((uint64(doc) - 1) % uint64(k))
}

// Cluster is a shared-nothing cluster of ir.Index nodes with a
// central merge site. Add calls must not run concurrently with each
// other or with queries; TopN / TopNSequential / NodeLoads are safe
// to call from many goroutines at once.
type Cluster struct {
	nodes     []*ir.Index
	partition func(bat.OID, int) int

	mu    sync.Mutex // guards stats/freeze refresh
	stats ir.Stats
	fresh bool // stats reflect all Adds and nodes are frozen
}

// NewCluster builds a cluster of k nodes (k < 1 is clamped to 1).
func NewCluster(k int, opts *Options) *Cluster {
	if k < 1 {
		k = 1
	}
	c := &Cluster{nodes: make([]*ir.Index, k), partition: roundRobin}
	if opts != nil && opts.Partition != nil {
		c.partition = opts.Partition
	}
	for i := range c.nodes {
		c.nodes[i] = ir.NewIndex()
		if opts != nil && opts.Lambda != 0 {
			c.nodes[i].SetLambda(opts.Lambda)
		}
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i, for inspection by experiments.
func (c *Cluster) Node(i int) *ir.Index { return c.nodes[i] }

// Add routes one document to its node by the deterministic
// per-document partitioning.
func (c *Cluster) Add(doc bat.OID, url, text string) {
	c.mu.Lock()
	c.fresh = false
	c.mu.Unlock()
	c.nodes[c.partition(doc, len(c.nodes))].Add(doc, url, text)
}

// DocCount returns the number of documents over all nodes.
func (c *Cluster) DocCount() int {
	n := 0
	for _, node := range c.nodes {
		n += node.DocCount()
	}
	return n
}

// NodeLoads returns the number of documents on each node; with the
// default partitioning the loads differ by at most one.
func (c *Cluster) NodeLoads() []int {
	loads := make([]int, len(c.nodes))
	for i, node := range c.nodes {
		loads[i] = node.DocCount()
	}
	return loads
}

// GlobalStats returns the aggregated collection statistics the
// central site ships with every query, refreshing them (and freezing
// every node's access paths) if documents arrived since the last
// query.
func (c *Cluster) GlobalStats() ir.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fresh {
		locals := make([]ir.Stats, len(c.nodes))
		for i, node := range c.nodes {
			node.Freeze()
			locals[i] = node.StatsLocal()
		}
		c.stats = ir.MergeStats(locals...)
		c.fresh = true
	}
	return c.stats
}

// TopN evaluates the query on every node in parallel — one worker
// goroutine per node, shared-nothing — and fans the per-node RES sets
// in through the central ir.Merge. The result is identical to the
// TopN of a single index holding the whole collection.
func (c *Cluster) TopN(query string, n int) []ir.Result {
	global := c.GlobalStats()
	rankings := make([][]ir.Result, len(c.nodes))
	var wg sync.WaitGroup
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node *ir.Index) {
			defer wg.Done()
			rankings[i] = node.TopNWithStats(query, n, global)
		}(i, node)
	}
	wg.Wait()
	return ir.Merge(n, rankings...)
}

// TopNSequential is the single-worker baseline: the same plan, the
// same per-node RES sets and the same merged ranking, but the nodes
// are visited one after another. E11 measures parallel against this.
func (c *Cluster) TopNSequential(query string, n int) []ir.Result {
	global := c.GlobalStats()
	rankings := make([][]ir.Result, len(c.nodes))
	for i, node := range c.nodes {
		rankings[i] = node.TopNWithStats(query, n, global)
	}
	return ir.Merge(n, rankings...)
}
