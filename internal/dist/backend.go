package dist

import "dlsearch/internal/ir"

// SearchBackend is the content-serving boundary behind a LocalNode:
// where the node's full-text fragment physically lives and how ingest
// reaches it. The classic deployment serves a bare ir.Index
// (IndexBackend); an engine-backed deployment serves one of a
// core.Engine's per-attribute indexes, so a partition can host the
// full conceptual engine while the cluster machinery — statistics
// aggregation, budgeted plans, replication, resync — stays unchanged.
//
// The node caches ContentIndex() and keeps doing all read-path work
// (scoring, freezing, checksums, state export) directly against that
// index, so the IR-only path pays nothing for the abstraction; the
// backend is consulted only where ownership matters: applying fresh
// ingest and swapping the index on a state restore.
//
// Implementations are called under the owning node's write lock and
// must not retain the doc slices they are handed.
type SearchBackend interface {
	// Kind is a short static label for telemetry: "ir" for a bare
	// fragment, "engine" for a conceptual-engine-owned index.
	Kind() string
	// ContentIndex returns the index the node serves. It must be
	// non-nil and stable between SwapIndex calls.
	ContentIndex() *ir.Index
	// ApplyDocs indexes freshly deduplicated documents (the caller has
	// already filtered re-posted oids and logged the batch).
	ApplyDocs(docs []Doc)
	// SwapIndex atomically replaces the served index — the write side
	// of a full-state resync. An engine-owned backend re-homes the new
	// index under its owner so later conceptual queries rank against
	// the restored content.
	SwapIndex(ix *ir.Index)
}

// IndexBackend serves a bare ir.Index fragment — today's path, and the
// backend NewLocalNode wraps every index in. It adds no behaviour:
// ingest is a plain per-document Add, a swap is a pointer replacement.
type IndexBackend struct{ ix *ir.Index }

// NewIndexBackend wraps an index as a SearchBackend.
func NewIndexBackend(ix *ir.Index) *IndexBackend { return &IndexBackend{ix: ix} }

// Kind implements SearchBackend.
func (b *IndexBackend) Kind() string { return "ir" }

// ContentIndex implements SearchBackend.
func (b *IndexBackend) ContentIndex() *ir.Index { return b.ix }

// ApplyDocs implements SearchBackend.
func (b *IndexBackend) ApplyDocs(docs []Doc) {
	for _, d := range docs {
		b.ix.Add(d.OID, d.URL, d.Text)
	}
}

// SwapIndex implements SearchBackend.
func (b *IndexBackend) SwapIndex(ix *ir.Index) { b.ix = ix }
