package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"dlsearch/internal/persist"
)

// The persistent-connection transport: the hot node RPCs (top-N,
// planned search, statistics, batch ingest) ride long-lived TCP
// connections speaking framed persist wire messages — one frame out,
// one frame back per RPC — negotiated by upgrading an ordinary HTTP
// request (GET /node/wire, Upgrade: dlwire). A peer that does not
// speak it (an older node, a JSON-only node, a proxy that strips
// Upgrade) refuses the upgrade once and the RemoteNode falls back to
// HTTP permanently for that peer, so deployments mix freely.

// errWireUnsupported reports a peer that does not speak the attempted
// wire transport or codec; the caller falls back a level (upgraded
// connection → HTTP binary → HTTP JSON) and remembers.
var errWireUnsupported = errors.New("dist: peer does not speak the binary wire protocol")

const (
	// maxWireResponse caps one response frame read from a node — far
	// above any real RES set, low enough that a corrupt length field
	// cannot balloon memory.
	maxWireResponse = 1 << 26
	// maxIdleWireConns is how many idle upgraded connections a
	// RemoteNode keeps per node; concurrency above it dials extra
	// connections that close after use.
	maxIdleWireConns = 8
	// wireDialTimeout bounds the dial+upgrade handshake when the
	// caller's context carries no deadline.
	wireDialTimeout = 10 * time.Second
)

// wirePool maintains the idle upgraded connections to one node.
type wirePool struct {
	host string // host:port to dial
	base string // node base URL, for error text

	mu   sync.Mutex
	idle []*wireConn

	// unsupported sticks after a definitive upgrade refusal: the peer
	// will not start speaking dlwire until it restarts, and when it
	// restarts the process likely replaced this client too.
	unsupported bool
}

func newWirePool(base string) *wirePool {
	u, err := url.Parse(base)
	if err != nil || u.Scheme != "http" || u.Host == "" {
		// Only plain TCP upgrades; https peers use HTTP binary.
		return nil
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	return &wirePool{host: host, base: base}
}

// wireConn is one upgraded connection: the raw conn, its buffered
// reader (owns bytes buffered during the upgrade) and the reusable
// frame scratch.
type wireConn struct {
	c     net.Conn
	br    *bufio.Reader
	frame []byte
}

func (wc *wireConn) close() { wc.c.Close() }

// get pops an idle connection or dials a fresh one. fromPool tells
// the caller whether a failure may just be a stale idle connection
// (worth one retry) rather than a live fault.
func (p *wirePool) get(ctx context.Context) (wc *wireConn, fromPool bool, err error) {
	p.mu.Lock()
	if p.unsupported {
		p.mu.Unlock()
		return nil, false, errWireUnsupported
	}
	if n := len(p.idle); n > 0 {
		wc = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return wc, true, nil
	}
	p.mu.Unlock()
	wc, err = p.dial(ctx)
	return wc, false, err
}

func (p *wirePool) put(wc *wireConn) {
	p.mu.Lock()
	if !p.unsupported && len(p.idle) < maxIdleWireConns {
		p.idle = append(p.idle, wc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	wc.close()
}

// closeIdle drops every pooled connection (used when the codec is
// switched away from CodecWire).
func (p *wirePool) closeIdle() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
}

// isUnsupported reports whether the peer definitively refused the
// upgrade.
func (p *wirePool) isUnsupported() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unsupported
}

func (p *wirePool) markUnsupported() {
	p.mu.Lock()
	p.unsupported = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
}

// dial opens a TCP connection and upgrades it to the wire transport.
// A refusal that is definitive (the endpoint is missing, or answers
// anything but 101 except a transient 503) marks the pool unsupported.
func (p *wirePool) dial(ctx context.Context) (*wireConn, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wireDialTimeout)
		defer cancel()
	}
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", p.host)
	if err != nil {
		return nil, fmt.Errorf("dist: node %s: %w", p.base, err)
	}
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
	}
	if _, err := io.WriteString(c, "GET "+PathNodeWire+" HTTP/1.1\r\nHost: "+p.host+
		"\r\nConnection: Upgrade\r\nUpgrade: "+persist.WireProtocol+"\r\n\r\n"); err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: node %s: upgrade: %w", p.base, err)
	}
	br := bufio.NewReaderSize(c, 4096)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: node %s: upgrade: %w", p.base, err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		c.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			// At its connection cap — transient, do not write the peer off.
			return nil, fmt.Errorf("dist: node %s: upgrade refused: status %d", p.base, resp.StatusCode)
		}
		p.markUnsupported()
		return nil, fmt.Errorf("%w (node %s answered %d to the upgrade)", errWireUnsupported, p.base, resp.StatusCode)
	}
	resp.Body.Close()
	c.SetDeadline(time.Time{})
	// Bytes the response read buffered beyond the 101 belong to the
	// frame stream, so the same reader carries over.
	return &wireConn{c: c, br: br}, nil
}

// connRPC runs one framed RPC over the node's persistent-connection
// transport: write the request frame, read one response frame, hand
// it to handle (which must copy anything it keeps). A stale idle
// connection (closed by the peer while pooled) earns one retry on a
// fresh dial; an error after any response byte is terminal.
func (rn *RemoteNode) connRPC(ctx context.Context, path string, req *persist.WireBuffer, handle func(frame []byte) error) error {
	if err := req.Err(); err != nil {
		return fmt.Errorf("dist: encode %s: %w", path, err)
	}
	deadline := time.Now().Add(rn.timeout())
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for attempt := 0; ; attempt++ {
		wc, fromPool, err := rn.pool.get(ctx)
		if err != nil {
			return err
		}
		gotResponse, err := rn.connExchange(wc, deadline, path, req.Bytes(), handle)
		if err == nil {
			rn.pool.put(wc)
			return nil
		}
		wc.close()
		if fromPool && !gotResponse && attempt == 0 && ctx.Err() == nil {
			continue // stale pooled connection; one fresh dial
		}
		return err
	}
}

func (rn *RemoteNode) connExchange(wc *wireConn, deadline time.Time, path string, frame []byte, handle func([]byte) error) (gotResponse bool, err error) {
	wc.c.SetDeadline(deadline)
	if _, err := wc.c.Write(frame); err != nil {
		return false, fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	rn.bytesOut.Add(uint64(len(frame)))
	if rn.met != nil {
		rn.met.BytesOut.Add(uint64(len(frame)))
	}
	resp, err := persist.ReadWireFrame(wc.br, maxWireResponse, wc.frame)
	if err != nil {
		return wc.br.Buffered() > 0, fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	wc.frame = resp
	rn.bytesIn.Add(uint64(len(resp)))
	if rn.met != nil {
		rn.met.BytesIn.Add(uint64(len(resp)))
	}
	if persist.WirePeekKind(resp) == persist.WireError {
		_, payload, derr := persist.DecodeWire(resp)
		if derr != nil {
			return true, fmt.Errorf("dist: node %s%s: %w", rn.base, path, derr)
		}
		status, msg, derr := persist.DecodeErrorPayload(payload)
		if derr != nil {
			return true, fmt.Errorf("dist: node %s%s: %w", rn.base, path, derr)
		}
		return true, fmt.Errorf("dist: node %s%s: status %d: %s", rn.base, path, status, msg)
	}
	if err := handle(resp); err != nil {
		return true, fmt.Errorf("dist: node %s%s: %w", rn.base, path, err)
	}
	return true, nil
}
