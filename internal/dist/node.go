package dist

import (
	"context"
	"sync"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Node is one shared-nothing member of a Cluster. The interface is the
// network boundary of the distributed design: the in-process LocalNode
// and the HTTP-backed RemoteNode both satisfy it, so a cluster mixes
// local and remote members transparently and the central site neither
// knows nor cares where a fragment physically lives.
//
// Every method takes a context so the central site can impose
// per-node deadlines; a node that cannot answer in time is dropped
// from the merge (straggler handling) rather than stalling the query.
type Node interface {
	// Add indexes one document on this node.
	Add(ctx context.Context, doc bat.OID, url, text string) error
	// Stats freezes the node's derived state and returns its local
	// term statistics for central aggregation.
	Stats(ctx context.Context) (ir.Stats, error)
	// TopNWithStats evaluates the query over the node's local fragment
	// using the supplied global statistics and returns at most n
	// results — the RES(doc-oid, score) set of the paper.
	TopNWithStats(ctx context.Context, query string, n int, global ir.Stats) ([]ir.Result, error)
	// Load returns the node's document load.
	Load(ctx context.Context) (NodeLoad, error)
}

// NodeLoad describes one node's document load: how many documents it
// holds and the highest oid among them (so central oid allocators can
// continue the sequence without reusing a live oid).
type NodeLoad struct {
	Docs   int
	MaxDoc bat.OID
}

// LocalNode adapts an in-process ir.Index to the Node interface. Its
// methods never fail and ignore context cancellation mid-call (an
// in-memory query completes in microseconds); the cluster's straggler
// machinery still applies uniformly.
//
// A RWMutex arbitrates the index's one-writer rule so a serving layer
// may add documents and answer queries concurrently: Add and Stats
// (which freezes) take the write lock, queries the read lock.
type LocalNode struct {
	mu      sync.RWMutex
	ix      *ir.Index
	resolve func(*ir.Index, string) ([]string, []bat.OID)
}

// NewLocalNode wraps an index as a cluster node.
func NewLocalNode(ix *ir.Index) *LocalNode { return &LocalNode{ix: ix} }

// Index exposes the underlying index for experiments and tests. Do
// not mutate it while the node is serving queries — go through Add.
func (n *LocalNode) Index() *ir.Index { return n.ix }

// SetResolver injects a query-term resolver — the engine's query-side
// LRU cache (core.QueryCache.Resolve fits the signature) — so this
// node's top-N path skips re-tokenizing and re-stemming hot queries.
// Set it before the node starts serving queries.
func (n *LocalNode) SetResolver(f func(*ir.Index, string) ([]string, []bat.OID)) { n.resolve = f }

// Add implements Node.
func (n *LocalNode) Add(_ context.Context, doc bat.OID, url, text string) error {
	n.mu.Lock()
	n.ix.Add(doc, url, text)
	n.mu.Unlock()
	return nil
}

// Stats implements Node: it freezes the index (so concurrent read-only
// queries never mutate it) and extracts the local statistics.
func (n *LocalNode) Stats(context.Context) (ir.Stats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ix.Freeze()
	return n.ix.StatsLocal(), nil
}

// TopNWithStats implements Node. With a resolver injected the query
// resolves through it (cached) and scores via the pre-resolved-terms
// path; either way the result is identical.
func (n *LocalNode) TopNWithStats(_ context.Context, query string, topn int, global ir.Stats) ([]ir.Result, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.resolve != nil && !n.ix.Dirty() {
		stems, oids := n.resolve(n.ix, query)
		return n.ix.TopNWithStatsTerms(stems, oids, topn, global), nil
	}
	return n.ix.TopNWithStats(query, topn, global), nil
}

// Load implements Node.
func (n *LocalNode) Load(context.Context) (NodeLoad, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return NodeLoad{Docs: n.ix.DocCount(), MaxDoc: n.ix.MaxDoc()}, nil
}
