package dist

import (
	"context"
	"sync"
	"sync/atomic"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// Node is one shared-nothing member of a Cluster. The interface is the
// network boundary of the distributed design: the in-process LocalNode
// and the HTTP-backed RemoteNode both satisfy it, so a cluster mixes
// local and remote members transparently and the central site neither
// knows nor cares where a fragment physically lives.
//
// Every method takes a context so the central site can impose
// per-node deadlines; a node that cannot answer in time is dropped
// from the merge (straggler handling) rather than stalling the query.
type Node interface {
	// Add indexes one document on this node.
	Add(ctx context.Context, doc bat.OID, url, text string) error
	// Stats freezes the node's derived state and returns its local
	// term statistics for central aggregation.
	Stats(ctx context.Context) (ir.Stats, error)
	// TopNWithStats evaluates the query over the node's local fragment
	// using the supplied global statistics and returns at most n
	// results — the RES(doc-oid, score) set of the paper.
	TopNWithStats(ctx context.Context, query string, n int, global ir.Stats) ([]ir.Result, error)
	// SearchPlan evaluates the query under a fragment-budgeted plan:
	// the node fragments its own partition on descending idf, evaluates
	// only the plan's budgeted prefix, and reports the RES set plus the
	// quality it achieved. An exact plan behaves like TopNWithStats.
	// This pushes the a-priori cut-off of [BHC+01] below the per-node
	// RES sets — the fragment-aware combination of both scaling axes.
	SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error)
	// Load returns the node's document load.
	Load(ctx context.Context) (NodeLoad, error)
}

// NodeLoad describes one node's document load: how many documents it
// holds, the highest oid among them (so central oid allocators can
// continue the sequence without reusing a live oid), and when the node
// last persisted a snapshot (unix seconds, 0 = never) so operators can
// see how much work a crash would lose.
type NodeLoad struct {
	Docs         int
	MaxDoc       bat.OID
	SnapshotUnix int64
}

// Doc is one document of a batch add.
type Doc struct {
	OID  bat.OID
	URL  string
	Text string
}

// BatchAdder is an optional Node capability: indexing a whole partition
// batch in one round-trip. Cluster.AddBatchContext uses it when a node
// implements it and falls back to per-document Add otherwise, so the
// capability stays optional for third-party nodes.
type BatchAdder interface {
	AddBatch(ctx context.Context, docs []Doc) error
}

// RankingCache is the serving layer's RES-set cache boundary: rankings
// keyed by (index, query), reusable for any n the cached ranking
// covers. core.QueryCache implements it; the interface lives here so
// dist does not depend on the cache's owner.
type RankingCache interface {
	// Ranking returns a cached RES set valid for a top-n query scored
	// with the given global statistics, or false.
	Ranking(ix *ir.Index, query string, n int, global ir.Stats) ([]ir.Result, bool)
	// StoreRanking caches a freshly computed RES set.
	StoreRanking(ix *ir.Index, query string, n int, global ir.Stats, res []ir.Result)
}

// LocalNode adapts an in-process ir.Index to the Node interface. Its
// methods never fail and ignore context cancellation mid-call (an
// in-memory query completes in microseconds); the cluster's straggler
// machinery still applies uniformly.
//
// A RWMutex arbitrates the index's one-writer rule so a serving layer
// may add documents and answer queries concurrently: Add and Stats
// (which freezes) take the write lock, queries the read lock.
type LocalNode struct {
	mu       sync.RWMutex
	ix       *ir.Index
	resolve  func(*ir.Index, string) ([]string, []bat.OID)
	rank     RankingCache
	lastSnap atomic.Int64 // unix seconds of the last persisted snapshot
}

// NewLocalNode wraps an index as a cluster node.
func NewLocalNode(ix *ir.Index) *LocalNode { return &LocalNode{ix: ix} }

// Index exposes the underlying index for experiments and tests. Do
// not mutate it while the node is serving queries — go through Add.
func (n *LocalNode) Index() *ir.Index { return n.ix }

// SetResolver injects a query-term resolver — the engine's query-side
// LRU cache (core.QueryCache.Resolve fits the signature) — so this
// node's top-N path skips re-tokenizing and re-stemming hot queries.
// Set it before the node starts serving queries.
func (n *LocalNode) SetResolver(f func(*ir.Index, string) ([]string, []bat.OID)) { n.resolve = f }

// SetRankingCache injects a RES-set cache (core.QueryCache implements
// RankingCache) so repeated exact queries skip scoring entirely. Set
// it before the node starts serving queries.
func (n *LocalNode) SetRankingCache(rc RankingCache) { n.rank = rc }

// Add implements Node.
func (n *LocalNode) Add(_ context.Context, doc bat.OID, url, text string) error {
	n.mu.Lock()
	n.ix.Add(doc, url, text)
	n.mu.Unlock()
	return nil
}

// AddBatch implements BatchAdder: the whole batch lands under one
// write-lock acquisition.
func (n *LocalNode) AddBatch(_ context.Context, docs []Doc) error {
	n.mu.Lock()
	for _, d := range docs {
		n.ix.Add(d.OID, d.URL, d.Text)
	}
	n.mu.Unlock()
	return nil
}

// Stats implements Node: it freezes the index (so concurrent read-only
// queries never mutate it) and extracts the local statistics.
func (n *LocalNode) Stats(context.Context) (ir.Stats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ix.Freeze()
	return n.ix.StatsLocal(), nil
}

// TopNWithStats implements Node. With a resolver injected the query
// resolves through it (cached) and scores via the pre-resolved-terms
// path; either way the result is identical. A ranking cache, when
// injected, short-circuits repeated exact queries — top-N-aware, so a
// cached top-50 answers any n ≤ 50.
func (n *LocalNode) TopNWithStats(_ context.Context, query string, topn int, global ir.Stats) ([]ir.Result, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	clean := !n.ix.Dirty()
	if n.rank != nil && clean {
		if res, ok := n.rank.Ranking(n.ix, query, topn, global); ok {
			return res, nil
		}
	}
	var res []ir.Result
	if n.resolve != nil && clean {
		stems, oids := n.resolve(n.ix, query)
		res = n.ix.TopNWithStatsTerms(stems, oids, topn, global)
	} else {
		res = n.ix.TopNWithStats(query, topn, global)
	}
	if n.rank != nil && clean {
		n.rank.StoreRanking(n.ix, query, topn, global, res)
	}
	return res, nil
}

// SearchPlan implements Node. An exact plan takes the TopNWithStats
// path (ranking cache included). A budgeted plan normally evaluates
// read-only under the read lock; when the index is not ready for the
// plan (pending adds, or a different fragmentation granularity) the
// freeze/re-fragment AND the evaluation run under one write-lock
// acquisition, so the budget is always interpreted against the
// granularity this very plan asked for — never against a concurrent
// plan's. Re-fragmentation is O(vocabulary log vocabulary): the
// granularity is meant to be a deployment constant (the coordinator's
// -frags default), not a per-request variable.
func (n *LocalNode) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if plan.Exact() {
		res, err := n.TopNWithStats(ctx, query, plan.N, global)
		return res, ir.QualityEstimate{}, err
	}
	n.mu.RLock()
	if n.ix.PlanReady(plan) {
		defer n.mu.RUnlock()
		res, est := n.planWithStats(query, plan, global)
		return res, est, nil
	}
	n.mu.RUnlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ix.Freeze()
	n.ix.EnsureFragments(plan)
	res, est := n.planWithStats(query, plan, global)
	return res, est, nil
}

// planWithStats evaluates a budgeted plan; the caller holds the lock.
func (n *LocalNode) planWithStats(query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate) {
	if n.resolve != nil && !n.ix.Dirty() {
		stems, oids := n.resolve(n.ix, query)
		return n.ix.TopNPlanWithStatsTerms(stems, oids, plan, global)
	}
	return n.ix.TopNPlanWithStats(query, plan, global)
}

// Load implements Node.
func (n *LocalNode) Load(context.Context) (NodeLoad, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return NodeLoad{
		Docs:         n.ix.DocCount(),
		MaxDoc:       n.ix.MaxDoc(),
		SnapshotUnix: n.lastSnap.Load(),
	}, nil
}

// ExportState freezes the index and captures its complete logical
// state under the write lock — the consistent cut the durability layer
// persists. Queries blocked behind the export resume against the very
// state the snapshot holds.
func (n *LocalNode) ExportState() *ir.IndexState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ix.ExportState()
}

// MarkSnapshot records that a snapshot of this node's state was
// durably persisted at t; Load reports it so coordinators can surface
// per-replica snapshot age.
func (n *LocalNode) MarkSnapshot(unix int64) { n.lastSnap.Store(unix) }

// LastSnapshotUnix returns when the node last persisted a snapshot
// (unix seconds, 0 = never).
func (n *LocalNode) LastSnapshotUnix() int64 { return n.lastSnap.Load() }
