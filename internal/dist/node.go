package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
)

// Node is one shared-nothing member of a Cluster. The interface is the
// network boundary of the distributed design: the in-process LocalNode
// and the HTTP-backed RemoteNode both satisfy it, so a cluster mixes
// local and remote members transparently and the central site neither
// knows nor cares where a fragment physically lives.
//
// Every method takes a context so the central site can impose
// per-node deadlines; a node that cannot answer in time is dropped
// from the merge (straggler handling) rather than stalling the query.
type Node interface {
	// Add indexes one document on this node.
	Add(ctx context.Context, doc bat.OID, url, text string) error
	// Stats freezes the node's derived state and returns its local
	// term statistics for central aggregation.
	Stats(ctx context.Context) (ir.Stats, error)
	// TopNWithStats evaluates the query over the node's local fragment
	// using the supplied global statistics and returns at most n
	// results — the RES(doc-oid, score) set of the paper.
	TopNWithStats(ctx context.Context, query string, n int, global ir.Stats) ([]ir.Result, error)
	// SearchPlan evaluates the query under a fragment-budgeted plan:
	// the node fragments its own partition on descending idf, evaluates
	// only the plan's budgeted prefix, and reports the RES set plus the
	// quality it achieved. An exact plan behaves like TopNWithStats.
	// This pushes the a-priori cut-off of [BHC+01] below the per-node
	// RES sets — the fragment-aware combination of both scaling axes.
	SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error)
	// Load returns the node's document load.
	Load(ctx context.Context) (NodeLoad, error)
}

// NodeLoad describes one node's document load: how many documents it
// holds, the highest oid among them (so central oid allocators can
// continue the sequence without reusing a live oid), when the node
// last persisted a snapshot (unix seconds, 0 = never) so operators can
// see how much work a crash would lose, and the content checksum of
// its fragment (ir.Index.Checksum) — the anti-entropy comparison key:
// replicas of a group holding identical documents report identical
// checksums no matter how the writes interleaved. Load itself never
// computes a digest (probes must stay O(1)), so Checksum may be empty
// when the content changed since the last digest; anti-entropy probes
// through ChecksumLoader, which forces a fresh one.
type NodeLoad struct {
	Docs         int
	MaxDoc       bat.OID
	SnapshotUnix int64
	Checksum     string
	// LogPos is the node's op-log position — how many ingest
	// operations its history holds. Replicas of a group converge to
	// equal positions (writes fan to every member, idempotent ingest
	// de-duplicates), so the group maximum minus a replica's position
	// is that replica's lag, and the position is what the delta-resync
	// path ships a log suffix from.
	LogPos uint64
}

// ChecksumLoader is an optional Node capability: a load probe that
// guarantees a FRESH content checksum, paying the freeze + digest cost
// when the content changed since the last one. Anti-entropy uses it;
// plain Load keeps monitoring probes (/stats scrapes, doc counts)
// cheap by reporting only a cached digest, possibly empty.
type ChecksumLoader interface {
	LoadChecksum(ctx context.Context) (NodeLoad, error)
}

// Doc is one document of a batch add.
type Doc struct {
	OID  bat.OID
	URL  string
	Text string
}

// BatchAdder is an optional Node capability: indexing a whole partition
// batch in one round-trip. Cluster.AddBatchContext uses it when a node
// implements it and falls back to per-document Add otherwise, so the
// capability stays optional for third-party nodes.
type BatchAdder interface {
	AddBatch(ctx context.Context, docs []Doc) error
}

// IdempotentIngest is an optional Node capability marker: a node
// implementing it guarantees that Add and AddBatch de-duplicate per
// document oid — re-posting a document that was already applied is a
// no-op, never a tf double-fold. Document oids are write-once at such
// a node's boundary. This is what makes at-least-once ingest safe: a
// replica that timed out AFTER applying a batch (the acknowledgement
// was lost) can simply be retried, and a partially applied per-document
// loop can be replayed from the start — the applied prefix skips
// itself. LocalNode and RemoteNode (whose server wraps a LocalNode)
// both implement it; the cluster treats nodes without the marker
// conservatively (see PartitionResult.Ambiguous).
type IdempotentIngest interface {
	IdempotentIngest()
}

// StateSource is an optional Node capability: exporting the node's
// complete fragment state as one consistent cut. It is the read side
// of replica resync — the healthiest member of a replica group serves
// as the source a diverged or lagging member heals from.
type StateSource interface {
	SnapshotState(ctx context.Context) (*ir.IndexState, error)
}

// StateSink is an optional Node capability: atomically replacing the
// node's entire fragment with the supplied state. It is the write side
// of replica resync. Implementations must install the state under
// their write lock with the freeze epoch advanced strictly past the
// pre-restore epoch, so epoch-guarded query caches can never serve
// pre-restore rankings.
type StateSink interface {
	RestoreState(ctx context.Context, st *ir.IndexState) error
}

// ErrDeltaUnavailable reports that a node cannot serve the requested
// op-log suffix — the position predates its log's base (compacted into
// a snapshot), or the node keeps no log at all. The caller falls back
// to a full-snapshot resync; nothing is wrong with the node.
var ErrDeltaUnavailable = errors.New("dist: op-log delta unavailable for requested position")

// ErrPosMismatch reports a delta whose starting position does not
// equal the applying node's position: the histories cannot be proven
// to align, so the node rejects the delta and the caller falls back
// to a full-snapshot resync.
var ErrPosMismatch = errors.New("dist: delta position does not match node position")

// DeltaSource is an optional Node capability, the read side of delta
// resync: the node's op-log suffix from position from (every operation
// a replica at that position is missing). ErrDeltaUnavailable means
// the suffix was compacted away and only a full snapshot covers it.
type DeltaSource interface {
	OpsSince(ctx context.Context, from uint64) ([]persist.Op, error)
}

// DeltaSink is an optional Node capability, the write side of delta
// resync: append-and-apply a log suffix. The node must reject a delta
// whose from does not equal its own position — positions are the only
// alignment evidence the delta path has, so applying at an offset
// would silently interleave histories. Applying is idempotent per
// document oid, like all ingest.
type DeltaSink interface {
	ApplyOps(ctx context.Context, from uint64, ops []persist.Op) error
}

// RankingCache is the serving layer's RES-set cache boundary: rankings
// keyed by (index, query), reusable for any n the cached ranking
// covers. core.QueryCache implements it; the interface lives here so
// dist does not depend on the cache's owner.
type RankingCache interface {
	// Ranking returns a cached RES set valid for a top-n query scored
	// with the given global statistics, or false.
	Ranking(ix *ir.Index, query string, n int, global ir.Stats) ([]ir.Result, bool)
	// StoreRanking caches a freshly computed RES set.
	StoreRanking(ix *ir.Index, query string, n int, global ir.Stats, res []ir.Result)
}

// LocalNode adapts an in-process search backend — a bare ir.Index or
// a conceptual engine's per-attribute index (see SearchBackend) — to
// the Node interface. Its methods never fail and ignore context
// cancellation mid-call (an in-memory query completes in
// microseconds); the cluster's straggler machinery still applies
// uniformly.
//
// A RWMutex arbitrates the index's one-writer rule so a serving layer
// may add documents and answer queries concurrently: Add and Stats
// (which freezes) take the write lock, queries the read lock.
type LocalNode struct {
	mu sync.RWMutex
	// backend owns the served index; ix caches backend.ContentIndex()
	// so every hot read path stays one pointer dereference, exactly as
	// before the backend existed. The two are updated together under
	// the write lock (RestoreState).
	backend  SearchBackend
	ix       *ir.Index
	resolve  func(*ir.Index, string) ([]string, []bat.OID)
	rank     RankingCache
	lastSnap atomic.Int64 // unix seconds of the last persisted snapshot

	// oplog, when attached, is the node's write-ahead log: every
	// ingest operation is appended (and fsynced) BEFORE it is applied
	// to the index, so a crash between the two replays the operation
	// on boot instead of losing it. pos mirrors the log's position and
	// is maintained even without a log (guarded by mu), so replica lag
	// stays observable on log-less nodes.
	oplog *persist.OpLog
	pos   uint64

	// met, when set, records node-side serving telemetry. nil means no
	// instrumentation at all: the hot query path pays one pointer
	// compare and nothing else.
	met *NodeMetrics

	// cost, when set, receives budgeted-evaluation cost samples via
	// the index's ir hook (see SetCostCurve in cost.go).
	cost CostCurve
}

// NodeMetrics is the node-side instrumentation a serving layer may
// attach to a LocalNode. All fields are optional (nil instruments are
// no-ops).
type NodeMetrics struct {
	// Scoring observes the wall time of every local query evaluation
	// (exact and budgeted), in seconds.
	Scoring *obs.Histogram
	// IngestDocs counts freshly indexed documents (duplicates a
	// retried write re-posts are not counted).
	IngestDocs *obs.Counter
}

// SetMetrics attaches node-side instrumentation. Set it before the
// node starts serving; nil detaches.
func (n *LocalNode) SetMetrics(m *NodeMetrics) { n.met = m }

// NewLocalNode wraps an index as a cluster node (an IndexBackend —
// the classic bare-fragment path).
func NewLocalNode(ix *ir.Index) *LocalNode {
	return NewLocalNodeBackend(NewIndexBackend(ix))
}

// NewLocalNodeBackend wraps a search backend as a cluster node, so a
// partition can host whatever owns the index — a bare fragment or a
// full conceptual engine. It panics on a nil backend or content index
// (a node with nothing to serve is a construction bug, and a deferred
// nil dereference on the first query would be far harder to diagnose).
func NewLocalNodeBackend(b SearchBackend) *LocalNode {
	if b == nil || b.ContentIndex() == nil {
		panic("dist: LocalNode requires a backend with a content index")
	}
	return &LocalNode{backend: b, ix: b.ContentIndex()}
}

// Index exposes the underlying index for experiments and tests. Do
// not mutate it while the node is serving queries — go through Add.
func (n *LocalNode) Index() *ir.Index { return n.ix }

// Backend exposes the node's search backend (never nil).
func (n *LocalNode) Backend() SearchBackend { return n.backend }

// SetResolver injects a query-term resolver — the engine's query-side
// LRU cache (core.QueryCache.Resolve fits the signature) — so this
// node's top-N path skips re-tokenizing and re-stemming hot queries.
// Set it before the node starts serving queries.
func (n *LocalNode) SetResolver(f func(*ir.Index, string) ([]string, []bat.OID)) { n.resolve = f }

// SetRankingCache injects a RES-set cache (core.QueryCache implements
// RankingCache) so repeated exact queries skip scoring entirely. Set
// it before the node starts serving queries.
func (n *LocalNode) SetRankingCache(rc RankingCache) { n.rank = rc }

// SetOpLog attaches a write-ahead op log: from now on every ingest
// appends to it durably before applying, and the node's position
// continues from the log's. Attach at boot, after replaying the log
// into the index and before the node starts serving — the attach
// itself takes the write lock, but ingest racing the replay would
// interleave positions.
func (n *LocalNode) SetOpLog(l *persist.OpLog) {
	n.mu.Lock()
	n.oplog = l
	if l != nil {
		n.pos = l.Pos()
	}
	n.mu.Unlock()
}

// OpLog returns the attached write-ahead log (nil when none).
func (n *LocalNode) OpLog() *persist.OpLog {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.oplog
}

// LogPos returns the node's op-log position.
func (n *LocalNode) LogPos() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pos
}

// logThenApply is the write-ahead ingest core; the caller holds the
// write lock. The fresh (not-yet-indexed) subset of docs is appended
// to the op log — one durable fsynced write — and applied to the
// index only after the append succeeded, so every applied operation
// is recoverable by replay. A failed append applies NOTHING: the
// caller's error tells it the write did not happen, and the torn
// bytes a crashed append may leave are truncated by the next open.
// Duplicate oids are skipped entirely (not logged, not applied) —
// that is what keeps replica positions aligned: every member of a
// group sees the same fan-out and filters the same duplicates.
func (n *LocalNode) logThenApply(docs []Doc) error {
	fresh := docs[:0:0]
	for _, d := range docs {
		if !n.ix.HasDoc(d.OID) {
			fresh = append(fresh, d)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	if n.oplog != nil {
		ops := make([]persist.Op, len(fresh))
		for i, d := range fresh {
			ops[i] = persist.Op{Doc: d.OID, URL: d.URL, Text: d.Text}
		}
		if err := n.oplog.Append(ops...); err != nil {
			return err
		}
	}
	n.backend.ApplyDocs(fresh)
	n.pos += uint64(len(fresh))
	if n.met != nil {
		n.met.IngestDocs.Add(uint64(len(fresh)))
	}
	return nil
}

// Add implements Node. Ingest is idempotent per document oid: a doc
// already in the index is skipped, so retrying a write whose
// acknowledgement was lost (the at-least-once ambiguity of networked
// ingest) never double-folds term frequencies. Document oids are
// therefore write-once at the node boundary; folding more text into an
// existing document remains an ir.Index-level operation for engines
// that own their index outright. With an op log attached the document
// is durably logged before it is applied (see logThenApply).
func (n *LocalNode) Add(_ context.Context, doc bat.OID, url, text string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.logThenApply([]Doc{{OID: doc, URL: url, Text: text}})
}

// AddBatch implements BatchAdder: the whole batch lands under one
// write-lock acquisition — and, with an op log attached, one durable
// log append — each document idempotently (see Add). A replayed
// batch, including one that previously applied only a prefix, is
// applied exactly once.
func (n *LocalNode) AddBatch(_ context.Context, docs []Doc) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.logThenApply(docs)
}

// OpsSince implements DeltaSource: the attached log's suffix from
// position from. Without a log, or when the suffix was compacted into
// a snapshot, it reports ErrDeltaUnavailable and the caller falls
// back to a full-snapshot resync.
func (n *LocalNode) OpsSince(_ context.Context, from uint64) ([]persist.Op, error) {
	n.mu.RLock()
	l := n.oplog
	n.mu.RUnlock()
	if l == nil {
		return nil, ErrDeltaUnavailable
	}
	ops, err := l.OpsSince(from)
	if errors.Is(err, persist.ErrLogGap) {
		return nil, fmt.Errorf("%w: %v", ErrDeltaUnavailable, err)
	}
	return ops, err
}

// ApplyOps implements DeltaSink: append a log suffix durably and
// apply it. The delta must start exactly at this node's position —
// positions are the delta path's only alignment evidence, so an
// offset delta is rejected rather than interleaved. EVERY received
// op is appended to the log (duplicates included) so the position
// advances in lockstep with the source's; only not-yet-indexed
// documents are applied.
func (n *LocalNode) ApplyOps(_ context.Context, from uint64, ops []persist.Op) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if from != n.pos {
		return fmt.Errorf("%w: delta starts at %d, node is at %d", ErrPosMismatch, from, n.pos)
	}
	if len(ops) == 0 {
		return nil
	}
	if n.oplog != nil {
		if err := n.oplog.Append(ops...); err != nil {
			return err
		}
	}
	fresh := make([]Doc, 0, len(ops))
	for i := range ops {
		if !n.ix.HasDoc(ops[i].Doc) {
			fresh = append(fresh, Doc{OID: ops[i].Doc, URL: ops[i].URL, Text: ops[i].Text})
		}
	}
	n.backend.ApplyDocs(fresh)
	n.pos += uint64(len(ops))
	return nil
}

// IdempotentIngest marks the per-oid de-duplication above.
func (n *LocalNode) IdempotentIngest() {}

// Stats implements Node: it freezes the index (so concurrent read-only
// queries never mutate it) and extracts the local statistics.
func (n *LocalNode) Stats(context.Context) (ir.Stats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ix.Freeze()
	return n.ix.StatsLocal(), nil
}

// TopNWithStats implements Node. With a resolver injected the query
// resolves through it (cached) and scores via the pre-resolved-terms
// path; either way the result is identical. A ranking cache, when
// injected, short-circuits repeated exact queries — top-N-aware, so a
// cached top-50 answers any n ≤ 50.
func (n *LocalNode) TopNWithStats(_ context.Context, query string, topn int, global ir.Stats) ([]ir.Result, error) {
	if n.met == nil {
		return n.topNWithStats(query, topn, global), nil
	}
	start := time.Now()
	res := n.topNWithStats(query, topn, global)
	n.met.Scoring.ObserveSince(start)
	return res, nil
}

// topNWithStats is TopNWithStats without the instrumentation wrapper.
func (n *LocalNode) topNWithStats(query string, topn int, global ir.Stats) []ir.Result {
	n.mu.RLock()
	defer n.mu.RUnlock()
	clean := !n.ix.Dirty()
	if n.rank != nil && clean {
		if res, ok := n.rank.Ranking(n.ix, query, topn, global); ok {
			return res
		}
	}
	var res []ir.Result
	if n.resolve != nil && clean {
		stems, oids := n.resolve(n.ix, query)
		res = n.ix.TopNWithStatsTerms(stems, oids, topn, global)
	} else {
		res = n.ix.TopNWithStats(query, topn, global)
	}
	if n.rank != nil && clean {
		n.rank.StoreRanking(n.ix, query, topn, global, res)
	}
	return res
}

// SearchPlan implements Node. An exact plan takes the TopNWithStats
// path (ranking cache included). A budgeted plan normally evaluates
// read-only under the read lock; when the index is not ready for the
// plan (pending adds, or a different fragmentation granularity) the
// freeze/re-fragment AND the evaluation run under one write-lock
// acquisition, so the budget is always interpreted against the
// granularity this very plan asked for — never against a concurrent
// plan's. Re-fragmentation is O(vocabulary log vocabulary): the
// granularity is meant to be a deployment constant (the coordinator's
// -frags default), not a per-request variable.
func (n *LocalNode) SearchPlan(ctx context.Context, query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if plan.Exact() {
		res, err := n.TopNWithStats(ctx, query, plan.N, global)
		return res, ir.QualityEstimate{}, err
	}
	if n.met == nil {
		res, est := n.searchPlanBudgeted(query, plan, global)
		return res, est, nil
	}
	start := time.Now()
	res, est := n.searchPlanBudgeted(query, plan, global)
	n.met.Scoring.ObserveSince(start)
	return res, est, nil
}

// searchPlanBudgeted is SearchPlan's budgeted path without the
// instrumentation wrapper.
func (n *LocalNode) searchPlanBudgeted(query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate) {
	n.mu.RLock()
	if n.ix.PlanReady(plan) {
		defer n.mu.RUnlock()
		res, est := n.planWithStats(query, plan, global)
		return res, est
	}
	n.mu.RUnlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ix.Freeze()
	n.ix.EnsureFragments(plan)
	res, est := n.planWithStats(query, plan, global)
	return res, est
}

// planWithStats evaluates a budgeted plan; the caller holds the lock.
func (n *LocalNode) planWithStats(query string, plan ir.EvalPlan, global ir.Stats) ([]ir.Result, ir.QualityEstimate) {
	if n.resolve != nil && !n.ix.Dirty() {
		stems, oids := n.resolve(n.ix, query)
		return n.ix.TopNPlanWithStatsTerms(stems, oids, plan, global)
	}
	return n.ix.TopNPlanWithStats(query, plan, global)
}

// Load implements Node. It is always O(1) under the shared read lock:
// the checksum comes from its per-epoch cache and is empty when the
// content changed since the last digest — monitoring probes (/stats
// scrapes, doc-count reads) must never stall serving behind a freeze
// or an O(index) hash. Anti-entropy, which needs a guaranteed-fresh
// digest, probes through LoadChecksum instead.
func (n *LocalNode) Load(context.Context) (NodeLoad, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	sum, _ := n.ix.ChecksumCached()
	return NodeLoad{
		Docs:         n.ix.DocCount(),
		MaxDoc:       n.ix.MaxDoc(),
		SnapshotUnix: n.lastSnap.Load(),
		Checksum:     sum,
		LogPos:       n.pos,
	}, nil
}

// LoadChecksum implements ChecksumLoader: like Load, but when the
// cached digest is stale it takes the write lock and recomputes
// (freeze + O(index) hash) so the reported checksum is always fresh.
func (n *LocalNode) LoadChecksum(ctx context.Context) (NodeLoad, error) {
	if l, err := n.Load(ctx); err != nil || l.Checksum != "" {
		return l, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeLoad{
		Docs:         n.ix.DocCount(),
		MaxDoc:       n.ix.MaxDoc(),
		SnapshotUnix: n.lastSnap.Load(),
		Checksum:     n.ix.Checksum(),
		LogPos:       n.pos,
	}, nil
}

// ExportState freezes the index and captures its complete logical
// state under the write lock — the consistent cut the durability layer
// persists. Queries blocked behind the export resume against the very
// state the snapshot holds.
func (n *LocalNode) ExportState() *ir.IndexState {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.ix.ExportState()
	// Stamp the export with the node's op-log position: the state
	// covers exactly this log prefix, so a snapshot written from it
	// may compact the log up to here, and a replica restored from it
	// continues its history from here.
	st.LogPos = n.pos
	return st
}

// SnapshotState implements StateSource over ExportState.
func (n *LocalNode) SnapshotState(context.Context) (*ir.IndexState, error) {
	return n.ExportState(), nil
}

// RestoreState implements StateSink: the node's entire fragment is
// replaced by the supplied state under the write lock — queries
// blocked behind the restore resume against exactly the restored
// state, adds blocked behind it apply on top of it (so a write racing
// a resync lands in the restored index instead of being lost). The
// rebuilt index's freeze epoch is advanced strictly past the
// pre-restore epoch: even if the imported state carries the same epoch
// number and the same global-statistics fingerprint as the content it
// replaces, every cached term resolution and RES set captured before
// the restore is invalidated. A state that fails ImportState's
// referential validation leaves the node serving its previous fragment
// untouched.
func (n *LocalNode) RestoreState(_ context.Context, st *ir.IndexState) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ix, err := ir.ImportState(st)
	if err != nil {
		return err
	}
	// The state carries the SOURCE's tuning; this node keeps its own.
	// λ and the memory budget are deployment configuration (replicas of
	// a group are configured alike), not content — a resync from an
	// unbudgeted peer must not silently lift this node's -mem-budget.
	ix.SetLambda(n.ix.Lambda())
	ix.SetMemoryBudget(n.ix.MemoryBudget())
	ix.AdvanceEpoch(n.ix.Epoch())
	// A full restore subsumes the node's entire logged history: the
	// position jumps to the state's, and the log restarts empty at
	// that base — every record below it is covered by the restored
	// state, every record above it described the REPLACED index and
	// must not replay on top of this one.
	if n.oplog != nil {
		if err := n.oplog.Reset(st.LogPos); err != nil {
			return err
		}
	}
	n.pos = st.LogPos
	// Re-home the restored index under its owner (an engine-owned
	// backend re-binds it so conceptual queries rank against the
	// restored content), then refresh the node's hot-path cache.
	n.backend.SwapIndex(ix)
	n.ix = ix
	// The restored index starts without the cost hook — re-wire it so
	// the quality/latency curve keeps learning across resyncs.
	n.installCostObserver()
	return nil
}

// MarkSnapshot records that a snapshot of this node's state was
// durably persisted at t; Load reports it so coordinators can surface
// per-replica snapshot age.
func (n *LocalNode) MarkSnapshot(unix int64) { n.lastSnap.Store(unix) }

// LastSnapshotUnix returns when the node last persisted a snapshot
// (unix seconds, 0 = never).
func (n *LocalNode) LastSnapshotUnix() int64 { return n.lastSnap.Load() }
