package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
)

// loggedNode builds a LocalNode whose ingest is write-ahead logged to
// its own temp dir.
func loggedNode(t *testing.T) *LocalNode {
	t.Helper()
	l, err := persist.OpenOpLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	n := NewLocalNode(ir.NewIndex())
	n.SetOpLog(l)
	return n
}

func checksumOf(t *testing.T, n Node) string {
	t.Helper()
	l, err := n.(ChecksumLoader).LoadChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return l.Checksum
}

// TestCrashReplayByteIdentical is the tentpole's core durability
// claim in process form: ingest write-ahead-logged documents, crash
// without any snapshot (the process just vanishes, plus a torn
// partial append at the log tail), recover a fresh node from the log
// alone — rankings and content checksum must be byte-identical, and
// the torn tail (never acknowledged) silently truncated.
func TestCrashReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	l, err := persist.OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := NewLocalNode(ir.NewIndex())
	n.SetOpLog(l)
	docs := make([]Doc, 0, 50)
	for i, text := range corpus(50, 31) {
		docs = append(docs, Doc{OID: bat.OID(i + 1), URL: fmt.Sprintf("d%d", i+1), Text: text})
	}
	if err := n.AddBatch(context.Background(), docs[:30]); err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[30:] {
		if err := n.Add(context.Background(), d.OID, d.URL, d.Text); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{"champion winner serve", "seles", "melbourne trophy"}
	want := make([][]ir.Result, len(queries))
	for i, q := range queries {
		want[i] = n.Index().TopN(q, 10)
	}
	wantSum := checksumOf(t, n)
	if n.LogPos() != 50 {
		t.Fatalf("log position %d, want 50", n.LogPos())
	}
	// Crash: drop the node, leave a torn partial append at the tail —
	// the first bytes of a record whose fsync never completed.
	l.Close()
	f, err := os.OpenFile(l.Path(), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Recovery: open the log, fold it into a fresh index (the dlserve
	// boot path with no snapshot at all).
	l2, err := persist.OpenOpLog(dir)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer l2.Close()
	if l2.TruncatedBytes() == 0 {
		t.Fatal("torn tail not truncated")
	}
	ix2 := ir.NewIndex()
	if err := l2.Replay(l2.Base(), func(op persist.Op) error {
		if !ix2.HasDoc(op.Doc) {
			ix2.Add(op.Doc, op.URL, op.Text)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	n2 := NewLocalNode(ix2)
	n2.SetOpLog(l2)
	if n2.LogPos() != 50 {
		t.Fatalf("recovered log position %d, want 50", n2.LogPos())
	}
	if got := checksumOf(t, n2); got != wantSum {
		t.Fatalf("recovered checksum %s, want %s", got, wantSum)
	}
	for i, q := range queries {
		sameRanking(t, "recovered "+q, ix2.TopN(q, 10), want[i])
	}
}

// TestSnapshotCompactionBoundsReplay: a snapshot taken mid-stream
// records its log position and compacts the log; recovery is then
// snapshot + short suffix replay, identical to a node that never
// crashed.
func TestSnapshotCompactionBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := persist.OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := NewLocalNode(ir.NewIndex())
	n.SetOpLog(l)
	docs := make([]Doc, 0, 60)
	for i, text := range corpus(60, 37) {
		docs = append(docs, Doc{OID: bat.OID(i + 1), URL: "u", Text: text})
	}
	if err := n.AddBatch(context.Background(), docs[:40]); err != nil {
		t.Fatal(err)
	}
	// Snapshot at position 40 (ExportState stamps the position), then
	// compact the log to it — the paper's incremental snapshot.
	st, err := n.SnapshotState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.LogPos != 40 {
		t.Fatalf("snapshot stamped position %d, want 40", st.LogPos)
	}
	if err := l.Compact(st.LogPos); err != nil {
		t.Fatal(err)
	}
	if err := n.AddBatch(context.Background(), docs[40:]); err != nil {
		t.Fatal(err)
	}
	wantSum := checksumOf(t, n)
	l.Close()
	// Recovery: import the snapshot, replay only the 20-op suffix.
	l2, err := persist.OpenOpLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != 40 || l2.Pos() != 60 {
		t.Fatalf("recovered log base=%d pos=%d, want 40/60", l2.Base(), l2.Pos())
	}
	ix2, err := ir.ImportState(st)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	if err := l2.Replay(l2.Base(), func(op persist.Op) error {
		if !ix2.HasDoc(op.Doc) {
			ix2.Add(op.Doc, op.URL, op.Text)
			replayed++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 20 {
		t.Fatalf("replayed %d ops, want 20", replayed)
	}
	n2 := NewLocalNode(ix2)
	n2.SetOpLog(l2)
	if got := checksumOf(t, n2); got != wantSum {
		t.Fatalf("recovered checksum %s, want %s", got, wantSum)
	}
}

// TestDeltaResyncShipsSuffixOnly: a replica that missed the last
// writes is healed by shipping just the op-log suffix, not the full
// snapshot; the delta is checksum-verified, counted in telemetry, and
// orders of magnitude smaller than the full state.
func TestDeltaResyncShipsSuffixOnly(t *testing.T) {
	a, b := loggedNode(t), loggedNode(t)
	c := NewReplicatedClusterOf([][]Node{{a, b}}, nil)
	for i, text := range corpus(60, 43) {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", text); err != nil {
			t.Fatal(err)
		}
	}
	// B goes dark; A alone accepts 5 more documents. B is now a lagging
	// replica whose state is a strict prefix of A's log.
	for i := 60; i < 65; i++ {
		if err := a.Add(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("capriati rally doc%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if a.LogPos() != 65 || b.LogPos() != 60 {
		t.Fatalf("positions a=%d b=%d, want 65/60", a.LogPos(), b.LogPos())
	}
	fullBytes, err := persist.SizeOf(a.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	// One anti-entropy pass: divergence detected, B healed by delta.
	rep := c.CheckReplicas(context.Background(), true)
	if rep.Detected != 1 || rep.Resynced != 1 {
		t.Fatalf("pass = %+v", rep)
	}
	tel := c.Telemetry()
	if tel.ResyncsDelta != 1 || tel.ResyncsFull != 0 {
		t.Fatalf("telemetry = %+v, want exactly one delta resync", tel)
	}
	if tel.ResyncBytes == 0 || int64(tel.ResyncBytes) >= fullBytes {
		t.Fatalf("delta shipped %d bytes, full snapshot is %d — no savings", tel.ResyncBytes, fullBytes)
	}
	if b.LogPos() != 65 {
		t.Fatalf("healed replica position %d, want 65", b.LogPos())
	}
	if ca, cb := checksumOf(t, a), checksumOf(t, b); ca != cb {
		t.Fatalf("checksums differ after delta resync: %s vs %s", ca, cb)
	}
	sameRanking(t, "post-delta", b.Index().TopN("capriati rally", 10), a.Index().TopN("capriati rally", 10))
}

// TestDeltaAndFullResyncConverge: healing the same lagging replica by
// delta or by full snapshot must land on the same content checksum —
// the delta path is an optimisation, not a different consistency
// model.
func TestDeltaAndFullResyncConverge(t *testing.T) {
	run := func(t *testing.T, compactFirst bool) (string, *Cluster) {
		a, b := loggedNode(t), loggedNode(t)
		c := NewReplicatedClusterOf([][]Node{{a, b}}, nil)
		for i, text := range corpus(40, 53) {
			if err := c.AddContext(context.Background(), bat.OID(i+1), "u", text); err != nil {
				t.Fatal(err)
			}
		}
		for i := 40; i < 48; i++ {
			if err := a.Add(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("hingis smash doc%d", i+1)); err != nil {
				t.Fatal(err)
			}
		}
		if compactFirst {
			// Compact A's log past B's position: the suffix B needs is
			// gone, so resync MUST fall back to the full snapshot.
			if err := a.OpLog().Compact(a.LogPos()); err != nil {
				t.Fatal(err)
			}
		}
		if rep := c.CheckReplicas(context.Background(), true); rep.Resynced != 1 {
			t.Fatalf("pass = %+v", rep)
		}
		if ca, cb := checksumOf(t, a), checksumOf(t, b); ca != cb {
			t.Fatalf("checksums differ: %s vs %s", ca, cb)
		}
		return checksumOf(t, b), c
	}
	deltaSum, dc := run(t, false)
	fullSum, fc := run(t, true)
	if deltaSum != fullSum {
		t.Fatalf("delta resync converged to %s, full to %s", deltaSum, fullSum)
	}
	if tel := dc.Telemetry(); tel.ResyncsDelta != 1 || tel.ResyncsFull != 0 {
		t.Fatalf("uncompacted run telemetry = %+v, want delta path", tel)
	}
	if tel := fc.Telemetry(); tel.ResyncsDelta != 0 || tel.ResyncsFull != 1 {
		t.Fatalf("compacted run telemetry = %+v, want full-snapshot fallback", tel)
	}
}

// TestApplyOpsPositionExact: a delta that does not start exactly at
// the target's position is rejected — applying it would silently skip
// or duplicate history.
func TestApplyOpsPositionExact(t *testing.T) {
	n := loggedNode(t)
	ops := []persist.Op{{Doc: 1, URL: "u", Text: "champion"}}
	if err := n.ApplyOps(context.Background(), 3, ops); !errors.Is(err, ErrPosMismatch) {
		t.Fatalf("ahead-of-position delta: %v, want ErrPosMismatch", err)
	}
	if err := n.ApplyOps(context.Background(), 0, ops); err != nil {
		t.Fatal(err)
	}
	if err := n.ApplyOps(context.Background(), 0, ops); !errors.Is(err, ErrPosMismatch) {
		t.Fatalf("stale delta: %v, want ErrPosMismatch", err)
	}
	if n.LogPos() != 1 {
		t.Fatalf("position %d, want 1", n.LogPos())
	}
	// A duplicate op inside an aligned delta advances the position but
	// not the index — replicas stay position- and content-converged.
	if err := n.ApplyOps(context.Background(), 1, ops); err != nil {
		t.Fatal(err)
	}
	if n.LogPos() != 2 || n.Index().DocCount() != 1 {
		t.Fatalf("pos=%d docs=%d, want 2/1", n.LogPos(), n.Index().DocCount())
	}
	// A node with no op log cannot serve deltas.
	bare := NewLocalNode(ir.NewIndex())
	if _, err := bare.OpsSince(context.Background(), 0); !errors.Is(err, ErrDeltaUnavailable) {
		t.Fatalf("log-less OpsSince: %v, want ErrDeltaUnavailable", err)
	}
}

// corruptingSink wraps a LocalNode whose restore silently lands on
// the wrong state — the failure the checksum-verified rejoin
// satellite exists to catch.
type corruptingSink struct {
	*LocalNode
}

func (n *corruptingSink) RestoreState(ctx context.Context, st *ir.IndexState) error {
	if err := n.LocalNode.RestoreState(ctx, st); err != nil {
		return err
	}
	// The restore "succeeds" but the replica's state drifts — a bad
	// disk, a racing writer, a bug.
	return n.LocalNode.Add(ctx, bat.OID(9999), "u", "rogue divergent document")
}

// TestRejoinVerificationQuarantinesBadRestore: a replica whose resync
// lands on a state that does NOT checksum-match the shipped snapshot
// must stay quarantined instead of rejoining with wrong rankings.
func TestRejoinVerificationQuarantinesBadRestore(t *testing.T) {
	good := NewLocalNode(ir.NewIndex())
	bad := &corruptingSink{LocalNode: NewLocalNode(ir.NewIndex())}
	c := NewReplicatedClusterOf([][]Node{{good, bad}}, nil)
	for i, text := range corpus(30, 59) {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", text); err != nil {
			t.Fatal(err)
		}
	}
	// The corrupting sink already drifted during ingest? No — it only
	// corrupts restores. Force a wipe + resync.
	if err := bad.LocalNode.RestoreState(context.Background(), ir.NewIndex().ExportState()); err != nil {
		t.Fatal(err)
	}
	c.markDiverged(0, 1)
	if err := c.ResyncReplica(context.Background(), 0, 1); err == nil {
		t.Fatal("resync onto a corrupting restore reported success")
	}
	if h := c.ReplicaHealth()[0][1]; !h.Diverged {
		t.Fatal("corrupted rejoin was not quarantined")
	}
	if tel := c.Telemetry(); tel.Resyncs != 0 {
		t.Fatalf("corrupted rejoin counted as a resync: %+v", tel)
	}
}

// TestBackoffBounds: delays grow exponentially, stay within the
// jitter envelope, and cap; jittered intervals stay within ±50%.
func TestBackoffBounds(t *testing.T) {
	const base, max = 50 * time.Millisecond, 5 * time.Second
	for attempt := 0; attempt < 12; attempt++ {
		exp := base << attempt
		if exp > max || exp <= 0 {
			exp = max
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(attempt, base, max)
			if d < exp/2 || d > exp+exp/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, exp/2, exp+exp/2)
			}
		}
	}
	for i := 0; i < 200; i++ {
		d := jitterInterval(time.Second)
		if d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("jittered interval %v outside [0.5s, 1.5s)", d)
		}
	}
}
