package dist

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// corpus builds n pseudo-natural documents over a skewed vocabulary,
// the same shape the E11 experiment uses.
func corpus(n int, seed int64) []string {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 30; w++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(rare[rng.Intn(len(rare))])
			} else {
				sb.WriteString(common[rng.Intn(len(common))])
			}
			sb.WriteByte(' ')
		}
		docs[i] = sb.String()
	}
	return docs
}

func sameRanking(t *testing.T, ctx string, got, want []ir.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestMergedEqualsSingle is the core transparency guarantee: for any
// node count, the merged cluster ranking is identical — documents AND
// scores — to the ranking of one index over the whole collection.
func TestMergedEqualsSingle(t *testing.T) {
	docs := corpus(600, 7)
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
	}
	queries := []string{
		"champion winner serve",
		"seles",
		"melbourne trophy volley match",
		"match play game set court ball",
		"quetzalcoatl", // unknown term
	}
	for _, k := range []int{1, 2, 4, 8} {
		c := NewCluster(k, nil)
		for i, d := range docs {
			c.Add(bat.OID(i+1), "u", d)
		}
		for _, q := range queries {
			for _, n := range []int{1, 10, 50, len(docs)} {
				want := single.TopN(q, n)
				sameRanking(t, fmt.Sprintf("k=%d q=%q n=%d parallel", k, q, n), c.TopN(q, n), want)
				sameRanking(t, fmt.Sprintf("k=%d q=%q n=%d sequential", k, q, n), c.TopNSequential(q, n), want)
			}
		}
	}
}

// TestDeterministicTieBreaks: identical documents score identically;
// the merged order must break ties by ascending doc oid, the same
// total order a single index uses, and repeated queries must agree.
func TestDeterministicTieBreaks(t *testing.T) {
	c := NewCluster(4, nil)
	for i := 1; i <= 12; i++ {
		c.Add(bat.OID(i), "u", "champion winner rally")
	}
	got := c.TopN("winner", 12)
	if len(got) != 12 {
		t.Fatalf("results = %d, want 12", len(got))
	}
	for i := range got {
		if got[i].Doc != bat.OID(i+1) {
			t.Fatalf("tie order broken at rank %d: %v", i, got)
		}
		if got[i].Score != got[0].Score {
			t.Fatalf("identical docs scored differently: %v", got)
		}
	}
	for rep := 0; rep < 5; rep++ {
		sameRanking(t, "repeat", c.TopN("winner", 12), got)
	}
}

// TestNodeLoads: the default partitioning is deterministic
// round-robin, so loads differ by at most one and sum to the
// collection size.
func TestNodeLoads(t *testing.T) {
	const n = 103
	c := NewCluster(4, nil)
	for i := 1; i <= n; i++ {
		c.Add(bat.OID(i), "u", "serve rally")
	}
	loads := c.NodeLoads()
	if len(loads) != 4 {
		t.Fatalf("loads = %v", loads)
	}
	sum, min, max := 0, loads[0], loads[0]
	for _, l := range loads {
		sum += l
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if sum != n {
		t.Fatalf("loads %v sum to %d, want %d", loads, sum, n)
	}
	if max-min > 1 {
		t.Fatalf("loads %v unbalanced", loads)
	}
	if c.DocCount() != n || c.Size() != 4 {
		t.Fatalf("DocCount=%d Size=%d", c.DocCount(), c.Size())
	}
}

// TestCustomPartition: a caller-supplied partition function routes
// every document where it says.
func TestCustomPartition(t *testing.T) {
	c := NewCluster(3, &Options{Partition: func(doc bat.OID, k int) int { return 1 }})
	for i := 1; i <= 5; i++ {
		c.Add(bat.OID(i), "u", "winner")
	}
	if loads := c.NodeLoads(); loads[0] != 0 || loads[1] != 5 || loads[2] != 0 {
		t.Fatalf("loads = %v, want [0 5 0]", loads)
	}
	if got := c.TopN("winner", 10); len(got) != 5 {
		t.Fatalf("results = %v", got)
	}
}

// TestAddAfterQuery: global statistics must refresh when documents
// arrive between queries, keeping the merged ranking identical to a
// single index at every point in the stream.
func TestAddAfterQuery(t *testing.T) {
	docs := corpus(120, 3)
	single := ir.NewIndex()
	c := NewCluster(4, nil)
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
		c.Add(bat.OID(i+1), "u", d)
		if (i+1)%40 == 0 {
			want := single.TopN("champion serve", 10)
			sameRanking(t, fmt.Sprintf("after %d docs", i+1), c.TopN("champion serve", 10), want)
		}
	}
}

// TestParallelQueriesRace exercises the concurrent read path under
// the race detector: many goroutines issue parallel and sequential
// queries against one shared cluster at once.
func TestParallelQueriesRace(t *testing.T) {
	docs := corpus(300, 11)
	c := NewCluster(4, nil)
	for i, d := range docs {
		c.Add(bat.OID(i+1), "u", d)
	}
	want := c.TopN("champion winner serve", 10) // freeze + warm stats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var got []ir.Result
				if g%2 == 0 {
					got = c.TopN("champion winner serve", 10)
				} else {
					got = c.TopNSequential("champion winner serve", 10)
				}
				if len(got) != len(want) || got[0] != want[0] {
					t.Errorf("g=%d i=%d: got %v, want %v", g, i, got, want)
					return
				}
				_ = c.NodeLoads()
				_ = c.GlobalStats()
			}
		}(g)
	}
	wg.Wait()
}

// TestGlobalStatsMatchSingle: the aggregated statistics equal the
// statistics of one index over the whole collection.
func TestGlobalStatsMatchSingle(t *testing.T) {
	docs := corpus(200, 9)
	single := ir.NewIndex()
	c := NewCluster(4, nil)
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
		c.Add(bat.OID(i+1), "u", d)
	}
	want := single.StatsLocal()
	got := c.GlobalStats()
	if got.Docs != want.Docs || got.TotalDF != want.TotalDF {
		t.Fatalf("stats = {Docs:%d TotalDF:%d}, want {Docs:%d TotalDF:%d}",
			got.Docs, got.TotalDF, want.Docs, want.TotalDF)
	}
	for term, df := range want.DF {
		if got.DF[term] != df {
			t.Fatalf("df(%s) = %d, want %d", term, got.DF[term], df)
		}
	}
}
