package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
	"dlsearch/internal/server"
)

// loggedServer boots a node server whose ingest is write-ahead logged
// (and, with a data dir, snapshot-compacted) like a real dlserve node.
func loggedServer(t *testing.T, dataDir string) (*httptest.Server, *persist.OpLog) {
	t.Helper()
	l, err := persist.OpenOpLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	srv := httptest.NewServer(server.NewNodeServer(ir.NewIndex(), &server.NodeConfig{
		DataDir: dataDir,
		OpLog:   l,
	}).Handler())
	t.Cleanup(srv.Close)
	return srv, l
}

// TestHTTPDeltaResync: the delta path end to end over real HTTP — a
// lagging replica is healed via GET /node/oplog + POST /node/oplog,
// shipping only the missing suffix, checksum-verified before rejoin.
func TestHTTPDeltaResync(t *testing.T) {
	srvA, _ := loggedServer(t, "")
	srvB, _ := loggedServer(t, "")
	a := dist.NewRemoteNode(srvA.URL, srvA.Client())
	b := dist.NewRemoteNode(srvB.URL, srvB.Client())
	c := dist.NewReplicatedClusterOf([][]dist.Node{{a, b}}, &dist.Options{NodeTimeout: 5 * time.Second})
	for i, text := range remoteCorpus(50, 61) {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", text); err != nil {
			t.Fatal(err)
		}
	}
	// B misses a tail of writes (its process was down; the coordinator
	// kept writing to A).
	for i := 50; i < 56; i++ {
		if err := a.Add(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("volley smash doc%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	la, err := a.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if la.LogPos != 56 || lb.LogPos != 50 {
		t.Fatalf("positions a=%d b=%d, want 56/50", la.LogPos, lb.LogPos)
	}
	rep := c.CheckReplicas(context.Background(), true)
	if rep.Detected != 1 || rep.Resynced != 1 {
		t.Fatalf("anti-entropy pass = %+v", rep)
	}
	if tel := c.Telemetry(); tel.ResyncsDelta != 1 || tel.ResyncsFull != 0 || tel.ResyncBytes == 0 {
		t.Fatalf("telemetry = %+v, want one delta resync over the wire", tel)
	}
	ca, err := a.LoadChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.LoadChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ca.Checksum != cb.Checksum || cb.LogPos != 56 {
		t.Fatalf("healed replica: pos=%d checksum %s vs %s", cb.LogPos, cb.Checksum, ca.Checksum)
	}
	// The healed replica serves identically: kill A, search must stay
	// complete and rank the delta's documents.
	srvA.Close()
	sr, err := c.Search(context.Background(), "volley smash", 10)
	if err != nil || !sr.Complete() {
		t.Fatalf("post-heal search: %v / %+v", err, sr)
	}
}

// TestHTTPOpsSinceCompactedIs416: a snapshot compacts the server's
// log; asking for a position below the new base must map to
// ErrDeltaUnavailable (HTTP 416), steering the caller to the full
// snapshot path instead of an empty delta.
func TestHTTPOpsSinceCompactedIs416(t *testing.T) {
	srv, _ := loggedServer(t, t.TempDir())
	rn := dist.NewRemoteNode(srv.URL, srv.Client())
	for i := 0; i < 10; i++ {
		if err := rn.Add(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("champion doc%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Before compaction the whole history is servable.
	ops, err := rn.OpsSince(context.Background(), 0)
	if err != nil || len(ops) != 10 {
		t.Fatalf("OpsSince(0) = %d ops, %v", len(ops), err)
	}
	// POST /node/snapshot persists and compacts to position 10.
	resp, err := srv.Client().Post(srv.URL+"/node/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d", resp.StatusCode)
	}
	if _, err := rn.OpsSince(context.Background(), 0); !errors.Is(err, dist.ErrDeltaUnavailable) {
		t.Fatalf("OpsSince below compacted base: %v, want ErrDeltaUnavailable", err)
	}
	if ops, err := rn.OpsSince(context.Background(), 10); err != nil || len(ops) != 0 {
		t.Fatalf("OpsSince(10) = %d ops, %v", len(ops), err)
	}
}

// TestHTTPApplyOpsMisaligned: a misaligned delta is rejected with
// HTTP 409 → ErrPosMismatch, and malformed /node/oplog requests are
// 400s, not crashes.
func TestHTTPApplyOpsMisaligned(t *testing.T) {
	srv, _ := loggedServer(t, "")
	rn := dist.NewRemoteNode(srv.URL, srv.Client())
	ops := []persist.Op{{Doc: 1, URL: "u", Text: "champion"}}
	if err := rn.ApplyOps(context.Background(), 7, ops); !errors.Is(err, dist.ErrPosMismatch) {
		t.Fatalf("misaligned delta: %v, want ErrPosMismatch", err)
	}
	if err := rn.ApplyOps(context.Background(), 0, ops); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"/node/oplog?from=abc", "/node/oplog"} {
		resp, err := srv.Client().Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if bad == "/node/oplog?from=abc" && resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
	// A garbage POST body fails closed.
	resp, err := srv.Client().Post(srv.URL+"/node/oplog", "application/octet-stream", strings.NewReader("not a delta"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage delta: HTTP %d, want 400", resp.StatusCode)
	}
}
