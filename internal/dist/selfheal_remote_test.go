package dist_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/server"
)

// TestHTTPResyncByteIdentical is the tentpole's end-to-end proof over
// real HTTP: kill a replica's state on a live R=2 cluster of node
// servers, let one anti-entropy pass detect the divergence and pull
// the healthy member's snapshot over GET /node/snapshot into
// POST /node/restore, then force the healed replica to serve — the
// ranking must be byte-identical to the pre-fault one with
// complete:true, with zero operator action.
func TestHTTPResyncByteIdentical(t *testing.T) {
	servers := make([]*httptest.Server, 4)
	nodes := make([]dist.Node, 4)
	for i := range servers {
		servers[i] = httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(servers[i].Close)
		nodes[i] = dist.NewRemoteNode(servers[i].URL, servers[i].Client())
	}
	c, err := dist.NewReplicatedCluster(nodes, 2, &dist.Options{NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range remoteCorpus(80, 11) {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{"champion winner serve", "seles", "melbourne trophy volley match"}
	before := make([]*dist.SearchResult, len(queries))
	for i, q := range queries {
		sr, err := c.Search(context.Background(), q, 10)
		if err != nil || !sr.Complete() {
			t.Fatalf("pre-fault %q: %v / %+v", q, err, sr)
		}
		before[i] = sr
	}
	// Kill replica (0,1)'s state: the node now serves an empty fragment
	// — the HTTP equivalent of a process restarted with a wiped data
	// dir. The cluster has not noticed anything.
	target := c.ReplicaAt(0, 1).(*dist.RemoteNode)
	if err := target.RestoreState(context.Background(), ir.NewIndex().ExportState()); err != nil {
		t.Fatal(err)
	}
	if l, err := target.LoadChecksum(context.Background()); err != nil || l.Docs != 0 {
		t.Fatalf("wipe did not take: %v %+v", err, l)
	}
	// One anti-entropy pass: checksum mismatch detected, replica
	// resynced from its group over the wire.
	rep := c.CheckReplicas(context.Background(), true)
	if rep.Detected != 1 || rep.Resynced != 1 {
		t.Fatalf("anti-entropy pass = %+v", rep)
	}
	healed, err := target.LoadChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.ReplicaAt(0, 0).(*dist.RemoteNode).LoadChecksum(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if healed.Docs != ref.Docs || healed.Checksum != ref.Checksum {
		t.Fatalf("healed replica differs from its group:\n ref    %d %s\n healed %d %s",
			ref.Docs, ref.Checksum, healed.Docs, healed.Checksum)
	}
	// Force the healed replica to serve partition 0: kill its partner.
	servers[0].Close()
	for i, q := range queries {
		sr, err := c.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("post-heal %q: %v", q, err)
		}
		if !sr.Complete() {
			t.Fatalf("post-heal %q degraded: %+v", q, sr)
		}
		if len(sr.Results) != len(before[i].Results) {
			t.Fatalf("post-heal %q: %d results, want %d", q, len(sr.Results), len(before[i].Results))
		}
		for j := range sr.Results {
			if sr.Results[j] != before[i].Results[j] {
				t.Fatalf("post-heal %q rank %d = %+v, want %+v", q, j, sr.Results[j], before[i].Results[j])
			}
		}
	}
}

// TestHTTPBatchReplayIdentical: replaying a batch against node servers
// over HTTP (the lost-acknowledgement retry) changes nothing — the
// server-side LocalNode de-duplicates per oid.
func TestHTTPBatchReplayIdentical(t *testing.T) {
	srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
	t.Cleanup(srv.Close)
	c := dist.NewClusterOf([]dist.Node{dist.NewRemoteNode(srv.URL, srv.Client())}, nil)
	docs := make([]dist.Doc, 0, 20)
	for i, text := range remoteCorpus(20, 23) {
		docs = append(docs, dist.Doc{OID: bat.OID(i + 1), URL: "u", Text: text})
	}
	if err := c.AddBatchContext(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	want, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBatchContext(context.Background(), docs); err != nil {
		t.Fatalf("replay rejected: %v", err)
	}
	got, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("replay changed the ranking size: %d vs %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("replay changed rank %d: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
}
