package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// epochRankCache is a minimal RankingCache with the same validation
// rule as the serving layer's real cache (core.QueryCache): an entry
// is served only while the index's freeze epoch and global-statistics
// fingerprint still match the ones it was stored under. Defined here
// because dist cannot import core (core's engine backend imports
// dist).
type epochRankCache struct {
	key     string
	epoch   uint64
	totalDF int
	docs    int
	res     []ir.Result
}

func (c *epochRankCache) Ranking(ix *ir.Index, query string, n int, global ir.Stats) ([]ir.Result, bool) {
	fresh := c.key == query && c.epoch == ix.Epoch() &&
		c.totalDF == global.TotalDF && c.docs == global.Docs
	if c.res == nil || !fresh || len(c.res) < n && len(c.res) < ix.DocCount() {
		return nil, false
	}
	return c.res, true
}

func (c *epochRankCache) StoreRanking(ix *ir.Index, query string, n int, global ir.Stats, res []ir.Result) {
	c.key, c.epoch, c.res = query, ix.Epoch(), res
	c.totalDF, c.docs = global.TotalDF, global.Docs
}

// groupChecksums probes every replica of partition g for a FRESH
// content checksum.
func groupChecksums(t *testing.T, c *Cluster, g int) []string {
	t.Helper()
	out := make([]string, len(c.groups[g]))
	for r, node := range c.groups[g] {
		cl, ok := node.(ChecksumLoader)
		if !ok {
			t.Fatalf("replica %d/%d cannot load checksums", g, r)
		}
		l, err := cl.LoadChecksum(context.Background())
		if err != nil {
			t.Fatalf("load %d/%d: %v", g, r, err)
		}
		out[r] = l.Checksum
	}
	return out
}

// TestIdempotentIngestReplay is the headline-bugfix regression: a
// batch whose acknowledgement was lost is re-posted verbatim, and the
// replay must be a complete no-op — scores byte-identical, no tf
// double-fold, replicas still checksum-equal.
func TestIdempotentIngestReplay(t *testing.T) {
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = NewLocalNode(ir.NewIndex())
	}
	c, err := NewReplicatedCluster(nodes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]Doc, 0, 40)
	for i, text := range corpus(40, 17) {
		docs = append(docs, Doc{OID: bat.OID(i + 1), URL: "u", Text: text})
	}
	if err := c.AddBatchContext(context.Background(), docs); err != nil {
		t.Fatal(err)
	}
	queries := []string{"champion winner serve", "seles", "match play"}
	before := make([][]ir.Result, len(queries))
	for i, q := range queries {
		before[i] = c.TopN(q, 10)
	}
	sums := groupChecksums(t, c, 0)
	// The replay: every partition must fully (re-)commit without error.
	results := c.AddBatchResults(context.Background(), docs)
	for _, p := range results {
		if p.Err != nil || p.Committed != p.Replicas {
			t.Fatalf("replayed partition %d: committed %d/%d, err %v",
				p.Partition, p.Committed, p.Replicas, p.Err)
		}
	}
	for i, q := range queries {
		sameRanking(t, "replay "+q, c.TopN(q, 10), before[i])
	}
	for g := 0; g < c.Size(); g++ {
		post := groupChecksums(t, c, g)
		if post[0] != post[1] {
			t.Fatalf("partition %d replicas diverged after replay: %v", g, post)
		}
	}
	if g0 := groupChecksums(t, c, 0); g0[0] != sums[0] {
		t.Fatalf("replay changed partition 0 content: %s -> %s", sums[0], g0[0])
	}
	// Single-document replay through Add is equally inert.
	if err := c.AddContext(context.Background(), docs[0].OID, "u", docs[0].Text); err != nil {
		t.Fatal(err)
	}
	sameRanking(t, "re-add", c.TopN(queries[0], 10), before[0])
}

// ackLostNode applies writes on its inner LocalNode but loses the
// acknowledgement while `lossy` is set — the timed-out-after-applying
// replica that made retries unsafe before idempotent ingest. It
// deliberately does NOT embed the concrete *LocalNode, so only the
// methods delegated here exist; IdempotentIngest is forwarded because
// the inner node really does de-duplicate.
type ackLostNode struct {
	inner *LocalNode
	lossy atomic.Bool
}

var errAckLost = errors.New("deadline exceeded (ack lost)")

func (n *ackLostNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	err := n.inner.Add(ctx, doc, url, text)
	if n.lossy.Load() {
		return errAckLost
	}
	return err
}

func (n *ackLostNode) Stats(ctx context.Context) (ir.Stats, error) { return n.inner.Stats(ctx) }
func (n *ackLostNode) TopNWithStats(ctx context.Context, q string, topn int, g ir.Stats) ([]ir.Result, error) {
	return n.inner.TopNWithStats(ctx, q, topn, g)
}
func (n *ackLostNode) SearchPlan(ctx context.Context, q string, p ir.EvalPlan, g ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	return n.inner.SearchPlan(ctx, q, p, g)
}
func (n *ackLostNode) Load(ctx context.Context) (NodeLoad, error) { return n.inner.Load(ctx) }
func (n *ackLostNode) LoadChecksum(ctx context.Context) (NodeLoad, error) {
	return n.inner.LoadChecksum(ctx)
}
func (n *ackLostNode) IdempotentIngest() {}

// TestAckLostRetryHealsGroup: a replica that APPLIES a batch but loses
// the acknowledgement leaves the partition degraded; retrying the same
// documents used to double-fold tf on that replica — with per-oid
// idempotent ingest the retry skips the applied copies, converges the
// group, and the anti-entropy check then lifts the stale quarantine
// because the checksums match.
func TestAckLostRetryHealsGroup(t *testing.T) {
	flaky := &ackLostNode{inner: NewLocalNode(ir.NewIndex())}
	healthy := NewLocalNode(ir.NewIndex())
	c := NewReplicatedClusterOf([][]Node{{healthy, flaky}}, nil)
	flaky.lossy.Store(true)
	docs := []Doc{
		{OID: 1, URL: "u", Text: "champion trophy melbourne"},
		{OID: 2, URL: "u", Text: "winner serve ace"},
	}
	results := c.AddBatchResults(context.Background(), docs)
	p := results[0]
	if p.Committed != 1 || p.Err == nil || p.Ambiguous {
		t.Fatalf("lost-ack outcome: %+v", p)
	}
	if h := c.ReplicaHealth()[0][1]; !h.Diverged {
		t.Fatal("ack-losing replica not quarantined")
	}
	// The replica HAS the documents — contents already equal — but the
	// cluster cannot know that yet.
	want := c.TopN("champion winner", 10)
	// Retry after the fault clears: skipped on both replicas, full commit.
	flaky.lossy.Store(false)
	retry := c.AddBatchResults(context.Background(), docs)
	if p := retry[0]; p.Err != nil || p.Committed != 2 {
		t.Fatalf("retry outcome: %+v", p)
	}
	sameRanking(t, "after retry", c.TopN("champion winner", 10), want)
	sums := groupChecksums(t, c, 0)
	if sums[0] != sums[1] {
		t.Fatalf("replicas differ after retry: %v", sums)
	}
	// Anti-entropy observes matching checksums and clears the stale
	// quarantine — no resync needed, nothing detected.
	rep := c.CheckReplicas(context.Background(), true)
	if rep.Cleared != 1 || rep.Detected != 0 || rep.Resynced != 0 {
		t.Fatalf("anti-entropy pass = %+v", rep)
	}
	if h := c.ReplicaHealth()[0][1]; h.Diverged {
		t.Fatal("quarantine not lifted despite matching checksums")
	}
	sr, err := c.Search(context.Background(), "champion winner", 10)
	if err != nil || !sr.Complete() {
		t.Fatalf("post-heal search: %v / %+v", err, sr)
	}
}

// idemFailAfterNode is an IDEMPOTENT node without batch support that
// accepts its first `allow` adds, then rejects. Unlike the PR 4
// addFailAfterNode, the partial prefix must NOT be flagged Ambiguous:
// a replay of the whole partition is safe, the prefix skips itself.
type idemFailAfterNode struct {
	inner *LocalNode
	allow int
	seen  atomic.Int64
}

func (n *idemFailAfterNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	if int(n.seen.Add(1)) > n.allow {
		return errAckLost
	}
	return n.inner.Add(ctx, doc, url, text)
}

func (n *idemFailAfterNode) Stats(ctx context.Context) (ir.Stats, error) { return n.inner.Stats(ctx) }
func (n *idemFailAfterNode) TopNWithStats(ctx context.Context, q string, topn int, g ir.Stats) ([]ir.Result, error) {
	return n.inner.TopNWithStats(ctx, q, topn, g)
}
func (n *idemFailAfterNode) SearchPlan(ctx context.Context, q string, p ir.EvalPlan, g ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	return n.inner.SearchPlan(ctx, q, p, g)
}
func (n *idemFailAfterNode) Load(ctx context.Context) (NodeLoad, error) { return n.inner.Load(ctx) }
func (n *idemFailAfterNode) LoadChecksum(ctx context.Context) (NodeLoad, error) {
	return n.inner.LoadChecksum(ctx)
}
func (n *idemFailAfterNode) IdempotentIngest() {}

// TestAmbiguityShrinksForIdempotentNodes: the partial-prefix outcome
// that is Ambiguous against an opaque third-party node is plain
// retry-safe Failed() against an idempotent one.
func TestAmbiguityShrinksForIdempotentNodes(t *testing.T) {
	n := &idemFailAfterNode{inner: NewLocalNode(ir.NewIndex()), allow: 1}
	c := NewClusterOf([]Node{n}, nil)
	docs := []Doc{
		{OID: 1, Text: "champion trophy"},
		{OID: 2, Text: "winner serve"},
		{OID: 3, Text: "volley smash"},
	}
	p := c.AddBatchResults(context.Background(), docs)[0]
	if p.Committed != 0 || p.Ambiguous {
		t.Fatalf("idempotent partial prefix flagged ambiguous: %+v", p)
	}
	if !p.Failed() {
		t.Fatal("idempotent partial prefix not retry-safe")
	}
	// And the retry proves it: the applied prefix skips itself.
	n.allow = 1 << 30
	if p := c.AddBatchResults(context.Background(), docs)[0]; p.Err != nil || p.Committed != 1 {
		t.Fatalf("retry outcome: %+v", p)
	}
	res := c.TopN("champion", 5)
	if len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("content after replay: %+v", res)
	}
}

// breakableNode is a LocalNode whose QUERY paths can be switched off —
// unlike readFailNode it embeds the concrete node, so the resync
// capabilities (StateSource/StateSink, IdempotentIngest) stay visible
// and it can act as a resync source while its reads are broken.
type breakableNode struct {
	*LocalNode
	broken atomic.Bool
}

func (n *breakableNode) TopNWithStats(ctx context.Context, q string, topn int, g ir.Stats) ([]ir.Result, error) {
	if n.broken.Load() {
		return nil, errReadBroken
	}
	return n.LocalNode.TopNWithStats(ctx, q, topn, g)
}

func (n *breakableNode) SearchPlan(ctx context.Context, q string, p ir.EvalPlan, g ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if n.broken.Load() {
		return nil, ir.QualityEstimate{}, errReadBroken
	}
	return n.LocalNode.SearchPlan(ctx, q, p, g)
}

// TestResyncReplicaHealsWipedReplica is the tentpole's core loop in
// process form: wipe one replica of a live R=2 cluster, let
// CheckReplicas detect the divergence and resync it from the group,
// then force the healed replica to serve and require the ranking
// byte-identical and complete — zero operator action.
func TestResyncReplicaHealsWipedReplica(t *testing.T) {
	primary := &breakableNode{LocalNode: NewLocalNode(ir.NewIndex())}
	secondary := NewLocalNode(ir.NewIndex())
	c := NewReplicatedClusterOf([][]Node{{primary, secondary}}, nil)
	for i, d := range corpus(60, 5) {
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatal(err)
		}
	}
	want, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil || !want.Complete() {
		t.Fatalf("pre-fault search: %v / %+v", err, want)
	}
	// Wipe the secondary: its whole fragment state is replaced by an
	// empty one (the in-process equivalent of a node restarted with a
	// wiped data dir).
	if err := secondary.RestoreState(context.Background(), ir.NewIndex().ExportState()); err != nil {
		t.Fatal(err)
	}
	// Detection only: the empty replica is flagged, not yet healed.
	rep := c.CheckReplicas(context.Background(), false)
	if rep.Detected != 1 || rep.Resynced != 0 {
		t.Fatalf("detection pass = %+v", rep)
	}
	if h := c.ReplicaHealth()[0][1]; !h.Diverged {
		t.Fatal("wiped replica not flagged diverged")
	}
	if c.Telemetry().DivergenceDetected != 1 {
		t.Fatalf("telemetry = %+v", c.Telemetry())
	}
	// Repair pass: resync from the surviving member.
	rep = c.CheckReplicas(context.Background(), true)
	if rep.Resynced != 1 {
		t.Fatalf("repair pass = %+v", rep)
	}
	if h := c.ReplicaHealth()[0][1]; h.Diverged || h.LastResyncUnix == 0 {
		t.Fatalf("healed replica health = %+v", h)
	}
	if tel := c.Telemetry(); tel.Resyncs != 1 {
		t.Fatalf("telemetry = %+v", tel)
	}
	sums := groupChecksums(t, c, 0)
	if sums[0] != sums[1] {
		t.Fatalf("checksums differ after resync: %v", sums)
	}
	// Force the healed replica to serve: break the primary.
	primary.broken.Store(true)
	got, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Complete() {
		t.Fatalf("post-resync search degraded: %+v", got)
	}
	sameRanking(t, "served by healed replica", got.Results, want.Results)
}

// TestAntiEntropyForeignFragmentCannotBeReference: "most documents
// wins" must never elect a replica holding a FOREIGN fragment (wrong
// -resync peer, copied data dir) as the group's truth — repair would
// erase the partition's committed documents from the correct replicas.
// The tripwire: a correct replica's documents all satisfy
// partition(doc) == g, so a bigger replica whose MaxDoc maps elsewhere
// is disqualified, flagged, and healed FROM the correct member.
func TestAntiEntropyForeignFragmentCannotBeReference(t *testing.T) {
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = NewLocalNode(ir.NewIndex())
	}
	c, err := NewReplicatedCluster(nodes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for oid := bat.OID(1); oid <= 8; oid++ {
		if err := c.AddContext(context.Background(), oid, "u", fmt.Sprintf("champion doc%d", oid)); err != nil {
			t.Fatal(err)
		}
	}
	correct := groupChecksums(t, c, 0)[0]
	// Wrongly seed replica (0,1) with partition 1's oid pattern (even
	// oids → partition 1 under round-robin) and MORE documents than the
	// correct replica holds.
	foreign := ir.NewIndex()
	for oid := bat.OID(2); oid <= 20; oid += 2 {
		foreign.Add(oid, "u", fmt.Sprintf("foreign doc%d", oid))
	}
	if err := nodes[1].(*LocalNode).RestoreState(context.Background(), foreign.ExportState()); err != nil {
		t.Fatal(err)
	}
	rep := c.CheckReplicas(context.Background(), true)
	if rep.Detected != 1 || rep.Resynced != 1 {
		t.Fatalf("pass = %+v", rep)
	}
	sums := groupChecksums(t, c, 0)
	if sums[0] != correct || sums[1] != correct {
		t.Fatalf("repair erased the committed fragment: want %s, got %v", correct, sums)
	}
}

// TestResyncReplicaNoSource: a single-replica partition has nothing to
// heal from, and a group whose only other member is quarantined
// refuses to copy divergence around.
func TestResyncReplicaNoSource(t *testing.T) {
	solo := NewClusterOf([]Node{NewLocalNode(ir.NewIndex())}, nil)
	if err := solo.ResyncReplica(context.Background(), 0, 0); err == nil {
		t.Fatal("single-replica resync did not fail")
	}
	a, b := NewLocalNode(ir.NewIndex()), NewLocalNode(ir.NewIndex())
	c := NewReplicatedClusterOf([][]Node{{a, b}}, nil)
	c.markDiverged(0, 0)
	if err := c.ResyncReplica(context.Background(), 0, 1); err == nil {
		t.Fatal("resync from an all-diverged group did not fail")
	}
}

// TestResyncRacingAddsLosesNothing is the satellite race guarantee:
// adds racing pull-snapshot imports must neither deadlock nor lose
// committed documents. Writers hammer the cluster while resyncs run in
// a loop; afterwards both replicas must hold every committed document
// and digest identically. Run under -race in CI.
func TestResyncRacingAddsLosesNothing(t *testing.T) {
	a, b := NewLocalNode(ir.NewIndex()), NewLocalNode(ir.NewIndex())
	c := NewReplicatedClusterOf([][]Node{{a, b}}, nil)
	const writers, perWriter = 4, 50
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.ResyncReplica(context.Background(), 0, 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				oid := bat.OID(w*perWriter + i + 1)
				text := fmt.Sprintf("champion doc%d trophy", oid)
				if err := c.AddContext(context.Background(), oid, "u", text); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	la, _ := a.LoadChecksum(context.Background())
	lb, _ := b.LoadChecksum(context.Background())
	if la.Docs != writers*perWriter || lb.Docs != writers*perWriter {
		t.Fatalf("docs after churn: %d / %d, want %d", la.Docs, lb.Docs, writers*perWriter)
	}
	if la.Checksum != lb.Checksum {
		t.Fatalf("replicas diverged under churn:\n a %s\n b %s", la.Checksum, lb.Checksum)
	}
}

// TestRestoreInvalidatesRankingCache is the cache-poisoning satellite
// regression: a restore that swaps in content with the SAME freeze
// epoch and the SAME global-statistics fingerprint as the content it
// replaces must still invalidate every cached RES set — the epoch
// advances strictly past the pre-restore epoch, and the ranking served
// afterwards reflects the restored content, never the cached one.
func TestRestoreInvalidatesRankingCache(t *testing.T) {
	mk := func(first, second string) *ir.Index {
		ix := ir.NewIndex()
		ix.Add(1, "u", first)
		ix.Add(2, "u", second)
		ix.Freeze()
		return ix
	}
	// Same fingerprint (Docs, TotalDF), same epoch, swapped contents:
	// under content A doc 1 wins "melbourne", under content B doc 2.
	ixA := mk("melbourne melbourne", "trophy")
	ixB := mk("trophy", "melbourne melbourne")
	if ixA.Epoch() != ixB.Epoch() {
		t.Fatalf("fixture: epochs differ (%d vs %d)", ixA.Epoch(), ixB.Epoch())
	}
	global := ir.MergeStats(ixA.StatsLocal())
	node := NewLocalNode(ixA)
	qc := &epochRankCache{}
	node.SetRankingCache(qc)
	node.SetResolver(func(ix *ir.Index, q string) ([]string, []bat.OID) {
		return ix.ResolveQuery(q)
	})
	res, err := node.TopNWithStats(context.Background(), "melbourne", 5, global)
	if err != nil || len(res) == 0 || res[0].Doc != 1 {
		t.Fatalf("pre-restore ranking: %v %+v", err, res)
	}
	// Cache it hot (second call hits the RES-set cache).
	if res, _ = node.TopNWithStats(context.Background(), "melbourne", 5, global); res[0].Doc != 1 {
		t.Fatalf("cached ranking: %+v", res)
	}
	preEpoch := node.Index().Epoch()
	if err := node.RestoreState(context.Background(), ixB.ExportState()); err != nil {
		t.Fatal(err)
	}
	if e := node.Index().Epoch(); e <= preEpoch {
		t.Fatalf("restore did not advance the epoch: %d -> %d", preEpoch, e)
	}
	res, err = node.TopNWithStats(context.Background(), "melbourne", 5, global)
	if err != nil || len(res) == 0 {
		t.Fatalf("post-restore ranking: %v %+v", err, res)
	}
	if res[0].Doc != 2 {
		t.Fatalf("cache served the pre-restore ranking: %+v", res)
	}
}

// TestRestoreStateFailsClosed: an inconsistent state leaves the node
// serving its previous fragment untouched.
func TestRestoreStateFailsClosed(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "u", "champion trophy")
	node := NewLocalNode(ix)
	bad := ix.ExportState()
	bad.Terms[0].Postings = []ir.Posting{{Doc: 999, TF: 1}} // unknown document
	if err := node.RestoreState(context.Background(), bad); err == nil {
		t.Fatal("inconsistent state accepted")
	}
	res, err := node.TopNWithStats(context.Background(), "champion", 5, ir.MergeStats(ix.StatsLocal()))
	if err != nil || len(res) != 1 || res[0].Doc != 1 {
		t.Fatalf("previous fragment lost after rejected restore: %v %+v", err, res)
	}
}
