package dist_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/server"
)

// startReplicatedCluster spins up parts*replicas httptest node servers
// and slices them into a replicated cluster of `parts` partitions with
// `replicas` replicas each. The returned servers are indexed
// [partition*replicas + replica], so killing servers[p*replicas+r]
// kills replica r of partition p.
func startReplicatedCluster(t testing.TB, parts, replicas int) (*dist.Cluster, []*httptest.Server) {
	t.Helper()
	n := parts * replicas
	nodes := make([]dist.Node, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(srv.Close)
		servers[i] = srv
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	c, err := dist.NewReplicatedCluster(nodes, replicas, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers
}

// fillCluster adds the corpus through the cluster (fanning out to all
// replicas) and returns a single index over the same documents.
func fillCluster(t testing.TB, c *dist.Cluster, docs []string) *ir.Index {
	t.Helper()
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
		if err := c.AddContext(context.Background(), bat.OID(i+1), "u", d); err != nil {
			t.Fatalf("add %d: %v", i+1, err)
		}
	}
	return single
}

func assertRanking(t *testing.T, ctx string, got, want []ir.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestReplicatedClusterEqualsSingle: with every node healthy, a
// replicated cluster returns exactly the single-index ranking — the
// write fan-out keeps the replicas identical and the read path picks
// one replica per partition, never double-counting a document.
func TestReplicatedClusterEqualsSingle(t *testing.T) {
	docs := remoteCorpus(300, 53)
	for _, shape := range []struct{ parts, replicas int }{{1, 2}, {2, 2}, {2, 3}} {
		c, _ := startReplicatedCluster(t, shape.parts, shape.replicas)
		single := fillCluster(t, c, docs)
		for _, q := range []string{"champion winner serve", "seles", "quetzalcoatl"} {
			for _, n := range []int{1, 10, 50} {
				sr, err := c.Search(context.Background(), q, n)
				if err != nil {
					t.Fatalf("%+v: %v", shape, err)
				}
				if !sr.Complete() || sr.FailoverTotal() != 0 {
					t.Fatalf("%+v q=%q: degraded on a healthy cluster: %+v", shape, q, sr)
				}
				assertRanking(t, fmt.Sprintf("%+v q=%q n=%d", shape, q, n), sr.Results, single.TopN(q, n))
			}
		}
		if loads := c.NodeLoads(); len(loads) != shape.parts {
			t.Fatalf("%+v: %d partition loads, want %d", shape, len(loads), shape.parts)
		}
	}
}

// TestReplicatedKillAnyOneNode is the acceptance guarantee of the
// replication subsystem: with replication factor 2, killing ANY single
// node leaves the merged /search ranking byte-identical to the exact
// single-index ranking — scores included — with the dead replica's
// partition failing over instead of dropping, and global statistics
// re-aggregating through the surviving replicas (no stale fallback).
func TestReplicatedKillAnyOneNode(t *testing.T) {
	const parts, replicas = 2, 2
	docs := remoteCorpus(300, 59)
	queries := []string{"champion winner serve", "melbourne trophy volley match", "seles"}
	for kill := 0; kill < parts*replicas; kill++ {
		c, servers := startReplicatedCluster(t, parts, replicas)
		single := fillCluster(t, c, docs)
		// Warm statistics, then kill one node and invalidate as if
		// documents kept arriving — the re-aggregation must succeed
		// through the surviving replicas.
		if _, err := c.GlobalStatsContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		servers[kill].Close()
		c.InvalidateStats()
		killedPart := kill / replicas
		for qi, q := range queries {
			for _, n := range []int{1, 10, 50} {
				sr, err := c.Search(context.Background(), q, n)
				if err != nil {
					t.Fatalf("kill=%d q=%q: %v", kill, q, err)
				}
				if sr.StaleStats {
					t.Fatalf("kill=%d q=%q: stats went stale despite a live replica", kill, q)
				}
				if len(sr.Dropped) != 0 {
					t.Fatalf("kill=%d q=%q: partitions dropped: %v (%v)", kill, q, sr.Dropped, sr.Errs)
				}
				if !sr.Complete() {
					t.Fatalf("kill=%d q=%q: Complete() = false", kill, q)
				}
				assertRanking(t, fmt.Sprintf("kill=%d q=%q n=%d", kill, q, n), sr.Results, single.TopN(q, n))
				if qi == 0 && n == 1 {
					// The very first search after the kill must have
					// failed over on the dead replica's partition (the
					// stats probe may already have demoted it, in which
					// case routing avoids it — either way never a drop).
					if f, ok := sr.Failovers[killedPart]; ok && f < 1 {
						t.Fatalf("kill=%d: recorded %d failovers on partition %d", kill, f, killedPart)
					}
				}
			}
		}
		// The observability probe must find the dead replica
		// unreachable and its partner fine.
		infos := c.ReplicaInfoContext(context.Background())
		if infos[killedPart][kill%replicas].Err == nil {
			t.Fatalf("kill=%d: dead replica probes reachable", kill)
		}
		if infos[killedPart][(kill+1)%replicas].Err != nil {
			t.Fatalf("kill=%d: surviving replica probes unreachable: %v",
				kill, infos[killedPart][(kill+1)%replicas].Err)
		}
		// Later searches must not burn attempts on a replica known
		// dead: either routing learned (primary killed, failover
		// recorded it) or the corpse was never preferred (standby
		// killed) — both mean zero failovers now.
		sr, err := c.Search(context.Background(), queries[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		if sr.FailoverTotal() != 0 {
			t.Fatalf("kill=%d: routing still tries the dead replica first: %+v", kill, sr.Failovers)
		}
		tel := c.Telemetry()
		if kill%replicas == 0 {
			// The preferred (primary) replica died: something must have
			// failed over, and routing health must show the corpse.
			if tel.Failovers == 0 {
				t.Fatalf("kill=%d: cumulative failover counter never moved", kill)
			}
			if c.ReplicaHealth()[killedPart][0].Healthy() {
				t.Fatalf("kill=%d: dead primary reported healthy after failover", kill)
			}
		} else if tel.Failovers != 0 {
			// A dead standby is never tried, so nothing fails over.
			t.Fatalf("kill=%d: %d failovers without the preferred replica dying", kill, tel.Failovers)
		}
		if tel.Dropped != 0 {
			t.Fatalf("kill=%d: %d partitions dropped with a replica alive", kill, tel.Dropped)
		}
	}
}

// TestReplicatedKillOneNodeBudgeted: the fragment-budgeted read path
// fails over identically — results AND the cluster-wide quality
// estimate match an intact cluster's, because replicas hold identical
// copies and fragment their partition identically.
func TestReplicatedKillOneNodeBudgeted(t *testing.T) {
	const parts, replicas = 2, 2
	docs := remoteCorpus(300, 61)
	c, servers := startReplicatedCluster(t, parts, replicas)
	fillCluster(t, c, docs)
	intact := dist.NewCluster(parts, nil)
	for i, d := range docs {
		intact.Add(bat.OID(i+1), "u", d)
	}
	if _, err := c.GlobalStatsContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	servers[1].Close() // replica 1 of partition 0
	c.InvalidateStats()
	for _, plan := range []ir.EvalPlan{
		{N: 10, Frags: 4, Budget: 1},
		{N: 10, Frags: 4, Budget: 2},
		{N: 10, Frags: 4, Budget: 4},
	} {
		q := "champion winner serve melbourne"
		want, err := intact.SearchPlan(context.Background(), q, plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.SearchPlan(context.Background(), q, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Complete() {
			t.Fatalf("budget %d: degraded: %+v", plan.Budget, got)
		}
		assertRanking(t, fmt.Sprintf("budget %d", plan.Budget), got.Results, want.Results)
		if got.Quality != want.Quality {
			t.Fatalf("budget %d: quality %+v, want %+v", plan.Budget, got.Quality, want.Quality)
		}
		if v := got.Quality.Value(); plan.Budget == 4 && v != 1.0 {
			t.Fatalf("full budget quality = %v", v)
		}
	}
}

// TestReplicatedWholeGroupDown: when BOTH replicas of a partition die,
// the search degrades along the unreplicated paths — stale statistics,
// the partition dropped and reported — instead of failing outright.
func TestReplicatedWholeGroupDown(t *testing.T) {
	const parts, replicas = 2, 2
	docs := remoteCorpus(200, 67)
	c, servers := startReplicatedCluster(t, parts, replicas)
	fillCluster(t, c, docs)
	if _, err := c.GlobalStatsContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	servers[0].Close() // both replicas of partition 0
	servers[1].Close()
	c.InvalidateStats()
	sr, err := c.Search(context.Background(), "champion winner serve", 10)
	if err != nil {
		t.Fatalf("whole-group death turned search into an outage: %v", err)
	}
	if !sr.StaleStats {
		t.Fatal("StaleStats not reported after a whole group died")
	}
	if len(sr.Dropped) != 1 || sr.Dropped[0] != 0 {
		t.Fatalf("dropped = %v, want [0]", sr.Dropped)
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results from the surviving partition")
	}
	if c.Telemetry().Dropped == 0 {
		t.Fatal("dropped-partition counter never moved")
	}
}
