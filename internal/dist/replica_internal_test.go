package dist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/ir"
)

// addFailNode wraps an inner node but rejects every write — the
// deterministic write-failure case of the batch-outcome contract.
type addFailNode struct {
	Node
}

var errAddRejected = errors.New("add rejected")

func (n *addFailNode) Add(context.Context, bat.OID, string, string) error {
	return errAddRejected
}

// TestNewReplicaGroupsValidation: the node count must divide into
// groups of r; r < 1 is clamped to 1.
func TestNewReplicaGroupsValidation(t *testing.T) {
	nodes := make([]Node, 6)
	for i := range nodes {
		nodes[i] = NewLocalNode(ir.NewIndex())
	}
	if _, err := NewReplicaGroups(nodes[:5], 2); err == nil {
		t.Fatal("5 nodes sliced into groups of 2 without error")
	}
	if _, err := NewReplicaGroups(nil, 2); err == nil {
		t.Fatal("empty node list accepted")
	}
	groups, err := NewReplicaGroups(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 3 {
		t.Fatalf("groups = %dx%d, want 2x3", len(groups), len(groups[0]))
	}
	if groups[1][0] != nodes[3] {
		t.Fatal("groups are not consecutive slices")
	}
	clamped, err := NewReplicaGroups(nodes[:2], 0)
	if err != nil || len(clamped) != 2 {
		t.Fatalf("r=0 clamp: %v, %d groups", err, len(clamped))
	}
}

// TestAddBatchResultsFailedPartition: a partition whose only replica
// rejects writes reports Committed 0 — the retry-safe failure — while
// the healthy partition commits, and AddBatchContext folds the
// partition errors into one.
func TestAddBatchResultsFailedPartition(t *testing.T) {
	good := NewLocalNode(ir.NewIndex())
	bad := &addFailNode{Node: NewLocalNode(ir.NewIndex())}
	c := NewClusterOf([]Node{good, bad}, nil)
	docs := []Doc{
		{OID: 1, Text: "champion trophy"}, // partition 0 (good)
		{OID: 2, Text: "winner serve"},    // partition 1 (bad)
		{OID: 3, Text: "melbourne ace"},   // partition 0 (good)
	}
	results := c.AddBatchResults(context.Background(), docs)
	if len(results) != 2 {
		t.Fatalf("%d partition results, want 2", len(results))
	}
	p0, p1 := results[0], results[1]
	if p0.Partition != 0 || p1.Partition != 1 {
		t.Fatalf("partition order %d,%d, want 0,1", p0.Partition, p1.Partition)
	}
	if p0.Err != nil || p0.Committed != 1 || p0.Failed() {
		t.Fatalf("healthy partition: %+v", p0)
	}
	if want := []bat.OID{1, 3}; len(p0.Docs) != 2 || p0.Docs[0] != want[0] || p0.Docs[1] != want[1] {
		t.Fatalf("partition 0 docs = %v, want %v", p0.Docs, want)
	}
	if !p1.Failed() || p1.Committed != 0 || !errors.Is(p1.Err, errAddRejected) {
		t.Fatalf("failing partition: %+v", p1)
	}
	if len(p1.Docs) != 1 || p1.Docs[0] != 2 {
		t.Fatalf("partition 1 docs = %v, want [2]", p1.Docs)
	}
	if err := c.AddBatchContext(context.Background(), docs); !errors.Is(err, errAddRejected) {
		t.Fatalf("AddBatchContext err = %v", err)
	}
}

// TestAddBatchResultsDegradedPartition: with one of two replicas
// rejecting writes the partition is DEGRADED — committed on the
// survivor (documents searchable) but not retry-safe, so Failed()
// must be false while Err names the lagging replica.
func TestAddBatchResultsDegradedPartition(t *testing.T) {
	healthy := NewLocalNode(ir.NewIndex())
	lagging := &addFailNode{Node: NewLocalNode(ir.NewIndex())}
	c := NewReplicatedClusterOf([][]Node{{healthy, lagging}}, nil)
	results := c.AddBatchResults(context.Background(), []Doc{
		{OID: 1, Text: "champion trophy"},
		{OID: 2, Text: "winner serve"},
	})
	if len(results) != 1 {
		t.Fatalf("%d partition results, want 1", len(results))
	}
	p := results[0]
	if p.Replicas != 2 || p.Committed != 1 {
		t.Fatalf("committed %d/%d, want 1/2", p.Committed, p.Replicas)
	}
	if p.Failed() {
		t.Fatal("degraded partition misreported as retry-safe failed")
	}
	if !errors.Is(p.Err, errAddRejected) {
		t.Fatalf("err = %v, want the replica failure", p.Err)
	}
	// The committed documents are searchable through the survivor.
	sr, err := c.Search(context.Background(), "champion", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].Doc != 1 {
		t.Fatalf("degraded partition lost its committed docs: %+v", sr.Results)
	}
	// And the lagging replica's health reflects the write failure.
	if h := c.ReplicaHealth()[0][1]; h.Healthy() || h.Fails == 0 {
		t.Fatalf("lagging replica reported healthy: %+v", h)
	}
}

// TestReplicatedLocalEqualsUnreplicated: an in-process replicated
// cluster ranks exactly like the unreplicated cluster with the same
// partition count — replication must be invisible to the ranking.
func TestReplicatedLocalEqualsUnreplicated(t *testing.T) {
	docs := corpus(200, 71)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = NewLocalNode(ir.NewIndex())
	}
	rc, err := NewReplicatedCluster(nodes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewCluster(2, nil)
	for i, d := range docs {
		rc.Add(bat.OID(i+1), "u", d)
		plain.Add(bat.OID(i+1), "u", d)
	}
	if rc.Size() != 2 || rc.Replicas(0) != 2 {
		t.Fatalf("shape = %d partitions x %d replicas", rc.Size(), rc.Replicas(0))
	}
	for _, q := range []string{"champion winner serve", "seles"} {
		sameRanking(t, q, rc.TopN(q, 10), plain.TopN(q, 10))
	}
	// Both replicas of each partition must hold identical copies.
	for g := 0; g < rc.Size(); g++ {
		a := rc.ReplicaAt(g, 0).(*LocalNode).Index()
		b := rc.ReplicaAt(g, 1).(*LocalNode).Index()
		if a.DocCount() != b.DocCount() || a.TermCount() != b.TermCount() {
			t.Fatalf("partition %d replicas diverged: %d/%d docs", g, a.DocCount(), b.DocCount())
		}
	}
}

// readFailNode wraps an inner node; reads fail while broken is set.
// Stats keeps working so statistics aggregation stays healthy and the
// test isolates the query routing path.
type readFailNode struct {
	Node
	broken atomic.Bool
}

var errReadBroken = errors.New("read broken")

func (n *readFailNode) TopNWithStats(ctx context.Context, q string, topn int, g ir.Stats) ([]ir.Result, error) {
	if n.broken.Load() {
		return nil, errReadBroken
	}
	return n.Node.TopNWithStats(ctx, q, topn, g)
}

func (n *readFailNode) SearchPlan(ctx context.Context, q string, p ir.EvalPlan, g ir.Stats) ([]ir.Result, ir.QualityEstimate, error) {
	if n.broken.Load() {
		return nil, ir.QualityEstimate{}, errReadBroken
	}
	return n.Node.SearchPlan(ctx, q, p, g)
}

// TestDivergedReplicaQuarantinedAndFlagged: a replica that failed a
// write its group committed is (1) routed last even after it answers
// probes again, and (2) when it DOES end up serving — every other
// replica down — the search reports the partition in Diverged and
// Complete() turns false, instead of passing a ranking that may miss
// committed documents as complete.
func TestDivergedReplicaQuarantinedAndFlagged(t *testing.T) {
	primary := &readFailNode{Node: NewLocalNode(ir.NewIndex())}
	lagging := &addFailNode{Node: NewLocalNode(ir.NewIndex())}
	c := NewReplicatedClusterOf([][]Node{{primary, lagging}}, nil)
	// The degraded write: commits on primary, fails on lagging.
	if err := c.AddContext(context.Background(), 1, "u", "champion trophy"); err == nil {
		t.Fatal("degraded write reported no error")
	}
	if h := c.ReplicaHealth()[0][1]; !h.Diverged || h.Healthy() {
		t.Fatalf("lagging replica not marked diverged: %+v", h)
	}
	// Healthy primary serves: complete, nothing diverged in the result.
	sr, err := c.Search(context.Background(), "champion", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Complete() || len(sr.Diverged) != 0 || len(sr.Results) != 1 {
		t.Fatalf("healthy-primary search = %+v", sr)
	}
	// A load probe succeeding on the lagging replica must NOT restore
	// its routing rank: fails reset, diverged stays.
	if _, err := c.groups[0][1].Load(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.record(0, 1, nil, 0) // simulate the probe success reaching health
	if h := c.ReplicaHealth()[0][1]; !h.Diverged || h.Healthy() {
		t.Fatalf("probe success cleared the divergence mark: %+v", h)
	}
	// Primary breaks: the diverged replica is the only option — the
	// search still answers but flags the partition.
	primary.broken.Store(true)
	sr, err = c.Search(context.Background(), "champion", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Dropped) != 0 {
		t.Fatalf("partition dropped despite a serving (diverged) replica: %+v", sr)
	}
	if len(sr.Diverged) != 1 || sr.Diverged[0] != 0 {
		t.Fatalf("diverged service not reported: %+v", sr)
	}
	if sr.Complete() {
		t.Fatal("Complete() = true for a ranking served by a diverged replica")
	}
	if len(sr.Results) != 0 {
		// The diverged replica never got doc 1 (its Add was rejected),
		// so its RES set is empty — exactly the silent-miss the flag
		// exists to expose.
		t.Fatalf("diverged replica returned %+v", sr.Results)
	}
}

// addFailAfterNode accepts its first n adds, then rejects — and has no
// BatchAdder, forcing the per-document fallback loop. The partial
// prefix it creates must surface as Ambiguous, not retry-safe.
type addFailAfterNode struct {
	Node
	allow int
	seen  atomic.Int64
}

func (n *addFailAfterNode) Add(ctx context.Context, doc bat.OID, url, text string) error {
	if int(n.seen.Add(1)) > n.allow {
		return errAddRejected
	}
	return n.Node.Add(ctx, doc, url, text)
}

// TestAddBatchResultsAmbiguousPrefix: a replica without batch support
// that applies one document and then fails leaves the partition
// AMBIGUOUS — Committed 0 but Failed() false — so the coordinator
// never tells the client a retry is safe.
func TestAddBatchResultsAmbiguousPrefix(t *testing.T) {
	n := &addFailAfterNode{Node: NewLocalNode(ir.NewIndex()), allow: 1}
	c := NewClusterOf([]Node{n}, nil)
	results := c.AddBatchResults(context.Background(), []Doc{
		{OID: 1, Text: "champion trophy"},
		{OID: 2, Text: "winner serve"},
		{OID: 3, Text: "volley smash"},
	})
	p := results[0]
	if p.Committed != 0 {
		t.Fatalf("committed = %d, want 0 (no full acknowledgement)", p.Committed)
	}
	if !p.Ambiguous {
		t.Fatal("partial prefix not marked ambiguous")
	}
	if p.Failed() {
		t.Fatal("ambiguous partition misreported as retry-safe failed")
	}
	if !errors.Is(p.Err, errAddRejected) {
		t.Fatalf("err = %v", p.Err)
	}
	var pa *partialApplyError
	if !errors.As(p.Err, &pa) || pa.applied != 1 || pa.total != 3 {
		t.Fatalf("partial-apply detail = %+v (err %v)", pa, p.Err)
	}
}
