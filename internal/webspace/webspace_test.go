package webspace

import (
	"strings"
	"testing"

	"dlsearch/internal/monetxml"
)

func monetxmlElem(tag string) *monetxml.Node { return monetxml.Elem(tag) }

// TestFigure3Schema is part of experiment E01: the Australian Open
// webspace schema must contain the concepts of Figure 3.
func TestFigure3Schema(t *testing.T) {
	s := AusOpenSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	player := s.Class("Player")
	if player == nil {
		t.Fatal("Player class missing")
	}
	name, ok := player.Attr("name")
	if !ok || name.Type != Varchar || name.Size != 50 {
		t.Fatalf("Player.name = %+v", name)
	}
	hist, ok := player.Attr("history")
	if !ok || hist.Type != Hypertext {
		t.Fatalf("Player.history = %+v", hist)
	}
	profile := s.Class("Profile")
	if v, ok := profile.Attr("video"); !ok || v.Type != Video {
		t.Fatal("Profile.video must be Video")
	}
	if d, ok := profile.Attr("document"); !ok || d.Type != Uri {
		t.Fatal("Profile.document must be Uri")
	}
	if a, ok := s.Association("Is_covered_in"); !ok || a.From != "Player" || a.To != "Article" {
		t.Fatalf("Is_covered_in = %+v", a)
	}
	if a, ok := s.Association("About"); !ok || a.From != "Profile" || a.To != "Player" {
		t.Fatalf("About = %+v", a)
	}
	mm := s.MultimediaAttrs()
	want := []string{"Article.body", "Player.history", "Player.picture", "Profile.video"}
	if len(mm) != len(want) {
		t.Fatalf("MultimediaAttrs = %v", mm)
	}
	for i := range want {
		if mm[i] != want[i] {
			t.Fatalf("MultimediaAttrs = %v, want %v", mm, want)
		}
	}
}

func TestSchemaDuplicateErrors(t *testing.T) {
	s := NewSchema("x")
	if err := s.AddClass("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddClass("A"); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if err := s.AddClass("B", Attribute{Name: "x"}, Attribute{Name: "x"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if err := s.AddAssociation("r", "A", "Nope"); err == nil {
		t.Fatal("association to unknown class accepted")
	}
	if err := s.AddAssociation("r", "A", "A"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAssociation("r", "A", "A"); err == nil {
		t.Fatal("duplicate association accepted")
	}
}

func TestAttrTypeStringsAndMultimedia(t *testing.T) {
	if Varchar.IsMultimedia() || Uri.IsMultimedia() || Int.IsMultimedia() {
		t.Fatal("scalar types flagged as multimedia")
	}
	for _, mt := range []AttrType{Hypertext, Video, Audio, Image} {
		if !mt.IsMultimedia() {
			t.Fatalf("%v not multimedia", mt)
		}
	}
	a := Attribute{Name: "name", Type: Varchar, Size: 50}
	if a.String() != "name::varchar(50)" {
		t.Fatalf("attr string = %q", a.String())
	}
	b := Attribute{Name: "video", Type: Video}
	if b.String() != "video::Video" {
		t.Fatalf("attr string = %q", b.String())
	}
}

func TestDocumentValidate(t *testing.T) {
	s := AusOpenSchema()
	good := &Document{
		URL: "u",
		Objects: []*Object{
			{Class: "Player", ID: "p1", Attrs: map[string]string{"name": "X"}},
			{Class: "Profile", ID: "p1", Attrs: map[string]string{"video": "v"}},
		},
		Links: []Link{{Association: "About", From: "Profile:p1", To: "Player:p1"}},
	}
	if err := good.Validate(s); err != nil {
		t.Fatal(err)
	}
	bad := []*Document{
		{URL: "u", Objects: []*Object{{Class: "Nope", ID: "x"}}},
		{URL: "u", Objects: []*Object{{Class: "Player", ID: ""}}},
		{URL: "u", Objects: []*Object{{Class: "Player", ID: "p", Attrs: map[string]string{"zzz": "1"}}}},
		{URL: "u", Links: []Link{{Association: "Nope", From: "A:1", To: "B:2"}}},
		{URL: "u", Links: []Link{{Association: "About", From: "Player:x", To: "Player:y"}}},
		{URL: "u", Links: []Link{{Association: "About", From: "Profile:x", To: "Article:y"}}},
	}
	for i, d := range bad {
		if err := d.Validate(s); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}

func TestDocumentXMLRoundTrip(t *testing.T) {
	d := &Document{
		URL: "http://x/p.html",
		Objects: []*Object{
			{Class: "Player", ID: "seles", Attrs: map[string]string{
				"name": "Monica Seles", "gender": "female",
			}},
		},
		Links: []Link{{Association: "About", From: "Profile:seles", To: "Player:seles"}},
	}
	x := d.XML()
	if x.Tag != "webspace" {
		t.Fatalf("root = %s", x.Tag)
	}
	s := x.String()
	for _, frag := range []string{`class="Player"`, `id="seles"`, `name="About"`, "Monica Seles"} {
		if !strings.Contains(s, frag) {
			t.Errorf("XML lacks %q", frag)
		}
	}
	back, err := DocumentFromXML(x)
	if err != nil {
		t.Fatal(err)
	}
	if back.URL != d.URL || len(back.Objects) != 1 || len(back.Links) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	o := back.Objects[0]
	if o.QualifiedID() != "Player:seles" || o.Attr("gender") != "female" {
		t.Fatalf("object round trip = %+v", o)
	}
	if back.Links[0] != d.Links[0] {
		t.Fatalf("link round trip = %+v", back.Links[0])
	}
}

func TestDocumentFromXMLErrors(t *testing.T) {
	if _, err := DocumentFromXML(monetxmlElem("notwebspace")); err == nil {
		t.Fatal("wrong root element accepted")
	}
}

func TestDocumentObjectLookup(t *testing.T) {
	d := &Document{Objects: []*Object{{Class: "Player", ID: "a"}}}
	if d.Object("Player:a") == nil {
		t.Fatal("lookup failed")
	}
	if d.Object("Player:b") != nil {
		t.Fatal("phantom object")
	}
}
