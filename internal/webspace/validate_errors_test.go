package webspace

import "testing"

// TestSchemaErrorMessages pins the schema layer's diagnostics: the
// crawler and the streaming-ingest endpoint surface these verbatim, so
// a rejected definition or document must name the offending entity.
func TestSchemaErrorMessages(t *testing.T) {
	s := NewSchema("x")
	if err := s.AddClass("A", Attribute{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	check := func(err error, want string) {
		t.Helper()
		if err == nil {
			t.Errorf("accepted, want %q", want)
			return
		}
		if err.Error() != want {
			t.Errorf("got  %q\nwant %q", err.Error(), want)
		}
	}
	check(s.AddClass("A"), "webspace: class A already defined")
	check(s.AddClass("B", Attribute{Name: "x"}, Attribute{Name: "x"}),
		"webspace: class B has duplicate attribute x")
	check(s.AddAssociation("r", "Nope", "A"),
		"webspace: association r: unknown class Nope")
	check(s.AddAssociation("r", "A", "Nope"),
		"webspace: association r: unknown class Nope")
	if err := s.AddAssociation("r", "A", "A"); err != nil {
		t.Fatal(err)
	}
	check(s.AddAssociation("r", "A", "A"), "webspace: association r already defined")

	// Validate re-verifies endpoints even after definition-time checks:
	// a hand-assembled schema with a dangling association must fail.
	dangling := NewSchema("y")
	dangling.Associations = append(dangling.Associations,
		Association{Name: "ghost", From: "A", To: "B"})
	check(dangling.Validate(), "webspace: association ghost references unknown classes")
}

// TestDocumentValidateErrorMessages covers every Document.Validate
// rejection path with its exact message. These are the per-line errors
// a client of POST /add/stream sees for a bad webspace line.
func TestDocumentValidateErrorMessages(t *testing.T) {
	s := AusOpenSchema()
	cases := []struct {
		doc  *Document
		want string
	}{
		{
			&Document{URL: "u", Objects: []*Object{{Class: "Nope", ID: "x"}}},
			"webspace: u: unknown class Nope",
		},
		{
			&Document{URL: "u", Objects: []*Object{{Class: "Player", ID: ""}}},
			"webspace: u: object of class Player without id",
		},
		{
			&Document{URL: "u", Objects: []*Object{
				{Class: "Player", ID: "p", Attrs: map[string]string{"zzz": "1"}}}},
			"webspace: u: class Player has no attribute zzz",
		},
		{
			&Document{URL: "u", Links: []Link{
				{Association: "Nope", From: "A:1", To: "B:2"}}},
			"webspace: u: unknown association Nope",
		},
		{
			&Document{URL: "u", Links: []Link{
				{Association: "About", From: "Player:x", To: "Player:y"}}},
			"webspace: u: association About source Player:x is not a Profile",
		},
		{
			&Document{URL: "u", Links: []Link{
				{Association: "About", From: "Profile:x", To: "Article:y"}}},
			"webspace: u: association About target Article:y is not a Player",
		},
	}
	for _, tc := range cases {
		err := tc.doc.Validate(s)
		if err == nil {
			t.Errorf("accepted, want %q", tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("got  %q\nwant %q", err.Error(), tc.want)
		}
	}
}

// TestDocumentFromXMLRootError: a non-webspace root is named in the
// error.
func TestDocumentFromXMLRootError(t *testing.T) {
	n := monetxmlElem("html")
	if _, err := DocumentFromXML(n); err == nil ||
		err.Error() != `webspace: root is "html", want webspace` {
		t.Fatalf("err = %v", err)
	}
}
