// Package webspace implements the conceptual level of the paper: the
// Webspace Method [ZA99, ZA00a]. A webspace schema models the concepts
// of a limited web domain — classes, attributes (including multimedia
// types) and associations — and every document of the webspace is a
// materialized view over that schema, carrying both content and
// schematic information. This is what enables conceptual search over
// the document collection and the integration of information stored in
// different documents into a single query.
package webspace

import (
	"fmt"
	"sort"
)

// AttrType is the type of a class attribute. Beyond the usual scalar
// types, attributes can be of a multimedia type; such attributes are
// what the logical level's feature grammars augment with meta-data.
type AttrType int

// Attribute types.
const (
	Varchar AttrType = iota
	Int
	Float
	Uri
	Hypertext
	Video
	Audio
	Image
)

func (t AttrType) String() string {
	switch t {
	case Varchar:
		return "varchar"
	case Int:
		return "int"
	case Float:
		return "float"
	case Uri:
		return "Uri"
	case Hypertext:
		return "Hypertext"
	case Video:
		return "Video"
	case Audio:
		return "Audio"
	case Image:
		return "Image"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// IsMultimedia reports whether values of this type refer to multimedia
// objects that the logical level should analyse.
func (t AttrType) IsMultimedia() bool {
	switch t {
	case Hypertext, Video, Audio, Image:
		return true
	}
	return false
}

// Attribute is a typed attribute of a class, e.g. name::varchar(50).
type Attribute struct {
	Name string
	Type AttrType
	Size int // for varchar
}

func (a Attribute) String() string {
	if a.Type == Varchar && a.Size > 0 {
		return fmt.Sprintf("%s::varchar(%d)", a.Name, a.Size)
	}
	return fmt.Sprintf("%s::%s", a.Name, a.Type)
}

// Class is a concept of the webspace schema.
type Class struct {
	Name  string
	Attrs []Attribute

	byName map[string]int
}

// Attr returns the attribute with the given name.
func (c *Class) Attr(name string) (Attribute, bool) {
	i, ok := c.byName[name]
	if !ok {
		return Attribute{}, false
	}
	return c.Attrs[i], true
}

// Association is a named, directed relation between two classes, e.g.
// Is_covered_in(Player, Article).
type Association struct {
	Name string
	From string // class name
	To   string // class name
}

// Schema is a webspace schema: the semantic description of the content
// available in a webspace.
type Schema struct {
	Name         string
	classes      map[string]*Class
	classOrder   []string
	Associations []Association
}

// NewSchema returns an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, classes: make(map[string]*Class)}
}

// AddClass defines a class with its attributes; it returns an error on
// duplicates.
func (s *Schema) AddClass(name string, attrs ...Attribute) error {
	if _, dup := s.classes[name]; dup {
		return fmt.Errorf("webspace: class %s already defined", name)
	}
	c := &Class{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := c.byName[a.Name]; dup {
			return fmt.Errorf("webspace: class %s has duplicate attribute %s", name, a.Name)
		}
		c.byName[a.Name] = i
	}
	s.classes[name] = c
	s.classOrder = append(s.classOrder, name)
	return nil
}

// MustAddClass is AddClass for schema constants; it panics on error.
func (s *Schema) MustAddClass(name string, attrs ...Attribute) {
	if err := s.AddClass(name, attrs...); err != nil {
		panic(err)
	}
}

// AddAssociation defines an association over existing classes.
func (s *Schema) AddAssociation(name, from, to string) error {
	if s.Class(from) == nil {
		return fmt.Errorf("webspace: association %s: unknown class %s", name, from)
	}
	if s.Class(to) == nil {
		return fmt.Errorf("webspace: association %s: unknown class %s", name, to)
	}
	for _, a := range s.Associations {
		if a.Name == name {
			return fmt.Errorf("webspace: association %s already defined", name)
		}
	}
	s.Associations = append(s.Associations, Association{Name: name, From: from, To: to})
	return nil
}

// MustAddAssociation is AddAssociation that panics on error.
func (s *Schema) MustAddAssociation(name, from, to string) {
	if err := s.AddAssociation(name, from, to); err != nil {
		panic(err)
	}
}

// Class returns the class with the given name, or nil.
func (s *Schema) Class(name string) *Class { return s.classes[name] }

// Classes returns the classes in definition order.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.classOrder))
	for _, n := range s.classOrder {
		out = append(out, s.classes[n])
	}
	return out
}

// Association returns the association with the given name.
func (s *Schema) Association(name string) (Association, bool) {
	for _, a := range s.Associations {
		if a.Name == name {
			return a, true
		}
	}
	return Association{}, false
}

// MultimediaAttrs returns the (class, attribute) pairs of multimedia
// type, in deterministic order — the hooks where the conceptual level
// hands objects to the logical level.
func (s *Schema) MultimediaAttrs() []string {
	var out []string
	for _, cn := range s.classOrder {
		for _, a := range s.classes[cn].Attrs {
			if a.Type.IsMultimedia() {
				out = append(out, cn+"."+a.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks referential consistency (duplicate checks happen at
// definition time; this re-verifies association endpoints).
func (s *Schema) Validate() error {
	for _, a := range s.Associations {
		if s.Class(a.From) == nil || s.Class(a.To) == nil {
			return fmt.Errorf("webspace: association %s references unknown classes", a.Name)
		}
	}
	return nil
}
