package webspace

import (
	"fmt"
	"sort"
	"strings"

	"dlsearch/internal/monetxml"
)

// Object is a web-object: an instantiation of a schema class found in
// (or authored into) a document. Its ID is unique within the webspace
// and qualified by class, e.g. "Player:monica-seles".
type Object struct {
	Class string
	ID    string
	Attrs map[string]string
}

// QualifiedID returns the class-qualified identity.
func (o *Object) QualifiedID() string { return o.Class + ":" + o.ID }

// Attr returns an attribute value.
func (o *Object) Attr(name string) string { return o.Attrs[name] }

// Link is an instantiation of an association between two web-objects.
type Link struct {
	Association string
	From        string // qualified id
	To          string // qualified id
}

// Document is a materialized view over the webspace schema: the
// web-objects and association instances one document contributes.
type Document struct {
	URL     string
	Objects []*Object
	Links   []Link
}

// Object returns the document's object with the given qualified id.
func (d *Document) Object(qid string) *Object {
	for _, o := range d.Objects {
		if o.QualifiedID() == qid {
			return o
		}
	}
	return nil
}

// Validate checks the document against the schema: known classes,
// known attributes, association endpoints of the right classes.
func (d *Document) Validate(s *Schema) error {
	byID := map[string]*Object{}
	for _, o := range d.Objects {
		c := s.Class(o.Class)
		if c == nil {
			return fmt.Errorf("webspace: %s: unknown class %s", d.URL, o.Class)
		}
		if o.ID == "" {
			return fmt.Errorf("webspace: %s: object of class %s without id", d.URL, o.Class)
		}
		for name := range o.Attrs {
			if _, ok := c.Attr(name); !ok {
				return fmt.Errorf("webspace: %s: class %s has no attribute %s", d.URL, o.Class, name)
			}
		}
		byID[o.QualifiedID()] = o
	}
	for _, l := range d.Links {
		a, ok := s.Association(l.Association)
		if !ok {
			return fmt.Errorf("webspace: %s: unknown association %s", d.URL, l.Association)
		}
		if !strings.HasPrefix(l.From, a.From+":") {
			return fmt.Errorf("webspace: %s: association %s source %s is not a %s", d.URL, l.Association, l.From, a.From)
		}
		if !strings.HasPrefix(l.To, a.To+":") {
			return fmt.Errorf("webspace: %s: association %s target %s is not a %s", d.URL, l.Association, l.To, a.To)
		}
	}
	return nil
}

// XML serialises the materialized view for the physical level. The
// element structure mirrors the schema, so each stored document indeed
// "contains both content and schematic information":
//
//	<webspace url="...">
//	  <object class="Player" id="monica-seles">
//	    <attr name="name">Monica Seles</attr>
//	    ...
//	  </object>
//	  <assoc name="About" from="Profile:x" to="Player:y"/>
//	</webspace>
func (d *Document) XML() *monetxml.Node {
	root := monetxml.Elem("webspace").WithAttr("url", d.URL)
	for _, o := range d.Objects {
		oe := monetxml.Elem("object").WithAttr("class", o.Class).WithAttr("id", o.ID)
		names := make([]string, 0, len(o.Attrs))
		for n := range o.Attrs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			ae := monetxml.Elem("attr", monetxml.TextNode(o.Attrs[n])).WithAttr("name", n)
			oe.Children = append(oe.Children, ae)
		}
		root.Children = append(root.Children, oe)
	}
	for _, l := range d.Links {
		le := monetxml.Elem("assoc").
			WithAttr("name", l.Association).
			WithAttr("from", l.From).
			WithAttr("to", l.To)
		root.Children = append(root.Children, le)
	}
	return root
}

// DocumentFromXML parses a materialized view back from its XML form;
// the inverse of Document.XML.
func DocumentFromXML(n *monetxml.Node) (*Document, error) {
	if n.Tag != "webspace" {
		return nil, fmt.Errorf("webspace: root is %q, want webspace", n.Tag)
	}
	url, _ := n.Attr("url")
	d := &Document{URL: url}
	for _, c := range n.Children {
		switch c.Tag {
		case "object":
			class, _ := c.Attr("class")
			id, _ := c.Attr("id")
			o := &Object{Class: class, ID: id, Attrs: map[string]string{}}
			for _, ae := range c.ChildrenByTag("attr") {
				name, _ := ae.Attr("name")
				o.Attrs[name] = ae.InnerText()
			}
			d.Objects = append(d.Objects, o)
		case "assoc":
			name, _ := c.Attr("name")
			from, _ := c.Attr("from")
			to, _ := c.Attr("to")
			d.Links = append(d.Links, Link{Association: name, From: from, To: to})
		}
	}
	return d, nil
}

// AusOpenSchema builds the webspace schema of the running example
// (Figure 3): Article, Player and Profile concepts with multimedia
// attributes, connected by the Is_covered_in and About associations.
func AusOpenSchema() *Schema {
	s := NewSchema("ausopen")
	s.MustAddClass("Article",
		Attribute{Name: "title", Type: Varchar, Size: 100},
		Attribute{Name: "body", Type: Hypertext},
	)
	s.MustAddClass("Player",
		Attribute{Name: "name", Type: Varchar, Size: 50},
		Attribute{Name: "gender", Type: Varchar, Size: 10},
		Attribute{Name: "country", Type: Varchar, Size: 30},
		Attribute{Name: "hand", Type: Varchar, Size: 10},
		Attribute{Name: "history", Type: Hypertext},
		Attribute{Name: "picture", Type: Image},
	)
	s.MustAddClass("Profile",
		Attribute{Name: "document", Type: Uri},
		Attribute{Name: "video", Type: Video},
	)
	s.MustAddAssociation("Is_covered_in", "Player", "Article")
	s.MustAddAssociation("About", "Profile", "Player")
	return s
}
