// Package fds implements the Feature Detector Scheduler: the
// demand-driven counterpart of the FDE that keeps the meta-index valid
// while detector implementations and source data evolve. Based on the
// dependency graph deduced from the grammar rules it localises the
// effects of a change and triggers incremental parses, preventing the
// regeneration of complete parse trees (and the associated detector
// calls) — the paper's central maintenance claim, experiment E12.
package fds

import (
	"fmt"
	"sort"

	"dlsearch/internal/detector"
	"dlsearch/internal/fde"
	"dlsearch/internal/fg"
)

// Priority of a scheduled revalidation. The paper assigns low priority
// to minor revisions (stored data may still answer queries) and high
// priority to major revisions (stored data is unusable).
type Priority int

// Priorities.
const (
	Low Priority = iota
	High
)

func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "low"
}

// Task is one scheduled revalidation: an incremental parse of a
// detector instance, or a full re-parse of a tree (Node == nil).
type Task struct {
	TreeID   string
	Node     *fde.PNode
	Detector string
	Priority Priority
}

// UpgradeReport summarises the scheduling decision for one upgrade.
type UpgradeReport struct {
	Detector string
	Level    detector.ChangeLevel
	Tasks    int
	Trees    int
}

// RunReport summarises one maintenance run.
type RunReport struct {
	TasksRun           int
	Reparses           int
	FullReparses       int
	Escalations        int
	ParamRevalidations int
	Errors             int
	Touched            []string // tree ids whose content changed
}

// entry is a managed parse tree plus the token set needed to rebuild
// it from scratch.
type entry struct {
	tree    *fde.Tree
	initial []detector.Token
}

// Scheduler manages the parse trees of the meta-index and their
// consistency with the registered detector implementations.
type Scheduler struct {
	G      *fg.Grammar
	Deps   *fg.DepGraph
	Reg    *detector.Registry
	Engine *fde.Engine

	entries  map[string]*entry
	ids      []string // insertion order
	versions map[string]detector.Version
	queue    []Task
	seq      int // FIFO tiebreak within a priority
}

// New returns a scheduler for the grammar and registry; it shares the
// registry with the engine so upgrades are visible to re-parses.
func New(g *fg.Grammar, reg *detector.Registry) *Scheduler {
	return &Scheduler{
		G:        g,
		Deps:     g.Dependencies(),
		Reg:      reg,
		Engine:   fde.New(g, reg),
		entries:  map[string]*entry{},
		versions: map[string]detector.Version{},
	}
}

// AddTree registers a parse tree built from the given initial token
// set and snapshots the versions of all registered detectors, so later
// upgrades can be classified against what the stored data was built
// with.
func (s *Scheduler) AddTree(id string, tree *fde.Tree, initial []detector.Token) {
	if _, ok := s.entries[id]; !ok {
		s.ids = append(s.ids, id)
	}
	s.entries[id] = &entry{tree: tree, initial: initial}
	for _, name := range s.Reg.Names() {
		if _, ok := s.versions[name]; !ok {
			s.versions[name] = s.Reg.VersionOf(name)
		}
	}
}

// Tree returns the managed tree with the given id.
func (s *Scheduler) Tree(id string) *fde.Tree {
	if e, ok := s.entries[id]; ok {
		return e.tree
	}
	return nil
}

// IDs returns the managed tree ids in insertion order.
func (s *Scheduler) IDs() []string { return append([]string(nil), s.ids...) }

// Pending returns the number of queued tasks at the given priority.
func (s *Scheduler) Pending(p Priority) int {
	n := 0
	for _, t := range s.queue {
		if t.Priority == p {
			n++
		}
	}
	return n
}

// Usable reports whether the stored data for a tree may still answer
// queries: true unless a high-priority (major revision) task is
// pending for it.
func (s *Scheduler) Usable(id string) bool {
	for _, t := range s.queue {
		if t.TreeID == id && t.Priority == High {
			return false
		}
	}
	return true
}

// Upgrade installs a new detector implementation and schedules the
// revalidations its version change requires:
//
//   - a correction revision never invalidates stored parse trees — no
//     action;
//   - a minor revision invalidates the partial parse trees rooted at
//     the detector, revalidated with low priority;
//   - a major revision does the same with high priority.
func (s *Scheduler) Upgrade(im *detector.Impl) UpgradeReport {
	old := s.versions[im.Name]
	level := detector.Compare(old, im.Version)
	s.Reg.Register(im)
	s.versions[im.Name] = im.Version
	rep := UpgradeReport{Detector: im.Name, Level: level}
	if level == detector.ChangeNone || level == detector.ChangeRevision {
		return rep
	}
	prio := Low
	if level == detector.ChangeMajor {
		prio = High
	}
	for _, id := range s.ids {
		e := s.entries[id]
		// Only detector instances are revalidation roots; a literal can
		// share the detector's name (type : "tennis" tennis).
		var nodes []*fde.PNode
		for _, n := range e.tree.NodesBySymbol(im.Name) {
			if n.Kind == fde.KindDetector {
				nodes = append(nodes, n)
			}
		}
		if len(nodes) == 0 {
			continue
		}
		rep.Trees++
		for _, n := range nodes {
			s.enqueue(Task{TreeID: id, Node: n, Detector: im.Name, Priority: prio})
			rep.Tasks++
		}
	}
	return rep
}

// ScheduleFull schedules a complete re-parse of a tree, used when the
// start symbol's special source-check detector finds the source data
// changed.
func (s *Scheduler) ScheduleFull(id string, prio Priority) {
	s.enqueue(Task{TreeID: id, Priority: prio})
}

// CheckSources runs the source-change check (the special detector
// associated with the start symbol) over all trees and schedules full
// high-priority re-parses for changed sources. The check receives the
// tree id and its initial token set.
func (s *Scheduler) CheckSources(changed func(id string, initial []detector.Token) bool) int {
	n := 0
	for _, id := range s.ids {
		e := s.entries[id]
		if changed(id, e.initial) {
			s.ScheduleFull(id, High)
			n++
		}
	}
	return n
}

func (s *Scheduler) enqueue(t Task) {
	for _, q := range s.queue {
		if q.TreeID == t.TreeID && q.Node == t.Node && q.Detector == t.Detector {
			return // already scheduled
		}
	}
	s.queue = append(s.queue, t)
}

// maxVisitsPerNode bounds re-scheduling cascades per node per run.
const maxVisitsPerNode = 3

// Run drains the queue in priority order (high first, FIFO within a
// priority), performing the paper's three-step invalidation procedure:
//
//  1. incrementally re-parse the invalidated partial parse tree;
//  2. if still valid but its values changed, revalidate the detectors
//     whose parameter dependencies reference the changed symbols;
//  3. if invalid, follow the rule and sibling dependencies upward to
//     the first detector or start symbol and repeat there.
func (s *Scheduler) Run() RunReport {
	var rep RunReport
	touched := map[string]bool{}
	visits := map[*fde.PNode]int{}
	for len(s.queue) > 0 {
		sort.SliceStable(s.queue, func(i, j int) bool { return s.queue[i].Priority > s.queue[j].Priority })
		task := s.queue[0]
		s.queue = s.queue[1:]
		rep.TasksRun++
		e := s.entries[task.TreeID]
		if e == nil {
			rep.Errors++
			continue
		}
		if task.Node == nil {
			if err := s.fullReparse(task.TreeID, e); err != nil {
				rep.Errors++
			} else {
				rep.FullReparses++
				touched[task.TreeID] = true
			}
			continue
		}
		if visits[task.Node] >= maxVisitsPerNode {
			continue
		}
		visits[task.Node]++

		before := symbolValues(task.Node)
		changed, err := s.Engine.ReparseDetector(e.tree, task.Node)
		rep.Reparses++
		if err != nil {
			// Step 3: the subtree is invalid; escalate upward.
			rep.Escalations += s.escalate(task, e)
			continue
		}
		if !changed {
			continue
		}
		touched[task.TreeID] = true
		// Step 2: parameter dependencies of changed symbols.
		after := symbolValues(task.Node)
		for _, sym := range diffSymbols(before, after) {
			for _, det := range s.Deps.ParamDependents(sym) {
				for _, n := range e.tree.NodesBySymbol(det) {
					if n.Kind != fde.KindDetector {
						continue
					}
					s.enqueue(Task{TreeID: task.TreeID, Node: n, Detector: det, Priority: task.Priority})
					rep.ParamRevalidations++
				}
			}
		}
	}
	rep.Touched = sortedKeys(touched)
	return rep
}

// escalate implements step 3: walk upward to the enclosing detector
// instances (or schedule a full re-parse at the start symbol).
func (s *Scheduler) escalate(task Task, e *entry) int {
	n := 0
	stops := s.Deps.UpwardStops(task.Detector)
	for _, stop := range stops {
		if stop == s.G.Start {
			s.ScheduleFull(task.TreeID, task.Priority)
			n++
			continue
		}
		// Find the nearest enclosing instance of the stop detector.
		for anc := task.Node.Parent; anc != nil; anc = anc.Parent {
			if anc.Symbol == stop {
				s.enqueue(Task{TreeID: task.TreeID, Node: anc, Detector: stop, Priority: task.Priority})
				n++
				break
			}
		}
	}
	if len(stops) == 0 {
		// No enclosing scope: regenerate the tree.
		s.ScheduleFull(task.TreeID, task.Priority)
		n++
	}
	return n
}

func (s *Scheduler) fullReparse(id string, e *entry) error {
	tree, err := s.Engine.Parse(e.initial)
	if err != nil {
		return fmt.Errorf("fds: full reparse of %s: %w", id, err)
	}
	e.tree = tree
	return nil
}

// symbolValues snapshots the values in a subtree grouped by symbol.
func symbolValues(n *fde.PNode) map[string][]string {
	out := map[string][]string{}
	var walk func(*fde.PNode)
	walk = func(m *fde.PNode) {
		if m.Value != "" {
			out[m.Symbol] = append(out[m.Symbol], m.Value)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// diffSymbols returns the symbols whose value lists differ.
func diffSymbols(a, b map[string][]string) []string {
	changed := map[string]bool{}
	for sym, av := range a {
		bv := b[sym]
		if !equalStrings(av, bv) {
			changed[sym] = true
		}
	}
	for sym := range b {
		if _, ok := a[sym]; !ok {
			changed[sym] = true
		}
	}
	return sortedKeys(changed)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
