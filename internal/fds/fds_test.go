package fds

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dlsearch/internal/detector"
	"dlsearch/internal/fde"
	"dlsearch/internal/fg"
)

// fixture builds a registry over the tennis grammar whose detector
// outputs can be swapped to simulate algorithm evolution.
type fixture struct {
	g   *fg.Grammar
	reg *detector.Registry
	s   *Scheduler

	headerSecondary string
	yPos            string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{g: fg.MustParse(fg.TennisGrammar), headerSecondary: "mpeg", yPos: "200.0"}
	f.reg = detector.NewRegistry()
	f.reg.Register(&detector.Impl{Name: "header", Version: detector.Version{Major: 1}, Fn: f.headerV1})
	f.reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Fn: f.segmentFn})
	f.reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Fn: f.tennisFn})
	f.s = New(f.g, f.reg)
	return f
}

func (f *fixture) headerV1(ctx *detector.Context) ([]detector.Token, error) {
	if strings.HasSuffix(ctx.Param(0), ".mpg") {
		return []detector.Token{{Symbol: "primary", Value: "video"}, {Symbol: "secondary", Value: f.headerSecondary}}, nil
	}
	return []detector.Token{{Symbol: "primary", Value: "text"}, {Symbol: "secondary", Value: "html"}}, nil
}

func (f *fixture) segmentFn(ctx *detector.Context) ([]detector.Token, error) {
	return []detector.Token{
		{Symbol: "frameNo", Value: "0"}, {Symbol: "frameNo", Value: "99"}, {Value: "tennis"},
		{Symbol: "frameNo", Value: "100"}, {Symbol: "frameNo", Value: "199"}, {Value: "other"},
	}, nil
}

func (f *fixture) tennisFn(ctx *detector.Context) ([]detector.Token, error) {
	return []detector.Token{
		{Symbol: "frameNo", Value: ctx.Param(1)},
		{Symbol: "xPos", Value: "320.0"},
		{Symbol: "yPos", Value: f.yPos},
		{Symbol: "Area", Value: "450"},
		{Symbol: "Ecc", Value: "1.8"},
		{Symbol: "Orient", Value: "0.4"},
	}, nil
}

func (f *fixture) load(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		initial := []detector.Token{{Symbol: "location", Value: fmt.Sprintf("http://v/%d.mpg", i)}}
		tree, err := f.s.Engine.Parse(initial)
		if err != nil {
			t.Fatalf("populate %d: %v", i, err)
		}
		f.s.AddTree(fmt.Sprintf("v%d", i), tree, initial)
	}
}

func (f *fixture) calls(name string) int { return f.s.Engine.Stats.DetectorCalls[name] }

func TestRevisionUpgradeNoAction(t *testing.T) {
	f := newFixture(t)
	f.load(t, 5)
	before := f.calls("header")
	rep := f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: 0, Revision: 1}, Fn: f.headerV1})
	if rep.Level != detector.ChangeRevision || rep.Tasks != 0 {
		t.Fatalf("revision upgrade scheduled work: %+v", rep)
	}
	run := f.s.Run()
	if run.TasksRun != 0 || f.calls("header") != before {
		t.Fatalf("revision upgrade caused detector calls: %+v", run)
	}
}

func TestMinorUpgradePriorityAndUsability(t *testing.T) {
	f := newFixture(t)
	f.load(t, 3)
	rep := f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: 1, Revision: 0}, Fn: f.headerV1})
	if rep.Level != detector.ChangeMinor || rep.Tasks != 3 || rep.Trees != 3 {
		t.Fatalf("minor upgrade report: %+v", rep)
	}
	if f.s.Pending(Low) != 3 || f.s.Pending(High) != 0 {
		t.Fatalf("pending = %d low, %d high", f.s.Pending(Low), f.s.Pending(High))
	}
	// Minor revision: data may still answer queries.
	if !f.s.Usable("v0") {
		t.Fatal("minor upgrade should leave data usable")
	}
	f.s.Run()
	if f.s.Pending(Low) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestMajorUpgradeMakesDataUnusable(t *testing.T) {
	f := newFixture(t)
	f.load(t, 2)
	rep := f.s.Upgrade(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 2, Minor: 0, Revision: 0}, Fn: f.tennisFn})
	if rep.Level != detector.ChangeMajor {
		t.Fatalf("level = %v", rep.Level)
	}
	if f.s.Usable("v0") {
		t.Fatal("major upgrade must make data unusable until revalidated")
	}
	f.s.Run()
	if !f.s.Usable("v0") {
		t.Fatal("data should be usable after revalidation")
	}
}

// TestFDSHeaderUpgradeWalkthrough reproduces the paper's three-step
// walkthrough: a changed header implementation invalidates the header
// subtrees; the changed primary MIME type invalidates video_type via
// its parameter dependency; the failed video_type escalates upward to
// the start symbol, and the full re-parse drops mm_type.
func TestFDSHeaderUpgradeWalkthrough(t *testing.T) {
	f := newFixture(t)
	f.load(t, 1)
	tree := f.s.Tree("v0")
	if len(tree.NodesBySymbol("mm_type")) != 1 {
		t.Fatal("precondition: video was typed as video")
	}

	// The upgraded header classifies everything as text/plain.
	f.s.Upgrade(&detector.Impl{
		Name: "header", Version: detector.Version{Major: 1, Minor: 1, Revision: 0},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			return []detector.Token{{Symbol: "primary", Value: "text"}, {Symbol: "secondary", Value: "plain"}}, nil
		},
	})
	rep := f.s.Run()
	if rep.ParamRevalidations == 0 {
		t.Fatalf("expected video_type parameter revalidation: %+v", rep)
	}
	if rep.Escalations == 0 {
		t.Fatalf("expected upward escalation from failed video_type: %+v", rep)
	}
	if rep.FullReparses == 0 {
		t.Fatalf("expected a full re-parse at the start symbol: %+v", rep)
	}
	after := f.s.Tree("v0")
	if len(after.NodesBySymbol("mm_type")) != 0 {
		t.Fatal("mm_type survived although the object is no longer a video")
	}
	if got := after.NodesBySymbol("primary")[0].Value; got != "text" {
		t.Fatalf("primary = %q", got)
	}
}

// TestIncrementalAvoidsDetectorCalls is the core of experiment E12:
// upgrading header re-runs only header (plus cheap whitebox checks),
// never the expensive segment/tennis detectors, whereas a full rebuild
// re-runs everything.
func TestIncrementalAvoidsDetectorCalls(t *testing.T) {
	f := newFixture(t)
	const n = 10
	f.load(t, n)
	segBefore, tenBefore, hdrBefore := f.calls("segment"), f.calls("tennis"), f.calls("header")

	// Minor upgrade with identical output: only header re-runs.
	f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: 1, Revision: 0}, Fn: f.headerV1})
	rep := f.s.Run()
	if rep.Reparses != n {
		t.Fatalf("reparses = %d, want %d", rep.Reparses, n)
	}
	if got := f.calls("header") - hdrBefore; got != n {
		t.Fatalf("header calls = %d, want %d", got, n)
	}
	if got := f.calls("segment") - segBefore; got != 0 {
		t.Fatalf("segment re-called %d times; incremental maintenance must avoid this", got)
	}
	if got := f.calls("tennis") - tenBefore; got != 0 {
		t.Fatalf("tennis re-called %d times; incremental maintenance must avoid this", got)
	}
	if len(rep.Touched) != 0 {
		t.Fatalf("identical output should touch nothing: %v", rep.Touched)
	}
}

// TestParamPropagationToNetplay: a tennis tracking upgrade changes
// yPos values; the netplay whitebox depends on yPos via its parameter
// paths and must be revalidated — and only it.
func TestParamPropagationToNetplay(t *testing.T) {
	f := newFixture(t)
	f.load(t, 1)
	tree := f.s.Tree("v0")
	if got := tree.NodesBySymbol("netplay")[0].Value; got != "false" {
		t.Fatalf("precondition: netplay = %q (yPos 200)", got)
	}
	segBefore := f.calls("segment")

	// Improved tracker: the player is now found at the net.
	f.yPos = "120.0"
	f.s.Upgrade(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1, Minor: 1, Revision: 0}, Fn: f.tennisFn})
	rep := f.s.Run()
	if rep.ParamRevalidations == 0 {
		t.Fatalf("netplay revalidation not scheduled: %+v", rep)
	}
	if got := f.s.Tree("v0").NodesBySymbol("netplay")[0].Value; got != "true" {
		t.Fatalf("netplay after tracker upgrade = %q, want true", got)
	}
	if got := f.calls("segment") - segBefore; got != 0 {
		t.Fatalf("segment re-called %d times", got)
	}
	if len(rep.Touched) != 1 || rep.Touched[0] != "v0" {
		t.Fatalf("touched = %v", rep.Touched)
	}
}

func TestCheckSources(t *testing.T) {
	f := newFixture(t)
	f.load(t, 3)
	n := f.s.CheckSources(func(id string, initial []detector.Token) bool {
		return id == "v1"
	})
	if n != 1 || f.s.Pending(High) != 1 {
		t.Fatalf("scheduled %d, pending high %d", n, f.s.Pending(High))
	}
	rep := f.s.Run()
	if rep.FullReparses != 1 {
		t.Fatalf("full reparses = %d", rep.FullReparses)
	}
}

func TestFailingDetectorReportsErrors(t *testing.T) {
	f := newFixture(t)
	f.load(t, 1)
	f.s.Upgrade(&detector.Impl{
		Name: "header", Version: detector.Version{Major: 2, Minor: 0, Revision: 0},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			return nil, errors.New("always fails")
		},
	})
	rep := f.s.Run()
	// header reparse fails -> escalates to start -> full reparse fails too.
	if rep.Escalations == 0 || rep.Errors == 0 {
		t.Fatalf("expected escalation and errors: %+v", rep)
	}
}

func TestUpgradeUnknownDetectorIsMajorButHarmless(t *testing.T) {
	f := newFixture(t)
	f.load(t, 1)
	rep := f.s.Upgrade(&detector.Impl{Name: "brandnew", Version: detector.Version{Major: 1, Minor: 0, Revision: 0}})
	if rep.Tasks != 0 {
		t.Fatalf("new detector scheduled tasks on trees without instances: %+v", rep)
	}
}

func TestDuplicateEnqueueCollapses(t *testing.T) {
	f := newFixture(t)
	f.load(t, 1)
	// Two upgrades before a run: the second set of tasks must not
	// duplicate the first.
	f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: 1, Revision: 0}, Fn: f.headerV1})
	f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: 2, Revision: 0}, Fn: f.headerV1})
	if got := f.s.Pending(Low); got != 1 {
		t.Fatalf("pending = %d, want 1 (deduplicated)", got)
	}
}

func TestTreeAccessors(t *testing.T) {
	f := newFixture(t)
	f.load(t, 2)
	if f.s.Tree("nope") != nil {
		t.Fatal("unknown tree should be nil")
	}
	ids := f.s.IDs()
	if len(ids) != 2 || ids[0] != "v0" || ids[1] != "v1" {
		t.Fatalf("IDs = %v", ids)
	}
}

// BenchmarkIncrementalVsFull quantifies experiment E12.
func BenchmarkIncrementalVsFull(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := benchFixture(b)
			b.StartTimer()
			f.s.Upgrade(&detector.Impl{Name: "header", Version: detector.Version{Major: 1, Minor: i + 1, Revision: 0}, Fn: f.headerV1})
			f.s.Run()
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := benchFixture(b)
			b.StartTimer()
			for _, id := range f.s.IDs() {
				f.s.ScheduleFull(id, High)
			}
			f.s.Run()
		}
	})
}

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	f := &fixture{g: fg.MustParse(fg.TennisGrammar), headerSecondary: "mpeg", yPos: "200.0"}
	f.reg = detector.NewRegistry()
	f.reg.Register(&detector.Impl{Name: "header", Version: detector.Version{Major: 1}, Fn: f.headerV1})
	f.reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Fn: f.segmentFn})
	f.reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Fn: f.tennisFn})
	f.s = New(f.g, f.reg)
	for i := 0; i < 20; i++ {
		initial := []detector.Token{{Symbol: "location", Value: fmt.Sprintf("http://v/%d.mpg", i)}}
		tree, err := f.s.Engine.Parse(initial)
		if err != nil {
			b.Fatal(err)
		}
		f.s.AddTree(fmt.Sprintf("v%d", i), tree, initial)
	}
	return f
}

var _ = fde.KindAtom // keep the import for documentation cross-reference
