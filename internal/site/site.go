// Package site synthesises the Australian Open website of the paper's
// running example. The real site is long gone; the generator produces
// what the paper's pipeline consumes: presentation-oriented HTML pages
// in which the domain concepts (player names, genders, play hands,
// tournament histories) are only implicit, plus the multimedia objects
// (match videos, portraits) those pages embed — together with ground
// truth, so the Figure 13 query has a checkable answer.
package site

import (
	"fmt"
	"sort"
	"strings"

	"dlsearch/internal/video"
)

// Player is the ground truth for one tennis player.
type Player struct {
	Name    string
	Slug    string
	Gender  string // "female" or "male"
	Country string
	Hand    string // "left" or "right"
	// ChampionYears lists Australian Open titles; empty for non-winners.
	ChampionYears []int
	// NetRusher players approach the net: their match videos contain
	// netplay shots.
	NetRusher bool

	History    string
	BioURL     string
	ProfileURL string
	PictureURL string
	VideoURL   string
}

// Article is a news article covering one or more players.
type Article struct {
	Title  string
	Body   string
	URL    string
	Covers []string // player slugs
}

// roster is the fixed synthetic world. Names are era-plausible; the
// attribute combinations are chosen so the running example's queries
// have non-trivial, known answers. In particular the Figure 13 query
// ("video shots of left-handed female players who have won the
// Australian Open in the past, in which they approach the net") is
// satisfied by exactly Monica Seles and Jana Vilagos.
var roster = []Player{
	{Name: "Monica Seles", Gender: "female", Country: "USA", Hand: "left", ChampionYears: []int{1991, 1992, 1993, 1996}, NetRusher: true},
	{Name: "Jana Vilagos", Gender: "female", Country: "HUN", Hand: "left", ChampionYears: []int{1989}, NetRusher: true},
	{Name: "Petra Novotna", Gender: "female", Country: "CZE", Hand: "left", ChampionYears: []int{1995}, NetRusher: false},
	{Name: "Martina Hingis", Gender: "female", Country: "SUI", Hand: "right", ChampionYears: []int{1997, 1998, 1999}, NetRusher: false},
	{Name: "Jennifer Capriati", Gender: "female", Country: "USA", Hand: "right", ChampionYears: []int{2001}, NetRusher: false},
	{Name: "Lindsay Davenport", Gender: "female", Country: "USA", Hand: "right", ChampionYears: []int{2000}, NetRusher: true},
	{Name: "Patty Schnyder", Gender: "female", Country: "SUI", Hand: "left", NetRusher: true},
	{Name: "Amelie Mauresmo", Gender: "female", Country: "FRA", Hand: "right", NetRusher: false},
	{Name: "Kim Clijsters", Gender: "female", Country: "BEL", Hand: "right", NetRusher: false},
	{Name: "Andre Agassi", Gender: "male", Country: "USA", Hand: "right", ChampionYears: []int{1995, 2000, 2001}, NetRusher: false},
	{Name: "Petr Korda", Gender: "male", Country: "CZE", Hand: "left", ChampionYears: []int{1998}, NetRusher: true},
	{Name: "Thomas Muster", Gender: "male", Country: "AUT", Hand: "left", NetRusher: false},
	{Name: "Marcelo Rios", Gender: "male", Country: "CHI", Hand: "left", NetRusher: false},
	{Name: "Yevgeny Kafelnikov", Gender: "male", Country: "RUS", Hand: "right", ChampionYears: []int{1999}, NetRusher: false},
	{Name: "Pat Rafter", Gender: "male", Country: "AUS", Hand: "right", NetRusher: true},
	{Name: "Pete Sampras", Gender: "male", Country: "USA", Hand: "right", ChampionYears: []int{1994, 1997}, NetRusher: true},
}

// Site is the generated website: pages, MIME types and raw multimedia.
type Site struct {
	BaseURL  string
	Players  []*Player
	Articles []*Article
	Videos   *video.Library

	pages map[string]string
	mimes map[string][2]string
}

// Generate builds the deterministic website. The seed varies the video
// footage, not the roster.
func Generate(seed int64) *Site {
	s := &Site{
		BaseURL: "http://ausopen.org",
		Videos:  video.NewLibrary(),
		pages:   map[string]string{},
		mimes:   map[string][2]string{},
	}
	for i := range roster {
		p := roster[i] // copy
		p.Slug = slugify(p.Name)
		p.History = historyText(&p)
		p.BioURL = fmt.Sprintf("%s/players/%s.html", s.BaseURL, p.Slug)
		p.ProfileURL = fmt.Sprintf("%s/profile/%s.html", s.BaseURL, p.Slug)
		p.PictureURL = fmt.Sprintf("%s/img/%s.jpg", s.BaseURL, p.Slug)
		p.VideoURL = fmt.Sprintf("%s/video/%s-match.mpg", s.BaseURL, p.Slug)
		s.Players = append(s.Players, &p)

		// Match footage: net rushers produce netplay shots.
		specs := matchSpecs(&p, seed+int64(i))
		s.Videos.Put(p.VideoURL, video.Generate(specs, video.Options{Seed: seed + int64(i)}))
		s.mimes[p.VideoURL] = [2]string{"video", "mpeg"}
		s.mimes[p.PictureURL] = [2]string{"image", "jpeg"}
	}
	s.Articles = makeArticles(s)
	s.renderPages()
	return s
}

// matchSpecs builds the broadcast shot list for a player's match.
func matchSpecs(p *Player, seed int64) []video.ShotSpec {
	court := video.HardBlue
	specs := []video.ShotSpec{
		{Kind: video.Tennis, Frames: 12, Court: court, Netplay: p.NetRusher},
		{Kind: video.Closeup, Frames: 6},
		{Kind: video.Tennis, Frames: 12, Court: court, Netplay: false},
		{Kind: video.Audience, Frames: 6},
		{Kind: video.Tennis, Frames: 12, Court: court, Netplay: p.NetRusher},
		{Kind: video.Other, Frames: 6},
	}
	return specs
}

// historyText writes the biography paragraph; for champions it
// contains the word "Winner", the hook of the Figure 13 query.
func historyText(p *Player) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s of %s plays %s-handed tennis. ", p.Name, p.Country, p.Hand)
	if len(p.ChampionYears) > 0 {
		years := make([]string, len(p.ChampionYears))
		for i, y := range p.ChampionYears {
			years[i] = fmt.Sprint(y)
		}
		fmt.Fprintf(&sb, "Winner of the Australian Open in %s. ", strings.Join(years, ", "))
		sb.WriteString("A true champion of the tournament. ")
	} else {
		sb.WriteString("Still chasing a first grand slam title in Melbourne. ")
	}
	if p.NetRusher {
		sb.WriteString("Known for relentlessly attacking the net.")
	} else {
		sb.WriteString("Prefers long rallies from the baseline.")
	}
	return sb.String()
}

// makeArticles writes tournament coverage referencing players.
func makeArticles(s *Site) []*Article {
	var arts []*Article
	add := func(title, body string, covers ...string) {
		a := &Article{
			Title:  title,
			Body:   body,
			URL:    fmt.Sprintf("%s/articles/%d.html", s.BaseURL, len(arts)+1),
			Covers: covers,
		}
		arts = append(arts, a)
	}
	bySlug := map[string]*Player{}
	for _, p := range s.Players {
		bySlug[p.Slug] = p
	}
	for _, p := range s.Players {
		if len(p.ChampionYears) > 0 {
			add(
				fmt.Sprintf("%s storms to the title", p.Name),
				fmt.Sprintf("%s defeated every opponent on the way to the championship trophy. The crowd in Melbourne celebrated a deserved winner. %s", p.Name, p.History),
				p.Slug,
			)
		}
	}
	add("Weather disrupts day three",
		"Heavy rain in Melbourne forced the organisers to close the roof. Matches resumed in the evening session.",
	)
	add("Serve and volley revival",
		"Several players brought the classic net game back to the tournament, charging forward behind every serve. Seles and Rafter delighted the audience.",
		"monica-seles", "pat-rafter",
	)
	_ = bySlug
	return arts
}

// renderPages emits the presentation-oriented HTML: the semantic
// structure visible in the generator is deliberately flattened into
// markup, exactly the situation the paper's reengineering step
// reverses.
func (s *Site) renderPages() {
	var index strings.Builder
	index.WriteString("<html><head><title>Australian Open</title></head><body><h1>Australian Open</h1><ul>")
	for _, p := range s.Players {
		fmt.Fprintf(&index, `<li><a href="%s">%s</a></li>`, p.BioURL, p.Name)
	}
	for _, a := range s.Articles {
		fmt.Fprintf(&index, `<li><a href="%s">%s</a></li>`, a.URL, a.Title)
	}
	index.WriteString("</ul></body></html>")
	s.putPage(s.BaseURL+"/index.html", index.String())

	for _, p := range s.Players {
		var b strings.Builder
		fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>", p.Name)
		fmt.Fprintf(&b, `<img src="%s" alt="portrait"/>`, p.PictureURL)
		b.WriteString("<dl>")
		fmt.Fprintf(&b, "<dt>Name</dt><dd>%s</dd>", p.Name)
		fmt.Fprintf(&b, "<dt>Gender</dt><dd>%s</dd>", p.Gender)
		fmt.Fprintf(&b, "<dt>Country</dt><dd>%s</dd>", p.Country)
		fmt.Fprintf(&b, "<dt>Plays</dt><dd>%s</dd>", p.Hand)
		b.WriteString("</dl>")
		fmt.Fprintf(&b, `<div class="history">%s</div>`, p.History)
		fmt.Fprintf(&b, `<a class="profile" href="%s">match centre</a>`, p.ProfileURL)
		b.WriteString("</body></html>")
		s.putPage(p.BioURL, b.String())

		var pr strings.Builder
		fmt.Fprintf(&pr, "<html><head><title>%s match centre</title></head><body>", p.Name)
		fmt.Fprintf(&pr, `<a class="document" href="%s">biography</a>`, p.BioURL)
		fmt.Fprintf(&pr, `<video src="%s"></video>`, p.VideoURL)
		pr.WriteString("</body></html>")
		s.putPage(p.ProfileURL, pr.String())
	}
	for _, a := range s.Articles {
		var b strings.Builder
		fmt.Fprintf(&b, "<html><head><title>%s</title></head><body><h1>%s</h1>", a.Title, a.Title)
		fmt.Fprintf(&b, `<div class="body">%s</div>`, a.Body)
		for _, slug := range a.Covers {
			fmt.Fprintf(&b, `<a class="covers" href="%s/players/%s.html">%s</a>`, s.BaseURL, slug, slug)
		}
		b.WriteString("</body></html>")
		s.putPage(a.URL, b.String())
	}
}

func (s *Site) putPage(url, html string) {
	s.pages[url] = html
	s.mimes[url] = [2]string{"text", "html"}
}

// Fetch returns the page content at url; it errors for non-page
// resources and unknown URLs (the crawler only fetches pages).
func (s *Site) Fetch(url string) (string, error) {
	page, ok := s.pages[url]
	if !ok {
		return "", fmt.Errorf("site: no page at %s", url)
	}
	return page, nil
}

// MIME resolves a URL to its primary and secondary MIME type; this
// implements the header detector's probe.
func (s *Site) MIME(url string) (string, string, error) {
	m, ok := s.mimes[url]
	if !ok {
		return "", "", fmt.Errorf("site: unknown resource %s", url)
	}
	return m[0], m[1], nil
}

// PageURLs returns all page URLs in sorted order.
func (s *Site) PageURLs() []string {
	out := make([]string, 0, len(s.pages))
	for u := range s.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// PlayerBySlug returns the ground-truth player with the given slug.
func (s *Site) PlayerBySlug(slug string) *Player {
	for _, p := range s.Players {
		if p.Slug == slug {
			return p
		}
	}
	return nil
}

// Figure13Answer returns the slugs of the players that satisfy the
// Figure 13 query per ground truth: left-handed female Australian Open
// champions whose footage contains net approaches.
func (s *Site) Figure13Answer() []string {
	var out []string
	for _, p := range s.Players {
		if p.Gender == "female" && p.Hand == "left" && len(p.ChampionYears) > 0 && p.NetRusher {
			out = append(out, p.Slug)
		}
	}
	sort.Strings(out)
	return out
}

func slugify(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}
