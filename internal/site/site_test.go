package site

import (
	"strings"
	"testing"

	"dlsearch/internal/video"
)

func TestGenerateDeterministicRoster(t *testing.T) {
	s := Generate(1)
	if len(s.Players) != len(roster) {
		t.Fatalf("players = %d", len(s.Players))
	}
	seles := s.PlayerBySlug("monica-seles")
	if seles == nil {
		t.Fatal("Seles missing")
	}
	if seles.Gender != "female" || seles.Hand != "left" || !seles.NetRusher {
		t.Fatalf("Seles ground truth wrong: %+v", seles)
	}
	if !strings.Contains(seles.History, "Winner of the Australian Open") {
		t.Fatalf("champion history lacks Winner: %q", seles.History)
	}
	nonChampion := s.PlayerBySlug("patty-schnyder")
	if strings.Contains(nonChampion.History, "Winner of the Australian Open") {
		t.Fatal("non-champion history claims a title")
	}
	if s.PlayerBySlug("nobody") != nil {
		t.Fatal("phantom player")
	}
}

func TestFigure13AnswerGroundTruth(t *testing.T) {
	s := Generate(1)
	got := s.Figure13Answer()
	want := []string{"jana-vilagos", "monica-seles"}
	if len(got) != len(want) {
		t.Fatalf("Figure13Answer = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Figure13Answer = %v, want %v", got, want)
		}
	}
}

func TestPagesWellFormedAndLinked(t *testing.T) {
	s := Generate(1)
	urls := s.PageURLs()
	// index + per player (bio+profile) + articles
	if len(urls) < 1+2*len(s.Players)+len(s.Articles) {
		t.Fatalf("pages = %d", len(urls))
	}
	index, err := s.Fetch(s.BaseURL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Players {
		if !strings.Contains(index, p.BioURL) {
			t.Fatalf("index lacks link to %s", p.BioURL)
		}
	}
	if _, err := s.Fetch("http://nope"); err == nil {
		t.Fatal("unknown page fetched")
	}
}

func TestBioPageHidesSemantics(t *testing.T) {
	s := Generate(1)
	p := s.PlayerBySlug("monica-seles")
	page, err := s.Fetch(p.BioURL)
	if err != nil {
		t.Fatal(err)
	}
	// The concepts are present as text…
	for _, frag := range []string{"Monica Seles", "female", "left", "<dt>Plays</dt>"} {
		if !strings.Contains(page, frag) {
			t.Fatalf("bio page lacks %q", frag)
		}
	}
	// …but only as presentation markup, not as schema markup.
	if strings.Contains(page, "webspace") || strings.Contains(page, "class=\"Player\"") {
		t.Fatal("bio page leaks schema structure")
	}
}

func TestMIMEResolution(t *testing.T) {
	s := Generate(1)
	p := s.Players[0]
	if pr, sec, err := s.MIME(p.VideoURL); err != nil || pr != "video" || sec != "mpeg" {
		t.Fatalf("video MIME = %s/%s, %v", pr, sec, err)
	}
	if pr, _, err := s.MIME(p.PictureURL); err != nil || pr != "image" {
		t.Fatalf("picture MIME = %s, %v", pr, err)
	}
	if pr, _, err := s.MIME(p.BioURL); err != nil || pr != "text" {
		t.Fatalf("page MIME = %s, %v", pr, err)
	}
	if _, _, err := s.MIME("http://nope"); err == nil {
		t.Fatal("unknown resource resolved")
	}
}

func TestVideoGroundTruthMatchesNetRusher(t *testing.T) {
	s := Generate(7)
	for _, p := range s.Players {
		v, err := s.Videos.Get(p.VideoURL)
		if err != nil {
			t.Fatalf("%s: %v", p.Slug, err)
		}
		hasNetplay := false
		for _, truth := range v.Truth {
			if truth.Kind == video.Tennis && truth.Netplay {
				hasNetplay = true
			}
		}
		if hasNetplay != p.NetRusher {
			t.Fatalf("%s: netplay footage %v, NetRusher %v", p.Slug, hasNetplay, p.NetRusher)
		}
	}
}

func TestArticlesCoverage(t *testing.T) {
	s := Generate(1)
	if len(s.Articles) == 0 {
		t.Fatal("no articles")
	}
	covered := false
	for _, a := range s.Articles {
		page, err := s.Fetch(a.URL)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(page, a.Title) {
			t.Fatalf("article page lacks title %q", a.Title)
		}
		if len(a.Covers) > 0 {
			covered = true
		}
	}
	if !covered {
		t.Fatal("no article covers any player")
	}
}
