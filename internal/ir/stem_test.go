package ir

import "testing"

// Standard Porter test vectors from the original 1980 paper.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		"caresses": "caress", "ponies": "poni", "ties": "ti",
		"caress": "caress", "cats": "cat",
		"feed": "feed", "agreed": "agre", "plastered": "plaster",
		"bled": "bled", "motoring": "motor", "sing": "sing",
		"conflated": "conflat", "troubled": "troubl", "sized": "size",
		"hopping": "hop", "tanned": "tan", "falling": "fall",
		"hissing": "hiss", "fizzed": "fizz", "failing": "fail",
		"filing": "file",
		"happy":  "happi", "sky": "sky",
		"relational": "relat", "conditional": "condit", "rational": "ration",
		"valenci": "valenc", "hesitanci": "hesit", "digitizer": "digit",
		"radicalli": "radic", "differentli": "differ", "vileli": "vile",
		"analogousli": "analog", "vietnamization": "vietnam",
		"predication": "predic", "operator": "oper", "feudalism": "feudal",
		"decisiveness": "decis", "hopefulness": "hope",
		"callousness": "callous", "formaliti": "formal",
		"sensitiviti": "sensit", "sensibiliti": "sensibl",
		"triplicate": "triplic", "formative": "form", "formalize": "formal",
		"electriciti": "electr", "electrical": "electr", "hopeful": "hope",
		"goodness": "good",
		"revival":  "reviv", "allowance": "allow", "inference": "infer",
		"airliner": "airlin", "gyroscopic": "gyroscop",
		"adjustable": "adjust", "defensible": "defens", "irritant": "irrit",
		"replacement": "replac", "adjustment": "adjust",
		"dependent": "depend", "adoption": "adopt", "communism": "commun",
		"activate": "activ", "homologous": "homolog", "effective": "effect",
		"bowdlerize": "bowdler",
		"probate":    "probat", "rate": "rate", "cease": "ceas",
		"controll": "control", "roll": "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, short words must pass through", w, got)
		}
	}
}

func TestStemIdempotentOnDomainWords(t *testing.T) {
	// Words from the running example; stemming twice must be stable for
	// the vocabulary to be well defined.
	for _, w := range []string{"winner", "champion", "tennis", "seles", "player", "approaches"} {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemCaseInsensitive(t *testing.T) {
	if Stem("Winner") != Stem("winner") {
		t.Error("stemming must lower-case")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Monica Seles, winner-of 1996!")
	want := []string{"monica", "seles", "winner", "of", "1996"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text should yield no tokens")
	}
	if len(Tokenize("...!!!")) != 0 {
		t.Fatal("punctuation-only text should yield no tokens")
	}
}

func TestTermsAppliesStopAndStem(t *testing.T) {
	got := Terms("The winner of the championships")
	// "the", "of" stopped; "winner" -> winner, "championships" -> championship...
	for _, term := range got {
		if IsStopWord(term) {
			t.Errorf("stop word %q survived", term)
		}
	}
	if len(got) != 2 {
		t.Fatalf("Terms = %v, want 2 terms", got)
	}
	if got[0] != "winner" {
		t.Errorf("Terms[0] = %q", got[0])
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("The") || !IsStopWord("and") {
		t.Error("common stop words not recognised")
	}
	if IsStopWord("tennis") {
		t.Error("tennis is not a stop word")
	}
}
