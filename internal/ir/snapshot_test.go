package ir

import (
	"testing"

	"dlsearch/internal/bat"
)

var snapQueries = []string{
	"champion winner serve",
	"seles",
	"melbourne trophy volley match",
	"match play game set court ball",
	"quetzalcoatl", // unknown term
}

// roundTrip exports ix and imports the state back, failing the test on
// any import error.
func roundTrip(t *testing.T, ix *Index) *Index {
	t.Helper()
	st := ix.ExportState()
	got, err := ImportState(st)
	if err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	return got
}

// TestSnapshotRoundTripExact: save→load yields byte-identical TopN
// rankings — documents AND scores — plus identical statistics, epoch
// and vocabulary.
func TestSnapshotRoundTripExact(t *testing.T) {
	ix := planCorpus(300, 19)
	got := roundTrip(t, ix)
	if got.DocCount() != ix.DocCount() || got.TermCount() != ix.TermCount() {
		t.Fatalf("size: %d/%d docs, %d/%d terms",
			got.DocCount(), ix.DocCount(), got.TermCount(), ix.TermCount())
	}
	if got.MaxDoc() != ix.MaxDoc() {
		t.Fatalf("MaxDoc %d != %d", got.MaxDoc(), ix.MaxDoc())
	}
	if got.Epoch() != ix.Epoch() {
		t.Fatalf("epoch %d != %d", got.Epoch(), ix.Epoch())
	}
	if got.Dirty() {
		t.Fatal("imported index reports pending derived state")
	}
	for _, q := range snapQueries {
		for _, n := range []int{1, 10, 50} {
			sameResults(t, q, got.TopN(q, n), ix.TopN(q, n))
		}
	}
	// The naive plan reads the rebuilt docTerms access path; it must
	// agree too, proving the base relations round-tripped.
	sameResults(t, "naive", got.TopNNaive("champion winner", 10), ix.TopNNaive("champion winner", 10))
	// Global-statistics scoring (the distributed read path).
	global := ix.StatsLocal()
	sameResults(t, "with stats",
		got.TopNWithStats("champion winner serve", 10, global),
		ix.TopNWithStats("champion winner serve", 10, global))
}

// TestSnapshotRoundTripPlans: budgeted evaluation after restore is
// byte-identical — the fragment placement (including incremental
// drift) round-trips exactly, not just the documents.
func TestSnapshotRoundTripPlans(t *testing.T) {
	ix := planCorpus(300, 23)
	ix.Fragmentize(6)
	// Drift the placement incrementally past the initial Fragmentize so
	// the exported fragments differ from what a fresh Fragmentize(6)
	// would build — the round-trip must preserve the drifted state.
	ix.Add(9001, "d9001", "champion serve volley extra melbourne")
	ix.Add(9002, "d9002", "seles hingis capriati trophy")
	ix.Freeze()
	got := roundTrip(t, ix)
	for _, q := range snapQueries {
		for _, plan := range []EvalPlan{
			{N: 10, Budget: 1},
			{N: 10, Budget: 3},
			{N: 10, Budget: 6},
			{N: 10, Budget: 2, MinQuality: 0.9},
		} {
			wantRes, wantEst := ix.TopNPlan(q, plan)
			gotRes, gotEst := got.TopNPlan(q, plan)
			sameResults(t, q, gotRes, wantRes)
			if gotEst != wantEst {
				t.Fatalf("%q plan %+v: estimate %+v, want %+v", q, plan, gotEst, wantEst)
			}
		}
	}
}

// TestSnapshotRoundTripMemoryBudget: a memory-budgeted index (cold
// lists compressed) round-trips to identical rankings, and the restored
// index re-applies the same budget.
func TestSnapshotRoundTripMemoryBudget(t *testing.T) {
	ix := planCorpus(300, 29)
	ix.SetMemoryBudget(2048)
	plainBefore, _, coldBefore := ix.MemoryFootprint()
	if coldBefore == 0 {
		t.Fatal("test corpus too small: no term was compressed")
	}
	got := roundTrip(t, ix)
	plainAfter, _, coldAfter := got.MemoryFootprint()
	if coldAfter != coldBefore || plainAfter != plainBefore {
		t.Fatalf("footprint: plain %d cold %d, want plain %d cold %d",
			plainAfter, coldAfter, plainBefore, coldBefore)
	}
	for _, q := range snapQueries {
		sameResults(t, q, got.TopN(q, 10), ix.TopN(q, 10))
	}
}

// TestSnapshotThenAdd: an imported index keeps indexing — documents
// added after restore rank exactly as they would on an index that
// never restarted, and freshly allocated oids never collide with
// restored ones.
func TestSnapshotThenAdd(t *testing.T) {
	live := planCorpus(200, 31)
	restored := roundTrip(t, live)
	extra := []string{
		"champion volley melbourne smash",
		"seles winner rally serve serve",
	}
	for i, text := range extra {
		oid := bat.OID(5000 + i)
		live.Add(oid, "u", text)
		restored.Add(oid, "u", text)
	}
	for _, q := range snapQueries {
		sameResults(t, q, restored.TopN(q, 20), live.TopN(q, 20))
	}
}

// TestImportStateFailsClosed: inconsistent states yield an error, not
// a partial index.
func TestImportStateFailsClosed(t *testing.T) {
	base := func() *IndexState {
		ix := planCorpus(20, 7)
		ix.Fragmentize(2)
		return ix.ExportState()
	}
	cases := []struct {
		name   string
		mutate func(*IndexState)
	}{
		{"unknown posting doc", func(st *IndexState) {
			st.Terms[0].Postings[0].Doc = 999999
		}},
		{"non-positive tf", func(st *IndexState) {
			st.Terms[0].Postings[0].TF = 0
		}},
		{"duplicate doc oid", func(st *IndexState) {
			st.Docs[1].OID = st.Docs[0].OID
		}},
		{"duplicate term oid", func(st *IndexState) {
			st.Terms[1].OID = st.Terms[0].OID
		}},
		{"duplicate stem", func(st *IndexState) {
			st.Terms[1].Stem = st.Terms[0].Stem
		}},
		{"fragment references unknown term", func(st *IndexState) {
			st.Fragments[0].Terms[0] = 999999
		}},
		{"sequence below term oids", func(st *IndexState) {
			// A forgotten/zeroed NextOID would let a post-restore Add
			// reissue a live term oid, silently merging two terms.
			st.NextOID = 0
		}},
		{"unsorted postings", func(st *IndexState) {
			// Swap the first two postings of the longest list; the 20-doc
			// corpus guarantees common terms with many postings.
			widest := 0
			for i := range st.Terms {
				if len(st.Terms[i].Postings) > len(st.Terms[widest].Postings) {
					widest = i
				}
			}
			p := st.Terms[widest].Postings
			p[0], p[1] = p[1], p[0]
		}},
	}
	for _, tc := range cases {
		st := base()
		tc.mutate(st)
		if _, err := ImportState(st); err == nil {
			t.Fatalf("%s: import succeeded on inconsistent state", tc.name)
		}
	}
}
