package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsearch/internal/bat"
)

// planCorpus builds a skewed-vocabulary corpus (the distribution the
// idf fragmentation exploits) directly in an index.
func planCorpus(n int, seed int64) *Index {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := rand.New(rand.NewSource(seed))
	ix := NewIndex()
	for i := 0; i < n; i++ {
		var text string
		for w := 0; w < 30; w++ {
			if rng.Intn(4) == 0 {
				text += rare[rng.Intn(len(rare))] + " "
			} else {
				text += common[rng.Intn(len(common))] + " "
			}
		}
		ix.Add(bat.OID(i+1), fmt.Sprintf("d%d", i+1), text)
	}
	return ix
}

func sameResults(t *testing.T, ctx string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestTopNPlanExactEqualsTopN: the zero-budget (exact) plan and the
// full-budget plan both return results byte-identical to TopN —
// scores included, which pins the floating-point accumulation order.
func TestTopNPlanExactEqualsTopN(t *testing.T) {
	ix := planCorpus(300, 11)
	for _, q := range []string{"champion winner serve", "seles", "melbourne trophy volley match", "nope"} {
		want := ix.TopN(q, 10)
		res, est := ix.TopNPlan(q, EvalPlan{N: 10})
		sameResults(t, "exact plan "+q, res, want)
		if est.Value() != 1.0 {
			t.Fatalf("exact plan quality = %v", est.Value())
		}
		full, est := ix.TopNPlan(q, EvalPlan{N: 10, Frags: 4, Budget: 4})
		sameResults(t, "full budget "+q, full, want)
		if est.Value() != 1.0 || est.FragsUsed != est.FragsTotal {
			t.Fatalf("full budget estimate = %+v", est)
		}
	}
}

// TestTopNPlanWithStatsEqualsWithStats: at full budget the plan path
// over global statistics is byte-identical to TopNWithStats, including
// the cached pre-resolved-terms variant.
func TestTopNPlanWithStatsEqualsWithStats(t *testing.T) {
	ix := planCorpus(250, 3)
	ix.Freeze()
	global := ix.StatsLocal()
	const q = "champion winner serve melbourne"
	want := ix.TopNWithStats(q, 10, global)
	ix.EnsureFragments(EvalPlan{Frags: 4})
	res, est := ix.TopNPlanWithStats(q, EvalPlan{N: 10, Frags: 4, Budget: 4}, global)
	sameResults(t, "plan with stats", res, want)
	if est.Value() != 1.0 {
		t.Fatalf("quality = %v", est.Value())
	}
	stems, oids := ix.ResolveQuery(q)
	res2, est2 := ix.TopNPlanWithStatsTerms(stems, oids, EvalPlan{N: 10, Frags: 4, Budget: 4}, global)
	sameResults(t, "plan with stats terms", res2, want)
	if est2 != est {
		t.Fatalf("terms-path estimate %+v != %+v", est2, est)
	}
}

// TestEvalPlanQualityMonotone: property over random corpora — the
// quality estimate is non-decreasing in the fragment budget and
// reaches exactly 1.0 at full budget.
func TestEvalPlanQualityMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := []string{"seles", "champion", "volley", "match", "court", "ball", "winner"}
	for iter := 0; iter < 10; iter++ {
		ix := planCorpus(50+rng.Intn(200), int64(iter))
		frags := 2 + rng.Intn(7)
		query := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		prev := 0.0
		for b := 1; b <= frags; b++ {
			_, est := ix.TopNPlan(query, EvalPlan{N: 10, Frags: frags, Budget: b})
			if v := est.Value(); v < prev-1e-12 {
				t.Fatalf("iter %d: quality %v after %v at budget %d", iter, v, prev, b)
			} else {
				prev = v
			}
		}
		if prev != 1.0 {
			t.Fatalf("iter %d: full budget quality = %v", iter, prev)
		}
	}
}

// TestEvalPlanQualityFloor: a quality floor extends evaluation past
// the budget until the floor is met.
func TestEvalPlanQualityFloor(t *testing.T) {
	ix := planCorpus(400, 9)
	const q = "seles champion match ball"
	_, cheap := ix.TopNPlan(q, EvalPlan{N: 10, Frags: 8, Budget: 1})
	if cheap.Value() >= 0.9 {
		t.Skipf("corpus did not produce a low-quality budget-1 plan (%v)", cheap.Value())
	}
	res, est := ix.TopNPlan(q, EvalPlan{N: 10, Frags: 8, Budget: 1, MinQuality: 0.9})
	if est.Value() < 0.9 {
		t.Fatalf("floor not honoured: %+v", est)
	}
	if est.FragsUsed <= cheap.FragsUsed {
		t.Fatalf("floor did not extend the budget: %+v vs %+v", est, cheap)
	}
	if len(res) == 0 {
		t.Fatal("no results under floored plan")
	}
	// An unreachable floor degrades to exact evaluation.
	full, est := ix.TopNPlan(q, EvalPlan{N: 10, Frags: 8, Budget: 1, MinQuality: 1.0})
	sameResults(t, "unreachable floor", full, ix.TopN(q, 10))
	if est.Value() != 1.0 {
		t.Fatalf("full extension quality = %v", est.Value())
	}
}

// TestMergeQuality: per-node masses sum; the merged value is the
// mass-weighted coverage.
func TestMergeQuality(t *testing.T) {
	a := QualityEstimate{CoveredIDF: 1, TotalIDF: 2, FragsUsed: 2, FragsTotal: 4}
	b := QualityEstimate{CoveredIDF: 3, TotalIDF: 3, FragsUsed: 1, FragsTotal: 8}
	m := MergeQuality(a, b)
	if m.CoveredIDF != 4 || m.TotalIDF != 5 || m.FragsUsed != 2 || m.FragsTotal != 8 {
		t.Fatalf("merged = %+v", m)
	}
	if v := m.Value(); v != 0.8 {
		t.Fatalf("merged value = %v", v)
	}
	if z := MergeQuality(); z.Value() != 1.0 {
		t.Fatalf("empty merge value = %v", MergeQuality().Value())
	}
}

// TestMemoryBudgetIdenticalRanking: compressing cold posting lists
// under a memory budget changes residency, never results — TopN,
// fragment plans and restricted scans all return byte-identical
// rankings, and adds after compression transparently re-inflate.
func TestMemoryBudgetIdenticalRanking(t *testing.T) {
	plainIx := planCorpus(300, 21)
	budgeted := planCorpus(300, 21)
	plainBefore, _, _ := budgeted.MemoryFootprint()
	budgeted.SetMemoryBudget(plainBefore / 4)
	plainAfter, compressed, cold := budgeted.MemoryFootprint()
	if cold == 0 || compressed == 0 {
		t.Fatalf("budget compressed nothing: plain %d -> %d, cold %d", plainBefore, plainAfter, cold)
	}
	if plainAfter > plainBefore/4 {
		t.Fatalf("plain residency %d above budget %d", plainAfter, plainBefore/4)
	}
	queries := []string{"champion winner serve", "seles", "match ball court", "melbourne trophy"}
	for _, q := range queries {
		sameResults(t, "budgeted topn "+q, budgeted.TopN(q, 10), plainIx.TopN(q, 10))
		wantRes, wantEst := plainIx.TopNPlan(q, EvalPlan{N: 10, Frags: 4, Budget: 2})
		gotRes, gotEst := budgeted.TopNPlan(q, EvalPlan{N: 10, Frags: 4, Budget: 2})
		sameResults(t, "budgeted plan "+q, gotRes, wantRes)
		if gotEst != wantEst {
			t.Fatalf("plan estimate %+v != %+v", gotEst, wantEst)
		}
	}
	cands := map[bat.OID]bool{1: true, 5: true, 9: true, 40: true}
	sameResults(t, "budgeted restricted",
		budgeted.TopNRestricted("champion ball", 10, cands),
		plainIx.TopNRestricted("champion ball", 10, cands))
	// Adds keep working against compressed terms and re-apply the
	// budget on the next freeze.
	plainIx.Add(1000, "d1000", "ball ball champion seles")
	budgeted.Add(1000, "d1000", "ball ball champion seles")
	sameResults(t, "after add", budgeted.TopN("ball seles", 10), plainIx.TopN("ball seles", 10))
	if _, _, cold := budgeted.MemoryFootprint(); cold == 0 {
		t.Fatal("budget not re-applied after add")
	}
	// Lifting the budget inflates everything back.
	budgeted.SetMemoryBudget(0)
	if plain, compressed, cold := budgeted.MemoryFootprint(); cold != 0 || compressed != 0 || plain == 0 {
		t.Fatalf("lifted budget left footprint %d/%d/%d", plain, compressed, cold)
	}
	sameResults(t, "after lift", budgeted.TopN("champion winner serve", 10), plainIx.TopN("champion winner serve", 10))
}

// TestReAddDirtiesIndex: folding new occurrences into an existing
// posting (re-adding a document) is a score-changing mutation like
// any other — it must dirty the index and move the epoch on the next
// freeze, or epoch-guarded ranking caches would serve stale scores.
func TestReAddDirtiesIndex(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "d", "winner serve")
	ix.Freeze()
	before := ix.Epoch()
	ix.Add(1, "d", "winner")
	if !ix.Dirty() {
		t.Fatal("tf fold did not dirty the index")
	}
	ix.Freeze()
	if ix.Epoch() == before {
		t.Fatal("epoch did not move after tf fold")
	}
}

// TestPlanReadyEmptyIndex: an empty vocabulary is trivially plan-ready
// (nothing to fragment), so budgeted queries on an empty partition
// stay on the read-lock path.
func TestPlanReadyEmptyIndex(t *testing.T) {
	ix := NewIndex()
	if !ix.PlanReady(EvalPlan{N: 5, Frags: 4, Budget: 1}) {
		t.Fatal("empty index not plan-ready")
	}
	res, est := ix.TopNPlanWithStats("anything", EvalPlan{N: 5, Frags: 4, Budget: 1}, Stats{})
	if len(res) != 0 || est.Value() != 1.0 {
		t.Fatalf("empty-index plan eval = %v / %+v", res, est)
	}
	ix.Add(1, "d", "winner")
	if ix.PlanReady(EvalPlan{N: 5, Frags: 4, Budget: 1}) {
		t.Fatal("dirty index reported plan-ready")
	}
}

// TestQualityZeroIDFMass: an estimate carrying no idf mass — an empty
// query, a term unknown to every node, or the exact plan's shortcut —
// is exact by definition. Both the scalar and the cluster-wide merge
// must report quality 1, never 0/0.
func TestQualityZeroIDFMass(t *testing.T) {
	zero := QualityEstimate{FragsUsed: 4, FragsTotal: 4}
	if v := zero.Value(); v != 1.0 {
		t.Fatalf("zero-mass estimate Value() = %v, want 1", v)
	}
	if !zero.Exact() {
		t.Fatal("zero-mass estimate is not Exact()")
	}
	// Merging nodes that all report zero mass (e.g. the query's terms
	// appear on no partition) must stay exact.
	m := MergeQuality(zero, QualityEstimate{FragsTotal: 8}, QualityEstimate{})
	if v := m.Value(); v != 1.0 {
		t.Fatalf("merged zero-mass estimate Value() = %v, want 1", v)
	}
	if m.FragsUsed != 4 || m.FragsTotal != 8 {
		t.Fatalf("merged fragment accounting = %+v", m)
	}
	// One node with mass dominates: the zero-mass peers must not drag
	// the merged quality down (0/0 contributes nothing, not zero).
	m = MergeQuality(zero, QualityEstimate{CoveredIDF: 3, TotalIDF: 4})
	if v := m.Value(); v != 0.75 {
		t.Fatalf("mixed merge Value() = %v, want 0.75", v)
	}
	// And the degenerate merge of nothing at all.
	if v := MergeQuality().Value(); v != 1.0 {
		t.Fatalf("empty merge Value() = %v, want 1", v)
	}
}
