package ir

import (
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"dlsearch/internal/bat"
)

// DefaultLambda is the smoothing parameter of the [Hie98] retrieval
// model; Hiemstra's experiments motivate a small value.
const DefaultLambda = 0.15

// Posting is one (document, term frequency) entry of a term's posting
// list. Postings are an access-path view over the DT/TF relations.
type Posting struct {
	Doc bat.OID
	TF  int
}

// Result is a ranked retrieval result.
type Result struct {
	Doc   bat.OID
	Score float64
}

// Fragment describes one horizontal fragment of the TF/DT relations.
// Fragments are formed on descending idf: fragment 0 holds the rarest
// (most significant, cheapest) terms, the last fragment the most
// frequent (least significant, most expensive) ones. The query
// optimizer may a-priori ignore trailing fragments ([BHC+01]).
type Fragment struct {
	Terms  []bat.OID // term oids in this fragment
	MaxIDF float64   // highest idf in the fragment
	MinIDF float64   // lowest idf in the fragment
	Tuples int       // number of DT tuples covered
}

// plist is the columnar access path of one term's posting list: two
// parallel arrays of dense document slots and term frequencies, the
// Monet-style decomposition the scorer scans. Slots index the
// docIDs/docLens columns of the index. At freeze time the list is
// sorted by document oid so restricted scans and merges run
// cache-friendly; appends in oid order (the common case) keep it
// sorted for free.
type plist struct {
	slots  []int32
	tfs    []int32
	sorted bool
}

// Index is the full-text meta-index: the five relations of the paper
// plus derived in-memory access paths.
//
//	T   term index           term-oid × term (stemmed, stopped)
//	D   document index       doc-oid × doc-url
//	DT  document term list   pair-oid × doc-oid and pair-oid × term-oid
//	TF  term frequency       pair-oid × tf
//	IDF inverse doc freq     term-oid × idf, idf = 1/df
//
// The query hot path is columnar: documents live in dense slots
// (docIDs/docLens), posting lists address those slots directly, and
// per-query score accumulation runs over a reusable doc-indexed score
// slice instead of hash maps. Derived state (IDF rows, posting-list
// sort order, fragment placement) is maintained incrementally; Freeze
// flushes whatever is still pending.
type Index struct {
	T   *bat.BAT
	D   *bat.BAT
	DTd *bat.BAT
	DTt *bat.BAT
	TF  *bat.BAT
	IDF *bat.BAT

	seq    *bat.Sequence
	lambda float64

	termID map[string]bat.OID
	plists map[bat.OID]*plist

	// Columnar document store: slot = dense insertion index.
	docIDs  []bat.OID
	docLens []int32
	docSlot map[bat.OID]int32
	maxDoc  bat.OID

	docTerms map[bat.OID]map[bat.OID]int // doc -> term -> tf (naive plan's access path)
	df       map[bat.OID]int
	totalDF  int

	idfPos map[bat.OID]int      // term -> row of the IDF relation
	dirty  map[bat.OID]struct{} // terms with pending derived-state work
	epoch  uint64               // freeze epoch: bumped by every Freeze that did work

	fragments []Fragment
	fragOf    map[bat.OID]int // term -> fragment index
	fragK     int             // granularity Fragmentize was last asked for

	// Plan-cost accounting (see cost.go): per-fragment evaluated-postings
	// counters (atomic.Pointer so /metrics scrapes race-free against
	// re-fragmentation) and the budgeted-evaluation cost observer.
	fragEval atomic.Pointer[[]atomic.Int64]
	costObs  func(PlanCostSample)

	// Content checksum, cached per freeze epoch (see checksum.go).
	// checksumDocs guards the one mutation Freeze cannot see: adding a
	// document whose text contributes no terms changes the doc count
	// without dirtying any term.
	checksum      string
	checksumEpoch uint64
	checksumDocs  int
	checksumOK    bool

	// Memory budget over the columnar posting lists: when positive,
	// Freeze keeps the plain slot/tf columns within the budget by
	// holding the coldest (lowest idf, largest) lists delta+varint
	// compressed; the scorer walks them without materialising.
	memBudget  int
	cold       map[bat.OID]CompressedPostings
	plainBytes int // resident bytes of the plain slot/tf columns

	scorers sync.Pool // *scorer: reusable per-query buffers
}

// NewIndex returns an empty index with the default ranking parameter.
func NewIndex() *Index {
	return &Index{
		T:        bat.New("T", bat.KindString),
		D:        bat.New("D", bat.KindString),
		DTd:      bat.New("DT.doc", bat.KindOID),
		DTt:      bat.New("DT.term", bat.KindOID),
		TF:       bat.New("TF", bat.KindInt),
		IDF:      bat.New("IDF", bat.KindFloat),
		seq:      bat.NewSequence(),
		lambda:   DefaultLambda,
		termID:   make(map[string]bat.OID),
		plists:   make(map[bat.OID]*plist),
		docSlot:  make(map[bat.OID]int32),
		docTerms: make(map[bat.OID]map[bat.OID]int),
		df:       make(map[bat.OID]int),
		idfPos:   make(map[bat.OID]int),
		dirty:    make(map[bat.OID]struct{}),
	}
}

// SetLambda overrides the smoothing parameter (0 < λ < 1).
func (ix *Index) SetLambda(l float64) { ix.lambda = l }

// Lambda returns the smoothing parameter of the retrieval model.
func (ix *Index) Lambda() float64 { return ix.lambda }

// MemoryBudget returns the posting-store memory budget (0 = unbounded).
func (ix *Index) MemoryBudget() int { return ix.memBudget }

// slotOf returns the dense slot of a document, registering it if new.
func (ix *Index) slotOf(doc bat.OID) int32 {
	if slot, ok := ix.docSlot[doc]; ok {
		return slot
	}
	slot := int32(len(ix.docIDs))
	ix.docSlot[doc] = slot
	ix.docIDs = append(ix.docIDs, doc)
	ix.docLens = append(ix.docLens, 0)
	if doc > ix.maxDoc {
		ix.maxDoc = doc
	}
	return slot
}

// Add indexes the body text of a document. The caller supplies the
// document oid from the global OID space; the paper's incremental
// indexing process fills DT/T/D first and derives TF/IDF, which here
// happens transparently (incrementally on the next freeze). Add must
// not run concurrently with queries.
func (ix *Index) Add(doc bat.OID, url, text string) {
	terms := Terms(text)
	counts := make(map[bat.OID]int, len(terms))
	for _, t := range terms {
		id, ok := ix.termID[t]
		if !ok {
			id = ix.seq.Next()
			ix.termID[t] = id
			ix.T.AppendString(id, t)
		}
		counts[id]++
	}
	ix.D.AppendString(doc, url)
	slot := ix.slotOf(doc)
	ix.docLens[slot] += int32(len(terms))
	dt := ix.docTerms[doc]
	if dt == nil {
		dt = make(map[bat.OID]int, len(counts))
		ix.docTerms[doc] = dt
	}
	for id, tf := range counts {
		pair := ix.seq.Next()
		ix.DTd.AppendOID(pair, doc)
		ix.DTt.AppendOID(pair, id)
		ix.TF.AppendInt(pair, int64(tf))
		if cp, ok := ix.cold[id]; ok {
			// The term's postings are held compressed: re-inflate before
			// appending; the next Freeze re-applies the memory budget.
			ix.inflate(id, cp)
		}
		pl := ix.plists[id]
		if pl == nil {
			pl = &plist{sorted: true}
			ix.plists[id] = pl
		}
		if dt[id] == 0 {
			ix.df[id]++
			ix.totalDF++
			if len(pl.slots) > 0 && ix.docIDs[pl.slots[len(pl.slots)-1]] > doc {
				pl.sorted = false
			}
			pl.slots = append(pl.slots, slot)
			pl.tfs = append(pl.tfs, int32(tf))
			ix.plainBytes += 8
			ix.dirty[id] = struct{}{}
			if ix.fragments != nil {
				ix.placeFragTerm(id, 1)
			}
		} else {
			// The document was added before with this term: fold the
			// new occurrences into the existing posting so the access
			// path agrees with the merged DT view (and with the naive
			// plan) instead of splitting the tf over two postings.
			// The fold changes scores (tf, and docLens above), so the
			// term is dirtied like any other mutation — epoch-guarded
			// caches must not keep serving the pre-fold ranking, and
			// the next Freeze re-applies any memory budget to the
			// re-inflated list.
			ix.dirty[id] = struct{}{}
			if pl.sorted {
				i := sort.Search(len(pl.slots), func(i int) bool {
					return ix.docIDs[pl.slots[i]] >= doc
				})
				if i < len(pl.slots) && pl.slots[i] == slot {
					pl.tfs[i] += int32(tf)
				}
			} else {
				for i := len(pl.slots) - 1; i >= 0; i-- {
					if pl.slots[i] == slot {
						pl.tfs[i] += int32(tf)
						break
					}
				}
			}
		}
		dt[id] += tf
	}
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int { return len(ix.docIDs) }

// MaxDoc returns the highest document oid ever indexed (NilOID when
// empty) — oid allocators seed from it so they never reuse a live oid.
func (ix *Index) MaxDoc() bat.OID { return ix.maxDoc }

// TermCount returns the size of the vocabulary.
func (ix *Index) TermCount() int { return len(ix.termID) }

// TermOID returns the oid of a raw (already stemmed) term.
func (ix *Index) TermOID(stem string) (bat.OID, bool) {
	id, ok := ix.termID[stem]
	return id, ok
}

// docLenOf returns |d| for a document oid (0 if unknown).
func (ix *Index) docLenOf(doc bat.OID) int {
	if slot, ok := ix.docSlot[doc]; ok {
		return int(ix.docLens[slot])
	}
	return 0
}

// Freeze brings all incrementally maintained derived state up to
// date: stale IDF rows are rewritten in place (new terms appended)
// and posting lists that received out-of-order appends are re-sorted
// by document oid. Freeze touches only the terms dirtied since the
// last freeze — it is O(changes), not O(vocabulary) — and is a no-op
// when nothing changed. Query methods freeze lazily; bulk loaders and
// the distributed cluster call it once after loading so concurrent
// read-only queries never mutate the index.
func (ix *Index) Freeze() {
	if len(ix.dirty) == 0 {
		return
	}
	ix.epoch++
	ids := make([]bat.OID, 0, len(ix.dirty))
	for id := range ix.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		idf := 1.0 / float64(ix.df[id])
		if pos, ok := ix.idfPos[id]; ok {
			ix.IDF.SetFloatAt(pos, idf)
		} else {
			ix.idfPos[id] = ix.IDF.Len()
			ix.IDF.AppendFloat(id, idf)
		}
		if pl := ix.plists[id]; pl != nil && !pl.sorted {
			pl.sortByDoc(ix.docIDs)
		}
	}
	clear(ix.dirty)
	ix.applyMemoryBudget()
}

// SetMemoryBudget bounds the resident size of the plain posting
// columns to budget bytes (8 bytes per posting): the coldest terms —
// lowest idf, i.e. the most frequent and largest lists — are held
// delta+varint compressed and the scorer walks them in place, trading
// scan speed for space exactly where the idf-descending design says
// the expensive, insignificant terms live. Adds touching a compressed
// term transparently re-inflate it; the next Freeze re-applies the
// budget. A budget <= 0 (the default) keeps every list plain.
func (ix *Index) SetMemoryBudget(budget int) {
	ix.memBudget = budget
	if ix.Dirty() {
		ix.Freeze() // applies the budget as its last step
		return
	}
	ix.applyMemoryBudget()
}

// MemoryFootprint reports the posting-store residency: plain bytes
// (8 per uncompressed posting), compressed bytes, and how many terms
// are held compressed.
func (ix *Index) MemoryFootprint() (plain, compressed, coldTerms int) {
	for _, cp := range ix.cold {
		compressed += cp.Bytes()
	}
	return ix.plainBytes, compressed, len(ix.cold)
}

// applyMemoryBudget enforces the memory budget: with no budget every
// compressed list is inflated back; otherwise the largest-df terms are
// compressed until the plain columns fit.
func (ix *Index) applyMemoryBudget() {
	if ix.memBudget <= 0 {
		for id, cp := range ix.cold {
			ix.inflate(id, cp)
		}
		return
	}
	if ix.plainBytes <= ix.memBudget {
		return
	}
	ids := make([]bat.OID, 0, len(ix.plists))
	for id, pl := range ix.plists {
		if len(pl.slots) > 0 && pl.sorted {
			ids = append(ids, id)
		}
	}
	// Coldest first: highest df (lowest idf); ties by oid for
	// determinism.
	sort.Slice(ids, func(i, j int) bool {
		if ix.df[ids[i]] != ix.df[ids[j]] {
			return ix.df[ids[i]] > ix.df[ids[j]]
		}
		return ids[i] < ids[j]
	})
	for _, id := range ids {
		if ix.plainBytes <= ix.memBudget {
			break
		}
		ix.compressTerm(id)
	}
}

// compressTerm moves one term's postings from the plain columns into
// the compressed store.
func (ix *Index) compressTerm(id bat.OID) {
	pl := ix.plists[id]
	ps := make([]Posting, len(pl.slots))
	for i, slot := range pl.slots {
		ps[i] = Posting{Doc: ix.docIDs[slot], TF: int(pl.tfs[i])}
	}
	if ix.cold == nil {
		ix.cold = make(map[bat.OID]CompressedPostings)
	}
	ix.cold[id] = Compress(ps)
	delete(ix.plists, id)
	ix.plainBytes -= 8 * len(ps)
}

// inflate materialises a compressed posting list back into the plain
// columns (doc-sorted, so the access-path invariants hold).
func (ix *Index) inflate(id bat.OID, cp CompressedPostings) {
	pl := &plist{
		slots:  make([]int32, 0, cp.Len()),
		tfs:    make([]int32, 0, cp.Len()),
		sorted: true,
	}
	cp.Walk(func(doc bat.OID, tf int) bool {
		pl.slots = append(pl.slots, ix.docSlot[doc])
		pl.tfs = append(pl.tfs, int32(tf))
		return true
	})
	ix.plists[id] = pl
	delete(ix.cold, id)
	ix.plainBytes += 8 * len(pl.slots)
}

// postingLen returns the posting count of a term over both stores.
func (ix *Index) postingLen(id bat.OID) int {
	if pl := ix.plists[id]; pl != nil {
		return len(pl.slots)
	}
	return ix.cold[id].Len()
}

// sortByDoc co-sorts the slot/tf columns ascending by document oid.
func (pl *plist) sortByDoc(docIDs []bat.OID) {
	ord := make([]int32, len(pl.slots))
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(i, j int) bool {
		return docIDs[pl.slots[ord[i]]] < docIDs[pl.slots[ord[j]]]
	})
	slots := make([]int32, len(pl.slots))
	tfs := make([]int32, len(pl.tfs))
	for i, o := range ord {
		slots[i] = pl.slots[o]
		tfs[i] = pl.tfs[o]
	}
	pl.slots, pl.tfs = slots, tfs
	pl.sorted = true
}

// Epoch returns the freeze epoch: a counter bumped by every Freeze
// that had pending derived-state work. Together with Dirty it lets
// query-side caches (query text → resolved term oids) validate their
// entries: a resolution captured at epoch e on a clean index stays
// valid until the epoch moves.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// Dirty reports whether derived state (IDF rows, posting sort order,
// and therefore term resolutions captured by caches) is pending a
// Freeze.
func (ix *Index) Dirty() bool { return len(ix.dirty) > 0 }

// ResolveQuery resolves query text through the tokenize/stop/stem
// pipeline to the unique known terms, returned as parallel stem/oid
// slices. Terms outside this index's vocabulary are omitted: they
// cannot contribute postings here (the global statistics a distributed
// node receives are keyed by stem, which is why the stems ride along).
func (ix *Index) ResolveQuery(query string) (stems []string, oids []bat.OID) {
	for _, t := range Terms(query) {
		if id, ok := ix.termID[t]; ok && !slices.Contains(oids, id) {
			stems = append(stems, t)
			oids = append(oids, id)
		}
	}
	return stems, oids
}

// IDFOf returns idf(t) = 1/df(t) for a stemmed term.
func (ix *Index) IDFOf(stem string) float64 {
	id, ok := ix.termID[stem]
	if !ok {
		return 0
	}
	ix.Freeze()
	v, _ := ix.IDF.FloatOfHead(id)
	return v
}

// weight is the per-term contribution of the [Hie98]-derived model:
//
//	w(t,d) = log(1 + λ·tf(t,d)·Σ_t' df(t') / ((1-λ)·df(t)·|d|))
//
// Rare terms (low df, high idf) contribute most, which is exactly the
// property the idf-descending fragmentation exploits.
func (ix *Index) weight(tf, df, docLen int) float64 {
	if tf == 0 || df == 0 || docLen == 0 {
		return 0
	}
	return logWeight(ix.lambda, tf, df, ix.totalDF, docLen)
}

func logWeight(lambda float64, tf, df, totalDF, docLen int) float64 {
	return math.Log(1 + lambda*float64(tf)*float64(totalDF)/((1-lambda)*float64(df)*float64(docLen)))
}

// queryTermsInto resolves query text to known term oids, reusing buf.
// Queries are a handful of terms, so duplicates are eliminated with a
// linear scan instead of an allocated seen-set.
func (ix *Index) queryTermsInto(buf []bat.OID, query string) []bat.OID {
	out := buf[:0]
	for _, t := range Terms(query) {
		if id, ok := ix.termID[t]; ok && !slices.Contains(out, id) {
			out = append(out, id)
		}
	}
	return out
}

// topNFromScores selects the n best (score desc, doc asc) results
// from a score map; retained as the naive plan's selection step.
func topNFromScores(scores map[bat.OID]float64, n int) []Result {
	res := make([]Result, 0, len(scores))
	for d, s := range scores {
		if s > 0 {
			res = append(res, Result{Doc: d, Score: s})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Doc < res[j].Doc
	})
	if n < 0 {
		n = 0
	}
	if len(res) > n {
		res = res[:n]
	}
	return res
}

// TopN returns the n best-ranking documents for the query using the
// optimized plan: only the posting lists of the query terms are
// touched and scores accumulate per candidate document.
func (ix *Index) TopN(query string, n int) []Result {
	return ix.TopNRestricted(query, n, nil)
}

// TopNRestricted is TopN with an optional a-priori candidate
// restriction (the paper's example: only articles by a certain
// author). A nil candidate set means no restriction.
func (ix *Index) TopNRestricted(query string, n int, candidates map[bat.OID]bool) []Result {
	ix.Freeze()
	s := ix.getScorer()
	defer ix.putScorer(s)
	s.qterms = ix.queryTermsInto(s.qterms, query)
	for _, id := range s.qterms {
		ix.scoreTerm(s, id, ix.df[id], ix.totalDF, candidates)
	}
	return s.selectTopN(ix.docIDs, n)
}

// TopNTerms is TopN over pre-resolved term oids (see ResolveQuery),
// skipping the tokenize/stop/stem pipeline — the entry point for the
// query-side term cache. The oids must belong to this index.
func (ix *Index) TopNTerms(terms []bat.OID, n int) []Result {
	return ix.TopNTermsRestricted(terms, n, nil)
}

// TopNTermsRestricted is TopNRestricted over pre-resolved term oids.
func (ix *Index) TopNTermsRestricted(terms []bat.OID, n int, candidates map[bat.OID]bool) []Result {
	ix.Freeze()
	s := ix.getScorer()
	defer ix.putScorer(s)
	for _, id := range terms {
		ix.scoreTerm(s, id, ix.df[id], ix.totalDF, candidates)
	}
	return s.selectTopN(ix.docIDs, n)
}

// TopNNaive computes the same answer with the unoptimized plan: every
// document is scored against every query term through the DT access
// path, then the full ranking is cut to n. Experiment E16's baseline.
func (ix *Index) TopNNaive(query string, n int) []Result {
	ix.Freeze()
	qts := ix.queryTermsInto(nil, query)
	scores := make(map[bat.OID]float64)
	for doc, terms := range ix.docTerms {
		s := 0.0
		for _, id := range qts {
			if tf, ok := terms[id]; ok {
				s += ix.weight(tf, ix.df[id], ix.docLenOf(doc))
			}
		}
		if s > 0 {
			scores[doc] = s
		}
	}
	return topNFromScores(scores, n)
}

// Fragmentize partitions the vocabulary into k horizontal fragments on
// descending idf with approximately equal DT tuple counts per
// fragment, mirroring the paper's physical design: high-idf
// (significant, cheap) terms lead; low-idf (insignificant, expensive)
// terms trail, where they can be cut off a-priori.
func (ix *Index) Fragmentize(k int) {
	if k < 1 {
		k = 1
	}
	ix.Freeze()
	ix.fragK = k
	ids := make([]bat.OID, 0, len(ix.df))
	total := 0
	for id := range ix.df {
		ids = append(ids, id)
		total += ix.postingLen(id)
	}
	// Descending idf == ascending df; ties broken by oid for determinism.
	sort.Slice(ids, func(i, j int) bool {
		if ix.df[ids[i]] != ix.df[ids[j]] {
			return ix.df[ids[i]] < ix.df[ids[j]]
		}
		return ids[i] < ids[j]
	})
	per := (total + k - 1) / k
	if per < 1 {
		per = 1
	}
	ix.fragments = nil
	ix.fragOf = make(map[bat.OID]int, len(ids))
	cur := Fragment{MaxIDF: 0, MinIDF: math.Inf(1)}
	for _, id := range ids {
		idf := 1.0 / float64(ix.df[id])
		cur.Terms = append(cur.Terms, id)
		ix.fragOf[id] = len(ix.fragments)
		cur.Tuples += ix.postingLen(id)
		if idf > cur.MaxIDF {
			cur.MaxIDF = idf
		}
		if idf < cur.MinIDF {
			cur.MinIDF = idf
		}
		if cur.Tuples >= per && len(ix.fragments) < k-1 {
			ix.fragments = append(ix.fragments, cur)
			cur = Fragment{MaxIDF: 0, MinIDF: math.Inf(1)}
		}
	}
	if len(cur.Terms) > 0 {
		ix.fragments = append(ix.fragments, cur)
	}
	// Fresh fragmentation, fresh per-fragment cost counters (cost.go).
	fe := make([]atomic.Int64, len(ix.fragments))
	ix.fragEval.Store(&fe)
}

// placeFragTerm incrementally maintains the fragmentation when Add
// touches a term: instead of discarding the whole fragmentation, the
// term is (re)placed into the fragment whose idf range covers its new
// idf, and tuple counts are adjusted by deltaTuples. Balance may
// drift as documents stream in — Fragmentize re-balances — but the
// invariants the cut-off relies on (every term in exactly one
// fragment, idf descending across fragments) hold continuously.
func (ix *Index) placeFragTerm(id bat.OID, deltaTuples int) {
	idf := 1.0 / float64(ix.df[id])
	// Target: the first fragment whose idf range reaches down to this
	// idf; terms rarer than everything seen go to fragment 0, terms
	// more common than everything seen extend the last fragment.
	target := len(ix.fragments) - 1
	for f := range ix.fragments {
		if ix.fragments[f].MinIDF <= idf {
			target = f
			break
		}
	}
	old, had := ix.fragOf[id]
	tuples := ix.postingLen(id)
	if had {
		if old == target {
			ix.fragments[old].Tuples += deltaTuples
			ix.expandFrag(target, idf)
			return
		}
		// df changed enough to cross a fragment boundary: move the
		// term. The old fragment keeps its (now conservative) bounds.
		fo := &ix.fragments[old]
		fo.Tuples -= tuples - deltaTuples
		for i, t := range fo.Terms {
			if t == id {
				fo.Terms[i] = fo.Terms[len(fo.Terms)-1]
				fo.Terms = fo.Terms[:len(fo.Terms)-1]
				break
			}
		}
	}
	ft := &ix.fragments[target]
	ft.Terms = append(ft.Terms, id)
	ft.Tuples += tuples
	ix.fragOf[id] = target
	ix.expandFrag(target, idf)
}

// expandFrag widens a fragment's idf bounds to cover idf.
func (ix *Index) expandFrag(f int, idf float64) {
	if idf > ix.fragments[f].MaxIDF {
		ix.fragments[f].MaxIDF = idf
	}
	if idf < ix.fragments[f].MinIDF {
		ix.fragments[f].MinIDF = idf
	}
}

// Fragments returns the current fragmentation (nil before the first
// Fragmentize; afterwards it stays valid across Add through
// incremental placement).
func (ix *Index) Fragments() []Fragment { return ix.fragments }

// TopNFragments evaluates the query over only the first maxFrag
// fragments and returns the results plus the structured quality
// estimate: the fraction of the query's total idf mass covered by the
// processed fragments (Value() == 1.0 means the cut-off provably did
// not change the candidate term set). This is the a-priori
// cost/quality trade-off of [BHC+01]; EvalPlan is its generalised,
// pipeline-wide form and this method is now a thin view over it that
// keeps whatever fragmentation already exists.
func (ix *Index) TopNFragments(query string, n, maxFrag int) ([]Result, QualityEstimate) {
	ix.Freeze()
	if ix.fragments == nil {
		ix.Fragmentize(1)
	}
	s := ix.getScorer()
	defer ix.putScorer(s)
	s.qterms = ix.queryTermsInto(s.qterms, query)
	if maxFrag <= 0 {
		// Degenerate cut-off: nothing is evaluated (EvalPlan reads a
		// non-positive budget as "all", so this keeps the historical
		// maxFrag semantics).
		est := QualityEstimate{FragsTotal: len(ix.fragments)}
		for _, id := range s.qterms {
			if df := ix.df[id]; df > 0 {
				est.TotalIDF += 1.0 / float64(df)
			}
		}
		return nil, est
	}
	est := ix.evalPlan(s, nil, s.qterms, EvalPlan{N: n, Budget: maxFrag}, nil)
	return s.selectTopN(ix.docIDs, n), est
}

// Merge folds per-node rankings into a master ranking of size n; the
// central DBMS of the paper performs exactly this merge over the
// RES(doc-oid, score) sets the distributed nodes return.
func Merge(n int, rankings ...[]Result) []Result {
	total := 0
	for _, r := range rankings {
		total += len(r)
	}
	all := make([]Result, 0, total)
	for _, r := range rankings {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	if n < 0 {
		n = 0
	}
	if len(all) > n {
		all = all[:n]
	}
	return all
}
