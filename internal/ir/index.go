package ir

import (
	"math"
	"sort"

	"dlsearch/internal/bat"
)

// DefaultLambda is the smoothing parameter of the [Hie98] retrieval
// model; Hiemstra's experiments motivate a small value.
const DefaultLambda = 0.15

// Posting is one (document, term frequency) entry of a term's posting
// list. Postings are an access-path view over the DT/TF relations.
type Posting struct {
	Doc bat.OID
	TF  int
}

// Result is a ranked retrieval result.
type Result struct {
	Doc   bat.OID
	Score float64
}

// Fragment describes one horizontal fragment of the TF/DT relations.
// Fragments are formed on descending idf: fragment 0 holds the rarest
// (most significant, cheapest) terms, the last fragment the most
// frequent (least significant, most expensive) ones. The query
// optimizer may a-priori ignore trailing fragments ([BHC+01]).
type Fragment struct {
	Terms  []bat.OID // term oids in this fragment
	MaxIDF float64   // highest idf in the fragment
	MinIDF float64   // lowest idf in the fragment
	Tuples int       // number of DT tuples covered
}

// Index is the full-text meta-index: the five relations of the paper
// plus derived in-memory access paths.
//
//	T   term index           term-oid × term (stemmed, stopped)
//	D   document index       doc-oid × doc-url
//	DT  document term list   pair-oid × doc-oid and pair-oid × term-oid
//	TF  term frequency       pair-oid × tf
//	IDF inverse doc freq     term-oid × idf, idf = 1/df
type Index struct {
	T   *bat.BAT
	D   *bat.BAT
	DTd *bat.BAT
	DTt *bat.BAT
	TF  *bat.BAT
	IDF *bat.BAT

	seq    *bat.Sequence
	lambda float64

	termID   map[string]bat.OID
	postings map[bat.OID][]Posting
	docTerms map[bat.OID]map[bat.OID]int // doc -> term -> tf (naive plan's access path)
	docLen   map[bat.OID]int
	df       map[bat.OID]int
	totalDF  int

	fragments []Fragment
	idfDirty  bool
}

// NewIndex returns an empty index with the default ranking parameter.
func NewIndex() *Index {
	return &Index{
		T:        bat.New("T", bat.KindString),
		D:        bat.New("D", bat.KindString),
		DTd:      bat.New("DT.doc", bat.KindOID),
		DTt:      bat.New("DT.term", bat.KindOID),
		TF:       bat.New("TF", bat.KindInt),
		IDF:      bat.New("IDF", bat.KindFloat),
		seq:      bat.NewSequence(),
		lambda:   DefaultLambda,
		termID:   make(map[string]bat.OID),
		postings: make(map[bat.OID][]Posting),
		docTerms: make(map[bat.OID]map[bat.OID]int),
		docLen:   make(map[bat.OID]int),
		df:       make(map[bat.OID]int),
	}
}

// SetLambda overrides the smoothing parameter (0 < λ < 1).
func (ix *Index) SetLambda(l float64) { ix.lambda = l }

// Add indexes the body text of a document. The caller supplies the
// document oid from the global OID space; the paper's incremental
// indexing process fills DT/T/D first and derives TF/IDF, which here
// happens transparently (IDF lazily on first query).
func (ix *Index) Add(doc bat.OID, url, text string) {
	terms := Terms(text)
	counts := make(map[bat.OID]int)
	for _, t := range terms {
		id, ok := ix.termID[t]
		if !ok {
			id = ix.seq.Next()
			ix.termID[t] = id
			ix.T.AppendString(id, t)
		}
		counts[id]++
	}
	ix.D.AppendString(doc, url)
	ix.docLen[doc] += len(terms)
	dt := ix.docTerms[doc]
	if dt == nil {
		dt = make(map[bat.OID]int)
		ix.docTerms[doc] = dt
	}
	for id, tf := range counts {
		pair := ix.seq.Next()
		ix.DTd.AppendOID(pair, doc)
		ix.DTt.AppendOID(pair, id)
		ix.TF.AppendInt(pair, int64(tf))
		if dt[id] == 0 {
			ix.df[id]++
			ix.totalDF++
		}
		dt[id] += tf
		ix.postings[id] = append(ix.postings[id], Posting{Doc: doc, TF: tf})
	}
	ix.idfDirty = true
	ix.fragments = nil
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int { return len(ix.docLen) }

// TermCount returns the size of the vocabulary.
func (ix *Index) TermCount() int { return len(ix.termID) }

// TermOID returns the oid of a raw (already stemmed) term.
func (ix *Index) TermOID(stem string) (bat.OID, bool) {
	id, ok := ix.termID[stem]
	return id, ok
}

// refreshIDF rebuilds the IDF relation from the df counts: the paper
// defines idf(t) = 1/df(t) and notes IDF is derivable from TF/DT.
func (ix *Index) refreshIDF() {
	if !ix.idfDirty {
		return
	}
	ix.IDF = bat.New("IDF", bat.KindFloat)
	ids := make([]bat.OID, 0, len(ix.df))
	for id := range ix.df {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ix.IDF.AppendFloat(id, 1.0/float64(ix.df[id]))
	}
	ix.idfDirty = false
}

// IDFOf returns idf(t) = 1/df(t) for a stemmed term.
func (ix *Index) IDFOf(stem string) float64 {
	id, ok := ix.termID[stem]
	if !ok {
		return 0
	}
	ix.refreshIDF()
	v, _ := ix.IDF.FloatOfHead(id)
	return v
}

// weight is the per-term contribution of the [Hie98]-derived model:
//
//	w(t,d) = log(1 + λ·tf(t,d)·Σ_t' df(t') / ((1-λ)·df(t)·|d|))
//
// Rare terms (low df, high idf) contribute most, which is exactly the
// property the idf-descending fragmentation exploits.
func (ix *Index) weight(tf, df, docLen int) float64 {
	if tf == 0 || df == 0 || docLen == 0 {
		return 0
	}
	return logWeight(ix.lambda, tf, df, ix.totalDF, docLen)
}

func logWeight(lambda float64, tf, df, totalDF, docLen int) float64 {
	return math.Log(1 + lambda*float64(tf)*float64(totalDF)/((1-lambda)*float64(df)*float64(docLen)))
}

// queryTerms resolves query text to known term oids.
func (ix *Index) queryTerms(query string) []bat.OID {
	var out []bat.OID
	seen := make(map[bat.OID]bool)
	for _, t := range Terms(query) {
		if id, ok := ix.termID[t]; ok && !seen[id] {
			out = append(out, id)
			seen[id] = true
		}
	}
	return out
}

// topNFromScores selects the n best (score desc, doc asc) results.
func topNFromScores(scores map[bat.OID]float64, n int) []Result {
	res := make([]Result, 0, len(scores))
	for d, s := range scores {
		if s > 0 {
			res = append(res, Result{Doc: d, Score: s})
		}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].Doc < res[j].Doc
	})
	if len(res) > n {
		res = res[:n]
	}
	return res
}

// TopN returns the n best-ranking documents for the query using the
// optimized plan: only the posting lists of the query terms are
// touched and scores accumulate per candidate document.
func (ix *Index) TopN(query string, n int) []Result {
	return ix.TopNRestricted(query, n, nil)
}

// TopNRestricted is TopN with an optional a-priori candidate
// restriction (the paper's example: only articles by a certain
// author). A nil candidate set means no restriction.
func (ix *Index) TopNRestricted(query string, n int, candidates map[bat.OID]bool) []Result {
	ix.refreshIDF()
	scores := make(map[bat.OID]float64)
	for _, id := range ix.queryTerms(query) {
		df := ix.df[id]
		for _, p := range ix.postings[id] {
			if candidates != nil && !candidates[p.Doc] {
				continue
			}
			scores[p.Doc] += ix.weight(p.TF, df, ix.docLen[p.Doc])
		}
	}
	return topNFromScores(scores, n)
}

// TopNNaive computes the same answer with the unoptimized plan: every
// document is scored against every query term through the DT access
// path, then the full ranking is cut to n. Experiment E16's baseline.
func (ix *Index) TopNNaive(query string, n int) []Result {
	ix.refreshIDF()
	qts := ix.queryTerms(query)
	scores := make(map[bat.OID]float64)
	for doc, terms := range ix.docTerms {
		s := 0.0
		for _, id := range qts {
			if tf, ok := terms[id]; ok {
				s += ix.weight(tf, ix.df[id], ix.docLen[doc])
			}
		}
		if s > 0 {
			scores[doc] = s
		}
	}
	return topNFromScores(scores, n)
}

// Fragmentize partitions the vocabulary into k horizontal fragments on
// descending idf with approximately equal DT tuple counts per
// fragment, mirroring the paper's physical design: high-idf
// (significant, cheap) terms lead; low-idf (insignificant, expensive)
// terms trail, where they can be cut off a-priori.
func (ix *Index) Fragmentize(k int) {
	if k < 1 {
		k = 1
	}
	ix.refreshIDF()
	ids := make([]bat.OID, 0, len(ix.df))
	total := 0
	for id := range ix.df {
		ids = append(ids, id)
		total += len(ix.postings[id])
	}
	// Descending idf == ascending df; ties broken by oid for determinism.
	sort.Slice(ids, func(i, j int) bool {
		if ix.df[ids[i]] != ix.df[ids[j]] {
			return ix.df[ids[i]] < ix.df[ids[j]]
		}
		return ids[i] < ids[j]
	})
	per := (total + k - 1) / k
	if per < 1 {
		per = 1
	}
	ix.fragments = nil
	cur := Fragment{MaxIDF: 0, MinIDF: math.Inf(1)}
	for _, id := range ids {
		idf := 1.0 / float64(ix.df[id])
		cur.Terms = append(cur.Terms, id)
		cur.Tuples += len(ix.postings[id])
		if idf > cur.MaxIDF {
			cur.MaxIDF = idf
		}
		if idf < cur.MinIDF {
			cur.MinIDF = idf
		}
		if cur.Tuples >= per && len(ix.fragments) < k-1 {
			ix.fragments = append(ix.fragments, cur)
			cur = Fragment{MaxIDF: 0, MinIDF: math.Inf(1)}
		}
	}
	if len(cur.Terms) > 0 {
		ix.fragments = append(ix.fragments, cur)
	}
}

// Fragments returns the current fragmentation (nil before Fragmentize
// or after new documents arrive).
func (ix *Index) Fragments() []Fragment { return ix.fragments }

// TopNFragments evaluates the query over only the first maxFrag
// fragments and returns the results plus the estimated quality: the
// fraction of the query's total idf mass covered by the processed
// fragments (1.0 means the cut-off provably did not change the
// candidate term set). This is the a-priori cost/quality trade-off of
// [BHC+01].
func (ix *Index) TopNFragments(query string, n, maxFrag int) ([]Result, float64) {
	ix.refreshIDF()
	if ix.fragments == nil {
		ix.Fragmentize(1)
	}
	if maxFrag > len(ix.fragments) {
		maxFrag = len(ix.fragments)
	}
	inFrag := make(map[bat.OID]int)
	for fi, f := range ix.fragments {
		for _, id := range f.Terms {
			inFrag[id] = fi
		}
	}
	qts := ix.queryTerms(query)
	var coveredIDF, totalIDF float64
	scores := make(map[bat.OID]float64)
	for _, id := range qts {
		idf := 1.0 / float64(ix.df[id])
		totalIDF += idf
		if inFrag[id] >= maxFrag {
			continue // a-priori ignored fragment
		}
		coveredIDF += idf
		for _, p := range ix.postings[id] {
			scores[p.Doc] += ix.weight(p.TF, ix.df[id], ix.docLen[p.Doc])
		}
	}
	quality := 1.0
	if totalIDF > 0 {
		quality = coveredIDF / totalIDF
	}
	return topNFromScores(scores, n), quality
}

// Merge folds per-node rankings into a master ranking of size n; the
// central DBMS of the paper performs exactly this merge over the
// RES(doc-oid, rank) sets the distributed nodes return.
func Merge(n int, rankings ...[]Result) []Result {
	var all []Result
	for _, r := range rankings {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
