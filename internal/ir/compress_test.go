package ir

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dlsearch/internal/bat"
)

func TestCompressRoundTrip(t *testing.T) {
	ps := []Posting{{Doc: 5, TF: 2}, {Doc: 1, TF: 7}, {Doc: 100, TF: 1}}
	c := Compress(ps)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, err := c.Decode()
	if err != nil {
		t.Fatal(err)
	}
	// Decoded postings come back sorted by doc.
	want := []Posting{{Doc: 1, TF: 7}, {Doc: 5, TF: 2}, {Doc: 100, TF: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	c := Compress(nil)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("empty compress = %+v", c)
	}
	got, err := c.Decode()
	if err != nil || len(got) != 0 {
		t.Fatalf("decode empty = %v, %v", got, err)
	}
}

func TestCompressWalkEarlyStop(t *testing.T) {
	c := Compress([]Posting{{Doc: 1, TF: 1}, {Doc: 2, TF: 2}, {Doc: 3, TF: 3}})
	seen := 0
	if err := c.Walk(func(doc bat.OID, tf int) bool {
		seen++
		return seen < 2
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("Walk visited %d", seen)
	}
}

func TestCorruptPostingsRejected(t *testing.T) {
	c := CompressedPostings{n: 1, buf: []byte{0x80}} // dangling varint
	if _, err := c.Decode(); err == nil {
		t.Fatal("corrupt gap accepted")
	}
	if err := c.Walk(func(bat.OID, int) bool { return true }); err == nil {
		t.Fatal("corrupt walk accepted")
	}
	// Valid varints but count mismatch.
	good := Compress([]Posting{{Doc: 1, TF: 1}})
	good.n = 2
	if _, err := good.Decode(); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

// Property: round trip preserves the (sorted) posting multiset.
func TestPropertyCompressRoundTrip(t *testing.T) {
	f := func(docs []uint16, tfs []uint8) bool {
		n := len(docs)
		if len(tfs) < n {
			n = len(tfs)
		}
		seen := map[uint16]bool{}
		var ps []Posting
		for i := 0; i < n; i++ {
			if seen[docs[i]] {
				continue // posting lists hold one entry per doc
			}
			seen[docs[i]] = true
			ps = append(ps, Posting{Doc: bat.OID(docs[i]) + 1, TF: int(tfs[i]) + 1})
		}
		c := Compress(ps)
		got, err := c.Decode()
		if err != nil || len(got) != len(ps) {
			return false
		}
		back := map[bat.OID]int{}
		for _, p := range got {
			back[p.Doc] = p.TF
		}
		for _, p := range ps {
			if back[p.Doc] != p.TF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressionRatio: gap+varint encoding must beat the plain 16
// bytes/posting representation substantially on dense posting lists.
func TestCompressionRatio(t *testing.T) {
	ix := NewIndex()
	rng := rand.New(rand.NewSource(3))
	words := []string{"match", "set", "game", "winner", "seles", "net"}
	for d := 1; d <= 2000; d++ {
		var text string
		for w := 0; w < 20; w++ {
			text += words[rng.Intn(len(words))] + " "
		}
		ix.Add(bat.OID(d), "u", text)
	}
	_, plain, packed := CompressIndex(ix)
	if packed >= plain/3 {
		t.Fatalf("compression too weak: %d packed vs %d plain", packed, plain)
	}
	t.Logf("compression: %d -> %d bytes (%.1fx)", plain, packed, float64(plain)/float64(packed))
}

// BenchmarkCompressedScan vs BenchmarkPlainScan: the ablation's time
// cost of scoring through the compressed representation.
func BenchmarkPlainScan(b *testing.B) {
	ps := make([]Posting, 10000)
	for i := range ps {
		ps[i] = Posting{Doc: bat.OID(i * 3), TF: i%7 + 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		for _, p := range ps {
			sum += p.TF
		}
		_ = sum
	}
}

func BenchmarkCompressedScan(b *testing.B) {
	ps := make([]Posting, 10000)
	for i := range ps {
		ps[i] = Posting{Doc: bat.OID(i*3 + 1), TF: i%7 + 1}
	}
	c := Compress(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		if err := c.Walk(func(_ bat.OID, tf int) bool { sum += tf; return true }); err != nil {
			b.Fatal(err)
		}
		_ = sum
	}
}

var _ = fmt.Sprint // reserved for debugging helpers
