package ir

// Cost accounting for budgeted evaluation: the raw signal behind
// SLO-driven adaptive serving. Each budgeted evaluation reports one
// PlanCostSample (how many fragments were admitted, how many postings
// that cost, how long scoring took, what quality came out) through a
// nil-safe observer hook, and per-fragment evaluated-postings counters
// expose where the evaluation cost concentrates. Everything here is
// free when unused: no observer, no clock read; no fragmentation, no
// counters.

// PlanCostSample is the cost accounting of one budgeted evaluation.
type PlanCostSample struct {
	// Frags is the fragmentation granularity evaluated against.
	Frags int
	// Budget is the number of leading fragments actually admitted,
	// after any MinQuality floor extension — the effective budget the
	// latency below paid for.
	Budget int
	// Postings is the total local posting-list tuples of the admitted
	// query terms: the physical cost driver of the evaluation.
	Postings int
	// Seconds is the wall time of the plan evaluation (mass
	// accounting + scoring), excluding top-N selection.
	Seconds float64
	// Quality is the achieved quality estimate in [0, 1].
	Quality float64
}

// SetCostObserver installs fn as the index's plan-cost hook: every
// budgeted evaluation calls it once with its cost sample. A nil fn
// disables the hook (the default) and removes all overhead, including
// the clock reads. Install before serving begins — the field is read
// without synchronisation on the query path, the same contract as the
// serving layer's other metric hooks. fn must be cheap and must not
// call back into the index.
func (ix *Index) SetCostObserver(fn func(PlanCostSample)) { ix.costObs = fn }

// FragmentPostings returns a snapshot of the per-fragment
// evaluated-postings counters: element f is the cumulative number of
// posting tuples scored from fragment f since the current
// fragmentation was built. Nil before the first Fragmentize. Safe to
// call concurrently with evaluation and re-fragmentation (counters
// reset when Fragmentize rebuilds the fragmentation).
func (ix *Index) FragmentPostings() []int64 {
	fe := ix.fragEval.Load()
	if fe == nil {
		return nil
	}
	out := make([]int64, len(*fe))
	for i := range *fe {
		out[i] = (*fe)[i].Load()
	}
	return out
}
