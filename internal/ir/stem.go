// Package ir implements the paper's full-text retrieval support: the
// T/D/DT/TF/IDF relations transparently integrated into the database
// ([VW99]), a tf·idf ranking variant derived from the probabilistic
// retrieval model of [Hie98], horizontal fragmentation of the TF/DT
// relations on descending idf, and top-N query evaluation with
// a-priori fragment cut-off and the quality estimate of [BHC+01].
package ir

import "strings"

// Stem reduces an English word to its stem with the classic Porter
// algorithm (1980). The paper stores "the corresponding stems" in the
// term relation T; this is the standard stemmer that implies.
func Stem(word string) string {
	w := []byte(strings.ToLower(word))
	if len(w) <= 2 {
		return string(w)
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in w[:len(w)].
func measure(w []byte) int {
	n := len(w)
	i := 0
	// skip initial consonants
	for i < n && isCons(w, i) {
		i++
	}
	m := 0
	for {
		// skip vowels
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			return m
		}
		// skip consonants
		for i < n && isCons(w, i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether w contains a vowel.
func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	if n < 2 || w[n-1] != w[n-2] {
		return false
	}
	return isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	switch w[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r if the stem before s has
// measure > m. Returns the new word and whether a replacement happened.
func replaceSuffix(w []byte, s, r string, m int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) <= m {
		return w, true // suffix matched; rule consumed but no change
	}
	return append(append([]byte{}, stem...), r...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem) && !hasSuffix(stem, "l") && !hasSuffix(stem, "s") && !hasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		w = append(w[:len(w)-1], 'i')
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if nw, ok := replaceSuffix(w, rule.s, rule.r, 0); ok {
			return nw
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if nw, ok := replaceSuffix(w, rule.s, rule.r, 0); ok {
			return nw
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && (hasSuffix(stem, "s") || hasSuffix(stem, "t")) {
			return stem
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "ll") {
		return w[:len(w)-1]
	}
	return w
}
