package ir

import "dlsearch/internal/bat"

// Stats carries collection-wide term statistics keyed by stemmed term.
// In the distributed setting the central DBMS aggregates the local
// statistics of every node and ships them with the query, so each node
// computes exactly the scores a single global index would — this is
// what makes the per-document distribution transparent to the ranking.
type Stats struct {
	DF      map[string]int
	TotalDF int
	Docs    int
}

// StatsLocal extracts this index's local term statistics.
func (ix *Index) StatsLocal() Stats {
	st := Stats{DF: make(map[string]int, len(ix.termID)), TotalDF: ix.totalDF, Docs: ix.DocCount()}
	for term, id := range ix.termID {
		st.DF[term] = ix.df[id]
	}
	return st
}

// MergeStats sums local statistics into global statistics.
func MergeStats(locals ...Stats) Stats {
	g := Stats{DF: make(map[string]int)}
	for _, l := range locals {
		for t, df := range l.DF {
			g.DF[t] += df
		}
		g.TotalDF += l.TotalDF
		g.Docs += l.Docs
	}
	return g
}

// weightWith is the [Hie98] term weight with explicit statistics.
func weightWith(lambda float64, tf, df, totalDF, docLen int) float64 {
	if tf == 0 || df == 0 || docLen == 0 {
		return 0
	}
	return logWeight(lambda, tf, df, totalDF, docLen)
}

// TopNWithStats ranks this node's local documents using the supplied
// global statistics instead of local ones. Combined with Merge this
// yields a distributed ranking identical to a single global index.
func (ix *Index) TopNWithStats(query string, n int, global Stats) []Result {
	scores := make(map[bat.OID]float64)
	seen := make(map[string]bool)
	for _, term := range Terms(query) {
		if seen[term] {
			continue
		}
		seen[term] = true
		id, ok := ix.termID[term]
		if !ok {
			continue
		}
		df := global.DF[term]
		if df == 0 {
			continue
		}
		for _, p := range ix.postings[id] {
			scores[p.Doc] += weightWith(ix.lambda, p.TF, df, global.TotalDF, ix.docLen[p.Doc])
		}
	}
	return topNFromScores(scores, n)
}
