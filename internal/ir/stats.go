package ir

import (
	"slices"

	"dlsearch/internal/bat"
)

// Stats carries collection-wide term statistics keyed by stemmed term.
// In the distributed setting the central DBMS aggregates the local
// statistics of every node and ships them with the query, so each node
// computes exactly the scores a single global index would — this is
// what makes the per-document distribution transparent to the ranking.
type Stats struct {
	DF      map[string]int
	TotalDF int
	Docs    int
}

// StatsLocal extracts this index's local term statistics.
func (ix *Index) StatsLocal() Stats {
	st := Stats{DF: make(map[string]int, len(ix.termID)), TotalDF: ix.totalDF, Docs: ix.DocCount()}
	for term, id := range ix.termID {
		st.DF[term] = ix.df[id]
	}
	return st
}

// MergeStats sums local statistics into global statistics.
func MergeStats(locals ...Stats) Stats {
	g := Stats{DF: make(map[string]int)}
	for _, l := range locals {
		for t, df := range l.DF {
			g.DF[t] += df
		}
		g.TotalDF += l.TotalDF
		g.Docs += l.Docs
	}
	return g
}

// TopNWithStats ranks this node's local documents using the supplied
// global statistics instead of local ones. Combined with Merge this
// yields a distributed ranking identical to a single global index.
//
// TopNWithStats never mutates the index, so after a Freeze any number
// of goroutines may call it concurrently — this is the read path the
// shared-nothing cluster fans out over its nodes.
func (ix *Index) TopNWithStats(query string, n int, global Stats) []Result {
	s := ix.getScorer()
	defer ix.putScorer(s)
	qts := s.qterms[:0]
	for _, term := range Terms(query) {
		id, ok := ix.termID[term]
		if !ok || slices.Contains(qts, id) {
			continue
		}
		qts = append(qts, id)
		ix.scoreTerm(s, id, global.DF[term], global.TotalDF, nil)
	}
	s.qterms = qts
	return s.selectTopN(ix.docIDs, n)
}

// TopNWithStatsTerms is TopNWithStats over a pre-resolved query: the
// parallel stem/oid slices ResolveQuery returns. The stems key the
// global DF lookups; the oids address the local posting lists. This is
// the cached hot path of the node server — the same query string no
// longer re-tokenizes and re-stems on every request.
func (ix *Index) TopNWithStatsTerms(stems []string, terms []bat.OID, n int, global Stats) []Result {
	s := ix.getScorer()
	defer ix.putScorer(s)
	for i, id := range terms {
		ix.scoreTerm(s, id, global.DF[stems[i]], global.TotalDF, nil)
	}
	return s.selectTopN(ix.docIDs, n)
}
