package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"

	"dlsearch/internal/bat"
)

// The content checksum is a deterministic digest over the logical
// document/posting content of an index: every document (oid, length,
// url) and every term's posting list (doc, tf), canonicalised so that
// two replicas holding the same documents produce the same digest no
// matter how they got there.
//
// Canonicalisation matters because replicas of a group are only
// logically identical: concurrent writes may interleave in different
// orders on different replicas, which changes document slot order and
// node-local term oid assignment without changing a single ranking
// (scores depend only on tf/df/Σdf/|d|, and frozen posting scans run
// in document-oid order). The digest therefore walks documents in
// ascending oid order and terms in ascending stem order, and never
// hashes slot numbers, term oids or pair oids.
//
// Deliberately excluded: fragment placement, the memory budget, the
// freeze epoch and λ. Budgeted reads route to ONE replica and may
// re-fragment it (LocalNode.SearchPlan calls EnsureFragments under its
// write lock), so fragmentation granularity legitimately differs
// between replicas holding identical documents — hashing it would make
// anti-entropy flag healthy groups forever. Compression state is a
// per-node space/speed trade-off with no ranking effect.

// checksumMagic domain-separates the digest from any other sha256 use.
var checksumMagic = []byte("dlsearch-content-v1\x00")

// digestWriter feeds the canonical encoding into a hash.
type digestWriter struct {
	h   hash.Hash
	tmp [binary.MaxVarintLen64]byte
}

func (d *digestWriter) uvarint(v uint64) {
	d.h.Write(d.tmp[:binary.PutUvarint(d.tmp[:], v)])
}

func (d *digestWriter) str(s string) {
	d.uvarint(uint64(len(s)))
	d.h.Write([]byte(s))
}

func (d *digestWriter) sum() string {
	return hex.EncodeToString(d.h.Sum(nil))
}

// Checksum returns the content checksum of the index as a hex string.
// The digest is cached per freeze epoch, so repeated calls on a
// quiescent index are O(1); the first call after a mutation recomputes
// it in O(index). Checksum freezes the index, so callers that share
// the index with concurrent readers must hold the write side (serving
// layers call it through LocalNode, which does).
func (ix *Index) Checksum() string {
	ix.Freeze()
	if ix.checksumOK && ix.checksumEpoch == ix.epoch && ix.checksumDocs == len(ix.docIDs) {
		return ix.checksum
	}
	d := &digestWriter{h: sha256.New()}
	d.h.Write(checksumMagic)
	docs := append([]bat.OID(nil), ix.docIDs...)
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	d.uvarint(uint64(len(docs)))
	for _, doc := range docs {
		slot := ix.docSlot[doc]
		url, _ := ix.D.StringOfHead(doc)
		d.uvarint(uint64(doc))
		d.uvarint(uint64(ix.docLens[slot]))
		d.str(url)
	}
	stems := make([]string, 0, len(ix.termID))
	for stem := range ix.termID {
		stems = append(stems, stem)
	}
	sort.Strings(stems)
	d.uvarint(uint64(len(stems)))
	for _, stem := range stems {
		id := ix.termID[stem]
		d.str(stem)
		d.uvarint(uint64(ix.postingLen(id)))
		prev := uint64(0)
		if pl := ix.plists[id]; pl != nil {
			for i, slot := range pl.slots {
				doc := uint64(ix.docIDs[slot])
				d.uvarint(doc - prev)
				prev = doc
				d.uvarint(uint64(pl.tfs[i]))
			}
		} else if cp, ok := ix.cold[id]; ok {
			cp.Walk(func(doc bat.OID, tf int) bool {
				d.uvarint(uint64(doc) - prev)
				prev = uint64(doc)
				d.uvarint(uint64(tf))
				return true
			})
		}
	}
	ix.checksum = d.sum()
	ix.checksumEpoch = ix.epoch
	ix.checksumDocs = len(ix.docIDs)
	ix.checksumOK = true
	return ix.checksum
}

// ChecksumCached returns the content checksum without computing
// anything: ok is true only when the cached digest provably reflects
// the current content (no pending derived-state work, cache stamped at
// the current epoch and document count). Unlike Checksum it never
// mutates, so callers may hold only the read side and fall back to the
// write side + Checksum on a miss.
func (ix *Index) ChecksumCached() (sum string, ok bool) {
	if ix.checksumOK && !ix.Dirty() && ix.checksumEpoch == ix.epoch && ix.checksumDocs == len(ix.docIDs) {
		return ix.checksum, true
	}
	return "", false
}

// Checksum returns the content checksum of an exported state, using
// the same canonical encoding as Index.Checksum — an index and its
// exported state always digest identically, which is what lets a
// snapshot header carry the checksum a restored replica will report.
func (st *IndexState) Checksum() string {
	d := &digestWriter{h: sha256.New()}
	d.h.Write(checksumMagic)
	docs := append([]DocState(nil), st.Docs...)
	sort.Slice(docs, func(i, j int) bool { return docs[i].OID < docs[j].OID })
	d.uvarint(uint64(len(docs)))
	for _, doc := range docs {
		d.uvarint(uint64(doc.OID))
		d.uvarint(uint64(doc.Len))
		d.str(doc.URL)
	}
	terms := append([]TermState(nil), st.Terms...)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Stem < terms[j].Stem })
	d.uvarint(uint64(len(terms)))
	for _, t := range terms {
		d.str(t.Stem)
		d.uvarint(uint64(len(t.Postings)))
		prev := uint64(0)
		for _, p := range t.Postings {
			d.uvarint(uint64(p.Doc) - prev)
			prev = uint64(p.Doc)
			d.uvarint(uint64(p.TF))
		}
	}
	return d.sum()
}

// HasDoc reports whether a document oid is already indexed. The node
// boundary treats document oids as write-once and uses this for
// idempotent ingest: re-posting a batch whose acknowledgement was lost
// must be a no-op, never a tf double-fold.
func (ix *Index) HasDoc(doc bat.OID) bool {
	_, ok := ix.docSlot[doc]
	return ok
}

// AdvanceEpoch forces the freeze epoch strictly past `past`. Restore
// paths call it with the pre-restore epoch so every epoch-guarded
// cache entry captured against the old content — term resolutions AND
// RES sets — is invalidated even when the imported state happens to
// carry the same epoch number as the index it replaces.
func (ix *Index) AdvanceEpoch(past uint64) {
	if ix.epoch <= past {
		ix.epoch = past + 1
	}
}
