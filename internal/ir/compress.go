package ir

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dlsearch/internal/bat"
)

// CompressedPostings is a delta + varint encoded posting list: doc
// oids are sorted, gap-encoded and varint-packed together with the
// term frequencies. The paper notes the TF and DT relations "are prone
// to grow huge, even when compression techniques are applied" — this
// is that compression technique, used by the ablation experiment to
// quantify the space/time trade-off against plain posting slices.
type CompressedPostings struct {
	n   int
	buf []byte
}

// Compress encodes a posting list.
func Compress(ps []Posting) CompressedPostings {
	sorted := append([]Posting(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Doc < sorted[j].Doc })
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for _, p := range sorted {
		gap := uint64(p.Doc) - prev
		prev = uint64(p.Doc)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], gap)]...)
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(p.TF))]...)
	}
	return CompressedPostings{n: len(sorted), buf: buf}
}

// Len returns the number of postings.
func (c CompressedPostings) Len() int { return c.n }

// Bytes returns the encoded size in bytes.
func (c CompressedPostings) Bytes() int { return len(c.buf) }

// Decode materialises the posting list.
func (c CompressedPostings) Decode() ([]Posting, error) {
	out := make([]Posting, 0, c.n)
	buf := c.buf
	doc := uint64(0)
	for len(buf) > 0 {
		gap, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("ir: corrupt posting gap")
		}
		buf = buf[n:]
		tf, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("ir: corrupt posting tf")
		}
		buf = buf[n:]
		doc += gap
		out = append(out, Posting{Doc: bat.OID(doc), TF: int(tf)})
	}
	if len(out) != c.n {
		return nil, fmt.Errorf("ir: posting count mismatch: %d != %d", len(out), c.n)
	}
	return out, nil
}

// Walk iterates the postings without materialising a slice, the access
// pattern scoring uses.
func (c CompressedPostings) Walk(f func(doc bat.OID, tf int) bool) error {
	buf := c.buf
	doc := uint64(0)
	for len(buf) > 0 {
		gap, n := binary.Uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("ir: corrupt posting gap")
		}
		buf = buf[n:]
		tf, n := binary.Uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("ir: corrupt posting tf")
		}
		buf = buf[n:]
		doc += gap
		if !f(bat.OID(doc), int(tf)) {
			return nil
		}
	}
	return nil
}

// PostingsOf materialises the posting list of a term oid as (doc, tf)
// pairs in the access path's order, decoding terms the memory budget
// holds compressed.
func (ix *Index) PostingsOf(id bat.OID) []Posting {
	pl := ix.plists[id]
	if pl == nil {
		if cp, ok := ix.cold[id]; ok {
			ps, _ := cp.Decode()
			return ps
		}
		return nil
	}
	out := make([]Posting, len(pl.slots))
	for i, slot := range pl.slots {
		out[i] = Posting{Doc: ix.docIDs[slot], TF: int(pl.tfs[i])}
	}
	return out
}

// CompressIndex encodes every posting list of the index and returns
// the compressed lists plus the plain and compressed sizes in bytes
// (16 bytes per plain posting: oid + int).
func CompressIndex(ix *Index) (map[bat.OID]CompressedPostings, int, int) {
	out := make(map[bat.OID]CompressedPostings, len(ix.termID))
	plain, packed := 0, 0
	for _, id := range ix.termID {
		ps := ix.PostingsOf(id)
		if len(ps) == 0 {
			continue
		}
		c := Compress(ps)
		out[id] = c
		plain += 16 * len(ps)
		packed += c.Bytes()
	}
	return out, plain, packed
}
