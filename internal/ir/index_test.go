package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsearch/internal/bat"
)

func smallIndex() *Index {
	ix := NewIndex()
	ix.Add(1, "d1", "Seles is the winner of the Australian Open final")
	ix.Add(2, "d2", "Hingis loses the final against the winner Seles")
	ix.Add(3, "d3", "A report about weather in Melbourne during the tournament")
	ix.Add(4, "d4", "The winner winner winner takes the championship trophy")
	return ix
}

func TestIndexCounts(t *testing.T) {
	ix := smallIndex()
	if ix.DocCount() != 4 {
		t.Fatalf("DocCount = %d", ix.DocCount())
	}
	if ix.TermCount() == 0 {
		t.Fatal("empty vocabulary")
	}
	if _, ok := ix.TermOID(Stem("winner")); !ok {
		t.Fatal("winner not in vocabulary")
	}
	if _, ok := ix.TermOID("zzzz"); ok {
		t.Fatal("phantom term in vocabulary")
	}
}

func TestRelationsShape(t *testing.T) {
	ix := smallIndex()
	// DT decomposition is aligned: same pair oids in both columns.
	if ix.DTd.Len() != ix.DTt.Len() || ix.DTd.Len() != ix.TF.Len() {
		t.Fatalf("DT/TF misaligned: %d %d %d", ix.DTd.Len(), ix.DTt.Len(), ix.TF.Len())
	}
	for i := 0; i < ix.DTd.Len(); i++ {
		if ix.DTd.Head(i) != ix.DTt.Head(i) || ix.DTd.Head(i) != ix.TF.Head(i) {
			t.Fatalf("pair oid mismatch at %d", i)
		}
	}
}

func TestIDFDefinition(t *testing.T) {
	ix := smallIndex()
	// "winner" appears in docs 1, 2, 4 -> df=3 -> idf=1/3.
	if got := ix.IDFOf(Stem("winner")); got != 1.0/3.0 {
		t.Fatalf("idf(winner) = %v, want 1/3", got)
	}
	if got := ix.IDFOf(Stem("melbourne")); got != 1.0 {
		t.Fatalf("idf(melbourne) = %v, want 1", got)
	}
	if got := ix.IDFOf("absent"); got != 0 {
		t.Fatalf("idf(absent) = %v, want 0", got)
	}
}

func TestTopNRanking(t *testing.T) {
	ix := smallIndex()
	res := ix.TopN("winner", 10)
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	// d4 mentions winner three times in a short doc: must rank first.
	if res[0].Doc != 4 {
		t.Fatalf("top doc = %d, want 4", res[0].Doc)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score desc")
		}
	}
}

func TestTopNLimits(t *testing.T) {
	ix := smallIndex()
	if got := ix.TopN("winner", 1); len(got) != 1 {
		t.Fatalf("n=1 returned %d", len(got))
	}
	if got := ix.TopN("quetzalcoatl", 5); len(got) != 0 {
		t.Fatalf("unknown term returned %v", got)
	}
	if got := ix.TopN("the of and", 5); len(got) != 0 {
		t.Fatalf("stop-word query returned %v", got)
	}
}

func TestNaiveEqualsOptimized(t *testing.T) {
	ix := smallIndex()
	for _, q := range []string{"winner", "seles final", "weather melbourne", "championship trophy winner"} {
		opt := ix.TopN(q, 10)
		naive := ix.TopNNaive(q, 10)
		if len(opt) != len(naive) {
			t.Fatalf("q=%q: sizes differ: %v vs %v", q, opt, naive)
		}
		for i := range opt {
			if opt[i].Doc != naive[i].Doc || opt[i].Score != naive[i].Score {
				t.Fatalf("q=%q: rank %d differs: %v vs %v", q, i, opt[i], naive[i])
			}
		}
	}
}

func TestTopNRestricted(t *testing.T) {
	ix := smallIndex()
	res := ix.TopNRestricted("winner", 10, map[bat.OID]bool{2: true})
	if len(res) != 1 || res[0].Doc != 2 {
		t.Fatalf("restricted = %v", res)
	}
}

func TestFragmentize(t *testing.T) {
	ix := smallIndex()
	ix.Fragmentize(3)
	frags := ix.Fragments()
	if len(frags) == 0 || len(frags) > 3 {
		t.Fatalf("fragments = %d", len(frags))
	}
	// idf must descend across fragments.
	for i := 1; i < len(frags); i++ {
		if frags[i].MaxIDF > frags[i-1].MinIDF+1e-12 {
			t.Fatalf("fragment %d idf ordering broken: %v after %v", i, frags[i].MaxIDF, frags[i-1].MinIDF)
		}
	}
	// Every term appears in exactly one fragment.
	seen := make(map[bat.OID]bool)
	total := 0
	for _, f := range frags {
		for _, id := range f.Terms {
			if seen[id] {
				t.Fatal("term in two fragments")
			}
			seen[id] = true
			total++
		}
	}
	if total != ix.TermCount() {
		t.Fatalf("fragments cover %d terms, vocabulary has %d", total, ix.TermCount())
	}
}

func TestFragmentizeDegenerate(t *testing.T) {
	ix := smallIndex()
	ix.Fragmentize(0) // clamped to 1
	if len(ix.Fragments()) != 1 {
		t.Fatalf("k=0 fragments = %d", len(ix.Fragments()))
	}
	ix.Fragmentize(1000) // more fragments than tuples
	for _, f := range ix.Fragments() {
		if len(f.Terms) == 0 {
			t.Fatal("empty fragment emitted")
		}
	}
}

func TestTopNFragmentsQuality(t *testing.T) {
	ix := smallIndex()
	ix.Fragmentize(4)
	full, q := ix.TopNFragments("winner melbourne", 10, len(ix.Fragments()))
	if q.Value() != 1.0 || !q.Exact() {
		t.Fatalf("full evaluation quality = %+v", q)
	}
	if q.FragsUsed != len(ix.Fragments()) || q.FragsTotal != len(ix.Fragments()) {
		t.Fatalf("fragment accounting = %+v, want all %d", q, len(ix.Fragments()))
	}
	exact := ix.TopN("winner melbourne", 10)
	if len(full) != len(exact) {
		t.Fatalf("full fragment eval differs from exact: %v vs %v", full, exact)
	}
	// Cutting fragments can only lower (or keep) quality.
	prev := 0.0
	for k := 1; k <= len(ix.Fragments()); k++ {
		_, qk := ix.TopNFragments("winner melbourne", 10, k)
		if qk.Value() < prev-1e-12 {
			t.Fatalf("quality not monotone: %v after %v at k=%d", qk.Value(), prev, k)
		}
		prev = qk.Value()
	}
	if prev != 1.0 {
		t.Fatalf("processing all fragments must give quality 1, got %v", prev)
	}
}

func TestFragmentCutoffKeepsRareTerms(t *testing.T) {
	// The rare term "melbourne" (df=1, idf=1) must live in an earlier
	// fragment than the common "winner" (df=3); with one fragment cut
	// off, the rare term's contribution must survive.
	ix := smallIndex()
	ix.Fragmentize(ix.TermCount()) // one term per fragment, idf-desc
	melbourne, _ := ix.TermOID(Stem("melbourne"))
	winner, _ := ix.TermOID(Stem("winner"))
	fragOf := func(id bat.OID) int {
		for fi, f := range ix.Fragments() {
			for _, t := range f.Terms {
				if t == id {
					return fi
				}
			}
		}
		return -1
	}
	fm, fw := fragOf(melbourne), fragOf(winner)
	if fm < 0 || fw < 0 {
		t.Fatal("query terms missing from fragments")
	}
	if fm >= fw {
		t.Fatalf("rare term (df=1) in fragment %d, common term (df=3) in %d; idf order broken", fm, fw)
	}
	// Cut off everything after melbourne's fragment: its contribution
	// survives, winner's is dropped, quality falls below 1.
	res, q := ix.TopNFragments("melbourne winner", 10, fm+1)
	if len(res) == 0 || res[0].Doc != 3 {
		t.Fatalf("melbourne doc should rank, got %v", res)
	}
	if q.Value() >= 1.0 {
		t.Fatal("cutting fragments with a query term present must reduce quality below 1")
	}
}

func TestMerge(t *testing.T) {
	a := []Result{{Doc: 1, Score: 3}, {Doc: 2, Score: 1}}
	b := []Result{{Doc: 3, Score: 2}}
	got := Merge(2, a, b)
	if len(got) != 2 || got[0].Doc != 1 || got[1].Doc != 3 {
		t.Fatalf("Merge = %v", got)
	}
	if got := Merge(10); len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}

// Property: for random corpora, the optimized and naive plans return
// identical rankings, and fragment evaluation with all fragments
// equals exact evaluation.
func TestPropertyPlansAgree(t *testing.T) {
	words := []string{"tennis", "open", "winner", "net", "serve", "ace",
		"match", "court", "player", "champion", "rally", "set"}
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		ix := NewIndex()
		nDocs := 2 + rng.Intn(20)
		for d := 1; d <= nDocs; d++ {
			var text string
			for w := 0; w < 3+rng.Intn(30); w++ {
				text += words[rng.Intn(len(words))] + " "
			}
			ix.Add(bat.OID(d), fmt.Sprintf("d%d", d), text)
		}
		query := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		opt := ix.TopN(query, 5)
		naive := ix.TopNNaive(query, 5)
		if len(opt) != len(naive) {
			t.Fatalf("iter %d: plan size mismatch", iter)
		}
		for i := range opt {
			if opt[i].Doc != naive[i].Doc {
				t.Fatalf("iter %d: plan rank mismatch at %d: %v vs %v", iter, i, opt, naive)
			}
		}
		ix.Fragmentize(1 + rng.Intn(5))
		frag, q := ix.TopNFragments(query, 5, len(ix.Fragments()))
		if q.Value() != 1.0 {
			t.Fatalf("iter %d: full-fragment quality %v", iter, q.Value())
		}
		for i := range opt {
			if frag[i].Doc != opt[i].Doc {
				t.Fatalf("iter %d: fragment eval mismatch", iter)
			}
		}
	}
}

func BenchmarkAddDocument(b *testing.B) {
	ix := NewIndex()
	text := "the quick brown fox jumps over the lazy dog while the winner celebrates the championship"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Add(bat.OID(i+1), "u", text)
	}
}
