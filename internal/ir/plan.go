package ir

import (
	"slices"
	"sort"
	"time"

	"dlsearch/internal/bat"
)

// DefaultFragments is the fragmentation granularity an EvalPlan
// selects when it does not name one: the sweep width of the paper's
// E10 experiment, fine enough that trailing-fragment cut-offs have
// room to trade quality for cost.
const DefaultFragments = 8

// EvalPlan describes how a top-N query is to be evaluated: the a-priori
// cost/quality trade-off of [BHC+01] as an execution strategy the whole
// retrieval pipeline understands, instead of an ir-only experiment.
//
// The zero value (any N) is the exact plan: every fragment of every
// query term is evaluated and the ranking equals TopN. A positive
// Budget instructs the evaluator to touch only the leading (highest
// idf, cheapest) fragments and report the estimated quality; MinQuality
// re-admits trailing fragments until the estimate reaches the floor, so
// a caller can bound quality loss instead of cost.
type EvalPlan struct {
	// N is the ranking size.
	N int
	// Frags is the fragmentation granularity the evaluating index
	// should use. 0 keeps whatever fragmentation exists (creating
	// DefaultFragments on a never-fragmented index); a positive value
	// re-fragments an index whose granularity differs.
	Frags int
	// Budget is the number of leading idf-descending fragments to
	// evaluate. <= 0 means all fragments: the exact plan.
	Budget int
	// MinQuality is the quality floor in (0, 1]: after applying the
	// Budget, evaluation extends fragment by fragment until the
	// estimated quality reaches the floor (or fragments run out).
	// 0 disables the floor.
	MinQuality float64
}

// Exact reports whether the plan evaluates every fragment, making the
// result identical to the unbudgeted TopN.
func (p EvalPlan) Exact() bool { return p.Budget <= 0 }

// QualityEstimate is the structured quality accounting of a budgeted
// evaluation: how much of the query's idf mass the evaluated fragments
// covered. Covered == Total (or Total == 0) proves the cut-off did not
// change the candidate term set. Estimates from shared-nothing nodes
// merge by summing the masses (MergeQuality), giving the cluster-wide
// estimate the coordinator reports.
type QualityEstimate struct {
	CoveredIDF float64 // idf mass of the evaluated query terms
	TotalIDF   float64 // idf mass of all query terms known to the index
	FragsUsed  int     // leading fragments evaluated (after any floor extension)
	FragsTotal int     // fragments the index is partitioned into
}

// Value returns the scalar quality in [0, 1]: the covered fraction of
// the query's idf mass. An estimate with no mass (empty query, or the
// exact plan's shortcut) is exact by definition and reports 1.
func (q QualityEstimate) Value() float64 {
	if q.TotalIDF <= 0 {
		return 1
	}
	v := q.CoveredIDF / q.TotalIDF
	if v > 1 {
		return 1
	}
	return v
}

// Exact reports whether the evaluation provably covered the whole
// candidate term set.
func (q QualityEstimate) Exact() bool { return q.Value() >= 1 }

// MergeQuality folds per-node estimates into the cluster-wide
// estimate: idf masses sum (each node accounts for the query mass of
// its own partition), fragment counts report the widest node.
func MergeQuality(ests ...QualityEstimate) QualityEstimate {
	var m QualityEstimate
	for _, e := range ests {
		m.CoveredIDF += e.CoveredIDF
		m.TotalIDF += e.TotalIDF
		if e.FragsUsed > m.FragsUsed {
			m.FragsUsed = e.FragsUsed
		}
		if e.FragsTotal > m.FragsTotal {
			m.FragsTotal = e.FragsTotal
		}
	}
	return m
}

// EnsureFragments brings the index's fragmentation in line with the
// plan: a never-fragmented index is partitioned (plan granularity, or
// DefaultFragments), and a positive plan granularity that differs from
// the current one re-fragments. Mutates the index — serving layers
// call it under their write lock before evaluating plans read-only.
func (ix *Index) EnsureFragments(plan EvalPlan) {
	if ix.fragments == nil {
		k := plan.Frags
		if k <= 0 {
			k = DefaultFragments
		}
		ix.Fragmentize(k)
		return
	}
	if plan.Frags > 0 && ix.fragK != plan.Frags {
		ix.Fragmentize(plan.Frags)
	}
}

// PlanReady reports whether the index can evaluate the plan without
// mutating: derived state frozen and fragmentation at the plan's
// granularity. An empty vocabulary is trivially ready — there is
// nothing to fragment, and treating it as unready would force every
// budgeted query on an empty partition through the write lock.
func (ix *Index) PlanReady(plan EvalPlan) bool {
	if ix.Dirty() {
		return false
	}
	if ix.fragments == nil {
		return len(ix.termID) == 0
	}
	return plan.Frags <= 0 || ix.fragK == plan.Frags
}

// evalPlan scores the query terms the plan admits and returns the
// quality accounting. stems (parallel to oids) key global-statistics
// lookups; nil global scores and weighs with local statistics. Terms
// are scored in their original query order so a full-budget plan
// accumulates floating-point scores in exactly the order the exact
// path does — byte-identical rankings, not just equivalent ones.
func (ix *Index) evalPlan(s *scorer, stems []string, oids []bat.OID, plan EvalPlan, global *Stats) QualityEstimate {
	// Cost accounting (cost.go): clock reads only when an observer is
	// installed, per-fragment counters only when fragmented. Both are
	// allocation-free on this path.
	var costStart time.Time
	if ix.costObs != nil {
		costStart = time.Now()
	}
	frags := len(ix.fragments)
	if frags == 0 {
		frags = 1 // unfragmented: one implicit fragment holding everything
	}
	budget := plan.Budget
	if budget <= 0 || budget > frags {
		budget = frags
	}
	// Per-term idf mass and fragment placement, in the scorer's pooled
	// buffers. The mass uses global statistics when supplied, so every
	// node of a cluster weighs a term identically and the merged
	// estimate is consistent.
	mass := s.mass[:0]
	frag := s.frag[:0]
	var total float64
	for i, id := range oids {
		df := ix.df[id]
		if global != nil && stems != nil {
			if gdf := global.DF[stems[i]]; gdf > 0 {
				df = gdf
			}
		}
		m := 0.0
		if df > 0 {
			m = 1.0 / float64(df)
		}
		f := int32(0)
		if ix.fragments != nil {
			f = int32(ix.fragOf[id])
		}
		mass = append(mass, m)
		frag = append(frag, f)
		total += m
	}
	s.mass, s.frag = mass, frag
	// Admit the budgeted prefix; then extend fragment by fragment (in
	// idf-descending order, so the cheapest extensions first) until the
	// quality floor is met or fragments run out.
	covered := 0.0
	for i := range oids {
		if int(frag[i]) < budget {
			covered += mass[i]
		}
	}
	if plan.MinQuality > 0 && total > 0 {
		order := make([]int, 0, len(oids))
		for i := range oids {
			if int(frag[i]) >= budget {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool { return frag[order[a]] < frag[order[b]] })
		// Extend whole fragments at a time: admitting a fragment admits
		// every query term it holds, and the accounting must agree with
		// the scoring loop below.
		for j := 0; j < len(order) && covered/total < plan.MinQuality-1e-12; {
			b := int(frag[order[j]]) + 1
			for ; j < len(order) && int(frag[order[j]]) < b; j++ {
				covered += mass[order[j]]
			}
			budget = b
		}
	}
	fe := ix.fragEval.Load()
	postings := 0
	for i, id := range oids {
		if int(frag[i]) >= budget {
			continue // a-priori ignored fragment
		}
		ldf := ix.df[id] // local posting-list length: the physical cost
		postings += ldf
		if fe != nil && int(frag[i]) < len(*fe) {
			(*fe)[frag[i]].Add(int64(ldf))
		}
		df, totalDF := ldf, ix.totalDF
		if global != nil && stems != nil {
			df, totalDF = global.DF[stems[i]], global.TotalDF
		}
		ix.scoreTerm(s, id, df, totalDF, nil)
	}
	est := QualityEstimate{CoveredIDF: covered, TotalIDF: total, FragsUsed: budget, FragsTotal: frags}
	if ix.costObs != nil {
		ix.costObs(PlanCostSample{
			Frags:    frags,
			Budget:   budget,
			Postings: postings,
			Seconds:  time.Since(costStart).Seconds(),
			Quality:  est.Value(),
		})
	}
	return est
}

// TopNPlan evaluates the query under the plan against this index alone
// (local statistics), fragmenting the vocabulary on demand. This is
// the single-index entry point of the quality-bounded execution
// strategy; the distributed pipeline uses TopNPlanWithStats per node.
func (ix *Index) TopNPlan(query string, plan EvalPlan) ([]Result, QualityEstimate) {
	ix.Freeze()
	ix.EnsureFragments(plan)
	s := ix.getScorer()
	defer ix.putScorer(s)
	s.qterms = ix.queryTermsInto(s.qterms, query)
	est := ix.evalPlan(s, nil, s.qterms, plan, nil)
	return s.selectTopN(ix.docIDs, plan.N), est
}

// TopNPlanTerms is TopNPlan over pre-resolved term oids (see
// ResolveQuery), skipping the tokenize/stop/stem pipeline — the entry
// point for the query executor's cached budgeted path. The oids must
// belong to this index.
func (ix *Index) TopNPlanTerms(terms []bat.OID, plan EvalPlan) ([]Result, QualityEstimate) {
	ix.Freeze()
	ix.EnsureFragments(plan)
	s := ix.getScorer()
	defer ix.putScorer(s)
	est := ix.evalPlan(s, nil, terms, plan, nil)
	return s.selectTopN(ix.docIDs, plan.N), est
}

// TopNPlanWithStats ranks this node's local documents under the plan
// using the supplied global statistics: the distributed read path.
// Like TopNWithStats it never mutates the index — callers ensure
// Freeze/EnsureFragments ran (see LocalNode); an unfragmented index
// degrades to exact evaluation over one implicit fragment.
func (ix *Index) TopNPlanWithStats(query string, plan EvalPlan, global Stats) ([]Result, QualityEstimate) {
	s := ix.getScorer()
	defer ix.putScorer(s)
	qts := s.qterms[:0]
	stems := make([]string, 0, 8)
	for _, term := range Terms(query) {
		id, ok := ix.termID[term]
		if !ok || slices.Contains(qts, id) {
			continue
		}
		qts = append(qts, id)
		stems = append(stems, term)
	}
	s.qterms = qts
	est := ix.evalPlan(s, stems, qts, plan, &global)
	return s.selectTopN(ix.docIDs, plan.N), est
}

// TopNPlanWithStatsTerms is TopNPlanWithStats over a pre-resolved
// query (the parallel stem/oid slices ResolveQuery returns) — the
// cached hot path of the node server.
func (ix *Index) TopNPlanWithStatsTerms(stems []string, oids []bat.OID, plan EvalPlan, global Stats) ([]Result, QualityEstimate) {
	s := ix.getScorer()
	defer ix.putScorer(s)
	est := ix.evalPlan(s, stems, oids, plan, &global)
	return s.selectTopN(ix.docIDs, plan.N), est
}
