package ir

import (
	"fmt"
	"math/rand"
	"testing"

	"dlsearch/internal/bat"
)

// TestHeapSelectionEqualsFullSort: the bounded-heap selection must
// return exactly the prefix of the full (score desc, doc asc) sort
// for every n, including n larger than the candidate set.
func TestHeapSelectionEqualsFullSort(t *testing.T) {
	words := []string{"tennis", "open", "winner", "net", "serve", "ace",
		"match", "court", "player", "champion", "rally", "set"}
	rng := rand.New(rand.NewSource(42))
	ix := NewIndex()
	for d := 1; d <= 200; d++ {
		var text string
		for w := 0; w < 5+rng.Intn(25); w++ {
			text += words[rng.Intn(len(words))] + " "
		}
		ix.Add(bat.OID(d), fmt.Sprintf("d%d", d), text)
	}
	for _, q := range []string{"winner", "champion serve", "tennis open net ace"} {
		full := ix.TopN(q, ix.DocCount())
		for _, n := range []int{0, 1, 3, 10, len(full), len(full) + 50} {
			got := ix.TopN(q, n)
			want := full
			if len(want) > n {
				want = want[:n]
			}
			if len(got) != len(want) {
				t.Fatalf("q=%q n=%d: %d results, want %d", q, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("q=%q n=%d rank %d: %+v, want %+v", q, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestIncrementalIDF: idf values stay correct as documents stream in
// and the IDF relation is updated in place rather than rebuilt — the
// relation holds exactly one row per term at all times.
func TestIncrementalIDF(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "d1", "winner trophy")
	if got := ix.IDFOf(Stem("winner")); got != 1.0 {
		t.Fatalf("idf(winner) = %v, want 1", got)
	}
	ix.Add(2, "d2", "winner serve")
	ix.Add(3, "d3", "winner rally")
	if got := ix.IDFOf(Stem("winner")); got != 1.0/3.0 {
		t.Fatalf("idf(winner) = %v, want 1/3", got)
	}
	if got := ix.IDFOf(Stem("trophy")); got != 1.0 {
		t.Fatalf("idf(trophy) = %v, want 1", got)
	}
	if ix.IDF.Len() != ix.TermCount() {
		t.Fatalf("IDF has %d rows for %d terms", ix.IDF.Len(), ix.TermCount())
	}
}

// TestMultiAddSameDoc: re-adding text for an existing document must
// merge term frequencies in the access path so the optimized plan
// agrees with the naive DT-based plan.
func TestMultiAddSameDoc(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "d1", "winner rally")
	ix.Add(1, "d1", "winner serve")
	ix.Add(2, "d2", "winner winner winner serve rally")
	if ix.DocCount() != 2 {
		t.Fatalf("DocCount = %d, want 2", ix.DocCount())
	}
	opt := ix.TopN("winner serve rally", 10)
	naive := ix.TopNNaive("winner serve rally", 10)
	if len(opt) != len(naive) {
		t.Fatalf("plans disagree: %v vs %v", opt, naive)
	}
	for i := range opt {
		if opt[i] != naive[i] {
			t.Fatalf("rank %d: optimized %+v, naive %+v", i, opt[i], naive[i])
		}
	}
}

// TestFragmentsSurviveAdd: after Fragmentize, adding documents keeps
// the fragmentation valid through incremental placement — every term
// in exactly one fragment, idf descending across fragments, tuple
// counts exact — and the fragment cut-off path still answers.
func TestFragmentsSurviveAdd(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "d1", "seles melbourne trophy")
	ix.Add(2, "d2", "winner winner serve")
	ix.Add(3, "d3", "winner rally serve")
	ix.Fragmentize(3)
	// Stream in documents: an unseen rare term, more mass on a common
	// term (moves it to a lower-idf fragment), and a repeat document.
	ix.Add(4, "d4", "quetzalcoatl winner")
	ix.Add(5, "d5", "winner serve rally melbourne")
	ix.Add(5, "d5", "winner again")
	frags := ix.Fragments()
	if frags == nil {
		t.Fatal("fragments discarded by Add")
	}
	for i := 1; i < len(frags); i++ {
		if frags[i].MaxIDF > frags[i-1].MinIDF+1e-12 {
			t.Fatalf("fragment %d idf ordering broken: %v after %v", i, frags[i].MaxIDF, frags[i-1].MinIDF)
		}
	}
	seen := make(map[bat.OID]bool)
	total, tuples := 0, 0
	for fi, f := range frags {
		for _, id := range f.Terms {
			if seen[id] {
				t.Fatalf("term %d in two fragments", id)
			}
			seen[id] = true
			total++
			idf := ix.IDFOf(termOfOID(t, ix, id))
			if idf > f.MaxIDF+1e-12 || idf < f.MinIDF-1e-12 {
				t.Fatalf("term %d idf %v outside fragment %d bounds [%v, %v]", id, idf, fi, f.MinIDF, f.MaxIDF)
			}
		}
		tuples += f.Tuples
		want := 0
		for _, id := range f.Terms {
			want += len(ix.PostingsOf(id))
		}
		if f.Tuples != want {
			t.Fatalf("fragment %d Tuples = %d, want %d", fi, f.Tuples, want)
		}
	}
	if total != ix.TermCount() {
		t.Fatalf("fragments cover %d terms, vocabulary has %d", total, ix.TermCount())
	}
	// Full-fragment evaluation still equals the exact ranking.
	res, q := ix.TopNFragments("winner melbourne quetzalcoatl", 10, len(frags))
	if q.Value() != 1.0 {
		t.Fatalf("full evaluation quality = %v", q.Value())
	}
	exact := ix.TopN("winner melbourne quetzalcoatl", 10)
	if len(res) != len(exact) {
		t.Fatalf("fragment eval %v, exact %v", res, exact)
	}
	for i := range res {
		if res[i].Doc != exact[i].Doc {
			t.Fatalf("rank %d: fragment %+v, exact %+v", i, res[i], exact[i])
		}
	}
}

// termOfOID reverses the term oid to its stemmed string via the T
// relation.
func termOfOID(t *testing.T, ix *Index, id bat.OID) string {
	t.Helper()
	s, ok := ix.T.StringOfHead(id)
	if !ok {
		t.Fatalf("term oid %d not in T", id)
	}
	return s
}

// TestUnsortedAddsGetSortedAtFreeze: documents added out of oid order
// must end up with posting lists sorted by doc oid after a freeze.
func TestUnsortedAddsGetSortedAtFreeze(t *testing.T) {
	ix := NewIndex()
	for _, d := range []bat.OID{5, 2, 9, 1, 7} {
		ix.Add(d, "u", "winner serve")
	}
	ix.Freeze()
	id, _ := ix.TermOID(Stem("winner"))
	ps := ix.PostingsOf(id)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Doc >= ps[i].Doc {
			t.Fatalf("postings not sorted by doc oid: %v", ps)
		}
	}
	// Ranking across the unsorted adds is still the full correct set.
	if got := ix.TopN("winner", 10); len(got) != 5 {
		t.Fatalf("results = %v", got)
	}
}

// BenchmarkTopNAllocs guards the per-query allocation budget of the
// rebuilt hot path: the reusable scorer must keep steady-state
// allocations to the tokenizer output and the result slice.
func BenchmarkTopNAllocs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := []string{"tennis", "open", "winner", "net", "serve", "ace",
		"match", "court", "player", "champion", "rally", "set"}
	ix := NewIndex()
	for d := 1; d <= 2000; d++ {
		var text string
		for w := 0; w < 30; w++ {
			text += words[rng.Intn(len(words))] + " "
		}
		ix.Add(bat.OID(d), "u", text)
	}
	ix.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopN("champion winner serve", 10)
	}
}
