package ir

import (
	"fmt"
	"sort"

	"dlsearch/internal/bat"
)

// IndexState is the complete logical content of an Index in a stable,
// implementation-independent shape: the serialization boundary between
// the in-memory columnar access paths and the durability layer
// (internal/persist). Everything derived — df, docTerms, idf rows,
// slot numbers, fragment membership maps, compressed cold lists — is
// reconstructed from it, so the format survives hot-path refactors as
// long as the logical relations stay expressible.
//
// The state round-trips exactly: ImportState(ExportState()) yields an
// index whose TopN and TopNPlan rankings (documents AND scores) are
// byte-identical to the original's, because scores depend only on
// (tf, df, Σdf, |d|, λ) and on the doc-sorted posting scan order that
// export preserves.
type IndexState struct {
	Lambda    float64
	Epoch     uint64  // freeze epoch at export time
	NextOID   bat.OID // sequence position: restored allocations continue past it
	MemBudget int     // posting-store memory budget (0 = unbounded)
	FragK     int     // granularity Fragmentize was last asked for (0 = never)
	LogPos    uint64  // op-log position this state covers (0 = no log)

	Docs      []DocState
	Terms     []TermState // ascending by term oid
	Fragments []FragmentState
	HasFrags  bool // distinguishes "no fragmentation" from zero fragments
}

// DocState is one document: its global oid, url and length in terms.
type DocState struct {
	OID bat.OID
	URL string
	Len int32
}

// TermState is one vocabulary term with its full posting list in
// ascending document-oid order (the frozen access-path order — scores
// accumulate in exactly this order, which is what makes restored
// rankings byte-identical, not merely equivalent).
type TermState struct {
	OID      bat.OID
	Stem     string
	Postings []Posting
}

// FragmentState is one horizontal fragment of the idf-descending
// fragmentation, term membership order preserved.
type FragmentState struct {
	Terms  []bat.OID
	MaxIDF float64
	MinIDF float64
	Tuples int
}

// ExportState freezes the index and captures its complete logical
// state. The caller must hold the index's write side (it may mutate
// via Freeze); the returned state shares no memory with the index.
func (ix *Index) ExportState() *IndexState {
	ix.Freeze()
	st := &IndexState{
		Lambda:    ix.lambda,
		Epoch:     ix.epoch,
		NextOID:   ix.seq.Peek(),
		MemBudget: ix.memBudget,
		FragK:     ix.fragK,
	}
	st.Docs = make([]DocState, len(ix.docIDs))
	for slot, doc := range ix.docIDs {
		url, _ := ix.D.StringOfHead(doc)
		st.Docs[slot] = DocState{OID: doc, URL: url, Len: ix.docLens[slot]}
	}
	ids := make([]bat.OID, 0, len(ix.termID))
	for _, id := range ix.termID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	stemOf := make(map[bat.OID]string, len(ix.termID))
	for stem, id := range ix.termID {
		stemOf[id] = stem
	}
	st.Terms = make([]TermState, len(ids))
	for i, id := range ids {
		st.Terms[i] = TermState{OID: id, Stem: stemOf[id], Postings: ix.PostingsOf(id)}
	}
	if ix.fragments != nil {
		st.HasFrags = true
		st.Fragments = make([]FragmentState, len(ix.fragments))
		for f, frag := range ix.fragments {
			st.Fragments[f] = FragmentState{
				Terms:  append([]bat.OID(nil), frag.Terms...),
				MaxIDF: frag.MaxIDF,
				MinIDF: frag.MinIDF,
				Tuples: frag.Tuples,
			}
		}
	}
	return st
}

// ImportState rebuilds a fully functional index from exported state:
// base relations (T, D, DT, TF), columnar access paths, derived
// statistics and IDF rows, fragment placement and the memory budget
// (cold lists re-compressed by the same deterministic coldest-first
// policy). It validates referential integrity and fails closed — a
// state whose postings reference unknown documents or fragments
// reference unknown terms yields an error, never a partial index.
func ImportState(st *IndexState) (*Index, error) {
	ix := NewIndex()
	if st.Lambda > 0 {
		ix.lambda = st.Lambda
	}
	ix.epoch = st.Epoch
	ix.fragK = st.FragK

	for _, d := range st.Docs {
		if d.OID == bat.NilOID {
			return nil, fmt.Errorf("ir: import: nil document oid")
		}
		if _, dup := ix.docSlot[d.OID]; dup {
			return nil, fmt.Errorf("ir: import: duplicate document oid %d", d.OID)
		}
		slot := ix.slotOf(d.OID)
		ix.docLens[slot] = d.Len
		ix.D.AppendString(d.OID, d.URL)
	}
	// Pair oids for the rebuilt DT/TF rows are drawn after re-seeding
	// the sequence past every persisted oid, so they never collide with
	// restored term oids (nor with each other). A NextOID at or below a
	// restored term oid would hand a live oid out again on the next Add
	// — merging two unrelated terms silently — so it fails closed here.
	// (Document oids live in the caller's global space and may
	// legitimately exceed the node-local sequence.)
	for _, t := range st.Terms {
		if t.OID >= st.NextOID {
			return nil, fmt.Errorf("ir: import: term oid %d not below the sequence position %d — a post-restore allocation would reuse it", t.OID, st.NextOID)
		}
	}
	ix.seq.Advance(st.NextOID)
	seen := make(map[bat.OID]bool, len(st.Terms))
	for _, t := range st.Terms {
		if t.OID == bat.NilOID {
			return nil, fmt.Errorf("ir: import: nil term oid for %q", t.Stem)
		}
		if seen[t.OID] {
			return nil, fmt.Errorf("ir: import: duplicate term oid %d", t.OID)
		}
		if _, dup := ix.termID[t.Stem]; dup {
			return nil, fmt.Errorf("ir: import: duplicate term %q", t.Stem)
		}
		seen[t.OID] = true
		ix.termID[t.Stem] = t.OID
		ix.T.AppendString(t.OID, t.Stem)
		pl := &plist{
			slots:  make([]int32, 0, len(t.Postings)),
			tfs:    make([]int32, 0, len(t.Postings)),
			sorted: true,
		}
		prev := bat.NilOID
		for _, p := range t.Postings {
			slot, ok := ix.docSlot[p.Doc]
			if !ok {
				return nil, fmt.Errorf("ir: import: term %q posting references unknown document %d", t.Stem, p.Doc)
			}
			if p.Doc <= prev {
				return nil, fmt.Errorf("ir: import: term %q postings not in ascending doc order", t.Stem)
			}
			if p.TF < 1 {
				return nil, fmt.Errorf("ir: import: term %q has non-positive tf %d for document %d", t.Stem, p.TF, p.Doc)
			}
			prev = p.Doc
			pl.slots = append(pl.slots, slot)
			pl.tfs = append(pl.tfs, int32(p.TF))
			dt := ix.docTerms[p.Doc]
			if dt == nil {
				dt = make(map[bat.OID]int)
				ix.docTerms[p.Doc] = dt
			}
			dt[t.OID] = p.TF
			pair := ix.seq.Next()
			ix.DTd.AppendOID(pair, p.Doc)
			ix.DTt.AppendOID(pair, t.OID)
			ix.TF.AppendInt(pair, int64(p.TF))
		}
		ix.plists[t.OID] = pl
		ix.plainBytes += 8 * len(t.Postings)
		if df := len(t.Postings); df > 0 {
			ix.df[t.OID] = df
			ix.totalDF += df
			ix.idfPos[t.OID] = ix.IDF.Len()
			ix.IDF.AppendFloat(t.OID, 1.0/float64(df))
		}
	}
	if st.HasFrags {
		ix.fragments = make([]Fragment, len(st.Fragments))
		ix.fragOf = make(map[bat.OID]int)
		for f, frag := range st.Fragments {
			for _, id := range frag.Terms {
				if !seen[id] {
					return nil, fmt.Errorf("ir: import: fragment %d references unknown term oid %d", f, id)
				}
				if prev, dup := ix.fragOf[id]; dup {
					return nil, fmt.Errorf("ir: import: term oid %d in fragments %d and %d", id, prev, f)
				}
				ix.fragOf[id] = f
			}
			ix.fragments[f] = Fragment{
				Terms:  append([]bat.OID(nil), frag.Terms...),
				MaxIDF: frag.MaxIDF,
				MinIDF: frag.MinIDF,
				Tuples: frag.Tuples,
			}
		}
	}
	if st.MemBudget > 0 {
		ix.memBudget = st.MemBudget
		ix.applyMemoryBudget()
	}
	return ix, nil
}
