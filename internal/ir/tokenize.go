package ir

import "strings"

// stopWords is the stop list applied before terms enter the
// vocabulary; the paper: "Stop terms are expected to be filtered out."
var stopWords = map[string]bool{
	"a": true, "about": true, "above": true, "after": true, "again": true,
	"all": true, "also": true, "am": true, "an": true, "and": true,
	"any": true, "are": true, "as": true, "at": true, "be": true,
	"because": true, "been": true, "before": true, "being": true,
	"below": true, "between": true, "both": true, "but": true, "by": true,
	"can": true, "could": true, "did": true, "do": true, "does": true,
	"doing": true, "down": true, "during": true, "each": true, "few": true,
	"for": true, "from": true, "further": true, "had": true, "has": true,
	"have": true, "having": true, "he": true, "her": true, "here": true,
	"hers": true, "him": true, "his": true, "how": true, "i": true,
	"if": true, "in": true, "into": true, "is": true, "it": true,
	"its": true, "just": true, "me": true, "more": true, "most": true,
	"my": true, "no": true, "nor": true, "not": true, "now": true,
	"of": true, "off": true, "on": true, "once": true, "only": true,
	"or": true, "other": true, "our": true, "out": true, "over": true,
	"own": true, "same": true, "she": true, "should": true, "so": true,
	"some": true, "such": true, "than": true, "that": true, "the": true,
	"their": true, "them": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "those": true,
	"through": true, "to": true, "too": true, "under": true, "until": true,
	"up": true, "very": true, "was": true, "we": true, "were": true,
	"what": true, "when": true, "where": true, "which": true,
	"while": true, "who": true, "whom": true, "why": true, "will": true,
	"with": true, "would": true, "you": true, "your": true,
}

// IsStopWord reports whether the (lower-cased) word is on the stop list.
func IsStopWord(w string) bool { return stopWords[strings.ToLower(w)] }

// Tokenize splits text into lower-case word tokens; anything that is
// not a letter or digit separates tokens.
func Tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			out = append(out, sb.String())
			sb.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Terms pushes text through the tokenizer, the stop filter and the
// stemmer, exactly the pipeline the central database server applies to
// both documents and query terms in the paper.
func Terms(text string) []string {
	var out []string
	for _, tok := range Tokenize(text) {
		if stopWords[tok] {
			continue
		}
		out = append(out, Stem(tok))
	}
	return out
}
