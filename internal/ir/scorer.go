package ir

import (
	"sort"

	"dlsearch/internal/bat"
)

// scorer holds the reusable per-query buffers of the columnar hot
// path: a doc-slot-indexed score column, the list of slots touched by
// the current query (so only those are reset afterwards, not the
// whole column), the resolved query terms and the bounded top-N heap.
// Scorers live in the index's sync.Pool, which makes concurrent
// queries over a frozen index race-free without locking.
type scorer struct {
	scores  []float64
	touched []int32
	qterms  []bat.OID
	heap    []Result
	mass    []float64 // per-query-term idf mass (plan evaluation)
	frag    []int32   // per-query-term fragment index (plan evaluation)
}

// getScorer fetches a scorer with an all-zero score column covering
// every document slot.
func (ix *Index) getScorer() *scorer {
	s, _ := ix.scorers.Get().(*scorer)
	if s == nil {
		s = &scorer{}
	}
	if len(s.scores) < len(ix.docIDs) {
		s.scores = make([]float64, len(ix.docIDs)+len(ix.docIDs)/4+16)
	}
	return s
}

// putScorer zeroes the touched score entries and returns the buffers
// to the pool.
func (ix *Index) putScorer(s *scorer) {
	for _, slot := range s.touched {
		s.scores[slot] = 0
	}
	s.touched = s.touched[:0]
	ix.scorers.Put(s)
}

// scoreTerm accumulates one query term's contributions into the score
// column: a single sequential scan over the term's slot/tf columns.
// Every contribution is strictly positive, so a zero score cell means
// "first touch" and the slot is recorded for reset and selection.
// Terms the memory budget holds compressed are walked in place — the
// same (doc, tf) sequence in the same doc order, so scores come out
// identical, just slower per posting.
func (ix *Index) scoreTerm(s *scorer, id bat.OID, df, totalDF int, candidates map[bat.OID]bool) {
	if df == 0 {
		return
	}
	pl := ix.plists[id]
	if pl == nil {
		if cp, ok := ix.cold[id]; ok {
			ix.scoreCompressed(s, cp, df, totalDF, candidates)
		}
		return
	}
	lambda := ix.lambda
	docIDs, docLens := ix.docIDs, ix.docLens
	for i, slot := range pl.slots {
		if candidates != nil && !candidates[docIDs[slot]] {
			continue
		}
		w := logWeight(lambda, int(pl.tfs[i]), df, totalDF, int(docLens[slot]))
		if s.scores[slot] == 0 {
			s.touched = append(s.touched, slot)
		}
		s.scores[slot] += w
	}
}

// scoreCompressed is scoreTerm's access path over a compressed posting
// list: decode-as-you-go via Walk, no materialised slice.
func (ix *Index) scoreCompressed(s *scorer, cp CompressedPostings, df, totalDF int, candidates map[bat.OID]bool) {
	lambda := ix.lambda
	cp.Walk(func(doc bat.OID, tf int) bool {
		if candidates != nil && !candidates[doc] {
			return true
		}
		slot, ok := ix.docSlot[doc]
		if !ok {
			return true
		}
		w := logWeight(lambda, tf, df, totalDF, int(ix.docLens[slot]))
		if s.scores[slot] == 0 {
			s.touched = append(s.touched, slot)
		}
		s.scores[slot] += w
		return true
	})
}

// worse reports whether a ranks strictly below b in the total result
// order (score desc, doc asc). Doc oids are unique, so the order is
// strict and bounded selection returns exactly the same top n as a
// full sort.
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// selectTopN picks the n best results from the touched slots with a
// bounded min-heap (the worst kept result at the root) instead of
// materialising and fully sorting the whole candidate ranking:
// O(m log n) for m candidates, and the only allocation is the result
// slice itself.
func (s *scorer) selectTopN(docIDs []bat.OID, n int) []Result {
	if n <= 0 {
		return nil
	}
	h := s.heap[:0]
	for _, slot := range s.touched {
		sc := s.scores[slot]
		if sc <= 0 {
			continue
		}
		r := Result{Doc: docIDs[slot], Score: sc}
		if len(h) < n {
			h = append(h, r)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !worse(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
		} else if worse(h[0], r) {
			h[0] = r
			for i := 0; ; {
				c := 2*i + 1
				if c >= len(h) {
					break
				}
				if c+1 < len(h) && worse(h[c+1], h[c]) {
					c++
				}
				if !worse(h[c], h[i]) {
					break
				}
				h[i], h[c] = h[c], h[i]
				i = c
			}
		}
	}
	s.heap = h
	out := make([]Result, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}
