package ir

import (
	"testing"

	"dlsearch/internal/bat"
)

// TestChecksumCanonical: the content checksum depends only on the
// logical content — not on insertion order, term-oid assignment or
// fragmentation — and the exported state digests identically to the
// live index.
func TestChecksumCanonical(t *testing.T) {
	docs := []struct {
		oid  bat.OID
		text string
	}{
		{1, "champion trophy melbourne"},
		{2, "winner serve ace"},
		{3, "champion volley smash rally"},
	}
	a := NewIndex()
	for _, d := range docs {
		a.Add(d.oid, "u", d.text)
	}
	b := NewIndex()
	for i := len(docs) - 1; i >= 0; i-- { // reverse order: different slots AND term oids
		b.Add(docs[i].oid, "u", docs[i].text)
	}
	ca, cb := a.Checksum(), b.Checksum()
	if ca == "" || ca != cb {
		t.Fatalf("insertion order changed the checksum:\n a %s\n b %s", ca, cb)
	}
	if cs := a.ExportState().Checksum(); cs != ca {
		t.Fatalf("state checksum %s != index checksum %s", cs, ca)
	}
	// Fragmentation and compression are per-replica physical choices:
	// neither may move the content checksum.
	a.Fragmentize(4)
	a.SetMemoryBudget(16)
	if got := a.Checksum(); got != ca {
		t.Fatalf("physical layout changed the checksum: %s != %s", got, ca)
	}
	// A restored index digests identically to its source.
	restored, err := ImportState(a.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Checksum(); got != ca {
		t.Fatalf("restore changed the checksum: %s != %s", got, ca)
	}
	// Content changes move it — including a tf fold into an existing
	// document and a document whose text indexes no terms at all.
	b.Add(2, "u", "ace")
	cFold := b.Checksum()
	if cFold == ca {
		t.Fatal("tf fold did not change the checksum")
	}
	b.Add(9, "u", "")
	if got := b.Checksum(); got == cFold {
		t.Fatal("empty document did not change the checksum")
	}
}

// TestChecksumDistinguishesContent: same statistics fingerprint
// (Docs, TotalDF), different content — the case the checksum exists
// to catch, because the global-stats fingerprint cannot.
func TestChecksumDistinguishesContent(t *testing.T) {
	a := NewIndex()
	a.Add(1, "u", "champion champion")
	a.Add(2, "u", "trophy")
	b := NewIndex()
	b.Add(1, "u", "trophy")
	b.Add(2, "u", "champion champion")
	sa, sb := a.StatsLocal(), b.StatsLocal()
	if sa.Docs != sb.Docs || sa.TotalDF != sb.TotalDF {
		t.Fatalf("fixture broken: fingerprints differ (%+v vs %+v)", sa, sb)
	}
	if a.Checksum() == b.Checksum() {
		t.Fatal("swapped documents digest identically")
	}
}

// TestHasDoc: membership over live and restored indexes.
func TestHasDoc(t *testing.T) {
	ix := NewIndex()
	ix.Add(7, "u", "champion")
	if !ix.HasDoc(7) || ix.HasDoc(8) {
		t.Fatalf("HasDoc(7)=%v HasDoc(8)=%v", ix.HasDoc(7), ix.HasDoc(8))
	}
	restored, err := ImportState(ix.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.HasDoc(7) || restored.HasDoc(8) {
		t.Fatal("restored index lost document membership")
	}
}

// TestAdvanceEpoch: the epoch moves strictly past the given point and
// never backwards.
func TestAdvanceEpoch(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, "u", "champion")
	ix.Freeze()
	e := ix.Epoch()
	ix.AdvanceEpoch(e)
	if ix.Epoch() != e+1 {
		t.Fatalf("epoch = %d, want %d", ix.Epoch(), e+1)
	}
	ix.AdvanceEpoch(e) // already past: no-op
	if ix.Epoch() != e+1 {
		t.Fatalf("epoch moved backwards: %d", ix.Epoch())
	}
	ix.AdvanceEpoch(e + 10)
	if ix.Epoch() != e+11 {
		t.Fatalf("epoch = %d, want %d", ix.Epoch(), e+11)
	}
}
