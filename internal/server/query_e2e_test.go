package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlsearch/internal/core"
	"dlsearch/internal/crawler"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/site"
	"dlsearch/internal/webspace"
)

// TestQueryClusterMatchesSingleProcess is the tentpole acceptance
// test: the same corpus, once populated into a single-process
// core.Engine and once streamed as NDJSON through POST /add/stream
// into an HTTP cluster (2 partitions per full-text index, content
// living only on the nodes), must answer the paper's Figure 13 query
// byte-identically through POST /query.
//
// The stream is deliberately larger than the coordinator's request
// body cap — the whole point of streaming ingest.
func TestQueryClusterMatchesSingleProcess(t *testing.T) {
	// Reference: the fully populated single-process engine.
	ref, s, _, err := core.BuildAusOpen(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(core.Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference answer is empty")
	}

	// Cluster side: a cold engine over the same schema. Media objects
	// (video/image) are analyzed locally — binary media does not travel
	// over the ingest stream — but every conceptual document and every
	// hypertext body arrives via NDJSON.
	eng, err := core.NewAusOpen(s)
	if err != nil {
		t.Fatal(err)
	}
	c := crawler.New(eng.Schema, s.Fetch)
	res, err := c.Crawl(s.BaseURL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	var media crawler.Result
	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	for _, doc := range res.Documents {
		if err := enc.Encode(StreamLine{Webspace: doc}); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range res.Media {
		if m.Type != webspace.Hypertext {
			media.Media = append(media.Media, m)
			continue
		}
		if err := enc.Encode(StreamLine{
			Index: m.Class + "." + m.Attr,
			Owner: m.Owner,
			Text:  m.Inline,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Populate(&media); err != nil {
		t.Fatal(err)
	}

	// Two HTTP node servers per hypertext index; the coordinator's
	// engine holds no full-text content of its own.
	indexes := map[string]*dist.Cluster{}
	for _, key := range []string{"Article.body", "Player.history"} {
		var nodes []dist.Node
		for i := 0; i < 2; i++ {
			srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), nil))
			t.Cleanup(srv.Close)
			nodes = append(nodes, dist.NewRemoteNode(srv.URL, srv.Client()))
		}
		indexes[key] = dist.NewClusterOf(nodes, &dist.Options{NodeTimeout: 5 * time.Second})
	}
	cfg := &CoordinatorConfig{Engine: eng, MaxBody: 4096, StreamFlush: 8}
	if int64(stream.Len()) <= cfg.MaxBody {
		t.Fatalf("stream is %d bytes, not larger than the %d body cap", stream.Len(), cfg.MaxBody)
	}
	co := NewCoordinator(indexes, cfg)
	h := co.Handler()

	req := httptest.NewRequest(http.MethodPost, "/add/stream", &stream)
	req.Header.Set("Content-Type", "application/x-ndjson")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status = %d: %s", w.Code, w.Body)
	}
	var sum StreamSummaryLine
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last string
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			last = sc.Text()
		}
	}
	if err := json.Unmarshal([]byte(last), &sum); err != nil {
		t.Fatalf("summary line %q: %v", last, err)
	}
	if !sum.Summary || sum.Errors != 0 || sum.Failed != 0 || sum.Degraded != 0 {
		t.Fatalf("stream summary = %+v", sum)
	}
	if sum.Committed != sum.Lines {
		t.Fatalf("committed %d of %d lines", sum.Committed, sum.Lines)
	}

	// The conceptual query over the cluster.
	body, _ := json.Marshal(QueryRequest{Query: core.Figure13Query})
	qw := postJSON(t, h, "/query", string(body))
	if qw.Code != http.StatusOK {
		t.Fatalf("query status = %d: %s", qw.Code, qw.Body)
	}
	var got QueryResponse
	if err := json.Unmarshal(qw.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Complete || got.Dropped != 0 || got.Diverged != 0 {
		t.Fatalf("degraded answer: %+v", got)
	}
	if strings.Join(got.Columns, ",") != strings.Join(want.Columns, ",") {
		t.Fatalf("columns = %v, want %v", got.Columns, want.Columns)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d\ngot %+v\nwant %+v",
			len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i, wr := range want.Rows {
		gr := got.Rows[i]
		if strings.Join(gr.Values, "|") != strings.Join(wr.Values, "|") {
			t.Fatalf("row %d values = %v, want %v", i, gr.Values, wr.Values)
		}
		if gr.Score != wr.Score {
			t.Fatalf("row %d score = %v, want %v (not byte-identical)", i, gr.Score, wr.Score)
		}
		if len(gr.Shots) != len(wr.Shots) {
			t.Fatalf("row %d shots = %d, want %d", i, len(gr.Shots), len(wr.Shots))
		}
		for j, ws := range wr.Shots {
			gs := gr.Shots[j]
			if gs.Begin != ws.Begin || gs.End != ws.End || gs.Tennis != ws.Tennis || gs.Netplay != ws.Netplay {
				t.Fatalf("row %d shot %d = %+v, want %+v", i, j, gs, ws)
			}
		}
	}
}

// TestQueryDuringStreamWarm: conceptual queries racing a streaming
// ingest must never observe half-built derived caches. A webspace
// line invalidates them mid-stream; /query upgrades to the write lock
// and re-warms before executing (run with -race to catch regressions:
// a lazy rebuild under the shared lock is a concurrent map write).
func TestQueryDuringStreamWarm(t *testing.T) {
	eng, err := core.NewAusOpen(site.Generate(3))
	if err != nil {
		t.Fatal(err)
	}
	// A fat conceptual store widens the race window: every lazy
	// rebuild of the derived caches walks all of it.
	const seeded = 2000
	for i := 0; i < seeded; i++ {
		doc := &webspace.Document{
			URL: fmt.Sprintf("seed%d", i),
			Objects: []*webspace.Object{{
				Class: "Player", ID: fmt.Sprintf("s%d", i),
				Attrs: map[string]string{"name": fmt.Sprintf("S%d", i)},
			}},
		}
		if err := eng.AddDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": dist.NewCluster(1, nil)},
		&CoordinatorConfig{Engine: eng, StreamFlush: 4})
	h := co.Handler()

	// The stream body is a pipe paced by the test: webspace lines keep
	// flowing (each one invalidates the derived caches) until every
	// query goroutine has run its quota against the live stream.
	pr, pw := io.Pipe()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		req := httptest.NewRequest(http.MethodPost, "/add/stream", pr)
		req.Header.Set("Content-Type", "application/x-ndjson")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("stream status = %d: %s", w.Code, w.Body)
		}
	}()
	const perGoroutine = 50
	var wg sync.WaitGroup
	var queries atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				req := httptest.NewRequest(http.MethodPost, "/query",
					strings.NewReader(`{"query":"SELECT p.name FROM Player p"}`))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				queries.Add(1)
				if w.Code != http.StatusOK {
					t.Errorf("query status = %d: %s", w.Code, w.Body)
					return
				}
			}
		}()
	}
	lines := 0
	for queries.Load() < 4*perGoroutine {
		fmt.Fprintf(pw,
			`{"webspace":{"URL":"u%d","Objects":[{"Class":"Player","ID":"p%d","Attrs":{"name":"N%d"}}]}}`+"\n",
			lines, lines, lines)
		lines++
	}
	wg.Wait()
	pw.Close()
	<-streamDone

	// After the stream every streamed object is visible.
	w := postJSON(t, h, "/query", `{"query":"SELECT p.name FROM Player p"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("final query = %d: %s", w.Code, w.Body)
	}
	var got QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != seeded+lines {
		t.Fatalf("rows = %d, want %d", len(got.Rows), seeded+lines)
	}
}

// TestQueryNoEngine: /query on a coordinator without a conceptual
// engine answers 404, not a panic.
func TestQueryNoEngine(t *testing.T) {
	_, h := testCoordinator(t, nil)
	w := postJSON(t, h, "/query", `{"query":"SELECT p.name FROM Player p"}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 (%s)", w.Code, w.Body)
	}
}

// TestQueryValidation: parse errors, bad plan overrides and contains
// predicates over indexes no cluster serves are 400s carrying the
// diagnostic, not 500s.
func TestQueryValidation(t *testing.T) {
	eng, err := core.NewAusOpen(site.Generate(3))
	if err != nil {
		t.Fatal(err)
	}
	doc := &webspace.Document{
		URL: "u",
		Objects: []*webspace.Object{
			{Class: "Player", ID: "p1", Attrs: map[string]string{"name": "Ada"}},
		},
	}
	if err := eng.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": dist.NewCluster(1, nil)},
		&CoordinatorConfig{Engine: eng})
	h := co.Handler()
	cases := []struct {
		name, body, wantErr string
		status              int
	}{
		{"missing query", `{}`, "missing query", http.StatusBadRequest},
		{"parse error", `{"query":"FROM Player p"}`, "query: expected SELECT", http.StatusBadRequest},
		{"bad frags", `{"query":"SELECT p.name FROM Player p","frags":-1}`,
			"frags must be non-negative", http.StatusBadRequest},
		{"bad budget", `{"query":"SELECT p.name FROM Player p","budget":-1}`,
			"budget must be non-negative", http.StatusBadRequest},
		{"bad min_quality", `{"query":"SELECT p.name FROM Player p","min_quality":1.5}`,
			"min_quality must be in [0, 1]", http.StatusBadRequest},
		{"unserved index", `{"query":"SELECT p.name FROM Player p WHERE contains(p.history, 'x')"}`,
			"query: no full-text index for Player.history", http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postJSON(t, h, "/query", c.body)
			if w.Code != c.status {
				t.Fatalf("status = %d, want %d (%s)", w.Code, c.status, w.Body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatal(err)
			}
			if e.Error != c.wantErr {
				t.Fatalf("error = %q, want %q", e.Error, c.wantErr)
			}
		})
	}
	// A structural query with no contains predicate never touches the
	// cluster and answers from the engine alone.
	w := postJSON(t, h, "/query", `{"query":"SELECT p.name FROM Player p"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("engine-only query = %d (%s)", w.Code, w.Body)
	}
	var got QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].Values[0] != "Ada" || !got.Complete {
		t.Fatalf("engine-only answer = %+v", got)
	}
}
